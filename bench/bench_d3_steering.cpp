// Reproduces the D3 microbenchmark (§4.3.2): feed-forward inter-pipeline
// steering versus packet re-circulation. The paper reports a 31-77%
// throughput reduction for recirculation relative to MP5 across ten
// streams, and that when the average number of recirculations per packet
// exceeds the number of pipelines, recirculation is worse than even the
// naive all-state-in-one-pipeline design.
#include <iostream>

#include "apps/programs.hpp"
#include "bench_util.hpp"

using namespace mp5;
using namespace mp5::bench;

int main() {
  constexpr int kStreams = 10;
  constexpr std::uint64_t kPackets = 20000;

  print_header("D3: inter-pipeline steering vs re-circulation",
               "recirculation 31-77% below MP5; worse than naive when "
               "recircs/pkt > pipelines");

  const auto prog = compile_for_mp5(apps::make_synthetic_source(4, 512));

  BenchReport report("d3_steering");
  TextTable table({"stream", "MP5", "recirc", "naive", "reduction vs MP5",
                   "recircs/pkt"});
  RunningStats reductions;
  for (int stream = 1; stream <= kStreams; ++stream) {
    SensitivityPoint point;
    point.pattern = AccessPattern::kSkewed;
    point.packets = kPackets;
    point.active_flows = 32;
    const auto trace = make_trace(point, static_cast<std::uint64_t>(stream));

    Mp5Simulator mp5(prog, mp5_options(4, stream));
    const double t_mp5 = mp5.run(trace).normalized_throughput();

    RecircOptions ropts;
    ropts.seed = static_cast<std::uint64_t>(stream);
    RecircSimulator recirc(prog, ropts);
    const auto r_recirc = recirc.run(trace);
    const double t_recirc = r_recirc.normalized_throughput();

    Mp5Simulator naive(prog, naive_options(4, stream));
    const double t_naive = naive.run(trace).normalized_throughput();

    const double reduction = t_mp5 > 0 ? 1.0 - t_recirc / t_mp5 : 0.0;
    reductions.add(reduction);
    report.row("stream" + std::to_string(stream))
        .metric("mp5", t_mp5)
        .metric("recirc", t_recirc)
        .metric("naive", t_naive)
        .metric("reduction", reduction)
        .metric("recircs_per_pkt",
                static_cast<double>(r_recirc.recirculations) /
                    static_cast<double>(r_recirc.offered));
    table.add_row(
        {TextTable::integer(stream), TextTable::num(t_mp5, 3),
         TextTable::num(t_recirc, 3), TextTable::num(t_naive, 3),
         TextTable::pct(reduction),
         TextTable::num(static_cast<double>(r_recirc.recirculations) /
                            static_cast<double>(r_recirc.offered),
                        2)});
  }
  table.print(std::cout);
  std::cout << "\nreduction range: " << TextTable::pct(reductions.min())
            << " - " << TextTable::pct(reductions.max()) << "\n";

  // Worst case: many sharded states spread over few pipelines -> average
  // recirculations per packet exceed k and recirculation drops below the
  // naive design.
  std::cout << "\n--- worst case: 6 stateful stages, 2 pipelines ---\n";
  const auto prog6 = compile_for_mp5(apps::make_synthetic_source(6, 512));
  SensitivityPoint point;
  point.stateful_stages = 6;
  point.pipelines = 2;
  point.packets = kPackets;
  point.pattern = AccessPattern::kUniform;
  const auto trace = make_trace(point, 1);

  Mp5Simulator mp5(prog6, mp5_options(2, 1));
  RecircOptions ropts2;
  ropts2.pipelines = 2;
  RecircSimulator recirc(prog6, ropts2);
  Mp5Simulator naive(prog6, naive_options(2, 1));
  const double t_mp5 = mp5.run(trace).normalized_throughput();
  const auto r_recirc = recirc.run(trace);
  const double t_naive = naive.run(trace).normalized_throughput();

  TextTable worst({"design", "throughput", "recircs/pkt"});
  worst.add_row({"MP5", TextTable::num(t_mp5, 3), "0"});
  worst.add_row({"recirculation",
                 TextTable::num(r_recirc.normalized_throughput(), 3),
                 TextTable::num(static_cast<double>(r_recirc.recirculations) /
                                    static_cast<double>(r_recirc.offered),
                                2)});
  worst.add_row({"naive (one pipeline)", TextTable::num(t_naive, 3), "0"});
  worst.print(std::cout);
  report.row("worst_case_6stages_2pipes")
      .metric("mp5", t_mp5)
      .metric("recirc", r_recirc.normalized_throughput())
      .metric("naive", t_naive)
      .metric("recircs_per_pkt",
              static_cast<double>(r_recirc.recirculations) /
                  static_cast<double>(r_recirc.offered));
  finish_report(report);
  return 0;
}
