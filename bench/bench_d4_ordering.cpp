// Reproduces the D4 microbenchmark (§4.3.2): fraction of packets violating
// the state-access-order condition C1, over ten independent streams, for
//   * full MP5 (phantom ordering)      — paper: 0%,
//   * MP5 without D4                   — paper: 14-26%,
//   * current-gen switch, recirculation — paper: 18-31%.
#include <iostream>

#include "apps/programs.hpp"
#include "bench_util.hpp"
#include "metrics/reordering.hpp"

using namespace mp5;
using namespace mp5::bench;

int main() {
  constexpr int kStreams = 10;
  constexpr std::uint64_t kPackets = 20000;

  print_header("D4: preemptive state-access-order enforcement",
               "C1 violations: MP5 0%; w/o D4 14-26%; recirculation 18-31%");

  const auto prog = compile_for_mp5(apps::make_synthetic_source(4, 512));

  BenchReport report("d4_ordering");
  TextTable table({"stream", "MP5", "MP5 w/o D4", "recirculation",
                   "recirc Kendall tau"});
  RunningStats no_d4_stats, recirc_stats;
  for (int stream = 1; stream <= kStreams; ++stream) {
    SensitivityPoint point;
    point.pattern = AccessPattern::kSkewed;
    point.packets = kPackets;
    point.active_flows = 32;
    const auto trace = make_trace(point, static_cast<std::uint64_t>(stream));

    Mp5Simulator mp5(prog, mp5_options(4, stream));
    const double f_mp5 = mp5.run(trace).c1_fraction();

    Mp5Simulator no_d4(prog, no_d4_options(4, stream));
    const double f_no_d4 = no_d4.run(trace).c1_fraction();
    no_d4_stats.add(f_no_d4);

    RecircOptions ropts;
    ropts.seed = static_cast<std::uint64_t>(stream);
    ropts.record_egress = true;
    RecircSimulator recirc(prog, ropts);
    const auto r_recirc = recirc.run(trace);
    const double f_recirc = r_recirc.c1_fraction();
    recirc_stats.add(f_recirc);
    const auto reorder = analyze_reordering(r_recirc.egress);

    report.row("stream" + std::to_string(stream))
        .metric("c1_mp5", f_mp5)
        .metric("c1_no_d4", f_no_d4)
        .metric("c1_recirc", f_recirc)
        .metric("recirc_kendall_tau", reorder.kendall_tau);
    table.add_row({TextTable::integer(stream), TextTable::pct(f_mp5),
                   TextTable::pct(f_no_d4), TextTable::pct(f_recirc),
                   TextTable::num(reorder.kendall_tau, 3)});
  }
  table.print(std::cout);
  std::cout << "\nw/o D4 range:        " << TextTable::pct(no_d4_stats.min())
            << " - " << TextTable::pct(no_d4_stats.max()) << "\n";
  std::cout << "recirculation range: " << TextTable::pct(recirc_stats.min())
            << " - " << TextTable::pct(recirc_stats.max()) << "\n";
  report.row("aggregate")
      .metric("no_d4_min", no_d4_stats.min())
      .metric("no_d4_max", no_d4_stats.max())
      .metric("recirc_min", recirc_stats.min())
      .metric("recirc_max", recirc_stats.max());
  finish_report(report);
  return 0;
}
