// Graceful degradation under pipeline failure: kill 1 of k=4 lanes
// mid-run, bring it back later, and watch the windowed egress rate.
//
// Two offered loads tell the whole story:
//   * (k-1)/k load — the survivors' line rate. The outage is absorbed:
//     the three live lanes sustain the full offered rate, so degraded
//     capacity is within a few percent of (k-1)/k of the switch.
//   * full line rate — sustained overload. Ingress caps the survivors at
//     (k-1)/k, so the windowed rate steps down to ~0.75x healthy during
//     the outage; the backlog built up while overloaded keeps the
//     post-recovery windows slightly depressed until rebalancing migrates
//     state back onto the recovered lane (one index per remap period).
//
// Egress events are bucketed per 1000-cycle window via the timeline hook.
#include <iostream>
#include <vector>

#include "apps/programs.hpp"
#include "bench_util.hpp"

using namespace mp5;
using namespace mp5::bench;

namespace {

constexpr std::uint32_t kPipelines = 4;
constexpr Cycle kFailAt = 10000;
constexpr Cycle kRecoverAt = 20000;
constexpr Cycle kWindow = 1000;
constexpr std::uint64_t kPackets = 120000;

/// Mean egress rate (packets/cycle) over whole windows inside [from, to),
/// skipping `settle` windows at the start of the phase to let queues and
/// the shard map reach steady state.
double phase_rate(const std::vector<std::uint64_t>& buckets, Cycle from,
                  Cycle to, std::size_t settle) {
  RunningStats stats;
  for (std::size_t w = from / kWindow + settle; w + 1 <= to / kWindow; ++w) {
    if (w >= buckets.size()) break;
    stats.add(static_cast<double>(buckets[w]) / kWindow);
  }
  return stats.mean();
}

void run_load(BenchReport& report, const Mp5Program& prog, double load) {
  SyntheticConfig config;
  config.stateful_stages = 4;
  config.reg_size = 512;
  config.pipelines = kPipelines;
  config.packets = kPackets;
  config.seed = 1;
  config.load = load;
  const auto trace = make_synthetic_trace(config);

  SimOptions opts = mp5_options(kPipelines, /*seed=*/1);
  PipelineFault fault;
  fault.pipeline = 2;
  fault.fail_at = kFailAt;
  fault.recover_at = kRecoverAt;
  opts.faults.pipeline_faults.push_back(fault);

  std::vector<std::uint64_t> buckets;
  opts.timeline = [&](const TimelineEvent& ev) {
    if (ev.kind != TimelineEvent::Kind::kEgress) return;
    const std::size_t w = ev.cycle / kWindow;
    if (w >= buckets.size()) buckets.resize(w + 1, 0);
    ++buckets[w];
  };

  Mp5Simulator sim(prog, opts);
  const SimResult result = sim.run(trace);

  std::cout << "--- offered load " << TextTable::num(load, 2)
            << " (" << TextTable::num(load * kPipelines, 1)
            << " pkt/cycle) ---\n";
  TextTable table({"window (cycles)", "egress pkts", "rate pkt/cyc", "phase"});
  for (std::size_t w = 0; w < buckets.size(); ++w) {
    const Cycle start = static_cast<Cycle>(w) * kWindow;
    const char* phase = start < kFailAt      ? "healthy"
                        : start < kRecoverAt ? "1 lane down"
                                             : "recovered";
    table.add_row({TextTable::integer(start) + "-" +
                       TextTable::integer(start + kWindow),
                   TextTable::integer(buckets[w]),
                   TextTable::num(static_cast<double>(buckets[w]) / kWindow, 3),
                   phase});
  }
  table.print(std::cout);

  const double healthy = phase_rate(buckets, 0, kFailAt, /*settle=*/1);
  const double outage = phase_rate(buckets, kFailAt, kRecoverAt, /*settle=*/2);
  const double recovered =
      phase_rate(buckets, kRecoverAt,
                 static_cast<Cycle>(buckets.size()) * kWindow, /*settle=*/2);

  std::cout << "\nhealthy rate:    " << TextTable::num(healthy, 3)
            << " pkt/cycle\n"
            << "outage rate:     " << TextTable::num(outage, 3) << " ("
            << TextTable::num(outage / healthy, 3) << "x healthy)\n"
            << "recovered rate:  " << TextTable::num(recovered, 3) << " ("
            << TextTable::num(recovered / healthy, 3) << "x healthy)\n"
            << "fault drops: " << result.dropped_fault
            << ", indices re-homed: " << result.fault_remapped_indices
            << ", first egress after failure: +" << result.time_to_recover
            << " cycles\n\n";

  report.row("load" + TextTable::num(load, 2))
      .metric("offered_load", load)
      .metric("healthy_rate", healthy)
      .metric("outage_rate", outage)
      .metric("recovered_rate", recovered)
      .metric("fault_drops", static_cast<double>(result.dropped_fault))
      .metric("indices_rehomed",
              static_cast<double>(result.fault_remapped_indices))
      .metric("time_to_recover", static_cast<double>(result.time_to_recover));
}

} // namespace

int main() {
  print_header("fault injection: graceful pipeline degradation",
               "at (k-1)/k load the outage is absorbed by the survivors; "
               "at full line rate throughput steps down to ~(k-1)/k of "
               "healthy while one lane is dead");

  const auto prog = compile_for_mp5(apps::make_synthetic_source(4, 512));
  BenchReport report("fault_degradation");
  run_load(report, prog, static_cast<double>(kPipelines - 1) / kPipelines);
  run_load(report, prog, 1.0);
  finish_report(report);
  return 0;
}
