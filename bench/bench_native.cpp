// Native multicore backend throughput (ISSUE 9): real packets per second
// for compiled PVSM programs executed directly on CPU cores.
//
//   * cores sweep 1/2/4/8 on a serializing app (counter: one scalar
//     register, cannot shard) and a sparse-state app (flowlet: per-flow
//     arrays shard across workers);
//   * batch-size sweep (ring push/pop amortization) at a fixed core count.
//
// Row names are stable keys for tools/compare_bench.py; the committed
// snapshot lives in bench/baselines/BENCH_native.json. The gate is the
// usual loose 0.75 threshold: it catches an order-of-magnitude collapse
// of the ring/ticket hot path, not runner noise. Note the hardware
// caveat: on hosts with fewer hardware threads than workers + 1
// (dispatcher), workers time-share cores, so multi-core rows measure
// scheduling overhead rather than scaling (the profiler's
// serializing-register attribution stays valid either way).
#include <iostream>
#include <thread>

#include "bench_util.hpp"
#include "domino/parser.hpp"
#include "native/backend.hpp"
#include "trace/trace_source.hpp"

using namespace mp5;
using namespace mp5::bench;

namespace {

double run_native(const Mp5Program& program, std::size_t fields,
                  std::uint64_t packets, native::NativeOptions opts,
                  std::string* serializing = nullptr) {
  SyntheticSpec spec;
  spec.packets = packets;
  spec.pipelines = opts.workers;
  spec.field_count = static_cast<std::uint32_t>(fields);
  spec.field_bound = 4096;
  spec.seed = 1;
  SyntheticTraceSource source(spec);
  opts.pin_threads = false; // shared CI runners
  native::NativeBackend backend(program, opts);
  const auto result = backend.run(source);
  if (serializing != nullptr) {
    *serializing = result.profile.serializing_register;
  }
  return result.pkts_per_sec;
}

} // namespace

int main() {
  print_header("Native multicore backend: pkts/s vs cores and batch size",
               "NFOS-style software switch; cf. arXiv 2309.14647");
  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "hardware threads: " << hw
            << " (workers beyond this time-share cores)\n\n";

  BenchReport report("native");
  struct AppCase {
    const char* name;
    std::string source;
    std::size_t fields;
    std::uint64_t packets;
  };
  std::vector<AppCase> cases;
  {
    const auto ast = domino::parse(apps::packet_counter_source());
    cases.push_back({"counter", apps::packet_counter_source(),
                     ast.fields.size(), 2000000});
  }
  for (const auto& app : apps::real_apps()) {
    if (app.name == "flowlet") {
      const auto ast = domino::parse(app.source);
      cases.push_back({"flowlet", app.source, ast.fields.size(), 500000});
    }
  }

  TextTable table({"app", "cores", "batch", "pkts/s", "serializing reg"});
  for (const auto& app : cases) {
    const Mp5Program program = compile_for_mp5(app.source);
    for (const std::uint32_t cores : {1u, 2u, 4u, 8u}) {
      native::NativeOptions opts;
      opts.workers = cores;
      std::string serializing;
      const double rate =
          run_native(program, app.fields, app.packets, opts, &serializing);
      table.add_row({app.name, TextTable::integer(cores),
                     TextTable::integer(opts.batch), TextTable::num(rate, 0),
                     serializing});
      report
          .row("native:" + std::string(app.name) + ":cores" +
               std::to_string(cores))
          .metric("pkts_per_second", rate)
          .label("app", app.name)
          .label("cores", std::to_string(cores))
          .label("serializing_register", serializing);
    }
    for (const std::uint32_t batch : {8u, 32u, 128u, 512u}) {
      native::NativeOptions opts;
      opts.workers = 2;
      opts.batch = batch;
      opts.ring_capacity = 2 * batch > 1024 ? 2 * batch : 1024;
      const double rate = run_native(program, app.fields, app.packets, opts);
      table.add_row({app.name, "2", TextTable::integer(batch),
                     TextTable::num(rate, 0), ""});
      report
          .row("native:" + std::string(app.name) + ":batch" +
               std::to_string(batch))
          .metric("pkts_per_second", rate)
          .label("app", app.name)
          .label("batch", std::to_string(batch));
    }
  }
  table.print(std::cout);
  finish_report(report);
  return 0;
}
