// Microbenchmarks (google-benchmark) for the performance-critical pieces
// of the library: the stage FIFO operations, the Domino compiler, address
// resolution, and whole-simulator cycle throughput.
#include <benchmark/benchmark.h>

#include "apps/programs.hpp"
#include "banzai/single_pipeline.hpp"
#include "baseline/presets.hpp"
#include "domino/compiler.hpp"
#include "mp5/simulator.hpp"
#include "mp5/stage_fifo.hpp"
#include "mp5/transform.hpp"
#include "trace/workloads.hpp"

namespace {

using namespace mp5;

void BM_StageFifoPushInsertPop(benchmark::State& state) {
  StageFifo fifo(4, 0, false);
  SeqNo seq = 0;
  for (auto _ : state) {
    fifo.push_phantom(seq, 0, static_cast<RegIndex>(seq % 64), seq % 4);
    Packet pkt;
    pkt.seq = seq;
    fifo.insert_data(std::move(pkt));
    benchmark::DoNotOptimize(fifo.pop());
    ++seq;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(seq));
}
BENCHMARK(BM_StageFifoPushInsertPop);

void BM_StageFifoIdealPop(benchmark::State& state) {
  StageFifo fifo(4, 0, true);
  SeqNo seq = 0;
  for (auto _ : state) {
    fifo.push_phantom(seq, 0, static_cast<RegIndex>(seq % 8), seq % 4);
    Packet pkt;
    pkt.seq = seq;
    fifo.insert_data(std::move(pkt));
    benchmark::DoNotOptimize(fifo.pop());
    ++seq;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(seq));
}
BENCHMARK(BM_StageFifoIdealPop);

void BM_CompileFlowlet(benchmark::State& state) {
  const auto source = apps::flowlet_app().source;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        domino::compile(source, banzai::MachineSpec{}, 1));
  }
}
BENCHMARK(BM_CompileFlowlet);

void BM_TransformFlowlet(benchmark::State& state) {
  const auto pvsm =
      domino::compile(apps::flowlet_app().source, banzai::MachineSpec{}, 1)
          .pvsm;
  for (auto _ : state) {
    benchmark::DoNotOptimize(transform(pvsm));
  }
}
BENCHMARK(BM_TransformFlowlet);

void BM_SimulatorCyclesPerSecond(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const auto prog =
      transform(domino::compile(apps::make_synthetic_source(4, 512),
                                banzai::MachineSpec{}, 1)
                    .pvsm);
  SyntheticConfig config;
  config.pipelines = k;
  config.packets = 5000;
  const auto trace = make_synthetic_trace(config);
  std::uint64_t cycles = 0, packets = 0;
  for (auto _ : state) {
    Mp5Simulator sim(prog, mp5_options(k, 1));
    const auto result = sim.run(trace);
    cycles += result.cycles_run;
    packets += result.egressed;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["packets/s"] = benchmark::Counter(
      static_cast<double>(packets), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorCyclesPerSecond)->Arg(2)->Arg(4)->Arg(8);

void BM_ReferenceSwitch(benchmark::State& state) {
  const auto pvsm =
      domino::compile(apps::make_synthetic_source(4, 512)).pvsm;
  banzai::ReferenceSwitch sw(pvsm);
  std::vector<Value> headers(pvsm.num_slots(), 0);
  std::uint64_t n = 0;
  for (auto _ : state) {
    headers[0] = static_cast<Value>(n % 512);
    benchmark::DoNotOptimize(sw.process(headers));
    ++n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ReferenceSwitch);

} // namespace
