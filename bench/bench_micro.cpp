// Microbenchmarks (google-benchmark) for the performance-critical pieces
// of the library: the stage FIFO operations, the Domino compiler, address
// resolution, and whole-simulator cycle throughput.
//
// Custom main: the usual console output plus a BENCH_micro.json capture of
// every run (see src/telemetry/bench_report.hpp for the schema and the
// MP5_BENCH_JSON_DIR output-directory override).
#include <benchmark/benchmark.h>

#include <iostream>

#include "apps/programs.hpp"
#include "banzai/single_pipeline.hpp"
#include "baseline/presets.hpp"
#include "domino/compiler.hpp"
#include "mp5/simulator.hpp"
#include "mp5/stage_fifo.hpp"
#include "packet/arena.hpp"
#include "mp5/transform.hpp"
#include "telemetry/bench_report.hpp"
#include "trace/workloads.hpp"

namespace {

using namespace mp5;

void BM_StageFifoPushInsertPop(benchmark::State& state) {
  StageFifo fifo(4, 0, false);
  SeqNo seq = 0;
  for (auto _ : state) {
    fifo.push_phantom(seq, 0, static_cast<RegIndex>(seq % 64), seq % 4);
    fifo.insert_data(seq, static_cast<PacketRef>(seq));
    benchmark::DoNotOptimize(fifo.pop());
    ++seq;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(seq));
}
BENCHMARK(BM_StageFifoPushInsertPop);

void BM_StageFifoIdealPop(benchmark::State& state) {
  StageFifo fifo(4, 0, true);
  SeqNo seq = 0;
  for (auto _ : state) {
    fifo.push_phantom(seq, 0, static_cast<RegIndex>(seq % 8), seq % 4);
    fifo.insert_data(seq, static_cast<PacketRef>(seq));
    benchmark::DoNotOptimize(fifo.pop());
    ++seq;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(seq));
}
BENCHMARK(BM_StageFifoIdealPop);

void BM_PacketArenaAllocRelease(benchmark::State& state) {
  PacketArena arena;
  arena.reserve(64);
  std::uint64_t n = 0;
  for (auto _ : state) {
    // Steady-state churn: 8 live packets cycling through the freelist.
    PacketRef refs[8];
    for (auto& r : refs) {
      r = arena.alloc();
      arena.get(r).seq = static_cast<SeqNo>(n++);
    }
    for (const auto r : refs) arena.release(r);
    benchmark::DoNotOptimize(arena.live_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PacketArenaAllocRelease);

void BM_CompileFlowlet(benchmark::State& state) {
  const auto source = apps::flowlet_app().source;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        domino::compile(source, banzai::MachineSpec{}, 1));
  }
}
BENCHMARK(BM_CompileFlowlet);

void BM_TransformFlowlet(benchmark::State& state) {
  const auto pvsm =
      domino::compile(apps::flowlet_app().source, banzai::MachineSpec{}, 1)
          .pvsm;
  for (auto _ : state) {
    benchmark::DoNotOptimize(transform(pvsm));
  }
}
BENCHMARK(BM_TransformFlowlet);

void BM_SimulatorCyclesPerSecond(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const auto prog =
      transform(domino::compile(apps::make_synthetic_source(4, 512),
                                banzai::MachineSpec{}, 1)
                    .pvsm);
  SyntheticConfig config;
  config.pipelines = k;
  config.packets = 5000;
  const auto trace = make_synthetic_trace(config);
  std::uint64_t cycles = 0, packets = 0;
  for (auto _ : state) {
    Mp5Simulator sim(prog, mp5_options(k, 1));
    const auto result = sim.run(trace);
    cycles += result.cycles_run;
    packets += result.egressed;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["packets/s"] = benchmark::Counter(
      static_cast<double>(packets), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorCyclesPerSecond)->Arg(2)->Arg(4)->Arg(8);

void BM_SimulatorParallel(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const auto threads = static_cast<std::uint32_t>(state.range(1));
  const auto prog =
      transform(domino::compile(apps::make_synthetic_source(4, 512),
                                banzai::MachineSpec{}, 1)
                    .pvsm);
  SyntheticConfig config;
  config.pipelines = k;
  config.packets = 5000;
  const auto trace = make_synthetic_trace(config);
  auto opts = mp5_options(k, 1);
  opts.threads = threads;
  std::uint64_t cycles = 0, packets = 0;
  for (auto _ : state) {
    Mp5Simulator sim(prog, opts);
    const auto result = sim.run(trace);
    cycles += result.cycles_run;
    packets += result.egressed;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["packets/s"] = benchmark::Counter(
      static_cast<double>(packets), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorParallel)->Args({8, 1})->Args({8, 4});

/// The event-engine headline scenario: sparse traffic (~0.2% of line
/// rate, well under 1% cell occupancy) under a live maintenance fault
/// plan — one transient stage stall plus one lane fail/recover. Any fault
/// plan pins lockstep to the cycle-by-cycle walk (fast-forward is
/// unsound against wall-clock-scheduled faults), scanning k × stages
/// cells every cycle; the event engine visits only occupied cells and
/// still skips drained cycle ranges, clamping at the fault boundaries.
/// Args: {k, engine (0 = lockstep, 1 = event), threads}.
void BM_SimulatorSparse(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const bool event = state.range(1) != 0;
  const auto threads = static_cast<std::uint32_t>(state.range(2));
  const auto prog =
      transform(domino::compile(apps::make_synthetic_source(4, 512),
                                banzai::MachineSpec{}, 1)
                    .pvsm);
  SyntheticConfig config;
  config.pipelines = k;
  config.packets = 2000;
  config.load = 0.002;
  const auto trace = make_synthetic_trace(config);
  auto opts = mp5_options(k, 1);
  opts.engine = event ? SimEngine::kEvent : SimEngine::kLockstep;
  opts.threads = threads;
  opts.faults.stalls.push_back(StageStall{1, 1, 1000, 1200});
  opts.faults.pipeline_faults.push_back(PipelineFault{2, 5000, 9000});
  std::uint64_t cycles = 0, packets = 0;
  for (auto _ : state) {
    Mp5Simulator sim(prog, opts);
    const auto result = sim.run(trace);
    cycles += result.cycles_run;
    packets += result.egressed;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["packets/s"] = benchmark::Counter(
      static_cast<double>(packets), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorSparse)
    ->Args({8, 0, 1})
    ->Args({8, 1, 1})
    ->Args({8, 1, 4})
    ->Args({16, 0, 1})
    ->Args({16, 1, 1})
    ->Args({32, 0, 1})
    ->Args({32, 1, 1});

void BM_ReferenceSwitch(benchmark::State& state) {
  const auto pvsm =
      domino::compile(apps::make_synthetic_source(4, 512)).pvsm;
  banzai::ReferenceSwitch sw(pvsm);
  std::vector<Value> headers(pvsm.num_slots(), 0);
  std::uint64_t n = 0;
  for (auto _ : state) {
    headers[0] = static_cast<Value>(n % 512);
    benchmark::DoNotOptimize(sw.process(headers));
    ++n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ReferenceSwitch);

/// Console output as usual, with every (non-errored) run also captured
/// into the BENCH_micro.json report.
class CaptureReporter final : public benchmark::ConsoleReporter {
public:
  explicit CaptureReporter(telemetry::BenchReport* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.error_occurred) continue;
      auto& row = report_->row(run.benchmark_name());
      row.metric("real_time_ns", run.GetAdjustedRealTime());
      row.metric("cpu_time_ns", run.GetAdjustedCPUTime());
      row.metric("iterations", static_cast<double>(run.iterations));
      for (const auto& [name, counter] : run.counters) {
        row.metric(name, counter.value);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

private:
  telemetry::BenchReport* report_;
};

} // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  telemetry::BenchReport report("micro");
  CaptureReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  std::cout << "bench json: " << report.write() << " (" << report.size()
            << " rows)\n";
  return 0;
}
