// Fabric-level end-to-end bench: a 4-leaf x 2-spine Clos of MP5 switches
// under every load-balancing mode, one row per mode.
//
// The gated metric is fabric_cycles_per_second — how fast the whole-fabric
// simulation advances (all N+M switches stepped per cycle plus link and
// workload bookkeeping). Delivery fraction, FCT tail, uplink skew and
// end-to-end reordering ride along as context metrics so mode-to-mode
// quality comparisons live in the same artifact.
//
// `--quick` shrinks the workload for the CI fabric-smoke job.
#include <chrono>
#include <iostream>
#include <string_view>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "fabric/fabric.hpp"

using namespace mp5;
using namespace mp5::bench;
using namespace mp5::fabric;

namespace {

FabricOptions bench_options(LbMode lb, std::uint64_t flows) {
  FabricOptions o;
  o.topology.leaves = 4;
  o.topology.spines = 2;
  o.topology.hosts_per_leaf = 16;
  o.lb = lb;
  o.workload.flows = flows;
  o.workload.flow_rate = 1.0;
  o.workload.mean_lifetime = 4'000.0;
  o.seed = 1;
  return o;
}

} // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string_view(argv[1]) == "--quick";
  const std::uint64_t flows = quick ? 4'000 : 20'000;
  BenchReport report("fabric");

  print_header("Fabric: 4x2 leaf-spine Clos, end-to-end load balancing",
               "CONGA/flowlet run in switch state (§4.4); ECMP/WCMP hash "
               "at the leaves");
  TextTable table({"lb", "cycles", "delivered", "fct p99", "lat p99",
                   "uplink skew", "reordered", "Mcycles/s"});
  for (const LbMode lb :
       {LbMode::kEcmp, LbMode::kWcmp, LbMode::kFlowlet, LbMode::kConga}) {
    const FabricOptions opts = bench_options(lb, flows);
    FabricSimulator sim(opts);
    const auto start = std::chrono::steady_clock::now();
    const FabricResult r = sim.run();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const double cycles_per_s = static_cast<double>(r.cycles_run) / elapsed;
    report.row("fabric:" + lb_mode_name(lb))
        .metric("fabric_cycles_per_second", cycles_per_s)
        .metric("cycles_run", static_cast<double>(r.cycles_run))
        .metric("delivered_fraction", r.delivered_fraction)
        .metric("throughput_pkts_per_cycle", r.throughput_pkts_per_cycle)
        .metric("fct_p99", r.fct_p99)
        .metric("latency_p99", r.latency_p99)
        .metric("uplink_util_skew", r.uplink_util_skew)
        .metric("reordered_packets", static_cast<double>(r.reordered_packets))
        .label("topology", "4x2x16");
    table.add_row({lb_mode_name(lb),
                   TextTable::integer(static_cast<long long>(r.cycles_run)),
                   TextTable::num(r.delivered_fraction * 100.0, 2) + "%",
                   TextTable::num(r.fct_p99, 0), TextTable::num(r.latency_p99, 0),
                   TextTable::num(r.uplink_util_skew, 3),
                   TextTable::integer(
                       static_cast<long long>(r.reordered_packets)),
                   TextTable::num(cycles_per_s / 1e6, 2)});
  }
  table.print(std::cout);
  finish_report(report);
  return 0;
}
