// Beyond-paper ablations of MP5 design knobs that §3.4/§3.5 discuss
// qualitatively:
//   * remap period of the dynamic sharding heuristic ("every few 100s of
//     clock cycles");
//   * bounded FIFO depth (the ASIC uses 8 entries/lane; the paper sized it
//     from the observed max queue depth of 11) -> drop behaviour;
//   * cost of conservative phantoms (stateful predicates) vs a resolvable
//     rewrite of the same program.
#include <iostream>

#include "apps/programs.hpp"
#include "bench_util.hpp"

using namespace mp5;
using namespace mp5::bench;

int main() {
  constexpr std::uint64_t kPackets = 20000;
  constexpr int kRuns = 5;
  BenchReport report("ablation_remap");

  print_header("Ablation: dynamic-sharding remap period", "");
  {
    const auto prog = compile_for_mp5(apps::make_synthetic_source(4, 512));
    TextTable table({"remap period (cycles)", "throughput (skewed)",
                     "remap moves"});
    for (const std::uint32_t period : {0u, 25u, 50u, 100u, 200u, 400u, 800u}) {
      RunningStats throughput;
      std::uint64_t moves = 0;
      for (int run = 1; run <= kRuns; ++run) {
        SensitivityPoint point;
        point.pattern = AccessPattern::kSkewed;
        point.packets = kPackets;
        point.active_flows = 32;
        SimOptions opts = mp5_options(4, run);
        opts.remap_period = period;
        if (period == 0) opts.sharding = ShardingPolicy::kStaticRandom;
        Mp5Simulator sim(prog, opts);
        const auto result = sim.run(make_trace(point, run));
        throughput.add(result.normalized_throughput());
        moves += result.remap_moves;
      }
      report.row("remap_period:" + std::to_string(period))
          .metric("period", period)
          .metric("throughput", throughput.mean())
          .metric("remap_moves", static_cast<double>(moves / kRuns));
      table.add_row({period == 0 ? "off (static)" : std::to_string(period),
                     TextTable::num(throughput.mean(), 3),
                     TextTable::integer(static_cast<long long>(moves / kRuns))});
    }
    table.print(std::cout);
  }

  print_header("Ablation: bounded FIFO depth vs drops",
               "paper sizes 8 entries/lane from observed max depth 11");
  {
    const auto prog = compile_for_mp5(apps::make_synthetic_source(4, 512));
    TextTable table({"FIFO capacity/lane", "throughput", "drop fraction",
                     "phantom drops", "data drops"});
    for (const std::size_t cap : {1ul, 2ul, 4ul, 8ul, 16ul, 0ul}) {
      SensitivityPoint point;
      point.pattern = AccessPattern::kSkewed;
      point.packets = kPackets;
      point.active_flows = 32;
      SimOptions opts = mp5_options(4, 1);
      opts.fifo_capacity = cap;
      Mp5Simulator sim(prog, opts);
      const auto result = sim.run(make_trace(point, 1));
      report.row("fifo_capacity:" + std::to_string(cap))
          .metric("capacity", static_cast<double>(cap))
          .metric("throughput", result.normalized_throughput())
          .metric("drop_fraction", result.drop_fraction())
          .metric("dropped_phantom",
                  static_cast<double>(result.dropped_phantom))
          .metric("dropped_data", static_cast<double>(result.dropped_data));
      table.add_row(
          {cap == 0 ? "unbounded" : std::to_string(cap),
           TextTable::num(result.normalized_throughput(), 3),
           TextTable::pct(result.drop_fraction()),
           TextTable::integer(static_cast<long long>(result.dropped_phantom)),
           TextTable::integer(static_cast<long long>(result.dropped_data))});
    }
    table.print(std::cout);
  }

  print_header("Ablation: conservative phantoms (stateful predicate)",
               "one wasted pop cycle per cancelled phantom, §3.3");
  {
    const auto prog = compile_for_mp5(apps::stateful_predicate_source());
    TextTable table({"pipelines", "throughput", "wasted cycles / packet"});
    for (const std::uint32_t k : {2u, 4u, 8u}) {
      RunningStats throughput, wasted;
      for (int run = 1; run <= kRuns; ++run) {
        SyntheticConfig config; // reuse the generic 3-field random trace
        config.stateful_stages = 2;
        config.reg_size = 64;
        config.pipelines = k;
        config.packets = kPackets;
        config.seed = static_cast<std::uint64_t>(run);
        auto trace = make_synthetic_trace(config);
        Mp5Simulator sim(prog, mp5_options(k, run));
        const auto result = sim.run(trace);
        throughput.add(result.normalized_throughput());
        wasted.add(static_cast<double>(result.wasted_cycles) /
                   static_cast<double>(result.offered));
      }
      report.row("conservative:k" + std::to_string(k))
          .metric("pipelines", k)
          .metric("throughput", throughput.mean())
          .metric("wasted_per_pkt", wasted.mean());
      table.add_row({TextTable::integer(k), TextTable::num(throughput.mean(), 3),
                     TextTable::num(wasted.mean(), 3)});
    }
    table.print(std::cout);
  }
  print_header("Ablation: starvation guard and ECN marking (§3.4)",
               "guard drops stateless packets for over-age stateful queues; "
               "marking flags packets joining congested FIFOs");
  {
    // Mixed stateful/stateless traffic on a serial (scalar) register.
    const auto prog = compile_for_mp5(R"(
      struct Packet { int kind; int v; }
      ;
      int counter = 0;
      void f(struct Packet p) {
        if (p.kind == 1) { counter = counter + 1; p.v = counter; }
      }
    )");
    Rng field_rng(99);
    Trace trace;
    LineRateClock clock(4, 1.0);
    for (int i = 0; i < 20000; ++i) {
      TraceItem item;
      item.arrival_time = clock.next(64);
      item.port = static_cast<std::uint32_t>(i % 64);
      item.fields = {field_rng.chance(0.5) ? 1 : 0, 0};
      trace.push_back(std::move(item));
    }
    TextTable table({"starvation threshold", "throughput", "starved drops",
                     "ECN-marked"});
    for (const std::uint64_t threshold : {0ull, 200ull, 50ull, 10ull}) {
      SimOptions opts = mp5_options(4, 1);
      opts.starvation_threshold = threshold;
      opts.ecn_threshold = 16;
      Mp5Simulator sim(prog, opts);
      const auto result = sim.run(trace);
      report.row("starvation:" + std::to_string(threshold))
          .metric("threshold", static_cast<double>(threshold))
          .metric("throughput", result.normalized_throughput())
          .metric("dropped_starved",
                  static_cast<double>(result.dropped_starved))
          .metric("ecn_marked", static_cast<double>(result.ecn_marked));
      table.add_row(
          {threshold == 0 ? "off" : std::to_string(threshold),
           TextTable::num(result.normalized_throughput(), 3),
           TextTable::integer(static_cast<long long>(result.dropped_starved)),
           TextTable::integer(static_cast<long long>(result.ecn_marked))});
    }
    table.print(std::cout);
  }
  finish_report(report);
  return 0;
}
