// Beyond-paper ablations of MP5 design knobs that §3.4/§3.5 discuss
// qualitatively:
//   * remap period of the dynamic sharding heuristic ("every few 100s of
//     clock cycles");
//   * bounded FIFO depth (the ASIC uses 8 entries/lane; the paper sized it
//     from the observed max queue depth of 11) -> drop behaviour;
//   * cost of conservative phantoms (stateful predicates) vs a resolvable
//     rewrite of the same program;
//   * incremental (O(touched)) vs full-scan D2 accounting on large sparse
//     tables (the production-scale case: a huge register array with a
//     small Zipf working set).
//
// `--only-sparse` runs just the incremental-accounting section (the CI
// bench-smoke job gates it against bench/baselines/).
#include <chrono>
#include <iostream>
#include <string_view>

#include "apps/programs.hpp"
#include "bench_util.hpp"
#include "common/zipf.hpp"
#include "mp5/shard_map.hpp"

using namespace mp5;
using namespace mp5::bench;

namespace {

// Drive a ShardedState directly: per window, `kPerWindow` resolved+completed
// accesses Zipf-drawn from a <=1K-index working set spread across the table,
// then one periodic rebalance through the chosen path. Returns accesses/s.
double drive_sparse_remap(std::size_t table_size, bool incremental,
                          std::uint64_t& windows_out,
                          std::uint64_t& moves_out) {
  constexpr int kPerWindow = 256;     // accesses per remap window
  constexpr std::uint64_t kHot = 1024; // distinct working-set indices
  ir::RegisterSpec spec;
  spec.name = "t";
  spec.size = table_size;
  ShardedState state({spec}, {true}, 4, ShardingPolicy::kDynamic, Rng(1));
  ZipfSampler zipf(kHot, 1.1);
  Rng rng(7);
  const std::uint64_t stride = table_size / kHot; // decouple hot set from
                                                  // initial lane placement
  std::uint64_t windows = 0, accesses = 0, moves = 0;
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  while (elapsed < 0.25) {
    for (int batch = 0; batch < 8; ++batch, ++windows) {
      for (int a = 0; a < kPerWindow; ++a) {
        const auto index =
            static_cast<RegIndex>(zipf.sample(rng) * stride % table_size);
        state.note_resolved(0, index);
        state.note_completed(0, index);
      }
      accesses += kPerWindow;
      moves += incremental ? state.rebalance() : state.rebalance_reference();
    }
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  }
  windows_out = windows;
  moves_out = moves;
  return static_cast<double>(accesses) / elapsed;
}

} // namespace

int main(int argc, char** argv) {
  const bool only_sparse =
      argc > 1 && std::string_view(argv[1]) == "--only-sparse";
  constexpr std::uint64_t kPackets = 20000;
  constexpr int kRuns = 5;
  BenchReport report("ablation_remap");

  if (!only_sparse) {
    print_header("Ablation: dynamic-sharding remap period", "");
    const auto prog = compile_for_mp5(apps::make_synthetic_source(4, 512));
    TextTable table({"remap period (cycles)", "throughput (skewed)",
                     "remap moves"});
    for (const std::uint32_t period : {0u, 25u, 50u, 100u, 200u, 400u, 800u}) {
      RunningStats throughput;
      std::uint64_t moves = 0;
      for (int run = 1; run <= kRuns; ++run) {
        SensitivityPoint point;
        point.pattern = AccessPattern::kSkewed;
        point.packets = kPackets;
        point.active_flows = 32;
        SimOptions opts = mp5_options(4, run);
        opts.remap_period = period;
        if (period == 0) opts.sharding = ShardingPolicy::kStaticRandom;
        Mp5Simulator sim(prog, opts);
        const auto result = sim.run(make_trace(point, run));
        throughput.add(result.normalized_throughput());
        moves += result.remap_moves;
      }
      report.row("remap_period:" + std::to_string(period))
          .metric("period", period)
          .metric("throughput", throughput.mean())
          .metric("remap_moves", static_cast<double>(moves / kRuns));
      table.add_row({period == 0 ? "off (static)" : std::to_string(period),
                     TextTable::num(throughput.mean(), 3),
                     TextTable::integer(static_cast<long long>(moves / kRuns))});
    }
    table.print(std::cout);
  }

  if (!only_sparse) {
    print_header("Ablation: bounded FIFO depth vs drops",
                 "paper sizes 8 entries/lane from observed max depth 11");
    const auto prog = compile_for_mp5(apps::make_synthetic_source(4, 512));
    TextTable table({"FIFO capacity/lane", "throughput", "drop fraction",
                     "phantom drops", "data drops"});
    for (const std::size_t cap : {1ul, 2ul, 4ul, 8ul, 16ul, 0ul}) {
      SensitivityPoint point;
      point.pattern = AccessPattern::kSkewed;
      point.packets = kPackets;
      point.active_flows = 32;
      SimOptions opts = mp5_options(4, 1);
      opts.fifo_capacity = cap;
      Mp5Simulator sim(prog, opts);
      const auto result = sim.run(make_trace(point, 1));
      report.row("fifo_capacity:" + std::to_string(cap))
          .metric("capacity", static_cast<double>(cap))
          .metric("throughput", result.normalized_throughput())
          .metric("drop_fraction", result.drop_fraction())
          .metric("dropped_phantom",
                  static_cast<double>(result.dropped_phantom))
          .metric("dropped_data", static_cast<double>(result.dropped_data));
      table.add_row(
          {cap == 0 ? "unbounded" : std::to_string(cap),
           TextTable::num(result.normalized_throughput(), 3),
           TextTable::pct(result.drop_fraction()),
           TextTable::integer(static_cast<long long>(result.dropped_phantom)),
           TextTable::integer(static_cast<long long>(result.dropped_data))});
    }
    table.print(std::cout);
  }

  if (!only_sparse) {
    print_header("Ablation: conservative phantoms (stateful predicate)",
                 "one wasted pop cycle per cancelled phantom, §3.3");
    const auto prog = compile_for_mp5(apps::stateful_predicate_source());
    TextTable table({"pipelines", "throughput", "wasted cycles / packet"});
    for (const std::uint32_t k : {2u, 4u, 8u}) {
      RunningStats throughput, wasted;
      for (int run = 1; run <= kRuns; ++run) {
        SyntheticConfig config; // reuse the generic 3-field random trace
        config.stateful_stages = 2;
        config.reg_size = 64;
        config.pipelines = k;
        config.packets = kPackets;
        config.seed = static_cast<std::uint64_t>(run);
        auto trace = make_synthetic_trace(config);
        Mp5Simulator sim(prog, mp5_options(k, run));
        const auto result = sim.run(trace);
        throughput.add(result.normalized_throughput());
        wasted.add(static_cast<double>(result.wasted_cycles) /
                   static_cast<double>(result.offered));
      }
      report.row("conservative:k" + std::to_string(k))
          .metric("pipelines", k)
          .metric("throughput", throughput.mean())
          .metric("wasted_per_pkt", wasted.mean());
      table.add_row({TextTable::integer(k), TextTable::num(throughput.mean(), 3),
                     TextTable::num(wasted.mean(), 3)});
    }
    table.print(std::cout);
  }
  if (!only_sparse) {
    print_header("Ablation: starvation guard and ECN marking (§3.4)",
                 "guard drops stateless packets for over-age stateful queues; "
                 "marking flags packets joining congested FIFOs");
    // Mixed stateful/stateless traffic on a serial (scalar) register.
    const auto prog = compile_for_mp5(R"(
      struct Packet { int kind; int v; }
      ;
      int counter = 0;
      void f(struct Packet p) {
        if (p.kind == 1) { counter = counter + 1; p.v = counter; }
      }
    )");
    Rng field_rng(99);
    Trace trace;
    LineRateClock clock(4, 1.0);
    for (int i = 0; i < 20000; ++i) {
      TraceItem item;
      item.arrival_time = clock.next(64);
      item.port = static_cast<std::uint32_t>(i % 64);
      item.fields = {field_rng.chance(0.5) ? 1 : 0, 0};
      trace.push_back(std::move(item));
    }
    TextTable table({"starvation threshold", "throughput", "starved drops",
                     "ECN-marked"});
    for (const std::uint64_t threshold : {0ull, 200ull, 50ull, 10ull}) {
      SimOptions opts = mp5_options(4, 1);
      opts.starvation_threshold = threshold;
      opts.ecn_threshold = 16;
      Mp5Simulator sim(prog, opts);
      const auto result = sim.run(trace);
      report.row("starvation:" + std::to_string(threshold))
          .metric("threshold", static_cast<double>(threshold))
          .metric("throughput", result.normalized_throughput())
          .metric("dropped_starved",
                  static_cast<double>(result.dropped_starved))
          .metric("ecn_marked", static_cast<double>(result.ecn_marked));
      table.add_row(
          {threshold == 0 ? "off" : std::to_string(threshold),
           TextTable::num(result.normalized_throughput(), 3),
           TextTable::integer(static_cast<long long>(result.dropped_starved)),
           TextTable::integer(static_cast<long long>(result.ecn_marked))});
    }
    table.print(std::cout);
  }

  print_header("Ablation: incremental vs full-scan D2 accounting",
               "large sparse tables — remap cost proportional to the "
               "working set, not the table (DESIGN.md)");
  {
    TextTable table({"table size", "accounting", "windows", "accesses/s",
                     "moves/window", "speedup"});
    for (const std::size_t size : {std::size_t{1} << 18, std::size_t{1} << 20}) {
      double rates[2] = {0.0, 0.0};
      for (const bool incremental : {false, true}) {
        std::uint64_t windows = 0, moves = 0;
        const double rate = drive_sparse_remap(size, incremental, windows,
                                               moves);
        rates[incremental ? 1 : 0] = rate;
        const std::string label = incremental ? "incremental" : "full_scan";
        report.row("sparse_remap:" + std::to_string(size) + ":" + label)
            .metric("table_size", static_cast<double>(size))
            .metric("windows", static_cast<double>(windows))
            .metric("accesses_per_second", rate)
            .metric("moves_per_window",
                    static_cast<double>(moves) / static_cast<double>(windows));
        table.add_row(
            {TextTable::integer(static_cast<long long>(size)), label,
             TextTable::integer(static_cast<long long>(windows)),
             TextTable::num(rate, 0),
             TextTable::num(static_cast<double>(moves) /
                                static_cast<double>(windows), 3),
             incremental ? TextTable::num(rates[1] / rates[0], 1) + "x" : "-"});
      }
    }
    table.print(std::cout);
  }
  finish_report(report);
  return 0;
}
