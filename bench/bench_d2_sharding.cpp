// Reproduces the D2 microbenchmark (§4.3.2): dynamic state sharding vs a
// static random compile-time sharding, over ten independent input streams.
// The paper reports 1.1-3.3x higher throughput with dynamic sharding on the
// skewed pattern and 1-1.5x even on the uniform pattern.
//
// Reproduction notes (see EXPERIMENTS.md):
//   * With the literal two-class skew (95% of packets uniformly over 30% of
//     the 512 indexes) the realized per-pipeline load is already close to
//     balanced under any random placement, and under sustained overload the
//     in-flight guard of Figure 6 freezes hot indexes in place, so gains
//     are small. The Zipf-weighted skew (hot indexes of very different
//     rates) is where rebalancing pays off, matching the paper's band.
#include <iostream>

#include "apps/programs.hpp"
#include "bench_util.hpp"

using namespace mp5;
using namespace mp5::bench;

namespace {

constexpr int kStreams = 10;
constexpr std::uint64_t kPackets = 20000;

void run_pattern(BenchReport& report, const std::string& key,
                 const Mp5Program& prog, const std::string& name,
                 AccessPattern pattern, double zipf_exponent,
                 std::uint32_t active_flows) {
  TextTable table({"stream", "dynamic", "static", "speedup"});
  RunningStats ratios;
  for (int stream = 1; stream <= kStreams; ++stream) {
    SyntheticConfig config;
    config.stateful_stages = 4;
    config.reg_size = 512;
    config.pattern = pattern;
    config.zipf_exponent = zipf_exponent;
    config.pipelines = 4;
    config.packets = kPackets;
    config.seed = static_cast<std::uint64_t>(stream);
    config.active_flows = active_flows;
    config.mean_flow_packets = 3000;
    const auto trace = make_synthetic_trace(config);

    Mp5Simulator dynamic(prog, mp5_options(4, stream));
    Mp5Simulator fixed(prog, no_d2_options(4, stream));
    const double t_dynamic = dynamic.run(trace).normalized_throughput();
    const double t_static = fixed.run(trace).normalized_throughput();
    const double ratio = t_static > 0 ? t_dynamic / t_static : 0.0;
    ratios.add(ratio);
    table.add_row({TextTable::integer(stream), TextTable::num(t_dynamic, 3),
                   TextTable::num(t_static, 3),
                   TextTable::num(ratio, 2) + "x"});
  }
  std::cout << "--- " << name << " ---\n";
  table.print(std::cout);
  std::cout << "speedup range: " << TextTable::num(ratios.min(), 2) << "x - "
            << TextTable::num(ratios.max(), 2) << "x (mean "
            << TextTable::num(ratios.mean(), 2) << "x)\n\n";
  report.row(key)
      .label("pattern", name)
      .metric("speedup_min", ratios.min())
      .metric("speedup_max", ratios.max())
      .metric("speedup_mean", ratios.mean())
      .metric("streams", kStreams);
}

} // namespace

int main() {
  print_header("D2: dynamic vs static state sharding",
               "skewed: 1.1-3.3x; uniform: 1-1.5x across ten streams");

  const auto prog = compile_for_mp5(apps::make_synthetic_source(4, 512));

  BenchReport report("d2_sharding");
  run_pattern(report, "zipf", prog,
              "Zipf-weighted skew (hot indexes of unequal rates)",
              AccessPattern::kZipf, 0.9, /*active_flows=*/0);
  run_pattern(report, "two_class_skew", prog,
              "two-class skew (95% pkts -> 30% states), flow churn",
              AccessPattern::kSkewed, 1.0, /*active_flows=*/32);
  run_pattern(report, "uniform_churn", prog,
              "uniform with flow churn (short-time-scale skew)",
              AccessPattern::kUniform, 1.0, /*active_flows=*/32);
  finish_report(report);
  return 0;
}
