// Reproduces Table 1 (§4.2): chip area and clock speed of MP5's new
// components against varying pipelines (k) and stages (s), plus the SRAM
// overhead estimate quoted in the same section.
#include <iostream>

#include "common/table.hpp"
#include "hw/area_model.hpp"
#include "telemetry/bench_report.hpp"

int main() {
  using namespace mp5;
  using namespace mp5::hw;
  telemetry::BenchReport report("table1_area");

  std::cout << "\n=== Table 1: chip area and clock speed (analytic model "
               "calibrated to the paper's ASIC synthesis) ===\n\n";

  TextTable table({"k", "s", "model mm^2", "paper mm^2", "delta", "clock",
                   ">=1GHz"});
  for (const std::uint32_t k : {2u, 4u, 8u}) {
    for (const std::uint32_t s : {4u, 8u, 12u, 16u}) {
      HwConfig config;
      config.pipelines = k;
      config.stages = s;
      const auto area = chip_area(config);
      const double paper = paper_table1_mm2(k, s);
      report.row("k" + std::to_string(k) + "_s" + std::to_string(s))
          .metric("pipelines", k)
          .metric("stages", s)
          .metric("model_mm2", area.total_mm2)
          .metric("paper_mm2", paper)
          .metric("clock_ghz", clock_ghz(config))
          .metric("meets_1ghz", meets_1ghz(config) ? 1.0 : 0.0);
      table.add_row({
          TextTable::integer(k),
          TextTable::integer(s),
          TextTable::num(area.total_mm2, 2),
          TextTable::num(paper, 2),
          TextTable::pct((area.total_mm2 - paper) / paper, 1),
          TextTable::num(clock_ghz(config), 2) + " GHz",
          meets_1ghz(config) ? "yes" : "NO",
      });
    }
  }
  table.print(std::cout);

  std::cout << "\nArea breakdown at k=4, s=16 (crossbar-dominated, cf. "
               "dRMT [12]):\n";
  HwConfig ref;
  ref.pipelines = 4;
  ref.stages = 16;
  const auto area = chip_area(ref);
  TextTable breakdown({"component", "mm^2", "share"});
  breakdown.add_row({"data crossbars", TextTable::num(area.data_crossbar_mm2, 3),
                     TextTable::pct(area.data_crossbar_mm2 / area.total_mm2)});
  breakdown.add_row(
      {"phantom crossbars", TextTable::num(area.phantom_crossbar_mm2, 3),
       TextTable::pct(area.phantom_crossbar_mm2 / area.total_mm2)});
  breakdown.add_row({"stage FIFOs", TextTable::num(area.fifo_mm2, 3),
                     TextTable::pct(area.fifo_mm2 / area.total_mm2)});
  breakdown.add_row(
      {"steering/sharding logic", TextTable::num(area.steering_logic_mm2, 3),
       TextTable::pct(area.steering_logic_mm2 / area.total_mm2)});
  breakdown.print(std::cout);
  report.row("breakdown_k4_s16")
      .metric("data_crossbar_mm2", area.data_crossbar_mm2)
      .metric("phantom_crossbar_mm2", area.phantom_crossbar_mm2)
      .metric("fifo_mm2", area.fifo_mm2)
      .metric("steering_logic_mm2", area.steering_logic_mm2)
      .metric("total_mm2", area.total_mm2);

  std::cout << "\nSRAM overhead (30 bits/register index: 6 map + 16 access "
               "counter + 8 in-flight):\n";
  TextTable sram({"stateful stages", "entries/stage", "KB per pipeline"});
  for (const std::uint32_t stages : {4u, 10u}) {
    for (const std::uint64_t entries : {512ull, 1000ull, 4096ull}) {
      sram.add_row({TextTable::integer(stages), TextTable::integer(
                                                    static_cast<long long>(entries)),
                    TextTable::num(sram_overhead_bytes_per_pipeline(
                                       stages, entries) /
                                       1024.0,
                                   1)});
    }
  }
  sram.print(std::cout);
  std::cout << "paper reference point: 10 stages x 1000 entries ~ 35 KB per "
               "pipeline, nominal against 50-100 MB switch SRAM.\n";

  std::cout << "\n(§3.5.3 future-work extension) chiplet disaggregation of "
               "an 8-pipeline, 16-stage interconnect:\n";
  TextTable chiplets({"chiplets", "local xbars mm^2", "D2D mm^2",
                      "total mm^2", "cross-chiplet clock",
                      "cross traffic"});
  HwConfig big;
  big.pipelines = 8;
  big.stages = 16;
  chiplets.add_row({"1 (monolithic)", TextTable::num(chip_area(big).total_mm2, 2),
                    "0", TextTable::num(chip_area(big).total_mm2, 2),
                    TextTable::num(clock_ghz(big), 2) + " GHz", "0%"});
  for (const std::uint32_t c : {2u, 4u}) {
    ChipletConfig config;
    config.base = big;
    config.chiplets = c;
    const auto cost = chiplet_cost(config);
    chiplets.add_row({std::to_string(c),
                      TextTable::num(cost.local_crossbar_mm2, 2),
                      TextTable::num(cost.d2d_interface_mm2, 2),
                      TextTable::num(cost.total_mm2, 2),
                      TextTable::num(cost.cross_chiplet_ghz, 2) + " GHz",
                      TextTable::pct(cost.cross_traffic_fraction, 0)});
  }
  chiplets.print(std::cout);
  std::cout << "quadratic crossbars shrink with disaggregation, but the "
               "cross-chiplet path drops below the 1 GHz stage clock — the "
               "interconnection-design problem §3.5.3 leaves open.\n";
  std::cout << "\nbench json: " << report.write() << " (" << report.size()
            << " rows)\n";
  return 0;
}
