// Reproduces Figure 8 (§4.4): throughput of the four real stateful
// applications — flowlet switching, CONGA, WFQ priority computation, and
// the NOPaxos network sequencer — on MP5 with realistic packet sizes
// (bimodal 200/1400 B) and a heavy-tailed web-search flow workload, versus
// the number of pipelines. The paper reports line rate for every
// application and pipeline count, with bounded per-stage queues (max 11 /
// 8 / 7 / 7 packets for flowlet / CONGA / WFQ / sequencer).
#include <iostream>

#include "bench_util.hpp"

using namespace mp5;
using namespace mp5::bench;

int main() {
  constexpr int kRuns = 5;
  constexpr std::uint64_t kPackets = 20000;
  BenchReport report("fig8_realapps");

  print_header(
      "Figure 8: real applications at line rate",
      "line rate for all apps and pipeline counts; bounded stage queues");
  std::cout << "workload: web-search flow sizes, bimodal 200/1400 B packets, "
            << kRuns << " streams x " << kPackets << " packets\n\n";

  for (const auto& app : apps::real_apps()) {
    const auto prog = compile_for_mp5(app.source);
    TextTable table({"pipelines", "throughput", "max stage queue",
                     "C1 violations", "conservative accesses"});
    for (const std::uint32_t k : {1u, 2u, 4u, 8u}) {
      RunningStats throughput;
      std::size_t max_queue = 0;
      std::uint64_t violations = 0;
      for (int run = 1; run <= kRuns; ++run) {
        FlowWorkloadConfig config;
        config.pipelines = k;
        config.packets = kPackets;
        config.seed = static_cast<std::uint64_t>(run);
        const auto trace = make_flow_trace(config, app.filler);
        Mp5Simulator sim(prog, mp5_options(k, config.seed));
        const auto result = sim.run(trace);
        throughput.add(result.normalized_throughput());
        max_queue = std::max(max_queue, result.max_queue_depth);
        violations += result.c1_violating_packets;
      }
      report.row(app.name + ":k" + std::to_string(k))
          .label("app", app.name)
          .metric("pipelines", k)
          .metric("throughput", throughput.mean())
          .metric("max_queue", static_cast<double>(max_queue))
          .metric("c1_violations", static_cast<double>(violations));
      table.add_row({
          TextTable::integer(k),
          TextTable::num(throughput.mean(), 3),
          TextTable::integer(static_cast<long long>(max_queue)),
          TextTable::integer(static_cast<long long>(violations)),
          TextTable::integer(
              static_cast<long long>(prog.conservative_accesses())),
      });
    }
    std::cout << "--- " << app.name << " ---\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  finish_report(report);
  return 0;
}
