// Reproduces Figure 7 (§4.3.3): sensitivity of MP5's normalized packet
// processing throughput to (a) number of pipelines, (b) number of stateful
// stages, (c) register array size, and (d) packet size, each against the
// ideal MP5 baseline (no HOL blocking, LPT sharding), for uniform and
// skewed (95%/30%) state access patterns.
//
// Expected shapes (paper): (a) mild decrease, ~25% from 1 to 16 pipelines;
// (b) ~20% decrease from 0 to 10 stateful stages; (c) steady increase with
// register size, bottoming near 1/k at size 1; (d) increase with packet
// size, line rate from 128 B. MP5 tracks ideal closely throughout.
#include <iostream>

#include "apps/programs.hpp"
#include "bench_util.hpp"
#include "mp5/admissibility.hpp"

using namespace mp5;
using namespace mp5::bench;

namespace {

constexpr int kRuns = 5;
constexpr std::uint64_t kPackets = 20000;

void run_series(BenchReport& report, const std::string& series,
                const std::string& title, const std::string& param_name,
                const std::vector<SensitivityPoint>& points,
                const std::vector<std::string>& labels) {
  print_header(title, "");
  TextTable table({param_name, "MP5 uniform", "ideal uniform", "MP5 skewed",
                   "ideal skewed"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    SensitivityPoint point = points[i];
    point.packets = kPackets;
    const auto prog = compile_for_mp5(apps::make_synthetic_source(
        point.stateful_stages, point.reg_size));
    auto& json_row = report.row(series + ":" + labels[i]);
    json_row.label("series", series).label(param_name, labels[i]);
    std::vector<std::string> row{labels[i]};
    for (const auto pattern : {AccessPattern::kUniform,
                               AccessPattern::kSkewed}) {
      point.pattern = pattern;
      const char* pat =
          pattern == AccessPattern::kUniform ? "uniform" : "skewed";
      const double mp5 = mean_throughput(
          prog, point, mp5_options(point.pipelines, 1), kRuns);
      const double ideal = mean_throughput(
          prog, point, ideal_options(point.pipelines, 1), kRuns);
      json_row.metric(std::string("mp5_") + pat, mp5);
      json_row.metric(std::string("ideal_") + pat, ideal);
      row.push_back(TextTable::num(mp5, 3));
      row.push_back(TextTable::num(ideal, 3));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

} // namespace

int main() {
  BenchReport report("fig7_sensitivity");
  std::cout << "=== Figure 7: sensitivity analysis (throughput normalized "
               "to input rate; mean of "
            << kRuns << " streams x " << kPackets << " packets) ===\n";
  std::cout << "defaults: 64 ports, 16-stage machine, 4 pipelines, 4 "
               "stateful stages, register size 512, 64 B packets, line-rate "
               "input, remap every 100 cycles\n";

  {
    std::vector<SensitivityPoint> points;
    std::vector<std::string> labels;
    for (const std::uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
      SensitivityPoint p;
      p.pipelines = k;
      points.push_back(p);
      labels.push_back(std::to_string(k));
    }
    run_series(report, "7a_pipelines",
               "Figure 7a: throughput vs number of pipelines", "pipelines",
               points, labels);
  }
  {
    std::vector<SensitivityPoint> points;
    std::vector<std::string> labels;
    for (const std::uint32_t n : {0u, 2u, 4u, 6u, 8u, 10u}) {
      SensitivityPoint p;
      p.stateful_stages = n;
      points.push_back(p);
      labels.push_back(std::to_string(n));
    }
    run_series(report, "7b_stateful_stages",
               "Figure 7b: throughput vs number of stateful stages",
               "stateful stages", points, labels);
  }
  {
    std::vector<SensitivityPoint> points;
    std::vector<std::string> labels;
    for (const std::size_t r : {1ul, 4ul, 16ul, 64ul, 256ul, 512ul, 1024ul,
                                4096ul}) {
      SensitivityPoint p;
      p.reg_size = r;
      points.push_back(p);
      labels.push_back(std::to_string(r));
    }
    run_series(report, "7c_register_size",
               "Figure 7c: throughput vs register array size",
               "register size", points, labels);
  }
  {
    std::vector<SensitivityPoint> points;
    std::vector<std::string> labels;
    for (const std::uint32_t b : {64u, 128u, 256u, 512u, 1024u, 1500u}) {
      SensitivityPoint p;
      p.packet_bytes = b;
      points.push_back(p);
      labels.push_back(std::to_string(b) + " B");
    }
    run_series(report, "7d_packet_size",
               "Figure 7d: throughput vs packet size", "packet size", points,
               labels);
  }
  {
    print_header(
        "§3.5.2 fundamental bound vs measured (register-size sweep)",
        "the bound is program+traffic-inherent; MP5's gap to it is its "
        "practical overhead");
    TextTable table({"register size", "bound", "MP5", "gap"});
    for (const std::size_t r : {1ul, 16ul, 256ul, 4096ul}) {
      SensitivityPoint point;
      point.reg_size = r;
      point.packets = kPackets;
      const auto prog = compile_for_mp5(
          apps::make_synthetic_source(point.stateful_stages, r));
      const auto trace = make_trace(point, 1);
      const auto bound = analyze_admissibility(prog, trace, point.pipelines);
      Mp5Simulator sim(prog, mp5_options(point.pipelines, 1));
      const double measured = sim.run(trace).normalized_throughput();
      report.row("bound:" + std::to_string(r))
          .label("series", "bound_vs_measured")
          .metric("bound", bound.bound)
          .metric("measured", measured);
      table.add_row({std::to_string(r), TextTable::num(bound.bound, 3),
                     TextTable::num(measured, 3),
                     TextTable::pct(bound.bound > 0
                                        ? 1.0 - measured / bound.bound
                                        : 0.0)});
    }
    table.print(std::cout);
  }
  finish_report(report);
  return 0;
}
