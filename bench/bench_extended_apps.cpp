// Beyond-paper: throughput of seven further stateful in-network
// algorithms from the family the paper analyzed for preemptive address
// resolution (count-min sketch, SYN-flood detection, DNS-amplification
// mitigation, RCP, sampled NetFlow, Bloom-filter firewall, DCTCP ECN
// accounting), on the §4.4 realistic workload.
//
// NetFlow's sampling predicate is stateful (the one class §3.3 predicts a
// nominal penalty for), and its global ticker plus RCP's global
// accumulators are §3.5.2's fundamentally serial programs — visible in the
// throughput column at high pipeline counts with small packets.
#include <iostream>

#include "bench_util.hpp"

using namespace mp5;
using namespace mp5::bench;

int main() {
  constexpr int kRuns = 3;
  constexpr std::uint64_t kPackets = 15000;

  print_header("Extended applications on MP5", "");
  std::cout << "workload: web-search flows, bimodal 200/1400 B packets, "
            << kRuns << " streams x " << kPackets << " packets\n\n";

  BenchReport report("extended_apps");
  TextTable table({"app", "k=4 thr", "k=8 thr", "max queue", "conservative",
                   "pinned", "wasted/pkt"});
  for (const auto& app : apps::extended_apps()) {
    const auto prog = compile_for_mp5(app.source);
    auto& json_row = report.row(app.name);
    std::vector<std::string> row{app.name};
    std::size_t max_queue = 0;
    double wasted_per_pkt = 0.0;
    for (const std::uint32_t k : {4u, 8u}) {
      RunningStats throughput;
      for (int run = 1; run <= kRuns; ++run) {
        FlowWorkloadConfig config;
        config.pipelines = k;
        config.packets = kPackets;
        config.seed = static_cast<std::uint64_t>(run);
        const auto trace = make_flow_trace(config, app.filler);
        Mp5Simulator sim(prog, mp5_options(k, config.seed));
        const auto result = sim.run(trace);
        throughput.add(result.normalized_throughput());
        max_queue = std::max(max_queue, result.max_queue_depth);
        wasted_per_pkt = static_cast<double>(result.wasted_cycles) /
                         static_cast<double>(result.offered);
      }
      json_row.metric("throughput_k" + std::to_string(k), throughput.mean());
      row.push_back(TextTable::num(throughput.mean(), 3));
    }
    json_row.metric("max_queue", static_cast<double>(max_queue))
        .metric("conservative_accesses",
                static_cast<double>(prog.conservative_accesses()))
        .metric("pinned_registers",
                static_cast<double>(prog.pinned_registers()))
        .metric("wasted_per_pkt", wasted_per_pkt);
    row.push_back(TextTable::integer(static_cast<long long>(max_queue)));
    row.push_back(TextTable::integer(
        static_cast<long long>(prog.conservative_accesses())));
    row.push_back(
        TextTable::integer(static_cast<long long>(prog.pinned_registers())));
    row.push_back(TextTable::num(wasted_per_pkt, 3));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  finish_report(report);
  return 0;
}
