// Shared helpers for the paper-reproduction benches.
#pragma once

#include <iostream>
#include <string>

#include "apps/programs.hpp"
#include "baseline/presets.hpp"
#include "baseline/recirc.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "domino/compiler.hpp"
#include "mp5/simulator.hpp"
#include "mp5/transform.hpp"
#include "telemetry/bench_report.hpp"
#include "trace/workloads.hpp"

namespace mp5::bench {

using telemetry::BenchReport;

inline Mp5Program compile_for_mp5(const std::string& source) {
  return transform(
      domino::compile(source, banzai::MachineSpec{}, /*reserve_stages=*/1)
          .pvsm);
}

/// Default experiment configuration of §4.3.1: 64-port switch, 16-stage
/// machine, 4 pipelines, 4 stateful stages, register size 512, 64 B
/// packets at line rate, remap every 100 cycles.
struct SensitivityPoint {
  std::uint32_t pipelines = 4;
  std::uint32_t stateful_stages = 4;
  std::size_t reg_size = 512;
  std::uint32_t packet_bytes = 64;
  AccessPattern pattern = AccessPattern::kUniform;
  std::uint64_t packets = 20000;
  std::uint32_t active_flows = 0; // 0 = i.i.d. sampling
};

inline Trace make_trace(const SensitivityPoint& point, std::uint64_t seed) {
  SyntheticConfig config;
  config.stateful_stages = point.stateful_stages;
  config.reg_size = point.reg_size;
  config.pattern = point.pattern;
  config.pipelines = point.pipelines;
  config.packet_bytes = point.packet_bytes;
  config.packets = point.packets;
  config.seed = seed;
  config.active_flows = point.active_flows;
  return make_synthetic_trace(config);
}

/// Mean normalized throughput over `runs` independent streams.
inline double mean_throughput(const Mp5Program& prog,
                              const SensitivityPoint& point,
                              const SimOptions& base_opts, int runs) {
  RunningStats stats;
  for (int run = 0; run < runs; ++run) {
    SimOptions opts = base_opts;
    opts.seed = static_cast<std::uint64_t>(run + 1);
    Mp5Simulator sim(prog, opts);
    stats.add(sim.run(make_trace(point, opts.seed)).normalized_throughput());
  }
  return stats.mean();
}

inline void print_header(const std::string& title, const std::string& paper) {
  std::cout << "\n=== " << title << " ===\n";
  if (!paper.empty()) std::cout << "paper: " << paper << "\n";
  std::cout << "\n";
}

/// Write the harness's BENCH_<name>.json (into $MP5_BENCH_JSON_DIR or the
/// working directory) and say where it went. Call once, at the end of
/// main.
inline void finish_report(const BenchReport& report) {
  std::cout << "\nbench json: " << report.write() << " (" << report.size()
            << " rows)\n";
}

} // namespace mp5::bench
