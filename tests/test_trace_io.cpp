#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "trace/trace_io.hpp"
#include "trace/workloads.hpp"

namespace mp5 {
namespace {

TEST(TraceIo, RoundTripsAllFields) {
  SyntheticConfig config;
  config.stateful_stages = 3;
  config.packets = 500;
  config.pattern = AccessPattern::kSkewed;
  const Trace original = make_synthetic_trace(config);

  std::stringstream ss;
  save_trace_csv(original, ss);
  const Trace loaded = load_trace_csv(ss);

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].arrival_time, original[i].arrival_time);
    EXPECT_EQ(loaded[i].port, original[i].port);
    EXPECT_EQ(loaded[i].size_bytes, original[i].size_bytes);
    EXPECT_EQ(loaded[i].flow, original[i].flow);
    EXPECT_EQ(loaded[i].fields, original[i].fields);
  }
}

TEST(TraceIo, SkipsCommentsAndSortsOnLoad) {
  std::stringstream ss;
  ss << "# a comment\n"
     << "2.5,3,64,7,10,20\n"
     << "\n"
     << "1.0,9,128,8\n"   // no fields: allowed
     << "1.0,2,64,9,5\n"; // same time, smaller port: sorts first
  const Trace trace = load_trace_csv(ss);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].port, 2u);
  EXPECT_EQ(trace[1].port, 9u);
  EXPECT_EQ(trace[2].port, 3u);
  EXPECT_EQ(trace[2].fields, (std::vector<Value>{10, 20}));
  EXPECT_TRUE(trace[1].fields.empty());
}

TEST(TraceIo, RejectsMalformedLines) {
  {
    std::stringstream ss("1.0,2\n");
    EXPECT_THROW(load_trace_csv(ss), Error);
  }
  {
    std::stringstream ss("1.0,abc,64,0\n");
    EXPECT_THROW(load_trace_csv(ss), Error);
  }
}

TEST(TraceIo, FileHelpersReportMissingPaths) {
  EXPECT_THROW(load_trace_file("/nonexistent/trace.csv"), Error);
}

} // namespace
} // namespace mp5
