// Differential testing of the compiler: for random programs and random
// packets, the compiled PVSM executed by the single-pipeline reference
// switch must agree with the direct AST interpreter on every declared
// field and every register cell. Then, closing the loop: MP5 must agree
// with the single-pipeline reference on the same random programs.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "domino/ast_interp.hpp"
#include "domino/parser.hpp"
#include "fuzz/program_gen.hpp"
#include "test_util.hpp"

namespace mp5::test {
namespace {

struct CompiledRandomProgram {
  domino::Ast ast;
  ir::Pvsm pvsm;
  std::string source;
};

/// Generate a random program that actually compiles (skipping seeds whose
/// programs are legitimately rejected, e.g. cyclic state dependencies).
bool try_generate(std::uint64_t seed, CompiledRandomProgram& out) {
  fuzz::ProgramGen gen(seed);
  out.source = gen.generate();
  try {
    out.ast = domino::parse(out.source);
    out.pvsm = domino::compile(out.ast, banzai::MachineSpec{}, 1).pvsm;
    return true;
  } catch (const SemanticError&) {
    return false;
  } catch (const ResourceError&) {
    return false;
  }
}

TEST(CompilerDiff, CompiledMatchesAstInterpreter) {
  int tested = 0;
  int skipped = 0;
  for (std::uint64_t seed = 1; tested < 60 && seed < 400; ++seed) {
    CompiledRandomProgram prog;
    if (!try_generate(seed, prog)) {
      ++skipped;
      continue;
    }
    ++tested;

    domino::AstInterp interp(prog.ast);
    banzai::ReferenceSwitch reference(prog.pvsm);
    Rng rng(seed * 977 + 1);

    for (int pkt = 0; pkt < 40; ++pkt) {
      std::unordered_map<std::string, Value> fields;
      std::vector<Value> headers(prog.pvsm.num_slots(), 0);
      for (const auto& name : prog.ast.fields) {
        const Value v = rng.next_in(-8, 31);
        fields[name] = v;
        headers[static_cast<std::size_t>(prog.pvsm.slot_of(name))] = v;
      }
      const auto expect = interp.process(fields);
      const auto got = reference.process(std::move(headers));
      for (const auto& name : prog.ast.fields) {
        EXPECT_EQ(got[static_cast<std::size_t>(prog.pvsm.slot_of(name))],
                  expect.at(name))
            << "seed " << seed << " packet " << pkt << " field " << name
            << "\n"
            << prog.source;
      }
    }
    // Register state must match as well.
    const auto& ast_regs = interp.registers();
    const auto& ref_regs = reference.registers();
    ASSERT_EQ(ast_regs.size(), ref_regs.size());
    for (std::size_t r = 0; r < ast_regs.size(); ++r) {
      EXPECT_EQ(ast_regs[r], ref_regs[r])
          << "seed " << seed << " register " << r << "\n"
          << prog.source;
    }
  }
  EXPECT_GE(tested, 60) << "generator rejected too many programs ("
                        << skipped << " skipped)";
}

TEST(CompilerDiff, Mp5MatchesReferenceOnRandomPrograms) {
  int tested = 0;
  for (std::uint64_t seed = 1000; tested < 25 && seed < 1400; ++seed) {
    CompiledRandomProgram prog;
    if (!try_generate(seed, prog)) continue;
    ++tested;
    const Mp5Program mp5 = transform(prog.pvsm);

    Rng rng(seed);
    const auto fields =
        random_fields(250, prog.ast.fields.size(), 32, rng);
    for (const std::uint32_t k : {2u, 4u}) {
      const auto trace = trace_from_fields(fields, k);
      SimOptions opts;
      opts.pipelines = k;
      opts.seed = seed;
      const auto report = run_and_check(mp5, trace, opts);
      EXPECT_TRUE(report.equivalent())
          << "seed " << seed << " k=" << k << ": " << report.first_difference
          << "\n" << prog.source;
    }
  }
  EXPECT_GE(tested, 25);
}

} // namespace
} // namespace mp5::test
