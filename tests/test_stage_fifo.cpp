#include <gtest/gtest.h>

#include "mp5/stage_fifo.hpp"

namespace mp5 {
namespace {

// The FIFO stores opaque arena references; the tests don't need a real
// arena, so they use `ref == seq` and check the ref round-trips.
PacketRef ref_for(SeqNo seq) { return static_cast<PacketRef>(seq); }

using Kind = StageFifo::PopResult::Kind;

TEST(StageFifo, PhantomBlocksUntilDataInserted) {
  StageFifo fifo(2, 0, false);
  ASSERT_TRUE(fifo.push_phantom(0, 0, 5, 0));
  EXPECT_EQ(fifo.pop().kind, Kind::kBlocked);
  ASSERT_TRUE(fifo.insert_data(0, ref_for(0)));
  const auto r = fifo.pop();
  ASSERT_EQ(r.kind, Kind::kData);
  EXPECT_EQ(r.ref, ref_for(0));
  EXPECT_EQ(fifo.pop().kind, Kind::kIdle);
}

TEST(StageFifo, PopPicksSmallestTimestampAcrossLanes) {
  StageFifo fifo(2, 0, false);
  ASSERT_TRUE(fifo.push_phantom(3, 0, 0, 1));
  ASSERT_TRUE(fifo.push_phantom(5, 0, 1, 0));
  ASSERT_TRUE(fifo.insert_data(5, ref_for(5)));
  // Lane 0's head (seq 5, data) must wait for lane 1's head (seq 3).
  EXPECT_EQ(fifo.pop().kind, Kind::kBlocked);
  ASSERT_TRUE(fifo.insert_data(3, ref_for(3)));
  EXPECT_EQ(fifo.pop().ref, ref_for(3));
  EXPECT_EQ(fifo.pop().ref, ref_for(5));
}

TEST(StageFifo, LaterDataBlockedBehindEarlierPhantom) {
  // The Figure 3 Table III scenario: E's data is present but D's phantom
  // precedes it in the same lane.
  StageFifo fifo(1, 0, false);
  ASSERT_TRUE(fifo.push_phantom(3, 0, 2, 0)); // D
  ASSERT_TRUE(fifo.push_phantom(4, 0, 2, 0)); // E
  ASSERT_TRUE(fifo.insert_data(4, ref_for(4)));
  EXPECT_EQ(fifo.pop().kind, Kind::kBlocked);
  ASSERT_TRUE(fifo.insert_data(3, ref_for(3)));
  EXPECT_EQ(fifo.pop().ref, ref_for(3));
  EXPECT_EQ(fifo.pop().ref, ref_for(4));
}

TEST(StageFifo, BoundedLaneDropsPhantom) {
  StageFifo fifo(1, 2, false);
  EXPECT_TRUE(fifo.push_phantom(0, 0, 0, 0));
  EXPECT_TRUE(fifo.push_phantom(1, 0, 0, 0));
  EXPECT_FALSE(fifo.push_phantom(2, 0, 0, 0)); // lane full
  EXPECT_FALSE(fifo.has_phantom(2));
  // The data packet for the dropped phantom cannot be inserted.
  EXPECT_FALSE(fifo.insert_data(2, ref_for(2)));
}

TEST(StageFifo, CancelledPhantomCostsOneWastedPop) {
  StageFifo fifo(1, 0, false);
  ASSERT_TRUE(fifo.push_phantom(0, 0, 0, 0));
  ASSERT_TRUE(fifo.push_phantom(1, 0, 0, 0));
  ASSERT_TRUE(fifo.insert_data(1, ref_for(1)));
  fifo.cancel(0);
  EXPECT_EQ(fifo.pop().kind, Kind::kWasted); // reclaiming costs a cycle
  EXPECT_EQ(fifo.pop().ref, ref_for(1));
}

TEST(StageFifo, CancelAfterDropIsNoOp) {
  StageFifo fifo(1, 1, false);
  ASSERT_TRUE(fifo.push_phantom(0, 0, 0, 0));
  ASSERT_FALSE(fifo.push_phantom(1, 0, 0, 0));
  fifo.cancel(1); // dropped phantom: nothing to cancel
  EXPECT_EQ(fifo.size(), 1u);
}

TEST(StageFifo, HighWaterTracksPeakOccupancy) {
  StageFifo fifo(2, 0, false);
  for (SeqNo s = 0; s < 6; ++s) {
    ASSERT_TRUE(fifo.push_phantom(s, 0, 0, s % 2));
  }
  for (SeqNo s = 0; s < 6; ++s) ASSERT_TRUE(fifo.insert_data(s, ref_for(s)));
  for (int i = 0; i < 6; ++i) EXPECT_EQ(fifo.pop().kind, Kind::kData);
  EXPECT_EQ(fifo.high_water(), 6u);
  EXPECT_EQ(fifo.size(), 0u);
}

TEST(StageFifoIdeal, PerIndexOrderingAvoidsHolBlocking) {
  StageFifo fifo(2, 0, true);
  // Index 7 is blocked by a phantom (seq 0); index 9's data (seq 1) is
  // independently serviceable in the ideal design.
  ASSERT_TRUE(fifo.push_phantom(0, 0, 7, 0));
  ASSERT_TRUE(fifo.push_phantom(1, 0, 9, 1));
  ASSERT_TRUE(fifo.insert_data(1, ref_for(1)));
  const auto r = fifo.pop();
  ASSERT_EQ(r.kind, Kind::kData);
  EXPECT_EQ(r.ref, ref_for(1));
  EXPECT_EQ(fifo.pop().kind, Kind::kBlocked);
}

TEST(StageFifoIdeal, StillOrdersWithinAnIndex) {
  StageFifo fifo(1, 0, true);
  ASSERT_TRUE(fifo.push_phantom(0, 0, 7, 0));
  ASSERT_TRUE(fifo.push_phantom(1, 0, 7, 0));
  ASSERT_TRUE(fifo.insert_data(1, ref_for(1)));
  EXPECT_EQ(fifo.pop().kind, Kind::kBlocked); // seq 1 behind seq 0's phantom
  ASSERT_TRUE(fifo.insert_data(0, ref_for(0)));
  EXPECT_EQ(fifo.pop().ref, ref_for(0));
  EXPECT_EQ(fifo.pop().ref, ref_for(1));
}

TEST(StageFifoIdeal, CancelledEntriesReclaimedForFree) {
  StageFifo fifo(1, 0, true);
  ASSERT_TRUE(fifo.push_phantom(0, 0, 7, 0));
  ASSERT_TRUE(fifo.push_phantom(1, 0, 7, 0));
  ASSERT_TRUE(fifo.insert_data(1, ref_for(1)));
  fifo.cancel(0);
  const auto r = fifo.pop(); // no kWasted in the ideal design
  ASSERT_EQ(r.kind, Kind::kData);
  EXPECT_EQ(r.ref, ref_for(1));
}

} // namespace
} // namespace mp5
