#include <gtest/gtest.h>

#include "domino/ast_interp.hpp"
#include "domino/optimize.hpp"
#include "domino/parser.hpp"
#include "domino/pipeline.hpp"
#include "banzai/single_pipeline.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "fuzz/program_gen.hpp"

namespace mp5::domino {
namespace {

LoweredProgram lower_src(const std::string& src) { return lower(parse(src)); }

std::size_t count_op(const LoweredProgram& p, ir::TacOp op) {
  std::size_t n = 0;
  for (const auto& i : p.instrs) {
    if (i.op == op) ++n;
  }
  return n;
}

TEST(Optimize, FoldsConstantExpressions) {
  auto p = lower_src(R"(
    struct Packet { int x; };
    void f(struct Packet p) { p.x = (2 + 3) * 4 - 1; }
  )");
  const auto stats = optimize(p);
  EXPECT_GT(stats.folded, 0u);
  // Everything reduces to a single egress copy of the constant 19.
  ASSERT_EQ(p.instrs.size(), 1u);
  EXPECT_EQ(p.instrs[0].op, ir::TacOp::kCopy);
  ASSERT_TRUE(p.instrs[0].a.is_const);
  EXPECT_EQ(p.instrs[0].a.constant, 19);
}

TEST(Optimize, PropagatesCopiesAndSelectsOnConstCondition) {
  auto p = lower_src(R"(
    struct Packet { int x; int y; };
    void f(struct Packet p) {
      p.y = p.x;
      if (1) { p.y = p.y + 1; }
    }
  )");
  optimize(p);
  EXPECT_EQ(count_op(p, ir::TacOp::kSelect), 0u); // if(1) select folded
}

TEST(Optimize, StaticallyFalseGuardDeletesAccess) {
  auto p = lower_src(R"(
    struct Packet { int x; };
    int r = 0;
    void f(struct Packet p) {
      if (0) { r = r + 1; }
      p.x = 2;
    }
  )");
  const auto stats = optimize(p);
  EXPECT_GT(stats.guards_simplified, 0u);
  EXPECT_EQ(count_op(p, ir::TacOp::kRegRead), 0u);
  EXPECT_EQ(count_op(p, ir::TacOp::kRegWrite), 0u);
}

TEST(Optimize, StaticallyTrueGuardBecomesUnconditional) {
  auto p = lower_src(R"(
    struct Packet { int x; };
    int r = 0;
    void f(struct Packet p) {
      if (3 > 1) { r = r + 1; }
    }
  )");
  optimize(p);
  ASSERT_EQ(count_op(p, ir::TacOp::kRegWrite), 1u);
  for (const auto& i : p.instrs) {
    if (i.op == ir::TacOp::kRegWrite) {
      EXPECT_EQ(i.guard, ir::kNoSlot);
    }
  }
}

TEST(Optimize, RemovesDeadComputation) {
  auto p = lower_src(R"(
    struct Packet { int x; int y; };
    void f(struct Packet p) {
      p.y = hash2(p.x, 7);  // overwritten below, never observable
      p.y = p.x + 1;
    }
  )");
  const std::size_t before = p.instrs.size();
  const auto stats = optimize(p);
  EXPECT_GT(stats.dead_removed + stats.copies_propagated, 0u);
  EXPECT_LT(p.instrs.size(), before);
  EXPECT_EQ(count_op(p, ir::TacOp::kHash), 0u);
}

TEST(Optimize, KeepsRegisterSideEffectsAlive) {
  auto p = lower_src(R"(
    struct Packet { int x; };
    int r = 0;
    void f(struct Packet p) {
      r = r + p.x;   // result never read into the packet: still a side effect
    }
  )");
  optimize(p);
  EXPECT_EQ(count_op(p, ir::TacOp::kRegWrite), 1u);
}

TEST(Optimize, ReducesStageCount) {
  // A deep constant expression tree would otherwise occupy several stages.
  auto unopt = lower_src(R"(
    struct Packet { int x; };
    void f(struct Packet p) { p.x = ((1 + 2) * (3 + 4)) + ((5 - 6) * 7); }
  )");
  const auto stages_before = pipeline(unopt).stages.size();
  optimize(unopt);
  const auto stages_after = pipeline(unopt).stages.size();
  EXPECT_LT(stages_after, stages_before);
}

TEST(Optimize, DifferentialOnRandomPrograms) {
  // Optimized-and-compiled behaviour must match the AST interpreter.
  int tested = 0;
  for (std::uint64_t seed = 2000; tested < 40 && seed < 2400; ++seed) {
    fuzz::ProgramGen gen(seed);
    const std::string src = gen.generate();
    Ast ast;
    LoweredProgram lowered;
    ir::Pvsm pvsm;
    try {
      ast = parse(src);
      lowered = lower(ast);
      optimize(lowered);
      pvsm = pipeline(lowered);
    } catch (const SemanticError&) {
      continue;
    }
    ++tested;
    AstInterp interp(ast);
    banzai::ReferenceSwitch reference(pvsm);
    Rng rng(seed * 13 + 5);
    for (int pkt = 0; pkt < 25; ++pkt) {
      std::unordered_map<std::string, Value> fields;
      std::vector<Value> headers(pvsm.num_slots(), 0);
      for (const auto& name : ast.fields) {
        const Value v = rng.next_in(-8, 31);
        fields[name] = v;
        headers[static_cast<std::size_t>(pvsm.slot_of(name))] = v;
      }
      const auto expect = interp.process(fields);
      const auto got = reference.process(std::move(headers));
      for (const auto& name : ast.fields) {
        ASSERT_EQ(got[static_cast<std::size_t>(pvsm.slot_of(name))],
                  expect.at(name))
            << "seed " << seed << "\n" << src;
      }
    }
  }
  EXPECT_GE(tested, 40);
}

} // namespace
} // namespace mp5::domino
