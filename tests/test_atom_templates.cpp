#include <gtest/gtest.h>

#include "apps/programs.hpp"
#include "banzai/atom_templates.hpp"
#include "banzai/machine.hpp"
#include "common/error.hpp"
#include "domino/compiler.hpp"

namespace mp5::banzai {
namespace {

/// Classify the (single) stateful atom of a one-register program.
AtomTemplate classify_src(const std::string& src,
                          const std::string& reg_name) {
  const auto pvsm = domino::compile(src).pvsm;
  for (const auto& stage : pvsm.stages) {
    for (const auto& atom : stage.atoms) {
      if (atom.stateful() && pvsm.registers[atom.reg].name == reg_name) {
        return classify_atom(atom);
      }
    }
  }
  throw Error("no stateful atom for " + reg_name);
}

TEST(AtomTemplates, ReadOnly) {
  EXPECT_EQ(classify_src(R"(
    struct Packet { int x; };
    int r[4] = {0};
    void f(struct Packet p) { p.x = r[p.x % 4]; }
  )",
                         "r"),
            AtomTemplate::kRead);
}

TEST(AtomTemplates, WriteOnly) {
  EXPECT_EQ(classify_src(R"(
    struct Packet { int x; };
    int r[4] = {0};
    void f(struct Packet p) { r[p.x % 4] = p.x + 1; }
  )",
                         "r"),
            AtomTemplate::kWrite);
}

TEST(AtomTemplates, ReadThenOverwrite) {
  // Flowlet's last_time shape: read the old value, overwrite with a
  // packet field.
  EXPECT_EQ(classify_src(R"(
    struct Packet { int x; int y; };
    int r[4] = {0};
    void f(struct Packet p) {
      p.y = r[p.x % 4];
      r[p.x % 4] = p.x;
    }
  )",
                         "r"),
            AtomTemplate::kReadWrite);
}

TEST(AtomTemplates, PlainCounterIsRaw) {
  EXPECT_EQ(classify_src(apps::packet_counter_source(), "count"),
            AtomTemplate::kRaw);
}

TEST(AtomTemplates, GuardedCounterIsPraw) {
  EXPECT_EQ(classify_src(apps::sequencer_app().source, "counter"),
            AtomTemplate::kPraw);
}

TEST(AtomTemplates, SubtractiveUpdate) {
  EXPECT_EQ(classify_src(R"(
    struct Packet { int x; };
    int r[4] = {0};
    void f(struct Packet p) { r[p.x % 4] = r[p.x % 4] - p.x; }
  )",
                         "r"),
            AtomTemplate::kSub);
}

TEST(AtomTemplates, TernaryUpdateIsIfElseRaw) {
  EXPECT_EQ(classify_src(R"(
    struct Packet { int x; int c; };
    int r[4] = {0};
    void f(struct Packet p) {
      r[p.x % 4] = (p.c == 1) ? r[p.x % 4] + 1 : r[p.x % 4] + p.x;
    }
  )",
                         "r"),
            AtomTemplate::kIfElseRaw);
}

TEST(AtomTemplates, MultiplicativeUpdateIsNested) {
  // Figure 3's reg3: multiply-or-add selected by mux.
  EXPECT_EQ(classify_src(apps::figure3_source(), "reg3"),
            AtomTemplate::kNested);
}

TEST(AtomTemplates, MultipleUpdatesArePairs) {
  // Two read-modify-write rounds on the same state in one packet.
  EXPECT_EQ(classify_src(R"(
    struct Packet { int x; };
    int r = 0;
    void f(struct Packet p) {
      r = r + 1;
      p.x = r;
      r = r + 2;
    }
  )",
                         "r"),
            AtomTemplate::kPairs);
}

TEST(AtomTemplates, RanksAreMonotone) {
  EXPECT_LT(template_rank(AtomTemplate::kRead),
            template_rank(AtomTemplate::kRaw));
  EXPECT_LT(template_rank(AtomTemplate::kRaw),
            template_rank(AtomTemplate::kPraw));
  EXPECT_LT(template_rank(AtomTemplate::kPraw),
            template_rank(AtomTemplate::kSub));
  EXPECT_LT(template_rank(AtomTemplate::kIfElseRaw),
            template_rank(AtomTemplate::kNested));
  EXPECT_LT(template_rank(AtomTemplate::kNested),
            template_rank(AtomTemplate::kPairs));
}

TEST(AtomTemplates, MachineCapRejectsRichAtoms) {
  banzai::MachineSpec weak;
  weak.max_atom_template = AtomTemplate::kRaw;
  // A plain counter fits...
  EXPECT_NO_THROW(domino::compile(apps::packet_counter_source(), weak));
  // ...but Figure 3's multiplicative update does not.
  EXPECT_THROW(domino::compile(apps::figure3_source(), weak), ResourceError);
}

TEST(AtomTemplates, AllBundledAppsFitTofinoClassTemplates) {
  banzai::MachineSpec tofino_like; // kPairs default
  for (const auto& app : apps::real_apps()) {
    EXPECT_NO_THROW(domino::compile(app.source, tofino_like, 1)) << app.name;
  }
  for (const auto& app : apps::extended_apps()) {
    EXPECT_NO_THROW(domino::compile(app.source, tofino_like, 1)) << app.name;
  }
}

TEST(AtomTemplates, MaxTemplateOverProgram) {
  const auto pvsm = domino::compile(apps::figure3_source()).pvsm;
  EXPECT_EQ(max_template(pvsm), AtomTemplate::kNested);
}

} // namespace
} // namespace mp5::banzai
