#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "common/error.hpp"
#include "common/hashing.hpp"
#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/zipf.hpp"

namespace mp5 {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    (void)c.next_u64();
  }
  Rng a2(42), c2(43);
  EXPECT_NE(a2.next_u64(), c2.next_u64());
}

TEST(Rng, BoundedSamplesInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const auto v = rng.next_in(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoundedSamplingIsRoughlyUniform) {
  Rng rng(7);
  constexpr int kBuckets = 8;
  int counts[kBuckets] = {};
  constexpr int kSamples = 80000;
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Zipf, SkewSamplerMatchesConfiguredMass) {
  Rng perm(3);
  TwoClassSkewSampler sampler(100, perm, 0.95, 0.30);
  EXPECT_EQ(sampler.hot_keys(), 30u);
  Rng rng(4);
  std::map<std::uint64_t, int> counts;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) ++counts[sampler.sample(rng)];
  // Top-30 keys should hold about 95% of the samples.
  std::vector<int> sorted;
  for (const auto& [k, c] : counts) sorted.push_back(c);
  std::sort(sorted.rbegin(), sorted.rend());
  long hot = 0, total = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    total += sorted[i];
    if (i < 30) hot += sorted[i];
  }
  EXPECT_NEAR(static_cast<double>(hot) / total, 0.95, 0.02);
}

TEST(Zipf, ZipfFavorsSmallRanks) {
  ZipfSampler sampler(1000, 1.2);
  Rng rng(9);
  int first_decile = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (sampler.sample(rng) < 100) ++first_decile;
  }
  EXPECT_GT(first_decile, kSamples / 2);
}

TEST(Hashing, DeterministicAndSpread) {
  EXPECT_EQ(hash2(1, 2), hash2(1, 2));
  EXPECT_NE(hash2(1, 2), hash2(2, 1));
  EXPECT_GE(hash2(-5, -9), 0);
  std::set<Value> values;
  for (Value i = 0; i < 1000; ++i) values.insert(hash3(i, i + 1, i + 2) % 997);
  EXPECT_GT(values.size(), 600u);
}

TEST(Hashing, FloorModAlwaysNonNegative) {
  EXPECT_EQ(floor_mod(7, 4), 3);
  EXPECT_EQ(floor_mod(-7, 4), 1);
  EXPECT_EQ(floor_mod(-8, 4), 0);
  EXPECT_EQ(floor_mod(5, 0), 0);
}

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
}

TEST(Stats, HistogramQuantiles) {
  Histogram h(1.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 2.0);
}

TEST(Stats, HistogramNamedQuantiles) {
  Histogram h(1.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i);
  EXPECT_NEAR(h.p50(), 50.0, 2.0);
  EXPECT_NEAR(h.p90(), 90.0, 2.0);
  EXPECT_NEAR(h.p99(), 99.0, 2.0);
}

TEST(Stats, EmptyHistogramQuantileIsNaN) {
  Histogram h(1.0, 10);
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
  EXPECT_TRUE(std::isnan(h.p99()));
}

TEST(Stats, QuantileRejectsInvalidQ) {
  Histogram h(1.0, 10);
  h.add(1.0);
  EXPECT_THROW(h.quantile(-0.1), ConfigError);
  EXPECT_THROW(h.quantile(1.5), ConfigError);
  EXPECT_THROW(h.quantile(std::numeric_limits<double>::quiet_NaN()),
               ConfigError);
}

TEST(Stats, NanSamplesRejected) {
  RunningStats s;
  EXPECT_THROW(s.add(std::numeric_limits<double>::quiet_NaN()), ConfigError);
  Histogram h(1.0, 10);
  EXPECT_THROW(h.add(std::numeric_limits<double>::quiet_NaN()), ConfigError);
}

TEST(Stats, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(percentile({5}, 0.9), 5.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(RingFifo, PushPopOrder) {
  RingFifo<int> fifo(4);
  EXPECT_TRUE(fifo.empty());
  auto a = fifo.push(1);
  auto b = fifo.push(2);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(fifo.front(), 1);
  fifo.pop_front();
  EXPECT_EQ(fifo.front(), 2);
}

TEST(RingFifo, BoundedDropsWhenFull) {
  RingFifo<int> fifo(2);
  EXPECT_TRUE(fifo.push(1).has_value());
  EXPECT_TRUE(fifo.push(2).has_value());
  EXPECT_FALSE(fifo.push(3).has_value());
  fifo.pop_front();
  EXPECT_TRUE(fifo.push(3).has_value());
}

TEST(RingFifo, VirtualIndexStableAcrossPops) {
  RingFifo<int> fifo(4);
  const auto a = *fifo.push(10);
  const auto b = *fifo.push(20);
  fifo.pop_front();
  EXPECT_FALSE(fifo.contains(a));
  ASSERT_TRUE(fifo.contains(b));
  fifo.replace(b, 99);
  EXPECT_EQ(fifo.front(), 99);
  EXPECT_THROW(fifo.at(a), Error);
}

TEST(RingFifo, UnboundedGrowsPreservingOrderAndAddresses) {
  RingFifo<int> fifo(0);
  std::vector<std::uint64_t> vidx;
  for (int i = 0; i < 100; ++i) vidx.push_back(*fifo.push(i));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fifo.at(vidx[i]), i);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(fifo.front(), i);
    fifo.pop_front();
  }
  EXPECT_EQ(fifo.high_water_mark(), 100u);
}

TEST(RingFifo, WrapAroundReusesSlots) {
  RingFifo<int> fifo(3);
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(fifo.push(round).has_value());
    EXPECT_EQ(fifo.front(), round);
    fifo.pop_front();
  }
}

TEST(TextTable, FormatsAlignedRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", TextTable::num(1.5, 2)});
  t.add_row({"b", TextTable::pct(0.5)});
  std::ostringstream os;
  t.print(os);
  const auto out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("50.0%"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

} // namespace
} // namespace mp5
