// Tests for the hot-path engine work: the packet arena, idle-cycle
// fast-forward, and the opt-in parallel per-lane engine.
//
// The contract under test is strict bit-identity: for every seed, design
// variant and fault plan, the parallel engine (any thread count) and the
// fast-forward optimization must produce a SimResult indistinguishable
// field-by-field from the classic sequential cycle-by-cycle walk.
#include <gtest/gtest.h>

#include "apps/programs.hpp"
#include "baseline/presets.hpp"
#include "packet/arena.hpp"
#include "telemetry/telemetry.hpp"
#include "test_util.hpp"
#include "trace/workloads.hpp"

namespace mp5::test {
namespace {

// Field-by-field SimResult comparison with per-field failure messages.
void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.egressed, b.egressed);
  EXPECT_EQ(a.dropped_phantom, b.dropped_phantom);
  EXPECT_EQ(a.dropped_data, b.dropped_data);
  EXPECT_EQ(a.dropped_starved, b.dropped_starved);
  EXPECT_EQ(a.dropped_fault, b.dropped_fault);
  EXPECT_EQ(a.ecn_marked, b.ecn_marked);
  EXPECT_EQ(a.first_arrival, b.first_arrival);
  EXPECT_EQ(a.last_arrival, b.last_arrival);
  EXPECT_EQ(a.last_egress, b.last_egress);
  EXPECT_EQ(a.cycles_run, b.cycles_run);
  EXPECT_EQ(a.steers, b.steers);
  EXPECT_EQ(a.wasted_cycles, b.wasted_cycles);
  EXPECT_EQ(a.blocked_cycles, b.blocked_cycles);
  EXPECT_EQ(a.remap_moves, b.remap_moves);
  EXPECT_EQ(a.max_queue_depth, b.max_queue_depth);
  EXPECT_EQ(a.pipeline_failures, b.pipeline_failures);
  EXPECT_EQ(a.pipeline_recoveries, b.pipeline_recoveries);
  EXPECT_EQ(a.fault_remapped_indices, b.fault_remapped_indices);
  EXPECT_EQ(a.phantom_lost, b.phantom_lost);
  EXPECT_EQ(a.phantom_delayed, b.phantom_delayed);
  EXPECT_EQ(a.stalled_cycles, b.stalled_cycles);
  EXPECT_EQ(a.time_to_recover, b.time_to_recover);
  EXPECT_EQ(a.c1_violating_packets, b.c1_violating_packets);
  EXPECT_EQ(a.reordered_flow_packets, b.reordered_flow_packets);
  EXPECT_EQ(a.final_registers, b.final_registers);
  ASSERT_EQ(a.fault_drops.size(), b.fault_drops.size());
  for (std::size_t i = 0; i < a.fault_drops.size(); ++i) {
    EXPECT_EQ(a.fault_drops[i].seq, b.fault_drops[i].seq);
    EXPECT_EQ(a.fault_drops[i].state_touched, b.fault_drops[i].state_touched);
  }
  ASSERT_EQ(a.egress.size(), b.egress.size());
  for (std::size_t i = 0; i < a.egress.size(); ++i) {
    EXPECT_EQ(a.egress[i].seq, b.egress[i].seq);
    EXPECT_EQ(a.egress[i].egress_cycle, b.egress[i].egress_cycle);
    EXPECT_EQ(a.egress[i].flow, b.egress[i].flow);
    EXPECT_EQ(a.egress[i].headers, b.egress[i].headers);
  }
}

SimResult run_with(const Mp5Program& prog, const Trace& trace,
                   SimOptions opts) {
  opts.record_egress = true;
  opts.track_flow_reordering = true;
  Mp5Simulator sim(prog, opts);
  return sim.run(trace);
}

struct Variant {
  const char* name;
  SimOptions (*make)(std::uint32_t, std::uint64_t);
};

const Variant kVariants[] = {
    {"mp5", mp5_options},       {"no_d2", no_d2_options},
    {"no_d4", no_d4_options},   {"ideal", ideal_options},
};

// --- parallel engine: bit-identity with the sequential engine ------------

TEST(ParallelEngine, MatchesSequentialAcrossSeedsKsAndVariants) {
  const auto prog = compile_mp5(apps::make_synthetic_source(4, 256));
  for (const std::uint32_t k : {2u, 4u, 8u}) {
    SyntheticConfig config;
    config.stateful_stages = 4;
    config.reg_size = 256;
    config.pipelines = k;
    config.packets = 2000;
    for (const std::uint64_t seed : {1ull, 7ull}) {
      config.seed = seed;
      const auto trace = make_synthetic_trace(config);
      for (const auto& variant : kVariants) {
        SCOPED_TRACE(std::string(variant.name) + " k=" + std::to_string(k) +
                     " seed=" + std::to_string(seed));
        auto opts = variant.make(k, seed);
        const auto sequential = run_with(prog, trace, opts);
        for (const std::uint32_t threads : {2u, 4u}) {
          opts.threads = threads;
          SCOPED_TRACE("threads=" + std::to_string(threads));
          expect_identical(sequential, run_with(prog, trace, opts));
        }
      }
    }
  }
}

TEST(ParallelEngine, MatchesSequentialUnderLaneFailureAndRecovery) {
  const auto prog = compile_mp5(apps::make_synthetic_source(4, 256));
  SyntheticConfig config;
  config.stateful_stages = 4;
  config.reg_size = 256;
  config.pipelines = 8;
  config.packets = 3000;
  const auto trace = make_synthetic_trace(config);

  auto opts = mp5_options(8, 1);
  opts.faults.pipeline_faults.push_back(PipelineFault{2, 150, 600});
  opts.faults.pipeline_faults.push_back(PipelineFault{5, 300, kNeverRecovers});
  const auto sequential = run_with(prog, trace, opts);
  EXPECT_GT(sequential.dropped_fault, 0u); // the plan actually bites
  for (const std::uint32_t threads : {2u, 4u, 8u}) {
    opts.threads = threads;
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical(sequential, run_with(prog, trace, opts));
  }
}

TEST(ParallelEngine, MatchesSequentialUnderPhantomChannelFaults) {
  const auto prog = compile_mp5(apps::make_synthetic_source(4, 256));
  SyntheticConfig config;
  config.stateful_stages = 4;
  config.reg_size = 256;
  config.pipelines = 4;
  config.packets = 3000;
  const auto trace = make_synthetic_trace(config);

  auto opts = mp5_options(4, 3);
  opts.realistic_phantom_channel = true;
  opts.faults.phantom_loss_rate = 0.02;
  opts.faults.phantom_delay_rate = 0.05;
  opts.faults.phantom_extra_delay = 12;
  const auto sequential = run_with(prog, trace, opts);
  EXPECT_GT(sequential.phantom_lost + sequential.phantom_delayed, 0u);
  for (const std::uint32_t threads : {2u, 4u}) {
    opts.threads = threads;
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical(sequential, run_with(prog, trace, opts));
  }
}

TEST(ParallelEngine, MatchesSequentialUnderStallsAndPressure) {
  const auto prog = compile_mp5(apps::make_synthetic_source(4, 256));
  SyntheticConfig config;
  config.stateful_stages = 4;
  config.reg_size = 256;
  config.pipelines = 4;
  config.packets = 3000;
  const auto trace = make_synthetic_trace(config);

  auto opts = mp5_options(4, 5);
  opts.faults.stalls.push_back(StageStall{1, 2, 100, 180});
  opts.faults.stalls.push_back(StageStall{3, 1, 400, 450});
  opts.faults.fifo_pressure.push_back(FifoPressure{200, 260, 1});
  const auto sequential = run_with(prog, trace, opts);
  EXPECT_GT(sequential.stalled_cycles, 0u);
  for (const std::uint32_t threads : {2u, 4u}) {
    opts.threads = threads;
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical(sequential, run_with(prog, trace, opts));
  }
}

TEST(ParallelEngine, ThreadCountAboveKIsClamped) {
  const auto prog = compile_mp5(apps::make_synthetic_source(2, 64));
  SyntheticConfig config;
  config.stateful_stages = 2;
  config.reg_size = 64;
  config.pipelines = 2;
  config.packets = 500;
  const auto trace = make_synthetic_trace(config);
  auto opts = mp5_options(2, 1);
  const auto sequential = run_with(prog, trace, opts);
  opts.threads = 16; // clamps to k = 2
  expect_identical(sequential, run_with(prog, trace, opts));
}

TEST(ParallelEngine, RejectsTelemetryAndZeroThreads) {
  const auto prog = compile_mp5(apps::make_synthetic_source(1, 8));
  auto opts = mp5_options(2, 1);
  opts.threads = 0;
  EXPECT_THROW(Mp5Simulator(prog, opts), ConfigError);

  opts.threads = 2;
  telemetry::Telemetry telem;
  opts.telemetry = &telem;
  EXPECT_THROW(Mp5Simulator(prog, opts), ConfigError);

  opts.telemetry = nullptr;
  opts.timeline = [](const TimelineEvent&) {};
  EXPECT_THROW(Mp5Simulator(prog, opts), ConfigError);
}

// --- event engine: bit-identity with the sequential lockstep walk --------

TEST(EventEngine, MatchesLockstepAcrossSeedsKsAndVariants) {
  const auto prog = compile_mp5(apps::make_synthetic_source(4, 256));
  for (const std::uint32_t k : {2u, 4u, 8u}) {
    SyntheticConfig config;
    config.stateful_stages = 4;
    config.reg_size = 256;
    config.pipelines = k;
    config.packets = 2000;
    for (const std::uint64_t seed : {1ull, 7ull}) {
      config.seed = seed;
      const auto trace = make_synthetic_trace(config);
      for (const auto& variant : kVariants) {
        SCOPED_TRACE(std::string(variant.name) + " k=" + std::to_string(k) +
                     " seed=" + std::to_string(seed));
        auto opts = variant.make(k, seed);
        const auto lockstep = run_with(prog, trace, opts);
        opts.engine = SimEngine::kEvent;
        for (const std::uint32_t threads : {1u, 2u, 4u}) {
          opts.threads = threads;
          SCOPED_TRACE("event threads=" + std::to_string(threads));
          expect_identical(lockstep, run_with(prog, trace, opts));
        }
      }
    }
  }
}

TEST(EventEngine, MatchesLockstepOnSparseTraces) {
  // The sparse regime is where the event engine actually skips: cells sit
  // empty for long stretches and whole cycle ranges are jumped. cycles_run
  // must still land on exactly the lockstep count.
  const auto prog = compile_mp5(apps::make_synthetic_source(3, 128));
  SyntheticConfig config;
  config.stateful_stages = 3;
  config.reg_size = 128;
  config.pipelines = 8;
  config.packets = 400;
  config.load = 0.01;
  const auto trace = make_synthetic_trace(config);

  auto opts = mp5_options(8, 1);
  opts.fast_forward = false; // the raw cycle-by-cycle reference walk
  const auto lockstep = run_with(prog, trace, opts);
  EXPECT_GT(lockstep.cycles_run, 4000u);
  opts.engine = SimEngine::kEvent;
  expect_identical(lockstep, run_with(prog, trace, opts));
  opts.threads = 4;
  expect_identical(lockstep, run_with(prog, trace, opts));
}

TEST(EventEngine, MatchesLockstepUnderLaneFailureAndRecovery) {
  const auto prog = compile_mp5(apps::make_synthetic_source(4, 256));
  SyntheticConfig config;
  config.stateful_stages = 4;
  config.reg_size = 256;
  config.pipelines = 8;
  config.packets = 3000;
  const auto trace = make_synthetic_trace(config);

  auto opts = mp5_options(8, 1);
  opts.faults.pipeline_faults.push_back(PipelineFault{2, 150, 600});
  opts.faults.pipeline_faults.push_back(PipelineFault{5, 300, kNeverRecovers});
  const auto lockstep = run_with(prog, trace, opts);
  EXPECT_GT(lockstep.dropped_fault, 0u); // the plan actually bites
  opts.engine = SimEngine::kEvent;
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    opts.threads = threads;
    SCOPED_TRACE("event threads=" + std::to_string(threads));
    expect_identical(lockstep, run_with(prog, trace, opts));
  }
}

TEST(EventEngine, MatchesLockstepUnderPhantomChannelFaults) {
  const auto prog = compile_mp5(apps::make_synthetic_source(4, 256));
  SyntheticConfig config;
  config.stateful_stages = 4;
  config.reg_size = 256;
  config.pipelines = 4;
  config.packets = 3000;
  const auto trace = make_synthetic_trace(config);

  auto opts = mp5_options(4, 3);
  opts.realistic_phantom_channel = true;
  opts.faults.phantom_loss_rate = 0.02;
  opts.faults.phantom_delay_rate = 0.05;
  opts.faults.phantom_extra_delay = 12;
  const auto lockstep = run_with(prog, trace, opts);
  EXPECT_GT(lockstep.phantom_lost + lockstep.phantom_delayed, 0u);
  opts.engine = SimEngine::kEvent;
  for (const std::uint32_t threads : {1u, 2u, 4u}) {
    opts.threads = threads;
    SCOPED_TRACE("event threads=" + std::to_string(threads));
    expect_identical(lockstep, run_with(prog, trace, opts));
  }
}

TEST(EventEngine, MatchesLockstepUnderStallsAndPressure) {
  // Stalled-but-empty cells are the one per-cycle effect the event walk
  // does not visit (it accounts them arithmetically), and stall windows
  // clamp the cycle skip — both must reproduce lockstep's stalled_cycles
  // exactly.
  const auto prog = compile_mp5(apps::make_synthetic_source(4, 256));
  SyntheticConfig config;
  config.stateful_stages = 4;
  config.reg_size = 256;
  config.pipelines = 4;
  config.packets = 3000;
  const auto trace = make_synthetic_trace(config);

  auto opts = mp5_options(4, 5);
  opts.faults.stalls.push_back(StageStall{1, 2, 100, 180});
  opts.faults.stalls.push_back(StageStall{3, 1, 400, 450});
  opts.faults.fifo_pressure.push_back(FifoPressure{200, 260, 1});
  const auto lockstep = run_with(prog, trace, opts);
  EXPECT_GT(lockstep.stalled_cycles, 0u);
  opts.engine = SimEngine::kEvent;
  for (const std::uint32_t threads : {1u, 2u, 4u}) {
    opts.threads = threads;
    SCOPED_TRACE("event threads=" + std::to_string(threads));
    expect_identical(lockstep, run_with(prog, trace, opts));
  }
}

TEST(EventEngine, SkipsUnderFaultPlansWhereLockstepCannot) {
  // A sparse trace plus a fault plan disables lockstep fast-forward
  // entirely; the event engine still skips (clamping at the stall window
  // and lane events) and must stay bit-identical — including
  // stalled_cycles accumulated across cycles where the switch is empty.
  const auto prog = compile_mp5(apps::make_synthetic_source(3, 128));
  SyntheticConfig config;
  config.stateful_stages = 3;
  config.reg_size = 128;
  config.pipelines = 4;
  config.packets = 200;
  config.load = 0.005;
  const auto trace = make_synthetic_trace(config);

  auto opts = mp5_options(4, 11);
  opts.faults.stalls.push_back(StageStall{1, 1, 500, 9000});
  opts.faults.pipeline_faults.push_back(PipelineFault{2, 4000, 12000});
  const auto lockstep = run_with(prog, trace, opts);
  EXPECT_GT(lockstep.stalled_cycles, 1000u); // empty stalled cycles counted
  EXPECT_EQ(lockstep.pipeline_failures, 1u);
  opts.engine = SimEngine::kEvent;
  expect_identical(lockstep, run_with(prog, trace, opts));
  opts.threads = 4;
  expect_identical(lockstep, run_with(prog, trace, opts));
}

TEST(EventEngine, IdenticalTelemetryAndTimeline) {
  // threads == 1 allows telemetry/timeline under both engines; the event
  // walk visits exactly the cells that do something, so the event stream
  // and every counter must match the lockstep run's.
  const auto prog = compile_mp5(apps::make_synthetic_source(3, 128));
  SyntheticConfig config;
  config.stateful_stages = 3;
  config.reg_size = 128;
  config.pipelines = 4;
  config.packets = 500;
  const auto trace = make_synthetic_trace(config);

  const auto run_instrumented = [&](SimEngine engine,
                                    std::vector<TimelineEvent>& events,
                                    telemetry::Telemetry& telem) {
    auto opts = mp5_options(4, 2);
    opts.engine = engine;
    opts.telemetry = &telem;
    opts.timeline = [&events](const TimelineEvent& e) { events.push_back(e); };
    return run_with(prog, trace, opts);
  };
  std::vector<TimelineEvent> lockstep_events;
  std::vector<TimelineEvent> event_events;
  telemetry::Telemetry lockstep_telem;
  telemetry::Telemetry event_telem;
  const auto a =
      run_instrumented(SimEngine::kLockstep, lockstep_events, lockstep_telem);
  const auto b = run_instrumented(SimEngine::kEvent, event_events, event_telem);
  expect_identical(a, b);
  ASSERT_EQ(lockstep_events.size(), event_events.size());
  for (std::size_t i = 0; i < lockstep_events.size(); ++i) {
    EXPECT_EQ(lockstep_events[i].kind, event_events[i].kind);
    EXPECT_EQ(lockstep_events[i].cycle, event_events[i].cycle);
    EXPECT_EQ(lockstep_events[i].pipeline, event_events[i].pipeline);
    EXPECT_EQ(lockstep_events[i].stage, event_events[i].stage);
    EXPECT_EQ(lockstep_events[i].seq, event_events[i].seq);
  }
  EXPECT_EQ(lockstep_telem.counter_snapshot(), event_telem.counter_snapshot());
}

TEST(EventEngine, ExternalClockingMatchesRun) {
  // The fabric drives inner simulators through begin/step/finish; with an
  // event-engine inner sim the stepped walk must equal run() bit for bit.
  const auto prog = compile_mp5(apps::make_synthetic_source(3, 128));
  SyntheticConfig config;
  config.stateful_stages = 3;
  config.reg_size = 128;
  config.pipelines = 4;
  config.packets = 600;
  const auto trace = make_synthetic_trace(config);

  auto opts = mp5_options(4, 6);
  opts.engine = SimEngine::kEvent;
  const auto whole = run_with(prog, trace, opts);

  opts.record_egress = true;
  opts.track_flow_reordering = true;
  Mp5Simulator sim(prog, opts);
  VectorTraceSource source(trace);
  sim.begin(source);
  Cycle c = 0;
  while (sim.has_work()) sim.step(c++);
  expect_identical(whole, sim.finish(c));
}

TEST(EventEngine, ParanoidChecksValidateActivityBitmap) {
  const auto prog = compile_mp5(apps::make_synthetic_source(4, 256));
  SyntheticConfig config;
  config.stateful_stages = 4;
  config.reg_size = 256;
  config.pipelines = 4;
  config.packets = 1500;
  const auto trace = make_synthetic_trace(config);

  auto opts = mp5_options(4, 4);
  opts.engine = SimEngine::kEvent;
  opts.paranoid_checks = true; // the watchdog cross-checks bit vs occupancy
  const auto lockstep_opts = mp5_options(4, 4);
  expect_identical(run_with(prog, trace, lockstep_opts),
                   run_with(prog, trace, opts));
}

TEST(EventEngine, EngineStringRoundTrip) {
  EXPECT_EQ(engine_from_string("lockstep"), SimEngine::kLockstep);
  EXPECT_EQ(engine_from_string("event"), SimEngine::kEvent);
  EXPECT_STREQ(to_string(SimEngine::kLockstep), "lockstep");
  EXPECT_STREQ(to_string(SimEngine::kEvent), "event");
  EXPECT_THROW(engine_from_string("warp"), ConfigError);
}

// --- idle-cycle fast-forward ---------------------------------------------

TEST(FastForward, IdenticalResultsOnSparseTrace) {
  const auto prog = compile_mp5(apps::make_synthetic_source(3, 128));
  SyntheticConfig config;
  config.stateful_stages = 3;
  config.reg_size = 128;
  config.pipelines = 4;
  config.packets = 400;
  config.load = 0.01; // ~100 idle cycles between packets
  const auto trace = make_synthetic_trace(config);

  auto opts = mp5_options(4, 1);
  opts.fast_forward = false;
  const auto slow = run_with(prog, trace, opts);
  opts.fast_forward = true;
  const auto fast = run_with(prog, trace, opts);
  expect_identical(slow, fast);
  EXPECT_GT(slow.cycles_run, 5000u); // the sparse trace really is sparse
}

TEST(FastForward, IdenticalUnderRealisticChannelAndRemap) {
  // Phantom-channel deliveries and remap boundaries are wake-up events the
  // fast-forward must not jump over.
  const auto prog = compile_mp5(apps::make_synthetic_source(4, 256));
  SyntheticConfig config;
  config.stateful_stages = 4;
  config.reg_size = 256;
  config.pipelines = 4;
  config.packets = 300;
  config.load = 0.02;
  const auto trace = make_synthetic_trace(config);

  for (const auto& variant : kVariants) {
    SCOPED_TRACE(variant.name);
    auto opts = variant.make(4, 2);
    opts.realistic_phantom_channel = opts.phantoms;
    opts.fast_forward = false;
    const auto slow = run_with(prog, trace, opts);
    opts.fast_forward = true;
    expect_identical(slow, run_with(prog, trace, opts));
  }
}

TEST(FastForward, ComposesWithParallelEngine) {
  const auto prog = compile_mp5(apps::make_synthetic_source(4, 256));
  SyntheticConfig config;
  config.stateful_stages = 4;
  config.reg_size = 256;
  config.pipelines = 8;
  config.packets = 500;
  config.load = 0.05;
  const auto trace = make_synthetic_trace(config);

  auto opts = mp5_options(8, 9);
  opts.fast_forward = false;
  const auto slow = run_with(prog, trace, opts);
  opts.fast_forward = true;
  opts.threads = 4;
  expect_identical(slow, run_with(prog, trace, opts));
}

// --- incremental D2 accounting -------------------------------------------

TEST(IncrementalSharding, SimResultMatchesReferenceRebalance) {
  // The incremental O(touched) rebalance must be decision-for-decision
  // identical to the full-scan reference, so routing the simulator through
  // either path yields the same SimResult, field by field.
  const auto prog = compile_mp5(apps::make_synthetic_source(4, 256));
  for (const std::uint32_t k : {2u, 4u}) {
    SyntheticConfig config;
    config.stateful_stages = 4;
    config.reg_size = 256;
    config.pipelines = k;
    config.packets = 2000;
    for (const std::uint64_t seed : {1ull, 7ull}) {
      config.seed = seed;
      const auto trace = make_synthetic_trace(config);
      for (const auto& variant : kVariants) {
        SCOPED_TRACE(std::string(variant.name) + " k=" + std::to_string(k) +
                     " seed=" + std::to_string(seed));
        auto opts = variant.make(k, seed);
        opts.reference_rebalance = true;
        const auto reference = run_with(prog, trace, opts);
        opts.reference_rebalance = false;
        expect_identical(reference, run_with(prog, trace, opts));
      }
    }
  }
}

TEST(IncrementalSharding, SimResultMatchesReferenceUnderFaultPlan) {
  const auto prog = compile_mp5(apps::make_synthetic_source(4, 256));
  SyntheticConfig config;
  config.stateful_stages = 4;
  config.reg_size = 256;
  config.pipelines = 8;
  config.packets = 3000;
  const auto trace = make_synthetic_trace(config);

  auto opts = mp5_options(8, 1);
  opts.faults.pipeline_faults.push_back(PipelineFault{2, 150, 600});
  opts.faults.pipeline_faults.push_back(PipelineFault{5, 300, kNeverRecovers});
  opts.reference_rebalance = true;
  const auto reference = run_with(prog, trace, opts);
  EXPECT_GT(reference.fault_remapped_indices, 0u); // the plan actually bites
  opts.reference_rebalance = false;
  expect_identical(reference, run_with(prog, trace, opts));
}

TEST(FastForward, SkipsEmptyWindowRemapBoundariesBitIdentically) {
  // A sparse trace leaves many remap windows with an empty touched list.
  // window_dirty() lets fast-forward skip those boundaries entirely — the
  // results must match the cycle-by-cycle walk AND the full-scan reference
  // path (which steps every boundary) bit for bit.
  const auto prog = compile_mp5(apps::make_synthetic_source(3, 128));
  SyntheticConfig config;
  config.stateful_stages = 3;
  config.reg_size = 128;
  config.pipelines = 4;
  config.packets = 300;
  config.load = 0.002; // ~500 idle cycles between packets: whole remap
                       // periods pass with nothing touched
  const auto trace = make_synthetic_trace(config);

  for (const auto& variant : kVariants) {
    SCOPED_TRACE(variant.name);
    auto opts = variant.make(4, 2);
    opts.fast_forward = false;
    opts.reference_rebalance = true;
    const auto slow_reference = run_with(prog, trace, opts);
    // The trace spans several remap periods, so empty-window boundaries
    // really occur between the sparse arrivals.
    EXPECT_GT(slow_reference.cycles_run, 10 * opts.remap_period);
    opts.reference_rebalance = false;
    const auto slow = run_with(prog, trace, opts);
    expect_identical(slow_reference, slow);
    opts.fast_forward = true;
    expect_identical(slow, run_with(prog, trace, opts));
  }
}

// --- packet arena --------------------------------------------------------

TEST(PacketArena, RecyclesSlotsWithoutStaleFields) {
  PacketArena arena;
  const PacketRef a = arena.alloc();
  {
    Packet& pkt = arena.get(a);
    pkt.seq = 41;
    pkt.arrival_cycle = 100;
    pkt.port = 7;
    pkt.size_bytes = 1500;
    pkt.flow = 12345;
    pkt.ecn_marked = true;
    pkt.headers = {1, 2, 3};
    pkt.plan.resize(2);
    pkt.next_access = 1;
  }
  arena.release(a);
  EXPECT_EQ(arena.live_count(), 0u);

  const PacketRef b = arena.alloc();
  EXPECT_EQ(b, a); // freelist reuse, not growth
  const Packet& pkt = arena.get(b);
  EXPECT_EQ(pkt.seq, kInvalidSeqNo);
  EXPECT_EQ(pkt.arrival_cycle, 0u);
  EXPECT_EQ(pkt.port, 0u);
  EXPECT_EQ(pkt.size_bytes, 64u);
  EXPECT_EQ(pkt.flow, 0u);
  EXPECT_FALSE(pkt.ecn_marked);
  EXPECT_TRUE(pkt.headers.empty());
  EXPECT_TRUE(pkt.plan.empty());
  EXPECT_EQ(pkt.next_access, 0u);
  EXPECT_EQ(arena.slot_count(), 1u);
  EXPECT_EQ(arena.recycled_allocs(), 1u);
}

TEST(PacketArena, ReleaseOfDeadSlotThrows) {
  PacketArena arena;
  const PacketRef a = arena.alloc();
  arena.release(a);
  EXPECT_THROW(arena.release(a), Error);
  EXPECT_FALSE(arena.live(a));
}

TEST(PacketArena, TracksPeakLive) {
  PacketArena arena;
  arena.reserve(8);
  std::vector<PacketRef> refs;
  for (int i = 0; i < 5; ++i) refs.push_back(arena.alloc());
  for (const auto r : refs) arena.release(r);
  for (int i = 0; i < 3; ++i) arena.alloc();
  EXPECT_EQ(arena.peak_live(), 5u);
  EXPECT_EQ(arena.live_count(), 3u);
  EXPECT_EQ(arena.total_allocs(), 8u);
  EXPECT_EQ(arena.recycled_allocs(), 3u);
  EXPECT_EQ(arena.slot_count(), 5u);
}

// The simulator's arena must end every run empty: each admitted packet is
// eventually egressed or dropped, and both paths release the slot.
TEST(PacketArena, SimulatorDrainsArenaAndRecycles) {
  const auto prog = compile_mp5(apps::make_synthetic_source(4, 256));
  SyntheticConfig config;
  config.stateful_stages = 4;
  config.reg_size = 256;
  config.pipelines = 4;
  config.packets = 2000;
  const auto trace = make_synthetic_trace(config);
  Mp5Simulator sim(prog, mp5_options(4, 1));
  const auto result = sim.run(trace);
  EXPECT_EQ(result.egressed + result.dropped_data + result.dropped_starved +
                result.dropped_fault,
            result.offered);
  EXPECT_EQ(sim.arena().live_count(), 0u);
  // The pool stabilizes at the peak number of in-flight packets, far below
  // one slot per trace packet.
  EXPECT_LT(sim.arena().slot_count(), trace.size() / 2);
  EXPECT_GT(sim.arena().recycled_allocs(), 0u);
}

} // namespace
} // namespace mp5::test
