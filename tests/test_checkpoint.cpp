// mp5-checkpoint v1 (ISSUE 6): framing robustness and the bit-identity
// contract — restoring any emitted checkpoint, under any engine
// configuration, must reproduce the uninterrupted run's SimResult
// field-by-field, for every matrix cell and fault plan.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "apps/programs.hpp"
#include "baseline/presets.hpp"
#include "baseline/replicated.hpp"
#include "common/error.hpp"
#include "common/serialize.hpp"
#include "fuzz/differ.hpp"
#include "metrics/sim_result.hpp"
#include "mp5/checkpoint.hpp"
#include "mp5/simulator.hpp"
#include "trace/trace_source.hpp"
#include "test_util.hpp"

namespace mp5 {
namespace {

TEST(CheckpointFraming, RoundTrips) {
  const std::string frame = frame_checkpoint(0xDEADBEEF, 1234, "payload!");
  const CheckpointInfo info = parse_checkpoint(frame);
  EXPECT_EQ(info.fingerprint, 0xDEADBEEFu);
  EXPECT_EQ(info.cycle, 1234u);
  EXPECT_EQ(info.payload, "payload!");
  EXPECT_EQ(framed_size(frame), frame.size());
}

TEST(CheckpointFraming, SplitsConcatenatedFrames) {
  const std::string a = frame_checkpoint(1, 10, "first payload");
  const std::string b = frame_checkpoint(1, 20, "second");
  const std::string file = a + b;
  const std::size_t split = framed_size(file);
  ASSERT_EQ(split, a.size());
  EXPECT_EQ(parse_checkpoint(std::string_view(file).substr(0, split)).cycle,
            10u);
  EXPECT_EQ(parse_checkpoint(std::string_view(file).substr(split)).cycle,
            20u);
  EXPECT_THROW(framed_size(std::string_view(file).substr(0, 20)), Error);
  EXPECT_THROW(framed_size(std::string_view(a).substr(0, a.size() - 1)),
               Error);
}

void expect_error_containing(const std::string& blob, const char* needle) {
  try {
    parse_checkpoint(blob);
    FAIL() << "expected Error mentioning '" << needle << "'";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(CheckpointFraming, RejectsCorruption) {
  const std::string frame = frame_checkpoint(7, 99, "some payload bytes");
  const std::size_t header = kCheckpointMagic.size() + 4 + 8 + 8 + 8;

  std::string flipped = frame;
  flipped[header + 3] ^= 0x01; // one payload bit
  expect_error_containing(flipped, "checksum mismatch");

  std::string flipped_cycle = frame;
  flipped_cycle[kCheckpointMagic.size() + 4 + 8] ^= 0x01; // header field
  expect_error_containing(flipped_cycle, "checksum mismatch");

  expect_error_containing(frame.substr(0, 20), "truncated");
  expect_error_containing(frame.substr(0, frame.size() - 5),
                          "checksum mismatch");

  std::string bad_magic = frame;
  bad_magic[0] = 'X';
  expect_error_containing(bad_magic, "bad magic");

  // A well-formed frame from a future format version: correct checksum,
  // version field = 2. Must be rejected by version, not by checksum.
  ByteWriter w;
  w.bytes(kCheckpointMagic.data(), kCheckpointMagic.size());
  w.u32(2);
  w.u64(7);
  w.u64(99);
  w.u64(4);
  w.bytes("abcd", 4);
  w.u64(fnv1a(w.buffer()));
  expect_error_containing(w.take(), "unsupported checkpoint version");
}

TEST(CheckpointFingerprint, CoversSemanticsNotEngineKnobs) {
  const Mp5Program prog = test::compile_mp5(apps::make_synthetic_source(3, 64));
  SimOptions base;
  const std::uint64_t fp = config_fingerprint(prog, base);

  // Engine knobs are excluded by design: a checkpoint taken
  // single-threaded restores into a 4-thread / no-fast-forward run.
  SimOptions engine = base;
  engine.threads = 4;
  engine.fast_forward = false;
  engine.reference_rebalance = true;
  engine.checkpoint_interval = 1000;
  engine.max_cycles = 42;
  engine.paranoid_checks = true;
  EXPECT_EQ(config_fingerprint(prog, engine), fp);

  SimOptions k8 = base;
  k8.pipelines = 8;
  EXPECT_NE(config_fingerprint(prog, k8), fp);

  SimOptions seeded = base;
  seeded.seed = 2;
  EXPECT_NE(config_fingerprint(prog, seeded), fp);

  SimOptions faulty = base;
  faulty.faults.pipeline_faults.push_back({1, 100, 500});
  EXPECT_NE(config_fingerprint(prog, faulty), fp);
}

TEST(CheckpointFingerprint, CoversVariantAndStaleness) {
  // The design variant and its staleness bound are semantic state layout:
  // a checkpoint taken under one must never restore under another
  // (ISSUE 10 satellite).
  const Mp5Program prog = test::compile_mp5(apps::make_synthetic_source(3, 64));
  const std::uint64_t mp5_fp = config_fingerprint(prog, mp5_options(4, 1));
  const std::uint64_t scr_fp = config_fingerprint(prog, scr_options(4, 1));
  const std::uint64_t rel64_fp =
      config_fingerprint(prog, relaxed_options(4, 1, 64));
  const std::uint64_t rel128_fp =
      config_fingerprint(prog, relaxed_options(4, 1, 128));
  EXPECT_NE(scr_fp, mp5_fp);
  EXPECT_NE(rel64_fp, mp5_fp);
  EXPECT_NE(rel64_fp, scr_fp);
  EXPECT_NE(rel128_fp, rel64_fp);

  // Engine knobs stay excluded for the replicated variants too.
  SimOptions noff = scr_options(4, 1);
  noff.fast_forward = false;
  noff.checkpoint_interval = 1000;
  EXPECT_EQ(config_fingerprint(prog, noff), scr_fp);
}

// -- bit-identity property test --------------------------------------------

struct NamedPlan {
  const char* name;
  FaultPlan plan;
  bool phantom_channel = false;
};

std::vector<NamedPlan> fault_plans() {
  std::vector<NamedPlan> plans;
  plans.push_back({"fault-free", {}, false});
  {
    FaultPlan p;
    p.pipeline_faults.push_back({1, 60, 240});
    plans.push_back({"lane-fail-recover", p, false});
  }
  {
    FaultPlan p;
    p.stalls.push_back({0, 1, 30, 120});
    p.fifo_pressure.push_back({50, 150, 2});
    plans.push_back({"stall-and-pressure", p, false});
  }
  {
    FaultPlan p;
    p.phantom_loss_rate = 0.2;
    p.phantom_delay_rate = 0.2;
    p.phantom_extra_delay = 3;
    plans.push_back({"phantom-loss-delay", p, true});
  }
  return plans;
}

TEST(CheckpointRestore, BitIdentityAcrossMatrixAndFaultPlans) {
  const Mp5Program prog = test::compile_mp5(apps::make_synthetic_source(3, 64));
  Rng rng(21);
  const Trace trace = test::trace_from_fields(
      test::random_fields(500, prog.pvsm.num_slots(), 64, rng),
      /*pipelines=*/4, /*load=*/0.9);

  std::vector<fuzz::SimConfig> cells = fuzz::quick_config_matrix();
  {
    fuzz::SimConfig bounded; // drops via bounded FIFOs must checkpoint too
    bounded.fifo_capacity = 4;
    cells.push_back(bounded);
  }

  for (const fuzz::SimConfig& cell : cells) {
    for (const NamedPlan& plan : fault_plans()) {
      SCOPED_TRACE(cell.name() + " / " + plan.name);
      SimOptions opts = cell.to_options();
      opts.faults = plan.plan;
      opts.realistic_phantom_channel = plan.phantom_channel;

      const SimResult baseline = Mp5Simulator(prog, opts).run(trace);

      // Re-run with periodic checkpoints: the cadence must be invisible.
      std::vector<std::pair<Cycle, std::string>> blobs;
      SimOptions copts = opts;
      copts.checkpoint_interval =
          std::max<std::uint64_t>(1, baseline.cycles_run / 4);
      copts.checkpoint_sink = [&blobs](Cycle c, std::string&& blob) {
        blobs.emplace_back(c, std::move(blob));
      };
      const SimResult ckpt_run = Mp5Simulator(prog, copts).run(trace);
      std::string why;
      ASSERT_TRUE(same_results(baseline, ckpt_run, &why))
          << "checkpointing run diverged from the plain run: " << why;
      ASSERT_FALSE(blobs.empty());

      // Every emitted checkpoint must restore to the identical SimResult.
      for (const auto& [cycle, blob] : blobs) {
        Mp5Simulator restored(prog, opts);
        VectorTraceSource source(trace);
        const SimResult result = restored.resume(source, blob);
        EXPECT_TRUE(same_results(baseline, result, &why))
            << "restore at cycle " << cycle << " diverged: " << why;
      }
    }
  }
}

TEST(CheckpointRestore, CrossEngineRestore) {
  const Mp5Program prog = test::compile_mp5(apps::make_synthetic_source(3, 64));
  Rng rng(31);
  const Trace trace = test::trace_from_fields(
      test::random_fields(400, prog.pvsm.num_slots(), 64, rng), 4);

  SimOptions opts; // threads=1, fast_forward=true
  opts.record_egress = true;
  opts.paranoid_checks = true;
  const SimResult baseline = Mp5Simulator(prog, opts).run(trace);

  std::vector<std::string> blobs;
  SimOptions copts = opts;
  copts.checkpoint_interval =
      std::max<std::uint64_t>(1, baseline.cycles_run / 2);
  copts.checkpoint_sink = [&blobs](Cycle, std::string&& blob) {
    blobs.push_back(std::move(blob));
  };
  (void)Mp5Simulator(prog, copts).run(trace);
  ASSERT_FALSE(blobs.empty());

  // The fingerprint excludes engine knobs, so a single-threaded
  // checkpoint restores under the parallel engine, with fast-forward
  // off, and under the event-driven engine (which rebuilds its activity
  // bitmap from the restored occupancy) — and still reproduces the
  // sequential result bit-for-bit.
  for (const char* variant :
       {"threads4", "noff", "ref-rebalance", "event", "event-t4"}) {
    SCOPED_TRACE(variant);
    SimOptions vopts = opts;
    if (std::string(variant) == "threads4") vopts.threads = 4;
    if (std::string(variant) == "noff") vopts.fast_forward = false;
    if (std::string(variant) == "ref-rebalance") {
      vopts.reference_rebalance = true;
    }
    if (std::string(variant) == "event") vopts.engine = SimEngine::kEvent;
    if (std::string(variant) == "event-t4") {
      vopts.engine = SimEngine::kEvent;
      vopts.threads = 4;
    }
    Mp5Simulator sim(prog, vopts);
    VectorTraceSource source(trace);
    const SimResult result = sim.resume(source, blobs.front());
    std::string why;
    EXPECT_TRUE(same_results(baseline, result, &why)) << why;
  }

  // The reverse direction: a checkpoint captured mid-run by the event
  // engine restores under plain lockstep.
  std::vector<std::string> ev_blobs;
  SimOptions ev_copts = opts;
  ev_copts.engine = SimEngine::kEvent;
  ev_copts.checkpoint_interval =
      std::max<std::uint64_t>(1, baseline.cycles_run / 2);
  ev_copts.checkpoint_sink = [&ev_blobs](Cycle, std::string&& blob) {
    ev_blobs.push_back(std::move(blob));
  };
  (void)Mp5Simulator(prog, ev_copts).run(trace);
  ASSERT_FALSE(ev_blobs.empty());
  {
    Mp5Simulator sim(prog, opts); // lockstep
    VectorTraceSource source(trace);
    const SimResult result = sim.resume(source, ev_blobs.front());
    std::string why;
    EXPECT_TRUE(same_results(baseline, result, &why)) << why;
  }
}

TEST(CheckpointRestore, RejectsMismatchAndReuse) {
  const Mp5Program prog = test::compile_mp5(apps::make_synthetic_source(3, 64));
  Rng rng(41);
  const Trace trace = test::trace_from_fields(
      test::random_fields(200, prog.pvsm.num_slots(), 64, rng), 4);

  SimOptions opts;
  opts.record_egress = true;
  std::vector<std::string> blobs;
  SimOptions copts = opts;
  copts.checkpoint_interval = 40;
  copts.checkpoint_sink = [&blobs](Cycle, std::string&& blob) {
    blobs.push_back(std::move(blob));
  };
  (void)Mp5Simulator(prog, copts).run(trace);
  ASSERT_FALSE(blobs.empty());
  const std::string& blob = blobs.front();

  // Same payload, different fingerprint: the restore must refuse instead
  // of trusting the payload to fit.
  const CheckpointInfo info = parse_checkpoint(blob);
  const std::string reframed = frame_checkpoint(
      info.fingerprint ^ 1, info.cycle, std::string(info.payload));
  {
    Mp5Simulator sim(prog, opts);
    VectorTraceSource source(trace);
    EXPECT_THROW(sim.resume(source, reframed), Error);
  }

  // A simulator that already ran cannot be restored into.
  {
    Mp5Simulator sim(prog, opts);
    (void)sim.run(trace);
    VectorTraceSource source(trace);
    EXPECT_THROW(sim.resume(source, blob), Error);
  }

  // Garbage blobs fail framing validation before touching the payload.
  {
    Mp5Simulator sim(prog, opts);
    VectorTraceSource source(trace);
    EXPECT_THROW(sim.resume(source, "definitely not a checkpoint"), Error);
  }
}

// -- replicated-variant checkpointing (ISSUE 10) ---------------------------

SimResult run_replicated(const Mp5Program& prog, const Trace& trace,
                         SimOptions opts) {
  opts.record_egress = true;
  opts.paranoid_checks = true;
  if (opts.variant == DesignVariant::kScr) {
    return ScrSimulator(prog, opts).run(trace);
  }
  return RelaxedSimulator(prog, opts).run(trace);
}

TEST(CheckpointRestore, ReplicatedBitIdentity) {
  const Mp5Program prog = test::compile_mp5(apps::make_synthetic_source(3, 64));
  Rng rng(51);
  const Trace trace = test::trace_from_fields(
      test::random_fields(400, prog.pvsm.num_slots(), 64, rng),
      /*pipelines=*/4, /*load=*/0.9);

  for (const SimOptions& base :
       {scr_options(4, 1), relaxed_options(4, 1, 32)}) {
    SCOPED_TRACE(to_string(base.variant));
    const SimResult baseline = run_replicated(prog, trace, base);

    std::vector<std::pair<Cycle, std::string>> blobs;
    SimOptions copts = base;
    copts.record_egress = true;
    copts.paranoid_checks = true;
    copts.checkpoint_interval =
        std::max<std::uint64_t>(1, baseline.cycles_run / 4);
    copts.checkpoint_sink = [&blobs](Cycle c, std::string&& blob) {
      blobs.emplace_back(c, std::move(blob));
    };
    SimResult ckpt_run;
    if (base.variant == DesignVariant::kScr) {
      ckpt_run = ScrSimulator(prog, copts).run(trace);
    } else {
      ckpt_run = RelaxedSimulator(prog, copts).run(trace);
    }
    std::string why;
    ASSERT_TRUE(same_results(baseline, ckpt_run, &why))
        << "checkpointing run diverged from the plain run: " << why;
    ASSERT_FALSE(blobs.empty());

    // Every emitted checkpoint restores to the identical SimResult, with
    // fast-forward either on or off in the restoring simulator.
    for (const auto& [cycle, blob] : blobs) {
      for (const bool ff : {true, false}) {
        SimOptions ropts = base;
        ropts.record_egress = true;
        ropts.paranoid_checks = true;
        ropts.fast_forward = ff;
        std::unique_ptr<ReplicatedSimulator> sim;
        if (base.variant == DesignVariant::kScr) {
          sim = std::make_unique<ScrSimulator>(prog, ropts);
        } else {
          sim = std::make_unique<RelaxedSimulator>(prog, ropts);
        }
        const SimResult result = sim->resume(trace, blob);
        EXPECT_TRUE(same_results(baseline, result, &why))
            << "restore at cycle " << cycle << " (ff=" << ff
            << ") diverged: " << why;
      }
    }
  }
}

TEST(CheckpointRestore, ReplicatedRefusesCrossVariantRestore) {
  const Mp5Program prog = test::compile_mp5(apps::make_synthetic_source(3, 64));
  Rng rng(61);
  const Trace trace = test::trace_from_fields(
      test::random_fields(300, prog.pvsm.num_slots(), 64, rng), 4);

  std::vector<std::string> blobs;
  SimOptions copts = scr_options(4, 1);
  copts.record_egress = true;
  copts.checkpoint_interval = 40;
  copts.checkpoint_sink = [&blobs](Cycle, std::string&& blob) {
    blobs.push_back(std::move(blob));
  };
  (void)ScrSimulator(prog, copts).run(trace);
  ASSERT_FALSE(blobs.empty());
  const std::string& scr_blob = blobs.front();

  // An SCR checkpoint must not restore into a relaxed simulator, into the
  // MP5 simulator, or into SCR at a different pipeline count.
  {
    RelaxedSimulator sim(prog, relaxed_options(4, 1, 32));
    EXPECT_THROW((void)sim.resume(trace, scr_blob), Error);
  }
  {
    SimOptions mp5 = mp5_options(4, 1);
    Mp5Simulator sim(prog, mp5);
    VectorTraceSource source(trace);
    EXPECT_THROW((void)sim.resume(source, scr_blob), Error);
  }
  {
    ScrSimulator sim(prog, scr_options(8, 1));
    EXPECT_THROW((void)sim.resume(trace, scr_blob), Error);
  }

  // Two relaxed runs differing only in Δ must refuse each other's blobs.
  std::vector<std::string> rel_blobs;
  SimOptions rel_copts = relaxed_options(4, 1, 64);
  rel_copts.record_egress = true;
  rel_copts.checkpoint_interval = 40;
  rel_copts.checkpoint_sink = [&rel_blobs](Cycle, std::string&& blob) {
    rel_blobs.push_back(std::move(blob));
  };
  (void)RelaxedSimulator(prog, rel_copts).run(trace);
  ASSERT_FALSE(rel_blobs.empty());
  {
    RelaxedSimulator sim(prog, relaxed_options(4, 1, 128));
    EXPECT_THROW((void)sim.resume(trace, rel_blobs.front()), Error);
  }

  // Reuse and garbage are refused like the MP5 path.
  {
    ScrSimulator sim(prog, scr_options(4, 1));
    (void)sim.run(trace);
    EXPECT_THROW((void)sim.resume(trace, scr_blob), Error);
  }
  {
    ScrSimulator sim(prog, scr_options(4, 1));
    EXPECT_THROW((void)sim.resume(trace, "not a checkpoint"), Error);
  }
}

} // namespace
} // namespace mp5
