// Logical MP5 partitioning (§3.1 footnote 1): several programs, each on
// its own subset of the physical pipelines, fully independent.
#include <gtest/gtest.h>

#include "apps/programs.hpp"
#include "baseline/presets.hpp"
#include "common/error.hpp"
#include "mp5/partition.hpp"
#include "test_util.hpp"

namespace mp5::test {
namespace {

Trace mixed_trace(std::size_t packets, std::uint32_t pipelines) {
  // Field layout is per-partition; packets destined for the counter
  // program need 1 field, WFQ needs 6 — use the max and let each program
  // read its prefix.
  Rng rng(3);
  Trace trace;
  LineRateClock clock(pipelines, 1.0);
  for (std::size_t i = 0; i < packets; ++i) {
    TraceItem item;
    item.arrival_time = clock.next(256);
    item.port = static_cast<std::uint32_t>(i % 64);
    item.size_bytes = 256;
    item.flow = i % 32;
    item.fields = {rng.next_in(0, 1023), rng.next_in(0, 1023),
                   rng.next_in(64, 1500), rng.next_in(0, 100), 0, 0};
    trace.push_back(std::move(item));
  }
  return trace;
}

TEST(Partition, TwoLogicalSwitchesRunIndependently) {
  const auto wfq = compile_mp5(apps::wfq_app().source);
  const auto counter = compile_mp5(apps::packet_counter_source());

  PartitionSpec a;
  a.name = "wfq";
  a.program = &wfq;
  a.pipelines = 3;
  a.options = mp5_options(3, 1);
  PartitionSpec b;
  b.name = "counter";
  b.program = &counter;
  b.pipelines = 1;
  b.options = mp5_options(1, 2);

  PartitionedSwitch sw({a, b}, /*total_pipelines=*/4);
  const auto trace = mixed_trace(8000, 4);
  const auto results =
      sw.run(trace, [](const TraceItem& item) -> std::size_t {
        return item.port < 48 ? 0 : 1; // 3/4 of ports -> wfq
      });

  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].name, "wfq");
  EXPECT_EQ(results[1].name, "counter");
  EXPECT_EQ(results[0].result.offered + results[1].result.offered,
            trace.size());
  // The counter partition processed every packet routed to it: its final
  // register equals its offered count.
  EXPECT_EQ(results[1].result.final_registers[0][0],
            static_cast<Value>(results[1].result.offered));
  const double agg = PartitionedSwitch::aggregate_throughput(results);
  EXPECT_GT(agg, 0.5);
  EXPECT_LE(agg, 1.0);
}

TEST(Partition, EachPartitionKeepsFunctionalEquivalence) {
  const auto prog_a = compile_mp5(apps::make_synthetic_source(2, 64));
  const auto prog_b = compile_mp5(apps::make_synthetic_source(1, 32));

  PartitionSpec a;
  a.name = "a";
  a.program = &prog_a;
  a.pipelines = 2;
  a.options = mp5_options(2, 1);
  a.options.record_egress = true;
  PartitionSpec b = a;
  b.name = "b";
  b.program = &prog_b;
  b.options.seed = 2;

  PartitionedSwitch sw({a, b}, 4);
  Rng rng(7);
  const auto trace = trace_from_fields(random_fields(3000, 3, 32, rng), 4);
  const auto results = sw.run(trace, [](const TraceItem& item) {
    return static_cast<std::size_t>(item.port % 2);
  });

  // Rebuild each partition's sub-trace and check equivalence per program.
  const Mp5Program* progs[] = {&prog_a, &prog_b};
  for (std::size_t part = 0; part < 2; ++part) {
    Trace sub;
    for (const auto& item : trace) {
      if (item.port % 2 == part) sub.push_back(item);
    }
    const auto reference = run_reference(*progs[part], sub);
    const auto report =
        check_equivalence(progs[part]->pvsm, reference, results[part].result);
    EXPECT_TRUE(report.equivalent())
        << "partition " << part << ": " << report.first_difference;
  }
}

TEST(Partition, ValidatesConfiguration) {
  const auto prog = compile_mp5(apps::packet_counter_source());
  PartitionSpec spec;
  spec.name = "p";
  spec.program = &prog;
  spec.pipelines = 2;
  EXPECT_THROW(PartitionedSwitch({spec}, 4), ConfigError); // 2 != 4
  EXPECT_THROW(PartitionedSwitch({}, 4), ConfigError);
  PartitionSpec missing;
  missing.name = "q";
  missing.pipelines = 4;
  EXPECT_THROW(PartitionedSwitch({missing}, 4), ConfigError);

  PartitionedSwitch ok({spec, spec}, 4);
  EXPECT_THROW(ok.run({}, nullptr), ConfigError);
  Trace one;
  one.push_back(TraceItem{});
  EXPECT_THROW(
      ok.run(one, [](const TraceItem&) -> std::size_t { return 9; }),
      ConfigError);
}

} // namespace
} // namespace mp5::test
