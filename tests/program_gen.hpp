// Seeded random Domino-program generator for differential/property tests.
//
// Generated programs use each register with one fixed index expression (a
// Banzai requirement); cyclic state dependencies can still arise and are
// rejected by the compiler — callers skip those seeds.
#pragma once

#include <sstream>
#include <string>

#include "common/rng.hpp"

namespace mp5::test {

class ProgramGen {
public:
  explicit ProgramGen(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    num_fields_ = static_cast<int>(rng_.next_in(2, 4));
    num_regs_ = static_cast<int>(rng_.next_in(1, 3));
    std::ostringstream os;
    os << "struct Packet {";
    for (int f = 0; f < num_fields_; ++f) os << " int f" << f << ";";
    os << " };\n";
    for (int r = 0; r < num_regs_; ++r) {
      reg_size_[r] = static_cast<int>(rng_.next_in(1, 8));
      if (reg_size_[r] == 1) {
        os << "int r" << r << " = " << rng_.next_in(0, 9) << ";\n";
      } else {
        os << "int r" << r << "[" << reg_size_[r] << "] = {"
           << rng_.next_in(0, 9) << "};\n";
      }
    }
    os << "void prog(struct Packet p) {\n";
    const int stmts = static_cast<int>(rng_.next_in(3, 8));
    for (int i = 0; i < stmts; ++i) os << stmt(1);
    os << "}\n";
    return os.str();
  }

private:
  std::string reg_ref(int r) {
    if (reg_size_[r] == 1) return "r" + std::to_string(r);
    // Fixed per-register index expression (single memory port per atom).
    return "r" + std::to_string(r) + "[p.f" + std::to_string(r % num_fields_) +
           " % " + std::to_string(reg_size_[r]) + "]";
  }

  std::string expr(int depth) {
    const auto pick = rng_.next_below(depth >= 3 ? 3 : 7);
    switch (pick) {
      case 0:
        return std::to_string(rng_.next_in(0, 15));
      case 1:
        return "p.f" + std::to_string(rng_.next_below(num_fields_));
      case 2:
        return reg_ref(static_cast<int>(rng_.next_below(num_regs_)));
      case 3: {
        static const char* ops[] = {"+", "-",  "*", "&", "|",
                                    "^", "<",  "==", ">>"};
        const auto op = ops[rng_.next_below(std::size(ops))];
        return "(" + expr(depth + 1) + " " + op + " " + expr(depth + 1) + ")";
      }
      case 4:
        return "(" + expr(depth + 1) + " ? " + expr(depth + 1) + " : " +
               expr(depth + 1) + ")";
      case 5:
        return "hash2(" + expr(depth + 1) + ", " + expr(depth + 1) + ")";
      default:
        return "(" + expr(depth + 1) + " % " +
               std::to_string(rng_.next_in(1, 16)) + ")";
    }
  }

  std::string stmt(int depth) {
    const bool allow_if = depth < 3;
    const auto pick = rng_.next_below(allow_if ? 4 : 3);
    std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    switch (pick) {
      case 0:
        return pad + "p.f" + std::to_string(rng_.next_below(num_fields_)) +
               " = " + expr(1) + ";\n";
      case 1:
      case 2:
        return pad + reg_ref(static_cast<int>(rng_.next_below(num_regs_))) +
               " = " + expr(1) + ";\n";
      default: {
        std::string out = pad + "if (" + expr(1) + ") {\n";
        const int n = static_cast<int>(rng_.next_in(1, 2));
        for (int i = 0; i < n; ++i) out += stmt(depth + 1);
        out += pad + "}";
        if (rng_.chance(0.5)) {
          out += " else {\n";
          const int m = static_cast<int>(rng_.next_in(1, 2));
          for (int i = 0; i < m; ++i) out += stmt(depth + 1);
          out += pad + "}";
        }
        out += "\n";
        return out;
      }
    }
  }

  Rng rng_;
  int num_fields_ = 0;
  int num_regs_ = 0;
  int reg_size_[8] = {};
};

} // namespace mp5::test
