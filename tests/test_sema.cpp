// Semantic-analysis pass: diagnostics must be raised at compile time by
// check_semantics (shared by the compiler and the AST interpreter), with
// the original runtime checks kept as backstops for unvalidated ASTs.
#include <gtest/gtest.h>

#include "banzai/ir.hpp"
#include "common/error.hpp"
#include "domino/ast_interp.hpp"
#include "domino/compiler.hpp"
#include "domino/parser.hpp"
#include "domino/sema.hpp"

namespace mp5::test {
namespace {

std::string header(const std::string& body,
                   const std::string& decls = "int r[4] = {0};") {
  return "struct Packet { int a; int b; };\n" + decls +
         "\nvoid prog(struct Packet p) {\n" + body + "\n}\n";
}

/// Strips SemanticError's "semantic error: " prefix so tests compare the
/// bare diagnostic text.
std::string bare(const std::string& what) {
  constexpr std::string_view kPrefix = "semantic error: ";
  return what.rfind(kPrefix, 0) == 0 ? what.substr(kPrefix.size()) : what;
}

/// The diagnostic raised when compiling `source`, or "" if it compiled.
std::string sema_error(const std::string& source) {
  try {
    (void)domino::compile(source);
    return "";
  } catch (const SemanticError& e) {
    return bare(e.what());
  }
}

TEST(Sema, BareArrayReadRejected) {
  EXPECT_EQ(sema_error(header("p.a = r;")),
            "register array 'r' (size 4) cannot be accessed without an index");
  // Inside larger expressions too.
  EXPECT_NE(sema_error(header("p.a = p.b + r * 2;")), "");
  // Scalar registers may be read bare.
  EXPECT_EQ(sema_error(header("p.a = s;", "int s = 7;")), "");
  // Size-1 arrays act as scalars.
  EXPECT_EQ(sema_error(header("p.a = s;", "int s[1] = {7};")), "");
}

TEST(Sema, BareArrayWriteRejected) {
  EXPECT_EQ(sema_error(header("r = 1;")),
            "register array 'r' (size 4) cannot be accessed without an index");
  EXPECT_EQ(sema_error(header("r[p.a] = 1;")), "");
}

TEST(Sema, AstInterpRaisesSameDiagnosticAtConstruction) {
  const auto ast = domino::parse(header("p.a = r;"));
  try {
    domino::AstInterp interp(ast);
    FAIL() << "expected SemanticError";
  } catch (const SemanticError& e) {
    EXPECT_EQ(
        bare(e.what()),
        "register array 'r' (size 4) cannot be accessed without an index");
  }
}

TEST(Sema, AstInterpRuntimeBackstopWithoutValidation) {
  // validate=false skips the sema pass; the evaluator's own check must
  // still catch the bare array access when the statement executes.
  const auto ast = domino::parse(header("p.a = r;"));
  domino::AstInterp interp(ast, /*validate=*/false);
  EXPECT_THROW((void)interp.process({{"a", 1}, {"b", 2}}), SemanticError);
}

TEST(Sema, ZeroSizeRegisterRejected) {
  // The parser itself refuses `int r[0]`, so drive sema directly with a
  // hand-built AST to prove the compile-time guard exists independently.
  domino::Ast ast;
  ast.fields = {"a"};
  ast.registers.push_back(ir::RegisterSpec{"r", 0, {}});
  try {
    domino::check_semantics(ast);
    FAIL() << "expected SemanticError";
  } catch (const SemanticError& e) {
    EXPECT_EQ(bare(e.what()), "register 'r' must have positive size");
  }
}

TEST(Sema, PvsmZeroSizeRegisterBackstop) {
  // A hand-built PVSM (bypassing the compiler) must also refuse to
  // materialize a zero-size register, which would otherwise divide by
  // zero in floor_mod at the first access.
  ir::Pvsm pvsm;
  pvsm.registers.push_back(ir::RegisterSpec{"r", 0, {}});
  EXPECT_THROW((void)pvsm.initial_registers(), SemanticError);
}

TEST(Sema, OversizedInitializerRejected) {
  domino::Ast ast;
  ast.fields = {"a"};
  ast.registers.push_back(ir::RegisterSpec{"r", 2, {1, 2, 3}});
  EXPECT_THROW(domino::check_semantics(ast), SemanticError);
}

TEST(Sema, BuiltinArityCheckedAtCompileTime) {
  EXPECT_EQ(sema_error(header("p.a = hash2(p.a, p.b) % 4;")), "");
  EXPECT_EQ(sema_error(header("p.a = hash2(p.a) % 4;")),
            "hash2 expects 2 arguments, got 1");
  EXPECT_EQ(sema_error(header("p.a = hash3(p.a, p.b) % 4;")),
            "hash3 expects 3 arguments, got 2");
  EXPECT_EQ(sema_error(header("p.a = min(p.a, p.b, p.a);")),
            "min expects 2 arguments");
  EXPECT_EQ(sema_error(header("p.a = max(p.a);")), "max expects 2 arguments");
}

TEST(Sema, UnknownBuiltinCheckedAtCompileTime) {
  EXPECT_EQ(sema_error(header("p.a = frobnicate(p.a);")),
            "unknown builtin 'frobnicate'");
}

TEST(Sema, BuiltinRuntimeBackstopWithoutValidation) {
  // Same program, unvalidated interpreter: the evaluator's runtime throw
  // is the tested backstop.
  const auto ast = domino::parse(header("p.a = hash2(p.a) % 4;"));
  domino::AstInterp interp(ast, /*validate=*/false);
  EXPECT_THROW((void)interp.process({{"a", 1}, {"b", 2}}), SemanticError);
}

TEST(Sema, UndeclaredNamesRejected) {
  EXPECT_EQ(sema_error(header("p.c = 1;")), "undeclared packet field 'c'");
  EXPECT_EQ(sema_error(header("p.a = q.a;")),
            "unknown struct value 'q' (expected packet parameter 'p')");
  EXPECT_EQ(sema_error(header("nosuch[0] = 1;")),
            "undeclared register 'nosuch'");
}

TEST(Sema, AssignToConstantRejected) {
  EXPECT_EQ(sema_error(header("C = 1;", "const int C = 3;")),
            "cannot assign to constant 'C'");
}

TEST(Sema, DuplicateDeclarationsRejected) {
  EXPECT_NE(sema_error(header("p.a = 1;", "int r = 0;\nint r = 1;")), "");
}

} // namespace
} // namespace mp5::test
