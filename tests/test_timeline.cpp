// Cycle-level behaviour via the timeline hook: the Figure 3 scenario and
// the §3.4 runtime invariants observed directly from the event stream.
#include <gtest/gtest.h>

#include <map>

#include "apps/programs.hpp"
#include "baseline/presets.hpp"
#include "test_util.hpp"

namespace mp5::test {
namespace {

using Kind = TimelineEvent::Kind;

std::vector<TimelineEvent> record(const Mp5Program& prog, const Trace& trace,
                                  SimOptions opts) {
  std::vector<TimelineEvent> events;
  opts.timeline = [&events](const TimelineEvent& e) { events.push_back(e); };
  Mp5Simulator sim(prog, opts);
  (void)sim.run(trace);
  return events;
}

TEST(Timeline, Figure3PhantomHoldsEsPlaceBehindD) {
  // Packets A..D (mux=1, contending on reg1[1]) and E (mux=0, free) all
  // access reg3[2]. Without D4, E would reach reg3[2] before D (Table II);
  // with phantoms, D's placeholder precedes E in reg3's FIFO (Table III).
  const auto prog = compile_mp5(apps::figure3_source());
  std::vector<std::vector<Value>> fields = {
      {1, 1, 2, 0, 1}, {1, 1, 2, 0, 1}, {1, 1, 2, 0, 1}, {1, 1, 2, 0, 1},
      {1, 3, 2, 0, 0}, // E
  };
  const auto trace = trace_from_fields(fields, 2);

  // Whether E's data packet physically beats D to reg3 depends on the
  // random shard placement (if reg2[3] co-locates with reg1[1], E queues
  // behind D earlier). Sweep seeds: the processing order must hold for
  // every placement, and the Table III race (E inserted first, D popped
  // first, stage blocked in between) must occur for some placement.
  bool race_observed = false;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto events = record(prog, trace, mp5_options(2, seed));
    // reg3's stage: the stage of E's (seq 4) last phantom.
    StageId reg3_stage = 0;
    for (const auto& e : events) {
      if (e.kind == Kind::kPhantomPush && e.seq == 4) {
        reg3_stage = std::max(reg3_stage, e.stage);
      }
    }
    ASSERT_GT(reg3_stage, 0u);
    Cycle d_pop = 0, e_pop = 0, d_insert = 0, e_insert = 0;
    for (const auto& e : events) {
      if (e.stage != reg3_stage) continue;
      if (e.kind == Kind::kPopData && e.seq == 3) d_pop = e.cycle;
      if (e.kind == Kind::kPopData && e.seq == 4) e_pop = e.cycle;
      if (e.kind == Kind::kInsert && e.seq == 3) d_insert = e.cycle;
      if (e.kind == Kind::kInsert && e.seq == 4) e_insert = e.cycle;
    }
    // C1: D (arrival 3) is always processed before E (arrival 4) at reg3.
    EXPECT_LT(d_pop, e_pop) << "seed " << seed;
    if (e_insert < d_insert) {
      // The Table III race: E's data packet is queued behind D's phantom.
      // The wait can surface either as blocked cycles or as the stage
      // serving earlier packets (A-C) in the meantime; the mandatory part
      // is that E is not served during the window.
      for (const auto& e : events) {
        if (e.kind == Kind::kPopData && e.seq == 4 &&
            e.stage == reg3_stage) {
          EXPECT_GE(e.cycle, d_pop) << "seed " << seed;
        }
      }
      race_observed = true;
    }
  }
  EXPECT_TRUE(race_observed)
      << "no shard placement produced the Table III race";
}

TEST(Timeline, Invariant2StatelessPacketsNeverQueued) {
  // Mixed stateful/stateless traffic: no packet with an empty plan may
  // ever appear in an insert event (stateless packets are never queued).
  const std::string src = R"(
    struct Packet { int kind; int v; };
    int acc[8] = {0};
    void f(struct Packet p) {
      if (p.kind == 1) { acc[p.v % 8] = acc[p.v % 8] + p.v; }
    }
  )";
  const auto prog = compile_mp5(src);
  Rng rng(5);
  auto fields = random_fields(2000, 2, 8, rng);
  for (auto& f : fields) f[0] = rng.chance(0.5) ? 1 : 0;
  const auto trace = trace_from_fields(fields, 4);
  const auto events = record(prog, trace, mp5_options(4, 5));

  std::unordered_set<SeqNo> stateless;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (fields[i][0] == 0) stateless.insert(i);
  }
  for (const auto& e : events) {
    if (e.kind == Kind::kInsert) {
      EXPECT_FALSE(stateless.count(e.seq))
          << "stateless packet " << e.seq << " was queued";
    }
  }
}

TEST(Timeline, Invariant1PhantomsDeliveredInArrivalOrder) {
  // Per (pipeline, stage), phantom pushes must be seq-monotone per cycle
  // batch — the phantom channel preserves generation order.
  const auto prog = compile_mp5(apps::make_synthetic_source(3, 32));
  SyntheticConfig config;
  config.stateful_stages = 3;
  config.reg_size = 32;
  config.packets = 2000;
  const auto trace = make_synthetic_trace(config);
  const auto events = record(prog, trace, mp5_options(4, 6));

  std::map<std::pair<PipelineId, StageId>, SeqNo> last;
  for (const auto& e : events) {
    if (e.kind != Kind::kPhantomPush) continue;
    auto key = std::make_pair(e.pipeline, e.stage);
    auto it = last.find(key);
    if (it != last.end()) {
      EXPECT_GT(e.seq, it->second)
          << "phantoms out of order at pipeline " << e.pipeline << " stage "
          << e.stage;
    }
    last[key] = e.seq;
  }
}

TEST(Timeline, EveryPacketAdmittedThenEgressedExactlyOnce) {
  const auto prog = compile_mp5(apps::make_synthetic_source(2, 64));
  SyntheticConfig config;
  config.stateful_stages = 2;
  config.reg_size = 64;
  config.packets = 1000;
  const auto trace = make_synthetic_trace(config);
  const auto events = record(prog, trace, mp5_options(4, 7));

  std::map<SeqNo, int> admits, egresses;
  for (const auto& e : events) {
    if (e.kind == Kind::kAdmit) ++admits[e.seq];
    if (e.kind == Kind::kEgress) ++egresses[e.seq];
  }
  ASSERT_EQ(admits.size(), trace.size());
  ASSERT_EQ(egresses.size(), trace.size());
  for (const auto& [seq, n] : admits) EXPECT_EQ(n, 1) << seq;
  for (const auto& [seq, n] : egresses) EXPECT_EQ(n, 1) << seq;
}

TEST(Timeline, ConservativeCancellationEmitsCancelEvents) {
  const auto prog = compile_mp5(apps::stateful_predicate_source());
  Rng rng(9);
  const auto trace = trace_from_fields(random_fields(500, 3, 64, rng), 4);
  const auto events = record(prog, trace, mp5_options(4, 9));
  std::size_t cancels = 0, wasted = 0;
  for (const auto& e : events) {
    if (e.kind == Kind::kCancel) ++cancels;
    if (e.kind == Kind::kPopWasted) ++wasted;
  }
  EXPECT_GT(cancels, 0u);
  EXPECT_EQ(cancels, wasted); // every cancelled phantom costs one pop
}


TEST(Timeline, RealisticChannelDeliversAfterStageHops) {
  const auto prog = compile_mp5(apps::make_synthetic_source(3, 32));
  SyntheticConfig config;
  config.stateful_stages = 3;
  config.reg_size = 32;
  config.packets = 600;
  const auto trace = make_synthetic_trace(config);
  SimOptions opts = mp5_options(4, 8);
  opts.realistic_phantom_channel = true;
  std::vector<TimelineEvent> events;
  opts.timeline = [&events](const TimelineEvent& e) { events.push_back(e); };
  Mp5Simulator sim(prog, opts);
  const auto result = sim.run(trace);
  EXPECT_EQ(result.egressed, trace.size());

  std::map<SeqNo, Cycle> admit_cycle;
  std::map<std::pair<SeqNo, StageId>, Cycle> phantom_cycle;
  for (const auto& e : events) {
    if (e.kind == Kind::kAdmit) admit_cycle[e.seq] = e.cycle;
    if (e.kind == Kind::kPhantomPush) {
      phantom_cycle[{e.seq, e.stage}] = e.cycle;
    }
  }
  std::size_t checked = 0;
  for (const auto& e : events) {
    if (e.kind == Kind::kPhantomPush) {
      // Exactly `stage` hops after arrival.
      ASSERT_TRUE(admit_cycle.count(e.seq));
      EXPECT_EQ(e.cycle, admit_cycle[e.seq] + e.stage) << "pkt " << e.seq;
    }
    if (e.kind == Kind::kInsert) {
      // The data packet always finds its phantom already delivered.
      auto it = phantom_cycle.find({e.seq, e.stage});
      ASSERT_NE(it, phantom_cycle.end()) << "pkt " << e.seq;
      EXPECT_LE(it->second, e.cycle);
      ++checked;
    }
  }
  EXPECT_GT(checked, 1000u);
}

TEST(Timeline, RealisticChannelDropsPlaceholderAndData) {
  // 4x overload on a scalar register with tiny FIFOs: phantoms dropped at
  // delivery must translate into data drops, never deadlock.
  const auto prog = compile_mp5(apps::packet_counter_source());
  Rng rng(77);
  const auto trace = trace_from_fields(random_fields(2000, 1, 4, rng), 4);
  SimOptions opts = mp5_options(4, 77);
  opts.realistic_phantom_channel = true;
  opts.fifo_capacity = 8;
  Mp5Simulator sim(prog, opts);
  const auto result = sim.run(trace);
  EXPECT_GT(result.dropped_phantom, 0u);
  EXPECT_GT(result.dropped_data, 0u);
  EXPECT_EQ(result.egressed + result.dropped_data, result.offered);
}

} // namespace
} // namespace mp5::test
