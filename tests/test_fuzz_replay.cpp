// Replays every committed reproducer under tests/corpus/ and checks the
// observed outcome against each entry's "expect" field. Divergences fixed
// in the past stay fixed; self-test entries keep diverging.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/repro.hpp"

#ifndef MP5_CORPUS_DIR
#error "MP5_CORPUS_DIR must point at the committed reproducer corpus"
#endif

namespace mp5::test {
namespace {

std::vector<std::string> corpus_entries() {
  std::vector<std::string> entries;
  for (const auto& item :
       std::filesystem::directory_iterator(MP5_CORPUS_DIR)) {
    if (item.path().extension() == ".json") {
      entries.push_back(item.path().string());
    }
  }
  std::sort(entries.begin(), entries.end());
  return entries;
}

TEST(FuzzReplay, CorpusIsNotEmpty) {
  EXPECT_GE(corpus_entries().size(), 1u)
      << "no reproducers committed under " << MP5_CORPUS_DIR;
}

TEST(FuzzReplay, EveryCorpusEntryMatchesItsExpectedOutcome) {
  for (const std::string& path : corpus_entries()) {
    SCOPED_TRACE(path);
    fuzz::Reproducer repro;
    ASSERT_NO_THROW(repro = fuzz::load_reproducer(path));
    const fuzz::Failure observed = fuzz::replay(repro);
    EXPECT_EQ(observed.kind, repro.kind)
        << "expected " << fuzz::to_string(repro.kind) << ", observed "
        << fuzz::to_string(observed.kind) << ": " << observed.detail;
  }
}

// --- repro schema compatibility across the variant axis (ISSUE 10) ------

fuzz::Reproducer sample_repro() {
  fuzz::Reproducer repro;
  repro.kind = fuzz::FailureKind::kNone;
  repro.seed = 7;
  repro.detail = "compat test";
  repro.program_source =
      "struct Packet { int a; };\n"
      "int last = 0;\n"
      "void prog(struct Packet p) { last = p.a; }\n";
  TraceItem item;
  item.arrival_time = 0.0;
  item.fields = {3};
  repro.trace.push_back(item);
  return repro;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(ReproCompat, VariantConfigRoundTrips) {
  fuzz::Reproducer repro = sample_repro();
  repro.kind = fuzz::FailureKind::kVariantDivergence;
  repro.config.variant = DesignVariant::kRelaxed;
  repro.config.staleness = 64;
  repro.config.pipelines = 8;
  repro.config.fast_forward = false;

  const auto dir =
      std::filesystem::temp_directory_path() / "mp5-repro-compat";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "roundtrip.json").string();
  fuzz::save_reproducer(repro, path);

  const fuzz::Reproducer loaded = fuzz::load_reproducer(path);
  EXPECT_EQ(loaded.kind, fuzz::FailureKind::kVariantDivergence);
  EXPECT_EQ(loaded.config.variant, DesignVariant::kRelaxed);
  EXPECT_EQ(loaded.config.staleness, 64u);
  EXPECT_EQ(loaded.config.pipelines, 8u);
  EXPECT_EQ(loaded.config.name(), repro.config.name());
  std::filesystem::remove_all(dir);
}

TEST(ReproCompat, PreVariantReproLoadsAsMp5) {
  // A corpus file written before ISSUE 10 has no "variant"/"staleness"
  // keys in its config object; it must keep loading as the (then-only)
  // MP5 design, like the PR 8 "engine" key before it.
  const auto dir =
      std::filesystem::temp_directory_path() / "mp5-repro-compat-legacy";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "legacy.json").string();
  fuzz::save_reproducer(sample_repro(), path);

  std::string text = slurp(path);
  const std::size_t from = text.find("\"variant\"");
  const std::size_t to = text.find("\"pipelines\"");
  ASSERT_NE(from, std::string::npos);
  ASSERT_LT(from, to);
  text.erase(from, to - from); // drops the variant and staleness keys
  ASSERT_EQ(text.find("\"variant\""), std::string::npos);
  std::ofstream(path) << text;

  const fuzz::Reproducer loaded = fuzz::load_reproducer(path);
  EXPECT_EQ(loaded.config.variant, DesignVariant::kMp5);
  EXPECT_EQ(loaded.config.staleness, 0u);
  std::filesystem::remove_all(dir);
}

TEST(ReproCompat, UnknownVariantNameIsRejected) {
  const auto dir =
      std::filesystem::temp_directory_path() / "mp5-repro-compat-bad";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "bad.json").string();
  fuzz::save_reproducer(sample_repro(), path);

  std::string text = slurp(path);
  const std::size_t pos = text.find("\"mp5\"");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 5, "\"eventual\"");
  std::ofstream(path) << text;

  EXPECT_THROW(fuzz::load_reproducer(path), ConfigError);
  std::filesystem::remove_all(dir);
}

} // namespace
} // namespace mp5::test
