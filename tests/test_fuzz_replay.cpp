// Replays every committed reproducer under tests/corpus/ and checks the
// observed outcome against each entry's "expect" field. Divergences fixed
// in the past stay fixed; self-test entries keep diverging.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/repro.hpp"

#ifndef MP5_CORPUS_DIR
#error "MP5_CORPUS_DIR must point at the committed reproducer corpus"
#endif

namespace mp5::test {
namespace {

std::vector<std::string> corpus_entries() {
  std::vector<std::string> entries;
  for (const auto& item :
       std::filesystem::directory_iterator(MP5_CORPUS_DIR)) {
    if (item.path().extension() == ".json") {
      entries.push_back(item.path().string());
    }
  }
  std::sort(entries.begin(), entries.end());
  return entries;
}

TEST(FuzzReplay, CorpusIsNotEmpty) {
  EXPECT_GE(corpus_entries().size(), 1u)
      << "no reproducers committed under " << MP5_CORPUS_DIR;
}

TEST(FuzzReplay, EveryCorpusEntryMatchesItsExpectedOutcome) {
  for (const std::string& path : corpus_entries()) {
    SCOPED_TRACE(path);
    fuzz::Reproducer repro;
    ASSERT_NO_THROW(repro = fuzz::load_reproducer(path));
    const fuzz::Failure observed = fuzz::replay(repro);
    EXPECT_EQ(observed.kind, repro.kind)
        << "expected " << fuzz::to_string(repro.kind) << ", observed "
        << fuzz::to_string(observed.kind) << ": " << observed.detail;
  }
}

} // namespace
} // namespace mp5::test
