// Behavioural properties of the MP5 simulator beyond raw equivalence:
// throughput characteristics, C1 violations of the ablations, drops under
// bounded FIFOs, invariant counters.
#include <gtest/gtest.h>

#include "apps/programs.hpp"
#include "baseline/presets.hpp"
#include "test_util.hpp"

namespace mp5::test {
namespace {

Trace synthetic(std::uint32_t stages, std::size_t reg_size, std::uint32_t k,
                std::uint64_t packets, std::uint64_t seed,
                AccessPattern pattern = AccessPattern::kUniform) {
  SyntheticConfig config;
  config.stateful_stages = stages;
  config.reg_size = reg_size;
  config.pipelines = k;
  config.packets = packets;
  config.seed = seed;
  config.pattern = pattern;
  return make_synthetic_trace(config);
}

TEST(SimBehavior, StatelessProgramRunsAtLineRate) {
  const auto prog = compile_mp5(apps::make_synthetic_source(0, 1));
  const auto trace = synthetic(0, 1, 4, 8000, 1);
  Mp5Simulator sim(prog, mp5_options(4, 1));
  const auto result = sim.run(trace);
  EXPECT_EQ(result.egressed, trace.size());
  EXPECT_GT(result.normalized_throughput(), 0.99);
  EXPECT_EQ(result.c1_violating_packets, 0u);
  EXPECT_EQ(result.max_queue_depth, 0u);
}

TEST(SimBehavior, GlobalCounterLimitedToSinglePipelineRate) {
  // §3.5.2 fundamental limit: every packet accesses one scalar register,
  // so throughput cannot exceed 1/k of line rate.
  const auto prog = compile_mp5(apps::packet_counter_source());
  Rng rng(3);
  const auto trace = trace_from_fields(random_fields(4000, 1, 4, rng), 4);
  Mp5Simulator sim(prog, mp5_options(4, 3));
  const auto result = sim.run(trace);
  EXPECT_EQ(result.egressed, trace.size());
  EXPECT_NEAR(result.normalized_throughput(), 0.25, 0.03);
}

TEST(SimBehavior, NaiveDesignAlsoLimitedToSinglePipeline) {
  const auto prog = compile_mp5(apps::make_synthetic_source(2, 256));
  const auto trace = synthetic(2, 256, 4, 4000, 5);
  Mp5Simulator sim(prog, naive_options(4, 5));
  const auto result = sim.run(trace);
  EXPECT_NEAR(result.normalized_throughput(), 0.25, 0.04);
}

TEST(SimBehavior, ShardedStateBeatsNaive) {
  const auto prog = compile_mp5(apps::make_synthetic_source(2, 512));
  const auto trace = synthetic(2, 512, 4, 6000, 7);
  Mp5Simulator mp5(prog, mp5_options(4, 7));
  Mp5Simulator naive(prog, naive_options(4, 7));
  const double t_mp5 = mp5.run(trace).normalized_throughput();
  const double t_naive = naive.run(trace).normalized_throughput();
  EXPECT_GT(t_mp5, 1.8 * t_naive);
}

TEST(SimBehavior, Mp5NeverViolatesC1) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto prog = compile_mp5(apps::make_synthetic_source(4, 64));
    const auto trace =
        synthetic(4, 64, 4, 3000, seed, AccessPattern::kSkewed);
    Mp5Simulator sim(prog, mp5_options(4, seed));
    const auto result = sim.run(trace);
    EXPECT_EQ(result.c1_violating_packets, 0u) << "seed " << seed;
  }
}

TEST(SimBehavior, NoD4ViolatesC1UnderContention) {
  const auto prog = compile_mp5(apps::make_synthetic_source(4, 64));
  const auto trace = synthetic(4, 64, 4, 4000, 11, AccessPattern::kSkewed);
  Mp5Simulator sim(prog, no_d4_options(4, 11));
  const auto result = sim.run(trace);
  EXPECT_GT(result.c1_fraction(), 0.01);
}

TEST(SimBehavior, DynamicShardingBeatsStaticOnSkew) {
  const auto prog = compile_mp5(apps::make_synthetic_source(4, 512));
  const auto trace = synthetic(4, 512, 4, 8000, 13, AccessPattern::kSkewed);
  Mp5Simulator dynamic(prog, mp5_options(4, 13));
  Mp5Simulator fixed(prog, no_d2_options(4, 13));
  const auto r_dynamic = dynamic.run(trace);
  const auto r_static = fixed.run(trace);
  EXPECT_GT(r_dynamic.remap_moves, 0u);
  EXPECT_EQ(r_static.remap_moves, 0u);
  EXPECT_GE(r_dynamic.normalized_throughput(),
            r_static.normalized_throughput());
}

TEST(SimBehavior, IdealAtLeastAsGoodAsMp5) {
  const auto prog = compile_mp5(apps::make_synthetic_source(4, 128));
  const auto trace = synthetic(4, 128, 4, 6000, 17, AccessPattern::kSkewed);
  Mp5Simulator real(prog, mp5_options(4, 17));
  Mp5Simulator ideal(prog, ideal_options(4, 17));
  const double t_real = real.run(trace).normalized_throughput();
  const double t_ideal = ideal.run(trace).normalized_throughput();
  EXPECT_GE(t_ideal, t_real - 0.02);
}

TEST(SimBehavior, BoundedFifosDropUnderOverload) {
  // A scalar register at line rate on 4 pipelines is 4x oversubscribed;
  // with bounded FIFOs, phantoms and then data packets must drop (§3.4).
  const auto prog = compile_mp5(apps::packet_counter_source());
  Rng rng(19);
  const auto trace = trace_from_fields(random_fields(3000, 1, 4, rng), 4);
  SimOptions opts = mp5_options(4, 19);
  opts.fifo_capacity = 8;
  Mp5Simulator sim(prog, opts);
  const auto result = sim.run(trace);
  EXPECT_GT(result.dropped_phantom, 0u);
  EXPECT_GT(result.dropped_data, 0u);
  EXPECT_EQ(result.dropped_data + result.egressed, result.offered);
  EXPECT_LT(result.egressed, result.offered);
}

TEST(SimBehavior, NoDropsWithUnboundedFifos) {
  const auto prog = compile_mp5(apps::packet_counter_source());
  Rng rng(23);
  const auto trace = trace_from_fields(random_fields(2000, 1, 4, rng), 4);
  Mp5Simulator sim(prog, mp5_options(4, 23));
  const auto result = sim.run(trace);
  EXPECT_EQ(result.dropped_phantom, 0u);
  EXPECT_EQ(result.dropped_data, 0u);
  EXPECT_EQ(result.egressed, result.offered);
}

TEST(SimBehavior, ConservativePhantomsCostWastedCycles) {
  const auto prog = compile_mp5(apps::stateful_predicate_source());
  Rng rng(29);
  const auto trace = trace_from_fields(random_fields(3000, 3, 64, rng), 4);
  Mp5Simulator sim(prog, mp5_options(4, 29));
  const auto result = sim.run(trace);
  // About half the packets have a false predicate -> cancelled phantoms.
  EXPECT_GT(result.wasted_cycles, trace.size() / 5);
}

TEST(SimBehavior, SteeringHappensAcrossPipelines) {
  const auto prog = compile_mp5(apps::make_synthetic_source(4, 256));
  const auto trace = synthetic(4, 256, 4, 2000, 31);
  Mp5Simulator sim(prog, mp5_options(4, 31));
  const auto result = sim.run(trace);
  EXPECT_GT(result.steers, trace.size()); // multiple crossings per packet
}

TEST(SimBehavior, FlowOrderStagePreventsReordering) {
  // WFQ packets within a flow all touch the same state, but stateless
  // packets of other programs can overtake; construct a program where
  // packets alternate stateful/stateless within a flow and check the
  // dummy final stage restores order.
  const std::string src = R"(
    struct Packet { int flowid; int kind; int v; };
    int acc[64] = {0};
    void f(struct Packet p) {
      if (p.kind == 1) {
        acc[p.flowid % 64] = acc[p.flowid % 64] + p.v;
      }
    }
  )";
  Rng rng(37);
  auto fields = random_fields(4000, 3, 64, rng);
  for (std::size_t i = 0; i < fields.size(); ++i) {
    fields[i][0] = static_cast<Value>(i % 8); // 8 flows
    fields[i][1] = (i / 8) % 2;               // alternate stateful/stateless
  }
  auto trace = trace_from_fields(fields, 4);
  for (auto& item : trace) item.flow = static_cast<std::uint64_t>(item.fields[0]);

  SimOptions opts = mp5_options(4, 37);
  opts.track_flow_reordering = true;

  const auto plain = compile_mp5(src);
  Mp5Simulator sim_plain(plain, opts);
  const auto r_plain = sim_plain.run(trace);

  TransformOptions topts;
  topts.add_flow_order_stage = true;
  topts.flow_fields = {"flowid"};
  const auto ordered = compile_mp5(src, topts);
  Mp5Simulator sim_ordered(ordered, opts);
  const auto r_ordered = sim_ordered.run(trace);

  EXPECT_GT(r_plain.reordered_flow_packets, 0u);
  EXPECT_EQ(r_ordered.reordered_flow_packets, 0u);
}


TEST(SimBehavior, StarvationGuardDropsStatelessForAgedStateful) {
  // Half the packets are stateless and would indefinitely starve queued
  // stateful packets at an overloaded stage; the guard drops them instead.
  const std::string src = R"(
    struct Packet { int kind; int v; };
    int counter = 0;
    void f(struct Packet p) {
      if (p.kind == 1) {
        counter = counter + 1;
        p.v = counter;
      }
    }
  )";
  const auto prog = compile_mp5(src);
  Rng rng(43);
  auto fields = random_fields(6000, 2, 4, rng);
  for (auto& f : fields) {
    // Random mix so the stateless share is spread over every spray lane
    // (a deterministic i%2 pattern would alias with the round-robin spray).
    f[0] = rng.chance(0.5) ? 1 : 0;
  }
  const auto trace = trace_from_fields(fields, 4);

  SimOptions guarded = mp5_options(4, 43);
  guarded.starvation_threshold = 50;
  Mp5Simulator sim(prog, guarded);
  const auto result = sim.run(trace);
  EXPECT_GT(result.dropped_starved, 0u);
  EXPECT_EQ(result.dropped_data, 0u); // stateful packets were never dropped
  EXPECT_EQ(result.egressed + result.dropped_starved, result.offered);

  SimOptions unguarded = mp5_options(4, 43);
  Mp5Simulator sim2(prog, unguarded);
  const auto baseline = sim2.run(trace);
  EXPECT_EQ(baseline.dropped_starved, 0u);
}

TEST(SimBehavior, EcnMarksPacketsAtCongestedStages) {
  const auto prog = compile_mp5(apps::packet_counter_source());
  Rng rng(47);
  const auto trace = trace_from_fields(random_fields(3000, 1, 4, rng), 4);
  SimOptions opts = mp5_options(4, 47);
  opts.ecn_threshold = 16;
  Mp5Simulator sim(prog, opts);
  const auto result = sim.run(trace); // 4x overload on a scalar register
  EXPECT_GT(result.ecn_marked, result.offered / 2);

  // An uncongested run marks nothing.
  const auto light = compile_mp5(apps::make_synthetic_source(1, 4096));
  SyntheticConfig config;
  config.stateful_stages = 1;
  config.reg_size = 4096;
  config.pipelines = 4;
  config.packets = 3000;
  config.load = 0.5;
  Mp5Simulator sim2(light, opts);
  const auto calm = sim2.run(make_synthetic_trace(config));
  EXPECT_EQ(calm.ecn_marked, 0u);
}

TEST(SimBehavior, DeterministicAcrossRuns) {
  const auto prog = compile_mp5(apps::make_synthetic_source(4, 64));
  const auto trace = synthetic(4, 64, 4, 2000, 51, AccessPattern::kSkewed);
  SimOptions opts = mp5_options(4, 51);
  opts.record_egress = true;
  Mp5Simulator a(prog, opts), b(prog, opts);
  const auto ra = a.run(trace);
  const auto rb = b.run(trace);
  EXPECT_EQ(ra.cycles_run, rb.cycles_run);
  EXPECT_EQ(ra.steers, rb.steers);
  EXPECT_EQ(ra.final_registers, rb.final_registers);
  ASSERT_EQ(ra.egress.size(), rb.egress.size());
  for (std::size_t i = 0; i < ra.egress.size(); ++i) {
    EXPECT_EQ(ra.egress[i].egress_cycle, rb.egress[i].egress_cycle);
  }
}

TEST(SimBehavior, DropsBreakEquivalenceAsSection351Describes) {
  // §3.5.1: with bounded FIFOs and inadmissible input, lost packets stop
  // updating downstream state, so equivalence to the lossless single
  // pipeline is (correctly) violated.
  const auto prog = compile_mp5(apps::sequencer_example_source());
  Rng rng(53);
  const auto trace = trace_from_fields(random_fields(3000, 1, 4, rng), 4);
  SimOptions opts = mp5_options(4, 53);
  opts.fifo_capacity = 8;
  opts.record_egress = true;
  Mp5Simulator sim(prog, opts);
  const auto result = sim.run(trace);
  ASSERT_GT(result.dropped_data, 0u);
  const auto reference = run_reference(prog, trace);
  const auto report = check_equivalence(prog.pvsm, reference, result);
  EXPECT_FALSE(report.equivalent());
  // The counter missed exactly the dropped packets.
  EXPECT_EQ(result.final_registers[0][0],
            static_cast<Value>(result.egressed));
}

TEST(SimBehavior, ArrivalTieBrokenByPort) {
  // Two packets arriving in the same instant: the smaller port id enters
  // (and is sequenced) first (§2.2.1).
  const auto prog = compile_mp5(apps::sequencer_example_source());
  Trace trace;
  TraceItem a;
  a.arrival_time = 0.0;
  a.port = 9;
  a.fields = {0};
  TraceItem b = a;
  b.port = 2;
  trace = {a, b};
  sort_by_arrival(trace);
  SimOptions opts = mp5_options(2, 1);
  opts.record_egress = true;
  Mp5Simulator sim(prog, opts);
  const auto result = sim.run(trace);
  ASSERT_EQ(result.egress.size(), 2u);
  // seq 0 (= first processed, stamp 1) must be the port-2 packet.
  EXPECT_EQ(result.egress[0].seq, 0u);
  const auto reference = run_reference(prog, trace);
  EXPECT_TRUE(check_equivalence(prog.pvsm, reference, result).equivalent());
}

TEST(SimBehavior, ThroughputMetricSanity) {
  SimResult r;
  r.offered = 1000;
  r.egressed = 1000;
  r.first_arrival = 0;
  r.last_arrival = 249; // 4 pkts/cycle
  r.last_egress = 499;  // drained at 2 pkts/cycle
  EXPECT_NEAR(r.input_rate(), 4.0, 0.1);
  EXPECT_NEAR(r.normalized_throughput(), 0.5, 0.01);
  r.last_egress = 251;
  EXPECT_GT(r.normalized_throughput(), 0.98);
}

} // namespace
} // namespace mp5::test
