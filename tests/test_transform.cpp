#include <gtest/gtest.h>

#include "apps/programs.hpp"
#include "common/error.hpp"
#include "domino/compiler.hpp"
#include "mp5/transform.hpp"

namespace mp5 {
namespace {

Mp5Program transform_src(const std::string& src,
                         const TransformOptions& topts = {}) {
  return transform(domino::compile(src, banzai::MachineSpec{}, 1).pvsm, topts);
}

TEST(Transform, ResolvableIndexAndGuard) {
  const auto prog = transform_src(R"(
    struct Packet { int key; int on; };
    int r[16] = {0};
    void f(struct Packet p) {
      if (p.on == 1) { r[p.key % 16] = r[p.key % 16] + 1; }
    }
  )");
  ASSERT_EQ(prog.accesses.size(), 1u);
  const auto& acc = prog.accesses[0];
  EXPECT_TRUE(acc.index_resolvable);
  EXPECT_NE(acc.guard, ir::kNoSlot);
  EXPECT_TRUE(acc.guard_resolvable);
  EXPECT_TRUE(prog.shardable[acc.reg]);
  EXPECT_EQ(prog.conservative_accesses(), 0u);
  // The resolver must compute both the index (% computation) and guard.
  EXPECT_GE(prog.resolver.size(), 2u);
}

TEST(Transform, StatefulGuardBecomesConservative) {
  const auto prog = transform_src(apps::stateful_predicate_source());
  EXPECT_EQ(prog.conservative_accesses(), 1u);
  bool found = false;
  for (const auto& acc : prog.accesses) {
    if (acc.guard != ir::kNoSlot && !acc.guard_resolvable) {
      found = true;
      EXPECT_TRUE(acc.index_resolvable);
      EXPECT_GT(acc.guard_known_after_stage, 0u);
      EXPECT_LT(acc.guard_known_after_stage, acc.stage);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Transform, StatefulIndexPinsArray) {
  const auto prog = transform_src(apps::stateful_index_source());
  EXPECT_EQ(prog.pinned_registers(), 1u);
  bool found = false;
  for (const auto& acc : prog.accesses) {
    if (!acc.index_resolvable) {
      found = true;
      EXPECT_FALSE(prog.shardable[acc.reg]);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Transform, AccessesSortedByStageWithArShift) {
  const auto prog = transform_src(apps::make_synthetic_source(4, 8));
  ASSERT_EQ(prog.accesses.size(), 4u);
  for (std::size_t i = 0; i < prog.accesses.size(); ++i) {
    EXPECT_GE(prog.accesses[i].stage, 1u); // stage 0 is the AR stage
    if (i > 0) {
      EXPECT_GT(prog.accesses[i].stage, prog.accesses[i - 1].stage);
    }
  }
  EXPECT_EQ(prog.num_stages, prog.pvsm.stages.size() + 1);
}

TEST(Transform, ResolverIsPure) {
  const auto prog = transform_src(apps::wfq_app().source);
  for (const auto& instr : prog.resolver) {
    EXPECT_NE(instr.op, ir::TacOp::kRegRead);
    EXPECT_NE(instr.op, ir::TacOp::kRegWrite);
  }
}

TEST(Transform, UnserializedCoStagedArraysArePinned) {
  banzai::MachineSpec machine;
  machine.max_stages = 3; // forces the unserialized schedule (AR reserved)
  const auto compiled = domino::compile(R"(
    struct Packet { int a; int b; };
    int x[8] = {0};
    int y[8] = {0};
    void f(struct Packet p) {
      x[p.a % 8] = x[p.a % 8] + 1;
      y[p.b % 8] = y[p.b % 8] + 1;
      p.a = p.a + 1;
    }
  )",
                                        machine, /*reserve_stages=*/1);
  ASSERT_FALSE(compiled.serialized);
  const auto prog = transform(compiled.pvsm);
  EXPECT_EQ(prog.pinned_registers(), 2u);
}

TEST(Transform, ExclusivePairStaysShardable) {
  const auto prog = transform_src(R"(
    struct Packet { int a; int v; };
    int x[8] = {0};
    int y[8] = {0};
    void f(struct Packet p) {
      if (p.a == 1) { p.v = x[p.a % 8]; } else { p.v = y[p.v % 8]; }
    }
  )");
  EXPECT_EQ(prog.pinned_registers(), 0u);
  // Both accesses resolvable-guarded: exactly one planned at runtime.
  ASSERT_EQ(prog.accesses.size(), 2u);
  EXPECT_EQ(prog.accesses[0].stage, prog.accesses[1].stage);
}

TEST(Transform, FlowOrderStageAppended) {
  TransformOptions topts;
  topts.add_flow_order_stage = true;
  topts.flow_fields = {"sport", "dport"};
  topts.flow_order_reg_size = 256;
  const auto prog = transform_src(apps::wfq_app().source, topts);
  ASSERT_TRUE(prog.has_flow_order);
  EXPECT_EQ(prog.pvsm.registers.back().name, "$flow_order");
  EXPECT_EQ(prog.pvsm.registers.back().size, 256u);
  const auto& last = prog.accesses.back();
  EXPECT_EQ(last.reg, prog.flow_order_reg);
  EXPECT_EQ(last.stage, prog.num_stages - 1);
  EXPECT_TRUE(last.index_resolvable);
}

TEST(Transform, FlowOrderWithoutFieldsRejected) {
  TransformOptions topts;
  topts.add_flow_order_stage = true;
  EXPECT_THROW(transform_src(apps::wfq_app().source, topts), ConfigError);
}

} // namespace
} // namespace mp5
