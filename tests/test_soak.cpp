// Soak subsystem (ISSUE 6): rolling verification semantics, its
// checkpointability, and the end-to-end run_soak driver including
// resume-from-checkpoint bit-identity and the flat-RSS ceiling.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "apps/programs.hpp"
#include "common/error.hpp"
#include "common/serialize.hpp"
#include "metrics/equivalence.hpp"
#include "metrics/sim_result.hpp"
#include "mp5/checkpoint.hpp"
#include "mp5/simulator.hpp"
#include "soak/rolling_verify.hpp"
#include "soak/soak_runner.hpp"
#include "trace/trace_source.hpp"
#include "test_util.hpp"

namespace mp5 {
namespace {

Mp5Program soak_program() {
  return test::compile_mp5(apps::make_synthetic_source(3, 64));
}

Trace soak_trace(const Mp5Program& prog, std::size_t packets,
                 std::uint64_t seed) {
  Rng rng(seed);
  return test::trace_from_fields(
      test::random_fields(packets, prog.pvsm.num_slots(), 64, rng), 4);
}

std::unique_ptr<soak::RollingVerifier> make_verifier(
    const Mp5Program& prog, const Trace& trace,
    soak::RollingVerifyOptions opts = {}) {
  return std::make_unique<soak::RollingVerifier>(
      prog.pvsm, std::make_unique<VectorTraceSource>(trace), opts);
}

/// Feed the i-th reference egress (correct headers) as an egress record.
void feed_reference_egress(soak::RollingVerifier& v, SeqNo seq,
                           const std::vector<Value>& headers) {
  EgressRecord rec;
  rec.seq = seq;
  rec.headers = headers;
  v.on_egress(std::move(rec));
}

TEST(RollingVerifier, AgreesWithBatchChecker) {
  const Mp5Program prog = soak_program();
  const Trace trace = soak_trace(prog, 300, 5);

  auto verifier = make_verifier(prog, trace);
  SimOptions opts;
  opts.paranoid_checks = true;
  opts.egress_sink = [&](EgressRecord&& rec) {
    verifier->on_egress(std::move(rec));
  };
  opts.fault_drop_sink = [&](SeqNo seq, bool touched) {
    verifier->on_fault_drop(seq, touched);
  };
  Mp5Simulator sim(prog, opts);
  const SimResult result = sim.run(trace);
  const EquivalenceReport rolling =
      verifier->finish(result.offered, result.final_registers);
  EXPECT_TRUE(rolling.equivalent()) << rolling.first_difference;
  EXPECT_EQ(verifier->verified(), trace.size());
  EXPECT_FALSE(verifier->truncated());

  const EquivalenceReport batch =
      test::run_and_check(prog, trace, SimOptions{});
  EXPECT_EQ(rolling.equivalent(), batch.equivalent());
}

TEST(RollingVerifier, FlagsDuplicateEgress) {
  const Mp5Program prog = soak_program();
  const Trace trace = soak_trace(prog, 10, 6);
  const auto ref = test::run_reference(prog, trace);

  auto verifier = make_verifier(prog, trace);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    feed_reference_egress(*verifier, i, ref.egress_headers[i]);
  }
  feed_reference_egress(*verifier, 0, ref.egress_headers[0]); // again
  const EquivalenceReport report =
      verifier->finish(trace.size(), ref.final_registers);
  EXPECT_FALSE(report.packets_equal);
  EXPECT_NE(report.first_difference.find("egressed 2 times"),
            std::string::npos)
      << report.first_difference;
}

TEST(RollingVerifier, FlagsWrongHeaders) {
  const Mp5Program prog = soak_program();
  const Trace trace = soak_trace(prog, 10, 7);
  const auto ref = test::run_reference(prog, trace);

  auto verifier = make_verifier(prog, trace);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    std::vector<Value> headers = ref.egress_headers[i];
    if (i == 4) headers[0] += 1; // corrupt one declared field
    feed_reference_egress(*verifier, i, headers);
  }
  const EquivalenceReport report =
      verifier->finish(trace.size(), ref.final_registers);
  EXPECT_FALSE(report.packets_equal);
  EXPECT_EQ(report.packet_mismatches, 1u);
}

TEST(RollingVerifier, UntouchedDropSkipsReference) {
  const Mp5Program prog = soak_program();
  const Trace trace = soak_trace(prog, 12, 8);
  // A drop with no state effects means the reference never sees the
  // packet: the correct downstream headers come from a reference run over
  // the trace minus the dropped packet.
  const Trace rest(trace.begin() + 1, trace.end());
  const auto ref = test::run_reference(prog, rest);

  auto verifier = make_verifier(prog, trace);
  verifier->on_fault_drop(0, /*state_touched=*/false);
  for (std::size_t i = 0; i < rest.size(); ++i) {
    feed_reference_egress(*verifier, i + 1, ref.egress_headers[i]);
  }
  const EquivalenceReport report =
      verifier->finish(trace.size(), ref.final_registers);
  EXPECT_TRUE(report.equivalent()) << report.first_difference;
  EXPECT_FALSE(verifier->truncated());
  EXPECT_EQ(verifier->verified(), rest.size());
}

TEST(RollingVerifier, StateTouchedDropTruncates) {
  const Mp5Program prog = soak_program();
  const Trace trace = soak_trace(prog, 12, 9);
  const auto ref = test::run_reference(prog, trace);

  auto verifier = make_verifier(prog, trace);
  feed_reference_egress(*verifier, 0, ref.egress_headers[0]);
  verifier->on_fault_drop(1, /*state_touched=*/true);
  EXPECT_TRUE(verifier->truncated());
  // Everything after the truncation point is ignored, not accumulated.
  feed_reference_egress(*verifier, 2, ref.egress_headers[2]);
  const EquivalenceReport report =
      verifier->finish(trace.size(), ref.final_registers);
  EXPECT_EQ(verifier->verified(), 1u);
  EXPECT_NE(report.first_difference.find("truncated at seq 1"),
            std::string::npos)
      << report.first_difference;
}

TEST(RollingVerifier, FinishFlagsNeverEgressed) {
  const Mp5Program prog = soak_program();
  const Trace trace = soak_trace(prog, 5, 10);
  auto verifier = make_verifier(prog, trace);
  const EquivalenceReport report = verifier->finish(trace.size(), {});
  EXPECT_FALSE(report.packets_equal);
  EXPECT_EQ(report.packet_mismatches, trace.size());
}

TEST(RollingVerifier, WindowOverflowThrows) {
  const Mp5Program prog = soak_program();
  const Trace trace = soak_trace(prog, 10, 11);
  soak::RollingVerifyOptions opts;
  opts.max_window = 2;
  auto verifier = make_verifier(prog, trace, opts);
  EgressRecord rec;
  rec.seq = 2; // seq 0 and 1 still unresolved: 3 pending > cap 2
  EXPECT_THROW(verifier->on_egress(std::move(rec)), Error);
}

TEST(RollingVerifier, SaveLoadRoundTrip) {
  const Mp5Program prog = soak_program();
  const Trace trace = soak_trace(prog, 30, 12);
  const auto ref = test::run_reference(prog, trace);

  auto full = make_verifier(prog, trace);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    feed_reference_egress(*full, i, ref.egress_headers[i]);
  }
  const EquivalenceReport uninterrupted =
      full->finish(trace.size(), ref.final_registers);
  ASSERT_TRUE(uninterrupted.equivalent());

  auto first_half = make_verifier(prog, trace);
  for (std::size_t i = 0; i < 10; ++i) {
    feed_reference_egress(*first_half, i, ref.egress_headers[i]);
  }
  ByteWriter w;
  first_half->save(w);
  const std::string state = w.take();

  auto restored = make_verifier(prog, trace);
  ByteReader r(state);
  restored->load(r);
  r.expect_done();
  EXPECT_EQ(restored->verified(), 10u);
  for (std::size_t i = 10; i < trace.size(); ++i) {
    feed_reference_egress(*restored, i, ref.egress_headers[i]);
  }
  const EquivalenceReport resumed =
      restored->finish(trace.size(), ref.final_registers);
  EXPECT_TRUE(resumed.equivalent()) << resumed.first_difference;
  EXPECT_EQ(restored->verified(), trace.size());

  // load() refuses a verifier that already consumed records.
  auto used = make_verifier(prog, trace);
  feed_reference_egress(*used, 0, ref.egress_headers[0]);
  ByteReader r2(state);
  EXPECT_THROW(used->load(r2), Error);
}

// -- run_soak ---------------------------------------------------------------

soak::SoakOptions synthetic_soak(const Mp5Program& prog,
                                 std::uint64_t packets) {
  soak::SoakOptions opts;
  opts.synthetic.packets = packets;
  opts.synthetic.pipelines = 4;
  opts.synthetic.field_count =
      static_cast<std::uint32_t>(prog.pvsm.num_slots());
  opts.synthetic.field_bound = 64;
  opts.synthetic.seed = 3;
  opts.sim.paranoid_checks = true;
  return opts;
}

TEST(RunSoak, CleanRunVerifies) {
  const Mp5Program prog = soak_program();
  const soak::SoakOptions opts = synthetic_soak(prog, 5000);
  const soak::SoakReport report = soak::run_soak(prog, opts);
  EXPECT_TRUE(report.verify_ran);
  EXPECT_TRUE(report.verified) << report.equivalence.first_difference;
  EXPECT_FALSE(report.truncated);
  EXPECT_EQ(report.verified_packets, 5000u);
  EXPECT_EQ(report.checkpoints_written, 0u);
  EXPECT_FALSE(report.resumed);
}

TEST(RunSoak, CheckpointThenResumeMatchesUninterrupted) {
  const Mp5Program prog = soak_program();
  const std::string path = testing::TempDir() + "soak_resume.ckpt";

  const soak::SoakReport baseline =
      soak::run_soak(prog, synthetic_soak(prog, 4000));
  ASSERT_TRUE(baseline.verified);

  soak::SoakOptions copts = synthetic_soak(prog, 4000);
  copts.checkpoint_interval = 200;
  copts.checkpoint_path = path;
  const soak::SoakReport checkpointed = soak::run_soak(prog, copts);
  EXPECT_GE(checkpointed.checkpoints_written, 2u);
  EXPECT_TRUE(checkpointed.verified);
  std::string why;
  ASSERT_TRUE(same_results(baseline.result, checkpointed.result, &why))
      << "checkpointing run diverged: " << why;

  // The file on disk holds the *last* checkpoint; resuming from it must
  // finish with the identical SimResult and a verified report.
  soak::SoakOptions ropts = copts;
  ropts.resume = true;
  const soak::SoakReport resumed = soak::run_soak(prog, ropts);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_GT(resumed.resumed_from_cycle, 0u);
  EXPECT_TRUE(resumed.verified) << resumed.equivalence.first_difference;
  EXPECT_TRUE(same_results(baseline.result, resumed.result, &why))
      << "resumed run diverged: " << why;
}

TEST(RunSoak, RejectsBadOptionsAndCorruptCheckpoints) {
  const Mp5Program prog = soak_program();

  soak::SoakOptions no_path = synthetic_soak(prog, 100);
  no_path.checkpoint_interval = 50;
  EXPECT_THROW(soak::run_soak(prog, no_path), ConfigError);

  soak::SoakOptions resume_no_path = synthetic_soak(prog, 100);
  resume_no_path.resume = true;
  EXPECT_THROW(soak::run_soak(prog, resume_no_path), ConfigError);

  const std::string garbage = testing::TempDir() + "garbage.ckpt";
  {
    std::string junk(200, 'x');
    write_checkpoint_file(garbage, junk);
  }
  soak::SoakOptions from_garbage = synthetic_soak(prog, 100);
  from_garbage.checkpoint_path = garbage;
  from_garbage.resume = true;
  EXPECT_THROW(soak::run_soak(prog, from_garbage), Error);
}

TEST(RunSoak, ResumeWithVerifyNeedsVerifierFrame) {
  const Mp5Program prog = soak_program();
  const std::string path = testing::TempDir() + "soak_noverify.ckpt";

  // Checkpoint without verification: the file carries only the simulator
  // frame.
  soak::SoakOptions copts = synthetic_soak(prog, 2000);
  copts.verify = false;
  copts.checkpoint_interval = 150;
  copts.checkpoint_path = path;
  const soak::SoakReport report = soak::run_soak(prog, copts);
  ASSERT_GE(report.checkpoints_written, 1u);
  EXPECT_FALSE(report.verify_ran);

  soak::SoakOptions ropts = copts;
  ropts.resume = true;
  ropts.verify = true;
  EXPECT_THROW(soak::run_soak(prog, ropts), Error);

  // Resuming with verification off accepts the single-frame file.
  soak::SoakOptions ok = copts;
  ok.resume = true;
  const soak::SoakReport resumed = soak::run_soak(prog, ok);
  EXPECT_TRUE(resumed.resumed);
  std::string why;
  EXPECT_TRUE(same_results(report.result, resumed.result, &why)) << why;
}

TEST(RunSoak, EnforcesRssCeiling) {
  const Mp5Program prog = soak_program();
  soak::SoakOptions opts = synthetic_soak(prog, 2000);
  opts.checkpoint_interval = 100;
  opts.checkpoint_path = testing::TempDir() + "soak_rss.ckpt";
  opts.rss_limit_kib = 1; // any real process exceeds 1 KiB
  try {
    soak::run_soak(prog, opts);
    FAIL() << "expected the RSS ceiling to trip";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("RSS ceiling"), std::string::npos)
        << e.what();
  }
}

} // namespace
} // namespace mp5
