#include <gtest/gtest.h>

#include "apps/programs.hpp"
#include "banzai/single_pipeline.hpp"
#include "domino/compiler.hpp"

namespace mp5 {
namespace {

ir::Pvsm compile_src(const std::string& src) {
  return domino::compile(src).pvsm;
}

TEST(Reference, CounterCountsPackets) {
  const auto pvsm = compile_src(apps::packet_counter_source());
  banzai::ReferenceSwitch sw(pvsm);
  for (int i = 0; i < 5; ++i) sw.process(std::vector<Value>(pvsm.num_slots()));
  EXPECT_EQ(sw.registers()[0][0], 5);
}

TEST(Reference, SequencerStampsMonotonically) {
  const auto pvsm = compile_src(apps::sequencer_example_source());
  banzai::ReferenceSwitch sw(pvsm);
  const auto stamp = static_cast<std::size_t>(pvsm.slot_of("stamp"));
  for (int i = 1; i <= 3; ++i) {
    const auto out = sw.process(std::vector<Value>(pvsm.num_slots()));
    EXPECT_EQ(out[stamp], i);
  }
}

TEST(Reference, Figure3SinglePipelineNarrative) {
  // Packets A..D (mux=1) multiply reg3[2] by val=reg1[1]=4; packet E
  // (mux=0) adds val=reg2[3]=7. Starting from reg3[2]=0:
  // 0*4, *4, *4, *4 = 0, then +7 => 7.
  const auto pvsm = compile_src(apps::figure3_source());
  banzai::ReferenceSwitch sw(pvsm);
  auto mk = [&](Value h1, Value h2, Value h3, Value mux) {
    std::vector<Value> headers(pvsm.num_slots(), 0);
    headers[static_cast<std::size_t>(pvsm.slot_of("h1"))] = h1;
    headers[static_cast<std::size_t>(pvsm.slot_of("h2"))] = h2;
    headers[static_cast<std::size_t>(pvsm.slot_of("h3"))] = h3;
    headers[static_cast<std::size_t>(pvsm.slot_of("mux"))] = mux;
    return headers;
  };
  for (int i = 0; i < 4; ++i) {
    const auto out = sw.process(mk(1, 1, 2, 1));
    EXPECT_EQ(out[static_cast<std::size_t>(pvsm.slot_of("val"))], 4);
  }
  const auto out = sw.process(mk(1, 3, 2, 0));
  EXPECT_EQ(out[static_cast<std::size_t>(pvsm.slot_of("val"))], 7);
  EXPECT_EQ(sw.registers()[2][2], 7); // reg3[2]
}

TEST(Reference, AccessLogRecordsArrivalOrderPerState) {
  const auto pvsm = compile_src(R"(
    struct Packet { int key; };
    int r[4] = {0};
    void f(struct Packet p) { r[p.key % 4] = r[p.key % 4] + 1; }
  )");
  banzai::ReferenceSwitch sw(pvsm);
  const auto key_slot = static_cast<std::size_t>(pvsm.slot_of("key"));
  for (const Value key : {0, 1, 0, 1, 0}) {
    std::vector<Value> headers(pvsm.num_slots(), 0);
    headers[key_slot] = key;
    sw.process(std::move(headers));
  }
  const auto& log = sw.accesses();
  EXPECT_EQ(log.order.at(banzai::AccessLog::key(0, 0)),
            (std::vector<SeqNo>{0, 2, 4}));
  EXPECT_EQ(log.order.at(banzai::AccessLog::key(0, 1)),
            (std::vector<SeqNo>{1, 3}));
}

TEST(Reference, GuardedAccessesOnlyLoggedWhenTaken) {
  const auto pvsm = compile_src(R"(
    struct Packet { int x; };
    int r = 0;
    void f(struct Packet p) { if (p.x > 0) { r = r + 1; } }
  )");
  banzai::ReferenceSwitch sw(pvsm);
  const auto x_slot = static_cast<std::size_t>(pvsm.slot_of("x"));
  for (const Value x : {1, 0, 1}) {
    std::vector<Value> headers(pvsm.num_slots(), 0);
    headers[x_slot] = x;
    sw.process(std::move(headers));
  }
  EXPECT_EQ(sw.registers()[0][0], 2);
  EXPECT_EQ(sw.accesses().order.at(banzai::AccessLog::key(0, 0)),
            (std::vector<SeqNo>{0, 2}));
}

TEST(Reference, BroadcastInitializerFillsArray) {
  const auto pvsm = compile_src(R"(
    struct Packet { int x; };
    int r[4] = {9};
    void f(struct Packet p) { p.x = r[0]; }
  )");
  banzai::ReferenceSwitch sw(pvsm);
  EXPECT_EQ(pvsm.initial_registers()[0], (std::vector<Value>{9, 9, 9, 9}));
}

TEST(Reference, MultiElementInitializerIsPositional) {
  const auto pvsm = compile_src(R"(
    struct Packet { int x; };
    int r[4] = {1, 2};
    void f(struct Packet p) { p.x = r[0]; }
  )");
  EXPECT_EQ(pvsm.initial_registers()[0], (std::vector<Value>{1, 2, 0, 0}));
}

TEST(Reference, DivisionByZeroIsTotal) {
  const auto pvsm = compile_src(R"(
    struct Packet { int x; int y; };
    void f(struct Packet p) { p.x = p.x / p.y; p.y = 7 % p.y; }
  )");
  banzai::ReferenceSwitch sw(pvsm);
  std::vector<Value> headers(pvsm.num_slots(), 0);
  headers[0] = 5; // x
  headers[1] = 0; // y
  const auto out = sw.process(std::move(headers));
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 0);
}


TEST(Reference, FieldSwapThroughTemp) {
  // Regression: egress write-back is a parallel assignment; a swap via a
  // temp field must not let one write-back observe the other's result.
  const auto pvsm = compile_src(R"(
    struct Packet { int a; int b; int t; };
    void f(struct Packet p) {
      p.t = p.a;
      p.a = p.b;
      p.b = p.t;
    }
  )");
  banzai::ReferenceSwitch sw(pvsm);
  std::vector<Value> headers(pvsm.num_slots(), 0);
  headers[static_cast<std::size_t>(pvsm.slot_of("a"))] = 19;
  headers[static_cast<std::size_t>(pvsm.slot_of("b"))] = 12;
  const auto out = sw.process(std::move(headers));
  EXPECT_EQ(out[static_cast<std::size_t>(pvsm.slot_of("a"))], 12);
  EXPECT_EQ(out[static_cast<std::size_t>(pvsm.slot_of("b"))], 19);
}

TEST(Reference, FieldAliasReadsOriginalValue) {
  // Regression (found by the differential fuzzer): p.b = p.a followed by a
  // later write to p.a must leave p.b with the original value.
  const auto pvsm = compile_src(R"(
    struct Packet { int a; int b; };
    void f(struct Packet p) {
      p.b = p.a;
      p.a = 12;
    }
  )");
  banzai::ReferenceSwitch sw(pvsm);
  std::vector<Value> headers(pvsm.num_slots(), 0);
  headers[static_cast<std::size_t>(pvsm.slot_of("a"))] = 19;
  const auto out = sw.process(std::move(headers));
  EXPECT_EQ(out[static_cast<std::size_t>(pvsm.slot_of("a"))], 12);
  EXPECT_EQ(out[static_cast<std::size_t>(pvsm.slot_of("b"))], 19);
}

} // namespace
} // namespace mp5
