#include <gtest/gtest.h>

#include <map>

#include "common/error.hpp"
#include "trace/workloads.hpp"

namespace mp5 {
namespace {

TEST(Trace, SortBreaksTiesByPort) {
  Trace trace;
  TraceItem a;
  a.arrival_time = 1.0;
  a.port = 5;
  TraceItem b;
  b.arrival_time = 1.0;
  b.port = 2;
  TraceItem c;
  c.arrival_time = 0.5;
  c.port = 9;
  trace = {a, b, c};
  sort_by_arrival(trace);
  EXPECT_EQ(trace[0].port, 9u);
  EXPECT_EQ(trace[1].port, 2u);
  EXPECT_EQ(trace[2].port, 5u);
}

TEST(Trace, LineRateClockScalesWithPipelinesAndSize) {
  LineRateClock clock(4, 1.0);
  EXPECT_DOUBLE_EQ(clock.next(64), 0.0);
  EXPECT_DOUBLE_EQ(clock.next(64), 0.25);  // 4 min-size packets per cycle
  LineRateClock clock2(4, 1.0);
  (void)clock2.next(128);
  EXPECT_DOUBLE_EQ(clock2.next(64), 0.5);  // 128 B takes twice as long
}

TEST(Synthetic, GeneratesRequestedShape) {
  SyntheticConfig config;
  config.stateful_stages = 3;
  config.reg_size = 64;
  config.packets = 1000;
  const auto trace = make_synthetic_trace(config);
  ASSERT_EQ(trace.size(), 1000u);
  for (const auto& item : trace) {
    ASSERT_EQ(item.fields.size(), 4u); // h0..h2 + v
    for (int s = 0; s < 3; ++s) {
      EXPECT_GE(item.fields[s], 0);
      EXPECT_LT(item.fields[s], 64);
    }
  }
  // Line rate: last arrival ~ packets / pipelines cycles.
  EXPECT_NEAR(trace.back().arrival_time, 1000.0 / 4, 2.0);
}

TEST(Synthetic, DeterministicPerSeed) {
  SyntheticConfig config;
  config.packets = 100;
  config.seed = 42;
  const auto a = make_synthetic_trace(config);
  const auto b = make_synthetic_trace(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fields, b[i].fields);
  }
  config.seed = 43;
  const auto c = make_synthetic_trace(config);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].fields != c[i].fields) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Synthetic, SkewedPatternConcentratesAccesses) {
  SyntheticConfig config;
  config.stateful_stages = 1;
  config.reg_size = 100;
  config.packets = 20000;
  config.pattern = AccessPattern::kSkewed;
  const auto trace = make_synthetic_trace(config);
  std::map<Value, int> counts;
  for (const auto& item : trace) ++counts[item.fields[0]];
  std::vector<int> sorted;
  for (const auto& [k, v] : counts) sorted.push_back(v);
  std::sort(sorted.rbegin(), sorted.rend());
  long hot = 0;
  for (std::size_t i = 0; i < 30 && i < sorted.size(); ++i) hot += sorted[i];
  EXPECT_GT(static_cast<double>(hot) / trace.size(), 0.90);
}

TEST(WebSearch, FlowSizesAreHeavyTailed) {
  Rng rng(1);
  std::vector<double> sizes;
  for (int i = 0; i < 20000; ++i) {
    sizes.push_back(static_cast<double>(web_search_flow_bytes(rng)));
  }
  std::sort(sizes.begin(), sizes.end());
  const double median = sizes[sizes.size() / 2];
  const double p99 = sizes[static_cast<std::size_t>(sizes.size() * 0.99)];
  EXPECT_LT(median, 200.0 * 1024);      // most flows are small
  EXPECT_GT(p99, 5.0 * 1024 * 1024);    // the tail is multi-megabyte
}

TEST(FlowTrace, BimodalSizesAndFlowAffinity) {
  FlowWorkloadConfig config;
  config.packets = 5000;
  config.active_flows = 16;
  const auto trace = make_flow_trace(
      config, [](const FlowPacketInfo& info) {
        return std::vector<Value>{static_cast<Value>(info.flow)};
      });
  ASSERT_EQ(trace.size(), 5000u);
  int small = 0, large = 0, other = 0;
  std::map<std::uint64_t, std::uint32_t> flow_port;
  for (const auto& item : trace) {
    if (item.size_bytes == 200) ++small;
    else if (item.size_bytes == 1400) ++large;
    else ++other; // final runt packet of a flow
    auto [it, inserted] = flow_port.try_emplace(item.flow, item.port);
    EXPECT_EQ(it->second, item.port); // a flow keeps its ingress port
  }
  EXPECT_GT(small, 1000);
  EXPECT_GT(large, 1000);
  EXPECT_LT(other, 1500);
  EXPECT_GT(flow_port.size(), 16u); // flows complete and are replaced
}

TEST(FlowTrace, ArrivalTimesNondecreasing) {
  FlowWorkloadConfig config;
  config.packets = 2000;
  const auto trace = make_flow_trace(config, [](const FlowPacketInfo&) {
    return std::vector<Value>{0};
  });
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].arrival_time, trace[i - 1].arrival_time);
  }
}

TEST(FlowTrace, RequiresFiller) {
  FlowWorkloadConfig config;
  EXPECT_THROW(make_flow_trace(config, nullptr), ConfigError);
}

} // namespace
} // namespace mp5
