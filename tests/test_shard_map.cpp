#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "mp5/shard_map.hpp"
#include "packet/packet.hpp"

namespace mp5 {
namespace {

std::vector<ir::RegisterSpec> one_reg(std::size_t size) {
  ir::RegisterSpec spec;
  spec.name = "r";
  spec.size = size;
  return {spec};
}

TEST(ShardMap, InitialPlacementSpreadsAcrossPipelines) {
  ShardedState state(one_reg(1024), {true}, 4, ShardingPolicy::kDynamic,
                     Rng(1));
  std::vector<int> per_pipe(4, 0);
  for (RegIndex i = 0; i < 1024; ++i) ++per_pipe[state.pipeline_of(0, i)];
  for (const int n : per_pipe) EXPECT_NEAR(n, 256, 80);
}

TEST(ShardMap, SinglePipelinePolicyPinsEverything) {
  ShardedState state(one_reg(64), {true}, 4,
                     ShardingPolicy::kSinglePipeline, Rng(1));
  for (RegIndex i = 0; i < 64; ++i) EXPECT_EQ(state.pipeline_of(0, i), 0u);
}

TEST(ShardMap, UnshardableArrayAlwaysPinned) {
  ShardedState state(one_reg(64), {false}, 4, ShardingPolicy::kDynamic,
                     Rng(1));
  for (RegIndex i = 0; i < 64; ++i) EXPECT_EQ(state.pipeline_of(0, i), 0u);
  EXPECT_EQ(state.pipeline_of(0, kUnresolvedIndex), 0u);
}

TEST(ShardMap, Figure6HeuristicMovesHotLoadTowardBalance) {
  // One hot index (100 accesses/period) and one medium index (40): the
  // Figure 6 rule moves the medium one off the hot pipeline (its counter
  // is below C = (cmax - cmin) / 2) and then reaches a stable split.
  ShardedState state(one_reg(8), {true}, 2, ShardingPolicy::kDynamic, Rng(3));
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 100; ++i) {
      state.note_resolved(0, 0);
      state.note_completed(0, 0);
      if (i % 5 < 2) {
        state.note_resolved(0, 1);
        state.note_completed(0, 1);
      }
    }
    state.rebalance();
  }
  EXPECT_NE(state.pipeline_of(0, 0), state.pipeline_of(0, 1));
}

TEST(ShardMap, Figure6RuleNeverOvershoots) {
  // Two equally hot indexes co-located: both counters exceed C, so the
  // heuristic refuses to move them (moving would just swap the imbalance)
  // — §3.5.2 acknowledges the heuristic is not optimal.
  ShardedState state(one_reg(2), {true}, 2, ShardingPolicy::kDynamic, Rng(1));
  const auto p0 = state.pipeline_of(0, 0);
  const bool colocated = p0 == state.pipeline_of(0, 1);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 100; ++i) {
      for (const RegIndex idx : {0u, 1u}) {
        state.note_resolved(0, idx);
        state.note_completed(0, idx);
      }
    }
    state.rebalance();
  }
  if (colocated) {
    EXPECT_EQ(state.pipeline_of(0, 0), state.pipeline_of(0, 1));
  } else {
    EXPECT_NE(state.pipeline_of(0, 0), state.pipeline_of(0, 1));
  }
}

TEST(ShardMap, RebalanceRespectsInFlightGuard) {
  ShardedState state(one_reg(4), {true}, 2, ShardingPolicy::kDynamic, Rng(5));
  // Make every index in-flight: nothing may move.
  for (RegIndex i = 0; i < 4; ++i) state.note_resolved(0, i);
  std::vector<PipelineId> before;
  for (RegIndex i = 0; i < 4; ++i) before.push_back(state.pipeline_of(0, i));
  for (int round = 0; round < 10; ++round) {
    for (RegIndex i = 0; i < 4; ++i) {
      state.note_resolved(0, i); // keep counters hot
      state.note_completed(0, i);
    }
    state.rebalance();
  }
  for (RegIndex i = 0; i < 4; ++i) {
    EXPECT_EQ(state.pipeline_of(0, i), before[i]) << "index " << i;
  }
}

TEST(ShardMap, StaticPolicyNeverMoves) {
  ShardedState state(one_reg(32), {true}, 4, ShardingPolicy::kStaticRandom,
                     Rng(7));
  std::vector<PipelineId> before;
  for (RegIndex i = 0; i < 32; ++i) before.push_back(state.pipeline_of(0, i));
  for (int round = 0; round < 20; ++round) {
    for (RegIndex i = 0; i < 32; ++i) {
      state.note_resolved(0, i % 3); // heavy skew
      state.note_completed(0, i % 3);
    }
    EXPECT_EQ(state.rebalance(), 0u);
  }
  for (RegIndex i = 0; i < 32; ++i) {
    EXPECT_EQ(state.pipeline_of(0, i), before[i]);
  }
}

TEST(ShardMap, LptProducesBalancedLoads) {
  ShardedState state(one_reg(64), {true}, 4, ShardingPolicy::kIdealLpt,
                     Rng(9));
  // Skewed access counts: index i gets ~ (64 - i) accesses.
  for (RegIndex i = 0; i < 64; ++i) {
    for (RegIndex n = 0; n < 64 - i; ++n) {
      state.note_resolved(0, i);
      state.note_completed(0, i);
    }
  }
  // Re-apply the same pattern and rebalance, then inspect load balance.
  state.rebalance();
  for (RegIndex i = 0; i < 64; ++i) {
    for (RegIndex n = 0; n < 64 - i; ++n) {
      state.note_resolved(0, i);
      state.note_completed(0, i);
    }
  }
  const auto load = state.pipeline_load(0);
  const auto total = std::accumulate(load.begin(), load.end(), 0ull);
  for (const auto l : load) {
    EXPECT_NEAR(static_cast<double>(l), total / 4.0, total * 0.05);
  }
}

TEST(ShardMap, InFlightUnderflowDetected) {
  ShardedState state(one_reg(4), {true}, 2, ShardingPolicy::kDynamic, Rng(11));
  EXPECT_THROW(state.note_completed(0, 1), Error);
}

TEST(ShardMap, UnderflowErrorNamesRegAndIndex) {
  ShardedState state(one_reg(8), {true}, 2, ShardingPolicy::kDynamic, Rng(11));
  try {
    state.note_completed(0, 3);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("reg 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("index 3"), std::string::npos) << msg;
  }
}

TEST(ShardMap, FailPipelineInFlightErrorNamesRegAndIndex) {
  ShardedState state(one_reg(8), {true}, 2, ShardingPolicy::kDynamic, Rng(21));
  // Leave exactly one index in flight, then fail its lane.
  const RegIndex stuck = 5;
  state.note_resolved(0, stuck);
  try {
    state.fail_pipeline(state.pipeline_of(0, stuck));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("reg 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("index 5"), std::string::npos) << msg;
  }
}

// ---------------------------------------------------------------------------
// Incremental-vs-reference equivalence property suite.
//
// Two ShardedState instances seeded identically (so their initial random
// placements match) are driven through the same access/completion/fault
// sequence; one rebalances through the incremental O(touched) path, the
// other through the full-scan rebalance_reference(). Every window their
// shard maps, move counts, and per-lane loads must agree bit for bit.
// ---------------------------------------------------------------------------

std::vector<ir::RegisterSpec> mixed_regs(std::size_t size) {
  ir::RegisterSpec a, b, c;
  a.name = "a";
  a.size = size;
  b.name = "pinned";
  b.size = size / 2;
  c.name = "c";
  c.size = size;
  return {a, b, c};
}

void expect_identical_sharding(const ShardedState& inc,
                               const ShardedState& ref,
                               const std::vector<ir::RegisterSpec>& specs) {
  ASSERT_EQ(inc.total_moves(), ref.total_moves());
  for (RegId r = 0; r < specs.size(); ++r) {
    for (RegIndex i = 0; i < specs[r].size; ++i) {
      ASSERT_EQ(inc.pipeline_of(r, i), ref.pipeline_of(r, i))
          << "reg " << r << " index " << i;
    }
    ASSERT_EQ(inc.pipeline_load(r), ref.pipeline_load(r)) << "reg " << r;
  }
}

void run_equivalence(ShardingPolicy policy, std::uint32_t k,
                     std::uint64_t seed, bool with_faults) {
  const auto specs = mixed_regs(64);
  const std::vector<bool> shardable = {true, false, true};
  ShardedState inc(specs, shardable, k, policy, Rng(seed));
  ShardedState ref(specs, shardable, k, policy, Rng(seed));
  expect_identical_sharding(inc, ref, specs); // identical initial placement

  Rng ops(seed * 7919 + 17);
  std::vector<std::pair<RegId, RegIndex>> outstanding;
  PipelineId dead = k; // none
  for (int round = 0; round < 24; ++round) {
    const int accesses = 10 + static_cast<int>(ops.next_below(60));
    for (int n = 0; n < accesses; ++n) {
      const RegId r = static_cast<RegId>(ops.next_below(specs.size()));
      // Skewed working set: half the draws hammer a 4-index hot set so
      // the Figure 6 threshold and the cold-index fallback both trigger.
      const RegIndex i = static_cast<RegIndex>(
          ops.chance(0.5) ? ops.next_below(4)
                          : ops.next_below(specs[r].size));
      inc.note_resolved(r, i);
      ref.note_resolved(r, i);
      if (ops.chance(0.7)) {
        inc.note_completed(r, i);
        ref.note_completed(r, i);
      } else {
        outstanding.emplace_back(r, i); // stays in flight across the remap
      }
    }
    if (with_faults && round == 8) {
      // Fault plans require a drained lane: complete everything first.
      for (const auto& [r, i] : outstanding) {
        inc.note_completed(r, i);
        ref.note_completed(r, i);
      }
      outstanding.clear();
      dead = static_cast<PipelineId>(seed % k);
      ASSERT_EQ(inc.fail_pipeline(dead), ref.fail_pipeline(dead));
      expect_identical_sharding(inc, ref, specs);
    }
    if (with_faults && round == 16 && dead < k) {
      inc.recover_pipeline(dead);
      ref.recover_pipeline(dead);
      dead = k;
    }
    ASSERT_EQ(inc.window_dirty(), ref.window_dirty());
    ASSERT_EQ(inc.rebalance(), ref.rebalance_reference());
    expect_identical_sharding(inc, ref, specs);
    // Drain roughly half the in-flight set each round; the rest keeps
    // exercising the in-flight move guard.
    std::vector<std::pair<RegId, RegIndex>> keep;
    for (const auto& [r, i] : outstanding) {
      if (ops.chance(0.5)) {
        inc.note_completed(r, i);
        ref.note_completed(r, i);
      } else {
        keep.emplace_back(r, i);
      }
    }
    outstanding.swap(keep);
  }
}

TEST(ShardMapEquivalence, IncrementalMatchesReferenceAcrossSeedsAndPolicies) {
  for (const ShardingPolicy policy :
       {ShardingPolicy::kDynamic, ShardingPolicy::kIdealLpt,
        ShardingPolicy::kStaticRandom, ShardingPolicy::kSinglePipeline}) {
    for (const std::uint32_t k : {1u, 2u, 4u, 8u}) {
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        SCOPED_TRACE("policy=" + std::to_string(static_cast<int>(policy)) +
                     " k=" + std::to_string(k) +
                     " seed=" + std::to_string(seed));
        run_equivalence(policy, k, seed, /*with_faults=*/false);
      }
    }
  }
}

TEST(ShardMapEquivalence, IncrementalMatchesReferenceUnderFaultPlans) {
  for (const ShardingPolicy policy :
       {ShardingPolicy::kDynamic, ShardingPolicy::kIdealLpt}) {
    for (const std::uint32_t k : {2u, 4u, 8u}) {
      for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        SCOPED_TRACE("policy=" + std::to_string(static_cast<int>(policy)) +
                     " k=" + std::to_string(k) +
                     " seed=" + std::to_string(seed));
        run_equivalence(policy, k, seed, /*with_faults=*/true);
      }
    }
  }
}

TEST(ShardMapEquivalence, ColdIndexFallbackMatchesReference) {
  // One super-hot index and nothing else touched: every touched candidate
  // on the hot lane is >= the threshold, so the Figure 6 scan settles on a
  // *cold* (untouched) index — the reference finds it by scanning the full
  // map, the incremental path via the hot lane's membership list.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto specs = one_reg(32);
    ShardedState inc(specs, {true}, 2, ShardingPolicy::kDynamic, Rng(seed));
    ShardedState ref(specs, {true}, 2, ShardingPolicy::kDynamic, Rng(seed));
    for (int round = 0; round < 4; ++round) {
      for (int n = 0; n < 100; ++n) {
        inc.note_resolved(0, 0);
        inc.note_completed(0, 0);
        ref.note_resolved(0, 0);
        ref.note_completed(0, 0);
      }
      const std::size_t moves = inc.rebalance();
      ASSERT_EQ(moves, ref.rebalance_reference()) << "seed " << seed;
      if (round == 0) {
        EXPECT_EQ(moves, 1u) << "seed " << seed;
      }
      expect_identical_sharding(inc, ref, specs);
    }
  }
}

TEST(ShardMap, WindowDirtyTracksObservableBoundaries) {
  ShardedState state(mixed_regs(64), {true, false, true}, 4,
                     ShardingPolicy::kDynamic, Rng(3));
  EXPECT_FALSE(state.window_dirty());
  // A touch on an unshardable register never dirties the window under the
  // dynamic policy: the rebalance neither moves nor resets it.
  state.note_resolved(1, 2);
  EXPECT_FALSE(state.window_dirty());
  state.note_completed(1, 2);
  state.note_resolved(0, 2);
  EXPECT_TRUE(state.window_dirty());
  EXPECT_EQ(state.window_touched(0), 1u);
  state.note_completed(0, 2);
  state.rebalance();
  EXPECT_FALSE(state.window_dirty());
  EXPECT_EQ(state.window_touched(0), 0u);
}

TEST(ShardMap, WindowDirtyAlwaysSetUnderStaticPolicies) {
  // Static policies reset *every* register's counters at the period, so
  // any touch makes the boundary observable.
  ShardedState state(mixed_regs(64), {true, false, true}, 4,
                     ShardingPolicy::kStaticRandom, Rng(3));
  state.note_resolved(1, 2);
  EXPECT_TRUE(state.window_dirty());
  state.note_completed(1, 2);
  state.rebalance();
  EXPECT_FALSE(state.window_dirty());
}

TEST(ShardMap, ReadsAndWritesHitFlatStorage) {
  auto specs = one_reg(4);
  specs[0].init = {5};
  ShardedState state(specs, {true}, 2, ShardingPolicy::kDynamic, Rng(13));
  EXPECT_EQ(state.read(0, 2), 5); // broadcast init
  state.write(0, 2, 42);
  EXPECT_EQ(state.read(0, 2), 42);
  EXPECT_EQ(state.storage()[0][2], 42);
}

} // namespace
} // namespace mp5
