#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "mp5/shard_map.hpp"
#include "packet/packet.hpp"

namespace mp5 {
namespace {

std::vector<ir::RegisterSpec> one_reg(std::size_t size) {
  ir::RegisterSpec spec;
  spec.name = "r";
  spec.size = size;
  return {spec};
}

TEST(ShardMap, InitialPlacementSpreadsAcrossPipelines) {
  ShardedState state(one_reg(1024), {true}, 4, ShardingPolicy::kDynamic,
                     Rng(1));
  std::vector<int> per_pipe(4, 0);
  for (RegIndex i = 0; i < 1024; ++i) ++per_pipe[state.pipeline_of(0, i)];
  for (const int n : per_pipe) EXPECT_NEAR(n, 256, 80);
}

TEST(ShardMap, SinglePipelinePolicyPinsEverything) {
  ShardedState state(one_reg(64), {true}, 4,
                     ShardingPolicy::kSinglePipeline, Rng(1));
  for (RegIndex i = 0; i < 64; ++i) EXPECT_EQ(state.pipeline_of(0, i), 0u);
}

TEST(ShardMap, UnshardableArrayAlwaysPinned) {
  ShardedState state(one_reg(64), {false}, 4, ShardingPolicy::kDynamic,
                     Rng(1));
  for (RegIndex i = 0; i < 64; ++i) EXPECT_EQ(state.pipeline_of(0, i), 0u);
  EXPECT_EQ(state.pipeline_of(0, kUnresolvedIndex), 0u);
}

TEST(ShardMap, Figure6HeuristicMovesHotLoadTowardBalance) {
  // One hot index (100 accesses/period) and one medium index (40): the
  // Figure 6 rule moves the medium one off the hot pipeline (its counter
  // is below C = (cmax - cmin) / 2) and then reaches a stable split.
  ShardedState state(one_reg(8), {true}, 2, ShardingPolicy::kDynamic, Rng(3));
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 100; ++i) {
      state.note_resolved(0, 0);
      state.note_completed(0, 0);
      if (i % 5 < 2) {
        state.note_resolved(0, 1);
        state.note_completed(0, 1);
      }
    }
    state.rebalance();
  }
  EXPECT_NE(state.pipeline_of(0, 0), state.pipeline_of(0, 1));
}

TEST(ShardMap, Figure6RuleNeverOvershoots) {
  // Two equally hot indexes co-located: both counters exceed C, so the
  // heuristic refuses to move them (moving would just swap the imbalance)
  // — §3.5.2 acknowledges the heuristic is not optimal.
  ShardedState state(one_reg(2), {true}, 2, ShardingPolicy::kDynamic, Rng(1));
  const auto p0 = state.pipeline_of(0, 0);
  const bool colocated = p0 == state.pipeline_of(0, 1);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 100; ++i) {
      for (const RegIndex idx : {0u, 1u}) {
        state.note_resolved(0, idx);
        state.note_completed(0, idx);
      }
    }
    state.rebalance();
  }
  if (colocated) {
    EXPECT_EQ(state.pipeline_of(0, 0), state.pipeline_of(0, 1));
  } else {
    EXPECT_NE(state.pipeline_of(0, 0), state.pipeline_of(0, 1));
  }
}

TEST(ShardMap, RebalanceRespectsInFlightGuard) {
  ShardedState state(one_reg(4), {true}, 2, ShardingPolicy::kDynamic, Rng(5));
  // Make every index in-flight: nothing may move.
  for (RegIndex i = 0; i < 4; ++i) state.note_resolved(0, i);
  std::vector<PipelineId> before;
  for (RegIndex i = 0; i < 4; ++i) before.push_back(state.pipeline_of(0, i));
  for (int round = 0; round < 10; ++round) {
    for (RegIndex i = 0; i < 4; ++i) {
      state.note_resolved(0, i); // keep counters hot
      state.note_completed(0, i);
    }
    state.rebalance();
  }
  for (RegIndex i = 0; i < 4; ++i) {
    EXPECT_EQ(state.pipeline_of(0, i), before[i]) << "index " << i;
  }
}

TEST(ShardMap, StaticPolicyNeverMoves) {
  ShardedState state(one_reg(32), {true}, 4, ShardingPolicy::kStaticRandom,
                     Rng(7));
  std::vector<PipelineId> before;
  for (RegIndex i = 0; i < 32; ++i) before.push_back(state.pipeline_of(0, i));
  for (int round = 0; round < 20; ++round) {
    for (RegIndex i = 0; i < 32; ++i) {
      state.note_resolved(0, i % 3); // heavy skew
      state.note_completed(0, i % 3);
    }
    EXPECT_EQ(state.rebalance(), 0u);
  }
  for (RegIndex i = 0; i < 32; ++i) {
    EXPECT_EQ(state.pipeline_of(0, i), before[i]);
  }
}

TEST(ShardMap, LptProducesBalancedLoads) {
  ShardedState state(one_reg(64), {true}, 4, ShardingPolicy::kIdealLpt,
                     Rng(9));
  // Skewed access counts: index i gets ~ (64 - i) accesses.
  for (RegIndex i = 0; i < 64; ++i) {
    for (RegIndex n = 0; n < 64 - i; ++n) {
      state.note_resolved(0, i);
      state.note_completed(0, i);
    }
  }
  // Re-apply the same pattern and rebalance, then inspect load balance.
  state.rebalance();
  for (RegIndex i = 0; i < 64; ++i) {
    for (RegIndex n = 0; n < 64 - i; ++n) {
      state.note_resolved(0, i);
      state.note_completed(0, i);
    }
  }
  const auto load = state.pipeline_load(0);
  const auto total = std::accumulate(load.begin(), load.end(), 0ull);
  for (const auto l : load) {
    EXPECT_NEAR(static_cast<double>(l), total / 4.0, total * 0.05);
  }
}

TEST(ShardMap, InFlightUnderflowDetected) {
  ShardedState state(one_reg(4), {true}, 2, ShardingPolicy::kDynamic, Rng(11));
  EXPECT_THROW(state.note_completed(0, 1), Error);
}

TEST(ShardMap, ReadsAndWritesHitFlatStorage) {
  auto specs = one_reg(4);
  specs[0].init = {5};
  ShardedState state(specs, {true}, 2, ShardingPolicy::kDynamic, Rng(13));
  EXPECT_EQ(state.read(0, 2), 5); // broadcast init
  state.write(0, 2, 42);
  EXPECT_EQ(state.read(0, 2), 42);
  EXPECT_EQ(state.storage()[0][2], 42);
}

} // namespace
} // namespace mp5
