// Coverage for the smaller public surfaces: IR printing, machine usage
// reports, the equivalence checker's negative paths, and timeline naming.
#include <gtest/gtest.h>

#include "apps/programs.hpp"
#include "baseline/presets.hpp"
#include "banzai/machine.hpp"
#include "banzai/single_pipeline.hpp"
#include "common/error.hpp"
#include "domino/compiler.hpp"
#include "metrics/equivalence.hpp"
#include "mp5/timeline.hpp"
#include "test_util.hpp"

namespace mp5::test {
namespace {

TEST(IrPrinting, CoversEveryInstructionForm) {
  const auto pvsm = domino::compile(R"(
    struct Packet { int a; int b; };
    int r[4] = {0};
    void f(struct Packet p) {
      p.b = hash2(p.a, 3) % 4;
      p.a = -p.a;
      p.b = p.a > 0 ? p.b : 0;
      if (p.a != 0) { r[p.b % 4] = r[p.b % 4] + 1; }
    }
  )").pvsm;
  const auto dump = ir::to_string(pvsm);
  EXPECT_NE(dump.find("hash("), std::string::npos);
  EXPECT_NE(dump.find("?"), std::string::npos);
  EXPECT_NE(dump.find("r["), std::string::npos);
  EXPECT_NE(dump.find("[if "), std::string::npos);
  EXPECT_NE(dump.find("guard"), std::string::npos);
}

TEST(MachineUsage, ReportsProgramFootprint) {
  const auto pvsm = domino::compile(apps::flowlet_app().source).pvsm;
  const auto u = banzai::usage(pvsm);
  EXPECT_GE(u.stages, 3u);
  EXPECT_GE(u.max_stateful_in_stage, 1u);
  EXPECT_GE(u.max_atom_ops, 2u);
  EXPECT_GE(banzai::template_rank(u.max_template),
            banzai::template_rank(banzai::AtomTemplate::kReadWrite));
  // Usage must be consistent with the fit check.
  banzai::MachineSpec exact;
  exact.max_stages = u.stages;
  exact.max_atoms_per_stage = u.max_atoms_in_stage;
  exact.max_stateful_atoms_per_stage = u.max_stateful_in_stage;
  exact.max_atom_ops = u.max_atom_ops;
  exact.max_register_entries_per_stage = u.max_entries_in_stage;
  exact.max_atom_template = u.max_template;
  EXPECT_TRUE(exact.fits(pvsm));
  exact.max_stages = u.stages - 1;
  EXPECT_FALSE(exact.fits(pvsm));
}

TEST(EquivalenceChecker, DetectsRegisterMismatch) {
  const auto prog = compile_mp5(apps::packet_counter_source());
  Rng rng(3);
  const auto trace = trace_from_fields(random_fields(50, 1, 4, rng), 2);
  const auto reference = run_reference(prog, trace);
  SimOptions opts = mp5_options(2, 3);
  opts.record_egress = true;
  Mp5Simulator sim(prog, opts);
  auto result = sim.run(trace);
  result.final_registers[0][0] += 1; // corrupt
  const auto report = check_equivalence(prog.pvsm, reference, result);
  EXPECT_FALSE(report.registers_equal);
  EXPECT_TRUE(report.packets_equal);
  EXPECT_NE(report.first_difference.find("count"), std::string::npos);
}

TEST(EquivalenceChecker, DetectsPacketMismatchAndMissingPackets) {
  const auto prog = compile_mp5(apps::sequencer_example_source());
  Rng rng(5);
  const auto trace = trace_from_fields(random_fields(50, 1, 4, rng), 2);
  const auto reference = run_reference(prog, trace);
  SimOptions opts = mp5_options(2, 5);
  opts.record_egress = true;
  Mp5Simulator sim(prog, opts);
  auto result = sim.run(trace);
  result.egress[7].headers[static_cast<std::size_t>(
      prog.pvsm.slot_of("stamp"))] ^= 1;
  auto corrupted = check_equivalence(prog.pvsm, reference, result);
  EXPECT_FALSE(corrupted.packets_equal);
  EXPECT_EQ(corrupted.packet_mismatches, 1u);

  result.egress.erase(result.egress.begin() + 3);
  auto missing = check_equivalence(prog.pvsm, reference, result);
  EXPECT_FALSE(missing.packets_equal);
  EXPECT_NE(missing.first_difference.find("egress count"), std::string::npos);
}

TEST(EquivalenceChecker, DetectsDuplicateEgress) {
  const auto prog = compile_mp5(apps::sequencer_example_source());
  Rng rng(7);
  const auto trace = trace_from_fields(random_fields(30, 1, 4, rng), 2);
  const auto reference = run_reference(prog, trace);
  SimOptions opts = mp5_options(2, 7);
  opts.record_egress = true;
  Mp5Simulator sim(prog, opts);
  auto result = sim.run(trace);
  // A packet leaving the switch twice used to be silently collapsed by
  // the seq-keyed map; it must break packet-state equivalence.
  result.egress.push_back(result.egress[4]);
  const auto report = check_equivalence(prog.pvsm, reference, result);
  EXPECT_FALSE(report.packets_equal);
  EXPECT_GE(report.packet_mismatches, 1u);
  EXPECT_NE(report.first_difference.find("egress count"), std::string::npos);
}

TEST(EquivalenceChecker, DetectsOutOfRangeSeq) {
  const auto prog = compile_mp5(apps::sequencer_example_source());
  Rng rng(9);
  const auto trace = trace_from_fields(random_fields(30, 1, 4, rng), 2);
  const auto reference = run_reference(prog, trace);
  SimOptions opts = mp5_options(2, 9);
  opts.record_egress = true;
  Mp5Simulator sim(prog, opts);
  auto result = sim.run(trace);
  // A seq beyond the reference stream used to index out of bounds; now it
  // is reported as a divergence.
  result.egress[2].seq = 1000000;
  const auto report = check_equivalence(prog.pvsm, reference, result);
  EXPECT_FALSE(report.packets_equal);
  EXPECT_GE(report.packet_mismatches, 1u);
  EXPECT_NE(report.first_difference.find("out-of-range seq"),
            std::string::npos);
}

TEST(Timeline, KindNamesAreStable) {
  EXPECT_STREQ(to_string(TimelineEvent::Kind::kAdmit), "admit");
  EXPECT_STREQ(to_string(TimelineEvent::Kind::kPhantomPush), "phantom");
  EXPECT_STREQ(to_string(TimelineEvent::Kind::kPopWasted), "wasted");
  EXPECT_STREQ(to_string(TimelineEvent::Kind::kEgress), "egress");
}

TEST(AtomTemplateNames, AreStable) {
  using banzai::AtomTemplate;
  EXPECT_STREQ(banzai::to_string(AtomTemplate::kRaw), "RAW");
  EXPECT_STREQ(banzai::to_string(AtomTemplate::kPairs), "Pairs");
}

TEST(Compile, ReserveStagesLeavesRoomForAr) {
  banzai::MachineSpec machine;
  machine.max_stages = 4;
  // Program needing exactly 4 stages fits without reservation...
  const std::string src = R"(
    struct Packet { int a; int b; };
    int x[4] = {0};
    int y[4] = {0};
    void f(struct Packet p) {
      p.b = x[p.a % 4];
      y[p.b % 4] = y[p.b % 4] + 1;
    }
  )";
  EXPECT_NO_THROW(domino::compile(src, machine, 0));
  // ...but not once a stage is reserved for address resolution (the
  // dependent chain cannot shrink below 4 stages even unserialized).
  EXPECT_THROW(domino::compile(src, machine, 1), ResourceError);
  machine.max_stages = 5;
  EXPECT_NO_THROW(domino::compile(src, machine, 1));
  EXPECT_THROW(domino::compile(src, machine, 5), ResourceError);
}

TEST(SimOptions, ZeroPipelinesRejected) {
  const auto prog = compile_mp5(apps::packet_counter_source());
  SimOptions opts;
  opts.pipelines = 0;
  EXPECT_THROW(Mp5Simulator(prog, opts), ConfigError);
}

} // namespace
} // namespace mp5::test
