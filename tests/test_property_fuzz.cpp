// Model-based and fuzz tests:
//   * RingFifo against a std::deque reference model;
//   * StageFifo (lane mode) against a simple sorted-list model of the
//     paper's push/insert/pop semantics;
//   * lexer/parser robustness on mutated program text (must either parse
//     or throw a library error — never crash);
//   * arithmetic edge cases shared by both interpreter and compiled code.
#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "common/error.hpp"
#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "domino/compiler.hpp"
#include "domino/parser.hpp"
#include "mp5/stage_fifo.hpp"
#include "fuzz/program_gen.hpp"

namespace mp5 {
namespace {

TEST(RingFifoFuzz, MatchesDequeModel) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    Rng rng(seed);
    const std::size_t capacity = rng.next_below(2) ? 0 : 4; // unbounded/bounded
    RingFifo<int> fifo(capacity);
    std::deque<std::pair<std::uint64_t, int>> model; // (vidx, value)
    std::map<std::uint64_t, int> by_vidx;
    int next_value = 0;

    for (int op = 0; op < 20000; ++op) {
      switch (rng.next_below(4)) {
        case 0: { // push
          const auto vidx = fifo.push(next_value);
          const bool model_full = capacity != 0 && model.size() == capacity;
          ASSERT_EQ(vidx.has_value(), !model_full);
          if (vidx) {
            model.emplace_back(*vidx, next_value);
            by_vidx[*vidx] = next_value;
          }
          ++next_value;
          break;
        }
        case 1: { // pop
          if (model.empty()) {
            EXPECT_TRUE(fifo.empty());
            break;
          }
          ASSERT_EQ(fifo.front(), model.front().second);
          ASSERT_EQ(fifo.front_vidx(), model.front().first);
          by_vidx.erase(model.front().first);
          fifo.pop_front();
          model.pop_front();
          break;
        }
        case 2: { // replace a random live entry
          if (model.empty()) break;
          const auto pick = rng.next_below(model.size());
          const auto vidx = model[pick].first;
          fifo.replace(vidx, next_value);
          model[pick].second = next_value;
          by_vidx[vidx] = next_value;
          ++next_value;
          break;
        }
        default: { // random access checks
          ASSERT_EQ(fifo.size(), model.size());
          if (!model.empty()) {
            const auto pick = rng.next_below(model.size());
            ASSERT_TRUE(fifo.contains(model[pick].first));
            ASSERT_EQ(fifo.at(model[pick].first), model[pick].second);
          }
          break;
        }
      }
    }
  }
}

/// Reference model of the logical stage FIFO: entries in push order per
/// lane; pop takes the smallest-seq lane head.
struct FifoModel {
  struct Entry {
    SeqNo seq;
    int state; // 0 phantom, 1 data, 2 cancelled
  };
  std::vector<std::deque<Entry>> lanes;
  std::size_t capacity;

  Entry* find(SeqNo seq) {
    for (auto& lane : lanes) {
      for (auto& e : lane) {
        if (e.seq == seq) return &e;
      }
    }
    return nullptr;
  }
};

TEST(StageFifoFuzz, MatchesSortedModel) {
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    Rng rng(seed);
    const std::uint32_t lanes = 3;
    const std::size_t capacity = rng.next_below(2) ? 0 : 5;
    StageFifo fifo(lanes, capacity, /*ideal=*/false);
    FifoModel model;
    model.lanes.resize(lanes);
    model.capacity = capacity;
    SeqNo next_seq = 0;
    std::vector<SeqNo> live_phantoms;

    for (int op = 0; op < 20000; ++op) {
      switch (rng.next_below(5)) {
        case 0:
        case 1: { // push phantom
          const auto lane = static_cast<PipelineId>(rng.next_below(lanes));
          const bool ok = fifo.push_phantom(next_seq, 0, 0, lane);
          const bool model_ok =
              capacity == 0 || model.lanes[lane].size() < capacity;
          ASSERT_EQ(ok, model_ok);
          if (ok) {
            model.lanes[lane].push_back({next_seq, 0});
            live_phantoms.push_back(next_seq);
          }
          ++next_seq;
          break;
        }
        case 2: { // insert data for a random live phantom
          if (live_phantoms.empty()) break;
          const auto pick = rng.next_below(live_phantoms.size());
          const SeqNo seq = live_phantoms[pick];
          live_phantoms.erase(live_phantoms.begin() +
                              static_cast<std::ptrdiff_t>(pick));
          ASSERT_TRUE(fifo.insert_data(seq, static_cast<PacketRef>(seq)));
          model.find(seq)->state = 1;
          break;
        }
        case 3: { // cancel a random live phantom
          if (live_phantoms.empty()) break;
          const auto pick = rng.next_below(live_phantoms.size());
          const SeqNo seq = live_phantoms[pick];
          live_phantoms.erase(live_phantoms.begin() +
                              static_cast<std::ptrdiff_t>(pick));
          fifo.cancel(seq);
          model.find(seq)->state = 2;
          break;
        }
        default: { // pop
          const auto result = fifo.pop();
          // Model: smallest-seq lane head.
          std::deque<FifoModel::Entry>* best = nullptr;
          for (auto& lane : model.lanes) {
            if (lane.empty()) continue;
            if (best == nullptr || lane.front().seq < best->front().seq) {
              best = &lane;
            }
          }
          using Kind = StageFifo::PopResult::Kind;
          if (best == nullptr) {
            ASSERT_EQ(result.kind, Kind::kIdle);
          } else if (best->front().state == 0) {
            ASSERT_EQ(result.kind, Kind::kBlocked);
          } else if (best->front().state == 2) {
            ASSERT_EQ(result.kind, Kind::kWasted);
            best->pop_front();
          } else {
            ASSERT_EQ(result.kind, Kind::kData);
            ASSERT_EQ(result.ref, static_cast<PacketRef>(best->front().seq));
            best->pop_front();
          }
          break;
        }
      }
      ASSERT_EQ(fifo.size(), [&] {
        std::size_t n = 0;
        for (const auto& lane : model.lanes) n += lane.size();
        return n;
      }());
    }
  }
}

TEST(ParserFuzz, MutatedProgramsNeverCrash) {
  int parsed = 0, rejected = 0;
  for (std::uint64_t seed = 1; seed <= 150; ++seed) {
    fuzz::ProgramGen gen(seed);
    std::string source = gen.generate();
    Rng rng(seed * 31);
    // Mutate: delete, duplicate, or swap random characters.
    const int mutations = static_cast<int>(rng.next_below(8));
    for (int m = 0; m < mutations && !source.empty(); ++m) {
      const auto pos = rng.next_below(source.size());
      switch (rng.next_below(3)) {
        case 0: source.erase(pos, 1); break;
        case 1: source.insert(pos, 1, source[pos]); break;
        default: {
          const auto pos2 = rng.next_below(source.size());
          std::swap(source[pos], source[pos2]);
          break;
        }
      }
    }
    try {
      (void)domino::compile(source);
      ++parsed;
    } catch (const Error&) {
      ++rejected; // ParseError / SemanticError / ResourceError are all fine
    }
  }
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(Arithmetic, EdgeCasesAreTotalAndConsistent) {
  using ir::BinOp;
  EXPECT_EQ(ir::apply_bin(BinOp::kDiv, 5, 0), 0);
  EXPECT_EQ(ir::apply_bin(BinOp::kMod, 5, 0), 0);
  EXPECT_EQ(ir::apply_bin(BinOp::kShl, 1, 64), 1);   // shift masked to 0..63
  EXPECT_EQ(ir::apply_bin(BinOp::kShl, 1, 65), 2);
  EXPECT_EQ(ir::apply_bin(BinOp::kShr, -1, 1),
            static_cast<Value>(~0ull >> 1)); // logical shift
  // Wrap-around add/sub/mul are two's-complement, no UB.
  const Value big = std::numeric_limits<Value>::max();
  EXPECT_EQ(ir::apply_bin(BinOp::kAdd, big, 1),
            std::numeric_limits<Value>::min());
  EXPECT_EQ(ir::apply_un(ir::UnOp::kNeg, std::numeric_limits<Value>::min()),
            std::numeric_limits<Value>::min());
  EXPECT_EQ(ir::apply_bin(BinOp::kLAnd, 7, 0), 0);
  EXPECT_EQ(ir::apply_bin(BinOp::kLOr, 0, -3), 1);
}

} // namespace
} // namespace mp5
