// Replicated design variants (ISSUE 10): the SCR / relaxed-consistency
// simulators and the variant×knob validation sweep. Every MP5-only knob
// combined with a replicated variant must raise ConfigError naming both
// the variant and the knob — never run with silently wrong semantics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baseline/presets.hpp"
#include "baseline/replicated.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "metrics/equivalence.hpp"
#include "metrics/sim_result.hpp"
#include "mp5/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "test_util.hpp"

namespace mp5::test {
namespace {

/// Shared-state program whose output headers depend on reads of state
/// written by earlier packets — the access pattern where replicated
/// designs genuinely diverge from the single-pipeline reference.
constexpr char kDependent[] = R"(
  struct Packet { int a; int b; };
  int last = 0;
  void prog(struct Packet p) {
    p.b = last;
    last = p.a;
  }
)";

/// Array counter with a read-back: stresses index resolution and replay.
constexpr char kCounter[] = R"(
  struct Packet { int a; int b; };
  int tally[8] = {0};
  void prog(struct Packet p) {
    tally[p.a % 8] = tally[p.a % 8] + 1;
    p.b = tally[p.a % 8];
  }
)";

SimResult run_variant(const Mp5Program& prog, const Trace& trace,
                      SimOptions opts) {
  opts.record_egress = true;
  opts.paranoid_checks = true;
  if (opts.variant == DesignVariant::kScr) {
    return ScrSimulator(prog, opts).run(trace);
  }
  return RelaxedSimulator(prog, opts).run(trace);
}

EquivalenceReport check_variant(const Mp5Program& prog, const Trace& trace,
                                const SimOptions& opts) {
  const SimResult result = run_variant(prog, trace, opts);
  return check_equivalence(prog.pvsm, run_reference(prog, trace), result);
}

Trace dense_trace(const Mp5Program& prog, std::size_t packets,
                  std::uint32_t pipelines, double load = 1.0) {
  Rng rng(7);
  return trace_from_fields(
      random_fields(packets, prog.pvsm.num_slots(), 64, rng), pipelines,
      load);
}

// ---------------------------------------------------------------------------
// Variant×knob validation sweep (satellite 1): one table entry per
// MP5-only knob. Each must be rejected for BOTH replicated variants with
// a message naming the variant and the knob.
// ---------------------------------------------------------------------------

struct KnobCase {
  const char* knob; // must appear verbatim in the error message
  void (*set)(SimOptions&);
};

const std::vector<KnobCase>& mp5_only_knobs() {
  static telemetry::Telemetry telem;
  static const std::vector<KnobCase> cases = {
      {"threads", [](SimOptions& o) { o.threads = 4; }},
      {"engine", [](SimOptions& o) { o.engine = SimEngine::kEvent; }},
      {"sharding",
       [](SimOptions& o) { o.sharding = ShardingPolicy::kStaticRandom; }},
      {"reference_rebalance",
       [](SimOptions& o) { o.reference_rebalance = true; }},
      {"phantoms", [](SimOptions& o) { o.phantoms = false; }},
      {"realistic_phantom_channel",
       [](SimOptions& o) { o.realistic_phantom_channel = true; }},
      {"ideal_queues", [](SimOptions& o) { o.ideal_queues = true; }},
      {"naive_single_pipeline",
       [](SimOptions& o) { o.naive_single_pipeline = true; }},
      {"starvation_threshold",
       [](SimOptions& o) { o.starvation_threshold = 16; }},
      {"ecn_threshold", [](SimOptions& o) { o.ecn_threshold = 4; }},
      {"fifo_capacity", [](SimOptions& o) { o.fifo_capacity = 8; }},
      {"faults",
       [](SimOptions& o) {
         PipelineFault fault;
         fault.pipeline = 0;
         fault.fail_at = 10;
         o.faults.pipeline_faults.push_back(fault);
       }},
      {"telemetry", [](SimOptions& o) { o.telemetry = &telem; }},
      {"timeline",
       [](SimOptions& o) { o.timeline = [](const TimelineEvent&) {}; }},
      {"track_flow_reordering",
       [](SimOptions& o) { o.track_flow_reordering = true; }},
      {"egress_sink",
       [](SimOptions& o) { o.egress_sink = [](EgressRecord&&) {}; }},
      {"fault_drop_sink",
       [](SimOptions& o) { o.fault_drop_sink = [](SeqNo, bool) {}; }},
  };
  return cases;
}

TEST(VariantValidation, EveryMp5OnlyKnobRejectedNamingVariantAndKnob) {
  const Mp5Program prog = compile_mp5(kCounter);
  for (const DesignVariant variant :
       {DesignVariant::kScr, DesignVariant::kRelaxed}) {
    for (const KnobCase& c : mp5_only_knobs()) {
      SimOptions opts = variant == DesignVariant::kScr
                            ? scr_options(4, 1)
                            : relaxed_options(4, 1);
      c.set(opts);
      try {
        run_variant(prog, {}, opts);
        FAIL() << to_string(variant) << " accepted MP5-only knob " << c.knob;
      } catch (const ConfigError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find(std::string("variant '") + to_string(variant) +
                            "'"),
                  std::string::npos)
            << c.knob << ": message does not name the variant: " << what;
        EXPECT_NE(what.find(c.knob), std::string::npos)
            << "message does not name the knob: " << what;
      }
    }
  }
}

TEST(VariantValidation, StalenessBoundGatedPerVariant) {
  const Mp5Program prog = compile_mp5(kCounter);
  // relaxed requires a bound >= 1.
  SimOptions opts = relaxed_options(4, 1, /*staleness=*/0);
  EXPECT_THROW(run_variant(prog, {}, opts), ConfigError);
  // scr must not carry one.
  opts = scr_options(4, 1);
  opts.staleness_bound = 64;
  EXPECT_THROW(run_variant(prog, {}, opts), ConfigError);
  // And the MP5 family rejects the knob entirely.
  SimOptions mp5 = mp5_options(4, 1);
  mp5.staleness_bound = 8;
  EXPECT_THROW(Mp5Simulator(prog, mp5), ConfigError);
}

TEST(VariantValidation, SimulatorsRejectMismatchedVariants) {
  const Mp5Program prog = compile_mp5(kCounter);
  // Mp5Simulator refuses replicated-variant options…
  EXPECT_THROW(Mp5Simulator(prog, scr_options(4, 1)), ConfigError);
  EXPECT_THROW(Mp5Simulator(prog, relaxed_options(4, 1)), ConfigError);
  // …and each replicated wrapper refuses the other family's options.
  EXPECT_THROW(ScrSimulator(prog, relaxed_options(4, 1)), ConfigError);
  EXPECT_THROW(RelaxedSimulator(prog, scr_options(4, 1)), ConfigError);
  EXPECT_THROW(ScrSimulator(prog, mp5_options(4, 1)), ConfigError);
}

TEST(VariantValidation, GenericBoundsStillChecked) {
  const Mp5Program prog = compile_mp5(kCounter);
  SimOptions opts = scr_options(0, 1);
  EXPECT_THROW(run_variant(prog, {}, opts), ConfigError);
  opts = scr_options(4, 1);
  opts.threads = 0;
  EXPECT_THROW(run_variant(prog, {}, opts), ConfigError);
  opts = scr_options(4, 1);
  opts.checkpoint_interval = 100; // no sink
  EXPECT_THROW(run_variant(prog, {}, opts), ConfigError);
}

TEST(VariantValidation, StringRoundTrip) {
  for (const DesignVariant v : {DesignVariant::kMp5, DesignVariant::kScr,
                                DesignVariant::kRelaxed}) {
    EXPECT_EQ(variant_from_string(to_string(v)), v);
  }
  EXPECT_THROW(variant_from_string("eventual"), ConfigError);
}

// ---------------------------------------------------------------------------
// Behavior: where the replicated designs match the reference and where
// they are expected to diverge.
// ---------------------------------------------------------------------------

TEST(VariantBehavior, SinglePipelineIsAlwaysEquivalent) {
  // k = 1 has nothing to replicate: both variants degenerate to the
  // single-pipeline switch.
  for (const char* source : {kDependent, kCounter}) {
    const Mp5Program prog = compile_mp5(source);
    const Trace trace = dense_trace(prog, 300, 1);
    EXPECT_TRUE(check_variant(prog, trace, scr_options(1, 1)).equivalent());
    EXPECT_TRUE(
        check_variant(prog, trace, relaxed_options(1, 1, 16)).equivalent());
  }
}

TEST(VariantBehavior, SparseTrafficIsEquivalent) {
  // With inter-arrival gaps far above the replay delay every digest lands
  // before the next packet reads, so the replicas are always in sync.
  const Mp5Program prog = compile_mp5(kDependent);
  const Trace trace = dense_trace(prog, 200, 4, /*load=*/0.005);
  EXPECT_TRUE(check_variant(prog, trace, scr_options(4, 1)).equivalent());
  EXPECT_TRUE(
      check_variant(prog, trace, relaxed_options(4, 1, 8)).equivalent());
}

TEST(VariantBehavior, DenseReadDependentTrafficDivergesWhereMp5DoesNot) {
  // The tentpole's semantic point: at line rate a read on one replica
  // misses concurrent remote writes, so the variants diverge from the
  // reference — while MP5's D1-D4 machinery stays exactly equivalent.
  const Mp5Program prog = compile_mp5(kDependent);
  const Trace trace = dense_trace(prog, 400, 4);
  EXPECT_TRUE(run_and_check(prog, trace, mp5_options(4, 1)).equivalent());
  EXPECT_FALSE(check_variant(prog, trace, scr_options(4, 1)).equivalent());
  EXPECT_FALSE(
      check_variant(prog, trace, relaxed_options(4, 1, 64)).equivalent());
}

TEST(VariantBehavior, LosslessAndDeterministic) {
  const Mp5Program prog = compile_mp5(kCounter);
  const Trace trace = dense_trace(prog, 500, 4);
  for (const SimOptions& opts :
       {scr_options(4, 1), relaxed_options(4, 1, 32)}) {
    const SimResult a = run_variant(prog, trace, opts);
    const SimResult b = run_variant(prog, trace, opts);
    EXPECT_EQ(a.offered, trace.size());
    EXPECT_EQ(a.egressed, a.offered);
    std::string why;
    EXPECT_TRUE(same_results(a, b, &why)) << why;
  }
}

TEST(VariantBehavior, FastForwardIsBitIdentical) {
  // Bit-identity across the fast-forward knob, on a sparse trace where
  // the jump path actually engages.
  const Mp5Program prog = compile_mp5(kCounter);
  const Trace trace = dense_trace(prog, 120, 4, /*load=*/0.01);
  for (SimOptions opts : {scr_options(4, 1), relaxed_options(4, 1, 16)}) {
    opts.fast_forward = true;
    const SimResult fast = run_variant(prog, trace, opts);
    opts.fast_forward = false;
    const SimResult slow = run_variant(prog, trace, opts);
    std::string why;
    EXPECT_TRUE(same_results(fast, slow, &why)) << why;
    EXPECT_EQ(fast.cycles_run, slow.cycles_run);
  }
}

TEST(VariantBehavior, RelaxedStalenessBoundsDivergenceWindow) {
  // Δ = 1 applies buffered digests at every cycle boundary — the tightest
  // relaxed setting. It can still diverge (updates are deferred to the
  // boundary), but a huge Δ must diverge at least as much: on this
  // counter trace the Δ=1 run stays closer to the reference's final
  // state than Δ=4096.
  const Mp5Program prog = compile_mp5(kCounter);
  const Trace trace = dense_trace(prog, 300, 4);
  const auto reference = run_reference(prog, trace);
  auto mismatches = [&](const SimResult& r) {
    std::size_t count = 0;
    for (std::size_t reg = 0; reg < reference.final_registers.size(); ++reg) {
      for (std::size_t i = 0; i < reference.final_registers[reg].size();
           ++i) {
        count += reference.final_registers[reg][i] !=
                 r.final_registers[reg][i];
      }
    }
    return count;
  };
  const SimResult tight =
      run_variant(prog, trace, relaxed_options(4, 1, 1));
  const SimResult loose =
      run_variant(prog, trace, relaxed_options(4, 1, 4096));
  EXPECT_LE(mismatches(tight), mismatches(loose));
}

TEST(VariantBehavior, SteersCountDigestBroadcasts) {
  // Every stateful stage execution on a k>1 replicated switch emits one
  // digest; with k=1 there is no replication traffic at all.
  const Mp5Program prog = compile_mp5(kCounter);
  const Trace trace = dense_trace(prog, 100, 4);
  EXPECT_GT(run_variant(prog, trace, scr_options(4, 1)).steers, 0u);
  EXPECT_EQ(run_variant(prog, dense_trace(prog, 100, 1),
                        scr_options(1, 1))
                .steers,
            0u);
}

} // namespace
} // namespace mp5::test
