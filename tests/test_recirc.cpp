#include <gtest/gtest.h>

#include "apps/programs.hpp"
#include "baseline/recirc.hpp"
#include "baseline/presets.hpp"
#include "test_util.hpp"

namespace mp5::test {
namespace {

Trace synthetic(std::uint32_t stages, std::size_t reg_size, std::uint32_t k,
                std::uint64_t packets, std::uint64_t seed,
                AccessPattern pattern = AccessPattern::kUniform) {
  SyntheticConfig config;
  config.stateful_stages = stages;
  config.reg_size = reg_size;
  config.pipelines = k;
  config.packets = packets;
  config.seed = seed;
  config.pattern = pattern;
  return make_synthetic_trace(config);
}

TEST(Recirc, StatelessProgramNeedsNoRecirculation) {
  const auto prog = compile_mp5(apps::make_synthetic_source(0, 1));
  const auto trace = synthetic(0, 1, 4, 2000, 1);
  RecircOptions opts;
  RecircSimulator sim(prog, opts);
  const auto result = sim.run(trace);
  EXPECT_EQ(result.recirculations, 0u);
  EXPECT_EQ(result.egressed, trace.size());
  // Short run: the pipeline-fill drain tail costs a few percent.
  EXPECT_GT(result.normalized_throughput(), 0.95);
}

TEST(Recirc, RegisterStateConvergesDespiteOrder) {
  // Commutative updates (additions): final register state matches the
  // reference even though the order differs.
  const auto prog = compile_mp5(apps::make_synthetic_source(2, 32));
  const auto trace = synthetic(2, 32, 4, 1500, 3);
  RecircOptions opts;
  opts.ingress_capacity = 0; // lossless run: every update must land
  opts.record_egress = true;
  RecircSimulator sim(prog, opts);
  const auto result = sim.run(trace);
  EXPECT_EQ(result.egressed, trace.size());
  const auto reference = run_reference(prog, trace);
  EXPECT_EQ(result.final_registers[0], reference.final_registers[0]);
}

TEST(Recirc, ViolatesC1UnderContention) {
  const auto prog = compile_mp5(apps::make_synthetic_source(4, 64));
  const auto trace = synthetic(4, 64, 4, 4000, 5, AccessPattern::kSkewed);
  RecircOptions opts;
  RecircSimulator sim(prog, opts);
  const auto result = sim.run(trace);
  EXPECT_GT(result.c1_fraction(), 0.01);
}

TEST(Recirc, SequencerExampleBreaksPacketEquivalence) {
  // §2.3.1 Example 2: the stamped values diverge from arrival order on the
  // recirculating design (packets from far ports pay the recirculation
  // delay), while MP5 keeps them equal.
  const auto prog = compile_mp5(apps::sequencer_example_source());
  Rng rng(7);
  const auto trace = trace_from_fields(random_fields(2000, 1, 4, rng), 4);
  RecircOptions opts;
  opts.record_egress = true;
  RecircSimulator sim(prog, opts);
  const auto result = sim.run(trace);
  const auto reference = run_reference(prog, trace);
  const auto report = check_equivalence(prog.pvsm, reference, result);
  EXPECT_FALSE(report.equivalent());
}

TEST(Recirc, ThroughputPenaltyVersusMp5) {
  const auto prog = compile_mp5(apps::make_synthetic_source(4, 512));
  const auto trace = synthetic(4, 512, 4, 6000, 9);
  RecircOptions ropts;
  RecircSimulator recirc(prog, ropts);
  const auto r_recirc = recirc.run(trace);
  Mp5Simulator mp5(prog, mp5_options(4, 9));
  const auto r_mp5 = mp5.run(trace);
  EXPECT_GT(r_recirc.recirculations, 0u);
  EXPECT_LT(r_recirc.normalized_throughput(),
            r_mp5.normalized_throughput());
}

TEST(Recirc, MultipleStatesMeanMultiplePasses) {
  const auto prog = compile_mp5(apps::make_synthetic_source(6, 512));
  const auto trace = synthetic(6, 512, 8, 2000, 11);
  RecircOptions opts;
  opts.pipelines = 8;
  RecircSimulator sim(prog, opts);
  const auto result = sim.run(trace);
  // With 6 arrays randomly sharded over 8 pipelines, most packets need
  // several recirculations.
  EXPECT_GT(static_cast<double>(result.recirculations) /
                static_cast<double>(result.offered),
            1.5);
}

TEST(Recirc, ConservativeGuardHandledAcrossPasses) {
  const auto prog = compile_mp5(apps::stateful_predicate_source());
  Rng rng(13);
  const auto trace = trace_from_fields(random_fields(1000, 3, 64, rng), 4);
  RecircOptions opts;
  opts.ingress_capacity = 0; // lossless: the gate must count every packet
  opts.record_egress = true;
  RecircSimulator sim(prog, opts);
  const auto result = sim.run(trace);
  EXPECT_EQ(result.egressed, trace.size());
  // Register-state totals: gate counts every packet exactly once.
  Value total = 0;
  for (const Value v : result.final_registers[0]) total += v;
  EXPECT_EQ(total, static_cast<Value>(trace.size()));
}

} // namespace
} // namespace mp5::test
