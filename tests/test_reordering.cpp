#include <gtest/gtest.h>

#include "apps/programs.hpp"
#include "baseline/presets.hpp"
#include "metrics/reordering.hpp"
#include "test_util.hpp"

namespace mp5::test {
namespace {

EgressRecord rec(SeqNo seq, Cycle cycle, std::uint64_t flow = 0) {
  EgressRecord r;
  r.seq = seq;
  r.egress_cycle = cycle;
  r.flow = flow;
  return r;
}

TEST(Reordering, PerfectOrderScoresTauOne) {
  std::vector<EgressRecord> egress;
  for (SeqNo s = 0; s < 100; ++s) egress.push_back(rec(s, 10 + s));
  const auto report = analyze_reordering(std::move(egress));
  EXPECT_EQ(report.inversions, 0u);
  EXPECT_DOUBLE_EQ(report.kendall_tau, 1.0);
  EXPECT_EQ(report.max_displacement, 0u);
  EXPECT_EQ(report.intra_flow_reordered, 0u);
}

TEST(Reordering, FullReversalScoresTauMinusOne) {
  std::vector<EgressRecord> egress;
  for (SeqNo s = 0; s < 50; ++s) egress.push_back(rec(s, 1000 - s, 1));
  const auto report = analyze_reordering(std::move(egress));
  EXPECT_DOUBLE_EQ(report.kendall_tau, -1.0);
  EXPECT_EQ(report.inversions, 50u * 49 / 2);
  EXPECT_EQ(report.intra_flow_reordered, 49u);
  EXPECT_EQ(report.max_displacement, 49u);
}

TEST(Reordering, CountsSingleSwap) {
  std::vector<EgressRecord> egress = {rec(0, 1), rec(2, 2, 7), rec(1, 3, 7),
                                      rec(3, 4)};
  const auto report = analyze_reordering(std::move(egress));
  EXPECT_EQ(report.inversions, 1u);
  EXPECT_EQ(report.intra_flow_reordered, 1u); // seq 1 after seq 2, same flow
  EXPECT_EQ(report.max_displacement, 1u);
}

TEST(Reordering, SameCycleDeparturesCountInOrder) {
  std::vector<EgressRecord> egress = {rec(1, 5), rec(0, 5), rec(2, 6)};
  const auto report = analyze_reordering(std::move(egress));
  EXPECT_EQ(report.inversions, 0u); // ties resolved by seq
}

TEST(Reordering, Mp5KeepsPerStateOrderButCanReorderAcrossFlows) {
  // Mixed stateful/stateless traffic: stateless-priority can reorder
  // globally, while per-flow order within single-state flows holds.
  const std::string src = R"(
    struct Packet { int kind; int fid; int v; };
    int acc[16] = {0};
    void f(struct Packet p) {
      if (p.kind == 1) { acc[p.fid % 16] = acc[p.fid % 16] + 1; }
    }
  )";
  const auto prog = compile_mp5(src);
  Rng rng(21);
  auto fields = random_fields(4000, 3, 16, rng);
  for (auto& f : fields) f[0] = rng.chance(0.5) ? 1 : 0;
  auto trace = trace_from_fields(fields, 4);
  SimOptions opts = mp5_options(4, 21);
  opts.record_egress = true;
  Mp5Simulator sim(prog, opts);
  const auto result = sim.run(trace);
  const auto report = analyze_reordering(result.egress);
  EXPECT_GT(report.inversions, 0u);  // global reordering happens...
  EXPECT_GT(report.kendall_tau, 0.8); // ...but order stays mostly intact
}

TEST(Reordering, FlowOrderStageRestoresIntraFlowOrder) {
  const std::string src = R"(
    struct Packet { int kind; int fid; int v; };
    int acc[16] = {0};
    void f(struct Packet p) {
      if (p.kind == 1) { acc[p.fid % 16] = acc[p.fid % 16] + 1; }
    }
  )";
  TransformOptions topts;
  topts.add_flow_order_stage = true;
  topts.flow_fields = {"fid"};
  const auto prog = compile_mp5(src, topts);
  Rng rng(23);
  auto fields = random_fields(4000, 3, 16, rng);
  for (std::size_t i = 0; i < fields.size(); ++i) {
    fields[i][0] = rng.chance(0.5) ? 1 : 0;
    fields[i][1] = static_cast<Value>(i % 8);
  }
  auto trace = trace_from_fields(fields, 4);
  for (auto& item : trace) {
    item.flow = static_cast<std::uint64_t>(item.fields[1]);
  }
  SimOptions opts = mp5_options(4, 23);
  opts.record_egress = true;
  Mp5Simulator sim(prog, opts);
  const auto result = sim.run(trace);
  const auto report = analyze_reordering(result.egress);
  EXPECT_EQ(report.intra_flow_reordered, 0u);
}

} // namespace
} // namespace mp5::test
