// §3.5.2 fundamental-limit analysis: the admissibility bound must (a)
// match hand-computed limits on canonical programs and (b) genuinely
// upper-bound measured MP5 throughput.
#include <gtest/gtest.h>

#include "apps/programs.hpp"
#include "baseline/presets.hpp"
#include "hw/area_model.hpp"
#include "mp5/admissibility.hpp"
#include "test_util.hpp"

namespace mp5::test {
namespace {

TEST(Admissibility, GlobalCounterIsOneOverK) {
  const auto prog = compile_mp5(apps::packet_counter_source());
  Rng rng(3);
  const auto trace = trace_from_fields(random_fields(1000, 1, 4, rng), 4);
  const auto report = analyze_admissibility(prog, trace, 4);
  EXPECT_DOUBLE_EQ(report.hottest_state_fraction, 1.0);
  EXPECT_DOUBLE_EQ(report.bound, 0.25);
}

TEST(Admissibility, StatelessProgramIsUnbounded) {
  const auto prog = compile_mp5(apps::make_synthetic_source(0, 1));
  Rng rng(5);
  const auto trace = trace_from_fields(random_fields(500, 1, 4, rng), 4);
  const auto report = analyze_admissibility(prog, trace, 4);
  EXPECT_DOUBLE_EQ(report.bound, 1.0);
  EXPECT_DOUBLE_EQ(report.hottest_state_fraction, 0.0);
}

TEST(Admissibility, ResolvableGuardExcludesUntakenAccesses) {
  // Only WRITE packets touch the sequencer counter; with 50% writes the
  // serial bound doubles.
  const auto prog = compile_mp5(apps::sequencer_app().source);
  std::vector<std::vector<Value>> fields;
  for (int i = 0; i < 1000; ++i) {
    fields.push_back({0, i % 2 == 0 ? 1 : 0, 0}); // group, op, seq_no
  }
  const auto trace = trace_from_fields(fields, 4);
  const auto report = analyze_admissibility(prog, trace, 4);
  EXPECT_NEAR(report.hottest_state_fraction, 0.5, 0.01);
  EXPECT_NEAR(report.bound, 0.5, 0.01);
}

TEST(Admissibility, PinnedArrayPoolsIntoOneSerialState) {
  const auto prog = compile_mp5(apps::stateful_index_source());
  Rng rng(7);
  const auto trace = trace_from_fields(random_fields(1000, 4, 64, rng), 4);
  const auto report = analyze_admissibility(prog, trace, 4);
  // Every packet hits the pinned `table` pool (and the ptr array spreads
  // over 16 indexes): the pinned pool dominates.
  EXPECT_DOUBLE_EQ(report.hottest_state_fraction, 1.0);
  EXPECT_DOUBLE_EQ(report.bound, 0.25);
}

TEST(Admissibility, BoundsDominateMeasuredThroughput) {
  struct Case {
    std::string source;
    std::uint32_t fields;
  };
  const Case cases[] = {
      {apps::packet_counter_source(), 1},
      {apps::make_synthetic_source(4, 64), 5},
      {apps::make_synthetic_source(2, 8), 3},
      {apps::stateful_predicate_source(), 3},
  };
  Rng rng(11);
  for (const auto& c : cases) {
    const auto prog = compile_mp5(c.source);
    const auto trace =
        trace_from_fields(random_fields(4000, c.fields, 64, rng), 4);
    const auto report = analyze_admissibility(prog, trace, 4);
    Mp5Simulator sim(prog, mp5_options(4, 11));
    const double measured = sim.run(trace).normalized_throughput();
    EXPECT_LE(measured, report.bound + 0.02) << c.source;
  }
}

TEST(Chiplets, DisaggregationShrinksCrossbarArea) {
  hw::ChipletConfig config;
  config.base.pipelines = 8;
  config.base.stages = 16;
  config.chiplets = 2;
  const auto two = hw::chiplet_cost(config);
  config.chiplets = 4;
  const auto four = hw::chiplet_cost(config);
  const double monolithic = hw::chip_area(config.base).total_mm2;
  // Quadratic crossbars: splitting saves interconnect area overall...
  EXPECT_LT(two.total_mm2, monolithic);
  EXPECT_LT(four.local_crossbar_mm2, two.local_crossbar_mm2);
  // ...at the price of D2D interfaces and a slower cross-chiplet path.
  EXPECT_GT(four.d2d_interface_mm2, two.d2d_interface_mm2);
  EXPECT_LT(two.cross_chiplet_ghz, hw::clock_ghz(config.base));
  EXPECT_NEAR(two.cross_traffic_fraction, 0.5, 1e-9);
  EXPECT_NEAR(four.cross_traffic_fraction, 0.75, 1e-9);
}

} // namespace
} // namespace mp5::test
