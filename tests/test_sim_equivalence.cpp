// Headline property (§2.2.1): MP5 is functionally equivalent to the
// logical single-pipelined switch — identical final register state and
// identical per-packet egress headers — for all programs and traces, as
// long as no packets are dropped.
#include <gtest/gtest.h>

#include "apps/programs.hpp"
#include "baseline/presets.hpp"
#include "test_util.hpp"

namespace mp5::test {
namespace {

TEST(Equivalence, PacketCounter) {
  const auto prog = compile_mp5(apps::packet_counter_source());
  Rng rng(7);
  const auto trace =
      trace_from_fields(random_fields(500, 1, 16, rng), /*pipelines=*/4);
  const auto report = run_and_check(prog, trace, mp5_options(4, 1));
  EXPECT_TRUE(report.equivalent()) << report.first_difference;
}

TEST(Equivalence, SequencerExampleStampsArrivalOrder) {
  // §2.3.1 Example 2: every packet gets the counter value; equivalence
  // requires packet i to carry stamp i+1.
  const auto prog = compile_mp5(apps::sequencer_example_source());
  Rng rng(11);
  const auto trace =
      trace_from_fields(random_fields(300, 1, 4, rng), /*pipelines=*/4);
  SimOptions opts = mp5_options(4, 2);
  opts.record_egress = true;
  Mp5Simulator sim(prog, opts);
  const auto result = sim.run(trace);
  ASSERT_EQ(result.egressed, trace.size());
  const ir::Slot stamp = prog.pvsm.slot_of("stamp");
  for (const auto& rec : result.egress) {
    EXPECT_EQ(rec.headers[static_cast<std::size_t>(stamp)],
              static_cast<Value>(rec.seq) + 1)
        << "packet " << rec.seq;
  }
  const auto report = run_and_check(prog, trace, opts);
  EXPECT_TRUE(report.equivalent()) << report.first_difference;
}

TEST(Equivalence, Figure3Program) {
  const auto prog = compile_mp5(apps::figure3_source());
  Rng rng(13);
  auto fields = random_fields(400, 5, 4, rng);
  for (auto& f : fields) f[4] = rng.chance(0.5) ? 1 : 0; // mux
  const auto trace = trace_from_fields(fields, 2);
  const auto report = run_and_check(prog, trace, mp5_options(2, 3));
  EXPECT_TRUE(report.equivalent()) << report.first_difference;
}

TEST(Equivalence, Figure3ExactScenario) {
  // Packets A..E of Figure 3: A-D access reg1[1] & reg3[2] (mux=1),
  // E accesses reg2[3] & reg3[2] (mux=0). Single pipeline result:
  // reg3[2] = 4*4*4*4 + 7 = 263... the paper's narrative: with initial
  // reg3[2]=0 the updates are 0*4 three times... we reproduce semantics,
  // not the (illustrative) arithmetic: the check is equivalence.
  const auto prog = compile_mp5(apps::figure3_source());
  std::vector<std::vector<Value>> fields = {
      {1, 1, 2, 0, 1}, // A: h1,h2,h3,val,mux
      {1, 1, 2, 0, 1}, // B
      {1, 1, 2, 0, 1}, // C
      {1, 1, 2, 0, 1}, // D
      {1, 3, 2, 0, 0}, // E
  };
  const auto trace = trace_from_fields(fields, 2);
  const auto report = run_and_check(prog, trace, mp5_options(2, 4));
  EXPECT_TRUE(report.equivalent()) << report.first_difference;
}

TEST(Equivalence, StatefulPredicateConservativePhantoms) {
  const auto prog = compile_mp5(apps::stateful_predicate_source());
  EXPECT_GT(prog.conservative_accesses(), 0u);
  Rng rng(17);
  const auto trace = trace_from_fields(random_fields(600, 3, 64, rng), 4);
  const auto report = run_and_check(prog, trace, mp5_options(4, 5));
  EXPECT_TRUE(report.equivalent()) << report.first_difference;
}

TEST(Equivalence, StatefulIndexPinnedArray) {
  const auto prog = compile_mp5(apps::stateful_index_source());
  EXPECT_GT(prog.pinned_registers(), 0u);
  Rng rng(19);
  const auto trace = trace_from_fields(random_fields(600, 4, 64, rng), 4);
  const auto report = run_and_check(prog, trace, mp5_options(4, 6));
  EXPECT_TRUE(report.equivalent()) << report.first_difference;
}

TEST(Equivalence, SyntheticProgramManyStatefulStages) {
  const auto prog = compile_mp5(apps::make_synthetic_source(6, 32));
  Rng rng(23);
  const auto trace = trace_from_fields(random_fields(800, 7, 32, rng), 4);
  const auto report = run_and_check(prog, trace, mp5_options(4, 7));
  EXPECT_TRUE(report.equivalent()) << report.first_difference;
}

TEST(Equivalence, HoldsWithFlowOrderStage) {
  TransformOptions topts;
  topts.add_flow_order_stage = true;
  topts.flow_fields = {"sport", "dport"};
  const auto prog = compile_mp5(apps::wfq_app().source, topts);
  Rng rng(29);
  const auto trace = trace_from_fields(random_fields(400, 6, 512, rng), 4);
  const auto report = run_and_check(prog, trace, mp5_options(4, 8));
  EXPECT_TRUE(report.equivalent()) << report.first_difference;
}

TEST(Equivalence, HoldsForIdealVariant) {
  const auto prog = compile_mp5(apps::make_synthetic_source(4, 16));
  Rng rng(31);
  const auto trace = trace_from_fields(random_fields(600, 5, 16, rng), 4);
  const auto report = run_and_check(prog, trace, ideal_options(4, 9));
  EXPECT_TRUE(report.equivalent()) << report.first_difference;
}

TEST(Equivalence, HoldsForNaiveVariant) {
  const auto prog = compile_mp5(apps::make_synthetic_source(3, 8));
  Rng rng(37);
  const auto trace = trace_from_fields(random_fields(300, 4, 8, rng), 4);
  const auto report = run_and_check(prog, trace, naive_options(4, 10));
  EXPECT_TRUE(report.equivalent()) << report.first_difference;
}

TEST(Equivalence, HoldsWithoutDynamicSharding) {
  const auto prog = compile_mp5(apps::make_synthetic_source(4, 16));
  Rng rng(41);
  const auto trace = trace_from_fields(random_fields(500, 5, 16, rng), 4);
  const auto report = run_and_check(prog, trace, no_d2_options(4, 11));
  EXPECT_TRUE(report.equivalent()) << report.first_difference;
}


TEST(Equivalence, MatchTableProgram) {
  // §2.1 match tables (constant entries, compiled to predicated
  // execution) keep full functional equivalence under MP5.
  const auto prog = compile_mp5(apps::table_routing_source());
  Rng rng(43);
  const auto trace = trace_from_fields(random_fields(800, 3, 256, rng), 4);
  const auto report = run_and_check(prog, trace, mp5_options(4, 12));
  EXPECT_TRUE(report.equivalent()) << report.first_difference;
}

// Parameterized sweep: pipelines x seeds over the real applications.
struct SweepParam {
  std::uint32_t pipelines;
  std::uint64_t seed;
};

class EquivalenceSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EquivalenceSweep, RealAppsAtLineRate) {
  const auto param = GetParam();
  for (const auto& app : apps::real_apps()) {
    const auto prog = compile_mp5(app.source);
    FlowWorkloadConfig config;
    config.pipelines = param.pipelines;
    config.packets = 1500;
    config.seed = param.seed;
    const auto trace = make_flow_trace(config, app.filler);
    const auto report =
        run_and_check(prog, trace, mp5_options(param.pipelines, param.seed));
    EXPECT_TRUE(report.equivalent())
        << app.name << " k=" << param.pipelines << ": "
        << report.first_difference;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PipelinesAndSeeds, EquivalenceSweep,
    ::testing::Values(SweepParam{1, 1}, SweepParam{2, 1}, SweepParam{2, 2},
                      SweepParam{4, 1}, SweepParam{4, 2}, SweepParam{4, 3},
                      SweepParam{8, 1}, SweepParam{8, 2}, SweepParam{16, 1}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "k" + std::to_string(info.param.pipelines) + "_seed" +
             std::to_string(info.param.seed);
    });


// Second grid: design variants x pipeline counts over programs that cover
// every compiler path (plain, conservative predicate, exclusive branches).
struct VariantParam {
  const char* variant;
  std::uint32_t pipelines;
};

class VariantEquivalence : public ::testing::TestWithParam<VariantParam> {};

TEST_P(VariantEquivalence, GridHoldsEquivalence) {
  const auto param = GetParam();
  SimOptions opts;
  const std::string variant = param.variant;
  if (variant == "mp5") opts = mp5_options(param.pipelines, 3);
  else if (variant == "ideal") opts = ideal_options(param.pipelines, 3);
  else if (variant == "no_d2") opts = no_d2_options(param.pipelines, 3);
  else if (variant == "naive") opts = naive_options(param.pipelines, 3);
  else FAIL() << "unknown variant";

  const std::string programs[] = {
      apps::make_synthetic_source(4, 64),
      apps::stateful_predicate_source(),
      apps::figure3_source(),
  };
  Rng rng(1234);
  for (const auto& src : programs) {
    const auto prog = compile_mp5(src);
    const auto ast_fields = prog.pvsm.declared_slot.size();
    const auto trace = trace_from_fields(
        random_fields(600, ast_fields, 64, rng), param.pipelines);
    const auto report = run_and_check(prog, trace, opts);
    EXPECT_TRUE(report.equivalent())
        << variant << " k=" << param.pipelines << ": "
        << report.first_difference;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DesignVariants, VariantEquivalence,
    ::testing::Values(VariantParam{"mp5", 2}, VariantParam{"mp5", 8},
                      VariantParam{"ideal", 2}, VariantParam{"ideal", 8},
                      VariantParam{"no_d2", 2}, VariantParam{"no_d2", 8},
                      VariantParam{"naive", 2}, VariantParam{"naive", 8}),
    [](const ::testing::TestParamInfo<VariantParam>& info) {
      return std::string(info.param.variant) + "_k" +
             std::to_string(info.param.pipelines);
    });

// Remap-period sweep: equivalence must hold no matter how often (or
// whether) the sharding heuristic moves state under live traffic.
class RemapEquivalence : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RemapEquivalence, AnyPeriodPreservesEquivalence) {
  const auto prog = compile_mp5(apps::make_synthetic_source(4, 64));
  Rng rng(77);
  const auto trace = trace_from_fields(random_fields(800, 5, 64, rng), 4);
  SimOptions opts = mp5_options(4, 7);
  opts.remap_period = GetParam();
  const auto report = run_and_check(prog, trace, opts);
  EXPECT_TRUE(report.equivalent()) << report.first_difference;
}

INSTANTIATE_TEST_SUITE_P(Periods, RemapEquivalence,
                         ::testing::Values(1u, 10u, 50u, 100u, 1000u),
                         [](const ::testing::TestParamInfo<std::uint32_t>& i) {
                           return "period" + std::to_string(i.param);
                         });


// Realistic phantom channel (phantoms hop one stage per cycle): the full
// equivalence property must hold unchanged, including in-flight phantom
// cancellation for conservative predicates.
class PhantomChannelEquivalence
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PhantomChannelEquivalence, HoldsWithPhysicalChannel) {
  const std::string programs[] = {
      apps::make_synthetic_source(4, 64),
      apps::stateful_predicate_source(),
      apps::figure3_source(),
      apps::sequencer_example_source(),
  };
  Rng rng(2024);
  for (const auto& src : programs) {
    const auto prog = compile_mp5(src);
    const auto trace = trace_from_fields(
        random_fields(700, prog.pvsm.declared_slot.size(), 64, rng),
        GetParam());
    SimOptions opts = mp5_options(GetParam(), 9);
    opts.realistic_phantom_channel = true;
    const auto report = run_and_check(prog, trace, opts);
    EXPECT_TRUE(report.equivalent())
        << "k=" << GetParam() << ": " << report.first_difference;
  }
}

INSTANTIATE_TEST_SUITE_P(Pipelines, PhantomChannelEquivalence,
                         ::testing::Values(2u, 4u, 8u),
                         [](const ::testing::TestParamInfo<std::uint32_t>& i) {
                           return "k" + std::to_string(i.param);
                         });

} // namespace
} // namespace mp5::test
