// Robustness satellites: construction-time option validation, the
// ChannelKey packing-collision regression, drop-accounting conservation,
// and unit coverage for the fault-support primitives in StageFifo and
// ShardedState.
#include <gtest/gtest.h>

#include <unordered_map>

#include "apps/programs.hpp"
#include "baseline/presets.hpp"
#include "common/error.hpp"
#include "mp5/shard_map.hpp"
#include "mp5/simulator.hpp"
#include "mp5/stage_fifo.hpp"
#include "test_util.hpp"

namespace mp5::test {
namespace {

using Kind = StageFifo::PopResult::Kind;

// The FIFO stores opaque arena references; these tests use `ref == seq`.
PacketRef ref_for(SeqNo seq) { return static_cast<PacketRef>(seq); }

// --- SimOptions validation at construction ------------------------------

class OptionValidation : public ::testing::Test {
protected:
  Mp5Program prog_ = compile_mp5(apps::make_synthetic_source(1, 8));
};

TEST_F(OptionValidation, RejectsZeroPipelines) {
  SimOptions opts;
  opts.pipelines = 0;
  EXPECT_THROW(Mp5Simulator(prog_, opts), ConfigError);
}

TEST_F(OptionValidation, RejectsNaiveWithNonSinglePipelineSharding) {
  SimOptions opts;
  opts.naive_single_pipeline = true; // default sharding is kDynamic
  EXPECT_THROW(Mp5Simulator(prog_, opts), ConfigError);

  opts.sharding = ShardingPolicy::kSinglePipeline;
  EXPECT_NO_THROW(Mp5Simulator(prog_, opts));
  // The preset sets the matching policy for callers.
  EXPECT_NO_THROW(Mp5Simulator(prog_, naive_options(4, 1)));
}

TEST_F(OptionValidation, RejectsIdealQueuesWithoutIdealLpt) {
  SimOptions opts;
  opts.ideal_queues = true; // default sharding is kDynamic
  EXPECT_THROW(Mp5Simulator(prog_, opts), ConfigError);
  EXPECT_NO_THROW(Mp5Simulator(prog_, ideal_options(4, 1)));
}

TEST_F(OptionValidation, RejectsUnreachableEcnThreshold) {
  SimOptions opts;
  opts.pipelines = 4;
  opts.fifo_capacity = 4;  // stage occupancy can never exceed 4 * 4 = 16
  opts.ecn_threshold = 17; // so this threshold could never fire
  EXPECT_THROW(Mp5Simulator(prog_, opts), ConfigError);

  opts.ecn_threshold = 16;
  EXPECT_NO_THROW(Mp5Simulator(prog_, opts));
  opts.fifo_capacity = 0; // unbounded: any threshold is reachable
  opts.ecn_threshold = 1000;
  EXPECT_NO_THROW(Mp5Simulator(prog_, opts));
}

// --- ChannelKey regression ----------------------------------------------

/// The retired packed encoding of (seq, pipeline, stage).
std::uint64_t old_packed_key(SeqNo seq, PipelineId p, StageId st) {
  return (seq << 16) ^ (static_cast<std::uint64_t>(p) << 8) ^ st;
}

TEST(ChannelKey, OldPackedEncodingCollidedOnRealisticValues) {
  // seq << 16 overflows: two different phantoms shared one key, so the
  // channel index could delete or cancel the wrong in-flight phantom.
  EXPECT_EQ(old_packed_key(std::uint64_t{1} << 48, 0, 0),
            old_packed_key(0, 0, 0));
  // The XOR packing also aliased (pipeline, stage) with low seq bits.
  EXPECT_EQ(old_packed_key(0, 0, 256), old_packed_key(0, 1, 0));
  EXPECT_EQ(old_packed_key(1, 0, 0), old_packed_key(0, 256, 0));
}

TEST(ChannelKey, StructKeyKeepsCollidingTriplesDistinct) {
  using Key = Mp5Simulator::ChannelKey;
  const Key a{std::uint64_t{1} << 48, 0, 0};
  const Key b{0, 0, 0};
  const Key c{0, 0, 256};
  const Key d{0, 1, 0};
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(c == d);

  std::unordered_map<Key, int, Mp5Simulator::ChannelKeyHash> map;
  map[a] = 1;
  map[b] = 2;
  map[c] = 3;
  map[d] = 4;
  EXPECT_EQ(map.size(), 4u);
  EXPECT_EQ(map.at(a), 1);
  EXPECT_EQ(map.at(b), 2);
  EXPECT_EQ(map.at(c), 3);
  EXPECT_EQ(map.at(d), 4);
}

TEST(ChannelKey, EquivalenceHoldsAtSeqBeyondOldOverflow) {
  // End-to-end regression: phantoms whose seqs differ by 2^48 would have
  // aliased in the old index. Simulate enough distinct (pipeline, stage)
  // pairs on the realistic channel to exercise the struct key.
  const auto prog = compile_mp5(apps::make_synthetic_source(3, 16));
  Rng rng(53);
  const auto trace = trace_from_fields(random_fields(600, 4, 16, rng), 4);
  SimOptions opts = mp5_options(4, 13);
  opts.realistic_phantom_channel = true;
  const auto report = run_and_check(prog, trace, opts);
  EXPECT_TRUE(report.equivalent()) << report.first_difference;
}

// --- drop-accounting conservation ---------------------------------------

TEST(DropAccounting, BoundedFifoConservesPacketsAcrossSeeds) {
  // offered == egressed + dropped_data + dropped_starved + dropped_fault
  // must hold exactly for every seed, even when bounded FIFOs shed load.
  const auto prog = compile_mp5(apps::make_synthetic_source(2, 8));
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 1000 + 7);
    const auto trace = trace_from_fields(random_fields(1200, 3, 8, rng), 4);
    SimOptions opts = mp5_options(4, seed);
    opts.fifo_capacity = 2;
    opts.paranoid_checks = true;
    Mp5Simulator sim(prog, opts);
    const SimResult result = sim.run(trace);
    EXPECT_EQ(result.offered, result.egressed + result.dropped_data +
                                  result.dropped_starved +
                                  result.dropped_fault)
        << "seed " << seed;
    EXPECT_DOUBLE_EQ(result.drop_fraction(),
                     static_cast<double>(result.offered - result.egressed) /
                         static_cast<double>(result.offered))
        << "seed " << seed;
    EXPECT_GT(result.dropped_data, 0u) << "seed " << seed
                                       << ": capacity 2 should shed load";
    // Each dropped data packet lost its phantom first.
    EXPECT_GE(result.dropped_phantom, result.dropped_data) << "seed " << seed;
  }
}

TEST(DropAccounting, StarvationGuardDropsAreCounted) {
  const auto prog = compile_mp5(apps::stateful_predicate_source());
  Rng rng(61);
  const auto trace = trace_from_fields(random_fields(1500, 3, 4, rng), 4);
  SimOptions opts = mp5_options(4, 2);
  opts.starvation_threshold = 2;
  opts.paranoid_checks = true;
  Mp5Simulator sim(prog, opts);
  const SimResult result = sim.run(trace);
  EXPECT_EQ(result.offered, result.egressed + result.dropped_data +
                                result.dropped_starved +
                                result.dropped_fault);
}

// --- StageFifo fault-support primitives ---------------------------------

TEST(StageFifoFaults, DrainAllReturnsDataAndEmptiesEverything) {
  StageFifo fifo(2, 0, /*ideal=*/false);
  ASSERT_TRUE(fifo.push_phantom(0, 0, 0, 0));
  ASSERT_TRUE(fifo.push_phantom(1, 0, 1, 1));
  ASSERT_TRUE(fifo.push_phantom(2, 0, 2, 0));
  ASSERT_TRUE(fifo.insert_data(1, ref_for(1)));
  fifo.cancel(2);

  const auto data = fifo.drain_all();
  ASSERT_EQ(data.size(), 1u); // phantoms and zombies die silently
  EXPECT_EQ(data[0], ref_for(1));
  EXPECT_EQ(fifo.size(), 0u);
  EXPECT_FALSE(fifo.has_phantom(0));
  EXPECT_EQ(fifo.pop().kind, Kind::kIdle);
  // The FIFO is reusable after a drain.
  ASSERT_TRUE(fifo.push_phantom(7, 0, 0, 0));
  ASSERT_TRUE(fifo.insert_data(7, ref_for(7)));
  EXPECT_EQ(fifo.pop().ref, ref_for(7));
}

TEST(StageFifoFaults, ExtractDataIfLeavesReclaimableZombies) {
  StageFifo fifo(1, 0, /*ideal=*/false);
  ASSERT_TRUE(fifo.push_phantom(0, 0, 0, 0));
  ASSERT_TRUE(fifo.push_phantom(1, 0, 0, 0));
  ASSERT_TRUE(fifo.push_phantom(2, 0, 0, 0));
  ASSERT_TRUE(fifo.insert_data(0, ref_for(0)));
  ASSERT_TRUE(fifo.insert_data(1, ref_for(1)));
  ASSERT_TRUE(fifo.insert_data(2, ref_for(2)));

  const auto extracted =
      fifo.extract_data_if([](PacketRef r) { return r == ref_for(1); });
  ASSERT_EQ(extracted.size(), 1u);
  EXPECT_EQ(extracted[0], ref_for(1));
  // FIFO addressing stays intact: seq 0 pops, the extracted slot costs
  // one wasted pop, then seq 2 pops.
  EXPECT_EQ(fifo.pop().ref, ref_for(0));
  EXPECT_EQ(fifo.pop().kind, Kind::kWasted);
  EXPECT_EQ(fifo.pop().ref, ref_for(2));
}

TEST(StageFifoFaults, PressureClampForcesPushFailures) {
  StageFifo fifo(1, 0, /*ideal=*/false); // unbounded by configuration
  fifo.set_pressure_capacity(2);
  EXPECT_TRUE(fifo.push_phantom(0, 0, 0, 0));
  EXPECT_TRUE(fifo.push_phantom(1, 0, 0, 0));
  EXPECT_FALSE(fifo.push_phantom(2, 0, 0, 0)); // clamped
  fifo.set_pressure_capacity(0);               // clamp lifted
  EXPECT_TRUE(fifo.push_phantom(3, 0, 0, 0));
}

TEST(StageFifoFaults, IdealModeSupportsDrainExtractAndPressure) {
  StageFifo fifo(2, 0, /*ideal=*/true);
  fifo.set_pressure_capacity(1);
  ASSERT_TRUE(fifo.push_phantom(0, 0, 5, 0));
  EXPECT_FALSE(fifo.push_phantom(1, 0, 5, 0)); // same index: clamped
  ASSERT_TRUE(fifo.push_phantom(2, 0, 6, 0));  // other index: own queue
  fifo.set_pressure_capacity(0);
  ASSERT_TRUE(fifo.insert_data(0, ref_for(0)));
  ASSERT_TRUE(fifo.insert_data(2, ref_for(2)));

  const auto extracted =
      fifo.extract_data_if([](PacketRef r) { return r == ref_for(0); });
  ASSERT_EQ(extracted.size(), 1u);
  EXPECT_EQ(fifo.pop().ref, ref_for(2));
  EXPECT_EQ(fifo.pop().kind, Kind::kIdle);

  ASSERT_TRUE(fifo.push_phantom(5, 0, 7, 0));
  ASSERT_TRUE(fifo.insert_data(5, ref_for(5)));
  const auto data = fifo.drain_all();
  ASSERT_EQ(data.size(), 1u);
  EXPECT_EQ(data[0], ref_for(5));
  EXPECT_EQ(fifo.size(), 0u);
}

TEST(StageFifoFaults, CheckInvariantsPassesOnHealthyFifo) {
  StageFifo fifo(2, 0, /*ideal=*/false);
  ASSERT_TRUE(fifo.push_phantom(0, 0, 0, 0));
  ASSERT_TRUE(fifo.push_phantom(1, 0, 1, 1));
  ASSERT_TRUE(fifo.insert_data(0, ref_for(0)));
  EXPECT_NO_THROW(fifo.check_invariants(/*now=*/10));

  StageFifo ideal(2, 0, /*ideal=*/true);
  ASSERT_TRUE(ideal.push_phantom(0, 0, 3, 0));
  ASSERT_TRUE(ideal.push_phantom(1, 0, 3, 0));
  ASSERT_TRUE(ideal.insert_data(0, ref_for(0)));
  EXPECT_NO_THROW(ideal.check_invariants(/*now=*/10));
}

// --- ShardedState lane liveness -----------------------------------------

std::vector<ir::RegisterSpec> one_reg(std::size_t size) {
  ir::RegisterSpec spec;
  spec.name = "r";
  spec.size = size;
  return {spec};
}

TEST(ShardMapFaults, FailPipelineRehomesEveryActiveIndex) {
  ShardedState state(one_reg(256), {true}, 4, ShardingPolicy::kDynamic,
                     Rng(1));
  std::size_t on_dead = 0;
  for (RegIndex i = 0; i < 256; ++i) {
    if (state.pipeline_of(0, i) == 2) ++on_dead;
  }
  ASSERT_GT(on_dead, 0u);

  const std::size_t moved = state.fail_pipeline(2);
  EXPECT_EQ(moved, on_dead);
  EXPECT_FALSE(state.alive(2));
  EXPECT_EQ(state.alive_count(), 3u);
  for (RegIndex i = 0; i < 256; ++i) {
    EXPECT_NE(state.pipeline_of(0, i), 2u) << "index " << i;
  }
}

TEST(ShardMapFaults, RehomingSpreadsAcrossSurvivorsWithColdCounters) {
  // Regression: with all access counters zero (e.g. right after a remap
  // window reset), re-homing must still spread the dead lane's indices
  // across the survivors instead of resolving every least-loaded tie to
  // the first alive lane — that turned lane 0 into a post-failure
  // hotspot capping degraded throughput well below (k-1)/k.
  ShardedState state(one_reg(300), {true}, 4, ShardingPolicy::kDynamic,
                     Rng(7));
  state.fail_pipeline(1);
  std::vector<std::size_t> count(4, 0);
  for (RegIndex i = 0; i < 300; ++i) ++count[state.pipeline_of(0, i)];
  EXPECT_EQ(count[1], 0u);
  for (const PipelineId p : {0u, 2u, 3u}) {
    EXPECT_GT(count[p], 60u) << "lane " << p << " left underloaded";
    EXPECT_LT(count[p], 140u) << "lane " << p << " became a hotspot";
  }
}

TEST(ShardMapFaults, InFlightGuardBlocksRemapOfUndrainedLane) {
  ShardedState state(one_reg(64), {true}, 2, ShardingPolicy::kDynamic,
                     Rng(1));
  RegIndex on_one = 0;
  while (state.pipeline_of(0, on_one) != 1) ++on_one;
  state.note_resolved(0, on_one); // a packet is in flight to this index
  EXPECT_THROW(state.fail_pipeline(1), Error);
}

TEST(ShardMapFaults, PinMovesOffDeadLaneAndRecoveryRestores) {
  ShardedState state(one_reg(16), {true}, 3, ShardingPolicy::kDynamic,
                     Rng(2));
  ASSERT_EQ(state.pin_pipeline(), 0u);
  state.fail_pipeline(0);
  EXPECT_NE(state.pin_pipeline(), 0u);
  EXPECT_TRUE(state.alive(state.pin_pipeline()));

  state.recover_pipeline(0);
  EXPECT_TRUE(state.alive(0));
  EXPECT_EQ(state.alive_count(), 3u);
  // Double-recover and double-fail are programming errors.
  EXPECT_THROW(state.recover_pipeline(0), Error);
  state.fail_pipeline(1);
  EXPECT_THROW(state.fail_pipeline(1), Error);
}

TEST(ShardMapFaults, LastSurvivorCannotFail) {
  ShardedState state(one_reg(8), {true}, 2, ShardingPolicy::kDynamic, Rng(3));
  state.fail_pipeline(0);
  EXPECT_THROW(state.fail_pipeline(1), Error);
}

TEST(ShardMapFaults, RebalanceNeverTargetsDeadLane) {
  ShardedState state(one_reg(64), {true}, 4, ShardingPolicy::kDynamic,
                     Rng(4));
  state.fail_pipeline(3);
  for (int round = 0; round < 10; ++round) {
    for (RegIndex i = 0; i < 64; ++i) {
      state.note_resolved(0, i);
      state.note_completed(0, i);
    }
    state.rebalance();
    for (RegIndex i = 0; i < 64; ++i) {
      ASSERT_NE(state.pipeline_of(0, i), 3u) << "round " << round;
    }
  }
}

} // namespace
} // namespace mp5::test
