#include <gtest/gtest.h>

#include "common/error.hpp"
#include "domino/lexer.hpp"
#include "domino/parser.hpp"

namespace mp5::domino {
namespace {

TEST(Lexer, TokenizesOperatorsAndLiterals) {
  const auto toks = lex("a += 0x1f << 2; // comment\n b != ~c");
  std::vector<Tok> kinds;
  for (const auto& t : toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<Tok>{
                       Tok::kIdent, Tok::kPlusAssign, Tok::kIntLit, Tok::kShl,
                       Tok::kIntLit, Tok::kSemi, Tok::kIdent, Tok::kNe,
                       Tok::kTilde, Tok::kIdent, Tok::kEnd}));
  EXPECT_EQ(toks[2].int_value, 0x1f);
}

TEST(Lexer, TracksLineAndColumn) {
  const auto toks = lex("a\n  b");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].col, 3);
}

TEST(Lexer, SkipsBlockCommentsAndPreprocessor) {
  const auto toks = lex("#define X 4\n/* multi\nline */ y");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].text, "y");
}

TEST(Lexer, RejectsBadCharacters) {
  EXPECT_THROW(lex("a @ b"), ParseError);
  EXPECT_THROW(lex("/* unterminated"), ParseError);
}

TEST(Parser, ParsesFullProgram) {
  const auto ast = parse(R"(
    struct Packet { int x; int y; };
    const int K = 3;
    int counter = 0;
    int table[8] = {1, 2};
    void run(struct Packet p) {
      p.x = p.y * K;
      if (p.x > 2) { counter = counter + 1; } else { p.y = 0; }
    }
  )");
  EXPECT_EQ(ast.func_name, "run");
  EXPECT_EQ(ast.packet_param, "p");
  EXPECT_EQ(ast.fields, (std::vector<std::string>{"x", "y"}));
  ASSERT_EQ(ast.registers.size(), 2u);
  EXPECT_EQ(ast.registers[0].name, "counter");
  EXPECT_EQ(ast.registers[0].size, 1u);
  EXPECT_EQ(ast.registers[1].size, 8u);
  EXPECT_EQ(ast.registers[1].init, (std::vector<Value>{1, 2}));
  ASSERT_EQ(ast.body.size(), 2u);
  EXPECT_EQ(ast.body[1]->kind, Stmt::Kind::kIf);
}

TEST(Parser, DesugarsCompoundAssignAndIncrement) {
  const auto ast = parse(R"(
    struct Packet { int x; };
    int c = 0;
    void f(struct Packet p) {
      p.x += 2;
      c++;
      p.x *= p.x;
    }
  )");
  ASSERT_EQ(ast.body.size(), 3u);
  for (const auto& stmt : ast.body) {
    EXPECT_EQ(stmt->kind, Stmt::Kind::kAssign);
    EXPECT_EQ(stmt->rhs->kind, Expr::Kind::kBinary);
  }
  EXPECT_EQ(ast.body[1]->rhs->bin, ir::BinOp::kAdd);
}

TEST(Parser, RespectsPrecedenceAndTernary) {
  const auto ast = parse(R"(
    struct Packet { int x; };
    void f(struct Packet p) {
      p.x = 1 + 2 * 3 == 7 ? p.x & 3 : p.x | 4;
    }
  )");
  const auto& rhs = *ast.body[0]->rhs;
  ASSERT_EQ(rhs.kind, Expr::Kind::kTernary);
  EXPECT_EQ(rhs.a->kind, Expr::Kind::kBinary);
  EXPECT_EQ(rhs.a->bin, ir::BinOp::kEq);
}

TEST(Parser, ElseIfChains) {
  const auto ast = parse(R"(
    struct Packet { int x; };
    void f(struct Packet p) {
      if (p.x == 1) { p.x = 2; }
      else if (p.x == 2) { p.x = 3; }
      else { p.x = 4; }
    }
  )");
  const auto& outer = *ast.body[0];
  ASSERT_EQ(outer.else_body.size(), 1u);
  EXPECT_EQ(outer.else_body[0]->kind, Stmt::Kind::kIf);
  EXPECT_EQ(outer.else_body[0]->else_body.size(), 1u);
}

TEST(Parser, ConstantFoldingInDeclarations) {
  const auto ast = parse(R"(
    struct Packet { int x; };
    const int N = 4 * 8;
    int table[N] = {N - 1};
    void f(struct Packet p) { p.x = 1; }
  )");
  EXPECT_EQ(ast.registers[0].size, 32u);
  EXPECT_EQ(ast.registers[0].init[0], 31);
}

TEST(Parser, ErrorsAreDiagnosed) {
  EXPECT_THROW(parse("struct Packet { int x; int x; }; void f(struct Packet p){}"),
               SemanticError);
  EXPECT_THROW(parse("struct Packet { int x; };"), SemanticError); // no func
  EXPECT_THROW(parse("void f(struct Packet p) {}"), SemanticError); // no struct
  EXPECT_THROW(parse("struct Packet { int x; }; int r[0]; void f(struct Packet p){}"),
               SemanticError); // zero-size register
  EXPECT_THROW(parse("struct Packet { int x; }; int r[2] = {1,2,3}; void f(struct Packet p){}"),
               SemanticError); // oversize init
  EXPECT_THROW(parse("struct Packet { int x; }; void f(struct Packet p) { p.x = ; }"),
               ParseError);
  EXPECT_THROW(parse("struct Packet { int x; }; int r[p.x]; void f(struct Packet p){}"),
               SemanticError); // non-constant size
  EXPECT_THROW(parse("struct Packet { int x; }; int c = 0; int c = 1; void f(struct Packet p){}"),
               SemanticError); // duplicate decl
}

TEST(Parser, RejectsBadAssignmentTargets) {
  EXPECT_THROW(parse(R"(
    struct Packet { int x; };
    void f(struct Packet p) { 3 = p.x; }
  )"),
               ParseError);
}


TEST(Parser, MatchTableDesugarsToExclusiveChain) {
  const auto ast = parse(R"(
    struct Packet { int dst; int port; };
    table route (p.dst % 256) {
      10 : { p.port = 1; }
      20 : { p.port = 2; }
      default : { p.port = 0; }
    }
    void f(struct Packet p) {
      apply route;
    }
  )");
  ASSERT_EQ(ast.body.size(), 1u);
  const auto& outer = *ast.body[0];
  EXPECT_EQ(outer.kind, Stmt::Kind::kIf);
  EXPECT_EQ(outer.cond->bin, ir::BinOp::kEq);
  ASSERT_EQ(outer.else_body.size(), 1u);
  EXPECT_EQ(outer.else_body[0]->kind, Stmt::Kind::kIf); // else-if chain
  EXPECT_EQ(outer.else_body[0]->else_body.size(), 1u);  // default
}

TEST(Parser, MatchTableErrors) {
  EXPECT_THROW(parse(R"(
    struct Packet { int x; };
    table t (p.x) { }
    void f(struct Packet p) { apply t; }
  )"),
               SemanticError); // no entries
  EXPECT_THROW(parse(R"(
    struct Packet { int x; };
    void f(struct Packet p) { apply ghost; }
  )"),
               SemanticError); // unknown table
  EXPECT_THROW(parse(R"(
    struct Packet { int x; };
    table t (p.x) { 1 : { p.x = 1; } default : { } default : { } }
    void f(struct Packet p) { apply t; }
  )"),
               ParseError); // duplicate default
}

TEST(Parser, DefaultOnlyTableAppliesUnconditionally) {
  const auto ast = parse(R"(
    struct Packet { int x; };
    table t (p.x) { default : { p.x = 7; } }
    void f(struct Packet p) { apply t; }
  )");
  ASSERT_EQ(ast.body.size(), 1u);
  EXPECT_EQ(ast.body[0]->kind, Stmt::Kind::kIf);
  EXPECT_EQ(ast.body[0]->cond->kind, Expr::Kind::kIntLit);
}

TEST(Parser, ApplyTwiceReplaysTheTable) {
  // Each apply clones the entries (no shared AST nodes).
  const auto ast = parse(R"(
    struct Packet { int x; int n; };
    table bump (p.x) { 1 : { p.n = p.n + 1; } }
    void f(struct Packet p) {
      apply bump;
      apply bump;
    }
  )");
  EXPECT_EQ(ast.body.size(), 2u);
  EXPECT_NE(ast.body[0].get(), ast.body[1].get());
}

} // namespace
} // namespace mp5::domino
