#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "domino/lower.hpp"
#include "domino/parser.hpp"

namespace mp5::domino {
namespace {

LoweredProgram lower_src(const std::string& src) { return lower(parse(src)); }

std::size_t count_op(const LoweredProgram& p, ir::TacOp op) {
  return static_cast<std::size_t>(
      std::count_if(p.instrs.begin(), p.instrs.end(),
                    [&](const ir::TacInstr& i) { return i.op == op; }));
}

TEST(Lower, DeclaredFieldsGetLeadingSlots) {
  const auto p = lower_src(R"(
    struct Packet { int a; int b; };
    void f(struct Packet p) { p.a = p.b + 1; }
  )");
  EXPECT_EQ(p.declared_slot.at("a"), 0);
  EXPECT_EQ(p.declared_slot.at("b"), 1);
  EXPECT_TRUE(p.fields[0].declared);
  EXPECT_FALSE(p.fields.back().declared);
}

TEST(Lower, SsaVersionsAndEgressCopies) {
  const auto p = lower_src(R"(
    struct Packet { int a; };
    void f(struct Packet p) { p.a = p.a + 1; p.a = p.a * 2; }
  )");
  // Final version copied back to the canonical slot exactly once.
  ASSERT_EQ(p.egress_copies.size(), 1u);
  const auto& copy = p.instrs[p.egress_copies[0]];
  EXPECT_EQ(copy.op, ir::TacOp::kCopy);
  EXPECT_EQ(copy.dst, p.declared_slot.at("a"));
}

TEST(Lower, NoEgressCopyForUntouchedField) {
  const auto p = lower_src(R"(
    struct Packet { int a; int b; };
    void f(struct Packet p) { p.a = 1; }
  )");
  EXPECT_EQ(p.egress_copies.size(), 1u); // only a, not b
}

TEST(Lower, IfConversionGuardsRegisterOps) {
  const auto p = lower_src(R"(
    struct Packet { int a; };
    int r = 0;
    void f(struct Packet p) {
      if (p.a > 3) { r = r + 1; }
    }
  )");
  bool found_guarded_write = false;
  for (const auto& i : p.instrs) {
    if (i.op == ir::TacOp::kRegWrite) {
      EXPECT_NE(i.guard, ir::kNoSlot);
      EXPECT_FALSE(i.guard_negate);
      found_guarded_write = true;
    }
  }
  EXPECT_TRUE(found_guarded_write);
}

TEST(Lower, ElseBranchGetsNegatedGuard) {
  const auto p = lower_src(R"(
    struct Packet { int a; };
    int r = 0;
    int s = 0;
    void f(struct Packet p) {
      if (p.a > 3) { r = 1; } else { s = 1; }
    }
  )");
  std::vector<bool> negates;
  ir::Slot guard = ir::kNoSlot;
  for (const auto& i : p.instrs) {
    if (i.op == ir::TacOp::kRegWrite) {
      negates.push_back(i.guard_negate);
      if (guard == ir::kNoSlot) guard = i.guard;
      EXPECT_EQ(i.guard, guard); // same guard slot, different polarity
    }
  }
  EXPECT_EQ(negates, (std::vector<bool>{false, true}));
}

TEST(Lower, FieldAssignUnderGuardBecomesSelect) {
  const auto p = lower_src(R"(
    struct Packet { int a; };
    void f(struct Packet p) {
      if (p.a == 1) { p.a = 5; }
    }
  )");
  EXPECT_GE(count_op(p, ir::TacOp::kSelect), 1u);
}

TEST(Lower, NestedGuardsAreConjoined) {
  const auto p = lower_src(R"(
    struct Packet { int a; int b; };
    int r = 0;
    void f(struct Packet p) {
      if (p.a) { if (p.b) { r = 1; } }
    }
  )");
  // The write's guard must be a computed LAnd temp, not p.a or p.b
  // directly.
  for (const auto& i : p.instrs) {
    if (i.op == ir::TacOp::kRegWrite) {
      EXPECT_NE(i.guard, p.declared_slot.at("a"));
      EXPECT_NE(i.guard, p.declared_slot.at("b"));
    }
  }
  bool has_land = false;
  for (const auto& i : p.instrs) {
    if (i.op == ir::TacOp::kBin && i.bin == ir::BinOp::kLAnd) has_land = true;
  }
  EXPECT_TRUE(has_land);
}

TEST(Lower, CseUnifiesIndexExpressions) {
  const auto p = lower_src(R"(
    struct Packet { int a; };
    int r[8] = {0};
    void f(struct Packet p) {
      r[p.a % 8] = r[p.a % 8] + 1;
    }
  )");
  // Read and write must use the same index operand (one `%` computation).
  ir::Operand read_idx, write_idx;
  for (const auto& i : p.instrs) {
    if (i.op == ir::TacOp::kRegRead) read_idx = i.index;
    if (i.op == ir::TacOp::kRegWrite) write_idx = i.index;
  }
  EXPECT_FALSE(read_idx.is_const);
  EXPECT_EQ(read_idx.slot, write_idx.slot);
  std::size_t mods = 0;
  for (const auto& i : p.instrs) {
    if (i.op == ir::TacOp::kBin && i.bin == ir::BinOp::kMod) ++mods;
  }
  EXPECT_EQ(mods, 1u);
}

TEST(Lower, RegisterReadsAreNeverCse) {
  const auto p = lower_src(R"(
    struct Packet { int a; int b; };
    int r = 0;
    void f(struct Packet p) {
      p.a = r;
      p.b = r;
    }
  )");
  EXPECT_EQ(count_op(p, ir::TacOp::kRegRead), 2u);
}

TEST(Lower, ScalarRegisterUsesIndexZero) {
  const auto p = lower_src(R"(
    struct Packet { int a; };
    int c = 7;
    void f(struct Packet p) { c = c + p.a; }
  )");
  for (const auto& i : p.instrs) {
    if (i.op == ir::TacOp::kRegRead || i.op == ir::TacOp::kRegWrite) {
      EXPECT_TRUE(i.index.is_const);
      EXPECT_EQ(i.index.constant, 0);
    }
  }
}

TEST(Lower, BuiltinArityChecked) {
  EXPECT_THROW(lower_src(R"(
    struct Packet { int a; };
    void f(struct Packet p) { p.a = hash2(1); }
  )"),
               SemanticError);
  EXPECT_THROW(lower_src(R"(
    struct Packet { int a; };
    void f(struct Packet p) { p.a = max(1, 2, 3); }
  )"),
               SemanticError);
  EXPECT_THROW(lower_src(R"(
    struct Packet { int a; };
    void f(struct Packet p) { p.a = nosuch(1); }
  )"),
               SemanticError);
}

TEST(Lower, UndeclaredIdentifiersRejected) {
  EXPECT_THROW(lower_src(R"(
    struct Packet { int a; };
    void f(struct Packet p) { p.zzz = 1; }
  )"),
               SemanticError);
  EXPECT_THROW(lower_src(R"(
    struct Packet { int a; };
    void f(struct Packet p) { p.a = ghost; }
  )"),
               SemanticError);
  EXPECT_THROW(lower_src(R"(
    struct Packet { int a; };
    void f(struct Packet p) { q.a = 1; }
  )"),
               SemanticError);
  EXPECT_THROW(lower_src(R"(
    struct Packet { int a; };
    const int K = 2;
    void f(struct Packet p) { K = 3; }
  )"),
               SemanticError);
}

} // namespace
} // namespace mp5::domino
