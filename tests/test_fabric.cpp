// Fabric subsystem tests: topology validation, WCMP hashing statistics,
// workload determinism/resumability, fabric-level seeded reproducibility
// (same seed -> identical FabricResult, field by field), packet
// conservation under every load-balancing mode, and graceful degradation
// under switch/link fault plans.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "fabric/fabric.hpp"
#include "fabric/topology.hpp"
#include "fabric/wcmp.hpp"
#include "fabric/workload.hpp"

namespace mp5::fabric {
namespace {

// A fabric small enough to run in milliseconds but big enough to exercise
// multi-spine load balancing: 4 leaves x 2 spines, 64 hosts.
FabricOptions small_options(LbMode lb, std::uint64_t seed = 7) {
  FabricOptions o;
  o.topology.leaves = 4;
  o.topology.spines = 2;
  o.topology.hosts_per_leaf = 16;
  o.lb = lb;
  o.workload.flows = 400;
  o.workload.flow_rate = 0.5;
  o.workload.mean_lifetime = 600.0;
  o.workload.max_flow_packets = 8;
  o.workload.seed = seed;
  o.seed = seed;
  o.pipelines = 4;
  o.max_cycles = 2'000'000;
  return o;
}

// ---------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------

TEST(FabricTopology, ValidateRejectsDegenerateShapes) {
  FabricTopology topo;
  topo.leaves = 0;
  EXPECT_THROW(topo.validate(), ConfigError);
  topo = FabricTopology{};
  topo.spines = 0;
  EXPECT_THROW(topo.validate(), ConfigError);
  topo = FabricTopology{};
  topo.hosts_per_leaf = 0;
  EXPECT_THROW(topo.validate(), ConfigError);
  topo = FabricTopology{};
  topo.link_latency = 0; // same-cycle hops would break the step order
  EXPECT_THROW(topo.validate(), ConfigError);
  topo = FabricTopology{};
  topo.link_bytes_per_cycle = 0.0;
  EXPECT_THROW(topo.validate(), ConfigError);
  topo = FabricTopology{};
  topo.spine_weights = {1.0}; // wrong arity for 2 spines
  EXPECT_THROW(topo.validate(), ConfigError);
  topo = FabricTopology{};
  topo.spine_weights = {0.0, 0.0}; // no usable spine at all
  EXPECT_THROW(topo.validate(), ConfigError);
  topo = FabricTopology{};
  EXPECT_NO_THROW(topo.validate());
}

TEST(FabricTopology, NamesRoundTrip) {
  FabricTopology topo;
  topo.leaves = 3;
  topo.spines = 2;
  for (SwitchId id = 0; id < topo.num_switches(); ++id) {
    EXPECT_EQ(topo.switch_by_name(topo.switch_name(id)), id);
  }
  EXPECT_EQ(topo.switch_name(0), "leaf0");
  EXPECT_EQ(topo.switch_name(3), "spine0");
  EXPECT_THROW(topo.switch_by_name("leaf9"), ConfigError);
  EXPECT_THROW(topo.switch_by_name("core0"), ConfigError);
}

TEST(FabricTopology, LinkIdsAreDenseAndDirectional) {
  FabricTopology topo;
  topo.leaves = 4;
  topo.spines = 3;
  std::set<LinkId> seen;
  for (SwitchId l = 0; l < topo.leaves; ++l) {
    for (std::uint32_t s = 0; s < topo.spines; ++s) {
      const LinkId up = topo.uplink(l, s);
      const LinkId down = topo.downlink(s, l);
      EXPECT_TRUE(topo.is_uplink(up));
      EXPECT_FALSE(topo.is_uplink(down));
      EXPECT_EQ(topo.link_from(up), l);
      EXPECT_EQ(topo.link_to(up), topo.spine_id(s));
      EXPECT_EQ(topo.link_from(down), topo.spine_id(s));
      EXPECT_EQ(topo.link_to(down), l);
      // A spine ingress port names the source leaf; a leaf ingress port
      // comes after the host ports.
      EXPECT_EQ(topo.ingress_port(up), l);
      EXPECT_EQ(topo.ingress_port(down), topo.hosts_per_leaf + s);
      seen.insert(up);
      seen.insert(down);
    }
  }
  EXPECT_EQ(seen.size(), topo.num_links());
  EXPECT_EQ(*seen.rbegin(), topo.num_links() - 1);
}

TEST(FabricTopology, HostMapping) {
  FabricTopology topo;
  topo.leaves = 4;
  topo.hosts_per_leaf = 16;
  EXPECT_EQ(topo.num_hosts(), 64u);
  EXPECT_EQ(topo.leaf_of_host(0), 0u);
  EXPECT_EQ(topo.leaf_of_host(17), 1u);
  EXPECT_EQ(topo.host_port(17), 1u);
  EXPECT_EQ(topo.leaf_of_host(63), 3u);
}

// ---------------------------------------------------------------------
// WCMP hashing
// ---------------------------------------------------------------------

FiveTuple tuple_for(std::uint32_t i) {
  FiveTuple t;
  t.src = i * 2654435761u;
  t.dst = ~t.src;
  t.sport = static_cast<std::uint16_t>(i * 31 + 7);
  t.dport = static_cast<std::uint16_t>(i * 17 + 3);
  t.proto = 6;
  return t;
}

TEST(Wcmp, EqualWeightsSpreadUniformly) {
  // Chi-squared uniformity check over 4 equal paths. With 8000 draws and
  // 3 degrees of freedom the 99.9% critical value is 16.27; a sound hash
  // passes with huge margin, a broken one (constant, low-entropy) fails.
  const int kPaths = 4;
  const int kDraws = 8000;
  WcmpHasher hasher(HashAlg::kFiveTuple, 0, std::vector<double>(kPaths, 1.0));
  std::vector<int> counts(kPaths, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[hasher.pick(tuple_for(i))];
  const double expected = static_cast<double>(kDraws) / kPaths;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 16.27) << "chi-squared uniformity rejected";
}

TEST(Wcmp, WeightsShapeTheSplit) {
  // 3:1 weights should put ~75% of flows on path 0.
  WcmpHasher hasher(HashAlg::kFiveTuple, 0, {3.0, 1.0});
  int on0 = 0;
  const int kDraws = 8000;
  for (int i = 0; i < kDraws; ++i) {
    if (hasher.pick(tuple_for(i)) == 0) ++on0;
  }
  const double frac = static_cast<double>(on0) / kDraws;
  EXPECT_NEAR(frac, 0.75, 0.03);
}

TEST(Wcmp, ZeroWeightPathIsNeverPicked) {
  WcmpHasher hasher(HashAlg::kFiveTuple, 0, {1.0, 0.0, 1.0});
  for (int i = 0; i < 4000; ++i) {
    EXPECT_NE(hasher.pick(tuple_for(i)), 1u);
  }
}

TEST(Wcmp, SaltChangesTheSpread) {
  // Changing the salt must re-shuffle flow->path assignments (the CLI's
  // --salt exists exactly so two fabrics don't polarize identically).
  WcmpHasher a(HashAlg::kFiveTuple, 0, {1.0, 1.0});
  WcmpHasher b(HashAlg::kFiveTuple, 0xfeedface, {1.0, 1.0});
  int moved = 0;
  const int kDraws = 4000;
  for (int i = 0; i < kDraws; ++i) {
    if (a.pick(tuple_for(i)) != b.pick(tuple_for(i))) ++moved;
  }
  // Independent uniform picks disagree half the time.
  EXPECT_NEAR(static_cast<double>(moved) / kDraws, 0.5, 0.05);
}

TEST(Wcmp, HashAlgSelectsFields) {
  // AddressesOnly must ignore ports; FiveTuple must not.
  WcmpHasher addr(HashAlg::kAddressesOnly, 0, {1.0, 1.0, 1.0, 1.0});
  WcmpHasher full(HashAlg::kFiveTuple, 0, {1.0, 1.0, 1.0, 1.0});
  FiveTuple t = tuple_for(11);
  FiveTuple t2 = t;
  t2.sport ^= 0x1234;
  EXPECT_EQ(addr.hash(t), addr.hash(t2));
  EXPECT_NE(full.hash(t), full.hash(t2));
}

TEST(Wcmp, SetWeightsRejectsAllZero) {
  WcmpHasher hasher(HashAlg::kFiveTuple, 0, {1.0, 1.0});
  EXPECT_THROW(hasher.set_weights({0.0, 0.0}), ConfigError);
  EXPECT_NO_THROW(hasher.set_weights({0.0, 2.0}));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(hasher.pick(tuple_for(i)), 1u);
  }
}

TEST(Wcmp, ParseHashAlgNamesAndAliases) {
  EXPECT_EQ(parse_hash_alg("addresses"), HashAlg::kAddressesOnly);
  EXPECT_EQ(parse_hash_alg("five-tuple"), HashAlg::kFiveTuple);
  EXPECT_EQ(parse_hash_alg("5-tuple"), HashAlg::kFiveTuple);
  EXPECT_THROW(parse_hash_alg("crc16"), ConfigError);
}

// ---------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------

TEST(FabricWorkload, SameSeedSameStream) {
  FabricWorkloadConfig cfg;
  cfg.flows = 500;
  cfg.seed = 42;
  FabricWorkload a(cfg, 64), b(cfg, 64);
  while (true) {
    const FabricPacketEvent* ea = a.peek();
    const FabricPacketEvent* eb = b.peek();
    ASSERT_EQ(ea == nullptr, eb == nullptr);
    if (!ea) break;
    EXPECT_DOUBLE_EQ(ea->time, eb->time);
    EXPECT_EQ(ea->flow, eb->flow);
    EXPECT_EQ(ea->pkt_index, eb->pkt_index);
    EXPECT_EQ(ea->src_host, eb->src_host);
    EXPECT_EQ(ea->dst_host, eb->dst_host);
    a.advance();
    b.advance();
  }
  EXPECT_EQ(a.emitted(), b.emitted());
  EXPECT_GT(a.emitted(), cfg.flows); // multi-packet flows exist
}

TEST(FabricWorkload, StreamIsTimeOrderedAndComplete) {
  FabricWorkloadConfig cfg;
  cfg.flows = 300;
  cfg.seed = 9;
  FabricWorkload w(cfg, 64);
  double last_time = -1.0;
  std::map<std::uint64_t, std::uint32_t> seen, expect;
  while (const FabricPacketEvent* ev = w.peek()) {
    EXPECT_GE(ev->time, last_time);
    last_time = ev->time;
    EXPECT_LT(ev->src_host, 64u);
    EXPECT_LT(ev->dst_host, 64u);
    EXPECT_NE(ev->src_host, ev->dst_host);
    EXPECT_EQ(seen[ev->flow], ev->pkt_index); // in-order within the flow
    ++seen[ev->flow];
    expect[ev->flow] = ev->pkt_count;
    w.advance();
  }
  EXPECT_EQ(seen.size(), cfg.flows);
  for (const auto& [flow, count] : seen) {
    EXPECT_EQ(count, expect[flow]) << "flow " << flow << " short";
  }
}

TEST(FabricWorkload, SkipToResumesMidStream) {
  FabricWorkloadConfig cfg;
  cfg.flows = 400;
  cfg.seed = 3;
  FabricWorkload full(cfg, 64), resumed(cfg, 64);
  for (int i = 0; i < 1000; ++i) full.advance();
  resumed.skip_to(1000);
  EXPECT_EQ(resumed.emitted(), 1000u);
  for (int i = 0; i < 500; ++i) {
    const FabricPacketEvent* ea = full.peek();
    const FabricPacketEvent* eb = resumed.peek();
    ASSERT_EQ(ea == nullptr, eb == nullptr);
    if (!ea) break;
    EXPECT_DOUBLE_EQ(ea->time, eb->time);
    EXPECT_EQ(ea->flow, eb->flow);
    EXPECT_EQ(ea->pkt_index, eb->pkt_index);
    full.advance();
    resumed.advance();
  }
}

TEST(FabricWorkload, ZipfMeanIsWithinRange) {
  const double mean = zipf_mean_packets(16, 1.2);
  EXPECT_GT(mean, 1.0);
  EXPECT_LT(mean, 16.0);
}

// ---------------------------------------------------------------------
// Fabric: determinism, conservation, load balancing
// ---------------------------------------------------------------------

TEST(Fabric, SameSeedSameResultEveryLbMode) {
  // The reproducibility contract: two FabricSimulators built from the
  // same options produce field-by-field identical FabricResults.
  for (const LbMode lb :
       {LbMode::kEcmp, LbMode::kWcmp, LbMode::kFlowlet, LbMode::kConga}) {
    const FabricOptions opts = small_options(lb);
    FabricSimulator sim_a(opts);
    FabricSimulator sim_b(opts);
    const FabricResult a = sim_a.run();
    const FabricResult b = sim_b.run();
    std::string why;
    EXPECT_TRUE(same_fabric_results(a, b, &why))
        << lb_mode_name(lb) << ": " << why;
    EXPECT_TRUE(a.conserved());
    EXPECT_GT(a.injected, 0u);
    EXPECT_EQ(a.delivered, a.injected) << lb_mode_name(lb);
    EXPECT_FALSE(a.truncated);
  }
}

TEST(Fabric, DifferentSeedsDiffer) {
  const FabricResult a = FabricSimulator(small_options(LbMode::kConga, 7)).run();
  const FabricResult b = FabricSimulator(small_options(LbMode::kConga, 8)).run();
  std::string why;
  EXPECT_FALSE(same_fabric_results(a, b, &why));
  EXPECT_FALSE(why.empty());
}

TEST(Fabric, EcmpUsesEverySpineAndSaltReshuffles) {
  FabricOptions opts = small_options(LbMode::kEcmp);
  const FabricResult a = FabricSimulator(opts).run();
  // Every uplink carried traffic (2 spines, hundreds of flows).
  for (const FabricLinkResult& l : a.links) {
    if (l.uplink) {
      EXPECT_GT(l.packets, 0u) << l.name;
    }
  }
  // A different salt moves flows to different uplinks.
  opts.salt = 0xabcdef;
  const FabricResult b = FabricSimulator(opts).run();
  bool some_link_changed = false;
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    if (a.links[i].uplink && a.links[i].packets != b.links[i].packets) {
      some_link_changed = true;
    }
  }
  EXPECT_TRUE(some_link_changed);
  EXPECT_EQ(b.delivered, b.injected);
}

TEST(Fabric, WcmpHonorsSpineWeights) {
  FabricOptions opts = small_options(LbMode::kWcmp);
  opts.topology.spine_weights = {3.0, 1.0};
  const FabricResult r = FabricSimulator(opts).run();
  EXPECT_EQ(r.delivered, r.injected);
  std::uint64_t on0 = 0, on1 = 0;
  for (const FabricLinkResult& l : r.links) {
    if (!l.uplink) continue;
    if (l.to == opts.topology.spine_id(0)) on0 += l.packets;
    else on1 += l.packets;
  }
  EXPECT_GT(on0, 0u);
  EXPECT_GT(on1, 0u);
  // 3:1 weights: spine0 should carry clearly more than half. Flow sizes
  // are Zipf-skewed so the packet split is noisier than the flow split.
  EXPECT_GT(static_cast<double>(on0) / (on0 + on1), 0.55);
}

TEST(Fabric, ConservationHoldsUnderBoundedFifos) {
  // Tight per-stage FIFOs make the switches drop; every drop must land in
  // the fabric ledger with fate `in_switch` and conservation must hold.
  FabricOptions opts = small_options(LbMode::kFlowlet);
  opts.fifo_capacity = 2;
  opts.workload.flow_rate = 2.0; // enough pressure to overflow
  const FabricResult r = FabricSimulator(opts).run();
  EXPECT_TRUE(r.conserved());
  EXPECT_EQ(r.injected, r.delivered + r.dropped_total() + r.in_flight_end);
}

TEST(Fabric, TruncatedRunAccountsInFlight) {
  FabricOptions opts = small_options(LbMode::kConga);
  opts.max_cycles = 300; // far before the workload drains
  const FabricResult r = FabricSimulator(opts).run();
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.cycles_run, 300u);
  EXPECT_TRUE(r.conserved());
  EXPECT_GT(r.in_flight_end, 0u);
}

TEST(Fabric, PerSwitchResultsArePopulated) {
  const FabricOptions opts = small_options(LbMode::kConga);
  const FabricResult r = FabricSimulator(opts).run();
  ASSERT_EQ(r.switches.size(), opts.topology.num_switches());
  std::uint64_t spine_offered = 0;
  for (SwitchId id = 0; id < r.switches.size(); ++id) {
    const FabricSwitchResult& s = r.switches[id];
    EXPECT_EQ(s.name, opts.topology.switch_name(id));
    EXPECT_FALSE(s.killed);
    EXPECT_GT(s.sim.offered, 0u) << s.name;
    if (opts.topology.is_spine(id)) spine_offered += s.sim.offered;
  }
  // Each spine hop is one switch traversal; spine offered equals uplink
  // traffic.
  std::uint64_t uplink_pkts = 0;
  for (const FabricLinkResult& l : r.links) {
    if (l.uplink) uplink_pkts += l.packets;
  }
  EXPECT_EQ(spine_offered, uplink_pkts);
  // Utilization is a fraction of the run, and some uplink was busy.
  double max_util = 0.0;
  for (const FabricLinkResult& l : r.links) {
    EXPECT_GE(l.utilization, 0.0);
    EXPECT_LE(l.utilization, 1.0);
    max_util = std::max(max_util, l.utilization);
  }
  EXPECT_GT(max_util, 0.0);
  EXPECT_GE(r.uplink_util_skew, 1.0);
}

TEST(Fabric, FctAndLatencyAreMeasured) {
  const FabricResult r =
      FabricSimulator(small_options(LbMode::kFlowlet)).run();
  EXPECT_GT(r.fct_count, 0u);
  EXPECT_GT(r.fct_p50, 0.0);
  EXPECT_LE(r.fct_p50, r.fct_p90);
  EXPECT_LE(r.fct_p90, r.fct_p99);
  EXPECT_LE(r.fct_p99, r.fct_max);
  // Minimum end-to-end latency is two link crossings plus switch time.
  EXPECT_GT(r.latency_p50, 0.0);
  EXPECT_LE(r.latency_p50, r.latency_p99);
  EXPECT_EQ(r.flows_fully_delivered, r.flows_total);
}

// ---------------------------------------------------------------------
// Faults: graceful degradation (the acceptance criterion)
// ---------------------------------------------------------------------

TEST(FabricFaults, KillingASpineDegradesGracefully) {
  // Kill one of the two spines mid-run. Packets inside it drop with fate
  // `switch_killed`, traffic already heading there drops with fate
  // `dead_destination`, everything else reroutes via the survivor, and
  // the conservation ledger still balances exactly.
  FabricOptions opts = small_options(LbMode::kConga);
  FabricFaultEvent ev;
  ev.kind = FabricFaultEvent::Kind::kKillSwitch;
  ev.target = opts.topology.spine_id(1);
  ev.cycle = 400;
  opts.faults.events.push_back(ev);

  const FabricResult r = FabricSimulator(opts).run();
  EXPECT_TRUE(r.conserved());
  EXPECT_FALSE(r.truncated);
  // The fabric kept working: the overwhelming majority still delivered.
  EXPECT_GT(r.delivered, r.injected * 9 / 10);
  // The killed switch is marked, with its kill cycle.
  const FabricSwitchResult& dead = r.switches[opts.topology.spine_id(1)];
  EXPECT_TRUE(dead.killed);
  EXPECT_EQ(dead.killed_at, 400u);
  // Post-kill the dead spine's uplinks carried nothing more... but its
  // links are flagged.
  for (const FabricLinkResult& l : r.links) {
    if (l.to == opts.topology.spine_id(1) ||
        l.from == opts.topology.spine_id(1)) {
      EXPECT_TRUE(l.killed) << l.name;
    } else {
      EXPECT_FALSE(l.killed) << l.name;
    }
  }
  // Determinism holds under faults too.
  const FabricResult r2 = FabricSimulator(opts).run();
  std::string why;
  EXPECT_TRUE(same_fabric_results(r, r2, &why)) << why;
}

TEST(FabricFaults, KillingASpineShiftsEcmpWeights) {
  // Under ECMP the hasher must stop picking the dead spine: everything
  // injected after the kill rides the survivor and still delivers.
  FabricOptions opts = small_options(LbMode::kEcmp);
  FabricFaultEvent ev;
  ev.kind = FabricFaultEvent::Kind::kKillSwitch;
  ev.target = opts.topology.spine_id(0);
  ev.cycle = 300;
  opts.faults.events.push_back(ev);
  const FabricResult r = FabricSimulator(opts).run();
  EXPECT_TRUE(r.conserved());
  EXPECT_GT(r.delivered, r.injected * 9 / 10);
  EXPECT_GT(r.dropped_total(), 0u);
}

TEST(FabricFaults, KillingOneLinkReroutes) {
  // A single dead uplink is routed around (the other spine still reaches
  // every leaf): no packet needs to be lost after the fault settles.
  FabricOptions opts = small_options(LbMode::kFlowlet);
  FabricFaultEvent ev;
  ev.kind = FabricFaultEvent::Kind::kKillLink;
  ev.link = opts.topology.uplink(0, 0); // leaf0 -> spine0
  ev.cycle = 500;
  opts.faults.events.push_back(ev);
  const FabricResult r = FabricSimulator(opts).run();
  EXPECT_TRUE(r.conserved());
  EXPECT_GT(r.delivered, r.injected * 95 / 100);
  EXPECT_TRUE(r.links[opts.topology.uplink(0, 0)].killed);
}

TEST(FabricFaults, PlanValidationCatchesBadTargets) {
  FabricTopology topo; // 4 x 2
  FabricFaultPlan plan;
  FabricFaultEvent ev;
  ev.kind = FabricFaultEvent::Kind::kKillSwitch;
  ev.target = topo.num_switches(); // out of range
  plan.events.push_back(ev);
  EXPECT_THROW(plan.validate(topo), ConfigError);
  plan.events.clear();
  ev.kind = FabricFaultEvent::Kind::kKillLink;
  ev.target = 0;
  ev.link = topo.num_links(); // out of range
  plan.events.push_back(ev);
  EXPECT_THROW(plan.validate(topo), ConfigError);
}

TEST(Fabric, ParseLbModeNamesAndErrors) {
  EXPECT_EQ(parse_lb_mode("ecmp"), LbMode::kEcmp);
  EXPECT_EQ(parse_lb_mode("wcmp"), LbMode::kWcmp);
  EXPECT_EQ(parse_lb_mode("flowlet"), LbMode::kFlowlet);
  EXPECT_EQ(parse_lb_mode("conga"), LbMode::kConga);
  EXPECT_THROW(parse_lb_mode("hula"), ConfigError);
  for (const LbMode lb :
       {LbMode::kEcmp, LbMode::kWcmp, LbMode::kFlowlet, LbMode::kConga}) {
    EXPECT_EQ(parse_lb_mode(lb_mode_name(lb)), lb);
  }
}

TEST(Fabric, RejectsBadOptions) {
  FabricOptions opts = small_options(LbMode::kConga);
  opts.topology.leaves = 0;
  EXPECT_THROW(FabricSimulator{opts}, ConfigError);
  opts = small_options(LbMode::kWcmp);
  opts.topology.spine_weights = {1.0, 2.0, 3.0}; // arity mismatch
  EXPECT_THROW(FabricSimulator{opts}, ConfigError);
  opts = small_options(LbMode::kConga);
  opts.pipelines = 0;
  EXPECT_THROW(FabricSimulator{opts}, ConfigError);
}

} // namespace
} // namespace mp5::fabric
