// Streaming trace sources (ISSUE 6): every implementation must yield the
// exact item sequence of the materialized trace, reposition correctly via
// skip_to, and reject malformed inputs with errors instead of UB.
#include <fstream>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "apps/programs.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "metrics/sim_result.hpp"
#include "mp5/simulator.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_source.hpp"
#include "test_util.hpp"

namespace mp5 {
namespace {

Trace small_trace(std::size_t packets, std::size_t fields = 2) {
  Rng rng(7);
  return test::trace_from_fields(
      test::random_fields(packets, fields, 512, rng), /*pipelines=*/4);
}

void expect_same_stream(TraceSource& source, const Trace& want) {
  std::size_t i = 0;
  for (const TraceItem* item; (item = source.peek()) != nullptr;
       source.advance(), ++i) {
    ASSERT_LT(i, want.size());
    EXPECT_EQ(item->arrival_time, want[i].arrival_time) << "item " << i;
    EXPECT_EQ(item->port, want[i].port) << "item " << i;
    EXPECT_EQ(item->flow, want[i].flow) << "item " << i;
    EXPECT_EQ(item->fields, want[i].fields) << "item " << i;
  }
  EXPECT_EQ(i, want.size());
  EXPECT_EQ(source.consumed(), want.size());
}

TEST(VectorSource, StreamsAndSkips) {
  const Trace trace = small_trace(50);
  VectorTraceSource source(trace);
  expect_same_stream(source, trace);

  VectorTraceSource again(trace);
  again.skip_to(20);
  EXPECT_EQ(again.consumed(), 20u);
  EXPECT_EQ(again.peek()->fields, trace[20].fields);
  EXPECT_THROW(again.skip_to(trace.size() + 1), Error);
  EXPECT_EQ(*again.size(), trace.size());
}

TEST(CsvSource, RoundTripsThroughFile) {
  const Trace trace = small_trace(80);
  const std::string path = testing::TempDir() + "rt.trace.csv";
  save_trace_file(trace, path);
  CsvFileTraceSource source(path);
  expect_same_stream(source, trace);

  CsvFileTraceSource again(path);
  again.skip_to(33);
  EXPECT_EQ(again.consumed(), 33u);
  EXPECT_EQ(again.peek()->fields, trace[33].fields);
  EXPECT_THROW(again.skip_to(trace.size() + 5), Error);
}

TEST(CsvSource, RejectsUnsortedArrivals) {
  const std::string path = testing::TempDir() + "unsorted.trace.csv";
  {
    std::ofstream out(path);
    out << "10.0,1,64,0,5\n"
        << "9.0,1,64,0,6\n"; // goes backwards in time
  }
  CsvFileTraceSource source(path);
  ASSERT_NE(source.peek(), nullptr); // first line parses fine
  EXPECT_THROW(source.advance(), Error);
}

TEST(BinarySource, RoundTripsThroughFile) {
  const Trace trace = small_trace(120, 3);
  const std::string path = testing::TempDir() + "rt.tracebin";
  save_trace_bin(trace, path);
  BinaryFileTraceSource source(path);
  EXPECT_EQ(*source.size(), trace.size());
  expect_same_stream(source, trace);

  BinaryFileTraceSource again(path);
  again.skip_to(100);
  EXPECT_EQ(again.peek()->fields, trace[100].fields);
  EXPECT_THROW(again.skip_to(trace.size() + 1), Error);
}

TEST(BinarySource, RejectsBadMagic) {
  const std::string path = testing::TempDir() + "garbage.tracebin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a trace";
  }
  EXPECT_THROW(BinaryFileTraceSource{path}, Error);
}

TEST(SyntheticSource, DeterministicAndSkippable) {
  SyntheticSpec spec;
  spec.packets = 500;
  spec.field_count = 3;
  spec.seed = 42;
  SyntheticTraceSource a(spec);
  SyntheticTraceSource b(spec);
  for (std::uint64_t i = 0; i < spec.packets; ++i) {
    ASSERT_NE(a.peek(), nullptr);
    EXPECT_EQ(a.peek()->fields, b.peek()->fields);
    a.advance();
    b.advance();
  }
  EXPECT_EQ(a.peek(), nullptr);

  // skip_to is a pure reposition: item i is identical whether reached by
  // walking or jumping.
  SyntheticTraceSource walk(spec);
  for (int i = 0; i < 123; ++i) walk.advance();
  SyntheticTraceSource jump(spec);
  jump.skip_to(123);
  EXPECT_EQ(walk.peek()->arrival_time, jump.peek()->arrival_time);
  EXPECT_EQ(walk.peek()->fields, jump.peek()->fields);
  EXPECT_THROW(jump.skip_to(spec.packets + 1), Error);
}

TEST(OpenTraceSource, DispatchesOnExtension) {
  const Trace trace = small_trace(30);
  const std::string csv = testing::TempDir() + "dispatch.trace.csv";
  const std::string bin = testing::TempDir() + "dispatch.tracebin";
  save_trace_file(trace, csv);
  save_trace_bin(trace, bin);
  expect_same_stream(*open_trace_source(csv), trace);
  expect_same_stream(*open_trace_source(bin), trace);
  EXPECT_THROW(open_trace_source(testing::TempDir() + "missing.tracebin"),
               Error);
}

// The streaming run must be indistinguishable from the materialized run:
// same SimResult field-by-field, whatever the source implementation.
TEST(StreamingRun, MatchesMaterializedRun) {
  const Mp5Program prog =
      test::compile_mp5(apps::make_synthetic_source(3, 64));
  Rng rng(11);
  const Trace trace = test::trace_from_fields(
      test::random_fields(400, prog.pvsm.num_slots(), 64, rng), 4);
  const std::string bin = testing::TempDir() + "simrun.tracebin";
  save_trace_bin(trace, bin);

  SimOptions opts;
  opts.record_egress = true;
  const SimResult batch = Mp5Simulator(prog, opts).run(trace);

  auto source = open_trace_source(bin);
  const SimResult streamed = Mp5Simulator(prog, opts).run(*source);
  std::string why;
  EXPECT_TRUE(same_results(batch, streamed, &why)) << why;
}

} // namespace
} // namespace mp5
