#include <gtest/gtest.h>

#include "common/error.hpp"
#include "domino/compiler.hpp"
#include "domino/parser.hpp"

namespace mp5::domino {
namespace {

ir::Pvsm build(const std::string& src, bool serialize = true) {
  PipelineOptions opts;
  opts.serialize_stateful = serialize;
  return pipeline(lower(parse(src)), opts);
}

std::vector<RegId> stateful_stage_regs(const ir::Pvsm& p, std::size_t stage) {
  return p.stages[stage].stateful_regs();
}

std::size_t stage_of_reg(const ir::Pvsm& p, const std::string& name) {
  for (std::size_t s = 0; s < p.stages.size(); ++s) {
    for (const auto& atom : p.stages[s].atoms) {
      if (atom.stateful() && p.registers[atom.reg].name == name) return s;
    }
  }
  return static_cast<std::size_t>(-1);
}

TEST(Pipeline, RejectsDistinctIndexExpressions) {
  // The write indexes with the *new* version of p.a, so the two index
  // expressions differ semantically: a Banzai atom has one memory port.
  EXPECT_THROW(build(R"(
    struct Packet { int a; };
    int r[4] = {0};
    void f(struct Packet p) {
      p.a = r[p.a % 4];
      r[p.a % 4] = p.a + 1;
    }
  )"),
               SemanticError);
}

TEST(Pipeline, SingleAtomPerRegister) {
  const auto p = build(R"(
    struct Packet { int a; int b; };
    int r[4] = {0};
    void f(struct Packet p) {
      p.b = r[p.a % 4];
      r[p.a % 4] = p.b + 1;
    }
  )");
  std::size_t stateful_atoms = 0;
  for (const auto& stage : p.stages) {
    for (const auto& atom : stage.atoms) {
      if (atom.stateful()) {
        ++stateful_atoms;
        EXPECT_EQ(p.registers[atom.reg].name, "r");
        // Atom body holds the read, the +1, and the write.
        EXPECT_GE(atom.body.size(), 3u);
      }
    }
  }
  EXPECT_EQ(stateful_atoms, 1u);
}

TEST(Pipeline, DependentStatesLandInOrderedStages) {
  const auto p = build(R"(
    struct Packet { int a; int b; };
    int first[4] = {0};
    int second[4] = {0};
    void f(struct Packet p) {
      p.b = first[p.a % 4];
      second[p.b % 4] = second[p.b % 4] + 1;
    }
  )");
  EXPECT_LT(stage_of_reg(p, "first"), stage_of_reg(p, "second"));
}

TEST(Pipeline, SerializesIndependentStatefulAtoms) {
  const auto p = build(R"(
    struct Packet { int a; int b; };
    int x[4] = {0};
    int y[4] = {0};
    void f(struct Packet p) {
      x[p.a % 4] = x[p.a % 4] + 1;
      y[p.b % 4] = y[p.b % 4] + 1;
    }
  )");
  EXPECT_NE(stage_of_reg(p, "x"), stage_of_reg(p, "y"));
}

TEST(Pipeline, UnserializedModePacksIndependentAtoms) {
  const auto p = build(R"(
    struct Packet { int a; int b; };
    int x[4] = {0};
    int y[4] = {0};
    void f(struct Packet p) {
      x[p.a % 4] = x[p.a % 4] + 1;
      y[p.b % 4] = y[p.b % 4] + 1;
    }
  )",
                       /*serialize=*/false);
  EXPECT_EQ(stage_of_reg(p, "x"), stage_of_reg(p, "y"));
  EXPECT_EQ(stateful_stage_regs(p, stage_of_reg(p, "x")).size(), 2u);
}

TEST(Pipeline, ExclusiveGuardAtomsMayShareAStage) {
  const auto p = build(R"(
    struct Packet { int a; int v; };
    int x[4] = {0};
    int y[4] = {0};
    void f(struct Packet p) {
      if (p.a == 1) { p.v = x[p.a % 4]; } else { p.v = y[p.a % 4]; }
    }
  )");
  EXPECT_EQ(stage_of_reg(p, "x"), stage_of_reg(p, "y"));
}

TEST(Pipeline, RejectsCyclicStateDependencies) {
  EXPECT_THROW(build(R"(
    struct Packet { int a; };
    int x = 0;
    int y = 0;
    void f(struct Packet p) {
      x = y + 1;
      y = x + 1;
    }
  )"),
               SemanticError);
}

TEST(Pipeline, GuardCycleAcrossStatesRejected) {
  // y's update is guarded by x's value and x's update by y's: not
  // implementable in a feed-forward pipeline.
  EXPECT_THROW(build(R"(
    struct Packet { int a; };
    int x = 0;
    int y = 0;
    void f(struct Packet p) {
      if (y > 0) { x = x + 1; }
      if (x > 0) { y = y + 1; }
    }
  )"),
               SemanticError);
}

TEST(Pipeline, EgressCopiesAfterAllReadersOfCanonicalSlot) {
  const auto p = build(R"(
    struct Packet { int a; int b; };
    void f(struct Packet p) {
      p.a = 5;
      p.b = p.a + p.b;
    }
  )");
  // p.b reads the *new* a (version slot); p.a's writeback must not clobber
  // the canonical slot before any reader of the *old* a. Here there are no
  // old-a readers after the write, so just sanity-check stage structure.
  EXPECT_GE(p.stages.size(), 1u);
}

TEST(Pipeline, MachineCheckRejectsTooManyStages) {
  banzai::MachineSpec tiny;
  tiny.max_stages = 2;
  // Three dependent stateful stages cannot fit two machine stages even
  // unserialized.
  EXPECT_THROW(compile(R"(
    struct Packet { int a; int b; int c; };
    int x[4] = {0};
    int y[4] = {0};
    int z[4] = {0};
    void f(struct Packet p) {
      p.a = x[p.a % 4];
      p.b = y[p.a % 4];
      p.c = z[p.b % 4];
    }
  )",
                       tiny),
               ResourceError);
}

TEST(Pipeline, CompilerFallsBackToUnserializedSchedule) {
  banzai::MachineSpec machine;
  machine.max_stages = 2; // too tight for the serialized schedule
  const auto result = compile(R"(
    struct Packet { int a; int b; };
    int x[4] = {0};
    int y[4] = {0};
    void f(struct Packet p) {
      x[p.a % 4] = x[p.a % 4] + 1;
      y[p.b % 4] = y[p.b % 4] + 1;
      p.a = p.a + 1;
    }
  )",
                              machine);
  EXPECT_FALSE(result.serialized);
}

TEST(Pipeline, StagePrinterProducesReadableDump) {
  const auto p = build(R"(
    struct Packet { int a; };
    int r[4] = {1};
    void f(struct Packet p) { r[p.a % 4] = r[p.a % 4] + p.a; }
  )");
  const auto dump = ir::to_string(p);
  EXPECT_NE(dump.find("stage 0"), std::string::npos);
  EXPECT_NE(dump.find("atom [r]"), std::string::npos);
}

} // namespace
} // namespace mp5::domino
