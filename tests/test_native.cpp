// Native multicore backend (src/native/): SPSC ring unit + concurrency
// tests, shard-ownership + ticket-ordering equivalence against the
// AstInterp oracle (committed corpus + generated-program sweep, every
// core count), and the scalability profiler's bottleneck attribution.
//
// The ring and multi-worker equivalence tests double as the TSan targets
// for this subsystem (CI runs this binary under -fsanitize=thread).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "apps/programs.hpp"
#include "common/error.hpp"
#include "domino/compiler.hpp"
#include "domino/parser.hpp"
#include "fuzz/program_gen.hpp"
#include "fuzz/repro.hpp"
#include "fuzz/trace_gen.hpp"
#include "mp5/transform.hpp"
#include "native/backend.hpp"
#include "native/oracle.hpp"
#include "native/spsc_ring.hpp"
#include "trace/trace_source.hpp"

#ifndef MP5_CORPUS_DIR
#error "MP5_CORPUS_DIR must point at the committed reproducer corpus"
#endif

namespace mp5::test {
namespace {

// ---- SpscRing --------------------------------------------------------------

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(native::SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(native::SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(native::SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(native::SpscRing<int>(1024).capacity(), 1024u);
  EXPECT_EQ(native::SpscRing<int>(1025).capacity(), 2048u);
}

TEST(SpscRing, FifoOrderAndFullEmptyBoundaries) {
  native::SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty_consumer());
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99)) << "5th push into a 4-slot ring";
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.empty_consumer());
}

TEST(SpscRing, BatchPushAcceptsOnlyWhatFits) {
  native::SpscRing<int> ring(4);
  const int items[6] = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(ring.push_batch(items, 6), 4u);
  EXPECT_EQ(ring.push_batch(items, 6), 0u);
  int out[6] = {};
  EXPECT_EQ(ring.pop_batch(out, 2), 2u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 1);
  EXPECT_EQ(ring.push_batch(items + 4, 2), 2u);
  // The consumer's cached producer index may lag (it only re-reads the
  // shared atomic when the cache looks empty), so draining can take more
  // than one call — what matters is nothing is lost or reordered.
  std::size_t drained = 0;
  while (drained < 4) {
    const std::size_t n = ring.pop_batch(out + drained, 6 - drained);
    if (n == 0) break;
    drained += n;
  }
  ASSERT_EQ(drained, 4u);
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(out[3], 5);
}

TEST(SpscRing, TwoThreadStressPreservesOrderAndLosesNothing) {
  // TSan target: a small ring forces constant wrap-around and full/empty
  // transitions between a real producer and consumer thread.
  constexpr std::uint64_t kItems = 200000;
  native::SpscRing<std::uint64_t> ring(64);
  std::thread producer([&ring] {
    std::uint64_t next = 0;
    std::uint64_t buf[17];
    while (next < kItems) {
      std::size_t n = 0;
      while (n < 17 && next + n < kItems) {
        buf[n] = next + n;
        ++n;
      }
      std::size_t sent = 0;
      while (sent < n) {
        sent += ring.push_batch(buf + sent, n - sent);
        // Yield, not pause: on a single-hardware-thread host a spinning
        // producer would burn whole scheduler quanta the consumer needs.
        if (sent < n) std::this_thread::yield();
      }
      next += n;
    }
  });
  std::uint64_t expect = 0;
  std::uint64_t buf[23];
  bool ordered = true;
  while (expect < kItems) {
    const std::size_t n = ring.pop_batch(buf, 23);
    for (std::size_t i = 0; i < n; ++i) ordered = ordered && buf[i] == expect++;
    if (n == 0) std::this_thread::yield();
  }
  producer.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(expect, kItems);
  EXPECT_TRUE(ring.empty_consumer());
}

// ---- backend helpers -------------------------------------------------------

struct CompiledProgram {
  domino::Ast ast;
  Mp5Program program;
};

CompiledProgram compile_source(const std::string& source) {
  CompiledProgram out;
  out.ast = domino::parse(source);
  const auto compiled =
      domino::compile(out.ast, banzai::MachineSpec{}, /*reserve_stages=*/1);
  out.program = transform(compiled.pvsm);
  return out;
}

Trace synthetic_trace(std::size_t fields, std::uint64_t packets,
                      std::uint64_t seed, Value bound = 64) {
  Rng rng(seed);
  Trace trace;
  for (std::uint64_t n = 0; n < packets; ++n) {
    TraceItem item;
    item.port = static_cast<std::uint32_t>(n % 8);
    for (std::size_t f = 0; f < fields; ++f) {
      item.fields.push_back(rng.next_in(0, bound - 1));
    }
    trace.push_back(std::move(item));
  }
  return trace;
}

native::NativeResult run_native(const CompiledProgram& cp, const Trace& trace,
                                native::NativeOptions opts) {
  opts.record_egress = true;
  opts.pin_threads = false; // meaningless on shared CI cores
  native::NativeBackend backend(cp.program, opts);
  VectorTraceSource source(trace);
  return backend.run(source);
}

void expect_oracle_equivalent(const CompiledProgram& cp, const Trace& trace,
                              const native::NativeOptions& opts,
                              const std::string& what) {
  const auto result = run_native(cp, trace, opts);
  const auto check =
      native::check_against_oracle(cp.ast, cp.program, trace, result);
  EXPECT_TRUE(check.equivalent)
      << what << " (cores=" << opts.workers << "): "
      << check.first_difference;
}

// ---- option validation -----------------------------------------------------

TEST(NativeBackend, RejectsUnusableOptions) {
  const auto cp = compile_source(apps::packet_counter_source());
  auto with = [](auto mutate) {
    native::NativeOptions opts;
    mutate(opts);
    return opts;
  };
  EXPECT_THROW(native::NativeBackend(cp.program, with([](auto& o) {
                                       o.workers = 0;
                                     })),
               ConfigError);
  EXPECT_THROW(native::NativeBackend(cp.program, with([](auto& o) {
                                       o.workers = 65;
                                     })),
               ConfigError);
  EXPECT_THROW(native::NativeBackend(cp.program, with([](auto& o) {
                                       o.batch = 0;
                                     })),
               ConfigError);
  EXPECT_THROW(native::NativeBackend(cp.program, with([](auto& o) {
                                       o.ring_capacity = o.batch;
                                     })),
               ConfigError);
  EXPECT_THROW(native::NativeBackend(cp.program, with([](auto& o) {
                                       o.pool_packets = o.batch;
                                     })),
               ConfigError);
}

// ---- equivalence: apps x cores x policies ----------------------------------

TEST(NativeBackend, BuiltinAppsMatchOracleAcrossCoresAndPolicies) {
  const std::vector<std::string> sources = {
      apps::packet_counter_source(), apps::figure3_source()};
  std::vector<std::string> names = {"counter", "figure3"};
  for (const auto& app : apps::real_apps()) {
    if (app.name == "flowlet" || app.name == "count_min") {
      names.push_back(app.name);
    }
  }
  std::vector<CompiledProgram> programs;
  for (const auto& src : sources) programs.push_back(compile_source(src));
  for (const auto& app : apps::real_apps()) {
    if (app.name == "flowlet" || app.name == "count_min") {
      programs.push_back(compile_source(app.source));
    }
  }
  for (std::size_t p = 0; p < programs.size(); ++p) {
    const Trace trace =
        synthetic_trace(programs[p].ast.fields.size(), 3000, 7 + p);
    for (const std::uint32_t cores : {1u, 2u, 4u}) {
      for (const ShardingPolicy policy :
           {ShardingPolicy::kDynamic, ShardingPolicy::kStaticRandom,
            ShardingPolicy::kSinglePipeline, ShardingPolicy::kIdealLpt}) {
        native::NativeOptions opts;
        opts.workers = cores;
        opts.policy = policy;
        opts.rebalance_packets = 512; // exercise migration mid-run
        expect_oracle_equivalent(programs[p], trace, opts, names[p]);
      }
    }
  }
}

// ---- equivalence: committed corpus -----------------------------------------

TEST(NativeBackend, CorpusReproducersMatchOracleAtEveryCoreCount) {
  std::vector<std::string> entries;
  for (const auto& item :
       std::filesystem::directory_iterator(MP5_CORPUS_DIR)) {
    if (item.path().extension() == ".json") {
      entries.push_back(item.path().string());
    }
  }
  std::sort(entries.begin(), entries.end());
  ASSERT_GE(entries.size(), 1u);
  std::size_t replayed = 0;
  for (const std::string& path : entries) {
    SCOPED_TRACE(path);
    const fuzz::Reproducer repro = fuzz::load_reproducer(path);
    // Self-test entries exist to *diverge* (deliberately broken oracle);
    // only regression witnesses carry the equivalence obligation.
    if (repro.kind != fuzz::FailureKind::kNone || repro.inject_floor_mod_bug) {
      continue;
    }
    const auto cp = compile_source(repro.program_source);
    for (const std::uint32_t cores : {1u, 2u, 4u}) {
      native::NativeOptions opts;
      opts.workers = cores;
      opts.rebalance_packets = 256;
      expect_oracle_equivalent(cp, repro.trace, opts, path);
    }
    ++replayed;
  }
  EXPECT_GE(replayed, 1u) << "no pass-expecting corpus entries replayed";
}

// ---- equivalence: generated-program sweep ----------------------------------

TEST(NativeBackend, GeneratedProgramSweepMatchesOracleAtEveryCoreCount) {
  // The acceptance bar is >= 20 *compiling* programs, so keep drawing
  // seeds until 20 have been cross-checked (many seeds are legitimately
  // rejected by the compiler — cyclic state dependencies etc.).
  constexpr std::uint64_t kTarget = 20;
  constexpr std::uint64_t kMaxSeeds = 200;
  fuzz::ProgramGen::Options gopts;
  std::uint64_t checked = 0;
  for (std::uint64_t seed = 1; seed <= kMaxSeeds && checked < kTarget;
       ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    fuzz::ProgramGen gen(seed, gopts);
    const std::string source = gen.generate();
    CompiledProgram cp;
    try {
      cp = compile_source(source);
    } catch (const Error&) {
      continue;
    }
    const Trace trace = fuzz::generate_trace(seed, cp.ast.fields.size());
    for (const std::uint32_t cores : {1u, 2u, 4u}) {
      native::NativeOptions opts;
      opts.workers = cores;
      opts.rebalance_packets = 128;
      expect_oracle_equivalent(cp, trace, opts, "generated program");
    }
    ++checked;
  }
  EXPECT_EQ(checked, kTarget);
}

// ---- profiler --------------------------------------------------------------

TEST(NativeProfiler, GlobalCounterIsNamedAsTheSerializingRegister) {
  const auto cp = compile_source(apps::packet_counter_source());
  const Trace trace = synthetic_trace(cp.ast.fields.size(), 4000, 3);
  native::NativeOptions opts;
  opts.workers = 4;
  const auto result = run_native(cp, trace, opts);
  // A scalar register cannot shard: every packet's access funnels through
  // the one owner core no matter how many workers exist.
  EXPECT_EQ(result.profile.serializing_register, "count");
  EXPECT_DOUBLE_EQ(result.profile.serial_fraction, 1.0);
  const auto& regs = result.profile.registers;
  ASSERT_EQ(regs.size(), 1u);
  EXPECT_EQ(regs[0].claimed, trace.size());
  EXPECT_EQ(regs[0].performed, trace.size());
  EXPECT_EQ(regs[0].busiest_owner_accesses, trace.size());
  EXPECT_DOUBLE_EQ(regs[0].owner_share, 1.0);
}

TEST(NativeProfiler, ShardableStateSpreadsOwnershipAcrossWorkers) {
  // flowlet's per-flow arrays shard by index: with many flows no single
  // owner should hold everything once rebalancing has run.
  const apps::AppSpec* flowlet = nullptr;
  auto all = apps::real_apps();
  for (const auto& app : all) {
    if (app.name == "flowlet") flowlet = &app;
  }
  ASSERT_NE(flowlet, nullptr);
  const auto cp = compile_source(flowlet->source);
  const Trace trace = synthetic_trace(cp.ast.fields.size(), 8000, 11, 4096);
  native::NativeOptions opts;
  opts.workers = 4;
  opts.rebalance_packets = 512;
  const auto result = run_native(cp, trace, opts);
  EXPECT_GT(result.rebalances, 0u);
  EXPECT_LT(result.profile.serial_fraction, 0.9)
      << "sharded app serialized through one core";
  std::uint64_t total_claimed = 0;
  for (const auto& r : result.profile.registers) total_claimed += r.claimed;
  EXPECT_GT(total_claimed, 0u);
  const auto check =
      native::check_against_oracle(cp.ast, cp.program, trace, result);
  EXPECT_TRUE(check.equivalent) << check.first_difference;
}

TEST(NativeBackend, WorkerAccountingIsConsistent) {
  const auto cp = compile_source(apps::figure3_source());
  const Trace trace = synthetic_trace(cp.ast.fields.size(), 5000, 5);
  native::NativeOptions opts;
  opts.workers = 3;
  const auto result = run_native(cp, trace, opts);
  EXPECT_EQ(result.packets, trace.size());
  std::uint64_t stages = 0;
  for (const auto& w : result.profile.workers) stages += w.stages;
  // Every packet traverses every program stage exactly once, wherever it
  // ran.
  EXPECT_EQ(stages, trace.size() * cp.program.pvsm.stages.size());
  for (const auto& r : result.profile.registers) {
    EXPECT_LE(r.performed, r.claimed);
    EXPECT_LE(r.busiest_owner_accesses, r.claimed);
    EXPECT_GE(r.owner_share, 0.0);
    EXPECT_LE(r.owner_share, 1.0);
  }
}

} // namespace
} // namespace mp5::test
