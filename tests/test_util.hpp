// Shared helpers for the MP5 test suites.
#pragma once

#include <string>
#include <vector>

#include "banzai/single_pipeline.hpp"
#include "common/rng.hpp"
#include "domino/compiler.hpp"
#include "metrics/equivalence.hpp"
#include "mp5/simulator.hpp"
#include "mp5/transform.hpp"
#include "trace/trace.hpp"

namespace mp5::test {

/// Compile source all the way to an Mp5Program (reserving the AR stage).
inline Mp5Program compile_mp5(const std::string& source,
                              const TransformOptions& topts = {},
                              const banzai::MachineSpec& machine = {}) {
  auto compiled = domino::compile(source, machine, /*reserve_stages=*/1);
  return transform(compiled.pvsm, topts);
}

/// Build a trace directly from per-packet declared-field values, arriving
/// back to back at line rate for `pipelines` pipelines (64 B packets).
inline Trace trace_from_fields(const std::vector<std::vector<Value>>& packets,
                               std::uint32_t pipelines, double load = 1.0) {
  Trace trace;
  LineRateClock clock(pipelines, load);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    TraceItem item;
    item.arrival_time = clock.next(64);
    item.port = static_cast<std::uint32_t>(i % 64);
    item.size_bytes = 64;
    item.flow = i;
    item.fields = packets[i];
    trace.push_back(std::move(item));
  }
  return trace;
}

/// Random declared-field values in [0, bound).
inline std::vector<std::vector<Value>> random_fields(std::size_t packets,
                                                     std::size_t num_fields,
                                                     Value bound, Rng& rng) {
  std::vector<std::vector<Value>> out(packets);
  for (auto& fields : out) {
    fields.resize(num_fields);
    for (auto& v : fields) v = rng.next_in(0, bound - 1);
  }
  return out;
}

/// Run the single-pipeline reference over a trace.
inline banzai::ReferenceResult run_reference(const Mp5Program& prog,
                                             const Trace& trace) {
  banzai::ReferenceSwitch ref(prog.pvsm);
  return ref.run(to_header_batch(trace, prog.pvsm.num_slots()));
}

/// Run MP5 and check functional equivalence against the reference.
inline EquivalenceReport run_and_check(const Mp5Program& prog,
                                       const Trace& trace, SimOptions opts) {
  opts.record_egress = true;
  // Every equivalence run doubles as a watchdog run: the per-cycle
  // invariant checks must stay clean across the whole suite.
  opts.paranoid_checks = true;
  Mp5Simulator sim(prog, opts);
  const SimResult result = sim.run(trace);
  const auto reference = run_reference(prog, trace);
  return check_equivalence(prog.pvsm, reference, result);
}

} // namespace mp5::test
