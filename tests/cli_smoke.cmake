# CLI robustness smoke test, run via ctest (see tests/CMakeLists.txt).
#
# Every malformed invocation must exit nonzero with a diagnostic on
# stderr — never crash, hang, or terminate() — and a well-formed control
# invocation must still exit zero.
#
# Inputs: -DMP5C=<path> -DMP5SIM=<path> -DMP5FABRIC=<path> -DMP5NATIVE=<path>

function(expect_failure label)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "${label}: expected nonzero exit, got 0")
  endif()
  # A crash shows up as a signal name ("Segmentation fault", "Subprocess
  # aborted") instead of a small integer exit code.
  if(NOT rc MATCHES "^[0-9]+$")
    message(FATAL_ERROR "${label}: abnormal termination (${rc})")
  endif()
  if(err STREQUAL "")
    message(FATAL_ERROR "${label}: expected a diagnostic on stderr")
  endif()
endfunction()

function(expect_success label)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${label}: expected exit 0, got ${rc}: ${err}")
  endif()
endfunction()

set(workdir ${CMAKE_CURRENT_BINARY_DIR}/cli_smoke_scratch)
file(MAKE_DIRECTORY ${workdir})

# A syntactically broken Domino program.
file(WRITE ${workdir}/malformed.dom "int x = = ;;; garbage {{{\n")

# -- mp5c --
expect_failure("mp5c malformed program" ${MP5C} ${workdir}/malformed.dom)
expect_failure("mp5c missing file" ${MP5C} ${workdir}/does_not_exist.dom)
expect_failure("mp5c unknown flag" ${MP5C} --no-such-flag)
expect_failure("mp5c bad numeric flag" ${MP5C} --stages notanumber -)
expect_failure("mp5c unknown builtin" ${MP5C} --builtin nope)
expect_success("mp5c builtin control" ${MP5C} --builtin figure3)

# -- mp5sim --
expect_failure("mp5sim unknown flag" ${MP5SIM} --no-such-flag)
expect_failure("mp5sim bad numeric flag"
               ${MP5SIM} --builtin figure3 --packets notanumber)
expect_failure("mp5sim bad fail spec"
               ${MP5SIM} --builtin figure3 --fail-pipeline 2)
expect_failure("mp5sim phantom faults without channel"
               ${MP5SIM} --builtin figure3 --phantom-loss-rate 0.1)
expect_failure("mp5sim out-of-range loss rate"
               ${MP5SIM} --builtin figure3 --phantom-channel
               --phantom-loss-rate 1.5)
expect_failure("mp5sim telemetry under recirculation baseline"
               ${MP5SIM} --builtin figure3 --design recirc --telemetry)
expect_failure("mp5sim trace-out to unwritable path"
               ${MP5SIM} --builtin figure3 --packets 100
               --trace-out ${workdir}/no_such_dir/trace.json)
expect_failure("mp5sim json to unwritable path"
               ${MP5SIM} --builtin figure3 --packets 100
               --json ${workdir}/no_such_dir/results.json)
expect_success("mp5sim control run"
               ${MP5SIM} --builtin figure3 --packets 200 --paranoid)
expect_success("mp5sim telemetry exports control run"
               ${MP5SIM} --builtin figure3 --packets 400 --telemetry
               --json ${workdir}/results.json
               --trace-out ${workdir}/trace.json)
foreach(artifact results.json trace.json)
  if(NOT EXISTS ${workdir}/${artifact})
    message(FATAL_ERROR "mp5sim telemetry exports: missing ${artifact}")
  endif()
endforeach()
expect_success("mp5sim fault control run"
               ${MP5SIM} --builtin figure3 --packets 400
               --fail-pipeline 1@50:300 --paranoid)

# -- mp5sim replicated design variants (ISSUE 10) --
expect_failure("mp5sim unknown design"
               ${MP5SIM} --builtin figure3 --packets 200 --design eventual)
expect_failure("mp5sim staleness under mp5 design"
               ${MP5SIM} --builtin figure3 --packets 200 --staleness 8)
expect_failure("mp5sim zero staleness"
               ${MP5SIM} --builtin figure3 --packets 200 --design relaxed
               --staleness 0)
expect_failure("mp5sim staleness under scr design"
               ${MP5SIM} --builtin figure3 --packets 200 --design scr
               --staleness 8)
expect_failure("mp5sim threads under scr design"
               ${MP5SIM} --builtin figure3 --packets 200 --design scr
               --threads 4)
expect_failure("mp5sim event engine under relaxed design"
               ${MP5SIM} --builtin figure3 --packets 200 --design relaxed
               --engine event)
expect_failure("mp5sim timeline under scr design"
               ${MP5SIM} --builtin figure3 --packets 200 --design scr
               --timeline 50)
expect_success("mp5sim scr control run"
               ${MP5SIM} --builtin figure3 --packets 400 --design scr
               --paranoid)
expect_success("mp5sim relaxed control run"
               ${MP5SIM} --builtin figure3 --packets 400 --design relaxed
               --staleness 32 --paranoid --json ${workdir}/relaxed.json)
if(NOT EXISTS ${workdir}/relaxed.json)
  message(FATAL_ERROR "mp5sim relaxed control run: missing relaxed.json")
endif()
expect_success("mp5sim scr checkpoint control run"
               ${MP5SIM} --builtin figure3 --packets 800 --design scr
               --checkpoint-interval 50
               --checkpoint-out ${workdir}/scr.ckpt --paranoid)
if(NOT EXISTS ${workdir}/scr.ckpt)
  message(FATAL_ERROR "mp5sim scr checkpoint control run: missing scr.ckpt")
endif()
expect_success("mp5sim scr restore control run"
               ${MP5SIM} --builtin figure3 --packets 800 --design scr
               --restore ${workdir}/scr.ckpt --paranoid)
# Cross-variant restore must be refused by the config fingerprint.
expect_failure("mp5sim relaxed restore of scr checkpoint"
               ${MP5SIM} --builtin figure3 --packets 800 --design relaxed
               --staleness 32 --restore ${workdir}/scr.ckpt)

# MP5-only knobs silently ignored by --design recirc before ISSUE 10 must
# now be rejected.
expect_failure("mp5sim recirc rejects fifo-capacity"
               ${MP5SIM} --builtin figure3 --packets 200 --design recirc
               --fifo-capacity 8)
expect_failure("mp5sim recirc rejects no-fast-forward"
               ${MP5SIM} --builtin figure3 --packets 200 --design recirc
               --no-fast-forward)
expect_failure("mp5sim recirc rejects phantom-channel"
               ${MP5SIM} --builtin figure3 --packets 200 --design recirc
               --phantom-channel)
expect_failure("mp5sim recirc rejects timeline"
               ${MP5SIM} --builtin figure3 --packets 200 --design recirc
               --timeline 50)
expect_failure("mp5sim recirc rejects staleness"
               ${MP5SIM} --builtin figure3 --packets 200 --design recirc
               --staleness 8)

# -- mp5sim event engine (ISSUE 8) --
expect_failure("mp5sim unknown engine"
               ${MP5SIM} --builtin figure3 --packets 200 --engine warp)
expect_failure("mp5sim event engine under recirculation baseline"
               ${MP5SIM} --builtin figure3 --design recirc --packets 200
               --engine event)
expect_success("mp5sim event engine control run"
               ${MP5SIM} --builtin figure3 --packets 400 --engine event
               --paranoid)
expect_success("mp5sim event engine threaded fault run"
               ${MP5SIM} --builtin figure3 --packets 400 --engine event
               --threads 4 --fail-pipeline 1@50:300)

# -- mp5sim checkpoint/restore (ISSUE 6) --
expect_failure("mp5sim checkpoint interval without out"
               ${MP5SIM} --builtin figure3 --packets 200
               --checkpoint-interval 100)
expect_failure("mp5sim checkpoint out without interval"
               ${MP5SIM} --builtin figure3 --packets 200
               --checkpoint-out ${workdir}/orphan.ckpt)
expect_failure("mp5sim checkpoint to unwritable path"
               ${MP5SIM} --builtin figure3 --packets 200
               --checkpoint-interval 100
               --checkpoint-out ${workdir}/no_such_dir/ck)
expect_failure("mp5sim restore missing file"
               ${MP5SIM} --builtin figure3 --packets 200
               --restore ${workdir}/does_not_exist.ckpt)
file(WRITE ${workdir}/garbage.ckpt "not a checkpoint at all")
expect_failure("mp5sim restore garbage file"
               ${MP5SIM} --builtin figure3 --packets 200
               --restore ${workdir}/garbage.ckpt)
expect_failure("mp5sim checkpoint under recirculation baseline"
               ${MP5SIM} --builtin figure3 --design recirc --packets 200
               --checkpoint-interval 100
               --checkpoint-out ${workdir}/recirc.ckpt)
expect_success("mp5sim checkpoint control run"
               ${MP5SIM} --builtin figure3 --packets 800
               --checkpoint-interval 50
               --checkpoint-out ${workdir}/figure3.ckpt --paranoid)
if(NOT EXISTS ${workdir}/figure3.ckpt)
  message(FATAL_ERROR "mp5sim checkpoint control run: missing figure3.ckpt")
endif()
expect_success("mp5sim restore control run"
               ${MP5SIM} --builtin figure3 --packets 800
               --restore ${workdir}/figure3.ckpt --paranoid)

# -- mp5fabric (ISSUE 7) --
expect_failure("mp5fabric unknown flag" ${MP5FABRIC} --no-such-flag)
expect_failure("mp5fabric zero leaves" ${MP5FABRIC} --leaves 0 --flows 10)
expect_failure("mp5fabric zero link latency"
               ${MP5FABRIC} --link-latency 0 --flows 10)
expect_failure("mp5fabric weight arity mismatch"
               ${MP5FABRIC} --spines 2 --spine-weights 1,2,3 --flows 10)
expect_failure("mp5fabric all-zero weights"
               ${MP5FABRIC} --spines 2 --spine-weights 0,0 --flows 10)
expect_failure("mp5fabric unknown lb mode"
               ${MP5FABRIC} --lb hula --flows 10)
expect_failure("mp5fabric bad fault switch name"
               ${MP5FABRIC} --flows 10 --kill-switch spine9@100)
expect_failure("mp5fabric bad fault spec"
               ${MP5FABRIC} --flows 10 --kill-switch spine1)
expect_failure("mp5fabric bad link spec"
               ${MP5FABRIC} --flows 10 --kill-link leaf0:leaf1@100)
expect_failure("mp5fabric json to unwritable path"
               ${MP5FABRIC} --flows 50 --quiet
               --json ${workdir}/no_such_dir/fabric.json)
expect_success("mp5fabric control run"
               ${MP5FABRIC} --flows 300 --lb conga --quiet --telemetry
               --json ${workdir}/fabric.json)
if(NOT EXISTS ${workdir}/fabric.json)
  message(FATAL_ERROR "mp5fabric control run: missing fabric.json")
endif()
expect_success("mp5fabric fault control run"
               ${MP5FABRIC} --flows 300 --lb flowlet --quiet
               --kill-switch spine1@1000 --kill-link leaf0:spine0@500)
expect_failure("mp5fabric unknown engine"
               ${MP5FABRIC} --flows 10 --engine warp)
expect_success("mp5fabric event engine control run"
               ${MP5FABRIC} --flows 300 --lb conga --quiet --engine event)

# -- mp5native (ISSUE 9) --
expect_failure("mp5native no program" ${MP5NATIVE})
expect_failure("mp5native unknown flag" ${MP5NATIVE} --no-such-flag)
expect_failure("mp5native malformed program"
               ${MP5NATIVE} ${workdir}/malformed.dom)
expect_failure("mp5native missing program file"
               ${MP5NATIVE} ${workdir}/does_not_exist.dom)
expect_failure("mp5native unknown builtin" ${MP5NATIVE} --builtin nope)
expect_failure("mp5native missing trace file"
               ${MP5NATIVE} --builtin counter
               --trace ${workdir}/does_not_exist.csv)
expect_failure("mp5native zero cores"
               ${MP5NATIVE} --builtin counter --cores 0)
expect_failure("mp5native absurd core count"
               ${MP5NATIVE} --builtin counter --cores 500)
expect_failure("mp5native ring smaller than batch"
               ${MP5NATIVE} --builtin counter --batch 64 --ring-capacity 64)
expect_failure("mp5native unknown policy"
               ${MP5NATIVE} --builtin counter --policy roundrobin)
expect_failure("mp5native bad numeric flag"
               ${MP5NATIVE} --builtin counter --packets notanumber)
expect_failure("mp5native json to unwritable path"
               ${MP5NATIVE} --builtin counter --packets 100
               --json ${workdir}/no_such_dir/native.json)
expect_success("mp5native control run"
               ${MP5NATIVE} --builtin counter --packets 5000 --cores 2
               --check --profile --json ${workdir}/native.json)
if(NOT EXISTS ${workdir}/native.json)
  message(FATAL_ERROR "mp5native control run: missing native.json")
endif()
# Oversubscribing --cores must warn (the 1-CPU caveat surfaced up front).
execute_process(COMMAND ${MP5NATIVE} --builtin counter --packets 200
                --cores 64 --quiet
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "mp5native oversubscribed run: expected exit 0, got ${rc}")
endif()
if(NOT err MATCHES "exceeds")
  message(FATAL_ERROR "mp5native oversubscribed run: expected a --cores warning on stderr, got '${err}'")
endif()
execute_process(COMMAND ${MP5SIM} --builtin figure3 --packets 200
                --threads 256
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "mp5sim oversubscribed threads: expected exit 0, got ${rc}")
endif()
if(NOT err MATCHES "exceeds")
  message(FATAL_ERROR "mp5sim oversubscribed threads: expected a --threads warning on stderr, got '${err}'")
endif()
