// Fault injection & graceful pipeline degradation.
//
// The headline robustness property: killing one of k pipelines mid-trace
// must yield zero C1 violations, register state equal to a single-pipeline
// reference run over the surviving packet set, and steady-state throughput
// that degrades to ~(k-1)/k instead of collapsing. Phantom-channel loss
// and delay faults must be absorbed with declared drops instead of
// deadlocks, and the invariant watchdog must stay clean throughout.
#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "apps/programs.hpp"
#include "baseline/presets.hpp"
#include "common/error.hpp"
#include "mp5/faults.hpp"
#include "test_util.hpp"

namespace mp5::test {
namespace {

/// Every admitted packet must be accounted exactly once.
void expect_conservation(const SimResult& r) {
  EXPECT_EQ(r.offered,
            r.egressed + r.dropped_data + r.dropped_starved + r.dropped_fault);
}

/// Run the single-pipeline reference over the effective packet set — the
/// packets whose state effects remain after a faulty run (egressed ones
/// plus fault-dropped ones that had already touched state) — and compare
/// register state plus the egressed packets' declared header fields.
//
// For single-stateful-access programs this reference is exact: a packet
// either performed its whole state effect (state_touched) or none of it.
void expect_equivalent_modulo_drops(const Mp5Program& prog, const Trace& trace,
                                    const SimResult& result) {
  std::set<SeqNo> effective;
  for (const auto& rec : result.egress) effective.insert(rec.seq);
  for (const auto& drop : result.fault_drops) {
    if (drop.state_touched) effective.insert(drop.seq);
  }

  banzai::ReferenceSwitch ref(prog.pvsm);
  const auto batch = to_header_batch(trace, prog.pvsm.num_slots());
  std::unordered_map<SeqNo, std::vector<Value>> ref_headers;
  for (const SeqNo seq : effective) {
    ASSERT_LT(seq, batch.size());
    ref_headers[seq] = ref.process(batch[seq]);
  }

  // Register state must match the reference exactly on the survivor set.
  const auto& want = ref.registers();
  ASSERT_LE(want.size(), result.final_registers.size());
  for (std::size_t r = 0; r < want.size(); ++r) {
    EXPECT_EQ(result.final_registers[r], want[r]) << "register array " << r;
  }

  // Every egressed packet must carry the reference's declared fields.
  for (const auto& rec : result.egress) {
    const auto& want_headers = ref_headers.at(rec.seq);
    for (const auto& [name, slot] : prog.pvsm.declared_slot) {
      const auto s = static_cast<std::size_t>(slot);
      EXPECT_EQ(rec.headers[s], want_headers[s])
          << "packet " << rec.seq << " field '" << name << "'";
    }
  }
}

SimOptions fault_test_options(std::uint32_t k, std::uint64_t seed) {
  SimOptions opts = mp5_options(k, seed);
  opts.record_egress = true;
  opts.paranoid_checks = true;
  return opts;
}

TEST(PipelineFailure, KillOneOfFourMidTrace) {
  const auto prog = compile_mp5(apps::make_synthetic_source(1, 64));
  Rng rng(101);
  const auto trace = trace_from_fields(random_fields(1024, 2, 64, rng), 4);

  SimOptions opts = fault_test_options(4, 1);
  opts.faults.pipeline_faults.push_back(PipelineFault{2, 100, kNeverRecovers});
  Mp5Simulator sim(prog, opts);
  const SimResult result = sim.run(trace);

  EXPECT_EQ(result.pipeline_failures, 1u);
  EXPECT_EQ(result.pipeline_recoveries, 0u);
  EXPECT_GT(result.dropped_fault, 0u); // the lane held packets when it died
  EXPECT_EQ(result.c1_violating_packets, 0u);
  expect_conservation(result);
  EXPECT_EQ(result.dropped_data, 0u); // unbounded FIFOs: only fault losses
  expect_equivalent_modulo_drops(prog, trace, result);
}

TEST(PipelineFailure, ThroughputDegradesToSurvivorFraction) {
  // Kill 1 of 4 lanes before any packet arrives. Offered at the
  // survivors' line rate — (k-1)/k = 0.75 of the full switch — the three
  // live lanes must sustain it: degraded capacity is within 10% of
  // (k-1)/k. (normalized_throughput is relative to the offered rate, so
  // "keeps up at 0.75 load" reads as a value near 1.)
  const auto prog = compile_mp5(apps::make_synthetic_source(1, 256));
  Rng rng(103);
  const auto fields = random_fields(4000, 2, 256, rng);
  const auto trace = trace_from_fields(fields, 4, /*load=*/0.75);

  SimOptions opts = fault_test_options(4, 2);
  opts.faults.pipeline_faults.push_back(PipelineFault{1, 0, kNeverRecovers});
  Mp5Simulator sim(prog, opts);
  const SimResult result = sim.run(trace);

  EXPECT_EQ(result.dropped_fault, 0u); // the lane died empty
  EXPECT_EQ(result.egressed, result.offered);
  EXPECT_EQ(result.c1_violating_packets, 0u);
  const double tp = result.normalized_throughput();
  EXPECT_GE(tp, 0.9) << "survivors fell behind (k-1)/k load: " << tp;
  expect_equivalent_modulo_drops(prog, trace, result);

  // Control at full line rate: the same failure must cost real capacity
  // (the 4-lane switch keeps up; 3 survivors cannot).
  const auto full_trace = trace_from_fields(fields, 4, /*load=*/1.0);
  Mp5Simulator healthy(prog, fault_test_options(4, 2));
  Mp5Simulator degraded(prog, opts);
  const double tp_healthy =
      healthy.run(full_trace).normalized_throughput();
  const double tp_degraded =
      degraded.run(full_trace).normalized_throughput();
  EXPECT_GE(tp_healthy, 0.9);
  // Saturated degraded throughput sits within 10% of (k-1)/k of offered.
  EXPECT_GE(tp_degraded, 0.75 * 0.9) << "degraded throughput " << tp_degraded;
  EXPECT_LE(tp_degraded, 0.75 * 1.1) << "degraded throughput " << tp_degraded;
}

TEST(PipelineFailure, RecoveryRestoresLaneAndDrainsBacklog) {
  const auto prog = compile_mp5(apps::make_synthetic_source(1, 64));
  Rng rng(107);
  const auto trace = trace_from_fields(random_fields(3000, 2, 64, rng), 4);

  SimOptions opts = fault_test_options(4, 3);
  opts.faults.pipeline_faults.push_back(PipelineFault{0, 200, 500});
  Mp5Simulator sim(prog, opts);
  const SimResult result = sim.run(trace);

  EXPECT_EQ(result.pipeline_failures, 1u);
  EXPECT_EQ(result.pipeline_recoveries, 1u);
  EXPECT_EQ(result.c1_violating_packets, 0u);
  // The survivors keep the switch delivering: the first post-failure
  // egress happens within a pipeline depth's worth of cycles, not after
  // the cycle-500 recovery.
  EXPECT_LT(result.time_to_recover, 100u);
  expect_conservation(result);
  expect_equivalent_modulo_drops(prog, trace, result);
}

TEST(PipelineFailure, SequentialFailuresLeaveLastSurvivor) {
  const auto prog = compile_mp5(apps::make_synthetic_source(1, 32));
  Rng rng(109);
  const auto trace = trace_from_fields(random_fields(1200, 2, 32, rng), 4);

  SimOptions opts = fault_test_options(4, 4);
  opts.faults.pipeline_faults.push_back(PipelineFault{3, 50, kNeverRecovers});
  opts.faults.pipeline_faults.push_back(PipelineFault{1, 120, kNeverRecovers});
  opts.faults.pipeline_faults.push_back(PipelineFault{0, 190, kNeverRecovers});
  Mp5Simulator sim(prog, opts);
  const SimResult result = sim.run(trace);

  EXPECT_EQ(result.pipeline_failures, 3u);
  EXPECT_EQ(result.c1_violating_packets, 0u);
  expect_conservation(result);
  expect_equivalent_modulo_drops(prog, trace, result);
}

TEST(PhantomFaults, LostPhantomsDropTheirDataPacketsNotTheSwitch) {
  // One stateful access per packet, so each lost phantom orphans exactly
  // one data packet: the fault-drop count must equal the loss count, and
  // none of the drops may have touched state.
  const auto prog = compile_mp5(apps::make_synthetic_source(1, 32));
  Rng rng(113);
  const auto trace = trace_from_fields(random_fields(2000, 2, 32, rng), 4);

  SimOptions opts = fault_test_options(4, 5);
  opts.realistic_phantom_channel = true;
  opts.faults.phantom_loss_rate = 0.05;
  Mp5Simulator sim(prog, opts);
  const SimResult result = sim.run(trace);

  EXPECT_GT(result.phantom_lost, 0u);
  EXPECT_EQ(result.dropped_fault, result.phantom_lost);
  for (const auto& drop : result.fault_drops) {
    EXPECT_FALSE(drop.state_touched) << "packet " << drop.seq;
  }
  expect_conservation(result);
  expect_equivalent_modulo_drops(prog, trace, result);
}

TEST(PhantomFaults, DelayedPhantomsNeverDeadlock) {
  // Extra channel delay can let a data packet overtake its phantom
  // (Invariant 1 broken for that packet): the packet must be dropped with
  // fault accounting and the run must complete — no deadlock, and the
  // watchdog (with the per-lane order check relaxed) stays clean.
  const auto prog = compile_mp5(apps::make_synthetic_source(1, 32));
  Rng rng(127);
  const auto trace = trace_from_fields(random_fields(2000, 2, 32, rng), 4);

  SimOptions opts = fault_test_options(4, 6);
  opts.realistic_phantom_channel = true;
  opts.faults.phantom_delay_rate = 0.3;
  opts.faults.phantom_extra_delay = 32;
  Mp5Simulator sim(prog, opts);
  const SimResult result = sim.run(trace);

  EXPECT_GT(result.phantom_delayed, 0u);
  expect_conservation(result);
  EXPECT_EQ(result.dropped_data, 0u);
  // A delayed phantom either still precedes its data packet (harmless) or
  // got overtaken (its packet is a declared fault drop).
  EXPECT_LE(result.dropped_fault, result.phantom_delayed);
}

TEST(StallFaults, TransientStallBlocksWithoutCorruption) {
  const auto prog = compile_mp5(apps::make_synthetic_source(1, 64));
  Rng rng(131);
  const auto trace = trace_from_fields(random_fields(2000, 2, 64, rng), 4);

  SimOptions opts = fault_test_options(4, 7);
  opts.faults.stalls.push_back(StageStall{0, 1, 50, 150});
  Mp5Simulator sim(prog, opts);
  const SimResult result = sim.run(trace);

  EXPECT_EQ(result.stalled_cycles, 100u);
  EXPECT_EQ(result.c1_violating_packets, 0u);
  expect_conservation(result);
  expect_equivalent_modulo_drops(prog, trace, result);
}

TEST(PressureFaults, ForcedFifoPressureDrivesTheNormalDropPaths) {
  // Clamping every FIFO lane to one entry forces the §3.4 loss paths even
  // in the unbounded configuration: phantoms are refused at push, their
  // data packets take the regular (non-fault) drop path.
  const auto prog = compile_mp5(apps::make_synthetic_source(1, 4));
  Rng rng(137);
  const auto trace = trace_from_fields(random_fields(1500, 2, 4, rng), 4);

  SimOptions opts = fault_test_options(4, 8);
  opts.faults.fifo_pressure.push_back(FifoPressure{0, kNeverRecovers, 1});
  Mp5Simulator sim(prog, opts);
  const SimResult result = sim.run(trace);

  EXPECT_GT(result.dropped_phantom, 0u);
  EXPECT_GT(result.dropped_data, 0u);
  EXPECT_EQ(result.dropped_fault, 0u); // pressure uses the normal paths
  expect_conservation(result);
}

TEST(PressureFaults, PressureWindowEndsAndLossesStop) {
  const auto prog = compile_mp5(apps::make_synthetic_source(1, 4));
  Rng rng(139);
  const auto trace = trace_from_fields(random_fields(1200, 2, 4, rng), 4);

  SimOptions base = fault_test_options(4, 9);
  Mp5Simulator healthy_sim(prog, base);
  const SimResult healthy = healthy_sim.run(trace);
  EXPECT_EQ(healthy.dropped_phantom, 0u);

  SimOptions opts = fault_test_options(4, 9);
  opts.faults.fifo_pressure.push_back(FifoPressure{10, 60, 1});
  Mp5Simulator sim(prog, opts);
  const SimResult result = sim.run(trace);
  EXPECT_GT(result.dropped_phantom, 0u);
  // Once the window closes the clamp lifts; the run still completes with
  // every packet accounted.
  expect_conservation(result);
}

TEST(Watchdog, CleanOnFaultFreeRunsAcrossVariants) {
  // paranoid_checks must be invisible on healthy runs: same results, no
  // throws, across the design variants and the phantom-channel model.
  const auto prog = compile_mp5(apps::make_synthetic_source(2, 16));
  Rng rng(149);
  const auto trace = trace_from_fields(random_fields(800, 3, 16, rng), 4);
  for (SimOptions opts :
       {mp5_options(4, 10), ideal_options(4, 10), no_d2_options(4, 10)}) {
    opts.record_egress = true;
    SimOptions checked = opts;
    checked.paranoid_checks = true;
    Mp5Simulator plain(prog, opts);
    Mp5Simulator paranoid(prog, checked);
    const SimResult a = plain.run(trace);
    const SimResult b = paranoid.run(trace);
    EXPECT_EQ(a.egressed, b.egressed);
    EXPECT_EQ(a.cycles_run, b.cycles_run);
    EXPECT_EQ(a.final_registers, b.final_registers);
  }
  SimOptions chan = mp5_options(4, 10);
  chan.realistic_phantom_channel = true;
  chan.paranoid_checks = true;
  Mp5Simulator sim(prog, chan);
  EXPECT_NO_THROW(sim.run(trace));
}

TEST(Watchdog, InvariantErrorCarriesContext) {
  const InvariantError err("fifo-occupancy", 42, "details here");
  EXPECT_EQ(err.invariant(), "fifo-occupancy");
  EXPECT_EQ(err.cycle(), 42u);
  EXPECT_NE(std::string(err.what()).find("cycle 42"), std::string::npos);
  // InvariantError is an mp5::Error: existing catch sites keep working.
  EXPECT_THROW(throw InvariantError("x", 0, "y"), Error);
}

TEST(FaultPlanValidation, RejectsInconsistentPlans) {
  FaultPlan plan;
  plan.pipeline_faults.push_back(PipelineFault{5, 10, kNeverRecovers});
  EXPECT_THROW(plan.validate(4), ConfigError); // pipeline out of range

  plan.pipeline_faults = {PipelineFault{0, 100, 50}};
  EXPECT_THROW(plan.validate(4), ConfigError); // recovery before failure

  plan.pipeline_faults = {PipelineFault{0, 10, 100},
                          PipelineFault{0, 50, kNeverRecovers}};
  EXPECT_THROW(plan.validate(4), ConfigError); // overlapping windows

  plan.pipeline_faults = {PipelineFault{0, 10, kNeverRecovers}};
  EXPECT_THROW(plan.validate(1), ConfigError); // k=1 has no survivor
  EXPECT_NO_THROW(plan.validate(4));

  plan = FaultPlan{};
  plan.phantom_loss_rate = 1.5;
  EXPECT_THROW(plan.validate(4), ConfigError); // rate out of [0, 1]

  plan = FaultPlan{};
  plan.phantom_delay_rate = 0.5; // delay rate without extra delay cycles
  EXPECT_THROW(plan.validate(4), ConfigError);

  plan = FaultPlan{};
  plan.stalls.push_back(StageStall{0, 0, 100, 100}); // empty window
  EXPECT_THROW(plan.validate(4), ConfigError);

  plan = FaultPlan{};
  plan.fifo_pressure.push_back(FifoPressure{0, 100, 0}); // zero capacity
  EXPECT_THROW(plan.validate(4), ConfigError);

  // Disjoint fail/recover spans on one lane are fine.
  plan = FaultPlan{};
  plan.pipeline_faults = {PipelineFault{2, 10, 20}, PipelineFault{2, 30, 40}};
  EXPECT_NO_THROW(plan.validate(4));
}

TEST(FaultPlanValidation, SimulatorRejectsUnsupportedCombinations) {
  const auto prog = compile_mp5(apps::make_synthetic_source(1, 8));

  SimOptions opts = mp5_options(4, 1);
  opts.faults.phantom_loss_rate = 0.1; // needs realistic_phantom_channel
  EXPECT_THROW(Mp5Simulator(prog, opts), ConfigError);

  opts = naive_options(4, 1);
  opts.faults.pipeline_faults.push_back(PipelineFault{1, 10, kNeverRecovers});
  EXPECT_THROW(Mp5Simulator(prog, opts), ConfigError); // nowhere to re-home
}

} // namespace
} // namespace mp5::test
