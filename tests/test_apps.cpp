#include <gtest/gtest.h>

#include "apps/programs.hpp"
#include "domino/ast_interp.hpp"
#include "domino/parser.hpp"
#include "test_util.hpp"

namespace mp5::test {
namespace {

TEST(Apps, AllRealAppsCompileForMp5) {
  for (const auto& app : apps::real_apps()) {
    const auto prog = compile_mp5(app.source);
    EXPECT_GE(prog.accesses.size(), 1u) << app.name;
    EXPECT_GE(prog.num_stages, 2u) << app.name;
    EXPECT_FALSE(app.flow_fields.empty()) << app.name;
  }
}

TEST(Apps, FlowletKeepsHopWithinBurst) {
  const auto ast = domino::parse(apps::flowlet_app().source);
  domino::AstInterp interp(ast);
  // Two packets of the same flow within the IPG keep the same next hop.
  auto out1 = interp.process(
      {{"sport", 10}, {"dport", 20}, {"arrival", 100}});
  auto out2 = interp.process(
      {{"sport", 10}, {"dport", 20}, {"arrival", 110}});
  EXPECT_EQ(out1.at("next_hop"), out2.at("next_hop"));
  // After a long gap, the flowlet may switch to the new hop; it must
  // equal that packet's fresh hash choice.
  auto out3 = interp.process(
      {{"sport", 10}, {"dport", 20}, {"arrival", 10000}});
  EXPECT_EQ(out3.at("next_hop"), out3.at("new_hop"));
}

TEST(Apps, CongaTracksMinimumUtil) {
  const auto ast = domino::parse(apps::conga_app().source);
  domino::AstInterp interp(ast);
  (void)interp.process({{"dst", 5}, {"util", 70}, {"path_id", 2}});
  auto out = interp.process({{"dst", 5}, {"util", 40}, {"path_id", 3}});
  EXPECT_EQ(out.at("best"), 3);
  out = interp.process({{"dst", 5}, {"util", 90}, {"path_id", 4}});
  EXPECT_EQ(out.at("best"), 3); // higher util does not displace the best
}

TEST(Apps, WfqComputesStartTimes) {
  const auto ast = domino::parse(apps::wfq_app().source);
  domino::AstInterp interp(ast);
  auto out1 = interp.process({{"sport", 1},
                              {"dport", 2},
                              {"size", 100},
                              {"virtual_time", 0}});
  EXPECT_EQ(out1.at("start"), 0);
  auto out2 = interp.process({{"sport", 1},
                              {"dport", 2},
                              {"size", 100},
                              {"virtual_time", 0}});
  EXPECT_EQ(out2.at("start"), 100); // behind the first packet's finish
  auto out3 = interp.process({{"sport", 1},
                              {"dport", 2},
                              {"size", 100},
                              {"virtual_time", 500}});
  EXPECT_EQ(out3.at("start"), 500); // virtual time has moved past finish
}

TEST(Apps, SequencerStampsOnlyWrites) {
  const auto ast = domino::parse(apps::sequencer_app().source);
  domino::AstInterp interp(ast);
  auto w1 = interp.process({{"group", 0}, {"op", 1}});
  auto r1 = interp.process({{"group", 0}, {"op", 0}});
  auto w2 = interp.process({{"group", 0}, {"op", 1}});
  EXPECT_EQ(w1.at("seq_no"), 1);
  EXPECT_EQ(r1.at("seq_no"), 0); // reads are not stamped
  EXPECT_EQ(w2.at("seq_no"), 2);
}

TEST(Apps, SyntheticSourceScalesStages) {
  for (const std::uint32_t n : {0u, 1u, 4u, 10u}) {
    const auto prog = compile_mp5(apps::make_synthetic_source(n, 16));
    std::size_t stateful = 0;
    for (const auto& stage : prog.pvsm.stages) {
      stateful += stage.stateful_regs().size();
    }
    EXPECT_EQ(stateful, n);
    EXPECT_EQ(prog.accesses.size(), n);
  }
}

TEST(Apps, AppFillersProduceDeclaredFieldCounts) {
  for (const auto& app : apps::real_apps()) {
    const auto ast = domino::parse(app.source);
    FlowPacketInfo info;
    info.flow = 7;
    info.packet_in_flow = 3;
    info.arrival_time = 123.0;
    info.size_bytes = 200;
    const auto fields = app.filler(info);
    EXPECT_EQ(fields.size(), ast.fields.size()) << app.name;
  }
}

TEST(Apps, PaperClaimsAboutCompilerPaths) {
  // The transformer reports the compiler fallback paths exercised by the
  // dedicated sources.
  EXPECT_GT(compile_mp5(apps::stateful_predicate_source())
                .conservative_accesses(),
            0u);
  EXPECT_GT(compile_mp5(apps::stateful_index_source()).pinned_registers(),
            0u);
  // And the real apps resolve all addresses preemptively.
  for (const auto& app : apps::real_apps()) {
    EXPECT_EQ(compile_mp5(app.source).pinned_registers(), 0u) << app.name;
  }
}


TEST(ExtendedApps, AllCompileForMp5) {
  for (const auto& app : apps::extended_apps()) {
    const auto prog = compile_mp5(app.source);
    EXPECT_GE(prog.accesses.size(), 1u) << app.name;
    FlowPacketInfo info;
    info.flow = 42;
    info.size_bytes = 200;
    const auto ast = domino::parse(app.source);
    EXPECT_EQ(app.filler(info).size(), ast.fields.size()) << app.name;
  }
}

TEST(ExtendedApps, EquivalentToSinglePipeline) {
  for (const auto& app : apps::extended_apps()) {
    const auto prog = compile_mp5(app.source);
    FlowWorkloadConfig config;
    config.pipelines = 4;
    config.packets = 1200;
    config.seed = 5;
    const auto trace = make_flow_trace(config, app.filler);
    SimOptions opts;
    opts.pipelines = 4;
    opts.seed = 5;
    const auto report = run_and_check(prog, trace, opts);
    EXPECT_TRUE(report.equivalent()) << app.name << ": "
                                     << report.first_difference;
  }
}

TEST(ExtendedApps, NetflowHasStatefulSamplingPredicate) {
  // The sampled-NetFlow program gates its per-flow update on a register
  // value: MP5 must fall back to conservative phantoms for it.
  for (const auto& app : apps::extended_apps()) {
    const auto prog = compile_mp5(app.source);
    if (app.name == "netflow") {
      EXPECT_GT(prog.conservative_accesses(), 0u);
    }
  }
}

TEST(ExtendedApps, CountMinEstimateUpperBoundsTrueCount) {
  const auto app_list = apps::extended_apps();
  const auto& cms = app_list[0];
  ASSERT_EQ(cms.name, "count_min");
  const auto ast = domino::parse(cms.source);
  domino::AstInterp interp(ast);
  std::unordered_map<Value, Value> truth;
  Rng rng(9);
  Value last_est = 0;
  for (int i = 0; i < 2000; ++i) {
    const Value key = rng.next_in(0, 200);
    ++truth[key];
    const auto out = interp.process({{"key", key}});
    last_est = out.at("est");
    EXPECT_GE(last_est, truth[key]); // sketch never under-counts
  }
}

TEST(ExtendedApps, BloomFirewallAllowsReturnTraffic) {
  const auto app_list = apps::extended_apps();
  const auto& fw = app_list[5];
  ASSERT_EQ(fw.name, "bloom_firewall");
  const auto ast = domino::parse(fw.source);
  domino::AstInterp interp(ast);
  // Unknown inbound tuple: denied.
  auto out = interp.process({{"tuple", 777}, {"outbound", 0}});
  EXPECT_EQ(out.at("allowed"), 0);
  // Outbound inserts...
  out = interp.process({{"tuple", 777}, {"outbound", 1}});
  EXPECT_EQ(out.at("allowed"), 1);
  // ...and the return traffic is now admitted.
  out = interp.process({{"tuple", 777}, {"outbound", 0}});
  EXPECT_EQ(out.at("allowed"), 1);
}

TEST(ExtendedApps, RcpTracksAverageRtt) {
  const auto app_list = apps::extended_apps();
  const auto& rcp = app_list[3];
  ASSERT_EQ(rcp.name, "rcp");
  const auto ast = domino::parse(rcp.source);
  domino::AstInterp interp(ast);
  (void)interp.process({{"rtt", 100}});
  (void)interp.process({{"rtt", 200}});
  const auto out = interp.process({{"rtt", 300}});
  EXPECT_EQ(out.at("avg_rtt"), 200);
}


TEST(Tables, FirstMatchingEntryWins) {
  const auto ast = domino::parse(R"(
    struct Packet { int x; int out; };
    table t (p.x) {
      5 : { p.out = 1; }
      5 : { p.out = 2; }
      default : { p.out = 9; }
    }
    void f(struct Packet p) { apply t; }
  )");
  domino::AstInterp interp(ast);
  EXPECT_EQ(interp.process({{"x", 5}}).at("out"), 1); // entry order = priority
  EXPECT_EQ(interp.process({{"x", 6}}).at("out"), 9);
}

TEST(Tables, ContextualKeywordDoesNotShadowIdentifiers) {
  // `table` remains usable as a register name (stateful_index_source does).
  EXPECT_NO_THROW(compile_mp5(apps::stateful_index_source()));
}

TEST(Tables, RoutingProgramSemantics) {
  const auto ast = domino::parse(apps::table_routing_source());
  domino::AstInterp interp(ast);
  auto out = interp.process({{"dst", 1}});
  EXPECT_EQ(out.at("out_port"), 2);
  EXPECT_EQ(out.at("allow"), 1);
  out = interp.process({{"dst", 7}}); // default: no route
  EXPECT_EQ(out.at("out_port"), 0);
  EXPECT_EQ(out.at("allow"), 0);
  // Connection accounting only counts routed packets.
  out = interp.process({{"dst", 1}});
  EXPECT_EQ(interp.registers()[0][1], 2); // conn_count[1]
}

} // namespace
} // namespace mp5::test
