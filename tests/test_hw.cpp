#include <gtest/gtest.h>

#include "hw/area_model.hpp"

namespace mp5::hw {
namespace {

HwConfig cfg(std::uint32_t k, std::uint32_t s) {
  HwConfig c;
  c.pipelines = k;
  c.stages = s;
  return c;
}

TEST(AreaModel, MatchesTable1WithinTolerance) {
  // Table 1 grid: within 10% of every published point (k=2,4 are exact by
  // calibration; k=8 reflects ~5% synthesis nonlinearity).
  for (const std::uint32_t k : {2u, 4u, 8u}) {
    for (const std::uint32_t s : {4u, 8u, 12u, 16u}) {
      const double paper = paper_table1_mm2(k, s);
      ASSERT_GT(paper, 0.0);
      const double model = chip_area(cfg(k, s)).total_mm2;
      EXPECT_NEAR(model, paper, paper * 0.10)
          << "k=" << k << " s=" << s;
    }
  }
}

TEST(AreaModel, ReferencePointIsExact) {
  EXPECT_NEAR(chip_area(cfg(4, 4)).total_mm2, 0.84, 1e-9);
  EXPECT_NEAR(chip_area(cfg(4, 16)).total_mm2, 3.36, 1e-9);
}

TEST(AreaModel, QuadraticInPipelinesLinearInStages) {
  const double a44 = chip_area(cfg(4, 4)).total_mm2;
  EXPECT_NEAR(chip_area(cfg(4, 8)).total_mm2, 2 * a44, 1e-9);
  EXPECT_NEAR(chip_area(cfg(8, 4)).total_mm2, 4 * a44, 1e-9);
}

TEST(AreaModel, CrossbarsDominate) {
  const auto area = chip_area(cfg(4, 16));
  EXPECT_GT(area.data_crossbar_mm2 + area.phantom_crossbar_mm2,
            0.7 * area.total_mm2);
  EXPECT_GT(area.data_crossbar_mm2, area.phantom_crossbar_mm2);
  EXPECT_NEAR(area.total_mm2,
              area.data_crossbar_mm2 + area.phantom_crossbar_mm2 +
                  area.fifo_mm2 + area.steering_logic_mm2,
              1e-9);
}

TEST(AreaModel, SmallOverheadVersusCommercialAsics) {
  // §4.2: 4 pipelines x 16 stages = 3.36 mm^2 is 0.5-1% of a 300-700 mm^2
  // commercial switch ASIC.
  const double total = chip_area(cfg(4, 16)).total_mm2;
  EXPECT_LT(total / 300.0, 0.012);
  EXPECT_GT(total / 700.0, 0.004);
}

TEST(ClockModel, AllTable1ConfigurationsMeet1GHz) {
  for (const std::uint32_t k : {2u, 4u, 8u}) {
    for (const std::uint32_t s : {4u, 8u, 12u, 16u}) {
      EXPECT_TRUE(meets_1ghz(cfg(k, s))) << "k=" << k << " s=" << s;
    }
  }
}

TEST(ClockModel, DegradesWithPipelineCount) {
  EXPECT_GT(clock_ghz(cfg(2, 16)), clock_ghz(cfg(16, 16)));
}

TEST(SramModel, ThirtyBitsPerIndex) {
  EXPECT_EQ(SramOverhead::kBitsPerIndex, 30u);
  // §4.2 example: 10 stateful stages x 1000 entries -> ~37.5 KB ("about
  // 35 KB") per pipeline.
  const double bytes = sram_overhead_bytes_per_pipeline(10, 1000);
  EXPECT_NEAR(bytes / 1024.0, 36.6, 1.0);
  // Nominal against 50-100 MB of switch SRAM.
  EXPECT_LT(bytes / (50.0 * 1024 * 1024), 0.001);
}

TEST(Table1Lookup, UnknownPointsReturnNegative) {
  EXPECT_LT(paper_table1_mm2(3, 4), 0.0);
  EXPECT_LT(paper_table1_mm2(2, 5), 0.0);
}

} // namespace
} // namespace mp5::hw
