// Telemetry subsystem tests: registry semantics, event-ring bounds,
// exporter validity, run-to-run determinism, and the zero-overhead
// contract (telemetry attached vs absent must not change the simulation).
#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <sstream>
#include <string>

#include "apps/programs.hpp"
#include "baseline/presets.hpp"
#include "common/error.hpp"
#include "domino/compiler.hpp"
#include "mp5/simulator.hpp"
#include "mp5/transform.hpp"
#include "telemetry/bench_report.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/json_writer.hpp"
#include "telemetry/results.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/workloads.hpp"

namespace mp5 {
namespace {

using telemetry::BenchReport;
using telemetry::Config;
using telemetry::EventRing;
using telemetry::JsonWriter;
using telemetry::RunMeta;
using telemetry::Telemetry;

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON syntax checker, so the exporter tests
// validate real JSON instead of grepping for substrings. Accepts exactly
// the RFC 8259 grammar (no trailing commas, no comments).
class MiniJsonParser {
public:
  explicit MiniJsonParser(std::string text) : s_(std::move(text)) {}

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_; // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_; // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_; // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const std::string& word) {
    if (s_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string s_;
  std::size_t pos_ = 0;
};

Mp5Program synthetic_program() {
  return transform(domino::compile(apps::make_synthetic_source(4, 64),
                                   banzai::MachineSpec{}, 1)
                       .pvsm);
}

Trace synthetic_trace(std::uint64_t seed, std::uint64_t packets = 2000) {
  SyntheticConfig config;
  config.stateful_stages = 4;
  config.reg_size = 64;
  config.pattern = AccessPattern::kSkewed;
  config.pipelines = 4;
  config.packets = packets;
  config.seed = seed;
  config.active_flows = 16;
  return make_synthetic_trace(config);
}

// ---------------------------------------------------------------------
// Registry semantics

TEST(Telemetry, RegistryFindOrCreate) {
  Telemetry telem;
  auto& a = telem.counter("x");
  a.inc(3);
  EXPECT_EQ(&telem.counter("x"), &a);
  EXPECT_EQ(telem.counter("x").value(), 3u);
  EXPECT_NE(&telem.counter("y"), &a);

  auto& g = telem.gauge("depth");
  g.set(4.0);
  g.set_max(2.0); // lower: ignored
  EXPECT_DOUBLE_EQ(telem.gauge("depth").value(), 4.0);
  g.set_max(9.0);
  EXPECT_DOUBLE_EQ(telem.gauge("depth").value(), 9.0);
}

TEST(Telemetry, HistogramShapeMismatchThrows) {
  Telemetry telem;
  auto& h = telem.histogram("lat", 1.0, 32);
  h.add(3.0);
  EXPECT_EQ(&telem.histogram("lat", 1.0, 32), &h); // same shape: same object
  EXPECT_THROW(telem.histogram("lat", 2.0, 32), ConfigError);
  EXPECT_THROW(telem.histogram("lat", 1.0, 64), ConfigError);
}

TEST(Telemetry, EventsDisabledByZeroCapacity) {
  Telemetry telem(Config{.event_capacity = 0});
  EXPECT_FALSE(telem.events_enabled());
  TimelineEvent event;
  telem.record(event); // silently ignored
  EXPECT_THROW(telem.events(), Error);
}

// ---------------------------------------------------------------------
// Event ring

TEST(EventRingTest, WrapsKeepingNewest) {
  EventRing ring(4);
  EXPECT_THROW(EventRing(0), ConfigError);
  for (std::uint64_t i = 0; i < 10; ++i) {
    TimelineEvent event;
    event.cycle = i;
    ring.push(event);
  }
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  // Oldest-first: cycles 6, 7, 8, 9 survive.
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.at(i).cycle, 6 + i);
  }
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().cycle, 6u);
  EXPECT_EQ(snap.back().cycle, 9u);
}

TEST(EventRingTest, PartialFillIsOrdered) {
  EventRing ring(8);
  for (std::uint64_t i = 0; i < 3; ++i) {
    TimelineEvent event;
    event.cycle = 100 + i;
    ring.push(event);
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.at(0).cycle, 100u);
  EXPECT_EQ(ring.at(2).cycle, 102u);
}

// ---------------------------------------------------------------------
// JSON writer

TEST(JsonWriterTest, EscapesAndStructures) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.kv("plain", std::uint64_t{7});
  w.kv("quote\"back\\slash", std::string_view{"line\nfeed\ttab"});
  w.key("nested");
  w.begin_array();
  w.value(1.5);
  w.value(true);
  w.null();
  w.end_array();
  w.end_object();
  EXPECT_TRUE(w.complete());
  MiniJsonParser parser(out.str());
  EXPECT_TRUE(parser.parse()) << out.str();
  EXPECT_NE(out.str().find("\\\""), std::string::npos);
  EXPECT_NE(out.str().find("\\n"), std::string::npos);
}

// ---------------------------------------------------------------------
// Simulator integration

TEST(TelemetrySim, CountersMatchSimResult) {
  const auto prog = synthetic_program();
  const auto trace = synthetic_trace(1);
  Telemetry telem;
  SimOptions opts = mp5_options(4, 1);
  opts.telemetry = &telem;
  Mp5Simulator sim(prog, opts);
  const auto result = sim.run(trace);

  const auto counters = telem.counter_snapshot();
  EXPECT_EQ(counters.at("sim.admitted"), result.offered);
  EXPECT_EQ(counters.at("sim.egressed"), result.egressed);
  EXPECT_EQ(counters.at("sim.steers"), result.steers);
  EXPECT_EQ(counters.at("sim.dropped_data"), result.dropped_data);
  EXPECT_EQ(counters.at("fifo.pop_wasted"), result.wasted_cycles);
  EXPECT_GT(counters.at("fifo.push"), 0u);
  EXPECT_GT(counters.at("shard.state_accesses"), 0u);
  EXPECT_TRUE(telem.events_enabled());
  EXPECT_GT(telem.events().recorded(), 0u);
  // End-of-run gauges.
  EXPECT_DOUBLE_EQ(telem.gauge("sim.cycles_run").value(),
                   static_cast<double>(result.cycles_run));
  // Egress-latency histogram saw every egressed packet.
  EXPECT_EQ(telem.histograms().at("sim.egress_latency").total(),
            result.egressed);
}

TEST(TelemetrySim, TwoSimulatorsOneRegistryScopedPrefixesDoNotCollide) {
  // Per-instance scoping regression: two simulators sharing one Telemetry
  // must not merge their metrics as long as they use distinct prefixes
  // (the fabric runs N+M switches against one registry this way). Before
  // telemetry_prefix existed, both registered the flat "sim.admitted" and
  // the counts silently summed.
  const auto prog = synthetic_program();
  const auto trace_a = synthetic_trace(1, 1500);
  const auto trace_b = synthetic_trace(2, 700);
  Telemetry telem;
  SimOptions opts_a = mp5_options(4, 1);
  opts_a.telemetry = &telem;
  opts_a.telemetry_prefix = "fabric.leaf0.";
  SimOptions opts_b = opts_a;
  opts_b.telemetry_prefix = "fabric.spine1.";
  Mp5Simulator sim_a(prog, opts_a);
  Mp5Simulator sim_b(prog, opts_b);
  const auto ra = sim_a.run(trace_a);
  const auto rb = sim_b.run(trace_b);
  ASSERT_NE(ra.offered, rb.offered); // distinct loads, else vacuous

  const auto counters = telem.counter_snapshot();
  EXPECT_EQ(counters.at("fabric.leaf0.sim.admitted"), ra.offered);
  EXPECT_EQ(counters.at("fabric.spine1.sim.admitted"), rb.offered);
  EXPECT_EQ(counters.at("fabric.leaf0.sim.egressed"), ra.egressed);
  EXPECT_EQ(counters.at("fabric.spine1.sim.egressed"), rb.egressed);
  // No un-prefixed (merged) names leaked into the shared registry.
  EXPECT_EQ(counters.count("sim.admitted"), 0u);
  // Gauges and histograms are scoped too.
  EXPECT_DOUBLE_EQ(telem.gauge("fabric.leaf0.sim.cycles_run").value(),
                   static_cast<double>(ra.cycles_run));
  EXPECT_DOUBLE_EQ(telem.gauge("fabric.spine1.sim.cycles_run").value(),
                   static_cast<double>(rb.cycles_run));
  EXPECT_EQ(telem.histograms().at("fabric.leaf0.sim.egress_latency").total(),
            ra.egressed);
  EXPECT_EQ(telem.histograms().at("fabric.spine1.sim.egress_latency").total(),
            rb.egressed);
  // An empty prefix still yields the classic flat names (single-simulator
  // tools keep their dashboards).
  Telemetry flat;
  SimOptions opts_flat = mp5_options(4, 1);
  opts_flat.telemetry = &flat;
  Mp5Simulator sim_flat(prog, opts_flat);
  const auto rf = sim_flat.run(trace_a);
  EXPECT_EQ(flat.counter_snapshot().at("sim.admitted"), rf.offered);
}

TEST(TelemetrySim, RebalanceRunsCountedUniformlyAcrossPolicies) {
  // shard.rebalance_runs counts every crossed remap boundary under every
  // policy — the static policies (kStaticRandom, kSinglePipeline) close
  // their counter windows at the same cadence as the moving policies and
  // used to under-report by never bumping the counter.
  const auto prog = synthetic_program();
  const auto trace = synthetic_trace(5);
  SimOptions (*const presets[])(std::uint32_t, std::uint64_t) = {
      mp5_options, no_d2_options, naive_options, ideal_options};
  for (const auto make : presets) {
    Telemetry telem;
    SimOptions opts = make(4, 5);
    opts.telemetry = &telem;
    Mp5Simulator sim(prog, opts);
    const auto result = sim.run(trace);
    const auto counters = telem.counter_snapshot();
    // One run per boundary: boundaries lie at cycles period-1, 2*period-1,
    // ... strictly below cycles_run.
    ASSERT_NE(opts.remap_period, 0u);
    const std::uint64_t expected = result.cycles_run / opts.remap_period;
    EXPECT_EQ(counters.at("shard.rebalance_runs"), expected);
    EXPECT_GT(expected, 0u);
    // The windowed working set is recorded for every policy too.
    EXPECT_GT(counters.at("shard.touched_indices"), 0u);
    EXPECT_LE(counters.at("shard.touched_indices"),
              counters.at("shard.state_accesses"));
  }
}

TEST(TelemetrySim, DeterministicAcrossSameSeedRuns) {
  const auto prog = synthetic_program();
  const auto trace = synthetic_trace(7);
  std::map<std::string, std::uint64_t> snap[2];
  std::uint64_t recorded[2] = {0, 0};
  for (int i = 0; i < 2; ++i) {
    Telemetry telem;
    SimOptions opts = mp5_options(4, 7);
    opts.telemetry = &telem;
    Mp5Simulator sim(prog, opts);
    (void)sim.run(trace);
    snap[i] = telem.counter_snapshot();
    recorded[i] = telem.events().recorded();
  }
  EXPECT_EQ(snap[0], snap[1]);
  EXPECT_EQ(recorded[0], recorded[1]);
  EXPECT_FALSE(snap[0].empty());
}

TEST(TelemetrySim, DisabledRunIsBitIdentical) {
  const auto prog = synthetic_program();
  const auto trace = synthetic_trace(3);

  SimOptions opts = mp5_options(4, 3);
  opts.record_egress = true;
  opts.track_flow_reordering = true;
  Mp5Simulator plain_sim(prog, opts);
  const auto plain = plain_sim.run(trace);

  Telemetry telem;
  opts.telemetry = &telem;
  Mp5Simulator telem_sim(prog, opts);
  const auto instrumented = telem_sim.run(trace);

  EXPECT_EQ(plain.offered, instrumented.offered);
  EXPECT_EQ(plain.egressed, instrumented.egressed);
  EXPECT_EQ(plain.dropped_phantom, instrumented.dropped_phantom);
  EXPECT_EQ(plain.dropped_data, instrumented.dropped_data);
  EXPECT_EQ(plain.dropped_starved, instrumented.dropped_starved);
  EXPECT_EQ(plain.dropped_fault, instrumented.dropped_fault);
  EXPECT_EQ(plain.ecn_marked, instrumented.ecn_marked);
  EXPECT_EQ(plain.first_arrival, instrumented.first_arrival);
  EXPECT_EQ(plain.last_arrival, instrumented.last_arrival);
  EXPECT_EQ(plain.last_egress, instrumented.last_egress);
  EXPECT_EQ(plain.cycles_run, instrumented.cycles_run);
  EXPECT_EQ(plain.steers, instrumented.steers);
  EXPECT_EQ(plain.wasted_cycles, instrumented.wasted_cycles);
  EXPECT_EQ(plain.blocked_cycles, instrumented.blocked_cycles);
  EXPECT_EQ(plain.remap_moves, instrumented.remap_moves);
  EXPECT_EQ(plain.max_queue_depth, instrumented.max_queue_depth);
  EXPECT_EQ(plain.c1_violating_packets, instrumented.c1_violating_packets);
  EXPECT_EQ(plain.reordered_flow_packets,
            instrumented.reordered_flow_packets);
  EXPECT_EQ(plain.final_registers, instrumented.final_registers);
  ASSERT_EQ(plain.egress.size(), instrumented.egress.size());
  for (std::size_t i = 0; i < plain.egress.size(); ++i) {
    EXPECT_EQ(plain.egress[i].seq, instrumented.egress[i].seq);
    EXPECT_EQ(plain.egress[i].egress_cycle,
              instrumented.egress[i].egress_cycle);
    EXPECT_EQ(plain.egress[i].headers, instrumented.egress[i].headers);
  }
}

// ---------------------------------------------------------------------
// Exporters

TEST(TelemetryExport, ChromeTraceParsesNonEmpty) {
  const auto prog = synthetic_program();
  const auto trace = synthetic_trace(1, 500);
  Telemetry telem;
  SimOptions opts = mp5_options(4, 1);
  opts.telemetry = &telem;
  Mp5Simulator sim(prog, opts);
  (void)sim.run(trace);

  std::ostringstream out;
  telemetry::write_chrome_trace(out, telem);
  const std::string json = out.str();
  MiniJsonParser parser(json);
  EXPECT_TRUE(parser.parse());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos)
      << "expected at least one instant event";
  EXPECT_NE(json.find("\"mp5-chrome-trace\""), std::string::npos);
}

TEST(TelemetryExport, ResultsJsonParses) {
  const auto prog = synthetic_program();
  const auto trace = synthetic_trace(1, 500);
  Telemetry telem;
  SimOptions opts = mp5_options(4, 1);
  opts.telemetry = &telem;
  Mp5Simulator sim(prog, opts);
  const auto result = sim.run(trace);

  RunMeta meta;
  meta.design = "mp5";
  meta.program = "synthetic";
  meta.pipelines = 4;
  meta.packets = trace.size();
  meta.seed = 1;

  std::ostringstream with_telem;
  telemetry::write_results_json(with_telem, meta, result, &telem);
  MiniJsonParser parser(with_telem.str());
  EXPECT_TRUE(parser.parse());
  EXPECT_NE(with_telem.str().find("\"mp5-results\""), std::string::npos);
  EXPECT_NE(with_telem.str().find("\"sim.admitted\""), std::string::npos);

  std::ostringstream without;
  telemetry::write_results_json(without, meta, result, nullptr);
  MiniJsonParser parser2(without.str());
  EXPECT_TRUE(parser2.parse());
  EXPECT_NE(without.str().find("\"telemetry\":null"), std::string::npos);
}

TEST(TelemetryExport, BenchReportRoundTrip) {
  BenchReport report("unit");
  report.row("a").metric("x", 1.5).label("kind", "first");
  report.row("b").metric("y", 2.0);
  report.row("a").metric("z", 3.0); // find-or-append: still two rows
  EXPECT_EQ(report.size(), 2u);

  std::ostringstream out;
  report.write_to(out);
  MiniJsonParser parser(out.str());
  EXPECT_TRUE(parser.parse());
  EXPECT_NE(out.str().find("\"mp5-bench\""), std::string::npos);
  EXPECT_NE(out.str().find("\"z\":3"), std::string::npos);
}

} // namespace
} // namespace mp5
