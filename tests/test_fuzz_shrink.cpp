// Delta-debugging shrinker: floors, determinism, and the end-to-end
// fault-injection self-test (an off-by-one planted in the oracle's index
// reduction must be caught by the differ and shrunk to a tiny
// reproducer).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "domino/parser.hpp"
#include "fuzz/ast_printer.hpp"
#include "fuzz/differ.hpp"
#include "fuzz/repro.hpp"
#include "fuzz/shrink.hpp"

namespace mp5::test {
namespace {

using fuzz::Differ;
using fuzz::DifferOptions;
using fuzz::Failure;
using fuzz::FailureKind;
using fuzz::SeedOutcome;
using fuzz::ShrinkResult;

domino::Ast sample_program() {
  return domino::parse(R"(
    struct Packet { int a; int b; };
    int tally[4] = {0};
    int last = 0;
    void prog(struct Packet p) {
      if (p.a > 3) {
        tally[p.b % 4] = tally[p.b % 4] + 1;
        p.b = p.b + last;
      } else {
        p.a = p.a * 2;
      }
      last = p.a;
    }
  )");
}

Trace sample_trace(std::size_t packets) {
  Trace trace;
  for (std::size_t i = 0; i < packets; ++i) {
    TraceItem item;
    item.arrival_time = static_cast<double>(i) / 4.0;
    item.port = static_cast<std::uint32_t>(i % 64);
    item.flow = i % 3;
    item.fields = {static_cast<Value>(i * 7 % 11),
                   static_cast<Value>(i * 13 % 5)};
    trace.push_back(item);
  }
  return trace;
}

TEST(Shrink, AlwaysTruePredicateHitsFloors) {
  // Even a predicate that accepts everything must leave one statement and
  // one packet: the floors keep reproducers non-degenerate.
  const auto always = [](const domino::Ast&, const Trace&) { return true; };
  const ShrinkResult result =
      fuzz::shrink(sample_program(), sample_trace(16), always);
  EXPECT_TRUE(result.reproduced);
  EXPECT_EQ(fuzz::count_stmts(result.program), 1u);
  EXPECT_EQ(result.trace.size(), 1u);
}

TEST(Shrink, FailingInputReturnedUnshrunk) {
  const auto never = [](const domino::Ast&, const Trace&) { return false; };
  const auto program = sample_program();
  const ShrinkResult result = fuzz::shrink(program, sample_trace(4), never);
  EXPECT_FALSE(result.reproduced);
  EXPECT_EQ(fuzz::to_source(result.program), fuzz::to_source(program));
  EXPECT_EQ(result.trace.size(), 4u);
}

/// First seed whose generated program compiles and diverges under the
/// injected off-by-one oracle fault.
SeedOutcome first_injected_failure(const Differ& differ) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    SeedOutcome outcome = differ.run_seed(seed);
    if (outcome.failure) return outcome;
  }
  ADD_FAILURE() << "no injected divergence in 200 seeds";
  return {};
}

DifferOptions injected_options() {
  DifferOptions opts;
  opts.matrix = fuzz::quick_config_matrix();
  // The self-test targets the oracle comparison; replicated-variant cells
  // only add runtime here.
  opts.variant_matrix.clear();
  opts.inject_floor_mod_bug = true;
  return opts;
}

TEST(Shrink, InjectedFloorModBugShrinksToTinyReproducer) {
  const Differ differ(injected_options());
  const SeedOutcome outcome = first_injected_failure(differ);
  ASSERT_TRUE(outcome.failure);
  EXPECT_EQ(outcome.failure.kind, FailureKind::kOracleDivergence);

  const auto start = std::chrono::steady_clock::now();
  const ShrinkResult shrunk =
      fuzz::shrink(outcome.program, outcome.trace,
                   differ.make_predicate(outcome.failure));
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  ASSERT_TRUE(shrunk.reproduced);
  // ISSUE acceptance: <= 3 statements, well under 60 s.
  EXPECT_LE(fuzz::count_stmts(shrunk.program), 3u);
  EXPECT_LE(shrunk.trace.size(), 2u);
  EXPECT_LT(secs, 60.0);
}

TEST(Shrink, ShrinkingIsDeterministic) {
  const Differ differ(injected_options());
  const SeedOutcome outcome = first_injected_failure(differ);
  ASSERT_TRUE(outcome.failure);

  const auto pred = differ.make_predicate(outcome.failure);
  const ShrinkResult a = fuzz::shrink(outcome.program, outcome.trace, pred);
  const ShrinkResult b = fuzz::shrink(outcome.program, outcome.trace, pred);
  ASSERT_TRUE(a.reproduced);
  ASSERT_TRUE(b.reproduced);
  EXPECT_EQ(fuzz::to_source(a.program), fuzz::to_source(b.program));
  EXPECT_EQ(a.evals, b.evals);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].arrival_time, b.trace[i].arrival_time);
    EXPECT_EQ(a.trace[i].fields, b.trace[i].fields);
  }
}

TEST(Repro, RoundTripAndReplay) {
  const Differ differ(injected_options());
  const SeedOutcome outcome = first_injected_failure(differ);
  ASSERT_TRUE(outcome.failure);
  const ShrinkResult shrunk =
      fuzz::shrink(outcome.program, outcome.trace,
                   differ.make_predicate(outcome.failure));
  ASSERT_TRUE(shrunk.reproduced);

  fuzz::Reproducer repro;
  repro.kind = outcome.failure.kind;
  repro.config = outcome.failure.config;
  repro.seed = outcome.seed;
  repro.inject_floor_mod_bug = true;
  repro.detail = outcome.failure.detail;
  repro.program_source = fuzz::to_source(shrunk.program);
  repro.trace = shrunk.trace;

  const auto dir = std::filesystem::temp_directory_path() / "mp5-repro-test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "case.json").string();
  fuzz::save_reproducer(repro, path);

  const fuzz::Reproducer loaded = fuzz::load_reproducer(path);
  EXPECT_EQ(loaded.kind, repro.kind);
  EXPECT_EQ(loaded.seed, repro.seed);
  EXPECT_EQ(loaded.inject_floor_mod_bug, true);
  EXPECT_EQ(loaded.detail, repro.detail);
  EXPECT_EQ(loaded.program_source, repro.program_source);
  ASSERT_EQ(loaded.trace.size(), repro.trace.size());
  for (std::size_t i = 0; i < loaded.trace.size(); ++i) {
    EXPECT_EQ(loaded.trace[i].fields, repro.trace[i].fields);
    EXPECT_EQ(loaded.trace[i].port, repro.trace[i].port);
  }
  EXPECT_EQ(loaded.config.name(), repro.config.name());

  // The reloaded reproducer must still reproduce the expected outcome.
  const Failure observed = fuzz::replay(loaded);
  EXPECT_EQ(observed.kind, repro.kind);
  std::filesystem::remove_all(dir);
}

TEST(Differ, CleanOracleFindsNoFailuresOnQuickMatrix) {
  DifferOptions opts;
  opts.matrix = fuzz::quick_config_matrix();
  opts.variant_matrix = fuzz::quick_variant_matrix();
  const Differ differ(opts);
  int compiled = 0;
  std::size_t variant_cells = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const SeedOutcome outcome = differ.run_seed(seed);
    if (!outcome.compiled) continue;
    ++compiled;
    // Expectation mode: replicated-variant divergence from the reference
    // is classification data, never a failure. Only crashes, drops,
    // nondeterminism or checkpoint breakage would surface here.
    EXPECT_FALSE(outcome.failure)
        << "seed " << seed << ": " << fuzz::to_string(outcome.failure.kind)
        << " — " << outcome.failure.detail;
    variant_cells += outcome.variant_cells.size();
  }
  EXPECT_GT(compiled, 0);
  EXPECT_EQ(variant_cells,
            static_cast<std::size_t>(compiled) *
                fuzz::quick_variant_matrix().size());
}

} // namespace
} // namespace mp5::test
