// §2.3.1 Example 2, end to end: a network sequencer stamps a global
// counter into every packet. On today's multi-pipelined switches the only
// way to reach state in another pipeline is re-circulation, whose delay
// reorders the stamps (functional equivalence violated); MP5's phantom
// ordering keeps every stamp equal to the packet's arrival rank.
//
//   $ ./examples/sequencer_demo
#include <iostream>

#include "apps/programs.hpp"
#include "banzai/single_pipeline.hpp"
#include "baseline/presets.hpp"
#include "baseline/recirc.hpp"
#include "common/rng.hpp"
#include "domino/compiler.hpp"
#include "metrics/equivalence.hpp"
#include "mp5/simulator.hpp"
#include "mp5/transform.hpp"

int main() {
  using namespace mp5;

  const Mp5Program program = transform(
      domino::compile(apps::sequencer_example_source(),
                      banzai::MachineSpec{}, 1)
          .pvsm);

  // Line-rate trace across 4 pipelines, ports round-robin.
  Trace trace;
  LineRateClock clock(/*pipelines=*/4, /*load=*/1.0);
  for (int i = 0; i < 4000; ++i) {
    TraceItem item;
    item.arrival_time = clock.next(64);
    item.port = static_cast<std::uint32_t>(i % 64);
    item.fields = {0};
    trace.push_back(item);
  }

  banzai::ReferenceSwitch reference(program.pvsm);
  const auto ref_result =
      reference.run(to_header_batch(trace, program.pvsm.num_slots()));

  const auto stamp = static_cast<std::size_t>(program.pvsm.slot_of("stamp"));
  auto misstamped = [&](const SimResult& result) {
    std::uint64_t wrong = 0;
    for (const auto& rec : result.egress) {
      if (rec.headers[stamp] != static_cast<Value>(rec.seq) + 1) ++wrong;
    }
    return wrong;
  };

  // Current-generation switch with re-circulation.
  RecircOptions ropts;
  ropts.record_egress = true;
  RecircSimulator recirc(program, ropts);
  const auto r_recirc = recirc.run(trace);
  const auto recirc_report =
      check_equivalence(program.pvsm, ref_result, r_recirc);

  // MP5.
  SimOptions mopts = mp5_options(4, 1);
  mopts.record_egress = true;
  Mp5Simulator mp5(program, mopts);
  const auto r_mp5 = mp5.run(trace);
  const auto mp5_report = check_equivalence(program.pvsm, ref_result, r_mp5);

  std::cout << "network sequencer, 4000 packets at line rate, 4 pipelines\n\n";
  std::cout << "re-circulating switch:\n";
  std::cout << "  functionally equivalent: "
            << (recirc_report.equivalent() ? "yes" : "NO") << "\n";
  std::cout << "  mis-stamped packets:     " << misstamped(r_recirc) << "\n";
  std::cout << "  C1-violating packets:    " << r_recirc.c1_violating_packets
            << "\n";
  std::cout << "  throughput:              "
            << r_recirc.normalized_throughput() << "\n\n";
  std::cout << "MP5:\n";
  std::cout << "  functionally equivalent: "
            << (mp5_report.equivalent() ? "yes" : "NO") << "\n";
  std::cout << "  mis-stamped packets:     " << misstamped(r_mp5) << "\n";
  std::cout << "  C1-violating packets:    " << r_mp5.c1_violating_packets
            << "\n";
  std::cout << "  throughput:              " << r_mp5.normalized_throughput()
            << "  (single scalar register: the fundamental 1/k limit of "
               "§3.5.2)\n";
  return mp5_report.equivalent() && misstamped(r_mp5) == 0 ? 0 : 1;
}
