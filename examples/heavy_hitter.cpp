// The motivating example of design principle D2 (§3.1): per-source-IP
// packet counters (DDoS / heavy-hitter detection) stored as a register
// table. Storing the whole table in one pipeline limits throughput to 1/k
// of line rate; MP5's dynamically sharded shared memory processes packets
// in parallel across all pipelines.
//
//   $ ./examples/heavy_hitter
#include <iostream>

#include "baseline/presets.hpp"
#include "common/table.hpp"
#include "domino/compiler.hpp"
#include "mp5/simulator.hpp"
#include "mp5/transform.hpp"
#include "trace/workloads.hpp"

int main() {
  using namespace mp5;

  const std::string source = R"(
    struct Packet { int src_ip; int hits; };
    const int TABLE = 4096;
    int counters[4096] = {0};
    void ddos(struct Packet p) {
      counters[hash2(p.src_ip, 0) % TABLE] =
          counters[hash2(p.src_ip, 0) % TABLE] + 1;
      p.hits = counters[hash2(p.src_ip, 0) % TABLE];
    }
  )";
  const Mp5Program program =
      transform(domino::compile(source, banzai::MachineSpec{}, 1).pvsm);

  SyntheticConfig traffic;
  traffic.stateful_stages = 1;
  traffic.reg_size = 4096;
  traffic.pattern = AccessPattern::kSkewed; // a few sources dominate
  traffic.pipelines = 4;
  traffic.packets = 30000;
  traffic.active_flows = 64;
  const Trace trace = make_synthetic_trace(traffic);

  TextTable table({"design", "throughput", "max stage queue"});
  auto run = [&](const char* name, const SimOptions& opts) {
    Mp5Simulator sim(program, opts);
    const auto result = sim.run(trace);
    table.add_row({name, TextTable::num(result.normalized_throughput(), 3),
                   TextTable::integer(
                       static_cast<long long>(result.max_queue_depth))});
  };

  run("naive: table + all packets in one pipeline", naive_options(4, 1));
  run("static random sharding (no D2)", no_d2_options(4, 1));
  run("MP5: dynamic sharding + steering + phantoms", mp5_options(4, 1));
  run("ideal MP5 (upper bound)", ideal_options(4, 1));

  std::cout << "\nPer-source counters over 4 pipelines, skewed traffic, "
               "line-rate 64 B input:\n\n";
  table.print(std::cout);
  std::cout << "\nThe naive shared-memory design caps at ~1/4 line rate; "
               "MP5 approaches the ideal bound (§3.1, §4.3).\n";
  return 0;
}
