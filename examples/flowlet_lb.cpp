// Flowlet switching (§4.4) on a realistic workload: heavy-tailed
// web-search flows with bimodal packet sizes, processed by MP5 at line
// rate across a sweep of pipeline counts. Demonstrates the full pipeline:
// Domino app -> compiler -> transformer -> multi-pipeline simulation, with
// per-run equivalence checking and flowlet-behaviour statistics.
//
//   $ ./examples/flowlet_lb
#include <iostream>
#include <map>

#include "apps/programs.hpp"
#include "banzai/single_pipeline.hpp"
#include "baseline/presets.hpp"
#include "common/table.hpp"
#include "domino/compiler.hpp"
#include "metrics/equivalence.hpp"
#include "mp5/simulator.hpp"
#include "mp5/transform.hpp"

int main() {
  using namespace mp5;

  const auto app = apps::flowlet_app();
  const Mp5Program program =
      transform(domino::compile(app.source, banzai::MachineSpec{}, 1).pvsm);

  TextTable table({"pipelines", "throughput", "max stage queue",
                   "equivalent", "flowlet hop changes"});
  for (const std::uint32_t k : {1u, 2u, 4u, 8u}) {
    FlowWorkloadConfig config;
    config.pipelines = k;
    config.packets = 20000;
    config.active_flows = 64;
    config.seed = 7;
    const Trace trace = make_flow_trace(config, app.filler);

    SimOptions opts = mp5_options(k, 7);
    opts.record_egress = true;
    Mp5Simulator sim(program, opts);
    const auto result = sim.run(trace);

    banzai::ReferenceSwitch reference(program.pvsm);
    const auto ref_result =
        reference.run(to_header_batch(trace, program.pvsm.num_slots()));
    const auto report =
        check_equivalence(program.pvsm, ref_result, result);

    // Count flowlet-level next-hop changes per flow (the application's
    // observable behaviour).
    const auto hop_slot =
        static_cast<std::size_t>(program.pvsm.slot_of("next_hop"));
    std::map<std::uint64_t, Value> last_hop;
    std::uint64_t hop_changes = 0;
    for (const auto& rec : result.egress) {
      auto [it, inserted] = last_hop.try_emplace(rec.flow, rec.headers[hop_slot]);
      if (!inserted && it->second != rec.headers[hop_slot]) {
        ++hop_changes;
        it->second = rec.headers[hop_slot];
      }
    }

    table.add_row({TextTable::integer(k),
                   TextTable::num(result.normalized_throughput(), 3),
                   TextTable::integer(
                       static_cast<long long>(result.max_queue_depth)),
                   report.equivalent() ? "yes" : "NO",
                   TextTable::integer(static_cast<long long>(hop_changes))});
  }

  std::cout << "flowlet switching over web-search flows, bimodal "
               "200/1400 B packets, line-rate input\n\n";
  table.print(std::cout);
  std::cout << "\nLine rate at every pipeline count with bounded stage "
               "queues (cf. Figure 8a; the paper observed max 11).\n";
  return 0;
}
