// Quickstart: write a stateful Domino program, compile it for MP5, run it
// on the multi-pipeline simulator at line rate, and verify functional
// equivalence against the logical single-pipeline switch.
//
//   $ ./examples/quickstart
#include <iostream>

#include "banzai/single_pipeline.hpp"
#include "baseline/presets.hpp"
#include "common/rng.hpp"
#include "domino/compiler.hpp"
#include "metrics/equivalence.hpp"
#include "mp5/simulator.hpp"
#include "mp5/transform.hpp"
#include "trace/workloads.hpp"

int main() {
  using namespace mp5;

  // 1. A packet-processing program: per-source packet counters with a
  //    threshold flag (a miniature heavy-hitter detector).
  const std::string source = R"(
    struct Packet { int src; int flagged; };
    const int TABLE = 1024;
    const int THRESHOLD = 50;
    int counts[1024] = {0};
    void heavy_hitter(struct Packet p) {
      counts[p.src % TABLE] = counts[p.src % TABLE] + 1;
      p.flagged = counts[p.src % TABLE] > THRESHOLD;
    }
  )";

  // 2. Compile: Domino -> three-address code -> PVSM -> MP5 transform
  //    (preemptive address resolution + phantom generation).
  const auto compiled =
      domino::compile(source, banzai::MachineSpec{}, /*reserve_stages=*/1);
  const Mp5Program program = transform(compiled.pvsm);
  std::cout << "compiled: " << program.pvsm.stages.size()
            << " program stages (+1 address-resolution stage), "
            << program.accesses.size() << " stateful access(es), "
            << program.conservative_accesses()
            << " conservative, " << program.pinned_registers()
            << " pinned array(s)\n";

  // 3. A line-rate trace for a 4-pipeline switch.
  SyntheticConfig traffic;
  traffic.stateful_stages = 1; // field h0 drives `src`
  traffic.reg_size = 1024;
  traffic.pattern = AccessPattern::kSkewed;
  traffic.pipelines = 4;
  traffic.packets = 20000;
  traffic.active_flows = 32;
  const Trace trace = make_synthetic_trace(traffic);

  // 4. Run MP5 with 4 pipelines.
  SimOptions options = mp5_options(/*pipelines=*/4, /*seed=*/1);
  options.record_egress = true;
  Mp5Simulator simulator(program, options);
  const SimResult result = simulator.run(trace);

  std::cout << "MP5 (4 pipelines): throughput "
            << result.normalized_throughput() << ", " << result.egressed
            << "/" << result.offered << " packets, max stage queue "
            << result.max_queue_depth << ", steers " << result.steers
            << ", remap moves " << result.remap_moves << "\n";

  // 5. Verify functional equivalence against the single-pipeline switch.
  banzai::ReferenceSwitch reference(program.pvsm);
  const auto ref_result =
      reference.run(to_header_batch(trace, program.pvsm.num_slots()));
  const auto report = check_equivalence(program.pvsm, ref_result, result);
  std::cout << "functional equivalence: "
            << (report.equivalent() ? "OK" : "VIOLATED") << "\n";
  if (!report.equivalent()) {
    std::cout << "  first difference: " << report.first_difference << "\n";
    return 1;
  }
  std::cout << "C1 order violations: " << result.c1_violating_packets
            << "\n";
  return 0;
}
