// Multiple independent logical MP5 switches on one physical switch (§3.1,
// footnote 1): a WFQ scheduler program on three pipelines serving most
// ports, and a network sequencer on the remaining pipeline serving the
// consensus traffic — each a fully independent logical MP5.
//
//   $ ./examples/multi_tenant
#include <iostream>

#include "apps/programs.hpp"
#include "baseline/presets.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "domino/compiler.hpp"
#include "mp5/partition.hpp"
#include "mp5/transform.hpp"

int main() {
  using namespace mp5;

  const auto wfq_spec = apps::wfq_app();
  const auto seq_spec = apps::sequencer_app();
  const Mp5Program wfq =
      transform(domino::compile(wfq_spec.source, {}, 1).pvsm);
  const Mp5Program sequencer =
      transform(domino::compile(seq_spec.source, {}, 1).pvsm);

  PartitionSpec data_plane;
  data_plane.name = "wfq (ports 0-47)";
  data_plane.program = &wfq;
  data_plane.pipelines = 3;
  data_plane.options = mp5_options(3, 1);

  PartitionSpec consensus;
  consensus.name = "sequencer (ports 48-63)";
  consensus.program = &sequencer;
  consensus.pipelines = 1;
  consensus.options = mp5_options(1, 2);

  PartitionedSwitch sw({data_plane, consensus}, /*total_pipelines=*/4);

  // One physical arrival stream; the classifier routes by ingress port.
  // WFQ ports carry data traffic (6 header fields), sequencer ports carry
  // OUM traffic (3 fields) — field vectors sized for the larger program.
  Rng rng(11);
  Trace trace;
  LineRateClock clock(4, 1.0);
  for (int i = 0; i < 24000; ++i) {
    TraceItem item;
    item.size_bytes = rng.chance(0.45) ? 200 : 1400;
    item.arrival_time = clock.next(item.size_bytes);
    item.port = static_cast<std::uint32_t>(rng.next_below(64));
    item.flow = rng.next_below(256);
    if (item.port < 48) {
      item.fields = {static_cast<Value>(item.flow & 0xff),
                     static_cast<Value>(item.flow >> 8),
                     static_cast<Value>(item.size_bytes),
                     static_cast<Value>(item.arrival_time), 0, 0};
    } else {
      item.fields = {static_cast<Value>(item.flow % 8), 1, 0};
    }
    trace.push_back(std::move(item));
  }
  sort_by_arrival(trace);

  const auto results = sw.run(trace, [](const TraceItem& item) {
    return item.port < 48 ? std::size_t{0} : std::size_t{1};
  });

  TextTable table({"logical switch", "pipelines", "packets", "throughput",
                   "max stage queue"});
  const std::uint32_t pipes[] = {3, 1};
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i].result;
    table.add_row({results[i].name, TextTable::integer(pipes[i]),
                   TextTable::integer(static_cast<long long>(r.offered)),
                   TextTable::num(r.normalized_throughput(), 3),
                   TextTable::integer(
                       static_cast<long long>(r.max_queue_depth))});
  }
  std::cout << "one 4-pipeline switch, two independent logical MP5s:\n\n";
  table.print(std::cout);
  std::cout << "\naggregate throughput: "
            << PartitionedSwitch::aggregate_throughput(results) << "\n";
  return 0;
}
