#!/usr/bin/env python3
"""Compare a BENCH_*.json run against a committed baseline snapshot.

Reads two "mp5-bench" documents (see src/telemetry/bench_report.hpp) and
diffs them row by row. Rate metrics (anything named like a throughput:
``items_per_second``, ``packets/s``, ``sim_cycles/s``) are higher-better
and gate the exit status: a rate more than ``--threshold`` below the
baseline is a regression and the script exits nonzero. Time metrics
(``real_time_ns``, ``cpu_time_ns``) are printed for context only — wall
times on shared CI runners are too noisy to gate on.

Usage:
    tools/compare_bench.py bench/baselines/BENCH_micro.json BENCH_micro.json
    tools/compare_bench.py --update bench/baselines/BENCH_micro.json BENCH_micro.json

stdlib only; no third-party imports.
"""

import argparse
import json
import shutil
import sys


def is_rate_metric(name):
    return name.endswith("/s") or name.endswith("per_second")


def is_time_metric(name):
    return name.endswith("_ns")


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "mp5-bench":
        raise SystemExit(f"{path}: not an mp5-bench document")
    return {row["name"]: row.get("metrics", {}) for row in doc.get("rows", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline snapshot")
    parser.add_argument("current", help="freshly generated BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="allowed fractional rate drop before failing (default 0.10)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="overwrite the baseline with the current run and exit 0",
    )
    args = parser.parse_args()

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline updated: {args.current} -> {args.baseline}")
        return 0

    baseline = load_rows(args.baseline)
    current = load_rows(args.current)

    regressions = []
    width = max((len(n) for n in current), default=0) + 2
    for name in sorted(current):
        metrics = current[name]
        base_metrics = baseline.get(name)
        if base_metrics is None:
            print(f"{name:<{width}} (new benchmark, no baseline)")
            continue
        for metric in sorted(metrics):
            if not (is_rate_metric(metric) or is_time_metric(metric)):
                continue
            base = base_metrics.get(metric)
            cur = metrics[metric]
            if base is None or base == 0:
                continue
            delta = (cur - base) / base
            gated = is_rate_metric(metric)
            flag = ""
            if gated and delta < -args.threshold:
                flag = "  << REGRESSION"
                regressions.append((name, metric, base, cur, delta))
            print(
                f"{name:<{width}} {metric:<18} "
                f"{base:>14.4g} -> {cur:>14.4g}  {delta:+7.1%}"
                f"{'' if gated else '  (informational)'}{flag}"
            )

    missing = sorted(set(baseline) - set(current))
    for name in missing:
        print(f"{name:<{width}} MISSING from current run")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} rate regression(s) beyond "
            f"{args.threshold:.0%} threshold:"
        )
        for name, metric, base, cur, delta in regressions:
            print(f"  {name} {metric}: {base:.4g} -> {cur:.4g} ({delta:+.1%})")
        print("If intentional, refresh the snapshot with --update.")
        return 1
    if missing:
        print(f"\nWARNING: {len(missing)} baseline row(s) missing from the run")
    print("\nOK: no rate regressions beyond the threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
