#!/usr/bin/env python3
"""Validate MP5 machine-readable artifacts (stdlib only).

Checks any mix of the JSON schemas this repo emits, plus the binary
checkpoint format:

  mp5-results        mp5sim --json            (schema_version 1)
  mp5-chrome-trace   mp5sim --trace-out       (schema_version 1)
  mp5-bench          bench_* BENCH_<name>.json (schema_version 1)
  mp5-fuzz-repro     mp5fuzz reproducers       (schema_version 1)
  mp5-fabric-results mp5fabric --json          (schema_version 1)
  mp5-native-results mp5native --json          (schema_version 1)
  mp5-checkpoint     mp5sim --checkpoint-out / mp5soak (binary, version 1)

Usage:  validate_results.py FILE [FILE...]

The schema is sniffed per file (the binary checkpoint magic at offset 0,
a top-level "schema" key, or the Chrome trace's "traceEvents"/"otherData"
envelope), so callers can pass results, traces, bench reports and
checkpoints in one invocation. Exits nonzero on the first malformed file
with a one-line diagnostic naming the file and the check.
"""

import json
import struct
import sys

SUPPORTED_VERSIONS = {
    "mp5-results": 1,
    "mp5-chrome-trace": 1,
    "mp5-bench": 1,
    "mp5-fuzz-repro": 1,
    "mp5-fabric-results": 1,
    "mp5-native-results": 1,
}


class ValidationError(Exception):
    pass


def fail(msg):
    raise ValidationError(msg)


def require(obj, key, types, where):
    if not isinstance(obj, dict):
        fail(f"{where}: expected object, got {type(obj).__name__}")
    if key not in obj:
        fail(f"{where}: missing required key '{key}'")
    if not isinstance(obj[key], types):
        names = (
            types.__name__
            if isinstance(types, type)
            else "/".join(t.__name__ for t in types)
        )
        fail(f"{where}: '{key}' must be {names}, "
             f"got {type(obj[key]).__name__}")
    return obj[key]


NUM = (int, float)


def check_version(doc, schema, where):
    version = require(doc, "schema_version", int, where)
    expected = SUPPORTED_VERSIONS[schema]
    if version != expected:
        fail(f"{where}: unsupported {schema} schema_version {version} "
             f"(this validator knows {expected})")


def check_metric_map(obj, where):
    """A {name: number} map — counters, gauges, or bench metrics."""
    if not isinstance(obj, dict):
        fail(f"{where}: expected object of named numbers")
    for name, value in obj.items():
        if not isinstance(value, NUM):
            fail(f"{where}: metric '{name}' is not a number")


def check_telemetry_section(telem, where):
    check_metric_map(require(telem, "counters", dict, where),
                     f"{where}.counters")
    check_metric_map(require(telem, "gauges", dict, where),
                     f"{where}.gauges")
    histograms = require(telem, "histograms", dict, where)
    for name, hist in histograms.items():
        hwhere = f"{where}.histograms['{name}']"
        require(hist, "bucket_width", NUM, hwhere)
        total = require(hist, "total", int, hwhere)
        for q in ("p50", "p90", "p99"):
            # Empty histograms quantile to NaN, which the writer emits as
            # null; both shapes are legal.
            v = require(hist, q, (int, float, type(None)), hwhere)
            if total == 0 and isinstance(v, NUM):
                fail(f"{hwhere}: empty histogram has non-null {q}")
        buckets = require(hist, "buckets", list, hwhere)
        if sum(int(b) for b in buckets) != total:
            fail(f"{hwhere}: bucket sum != total")
    events = require(telem, "events", (dict, type(None)), where)
    if events is not None:
        ewhere = f"{where}.events"
        capacity = require(events, "capacity", int, ewhere)
        recorded = require(events, "recorded", int, ewhere)
        retained = require(events, "retained", int, ewhere)
        dropped = require(events, "dropped", int, ewhere)
        if retained > capacity:
            fail(f"{ewhere}: retained {retained} exceeds capacity {capacity}")
        if retained + dropped != recorded:
            fail(f"{ewhere}: retained + dropped != recorded")


def validate_results(doc, where):
    check_version(doc, "mp5-results", where)
    meta = require(doc, "meta", dict, where)
    for key, types in (("design", str), ("program", str), ("pipelines", int),
                       ("packets", int), ("seed", int), ("load", NUM)):
        require(meta, key, types, f"{where}.meta")
    # Keys added with the replicated variants (ISSUE 10); older documents
    # predate them.
    if "variant" in meta:
        variant = require(meta, "variant", str, f"{where}.meta")
        if variant not in FUZZ_VARIANTS:
            fail(f"{where}.meta: variant '{variant}' not in "
                 f"{sorted(FUZZ_VARIANTS)}")
        require(meta, "staleness", int, f"{where}.meta")

    packets = require(doc, "packets", dict, where)
    fields = ("offered", "egressed", "dropped_phantom", "dropped_data",
              "dropped_starved", "dropped_fault", "ecn_marked")
    for key in fields:
        require(packets, key, int, f"{where}.packets")
    accounted = sum(packets[k] for k in ("egressed", "dropped_data",
                                         "dropped_starved", "dropped_fault"))
    if accounted > packets["offered"]:
        fail(f"{where}.packets: conservation violated "
             f"({accounted} accounted > {packets['offered']} offered)")

    timing = require(doc, "timing", dict, where)
    for key in ("first_arrival", "last_arrival", "last_egress", "cycles_run"):
        require(timing, key, int, f"{where}.timing")
    for key in ("input_rate", "normalized_throughput"):
        require(timing, key, NUM, f"{where}.timing")

    mechanics = require(doc, "mechanics", dict, where)
    for key in ("steers", "wasted_cycles", "blocked_cycles", "remap_moves",
                "recirculations", "max_queue_depth"):
        require(mechanics, key, int, f"{where}.mechanics")

    faults = require(doc, "faults", dict, where)
    for key in ("pipeline_failures", "pipeline_recoveries",
                "fault_remapped_indices", "phantom_lost", "phantom_delayed",
                "stalled_cycles", "time_to_recover", "fault_drops"):
        require(faults, key, int, f"{where}.faults")

    correctness = require(doc, "correctness", dict, where)
    require(correctness, "c1_violating_packets", int, f"{where}.correctness")
    require(correctness, "reordered_flow_packets", int,
            f"{where}.correctness")
    for key in ("c1_fraction", "drop_fraction"):
        v = require(correctness, key, NUM, f"{where}.correctness")
        if not 0.0 <= v <= 1.0:
            fail(f"{where}.correctness: {key}={v} outside [0, 1]")

    telem = require(doc, "telemetry", (dict, type(None)), where)
    if telem is not None:
        check_telemetry_section(telem, f"{where}.telemetry")


def validate_chrome_trace(doc, where):
    other = require(doc, "otherData", dict, where)
    schema = require(other, "schema", str, f"{where}.otherData")
    if schema != "mp5-chrome-trace":
        fail(f"{where}.otherData: schema '{schema}' != 'mp5-chrome-trace'")
    check_version(other, "mp5-chrome-trace", f"{where}.otherData")
    recorded = require(other, "events_recorded", int, f"{where}.otherData")
    dropped = require(other, "events_dropped", int, f"{where}.otherData")
    check_metric_map(require(other, "counters", dict, f"{where}.otherData"),
                     f"{where}.otherData.counters")

    events = require(doc, "traceEvents", list, where)
    instants = [e for e in events if e.get("ph") == "i"]
    if recorded > 0 and not instants:
        fail(f"{where}: recorded {recorded} events but traceEvents has "
             f"no instant events")
    if len(instants) + dropped != recorded:
        fail(f"{where}: instant events ({len(instants)}) + dropped "
             f"({dropped}) != recorded ({recorded})")
    last_ts = None
    for i, ev in enumerate(events):
        ewhere = f"{where}.traceEvents[{i}]"
        require(ev, "name", str, ewhere)
        require(ev, "ph", str, ewhere)
        require(ev, "pid", int, ewhere)
        if ev["ph"] == "M":
            continue
        require(ev, "tid", int, ewhere)
        ts = require(ev, "ts", int, ewhere)
        if last_ts is not None and ts < last_ts:
            fail(f"{ewhere}: timestamps not monotonic ({ts} < {last_ts})")
        last_ts = ts


def validate_bench(doc, where):
    check_version(doc, "mp5-bench", where)
    require(doc, "bench", str, where)
    rows = require(doc, "rows", list, where)
    if not rows:
        fail(f"{where}: rows must be non-empty")
    seen = set()
    for i, row in enumerate(rows):
        rwhere = f"{where}.rows[{i}]"
        name = require(row, "name", str, rwhere)
        if name in seen:
            fail(f"{rwhere}: duplicate row name '{name}'")
        seen.add(name)
        metrics = require(row, "metrics", dict, rwhere)
        if not metrics:
            fail(f"{rwhere}: metrics must be non-empty")
        check_metric_map(metrics, f"{rwhere}.metrics")
        labels = require(row, "labels", dict, rwhere)
        for key, value in labels.items():
            if not isinstance(value, str):
                fail(f"{rwhere}.labels: '{key}' is not a string")


FUZZ_EXPECT = {"pass", "oracle-divergence", "sim-divergence",
               "checkpoint-divergence", "crash", "variant-divergence"}
FUZZ_VARIANTS = {"mp5", "scr", "relaxed"}
FUZZ_SHARDING = {"dynamic", "static-random", "single-pipeline", "ideal-lpt"}


def validate_repro(doc, where):
    check_version(doc, "mp5-fuzz-repro", where)
    expect = require(doc, "expect", str, where)
    if expect not in FUZZ_EXPECT:
        fail(f"{where}: expect '{expect}' not in {sorted(FUZZ_EXPECT)}")
    require(doc, "seed", int, where)
    require(doc, "inject_floor_mod_bug", bool, where)
    require(doc, "detail", str, where)
    program = require(doc, "program", str, where)
    if not program.endswith(".dom"):
        fail(f"{where}: program '{program}' must end in .dom")
    trace = require(doc, "trace", str, where)
    if not trace.endswith(".trace.csv"):
        fail(f"{where}: trace '{trace}' must end in .trace.csv")
    config = require(doc, "config", dict, where)
    cwhere = f"{where}.config"
    for key in ("pipelines", "threads", "remap_period"):
        if require(config, key, int, cwhere) < 1:
            fail(f"{cwhere}: {key} must be >= 1")
    sharding = require(config, "sharding", str, cwhere)
    if sharding not in FUZZ_SHARDING:
        fail(f"{cwhere}: sharding '{sharding}' not in {sorted(FUZZ_SHARDING)}")
    require(config, "fast_forward", bool, cwhere)
    require(config, "reference_rebalance", bool, cwhere)
    if require(config, "fifo_capacity", int, cwhere) < 0:
        fail(f"{cwhere}: fifo_capacity must be >= 0")
    require(config, "seed", int, cwhere)
    # Added after schema_version 1 shipped; absent in older corpus files.
    if "checkpoint_restore" in config:
        require(config, "checkpoint_restore", bool, cwhere)
    if "variant" in config:
        variant = require(config, "variant", str, cwhere)
        if variant not in FUZZ_VARIANTS:
            fail(f"{cwhere}: variant '{variant}' not in "
                 f"{sorted(FUZZ_VARIANTS)}")
        staleness = require(config, "staleness", int, cwhere)
        if variant == "relaxed" and staleness < 1:
            fail(f"{cwhere}: relaxed variant needs staleness >= 1")
        if variant != "relaxed" and staleness != 0:
            fail(f"{cwhere}: staleness is only meaningful for the relaxed "
                 "variant")
    elif expect == "variant-divergence":
        fail(f"{cwhere}: variant-divergence entries must name their variant")


FABRIC_LB_MODES = {"ecmp", "wcmp", "flowlet", "conga"}
FABRIC_DROP_FATES = ("dead_source", "dead_destination", "switch_killed",
                     "in_switch")


def validate_fabric_results(doc, where):
    check_version(doc, "mp5-fabric-results", where)
    config = require(doc, "config", dict, where)
    cwhere = f"{where}.config"
    leaves = require(config, "leaves", int, cwhere)
    spines = require(config, "spines", int, cwhere)
    for key in ("hosts_per_leaf", "pipelines", "remap_period",
                "util_window"):
        require(config, key, int, cwhere)
    for key in ("salt", "seed", "link_latency"):
        require(config, key, int, cwhere)
    require(config, "link_bytes_per_cycle", NUM, cwhere)
    lb = require(config, "lb", str, cwhere)
    if lb not in FABRIC_LB_MODES:
        fail(f"{cwhere}: lb '{lb}' not in {sorted(FABRIC_LB_MODES)}")
    require(config, "hash", str, cwhere)
    workload = require(config, "workload", dict, cwhere)
    wwhere = f"{cwhere}.workload"
    for key in ("flows", "max_flow_packets", "burst_size", "packet_bytes",
                "seed"):
        require(workload, key, int, wwhere)
    for key in ("flow_rate", "mean_lifetime", "zipf_exponent",
                "burst_spacing"):
        require(workload, key, NUM, wwhere)

    totals = require(doc, "totals", dict, where)
    twhere = f"{where}.totals"
    injected = require(totals, "injected", int, twhere)
    delivered = require(totals, "delivered", int, twhere)
    dropped = require(totals, "dropped", dict, twhere)
    for key in FABRIC_DROP_FATES + ("total",):
        require(dropped, key, int, f"{twhere}.dropped")
    if sum(dropped[k] for k in FABRIC_DROP_FATES) != dropped["total"]:
        fail(f"{twhere}.dropped: fates do not sum to total")
    in_flight = require(totals, "in_flight_end", int, twhere)
    conserved = require(totals, "conserved", bool, twhere)
    # The fabric's core invariant: every packet delivered, dropped with a
    # recorded fate, or in flight at truncation.
    balanced = injected == delivered + dropped["total"] + in_flight
    if balanced != conserved:
        fail(f"{twhere}: conserved flag disagrees with the ledger")
    if not balanced:
        fail(f"{twhere}: conservation violated ({injected} injected != "
             f"{delivered} delivered + {dropped['total']} dropped + "
             f"{in_flight} in flight)")
    require(totals, "truncated", bool, twhere)
    require(totals, "cycles_run", int, twhere)
    for key in ("throughput_pkts_per_cycle", "offered_pkts_per_cycle",
                "delivered_fraction"):
        require(totals, key, NUM, twhere)

    flows = require(doc, "flows", dict, where)
    fwhere = f"{where}.flows"
    for key in ("total", "started", "completed", "fully_delivered",
                "peak_concurrent", "reordered_packets"):
        require(flows, key, int, fwhere)
    if flows["fully_delivered"] > flows["completed"]:
        fail(f"{fwhere}: fully_delivered exceeds completed")
    if flows["completed"] > flows["started"]:
        fail(f"{fwhere}: completed exceeds started")
    fct = require(flows, "fct", dict, fwhere)
    require(fct, "count", int, f"{fwhere}.fct")
    for key in ("p50", "p90", "p99", "mean", "max"):
        require(fct, key, NUM, f"{fwhere}.fct")

    latency = require(doc, "latency", dict, where)
    for key in ("p50", "p90", "p99"):
        require(latency, key, NUM, f"{where}.latency")

    uplinks = require(doc, "uplinks", dict, where)
    for key in ("util_max", "util_mean", "util_skew"):
        require(uplinks, key, NUM, f"{where}.uplinks")

    links = require(doc, "links", list, where)
    if len(links) != 2 * leaves * spines:
        fail(f"{where}.links: {len(links)} links != 2*{leaves}*{spines}")
    for i, link in enumerate(links):
        lwhere = f"{where}.links[{i}]"
        require(link, "name", str, lwhere)
        for key in ("from", "to", "packets", "bytes"):
            require(link, key, int, lwhere)
        for key in ("uplink", "killed"):
            require(link, key, bool, lwhere)
        for key in ("weight", "busy_cycles", "peak_queue_cycles"):
            require(link, key, NUM, lwhere)
        util = require(link, "utilization", NUM, lwhere)
        if not 0.0 <= util <= 1.0:
            fail(f"{lwhere}: utilization {util} outside [0, 1]")

    switches = require(doc, "switches", list, where)
    if len(switches) != leaves + spines:
        fail(f"{where}.switches: {len(switches)} switches != "
             f"{leaves}+{spines}")
    for i, sw in enumerate(switches):
        swhere = f"{where}.switches[{i}]"
        require(sw, "name", str, swhere)
        require(sw, "killed", bool, swhere)
        for key in ("killed_at", "offered", "egressed", "dropped_data",
                    "dropped_phantom", "steers", "wasted_cycles",
                    "remap_moves", "max_queue_depth",
                    "c1_violating_packets", "reordered_flow_packets"):
            require(sw, key, int, swhere)
        c1 = require(sw, "c1_fraction", NUM, swhere)
        if not 0.0 <= c1 <= 1.0:
            fail(f"{swhere}: c1_fraction {c1} outside [0, 1]")

    telem = require(doc, "telemetry", (dict, type(None)), where)
    if telem is not None:
        check_telemetry_section(telem, f"{where}.telemetry")


NATIVE_POLICIES = {"dynamic", "static", "single", "lpt"}


def validate_native_results(doc, where):
    check_version(doc, "mp5-native-results", where)
    meta = require(doc, "meta", dict, where)
    mwhere = f"{where}.meta"
    require(meta, "program", str, mwhere)
    cores = require(meta, "cores", int, mwhere)
    if cores < 1:
        fail(f"{mwhere}: cores must be >= 1")
    for key in ("batch", "ring_capacity", "pool_packets",
                "rebalance_packets", "seed", "hardware_concurrency"):
        require(meta, key, int, mwhere)
    require(meta, "pinned", bool, mwhere)
    policy = require(meta, "policy", str, mwhere)
    if policy not in NATIVE_POLICIES:
        fail(f"{mwhere}: policy '{policy}' not in {sorted(NATIVE_POLICIES)}")

    throughput = require(doc, "throughput", dict, where)
    twhere = f"{where}.throughput"
    packets = require(throughput, "packets", int, twhere)
    require(throughput, "seconds", NUM, twhere)
    require(throughput, "pkts_per_sec", NUM, twhere)

    sharding = require(doc, "sharding", dict, where)
    swhere = f"{where}.sharding"
    require(sharding, "policy", str, swhere)
    for key in ("moves", "rebalances"):
        require(sharding, key, int, swhere)

    prof = require(doc, "profiler", dict, where)
    pwhere = f"{where}.profiler"
    workers = require(prof, "workers", list, pwhere)
    if len(workers) != cores:
        fail(f"{pwhere}.workers: {len(workers)} entries != {cores} cores")
    for i, w in enumerate(workers):
        wwhere = f"{pwhere}.workers[{i}]"
        for key in ("hops", "stages", "accesses", "forwards", "parks",
                    "idle_spins", "busy_ns", "idle_ns"):
            require(w, key, int, wwhere)
    registers = require(prof, "registers", list, pwhere)
    for i, reg in enumerate(registers):
        rwhere = f"{pwhere}.registers[{i}]"
        require(reg, "name", str, rwhere)
        for key in ("claimed", "performed", "remote", "parks",
                    "busiest_owner"):
            require(reg, key, int, rwhere)
        if reg["performed"] > reg["claimed"]:
            fail(f"{rwhere}: performed exceeds claimed")
        if reg["busiest_owner"] >= cores:
            fail(f"{rwhere}: busiest_owner {reg['busiest_owner']} out of "
                 f"range for {cores} cores")
        share = require(reg, "owner_share", NUM, rwhere)
        if not 0.0 <= share <= 1.0:
            fail(f"{rwhere}: owner_share {share} outside [0, 1]")
    serializing = require(prof, "serializing_register", (str, type(None)),
                          pwhere)
    if serializing is not None and registers:
        if serializing not in {r["name"] for r in registers}:
            fail(f"{pwhere}: serializing_register '{serializing}' names no "
                 f"profiled register")
    fraction = require(prof, "serial_fraction", NUM, pwhere)
    if not 0.0 <= fraction <= 1.0:
        fail(f"{pwhere}: serial_fraction {fraction} outside [0, 1]")
    # The serializing register's busiest owner cannot have executed more
    # accesses than packets exist.
    if packets > 0 and registers:
        busiest = max(r.get("busiest_owner_accesses", 0) for r in registers
                      if isinstance(r.get("busiest_owner_accesses", 0), int))
        if busiest > packets * max(1, len(registers)):
            fail(f"{pwhere}: busiest-owner accesses exceed total work")

    oracle = require(doc, "oracle", dict, where)
    owhere = f"{where}.oracle"
    checked = require(oracle, "checked", bool, owhere)
    equivalent = require(oracle, "equivalent", (bool, type(None)), owhere)
    if checked and equivalent is None:
        fail(f"{owhere}: checked run must record an equivalent verdict")
    if not checked and equivalent is not None:
        fail(f"{owhere}: unchecked run cannot claim a verdict")


CHECKPOINT_MAGIC = b"mp5-checkpoint v1\n"
CHECKPOINT_VERSION = 1
# magic + u32 version + u64 fingerprint + u64 cycle + u64 payload length
CHECKPOINT_HEADER = len(CHECKPOINT_MAGIC) + 4 + 8 + 8 + 8


def fnv1a(data):
    h = 0xCBF29CE484222325
    for b in data:
        h = ((h ^ b) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def validate_checkpoint(blob, where):
    """An mp5-checkpoint v1 file: one frame (mp5sim --checkpoint-out) or
    two back-to-back (mp5soak: simulator frame + verifier frame)."""
    frames = 0
    offset = 0
    while offset < len(blob):
        fwhere = f"{where}: frame {frames}"
        frame = blob[offset:]
        if not frame.startswith(CHECKPOINT_MAGIC):
            fail(f"{fwhere}: bad magic")
        if len(frame) < CHECKPOINT_HEADER + 8:
            fail(f"{fwhere}: truncated header")
        version, = struct.unpack_from("<I", frame, len(CHECKPOINT_MAGIC))
        if version != CHECKPOINT_VERSION:
            fail(f"{fwhere}: unsupported version {version}")
        payload_len, = struct.unpack_from("<Q", frame, CHECKPOINT_HEADER - 8)
        total = CHECKPOINT_HEADER + payload_len + 8
        if total > len(frame):
            fail(f"{fwhere}: frame exceeds file "
                 f"(payload length {payload_len})")
        stored, = struct.unpack_from("<Q", frame, total - 8)
        if fnv1a(frame[:total - 8]) != stored:
            fail(f"{fwhere}: checksum mismatch")
        frames += 1
        offset += total
    if frames == 0:
        fail(f"{where}: empty checkpoint file")
    if frames > 2:
        fail(f"{where}: {frames} frames (expected 1 or 2)")


def validate_file(path):
    # Binary checkpoint files are sniffed by magic before any JSON parse.
    with open(path, "rb") as fp:
        head = fp.read(len(CHECKPOINT_MAGIC))
        if head == CHECKPOINT_MAGIC:
            blob = head + fp.read()
            validate_checkpoint(blob, path)
            return "mp5-checkpoint"
    with open(path, "r", encoding="utf-8") as fp:
        doc = json.load(fp)
    if not isinstance(doc, dict):
        fail(f"{path}: top level must be an object")
    if "traceEvents" in doc:
        schema = "mp5-chrome-trace"
        validate_chrome_trace(doc, path)
    else:
        schema = require(doc, "schema", str, path)
        if schema == "mp5-results":
            validate_results(doc, path)
        elif schema == "mp5-bench":
            validate_bench(doc, path)
        elif schema == "mp5-fuzz-repro":
            validate_repro(doc, path)
        elif schema == "mp5-fabric-results":
            validate_fabric_results(doc, path)
        elif schema == "mp5-native-results":
            validate_native_results(doc, path)
        else:
            fail(f"{path}: unknown schema '{schema}'")
    return schema


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            schema = validate_file(path)
        except ValidationError as err:
            print(f"FAIL {err}", file=sys.stderr)
            return 1
        except (OSError, json.JSONDecodeError) as err:
            print(f"FAIL {path}: {err}", file=sys.stderr)
            return 1
        print(f"ok   {path} ({schema})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
