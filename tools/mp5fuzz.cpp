// mp5fuzz — differential fuzzer for the MP5 simulator.
//
// For each seed: generate a Domino program and a packet trace, then run
// three executors — the AstInterp oracle, the banzai single-pipeline
// reference, and the MP5 simulator across a configuration matrix — and
// cross-check them. On divergence or crash the failing (program, trace)
// pair is shrunk by delta debugging and written to the corpus directory
// as a self-contained reproducer (.json + .dom + .trace.csv).
//
// The replicated design variants (scr / relaxed, ISSUE 10) run in
// *expectation mode*: they genuinely relax consistency, so divergence from
// the single-pipeline reference is per-seed classification data (the
// equivalence-class table printed at the end), not a failure. Crashes,
// drops, nondeterminism and checkpoint breakage in a variant cell remain
// failures. --witnesses N shrinks up to N divergent (seed, cell) pairs
// into committed-corpus-style reproducers that demonstrate the variant
// diverging while MP5 at the same pipeline count passes.
//
// Usage:
//   mp5fuzz --seeds 500                       full-matrix campaign
//   mp5fuzz --budget-s 60 --fail-on-divergence   CI smoke (time-boxed)
//   mp5fuzz --replay corpus/seed42-sim-divergence.json
//   mp5fuzz --inject-floor-mod-bug --seeds 50  detection self-test
//   mp5fuzz --seeds 200 --witnesses 2         collect divergence witnesses
//
// Options:
//   --seeds N            number of seeds to try (default 500; 0 = until
//                        the budget expires)
//   --seed-start S       first seed (default 1)
//   --budget-s T         wall-clock budget in seconds (default: none)
//   --matrix full|quick  simulator config matrix (default full: 144 cells)
//   --packets N          max packets per generated trace (default 96)
//   --trace-mutations N  seeded mutations per trace (default 2)
//   --corpus DIR         reproducer output directory (default fuzz-corpus)
//   --no-shrink          save failures unshrunk
//   --checkpoint         checkpoint/restore column: every matrix cell is
//                        additionally re-run with a mid-run checkpoint and
//                        restored into a fresh simulator; any deviation
//                        from the uninterrupted SimResult is a
//                        checkpoint-divergence failure
//   --no-variants        skip the replicated-variant (scr/relaxed) cells
//   --witnesses N        shrink and save up to N variant-divergence
//                        witnesses (default 0)
//   --fail-on-divergence exit 2 when any failure was found (expected
//                        variant divergences never count)
//   --inject-floor-mod-bug  self-test: off-by-one fault in the oracle's
//                        index reduction; the fuzzer must catch it
//   --replay FILE.json   replay one reproducer; exit 0 iff the observed
//                        outcome matches its "expect" field
#include <chrono>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "fuzz/ast_printer.hpp"
#include "fuzz/differ.hpp"
#include "fuzz/repro.hpp"
#include "fuzz/shrink.hpp"

namespace {

using namespace mp5;
using namespace mp5::fuzz;

struct Args {
  std::uint64_t seeds = 500;
  std::uint64_t seed_start = 1;
  double budget_s = 0; // 0 = no budget
  std::string matrix = "full";
  std::size_t packets = 96;
  std::uint32_t trace_mutations = 2;
  std::string corpus = "fuzz-corpus";
  bool shrink_failures = true;
  bool variants = true;
  std::uint64_t witnesses = 0;
  bool checkpoint_restore = false;
  bool fail_on_divergence = false;
  bool inject_floor_mod_bug = false;
  std::string replay_file;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw ConfigError(arg + " needs an argument");
      return argv[++i];
    };
    if (arg == "--seeds") args.seeds = std::stoull(next());
    else if (arg == "--seed-start") args.seed_start = std::stoull(next());
    else if (arg == "--budget-s") args.budget_s = std::stod(next());
    else if (arg == "--matrix") args.matrix = next();
    else if (arg == "--packets") args.packets = std::stoull(next());
    else if (arg == "--trace-mutations")
      args.trace_mutations = static_cast<std::uint32_t>(std::stoul(next()));
    else if (arg == "--corpus") args.corpus = next();
    else if (arg == "--no-shrink") args.shrink_failures = false;
    else if (arg == "--no-variants") args.variants = false;
    else if (arg == "--witnesses") args.witnesses = std::stoull(next());
    else if (arg == "--checkpoint") args.checkpoint_restore = true;
    else if (arg == "--fail-on-divergence") args.fail_on_divergence = true;
    else if (arg == "--inject-floor-mod-bug")
      args.inject_floor_mod_bug = true;
    else if (arg == "--replay") args.replay_file = next();
    else throw ConfigError("unknown option '" + arg + "'");
  }
  if (args.matrix != "full" && args.matrix != "quick") {
    throw ConfigError("--matrix expects full|quick, got '" + args.matrix +
                      "'");
  }
  if (args.packets < 1) throw ConfigError("--packets must be >= 1");
  if (args.seeds == 0 && args.budget_s <= 0) {
    throw ConfigError("--seeds 0 needs a --budget-s limit");
  }
  return args;
}

int replay_one(const std::string& path) {
  const Reproducer repro = load_reproducer(path);
  const Failure observed = replay(repro);
  const char* expected =
      repro.kind == FailureKind::kNone ? "pass" : to_string(repro.kind);
  std::cout << "replay " << path << "\n  expect: " << expected
            << "\n  observed: " << to_string(observed.kind);
  if (observed) std::cout << " (" << observed.detail << ")";
  std::cout << "\n";
  if (observed.kind == repro.kind) {
    std::cout << "  OK\n";
    return 0;
  }
  std::cout << "  MISMATCH\n";
  return 2;
}

int run(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (!args.replay_file.empty()) return replay_one(args.replay_file);

  DifferOptions opts;
  opts.matrix =
      args.matrix == "quick" ? quick_config_matrix() : full_config_matrix();
  if (!args.variants) {
    opts.variant_matrix.clear();
  } else if (args.matrix == "quick") {
    opts.variant_matrix = quick_variant_matrix();
  }
  opts.trace_gen.max_packets = args.packets;
  if (opts.trace_gen.min_packets > args.packets) {
    opts.trace_gen.min_packets = args.packets;
  }
  opts.trace_mutations = args.trace_mutations;
  opts.inject_floor_mod_bug = args.inject_floor_mod_bug;
  opts.checkpoint_restore = args.checkpoint_restore;
  const Differ differ(opts);

  const auto start = std::chrono::steady_clock::now();
  auto elapsed_s = [&]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  std::uint64_t tried = 0, compiled = 0, failures = 0;
  std::uint64_t configs_checked = 0;
  std::uint64_t witnesses_saved = 0;
  // Per variant family ("scr", "relaxed1", ...): how many compiled seeds
  // were fully equivalent to the single-pipeline reference vs diverged in
  // at least one cell of that family. Expected divergences — the designs
  // relax consistency by construction.
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> families;
  for (std::uint64_t seed = args.seed_start;
       args.seeds == 0 || seed < args.seed_start + args.seeds; ++seed) {
    if (args.budget_s > 0 && elapsed_s() >= args.budget_s) break;
    ++tried;
    const SeedOutcome outcome = differ.run_seed(seed);
    if (!outcome.compiled) continue; // legitimately rejected program
    ++compiled;
    configs_checked += outcome.configs_checked;
    if (!outcome.failure) {
      std::map<std::string, bool> diverged;
      for (const VariantCellOutcome& cell : outcome.variant_cells) {
        std::string family = mp5::to_string(cell.config.variant);
        if (cell.config.variant == DesignVariant::kRelaxed) {
          family += std::to_string(cell.config.staleness);
        }
        diverged[family] |= !cell.equivalent;
      }
      for (const auto& [family, div] : diverged) {
        (div ? families[family].second : families[family].first) += 1;
      }
      if (witnesses_saved < args.witnesses) {
        for (const VariantCellOutcome& cell : outcome.variant_cells) {
          if (cell.equivalent) continue;
          Failure target;
          target.kind = FailureKind::kVariantDivergence;
          target.config = cell.config;
          target.detail = cell.detail;
          const ShrinkResult shrunk = shrink(
              outcome.program, outcome.trace, differ.make_predicate(target));
          if (!shrunk.reproduced) continue; // MP5 cell didn't pass clean
          Reproducer repro;
          repro.kind = FailureKind::kVariantDivergence;
          repro.config = cell.config;
          repro.seed = seed;
          repro.detail = cell.detail;
          repro.program_source = to_source(shrunk.program);
          repro.trace = shrunk.trace;
          std::filesystem::create_directories(args.corpus);
          const std::string path = args.corpus + "/seed" +
                                   std::to_string(seed) +
                                   "-variant-divergence.json";
          save_reproducer(repro, path);
          ++witnesses_saved;
          std::cout << "seed " << seed << ": variant-divergence witness ["
                    << cell.config.name() << "]\n  " << cell.detail
                    << "\n  shrunk to " << count_stmts(shrunk.program)
                    << " statement(s), " << shrunk.trace.size()
                    << " packet(s) (" << shrunk.evals << " evals)\n"
                    << "  witness: " << path << "\n";
          break; // at most one witness per seed
        }
      }
      continue;
    }

    ++failures;
    std::cout << "seed " << seed << ": "
              << to_string(outcome.failure.kind);
    if (outcome.failure.kind != FailureKind::kOracleDivergence) {
      std::cout << " [" << outcome.failure.config.name() << "]";
    }
    std::cout << "\n  " << outcome.failure.detail << "\n";

    Reproducer repro;
    repro.kind = outcome.failure.kind;
    repro.config = outcome.failure.config;
    repro.seed = seed;
    repro.inject_floor_mod_bug = args.inject_floor_mod_bug;
    repro.detail = outcome.failure.detail;
    domino::Ast program = clone(outcome.program);
    Trace trace = outcome.trace;
    if (args.shrink_failures) {
      const ShrinkResult shrunk = shrink(
          program, trace, differ.make_predicate(outcome.failure));
      if (shrunk.reproduced) {
        program = clone(shrunk.program);
        trace = shrunk.trace;
        std::cout << "  shrunk to " << count_stmts(program)
                  << " statement(s), " << trace.size() << " packet(s) ("
                  << shrunk.evals << " evals)\n";
      } else {
        std::cout << "  shrink failed to reproduce; saving unshrunk\n";
      }
    }
    repro.program_source = to_source(program);
    repro.trace = trace;
    std::filesystem::create_directories(args.corpus);
    const std::string path = args.corpus + "/seed" + std::to_string(seed) +
                             "-" + to_string(repro.kind) + ".json";
    save_reproducer(repro, path);
    std::cout << "  reproducer: " << path << "\n";
  }

  if (!families.empty()) {
    std::cout << "variant equivalence classes (per compiled seed, vs the "
                 "single-pipeline reference):\n";
    for (const auto& [family, counts] : families) {
      const auto [equivalent, divergent] = counts;
      std::cout << "  " << family << ": " << equivalent << " equivalent, "
                << divergent << " divergent (expected)\n";
    }
  }
  std::cout << "mp5fuzz: " << tried << " seeds (" << compiled
            << " compiled), " << configs_checked << " config runs, "
            << failures << " unexpected failure(s)";
  if (witnesses_saved > 0) {
    std::cout << ", " << witnesses_saved << " witness(es)";
  }
  std::cout << " in " << elapsed_s() << "s\n";
  if (failures > 0 && args.fail_on_divergence) return 2;
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "mp5fuzz: " << e.what() << "\n";
    return 1;
  }
}
