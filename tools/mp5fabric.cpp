// mp5fabric — run a leaf–spine Clos fabric of MP5 switches end to end.
//
// Usage:
//   mp5fabric --leaves 4 --spines 2 --lb conga --flows 100000
//   mp5fabric --lb flowlet --kill-switch spine1@20000 --json out.json
//
// Topology:
//   --leaves N  --spines M  --hosts-per-leaf H        (default 4 x 2 x 16)
//   --link-latency L          per-link propagation, cycles (default 8)
//   --link-bytes-per-cycle B  per-link capacity (default 64)
//   --spine-weights w0,w1,... WCMP weight per spine (default equal)
// Load balancing (at the leaves):
//   --lb ecmp|wcmp|flowlet|conga                      (default conga)
//   --hash addresses|addresses-ports|five-tuple       (ecmp/wcmp tuple)
//   --salt S                  ECMP/WCMP hash salt
// Workload (millions of concurrent flows; all seeded):
//   --flows N                 total flows (default 20000)
//   --flow-rate R             flow births per cycle (default 1.0)
//   --mean-lifetime L         mean flow lifetime, cycles (default 4000;
//                             concurrent flows ~= rate x lifetime)
//   --max-flow-packets N  --zipf S      flow sizes: Zipf(S) in [1, N]
//   --burst-size N  --burst-spacing C   packets per flowlet, spacing
//   --packet-bytes B
// Per-switch MP5 knobs:
//   --pipelines K  --fifo-capacity N  --remap N  --paranoid
//   --engine lockstep|event  inner-switch cycle-walk engine
// Run control:
//   --seed S  --max-cycles N  --util-window W
// Fault plan (repeatable; switch names are leaf<i>/spine<i>):
//   --kill-switch NAME@CYCLE      kill a whole switch mid-run
//   --kill-link FROM:TO@CYCLE     kill one directional link
// Output:
//   --json FILE       write the "mp5-fabric-results" v1 document
//   --telemetry       attach a shared telemetry registry (per-switch
//                     metrics under fabric.<switch>.*; lands in --json)
//   --quiet           suppress the human-readable summary
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "common/error.hpp"
#include "fabric/fabric.hpp"
#include "fabric/results.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace mp5;
using namespace mp5::fabric;

struct Args {
  FabricOptions opts;
  std::vector<std::string> kill_switch_specs;
  std::vector<std::string> kill_link_specs;
  std::string json_out;
  bool telemetry = false;
  bool quiet = false;
};

std::vector<double> parse_weights(const std::string& csv) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stod(item));
  }
  return out;
}

/// Split "SPEC@CYCLE", returning the spec and filling the cycle.
std::string split_at_cycle(const std::string& spec, const char* flag,
                           Cycle* cycle) {
  const auto at = spec.find('@');
  if (at == std::string::npos || at == 0 || at + 1 >= spec.size()) {
    throw ConfigError(std::string(flag) + " expects SPEC@CYCLE, got '" +
                      spec + "'");
  }
  *cycle = std::stoull(spec.substr(at + 1));
  return spec.substr(0, at);
}

/// Resolve the fault specs against the (now final) topology. Done after
/// parsing because "--kill-switch spine1" must see --spines.
void resolve_faults(Args& args) {
  const FabricTopology& topo = args.opts.topology;
  for (const std::string& spec : args.kill_switch_specs) {
    FabricFaultEvent ev;
    ev.kind = FabricFaultEvent::Kind::kKillSwitch;
    ev.target = topo.switch_by_name(
        split_at_cycle(spec, "--kill-switch", &ev.cycle));
    args.opts.faults.events.push_back(ev);
  }
  for (const std::string& spec : args.kill_link_specs) {
    FabricFaultEvent ev;
    ev.kind = FabricFaultEvent::Kind::kKillLink;
    const std::string names =
        split_at_cycle(spec, "--kill-link", &ev.cycle);
    const auto colon = names.find(':');
    if (colon == std::string::npos) {
      throw ConfigError("--kill-link expects FROM:TO@CYCLE, got '" + spec +
                        "'");
    }
    const SwitchId from = topo.switch_by_name(names.substr(0, colon));
    const SwitchId to = topo.switch_by_name(names.substr(colon + 1));
    if (topo.is_leaf(from) && topo.is_spine(to)) {
      ev.link = topo.uplink(from, topo.spine_index(to));
    } else if (topo.is_spine(from) && topo.is_leaf(to)) {
      ev.link = topo.downlink(topo.spine_index(from), to);
    } else {
      throw ConfigError("--kill-link: '" + names +
                        "' is not a leaf->spine or spine->leaf link");
    }
    args.opts.faults.events.push_back(ev);
  }
}

Args parse_args(int argc, char** argv) {
  Args args;
  FabricOptions& o = args.opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw ConfigError(arg + " needs an argument");
      return argv[++i];
    };
    if (arg == "--leaves") o.topology.leaves =
        static_cast<std::uint32_t>(std::stoul(next()));
    else if (arg == "--spines") o.topology.spines =
        static_cast<std::uint32_t>(std::stoul(next()));
    else if (arg == "--hosts-per-leaf") o.topology.hosts_per_leaf =
        static_cast<std::uint32_t>(std::stoul(next()));
    else if (arg == "--link-latency") o.topology.link_latency =
        std::stoull(next());
    else if (arg == "--link-bytes-per-cycle")
      o.topology.link_bytes_per_cycle = std::stod(next());
    else if (arg == "--spine-weights")
      o.topology.spine_weights = parse_weights(next());
    else if (arg == "--lb") o.lb = parse_lb_mode(next());
    else if (arg == "--hash") o.hash_alg = parse_hash_alg(next());
    else if (arg == "--salt") o.salt = std::stoull(next());
    else if (arg == "--flows") o.workload.flows = std::stoull(next());
    else if (arg == "--flow-rate") o.workload.flow_rate = std::stod(next());
    else if (arg == "--mean-lifetime")
      o.workload.mean_lifetime = std::stod(next());
    else if (arg == "--max-flow-packets") o.workload.max_flow_packets =
        static_cast<std::uint32_t>(std::stoul(next()));
    else if (arg == "--zipf") o.workload.zipf_exponent = std::stod(next());
    else if (arg == "--burst-size") o.workload.burst_size =
        static_cast<std::uint32_t>(std::stoul(next()));
    else if (arg == "--burst-spacing")
      o.workload.burst_spacing = std::stod(next());
    else if (arg == "--packet-bytes") o.workload.packet_bytes =
        static_cast<std::uint32_t>(std::stoul(next()));
    else if (arg == "--pipelines") o.pipelines =
        static_cast<std::uint32_t>(std::stoul(next()));
    else if (arg == "--fifo-capacity") o.fifo_capacity = std::stoull(next());
    else if (arg == "--remap") o.remap_period =
        static_cast<std::uint32_t>(std::stoul(next()));
    else if (arg == "--paranoid") o.paranoid_checks = true;
    else if (arg == "--engine") o.engine = engine_from_string(next());
    else if (arg == "--seed") o.seed = std::stoull(next());
    else if (arg == "--max-cycles") o.max_cycles = std::stoull(next());
    else if (arg == "--util-window") o.util_window =
        static_cast<std::uint32_t>(std::stoul(next()));
    else if (arg == "--kill-switch")
      args.kill_switch_specs.push_back(next());
    else if (arg == "--kill-link") args.kill_link_specs.push_back(next());
    else if (arg == "--json") args.json_out = next();
    else if (arg == "--telemetry") args.telemetry = true;
    else if (arg == "--quiet") args.quiet = true;
    else throw ConfigError("unknown option '" + arg + "'");
  }
  // The workload inherits the run seed unless the flows themselves need a
  // different one; one knob reproduces the whole fabric.
  args.opts.workload.seed = args.opts.seed;
  resolve_faults(args);
  return args;
}

void print_summary(const FabricOptions& opts, const FabricResult& r) {
  const FabricTopology& topo = opts.topology;
  std::cout << "fabric: " << topo.leaves << " leaves x " << topo.spines
            << " spines, " << topo.num_hosts() << " hosts, lb="
            << lb_mode_name(opts.lb) << ", seed=" << opts.seed << "\n";
  std::cout << "  cycles " << r.cycles_run
            << (r.truncated ? " (truncated)" : "") << ", injected "
            << r.injected << ", delivered " << r.delivered << " ("
            << r.delivered_fraction * 100.0 << "%), dropped "
            << r.dropped_total() << ", in flight " << r.in_flight_end
            << "\n";
  std::cout << "  throughput " << r.throughput_pkts_per_cycle
            << " pkt/cycle (offered " << r.offered_pkts_per_cycle << ")\n";
  std::cout << "  flows: " << r.flows_started << "/" << r.flows_total
            << " started, " << r.flows_fully_delivered
            << " fully delivered, peak concurrent "
            << r.peak_concurrent_flows << "\n";
  std::cout << "  fct p50/p90/p99 " << r.fct_p50 << "/" << r.fct_p90 << "/"
            << r.fct_p99 << " cycles (n=" << r.fct_count << ", mean "
            << r.fct_mean << ")\n";
  std::cout << "  latency p50/p90/p99 " << r.latency_p50 << "/"
            << r.latency_p90 << "/" << r.latency_p99
            << ", e2e reordered " << r.reordered_packets << "\n";
  std::cout << "  uplink util max/mean " << r.uplink_util_max << "/"
            << r.uplink_util_mean << " (skew " << r.uplink_util_skew
            << ")\n";
  for (const FabricSwitchResult& s : r.switches) {
    std::cout << "  " << s.name << ": offered " << s.sim.offered
              << ", egressed " << s.sim.egressed << ", C1 "
              << s.sim.c1_violating_packets << " ("
              << s.sim.c1_fraction() * 100.0 << "%)";
    if (s.killed) std::cout << " [killed @" << s.killed_at << "]";
    std::cout << "\n";
  }
}

int run(int argc, char** argv) {
  Args args = parse_args(argc, argv);

  std::unique_ptr<telemetry::Telemetry> telem;
  if (args.telemetry) {
    telemetry::Config config;
    config.event_capacity = 0; // a shared event ring would be all noise
    telem = std::make_unique<telemetry::Telemetry>(config);
    args.opts.telemetry = telem.get();
  }

  FabricSimulator sim(args.opts);
  const FabricResult result = sim.run();

  if (!args.quiet) print_summary(args.opts, result);
  if (!args.json_out.empty()) {
    std::ofstream out(args.json_out);
    if (!out) {
      throw ConfigError("cannot open '" + args.json_out + "' for writing");
    }
    write_fabric_results_json(out, args.opts, result, telem.get());
    if (!args.quiet) std::cout << "wrote " << args.json_out << "\n";
  }
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const mp5::Error& e) {
    std::cerr << "mp5fabric: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "mp5fabric: " << e.what() << "\n";
    return 1;
  }
}
