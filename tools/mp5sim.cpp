// mp5sim — run an MP5 (or baseline) simulation from the command line.
//
// Usage:
//   mp5sim --builtin flowlet --pipelines 4
//   mp5sim program.dom --trace trace.csv --design no-d4
//   mp5sim --builtin counter --packets 5000 --check-equivalence
//
// Program source:
//   <file.dom> | --builtin <name>      (see mp5c --list)
// Traffic (choose one):
//   --trace file.csv                   replay a stored trace
//   --flow-workload                    §4.4 web-search flows (uses the
//                                      builtin's field filler; builtin only)
//   --rand-fields B                    uniform random fields in [0, B)
//                                      (default, B=1024)
// Options:
//   --design mp5|ideal|no-d2|no-d4|naive|recirc|scr|relaxed  (default mp5)
//   --staleness N           synchronization period Δ in cycles for
//                           --design relaxed (default 64); rejected for
//                           every other design
//   --pipelines K  --packets N  --seed S  --load F
//   --fifo-capacity N  --remap N  --flow-order f1,f2
//   --threads N             parallel per-lane engine (bit-identical to
//                           sequential; MP5 designs only; incompatible
//                           with --telemetry/--timeline/--trace-out)
//   --no-fast-forward       step idle cycles one by one (identical
//                           results; for measuring the raw cycle loop)
//   --engine lockstep|event cycle-walk engine (MP5 designs only; the
//                           event engine skips idle cells/cycles and is
//                           bit-identical to lockstep)
//   --check-equivalence     verify vs the single-pipeline reference
//   --save-trace file.csv   store the generated trace
// Checkpoint/restore (MP5 and replicated designs; see DESIGN.md "Soak &
// crash recovery"):
//   --checkpoint-interval N write an mp5-checkpoint v1 file every N
//                           cycles (requires --checkpoint-out)
//   --checkpoint-out FILE   checkpoint destination (atomically replaced
//                           at each interval; path validated up front)
//   --restore FILE          resume from a checkpoint instead of starting
//                           fresh — rerun with the *same* program, trace
//                           and semantic flags (the config fingerprint is
//                           enforced, the trace identity cannot be)
// Fault injection (MP5 designs only):
//   --fail-pipeline P@CYCLE[:RECOVER]   kill pipeline P at CYCLE; with
//                                       :RECOVER it rejoins empty there
//                                       (repeatable)
//   --phantom-channel                   model the phantom channel as a
//                                       physical pipeline (required by the
//                                       phantom fault flags)
//   --phantom-loss-rate R               lose each phantom with prob. R
//   --phantom-delay-rate R  --phantom-delay D
//                                       delay each phantom D extra cycles
//                                       with probability R
//   --paranoid                          per-cycle invariant watchdog
// Telemetry & machine-readable output (see DESIGN.md "Telemetry"):
//   --telemetry                         attach the telemetry registry
//                                       (counters + event ring; MP5
//                                       designs only)
//   --trace-out file.json               write the event ring as a Chrome
//                                       trace_event file (implies
//                                       --telemetry; load in Perfetto or
//                                       chrome://tracing)
//   --json file.json                    write the schema-versioned
//                                       "mp5-results" document (includes
//                                       the telemetry section when
//                                       --telemetry is on)
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>

#include "apps/programs.hpp"
#include "banzai/single_pipeline.hpp"
#include "baseline/presets.hpp"
#include "baseline/recirc.hpp"
#include "baseline/replicated.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "domino/compiler.hpp"
#include "domino/parser.hpp"
#include "metrics/equivalence.hpp"
#include "mp5/checkpoint.hpp"
#include "mp5/simulator.hpp"
#include "mp5/transform.hpp"
#include "trace/trace_source.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/results.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/trace_io.hpp"
#include "trace/workloads.hpp"

namespace {

using namespace mp5;

struct Args {
  std::string source;
  std::string builtin;
  std::string design = "mp5";
  std::string trace_file;
  std::string save_trace;
  bool flow_workload = false;
  Value rand_bound = 1024;
  std::uint32_t pipelines = 4;
  std::uint32_t staleness = 0; // 0 = unset (relaxed defaults to 64)
  std::uint64_t packets = 20000;
  std::uint64_t seed = 1;
  double load = 1.0;
  std::size_t fifo_capacity = 0;
  std::uint32_t remap = 100;
  std::uint32_t threads = 1;
  bool fast_forward = true;
  SimEngine engine = SimEngine::kLockstep;
  std::vector<std::string> flow_order_fields;
  bool check_equivalence = false;
  std::uint64_t timeline = 0; // print the first N simulator events
  FaultPlan faults;
  bool phantom_channel = false;
  bool paranoid = false;
  bool telemetry = false;
  std::string trace_out; // Chrome trace_event JSON (implies telemetry)
  std::string json_out;  // mp5-results JSON
  std::uint64_t checkpoint_interval = 0;
  std::string checkpoint_out;
  std::string restore_from;
};

/// Parse a --fail-pipeline spec: P@CYCLE or P@CYCLE:RECOVER.
PipelineFault parse_fail_spec(const std::string& spec) {
  const auto at = spec.find('@');
  if (at == std::string::npos || at == 0) {
    throw ConfigError("--fail-pipeline expects P@CYCLE[:RECOVER], got '" +
                      spec + "'");
  }
  PipelineFault fault;
  fault.pipeline = static_cast<PipelineId>(std::stoul(spec.substr(0, at)));
  const auto colon = spec.find(':', at + 1);
  if (colon == std::string::npos) {
    fault.fail_at = std::stoull(spec.substr(at + 1));
  } else {
    fault.fail_at = std::stoull(spec.substr(at + 1, colon - at - 1));
    fault.recover_at = std::stoull(spec.substr(colon + 1));
  }
  return fault;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw ConfigError(arg + " needs an argument");
      return argv[++i];
    };
    if (arg == "--builtin") args.builtin = next();
    else if (arg == "--design") args.design = next();
    else if (arg == "--trace") args.trace_file = next();
    else if (arg == "--save-trace") args.save_trace = next();
    else if (arg == "--flow-workload") args.flow_workload = true;
    else if (arg == "--rand-fields") args.rand_bound = std::stoll(next());
    else if (arg == "--pipelines") args.pipelines =
        static_cast<std::uint32_t>(std::stoul(next()));
    else if (arg == "--staleness") {
      args.staleness = static_cast<std::uint32_t>(std::stoul(next()));
      // 0 internally means "flag absent"; accepting it here would silently
      // run the relaxed design at its default bound instead.
      if (args.staleness == 0) {
        throw ConfigError("--staleness must be >= 1 (cycles between "
                          "synchronization boundaries)");
      }
    }
    else if (arg == "--packets") args.packets = std::stoull(next());
    else if (arg == "--seed") args.seed = std::stoull(next());
    else if (arg == "--load") args.load = std::stod(next());
    else if (arg == "--fifo-capacity") args.fifo_capacity = std::stoull(next());
    else if (arg == "--remap") args.remap =
        static_cast<std::uint32_t>(std::stoul(next()));
    else if (arg == "--threads") args.threads =
        static_cast<std::uint32_t>(std::stoul(next()));
    else if (arg == "--no-fast-forward") args.fast_forward = false;
    else if (arg == "--engine") args.engine = engine_from_string(next());
    else if (arg == "--flow-order") args.flow_order_fields = split_csv(next());
    else if (arg == "--check-equivalence") args.check_equivalence = true;
    else if (arg == "--timeline") args.timeline = std::stoull(next());
    else if (arg == "--fail-pipeline")
      args.faults.pipeline_faults.push_back(parse_fail_spec(next()));
    else if (arg == "--phantom-channel") args.phantom_channel = true;
    else if (arg == "--phantom-loss-rate")
      args.faults.phantom_loss_rate = std::stod(next());
    else if (arg == "--phantom-delay-rate")
      args.faults.phantom_delay_rate = std::stod(next());
    else if (arg == "--phantom-delay")
      args.faults.phantom_extra_delay = std::stoull(next());
    else if (arg == "--paranoid") args.paranoid = true;
    else if (arg == "--telemetry") args.telemetry = true;
    else if (arg == "--trace-out") args.trace_out = next();
    else if (arg == "--json") args.json_out = next();
    else if (arg == "--checkpoint-interval")
      args.checkpoint_interval = std::stoull(next());
    else if (arg == "--checkpoint-out") args.checkpoint_out = next();
    else if (arg == "--restore") args.restore_from = next();
    else if (!arg.empty() && arg[0] == '-')
      throw ConfigError("unknown option '" + arg + "'");
    else {
      std::ifstream in(arg);
      if (!in) throw ConfigError("cannot open '" + arg + "'");
      std::ostringstream ss;
      ss << in.rdbuf();
      args.source = ss.str();
    }
  }
  return args;
}

/// Up-front checkpoint-flag validation: a 10^8-cycle run must not discover
/// an unwritable checkpoint path at the first interval.
void validate_checkpoint_args(const Args& args) {
  if (args.checkpoint_interval != 0 && args.checkpoint_out.empty()) {
    throw ConfigError(
        "--checkpoint-interval requires --checkpoint-out (nowhere to write "
        "the checkpoints)");
  }
  if (!args.checkpoint_out.empty() && args.checkpoint_interval == 0) {
    throw ConfigError("--checkpoint-out requires --checkpoint-interval");
  }
  if (!args.checkpoint_out.empty()) {
    // Probe the same temporary name write_checkpoint_file uses, so the
    // probe exercises the actual write path without clobbering an
    // existing checkpoint.
    const std::string probe_path = args.checkpoint_out + ".tmp";
    std::ofstream probe(probe_path);
    if (!probe) {
      throw ConfigError("--checkpoint-out: cannot write '" +
                        args.checkpoint_out + "'");
    }
    probe.close();
    std::remove(probe_path.c_str());
  }
}

int run(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  validate_checkpoint_args(args);

  if (const unsigned hw = std::thread::hardware_concurrency();
      hw != 0 && args.threads > hw) {
    std::cerr << "mp5sim: warning: --threads " << args.threads
              << " exceeds this host's " << hw
              << " hardware thread(s); lanes will time-share cores (results "
                 "stay bit-identical, wall-clock speedups will not "
                 "materialize)\n";
  }

  // Resolve the program.
  std::string source = args.source;
  FieldFiller filler;
  if (!args.builtin.empty()) {
    auto builtins = apps::real_apps();
    auto more = apps::extended_apps();
    builtins.insert(builtins.end(), more.begin(), more.end());
    for (const auto& app : builtins) {
      if (app.name == args.builtin) {
        source = app.source;
        filler = app.filler;
      }
    }
    if (source.empty() && args.builtin == "counter") {
      source = apps::packet_counter_source();
    }
    if (source.empty() && args.builtin == "figure3") {
      source = apps::figure3_source();
    }
    if (source.empty()) {
      throw ConfigError("unknown builtin '" + args.builtin + "'");
    }
  }
  if (source.empty()) {
    std::cerr << "usage: mp5sim <file.dom> | --builtin <name> [options]\n";
    return 2;
  }

  TransformOptions topts;
  if (!args.flow_order_fields.empty()) {
    topts.add_flow_order_stage = true;
    topts.flow_fields = args.flow_order_fields;
  }
  const auto ast = domino::parse(source);
  const auto compiled =
      domino::compile(ast, banzai::MachineSpec{}, /*reserve_stages=*/1);
  const Mp5Program program = transform(compiled.pvsm, topts);

  // Resolve the traffic.
  Trace trace;
  if (!args.trace_file.empty()) {
    trace = load_trace_file(args.trace_file);
  } else if (args.flow_workload) {
    if (!filler) {
      throw ConfigError("--flow-workload needs a --builtin app (its filler "
                        "maps flows to header fields)");
    }
    FlowWorkloadConfig config;
    config.pipelines = args.pipelines;
    config.packets = args.packets;
    config.seed = args.seed;
    config.load = args.load;
    trace = make_flow_trace(config, filler);
  } else {
    Rng rng(args.seed);
    LineRateClock clock(args.pipelines, args.load);
    for (std::uint64_t n = 0; n < args.packets; ++n) {
      TraceItem item;
      item.arrival_time = clock.next(64);
      item.port = static_cast<std::uint32_t>(n % 64);
      item.flow = n % 128;
      for (std::size_t f = 0; f < ast.fields.size(); ++f) {
        item.fields.push_back(rng.next_in(0, args.rand_bound - 1));
      }
      trace.push_back(std::move(item));
    }
  }
  if (!args.save_trace.empty()) save_trace_file(trace, args.save_trace);

  // Resolve the design and run.
  const bool want_telemetry = args.telemetry || !args.trace_out.empty();
  SimResult result;
  std::unique_ptr<telemetry::Telemetry> telem;
  if (args.design == "recirc") {
    if (!args.faults.empty() || args.paranoid || args.threads > 1) {
      throw ConfigError(
          "fault injection / --paranoid / --threads apply to the MP5 "
          "designs only, not recirc");
    }
    if (args.engine != SimEngine::kLockstep) {
      throw ConfigError(
          "--engine applies to the MP5 designs only, not recirc");
    }
    if (args.checkpoint_interval != 0 || !args.restore_from.empty()) {
      throw ConfigError(
          "--checkpoint-interval/--restore apply to the MP5 designs only, "
          "not recirc");
    }
    if (want_telemetry) {
      // --json alone stays legal for recirc: the document just carries a
      // null telemetry section.
      throw ConfigError(
          "--telemetry/--trace-out apply to the MP5 designs only, not "
          "recirc");
    }
    // The remaining knobs used to be accepted and silently ignored
    // (ISSUE 10 validation sweep): recirc has no stage FIFOs, no idle
    // fast-forward path, no phantom channel and no timeline hook.
    if (args.fifo_capacity != 0) {
      throw ConfigError(
          "--fifo-capacity applies to the MP5 designs only, not recirc");
    }
    if (!args.fast_forward) {
      throw ConfigError(
          "--no-fast-forward applies to the MP5 and replicated designs "
          "only, not recirc");
    }
    if (args.phantom_channel) {
      throw ConfigError(
          "--phantom-channel applies to the MP5 designs only, not recirc");
    }
    if (args.timeline > 0) {
      throw ConfigError(
          "--timeline applies to the MP5 designs only, not recirc");
    }
    if (args.staleness != 0) {
      throw ConfigError(
          "--staleness applies to --design relaxed only, not recirc");
    }
    RecircOptions ropts;
    ropts.pipelines = args.pipelines;
    ropts.seed = args.seed;
    ropts.record_egress = args.check_equivalence;
    RecircSimulator sim(program, ropts);
    result = sim.run(trace);
  } else {
    SimOptions opts;
    if (args.design == "mp5") opts = mp5_options(args.pipelines, args.seed);
    else if (args.design == "ideal") opts = ideal_options(args.pipelines, args.seed);
    else if (args.design == "no-d2") opts = no_d2_options(args.pipelines, args.seed);
    else if (args.design == "no-d4") opts = no_d4_options(args.pipelines, args.seed);
    else if (args.design == "naive") opts = naive_options(args.pipelines, args.seed);
    else if (args.design == "scr") opts = scr_options(args.pipelines, args.seed);
    else if (args.design == "relaxed")
      opts = relaxed_options(args.pipelines, args.seed);
    else throw ConfigError("unknown design '" + args.design + "'");
    // --staleness overrides the relaxed preset's default; passing it for
    // any other design trips the constructors' variant/knob validation.
    if (args.staleness != 0) opts.staleness_bound = args.staleness;
    opts.fifo_capacity = args.fifo_capacity;
    opts.remap_period = args.remap;
    opts.threads = args.threads;
    opts.fast_forward = args.fast_forward;
    opts.engine = args.engine;
    opts.record_egress = args.check_equivalence;
    opts.faults = args.faults;
    if (args.phantom_channel) opts.realistic_phantom_channel = true;
    opts.paranoid_checks = args.paranoid;
    if (want_telemetry) {
      telem = std::make_unique<telemetry::Telemetry>();
      opts.telemetry = telem.get();
    }
    std::uint64_t printed = 0;
    if (args.timeline > 0) {
      opts.timeline = [&printed, &args](const TimelineEvent& event) {
        if (printed++ >= args.timeline) return;
        std::cout << "cycle " << event.cycle << "  pipe " << event.pipeline
                  << "  stage " << event.stage << "  " << to_string(event.kind);
        if (event.seq != kInvalidSeqNo) std::cout << "  pkt " << event.seq;
        if (event.arg != 0) std::cout << "  arg " << event.arg;
        std::cout << "\n";
      };
    }
    std::uint64_t checkpoints_written = 0;
    if (args.checkpoint_interval != 0) {
      opts.checkpoint_interval = args.checkpoint_interval;
      opts.checkpoint_sink = [&](Cycle, std::string&& blob) {
        write_checkpoint_file(args.checkpoint_out, blob);
        ++checkpoints_written;
      };
    }
    if (args.design == "scr" || args.design == "relaxed") {
      std::unique_ptr<ReplicatedSimulator> sim;
      if (args.design == "scr") {
        sim = std::make_unique<ScrSimulator>(program, opts);
      } else {
        sim = std::make_unique<RelaxedSimulator>(program, opts);
      }
      if (!args.restore_from.empty()) {
        const std::string blob = read_checkpoint_file(args.restore_from);
        std::cout << "resumed from cycle " << parse_checkpoint(blob).cycle
                  << " (" << args.restore_from << ")\n";
        result = sim->resume(trace, blob);
      } else {
        result = sim->run(trace);
      }
    } else {
      Mp5Simulator sim(program, opts);
      if (!args.restore_from.empty()) {
        VectorTraceSource source(trace);
        const std::string blob = read_checkpoint_file(args.restore_from);
        std::cout << "resumed from cycle " << parse_checkpoint(blob).cycle
                  << " (" << args.restore_from << ")\n";
        result = sim.resume(source, blob);
      } else {
        result = sim.run(trace);
      }
    }
    if (args.checkpoint_interval != 0) {
      std::cout << "checkpoints written: " << checkpoints_written << " ("
                << args.checkpoint_out << ")\n";
    }
  }

  TextTable table({"metric", "value"});
  table.add_row({"design", args.design});
  table.add_row({"pipelines", TextTable::integer(args.pipelines)});
  table.add_row({"offered", TextTable::integer(
                                static_cast<long long>(result.offered))});
  table.add_row({"egressed", TextTable::integer(
                                 static_cast<long long>(result.egressed))});
  table.add_row({"throughput", TextTable::num(result.normalized_throughput(), 4)});
  table.add_row({"drops (phantom/data/starved/fault)",
                 std::to_string(result.dropped_phantom) + "/" +
                     std::to_string(result.dropped_data) + "/" +
                     std::to_string(result.dropped_starved) + "/" +
                     std::to_string(result.dropped_fault)});
  if (result.pipeline_failures > 0 || result.phantom_lost > 0 ||
      result.phantom_delayed > 0 || result.stalled_cycles > 0) {
    table.add_row({"pipeline failures / recoveries",
                   std::to_string(result.pipeline_failures) + "/" +
                       std::to_string(result.pipeline_recoveries)});
    table.add_row({"fault-remapped indices",
                   TextTable::integer(static_cast<long long>(
                       result.fault_remapped_indices))});
    table.add_row({"phantoms lost / delayed",
                   std::to_string(result.phantom_lost) + "/" +
                       std::to_string(result.phantom_delayed)});
    table.add_row({"stalled cell-cycles",
                   TextTable::integer(
                       static_cast<long long>(result.stalled_cycles))});
    table.add_row({"time to recover (cycles)",
                   TextTable::integer(
                       static_cast<long long>(result.time_to_recover))});
  }
  table.add_row({"C1 violating packets",
                 TextTable::integer(
                     static_cast<long long>(result.c1_violating_packets))});
  table.add_row({"max stage queue", TextTable::integer(static_cast<long long>(
                                        result.max_queue_depth))});
  table.add_row({"steers", TextTable::integer(
                               static_cast<long long>(result.steers))});
  table.add_row({"wasted pops", TextTable::integer(static_cast<long long>(
                                    result.wasted_cycles))});
  table.add_row({"remap moves", TextTable::integer(static_cast<long long>(
                                    result.remap_moves))});
  table.add_row({"recirculations",
                 TextTable::integer(
                     static_cast<long long>(result.recirculations))});
  table.add_row({"cycles", TextTable::integer(
                               static_cast<long long>(result.cycles_run))});
  table.print(std::cout);

  if (!args.json_out.empty()) {
    std::ofstream out(args.json_out);
    if (!out) {
      throw ConfigError("--json: cannot open '" + args.json_out +
                        "' for writing");
    }
    telemetry::RunMeta meta;
    meta.design = args.design;
    if (args.design == "scr" || args.design == "relaxed") {
      meta.variant = args.design;
      if (args.design == "relaxed") {
        meta.staleness = args.staleness != 0 ? args.staleness : 64;
      }
    }
    meta.program = !args.builtin.empty() ? args.builtin : "custom";
    meta.pipelines = args.pipelines;
    meta.packets = trace.size();
    meta.seed = args.seed;
    meta.load = args.load;
    telemetry::write_results_json(out, meta, result, telem.get());
    std::cout << "results json: " << args.json_out << "\n";
  }
  if (!args.trace_out.empty()) {
    std::ofstream out(args.trace_out);
    if (!out) {
      throw ConfigError("--trace-out: cannot open '" + args.trace_out +
                        "' for writing");
    }
    telemetry::write_chrome_trace(out, *telem);
    std::cout << "chrome trace: " << args.trace_out << " ("
              << telem->events().size() << " events retained, "
              << telem->events().dropped() << " dropped)\n";
  }

  if (args.check_equivalence) {
    banzai::ReferenceSwitch reference(program.pvsm);
    const auto ref =
        reference.run(to_header_batch(trace, program.pvsm.num_slots()));
    const auto report = check_equivalence(program.pvsm, ref, result);
    std::cout << "functional equivalence: "
              << (report.equivalent() ? "OK" : "VIOLATED") << "\n";
    if (!report.equivalent()) {
      std::cout << "  " << report.first_difference << "\n";
      if (result.dropped_fault > 0) {
        std::cout << "  note: " << result.dropped_fault
                  << " packets were dropped by injected faults; the "
                     "reference processes the full trace, so mismatches "
                     "are expected (equivalence modulo the declared drop "
                     "set is what the fault tests check)\n";
      }
      return 1;
    }
  }
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const mp5::Error& e) {
    std::cerr << "mp5sim: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    // Malformed numeric flags (std::stoull etc.) and other library errors
    // must produce a diagnostic and a nonzero exit, never a terminate().
    std::cerr << "mp5sim: " << e.what() << "\n";
    return 1;
  }
}
