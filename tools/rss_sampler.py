#!/usr/bin/env python3
"""Run a command while sampling its resident set, and enforce a ceiling.

Usage:  rss_sampler.py [--limit-kib N] [--interval-s F] [--out FILE]
                       -- command [args...]

Samples VmRSS from /proc/<pid>/status while the command runs (Linux
only; elsewhere the command just runs unsampled). One "elapsed_s rss_kib"
pair per sample is written to --out (default: stderr summary only).

Exit status: the command's own exit status, except 3 when --limit-kib was
given and any sample exceeded it — the command is then SIGKILLed. CI uses
this around soak runs as the flat-RSS assertion: a streaming soak's
memory must not scale with trace length.
"""

import argparse
import signal
import subprocess
import sys
import time


def sample_rss_kib(pid):
    try:
        with open(f"/proc/{pid}/status", "r", encoding="ascii") as fp:
            for line in fp:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return None


def main(argv):
    parser = argparse.ArgumentParser(
        description="sample a command's RSS and enforce a ceiling")
    parser.add_argument("--limit-kib", type=int, default=0,
                        help="kill the command and exit 3 if VmRSS exceeds "
                             "this many KiB (0 = just record)")
    parser.add_argument("--interval-s", type=float, default=0.2)
    parser.add_argument("--out", default="",
                        help="write 'elapsed_s rss_kib' samples to this file")
    parser.add_argument("command", nargs=argparse.REMAINDER,
                        help="-- command [args...]")
    args = parser.parse_args(argv[1:])

    command = args.command
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        parser.error("no command given (separate it with --)")

    start = time.monotonic()
    proc = subprocess.Popen(command)
    samples = []
    exceeded = False
    while proc.poll() is None:
        rss = sample_rss_kib(proc.pid)
        if rss is not None:
            samples.append((time.monotonic() - start, rss))
            if args.limit_kib and rss > args.limit_kib:
                exceeded = True
                proc.send_signal(signal.SIGKILL)
                proc.wait()
                break
        time.sleep(args.interval_s)

    if args.out:
        with open(args.out, "w", encoding="ascii") as fp:
            for elapsed, rss in samples:
                fp.write(f"{elapsed:.3f} {rss}\n")

    peak = max((rss for _, rss in samples), default=0)
    print(f"rss_sampler: {len(samples)} samples, peak {peak} KiB",
          file=sys.stderr)
    if exceeded:
        print(f"rss_sampler: FAIL: RSS exceeded {args.limit_kib} KiB",
              file=sys.stderr)
        return 3
    return proc.returncode


if __name__ == "__main__":
    sys.exit(main(sys.argv))
