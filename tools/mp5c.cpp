// mp5c — the MP5 compiler explorer.
//
// Compiles a Domino program and reports every stage of the pipeline:
// the PVSM (stages and atoms), the machine fit, and the MP5 transform
// (address-resolution logic, per-access resolvability, sharding plan).
//
// Usage:
//   mp5c <file.dom>            compile a file
//   mp5c -                     compile stdin
//   mp5c --builtin <name>      compile a bundled program
//   mp5c --list                list bundled programs
// Options:
//   --stages N     machine stage budget (default 16)
//   --flow-order f1,f2   append the §3.4 per-flow ordering stage
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/programs.hpp"
#include "banzai/atom_templates.hpp"
#include "banzai/machine.hpp"
#include "common/error.hpp"
#include "domino/compiler.hpp"
#include "mp5/transform.hpp"

namespace {

using namespace mp5;

std::vector<apps::AppSpec> all_builtins() {
  auto out = apps::real_apps();
  auto more = apps::extended_apps();
  out.insert(out.end(), std::make_move_iterator(more.begin()),
             std::make_move_iterator(more.end()));
  return out;
}

std::string load_builtin(const std::string& name) {
  for (const auto& app : all_builtins()) {
    if (app.name == name) return app.source;
  }
  if (name == "figure3") return apps::figure3_source();
  if (name == "counter") return apps::packet_counter_source();
  if (name == "sequencer_example") return apps::sequencer_example_source();
  throw ConfigError("unknown builtin program '" + name + "'");
}

void list_builtins() {
  for (const auto& app : all_builtins()) std::cout << app.name << "\n";
  std::cout << "figure3\ncounter\nsequencer_example\n";
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int run(int argc, char** argv) {
  std::string source;
  banzai::MachineSpec machine;
  TransformOptions topts;
  bool have_source = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw ConfigError(arg + " needs an argument");
      return argv[++i];
    };
    if (arg == "--list") {
      list_builtins();
      return 0;
    } else if (arg == "--builtin") {
      source = load_builtin(next());
      have_source = true;
    } else if (arg == "--stages") {
      machine.max_stages = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--flow-order") {
      topts.add_flow_order_stage = true;
      topts.flow_fields = split_csv(next());
    } else if (arg == "-") {
      std::ostringstream ss;
      ss << std::cin.rdbuf();
      source = ss.str();
      have_source = true;
    } else if (!arg.empty() && arg[0] == '-') {
      throw ConfigError("unknown option '" + arg + "'");
    } else {
      std::ifstream in(arg);
      if (!in) throw ConfigError("cannot open '" + arg + "'");
      std::ostringstream ss;
      ss << in.rdbuf();
      source = ss.str();
      have_source = true;
    }
  }
  if (!have_source) {
    std::cerr << "usage: mp5c <file.dom> | - | --builtin <name> | --list\n";
    return 2;
  }

  const auto compiled = domino::compile(source, machine, /*reserve_stages=*/1);
  const Mp5Program program = transform(compiled.pvsm, topts);

  std::cout << "== PVSM (" << program.pvsm.stages.size() << " stages, "
            << (compiled.serialized ? "serialized" : "unserialized")
            << " schedule) ==\n"
            << ir::to_string(program.pvsm);

  std::cout << "\n== MP5 transform ==\n";
  std::cout << "address-resolution instructions hoisted to arrival: "
            << program.resolver.size() << "\n";
  for (const auto& instr : program.resolver) {
    std::cout << "  " << ir::to_string(instr, program.pvsm) << "\n";
  }
  std::cout << "\nstateful accesses (" << program.accesses.size() << "):\n";
  for (const auto& acc : program.accesses) {
    std::cout << "  stage " << acc.stage << "  reg "
              << program.pvsm.registers[acc.reg].name << "  index "
              << (acc.index_resolvable ? "resolved at arrival"
                                       : "stateful -> array pinned")
              << "  predicate ";
    if (acc.guard == ir::kNoSlot) {
      std::cout << "always";
    } else if (acc.guard_resolvable) {
      std::cout << "resolved at arrival";
    } else {
      std::cout << "conservative (known after stage "
                << acc.guard_known_after_stage << ")";
    }
    std::cout << "\n";
  }
  std::cout << "\natom templates (Banzai circuit classes):\n";
  for (const auto& stage : program.pvsm.stages) {
    for (const auto& atom : stage.atoms) {
      if (!atom.stateful() || atom.body.empty()) continue;
      std::cout << "  " << program.pvsm.registers[atom.reg].name << ": "
                << banzai::to_string(banzai::classify_atom(atom)) << "\n";
    }
  }

  std::cout << "\nsharding plan:\n";
  for (std::size_t r = 0; r < program.pvsm.registers.size(); ++r) {
    std::cout << "  " << program.pvsm.registers[r].name << "["
              << program.pvsm.registers[r].size << "]: "
              << (program.shardable[r] ? "dynamically sharded (D2)"
                                       : "pinned to one pipeline")
              << "\n";
  }
  const auto fit = banzai::usage(program.pvsm);
  std::cout << "\nmachine fit: " << fit.stages << "/" << machine.max_stages
            << " stages, max " << fit.max_atoms_in_stage
            << " atoms/stage, max " << fit.max_stateful_in_stage
            << " stateful/stage, deepest atom " << fit.max_atom_ops
            << " ops, richest template "
            << banzai::to_string(fit.max_template) << "\n";

  std::cout << "\ntotal transformed stages (incl. AR): " << program.num_stages
            << ", conservative accesses: " << program.conservative_accesses()
            << ", pinned arrays: " << program.pinned_registers() << "\n";
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const mp5::Error& e) {
    std::cerr << "mp5c: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    // Malformed numeric flags (std::stoul etc.) and other library errors
    // must produce a diagnostic and a nonzero exit, never a terminate().
    std::cerr << "mp5c: " << e.what() << "\n";
    return 1;
  }
}
