// mp5native — run a compiled Domino/PVSM program natively on CPU cores
// and report real packets per second (the NFOS-style multicore backend;
// see DESIGN.md "Native multicore backend").
//
// Usage:
//   mp5native --builtin counter --cores 4 --packets 1000000
//   mp5native program.dom --trace trace.csv --cores 2 --check
//   mp5native --builtin flowlet --cores 8 --profile --json out.json
//
// Program source:
//   <file.dom> | --builtin <name>      (see mp5c --list)
// Traffic (choose one):
//   --trace file.csv|file.bin          replay a stored trace
//   synthetic (default):  --packets N  --rand-fields B  --flows F
// Options:
//   --cores K          worker threads / state shards   (default 1)
//   --batch N          ring push/pop batch             (default 32)
//   --ring-capacity N  per-ring slots                  (default 1024)
//   --pool N           in-flight packet window         (default 8192)
//   --policy dynamic|static|single|lpt                 (default dynamic)
//   --rebalance N      reshard every N packets         (default 8192)
//   --seed S  --load F
//   --no-pin           don't pin workers to cores
//   --check            verify egress + final state vs the AstInterp oracle
//   --profile          per-worker busy/idle accounting + register table
//   --json file.json   write the mp5-native-results v1 document
//   --quiet            suppress the human-readable table
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>

#include "apps/programs.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "domino/compiler.hpp"
#include "domino/parser.hpp"
#include "mp5/transform.hpp"
#include "native/backend.hpp"
#include "native/oracle.hpp"
#include "telemetry/json_writer.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_source.hpp"

namespace {

using namespace mp5;

struct Args {
  std::string source;
  std::string program_name = "custom";
  std::string builtin;
  std::string trace_file;
  std::uint64_t packets = 100000;
  Value rand_bound = 1024;
  std::uint64_t flows = 64;
  std::uint64_t seed = 1;
  double load = 1.0;
  native::NativeOptions native;
  std::string policy_name = "dynamic";
  bool check = false;
  bool quiet = false;
  std::string json_out;
};

ShardingPolicy policy_from_string(const std::string& name) {
  if (name == "dynamic") return ShardingPolicy::kDynamic;
  if (name == "static") return ShardingPolicy::kStaticRandom;
  if (name == "single") return ShardingPolicy::kSinglePipeline;
  if (name == "lpt") return ShardingPolicy::kIdealLpt;
  throw ConfigError("--policy expects dynamic|static|single|lpt, got '" +
                    name + "'");
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw ConfigError(arg + " needs an argument");
      return argv[++i];
    };
    if (arg == "--builtin") args.builtin = next();
    else if (arg == "--trace") args.trace_file = next();
    else if (arg == "--packets") args.packets = std::stoull(next());
    else if (arg == "--rand-fields") args.rand_bound = std::stoll(next());
    else if (arg == "--flows") args.flows = std::stoull(next());
    else if (arg == "--seed") args.seed = std::stoull(next());
    else if (arg == "--load") args.load = std::stod(next());
    else if (arg == "--cores") args.native.workers =
        static_cast<std::uint32_t>(std::stoul(next()));
    else if (arg == "--batch") args.native.batch =
        static_cast<std::uint32_t>(std::stoul(next()));
    else if (arg == "--ring-capacity") args.native.ring_capacity =
        static_cast<std::uint32_t>(std::stoul(next()));
    else if (arg == "--pool") args.native.pool_packets =
        static_cast<std::uint32_t>(std::stoul(next()));
    else if (arg == "--policy") args.policy_name = next();
    else if (arg == "--rebalance")
      args.native.rebalance_packets = std::stoull(next());
    else if (arg == "--no-pin") args.native.pin_threads = false;
    else if (arg == "--check") args.check = true;
    else if (arg == "--profile") args.native.profile = true;
    else if (arg == "--json") args.json_out = next();
    else if (arg == "--quiet") args.quiet = true;
    else if (!arg.empty() && arg[0] == '-')
      throw ConfigError("unknown option '" + arg + "'");
    else {
      std::ifstream in(arg);
      if (!in) throw ConfigError("cannot open '" + arg + "'");
      std::ostringstream ss;
      ss << in.rdbuf();
      args.source = ss.str();
      args.program_name = arg;
    }
  }
  args.native.policy = policy_from_string(args.policy_name);
  args.native.seed = args.seed;
  return args;
}

std::string resolve_builtin(const std::string& name) {
  auto builtins = apps::real_apps();
  auto more = apps::extended_apps();
  builtins.insert(builtins.end(), more.begin(), more.end());
  for (const auto& app : builtins) {
    if (app.name == name) return app.source;
  }
  if (name == "counter") return apps::packet_counter_source();
  if (name == "figure3") return apps::figure3_source();
  throw ConfigError("unknown builtin '" + name + "'");
}

void write_json(std::ostream& out, const Args& args,
                const std::string& program_name,
                const native::NativeResult& result, bool oracle_checked,
                bool oracle_equivalent) {
  telemetry::JsonWriter json(out);
  json.begin_object();
  json.kv("schema", "mp5-native-results");
  json.kv("schema_version", std::uint64_t{1});
  json.key("meta").begin_object();
  json.kv("program", program_name);
  json.kv("cores", args.native.workers);
  json.kv("batch", args.native.batch);
  json.kv("ring_capacity", args.native.ring_capacity);
  json.kv("pool_packets", args.native.pool_packets);
  json.kv("policy", args.policy_name);
  json.kv("rebalance_packets", args.native.rebalance_packets);
  json.kv("seed", args.seed);
  json.kv("pinned", args.native.pin_threads);
  json.kv("hardware_concurrency",
          static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  json.end_object();
  json.key("throughput").begin_object();
  json.kv("packets", result.packets);
  json.kv("seconds", result.seconds);
  json.kv("pkts_per_sec", result.pkts_per_sec);
  json.end_object();
  json.key("sharding").begin_object();
  json.kv("policy", args.policy_name);
  json.kv("moves", result.shard_moves);
  json.kv("rebalances", result.rebalances);
  json.end_object();
  json.key("profiler").begin_object();
  json.key("workers").begin_array();
  for (const auto& w : result.profile.workers) {
    json.begin_object();
    json.kv("hops", w.hops);
    json.kv("stages", w.stages);
    json.kv("accesses", w.accesses);
    json.kv("forwards", w.forwards);
    json.kv("parks", w.parks);
    json.kv("idle_spins", w.idle_spins);
    json.kv("busy_ns", w.busy_ns);
    json.kv("idle_ns", w.idle_ns);
    json.end_object();
  }
  json.end_array();
  json.key("registers").begin_array();
  for (const auto& r : result.profile.registers) {
    json.begin_object();
    json.kv("name", r.name);
    json.kv("claimed", r.claimed);
    json.kv("performed", r.performed);
    json.kv("remote", r.remote);
    json.kv("parks", r.parks);
    json.kv("busiest_owner", r.busiest_owner);
    json.kv("busiest_owner_accesses", r.busiest_owner_accesses);
    json.kv("owner_share", r.owner_share);
    json.end_object();
  }
  json.end_array();
  json.key("serializing_register");
  if (result.profile.serializing_register.empty()) json.null();
  else json.value(result.profile.serializing_register);
  json.kv("serial_fraction", result.profile.serial_fraction);
  json.end_object();
  json.key("oracle").begin_object();
  json.kv("checked", oracle_checked);
  json.key("equivalent");
  if (oracle_checked) json.value(oracle_equivalent);
  else json.null();
  json.end_object();
  json.end_object();
  out << "\n";
}

int run(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  std::string source = args.source;
  std::string program_name = args.program_name;
  if (!args.builtin.empty()) {
    source = resolve_builtin(args.builtin);
    program_name = args.builtin;
  }
  if (source.empty()) {
    std::cerr << "usage: mp5native <file.dom> | --builtin <name> [options]\n";
    return 2;
  }

  if (args.native.workers < 1) {
    throw ConfigError("--cores must be >= 1");
  }
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw != 0 && args.native.workers > hw) {
    std::cerr << "mp5native: warning: --cores " << args.native.workers
              << " exceeds this host's " << hw
              << " hardware thread(s); workers will time-share cores and "
                 "throughput numbers will not reflect scaling\n";
  }

  const auto ast = domino::parse(source);
  const auto compiled =
      domino::compile(ast, banzai::MachineSpec{}, /*reserve_stages=*/1);
  const Mp5Program program = transform(compiled.pvsm);

  native::NativeOptions nopts = args.native;
  nopts.record_egress = args.check;

  // Resolve traffic. The oracle needs the materialized trace; pure
  // throughput runs stream it.
  Trace trace;
  std::unique_ptr<TraceSource> source_ptr;
  if (!args.trace_file.empty()) {
    if (args.check) {
      trace = load_trace_file(args.trace_file);
      source_ptr = std::make_unique<VectorTraceSource>(trace);
    } else {
      source_ptr = open_trace_source(args.trace_file);
    }
  } else {
    SyntheticSpec spec;
    spec.packets = args.packets;
    spec.pipelines = args.native.workers;
    spec.load = args.load;
    spec.field_count = static_cast<std::uint32_t>(ast.fields.size());
    spec.field_bound = args.rand_bound;
    spec.flows = args.flows;
    spec.seed = args.seed;
    if (args.check) {
      SyntheticTraceSource gen(spec);
      while (const TraceItem* item = gen.peek()) {
        trace.push_back(*item);
        gen.advance();
      }
      source_ptr = std::make_unique<VectorTraceSource>(trace);
    } else {
      source_ptr = std::make_unique<SyntheticTraceSource>(spec);
    }
  }

  native::NativeBackend backend(program, nopts);
  const native::NativeResult result = backend.run(*source_ptr);

  bool oracle_equivalent = false;
  native::OracleCheck check;
  if (args.check) {
    check = native::check_against_oracle(ast, program, trace, result);
    oracle_equivalent = check.equivalent;
  }

  if (!args.quiet) {
    TextTable table({"metric", "value"});
    table.add_row({"program", program_name});
    table.add_row({"cores", TextTable::integer(args.native.workers)});
    table.add_row({"policy", args.policy_name});
    table.add_row({"packets", TextTable::integer(
                                  static_cast<long long>(result.packets))});
    table.add_row({"seconds", TextTable::num(result.seconds, 4)});
    table.add_row({"pkts/s", TextTable::num(result.pkts_per_sec, 0)});
    table.add_row({"shard moves / rebalances",
                   std::to_string(result.shard_moves) + "/" +
                       std::to_string(result.rebalances)});
    if (!result.profile.serializing_register.empty()) {
      table.add_row({"serializing register",
                     result.profile.serializing_register + " (" +
                         TextTable::num(result.profile.serial_fraction, 3) +
                         " of packets via one core)"});
    }
    table.print(std::cout);

    if (args.native.profile) {
      TextTable workers({"worker", "hops", "accesses", "forwards", "parks",
                         "busy%"});
      for (std::size_t w = 0; w < result.profile.workers.size(); ++w) {
        const auto& s = result.profile.workers[w];
        const double total =
            static_cast<double>(s.busy_ns) + static_cast<double>(s.idle_ns);
        const double busy = total > 0 ? 100.0 * s.busy_ns / total : 0.0;
        workers.add_row({TextTable::integer(static_cast<long long>(w)),
                         TextTable::integer(static_cast<long long>(s.hops)),
                         TextTable::integer(
                             static_cast<long long>(s.accesses)),
                         TextTable::integer(
                             static_cast<long long>(s.forwards)),
                         TextTable::integer(static_cast<long long>(s.parks)),
                         TextTable::num(busy, 1)});
      }
      workers.print(std::cout);
      TextTable regs({"register", "claimed", "performed", "remote", "parks",
                      "owner share"});
      for (const auto& r : result.profile.registers) {
        regs.add_row({r.name,
                      TextTable::integer(static_cast<long long>(r.claimed)),
                      TextTable::integer(
                          static_cast<long long>(r.performed)),
                      TextTable::integer(static_cast<long long>(r.remote)),
                      TextTable::integer(static_cast<long long>(r.parks)),
                      TextTable::num(r.owner_share, 3)});
      }
      regs.print(std::cout);
    }
    if (args.check) {
      std::cout << "oracle equivalence: "
                << (check.equivalent ? "OK" : "VIOLATED") << "\n";
      if (!check.equivalent) std::cout << "  " << check.first_difference
                                       << "\n";
    }
  }

  if (!args.json_out.empty()) {
    std::ofstream out(args.json_out);
    if (!out) {
      throw ConfigError("--json: cannot open '" + args.json_out +
                        "' for writing");
    }
    write_json(out, args, program_name, result, args.check,
               oracle_equivalent);
    if (!args.quiet) std::cout << "results json: " << args.json_out << "\n";
  }

  return args.check && !check.equivalent ? 1 : 0;
}

} // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const mp5::Error& e) {
    std::cerr << "mp5native: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "mp5native: " << e.what() << "\n";
    return 1;
  }
}
