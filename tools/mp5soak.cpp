// mp5soak — billion-packet soak driver with crash recovery.
//
// Streams packets from the deterministic synthetic generator (or a trace
// file) through the MP5 simulator with rolling equivalence verification,
// periodic whole-state checkpoints, and an enforced RSS ceiling. A killed
// soak resumes from its last checkpoint and must finish with the same
// SimResult as an uninterrupted run — --self-test proves exactly that by
// SIGKILLing a child mid-run.
//
// Usage:
//   mp5soak --packets 100000000 --checkpoint-interval 200000 \
//           --checkpoint-out soak.ckpt --rss-limit-kib 524288
//   mp5soak --resume --packets 100000000 --checkpoint-interval 200000 \
//           --checkpoint-out soak.ckpt
//   mp5soak --self-test --packets 2000000
//
// Program source (default: the synthetic sensitivity program):
//   <file.dom> | --builtin <name> | --synthetic-stages N
// Traffic:
//   --trace FILE        stream a .trace.csv / compact binary trace
//   --packets N         synthetic generator length (default 10^7)
//   --load F            offered load vs aggregate line rate (default 0.9;
//                       sustained overload grows the in-switch backlog and
//                       with it RSS — the flat-memory contract assumes the
//                       switch can keep up)
//   --flows N --field-bound B --seed S
// Simulator:
//   --pipelines K --fifo-capacity N --remap N --threads N --paranoid
//   --engine lockstep|event  cycle-walk engine (bit-identical results)
//   --max-cycles N      override the derived safety ceiling
//   --fail-pipeline P@CYCLE[:RECOVER]   fault plan entry (repeatable)
// Soak mode:
//   --checkpoint-interval N  checkpoint every N cycles (0 = off)
//   --checkpoint-out FILE    combined simulator+verifier checkpoint file
//   --resume                 restore from --checkpoint-out and continue
//   --no-verify              disable rolling verification
//   --verify-window N        pending-fate cap (default 2^20)
//   --rss-limit-kib N        abort if VmRSS exceeds N KiB at a checkpoint
//   --self-test              fork a checkpointing child, SIGKILL it after
//                            its first checkpoint, resume from the file,
//                            and require the SimResult to be identical to
//                            an uninterrupted run
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

#include "apps/programs.hpp"
#include "common/error.hpp"
#include "domino/compiler.hpp"
#include "domino/parser.hpp"
#include "metrics/sim_result.hpp"
#include "mp5/transform.hpp"
#include "soak/soak_runner.hpp"

namespace {

using namespace mp5;

struct Args {
  std::string source;
  std::string builtin;
  std::uint32_t synthetic_stages = 4;
  soak::SoakOptions soak;
  std::uint64_t max_cycles_override = 0;
  bool self_test = false;
};

PipelineFault parse_fail_spec(const std::string& spec) {
  const auto at = spec.find('@');
  if (at == std::string::npos || at == 0) {
    throw ConfigError("--fail-pipeline expects P@CYCLE[:RECOVER], got '" +
                      spec + "'");
  }
  PipelineFault fault;
  fault.pipeline = static_cast<PipelineId>(std::stoul(spec.substr(0, at)));
  const auto colon = spec.find(':', at + 1);
  if (colon == std::string::npos) {
    fault.fail_at = std::stoull(spec.substr(at + 1));
  } else {
    fault.fail_at = std::stoull(spec.substr(at + 1, colon - at - 1));
    fault.recover_at = std::stoull(spec.substr(colon + 1));
  }
  return fault;
}

Args parse_args(int argc, char** argv) {
  Args args;
  args.soak.synthetic.packets = 10'000'000;
  // A soak's flat-memory contract holds only when the offered load stays
  // below the switch's sustainable service rate (~0.97 of aggregate line
  // rate for the default program). At exactly 1.0 the backlog random-walks
  // upward and in-flight packets — and therefore RSS and checkpoint size —
  // grow with the trace length. Default to a sustainable 0.9; --load can
  // still push into overload deliberately.
  args.soak.synthetic.load = 0.9;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw ConfigError(arg + " needs an argument");
      return argv[++i];
    };
    if (arg == "--builtin") args.builtin = next();
    else if (arg == "--synthetic-stages")
      args.synthetic_stages = static_cast<std::uint32_t>(std::stoul(next()));
    else if (arg == "--trace") args.soak.trace_path = next();
    else if (arg == "--packets") args.soak.synthetic.packets = std::stoull(next());
    else if (arg == "--load") args.soak.synthetic.load = std::stod(next());
    else if (arg == "--flows") args.soak.synthetic.flows = std::stoull(next());
    else if (arg == "--field-bound")
      args.soak.synthetic.field_bound = std::stoll(next());
    else if (arg == "--seed") {
      args.soak.synthetic.seed = std::stoull(argv[i + 1]);
      args.soak.sim.seed = std::stoull(next());
    }
    else if (arg == "--pipelines") {
      args.soak.synthetic.pipelines =
          static_cast<std::uint32_t>(std::stoul(argv[i + 1]));
      args.soak.sim.pipelines = static_cast<std::uint32_t>(std::stoul(next()));
    }
    else if (arg == "--fifo-capacity")
      args.soak.sim.fifo_capacity = std::stoull(next());
    else if (arg == "--remap")
      args.soak.sim.remap_period = static_cast<std::uint32_t>(std::stoul(next()));
    else if (arg == "--threads")
      args.soak.sim.threads = static_cast<std::uint32_t>(std::stoul(next()));
    else if (arg == "--engine")
      args.soak.sim.engine = engine_from_string(next());
    else if (arg == "--paranoid") args.soak.sim.paranoid_checks = true;
    else if (arg == "--max-cycles") args.max_cycles_override = std::stoull(next());
    else if (arg == "--fail-pipeline")
      args.soak.sim.faults.pipeline_faults.push_back(parse_fail_spec(next()));
    else if (arg == "--checkpoint-interval")
      args.soak.checkpoint_interval = std::stoull(next());
    else if (arg == "--checkpoint-out") args.soak.checkpoint_path = next();
    else if (arg == "--resume") args.soak.resume = true;
    else if (arg == "--no-verify") args.soak.verify = false;
    else if (arg == "--verify-window")
      args.soak.verify_window = std::stoull(next());
    else if (arg == "--rss-limit-kib")
      args.soak.rss_limit_kib = std::stoull(next());
    else if (arg == "--self-test") args.self_test = true;
    else if (!arg.empty() && arg[0] == '-')
      throw ConfigError("unknown option '" + arg + "'");
    else {
      std::ifstream in(arg);
      if (!in) throw ConfigError("cannot open '" + arg + "'");
      std::ostringstream ss;
      ss << in.rdbuf();
      args.source = ss.str();
    }
  }
  if (args.soak.checkpoint_interval != 0 && args.soak.checkpoint_path.empty()) {
    throw ConfigError(
        "--checkpoint-interval requires --checkpoint-out (nowhere to write "
        "the checkpoints)");
  }
  if (args.soak.resume && args.soak.checkpoint_path.empty()) {
    throw ConfigError("--resume requires --checkpoint-out");
  }
  return args;
}

Mp5Program resolve_program(Args& args) {
  std::string source = args.source;
  if (!args.builtin.empty()) {
    auto builtins = apps::real_apps();
    auto more = apps::extended_apps();
    builtins.insert(builtins.end(), more.begin(), more.end());
    for (const auto& app : builtins) {
      if (app.name == args.builtin) source = app.source;
    }
    if (source.empty() && args.builtin == "counter") {
      source = apps::packet_counter_source();
    }
    if (source.empty() && args.builtin == "figure3") {
      source = apps::figure3_source();
    }
    if (source.empty()) {
      throw ConfigError("unknown builtin '" + args.builtin + "'");
    }
  }
  if (source.empty()) {
    source = apps::make_synthetic_source(args.synthetic_stages, 1024);
  }
  const auto ast = domino::parse(source);
  // The synthetic generator must fill every declared field.
  args.soak.synthetic.field_count =
      static_cast<std::uint32_t>(ast.fields.size());
  return transform(
      domino::compile(ast, banzai::MachineSpec{}, /*reserve_stages=*/1).pvsm);
}

/// Safety ceiling for the cycle loop: generous headroom over the arrival
/// span so a genuine livelock still terminates, but a full soak never
/// trips it. Only derivable when the stream length is known.
void derive_max_cycles(Args& args) {
  if (args.max_cycles_override != 0) {
    args.soak.sim.max_cycles = args.max_cycles_override;
    return;
  }
  const auto source = soak::make_soak_source(args.soak);
  if (const auto total = source->size()) {
    const double load =
        args.soak.trace_path.empty() ? args.soak.synthetic.load : 1.0;
    const double per_packet = 64.0 / (load < 0.01 ? 0.01 : load);
    args.soak.sim.max_cycles =
        static_cast<std::uint64_t>(static_cast<double>(*total) * per_packet) +
        1'000'000;
  }
}

void print_report(const soak::SoakReport& report) {
  const SimResult& r = report.result;
  std::cout << "offered " << r.offered << "  egressed " << r.egressed
            << "  fault-dropped " << r.dropped_fault << "  cycles "
            << r.cycles_run << "\n"
            << "throughput " << r.normalized_throughput() << "\n";
  if (report.resumed) {
    std::cout << "resumed from cycle " << report.resumed_from_cycle << "\n";
  }
  if (report.checkpoints_written > 0) {
    std::cout << "checkpoints written: " << report.checkpoints_written << "\n";
  }
  std::cout << "rss " << report.rss_kib << " KiB (peak " << report.peak_rss_kib
            << " KiB)\n";
  if (report.verify_ran) {
    std::cout << "verified " << report.verified_packets
              << " packets (window peak " << report.verify_window_peak << ")";
    if (report.truncated) {
      std::cout << " — truncated: " << report.equivalence.first_difference;
    } else if (!report.verified) {
      std::cout << " — VIOLATION: " << report.equivalence.first_difference;
    } else {
      std::cout << " — OK";
    }
    std::cout << "\n";
  }
}

/// Success = fully verified, or verified up to a state-touching fault
/// drop with no mismatch before the truncation point.
bool verification_ok(const soak::SoakReport& report) {
  if (!report.verify_ran) return true;
  if (report.verified) return true;
  return report.truncated && report.equivalence.packets_equal;
}

int run_once(const Mp5Program& program, const Args& args) {
  const soak::SoakReport report = soak::run_soak(program, args.soak);
  print_report(report);
  return verification_ok(report) ? 0 : 2;
}

/// Crash-recovery self-test: run the soak uninterrupted for the baseline
/// SimResult, then fork a checkpointing child and SIGKILL it once its
/// first checkpoint file lands, resume from that file in-process, and
/// require the recovered SimResult to match the baseline field-by-field.
int run_self_test(const Mp5Program& program, const Args& args) {
  Args cfg = args;
  if (cfg.soak.checkpoint_path.empty()) {
    cfg.soak.checkpoint_path = "mp5soak.selftest.ckpt";
  }
  if (cfg.soak.checkpoint_interval == 0) {
    cfg.soak.checkpoint_interval = 5000;
  }
  std::remove(cfg.soak.checkpoint_path.c_str());

  std::cout << "[self-test] baseline run (no checkpoints)\n";
  soak::SoakOptions baseline_opts = cfg.soak;
  baseline_opts.checkpoint_interval = 0;
  baseline_opts.checkpoint_path.clear();
  baseline_opts.resume = false;
  const soak::SoakReport baseline = soak::run_soak(program, baseline_opts);

  std::cout << "[self-test] forking checkpointing child\n";
  const pid_t child = fork();
  if (child < 0) throw Error("self-test: fork failed");
  if (child == 0) {
    // Child: a plain checkpointing soak. Output is suppressed — the
    // parent kills us mid-run and partial output would interleave.
    soak::SoakOptions child_opts = cfg.soak;
    child_opts.resume = false;
    try {
      (void)soak::run_soak(program, child_opts);
      _exit(0);
    } catch (...) {
      _exit(1);
    }
  }

  // Wait for the first checkpoint to land, then kill the child without
  // warning. The atomic rename in write_checkpoint_file guarantees the
  // file is a complete checkpoint no matter when the SIGKILL hits.
  bool seen = false;
  for (int spin = 0; spin < 60000; ++spin) {
    std::FILE* f = std::fopen(cfg.soak.checkpoint_path.c_str(), "rb");
    if (f != nullptr) {
      std::fclose(f);
      seen = true;
      break;
    }
    int status = 0;
    if (waitpid(child, &status, WNOHANG) == child) {
      throw Error("self-test: child finished before its first checkpoint "
                  "(lower --checkpoint-interval or raise --packets)");
    }
    usleep(1000);
  }
  if (!seen) {
    kill(child, SIGKILL);
    waitpid(child, nullptr, 0);
    throw Error("self-test: no checkpoint appeared within 60s");
  }
  kill(child, SIGKILL);
  int status = 0;
  waitpid(child, &status, 0);
  std::cout << "[self-test] child SIGKILLed after first checkpoint\n";

  std::cout << "[self-test] resuming from " << cfg.soak.checkpoint_path
            << "\n";
  soak::SoakOptions resume_opts = cfg.soak;
  resume_opts.resume = true;
  const soak::SoakReport recovered = soak::run_soak(program, resume_opts);
  print_report(recovered);

  std::string why;
  if (!same_results(baseline.result, recovered.result, &why)) {
    std::cout << "[self-test] FAIL: recovered result diverged: " << why
              << "\n";
    return 2;
  }
  if (!verification_ok(recovered)) {
    std::cout << "[self-test] FAIL: rolling verification: "
              << recovered.equivalence.first_difference << "\n";
    return 2;
  }
  std::remove(cfg.soak.checkpoint_path.c_str());
  std::cout << "[self-test] OK: kill/restore reproduced the uninterrupted "
               "run bit-for-bit\n";
  return 0;
}

int run(int argc, char** argv) {
  Args args = parse_args(argc, argv);
  const Mp5Program program = resolve_program(args);
  derive_max_cycles(args);
  if (args.self_test) return run_self_test(program, args);
  return run_once(program, args);
}

} // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "mp5soak: " << e.what() << "\n";
    return 1;
  }
}
