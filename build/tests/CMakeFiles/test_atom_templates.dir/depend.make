# Empty dependencies file for test_atom_templates.
# This may be replaced when dependencies are built.
