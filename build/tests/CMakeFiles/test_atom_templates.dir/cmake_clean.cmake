file(REMOVE_RECURSE
  "CMakeFiles/test_atom_templates.dir/test_atom_templates.cpp.o"
  "CMakeFiles/test_atom_templates.dir/test_atom_templates.cpp.o.d"
  "test_atom_templates"
  "test_atom_templates.pdb"
  "test_atom_templates[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atom_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
