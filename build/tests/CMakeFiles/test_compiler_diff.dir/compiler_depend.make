# Empty compiler generated dependencies file for test_compiler_diff.
# This may be replaced when dependencies are built.
