file(REMOVE_RECURSE
  "CMakeFiles/test_compiler_diff.dir/test_compiler_diff.cpp.o"
  "CMakeFiles/test_compiler_diff.dir/test_compiler_diff.cpp.o.d"
  "test_compiler_diff"
  "test_compiler_diff.pdb"
  "test_compiler_diff[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compiler_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
