file(REMOVE_RECURSE
  "CMakeFiles/test_shard_map.dir/test_shard_map.cpp.o"
  "CMakeFiles/test_shard_map.dir/test_shard_map.cpp.o.d"
  "test_shard_map"
  "test_shard_map.pdb"
  "test_shard_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shard_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
