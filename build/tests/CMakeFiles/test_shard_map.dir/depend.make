# Empty dependencies file for test_shard_map.
# This may be replaced when dependencies are built.
