file(REMOVE_RECURSE
  "CMakeFiles/test_lexer_parser.dir/test_lexer_parser.cpp.o"
  "CMakeFiles/test_lexer_parser.dir/test_lexer_parser.cpp.o.d"
  "test_lexer_parser"
  "test_lexer_parser.pdb"
  "test_lexer_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lexer_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
