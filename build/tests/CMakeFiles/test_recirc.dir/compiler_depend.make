# Empty compiler generated dependencies file for test_recirc.
# This may be replaced when dependencies are built.
