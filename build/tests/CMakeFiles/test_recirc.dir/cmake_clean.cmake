file(REMOVE_RECURSE
  "CMakeFiles/test_recirc.dir/test_recirc.cpp.o"
  "CMakeFiles/test_recirc.dir/test_recirc.cpp.o.d"
  "test_recirc"
  "test_recirc.pdb"
  "test_recirc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recirc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
