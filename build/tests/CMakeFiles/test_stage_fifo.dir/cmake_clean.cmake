file(REMOVE_RECURSE
  "CMakeFiles/test_stage_fifo.dir/test_stage_fifo.cpp.o"
  "CMakeFiles/test_stage_fifo.dir/test_stage_fifo.cpp.o.d"
  "test_stage_fifo"
  "test_stage_fifo.pdb"
  "test_stage_fifo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stage_fifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
