# Empty dependencies file for test_stage_fifo.
# This may be replaced when dependencies are built.
