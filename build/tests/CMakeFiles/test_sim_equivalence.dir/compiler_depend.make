# Empty compiler generated dependencies file for test_sim_equivalence.
# This may be replaced when dependencies are built.
