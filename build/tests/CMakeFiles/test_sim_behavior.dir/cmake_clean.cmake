file(REMOVE_RECURSE
  "CMakeFiles/test_sim_behavior.dir/test_sim_behavior.cpp.o"
  "CMakeFiles/test_sim_behavior.dir/test_sim_behavior.cpp.o.d"
  "test_sim_behavior"
  "test_sim_behavior.pdb"
  "test_sim_behavior[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
