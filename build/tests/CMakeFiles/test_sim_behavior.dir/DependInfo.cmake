
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sim_behavior.cpp" "tests/CMakeFiles/test_sim_behavior.dir/test_sim_behavior.cpp.o" "gcc" "tests/CMakeFiles/test_sim_behavior.dir/test_sim_behavior.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mp5_common.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/mp5_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mp5_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/domino/CMakeFiles/mp5_domino.dir/DependInfo.cmake"
  "/root/repo/build/src/banzai/CMakeFiles/mp5_banzai.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mp5_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/mp5/CMakeFiles/mp5_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/mp5_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mp5_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/mp5_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
