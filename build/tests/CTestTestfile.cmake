# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_lexer_parser[1]_include.cmake")
include("/root/repo/build/tests/test_lower[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_compiler_diff[1]_include.cmake")
include("/root/repo/build/tests/test_reference[1]_include.cmake")
include("/root/repo/build/tests/test_transform[1]_include.cmake")
include("/root/repo/build/tests/test_stage_fifo[1]_include.cmake")
include("/root/repo/build/tests/test_shard_map[1]_include.cmake")
include("/root/repo/build/tests/test_sim_equivalence[1]_include.cmake")
include("/root/repo/build/tests/test_sim_behavior[1]_include.cmake")
include("/root/repo/build/tests/test_recirc[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_property_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_atom_templates[1]_include.cmake")
include("/root/repo/build/tests/test_trace_io[1]_include.cmake")
include("/root/repo/build/tests/test_optimize[1]_include.cmake")
include("/root/repo/build/tests/test_timeline[1]_include.cmake")
include("/root/repo/build/tests/test_reordering[1]_include.cmake")
include("/root/repo/build/tests/test_misc_coverage[1]_include.cmake")
include("/root/repo/build/tests/test_admissibility[1]_include.cmake")
