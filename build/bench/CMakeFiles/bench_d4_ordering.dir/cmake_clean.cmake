file(REMOVE_RECURSE
  "CMakeFiles/bench_d4_ordering.dir/bench_d4_ordering.cpp.o"
  "CMakeFiles/bench_d4_ordering.dir/bench_d4_ordering.cpp.o.d"
  "bench_d4_ordering"
  "bench_d4_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_d4_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
