# Empty compiler generated dependencies file for bench_d4_ordering.
# This may be replaced when dependencies are built.
