file(REMOVE_RECURSE
  "CMakeFiles/bench_extended_apps.dir/bench_extended_apps.cpp.o"
  "CMakeFiles/bench_extended_apps.dir/bench_extended_apps.cpp.o.d"
  "bench_extended_apps"
  "bench_extended_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extended_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
