# Empty dependencies file for bench_d3_steering.
# This may be replaced when dependencies are built.
