file(REMOVE_RECURSE
  "CMakeFiles/bench_d3_steering.dir/bench_d3_steering.cpp.o"
  "CMakeFiles/bench_d3_steering.dir/bench_d3_steering.cpp.o.d"
  "bench_d3_steering"
  "bench_d3_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_d3_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
