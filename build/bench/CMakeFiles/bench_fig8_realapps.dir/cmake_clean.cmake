file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_realapps.dir/bench_fig8_realapps.cpp.o"
  "CMakeFiles/bench_fig8_realapps.dir/bench_fig8_realapps.cpp.o.d"
  "bench_fig8_realapps"
  "bench_fig8_realapps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_realapps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
