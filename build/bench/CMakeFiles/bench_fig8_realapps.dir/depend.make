# Empty dependencies file for bench_fig8_realapps.
# This may be replaced when dependencies are built.
