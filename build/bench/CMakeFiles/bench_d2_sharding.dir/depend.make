# Empty dependencies file for bench_d2_sharding.
# This may be replaced when dependencies are built.
