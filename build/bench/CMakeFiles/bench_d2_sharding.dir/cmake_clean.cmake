file(REMOVE_RECURSE
  "CMakeFiles/bench_d2_sharding.dir/bench_d2_sharding.cpp.o"
  "CMakeFiles/bench_d2_sharding.dir/bench_d2_sharding.cpp.o.d"
  "bench_d2_sharding"
  "bench_d2_sharding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_d2_sharding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
