# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_mp5c_flowlet "/root/repo/build/tools/mp5c" "--builtin" "flowlet")
set_tests_properties(tool_mp5c_flowlet PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_mp5c_list "/root/repo/build/tools/mp5c" "--list")
set_tests_properties(tool_mp5c_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_mp5sim_counter "/root/repo/build/tools/mp5sim" "--builtin" "counter" "--packets" "2000" "--check-equivalence")
set_tests_properties(tool_mp5sim_counter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_mp5sim_recirc "/root/repo/build/tools/mp5sim" "--builtin" "wfq" "--design" "recirc" "--packets" "2000")
set_tests_properties(tool_mp5sim_recirc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
