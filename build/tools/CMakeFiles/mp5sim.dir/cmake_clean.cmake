file(REMOVE_RECURSE
  "CMakeFiles/mp5sim.dir/mp5sim.cpp.o"
  "CMakeFiles/mp5sim.dir/mp5sim.cpp.o.d"
  "mp5sim"
  "mp5sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp5sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
