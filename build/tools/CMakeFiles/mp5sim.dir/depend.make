# Empty dependencies file for mp5sim.
# This may be replaced when dependencies are built.
