file(REMOVE_RECURSE
  "CMakeFiles/mp5c.dir/mp5c.cpp.o"
  "CMakeFiles/mp5c.dir/mp5c.cpp.o.d"
  "mp5c"
  "mp5c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp5c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
