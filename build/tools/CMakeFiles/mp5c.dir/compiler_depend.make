# Empty compiler generated dependencies file for mp5c.
# This may be replaced when dependencies are built.
