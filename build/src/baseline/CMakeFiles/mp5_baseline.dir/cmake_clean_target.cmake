file(REMOVE_RECURSE
  "libmp5_baseline.a"
)
