file(REMOVE_RECURSE
  "CMakeFiles/mp5_baseline.dir/presets.cpp.o"
  "CMakeFiles/mp5_baseline.dir/presets.cpp.o.d"
  "CMakeFiles/mp5_baseline.dir/recirc.cpp.o"
  "CMakeFiles/mp5_baseline.dir/recirc.cpp.o.d"
  "libmp5_baseline.a"
  "libmp5_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp5_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
