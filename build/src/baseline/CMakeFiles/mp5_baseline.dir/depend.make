# Empty dependencies file for mp5_baseline.
# This may be replaced when dependencies are built.
