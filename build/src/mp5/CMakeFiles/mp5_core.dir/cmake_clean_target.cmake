file(REMOVE_RECURSE
  "libmp5_core.a"
)
