# Empty compiler generated dependencies file for mp5_core.
# This may be replaced when dependencies are built.
