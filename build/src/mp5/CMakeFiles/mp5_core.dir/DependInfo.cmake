
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mp5/admissibility.cpp" "src/mp5/CMakeFiles/mp5_core.dir/admissibility.cpp.o" "gcc" "src/mp5/CMakeFiles/mp5_core.dir/admissibility.cpp.o.d"
  "/root/repo/src/mp5/partition.cpp" "src/mp5/CMakeFiles/mp5_core.dir/partition.cpp.o" "gcc" "src/mp5/CMakeFiles/mp5_core.dir/partition.cpp.o.d"
  "/root/repo/src/mp5/shard_map.cpp" "src/mp5/CMakeFiles/mp5_core.dir/shard_map.cpp.o" "gcc" "src/mp5/CMakeFiles/mp5_core.dir/shard_map.cpp.o.d"
  "/root/repo/src/mp5/simulator.cpp" "src/mp5/CMakeFiles/mp5_core.dir/simulator.cpp.o" "gcc" "src/mp5/CMakeFiles/mp5_core.dir/simulator.cpp.o.d"
  "/root/repo/src/mp5/stage_fifo.cpp" "src/mp5/CMakeFiles/mp5_core.dir/stage_fifo.cpp.o" "gcc" "src/mp5/CMakeFiles/mp5_core.dir/stage_fifo.cpp.o.d"
  "/root/repo/src/mp5/transform.cpp" "src/mp5/CMakeFiles/mp5_core.dir/transform.cpp.o" "gcc" "src/mp5/CMakeFiles/mp5_core.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mp5_common.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/mp5_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/banzai/CMakeFiles/mp5_banzai.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mp5_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mp5_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
