file(REMOVE_RECURSE
  "CMakeFiles/mp5_core.dir/admissibility.cpp.o"
  "CMakeFiles/mp5_core.dir/admissibility.cpp.o.d"
  "CMakeFiles/mp5_core.dir/partition.cpp.o"
  "CMakeFiles/mp5_core.dir/partition.cpp.o.d"
  "CMakeFiles/mp5_core.dir/shard_map.cpp.o"
  "CMakeFiles/mp5_core.dir/shard_map.cpp.o.d"
  "CMakeFiles/mp5_core.dir/simulator.cpp.o"
  "CMakeFiles/mp5_core.dir/simulator.cpp.o.d"
  "CMakeFiles/mp5_core.dir/stage_fifo.cpp.o"
  "CMakeFiles/mp5_core.dir/stage_fifo.cpp.o.d"
  "CMakeFiles/mp5_core.dir/transform.cpp.o"
  "CMakeFiles/mp5_core.dir/transform.cpp.o.d"
  "libmp5_core.a"
  "libmp5_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp5_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
