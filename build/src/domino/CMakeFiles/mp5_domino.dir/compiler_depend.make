# Empty compiler generated dependencies file for mp5_domino.
# This may be replaced when dependencies are built.
