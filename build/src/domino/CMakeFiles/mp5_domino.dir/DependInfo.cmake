
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/domino/ast_interp.cpp" "src/domino/CMakeFiles/mp5_domino.dir/ast_interp.cpp.o" "gcc" "src/domino/CMakeFiles/mp5_domino.dir/ast_interp.cpp.o.d"
  "/root/repo/src/domino/compiler.cpp" "src/domino/CMakeFiles/mp5_domino.dir/compiler.cpp.o" "gcc" "src/domino/CMakeFiles/mp5_domino.dir/compiler.cpp.o.d"
  "/root/repo/src/domino/lexer.cpp" "src/domino/CMakeFiles/mp5_domino.dir/lexer.cpp.o" "gcc" "src/domino/CMakeFiles/mp5_domino.dir/lexer.cpp.o.d"
  "/root/repo/src/domino/lower.cpp" "src/domino/CMakeFiles/mp5_domino.dir/lower.cpp.o" "gcc" "src/domino/CMakeFiles/mp5_domino.dir/lower.cpp.o.d"
  "/root/repo/src/domino/optimize.cpp" "src/domino/CMakeFiles/mp5_domino.dir/optimize.cpp.o" "gcc" "src/domino/CMakeFiles/mp5_domino.dir/optimize.cpp.o.d"
  "/root/repo/src/domino/parser.cpp" "src/domino/CMakeFiles/mp5_domino.dir/parser.cpp.o" "gcc" "src/domino/CMakeFiles/mp5_domino.dir/parser.cpp.o.d"
  "/root/repo/src/domino/pipeline.cpp" "src/domino/CMakeFiles/mp5_domino.dir/pipeline.cpp.o" "gcc" "src/domino/CMakeFiles/mp5_domino.dir/pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mp5_common.dir/DependInfo.cmake"
  "/root/repo/build/src/banzai/CMakeFiles/mp5_banzai.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/mp5_packet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
