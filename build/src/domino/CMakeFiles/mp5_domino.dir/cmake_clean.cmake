file(REMOVE_RECURSE
  "CMakeFiles/mp5_domino.dir/ast_interp.cpp.o"
  "CMakeFiles/mp5_domino.dir/ast_interp.cpp.o.d"
  "CMakeFiles/mp5_domino.dir/compiler.cpp.o"
  "CMakeFiles/mp5_domino.dir/compiler.cpp.o.d"
  "CMakeFiles/mp5_domino.dir/lexer.cpp.o"
  "CMakeFiles/mp5_domino.dir/lexer.cpp.o.d"
  "CMakeFiles/mp5_domino.dir/lower.cpp.o"
  "CMakeFiles/mp5_domino.dir/lower.cpp.o.d"
  "CMakeFiles/mp5_domino.dir/optimize.cpp.o"
  "CMakeFiles/mp5_domino.dir/optimize.cpp.o.d"
  "CMakeFiles/mp5_domino.dir/parser.cpp.o"
  "CMakeFiles/mp5_domino.dir/parser.cpp.o.d"
  "CMakeFiles/mp5_domino.dir/pipeline.cpp.o"
  "CMakeFiles/mp5_domino.dir/pipeline.cpp.o.d"
  "libmp5_domino.a"
  "libmp5_domino.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp5_domino.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
