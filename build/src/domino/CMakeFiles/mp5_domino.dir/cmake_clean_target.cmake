file(REMOVE_RECURSE
  "libmp5_domino.a"
)
