file(REMOVE_RECURSE
  "libmp5_apps.a"
)
