# Empty dependencies file for mp5_apps.
# This may be replaced when dependencies are built.
