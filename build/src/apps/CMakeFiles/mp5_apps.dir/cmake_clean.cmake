file(REMOVE_RECURSE
  "CMakeFiles/mp5_apps.dir/programs.cpp.o"
  "CMakeFiles/mp5_apps.dir/programs.cpp.o.d"
  "libmp5_apps.a"
  "libmp5_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp5_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
