file(REMOVE_RECURSE
  "libmp5_banzai.a"
)
