# Empty compiler generated dependencies file for mp5_banzai.
# This may be replaced when dependencies are built.
