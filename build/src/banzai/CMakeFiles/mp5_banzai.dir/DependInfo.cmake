
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/banzai/atom_templates.cpp" "src/banzai/CMakeFiles/mp5_banzai.dir/atom_templates.cpp.o" "gcc" "src/banzai/CMakeFiles/mp5_banzai.dir/atom_templates.cpp.o.d"
  "/root/repo/src/banzai/ir.cpp" "src/banzai/CMakeFiles/mp5_banzai.dir/ir.cpp.o" "gcc" "src/banzai/CMakeFiles/mp5_banzai.dir/ir.cpp.o.d"
  "/root/repo/src/banzai/machine.cpp" "src/banzai/CMakeFiles/mp5_banzai.dir/machine.cpp.o" "gcc" "src/banzai/CMakeFiles/mp5_banzai.dir/machine.cpp.o.d"
  "/root/repo/src/banzai/single_pipeline.cpp" "src/banzai/CMakeFiles/mp5_banzai.dir/single_pipeline.cpp.o" "gcc" "src/banzai/CMakeFiles/mp5_banzai.dir/single_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mp5_common.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/mp5_packet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
