file(REMOVE_RECURSE
  "CMakeFiles/mp5_banzai.dir/atom_templates.cpp.o"
  "CMakeFiles/mp5_banzai.dir/atom_templates.cpp.o.d"
  "CMakeFiles/mp5_banzai.dir/ir.cpp.o"
  "CMakeFiles/mp5_banzai.dir/ir.cpp.o.d"
  "CMakeFiles/mp5_banzai.dir/machine.cpp.o"
  "CMakeFiles/mp5_banzai.dir/machine.cpp.o.d"
  "CMakeFiles/mp5_banzai.dir/single_pipeline.cpp.o"
  "CMakeFiles/mp5_banzai.dir/single_pipeline.cpp.o.d"
  "libmp5_banzai.a"
  "libmp5_banzai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp5_banzai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
