file(REMOVE_RECURSE
  "libmp5_hw.a"
)
