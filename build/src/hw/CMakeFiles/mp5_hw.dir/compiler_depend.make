# Empty compiler generated dependencies file for mp5_hw.
# This may be replaced when dependencies are built.
