file(REMOVE_RECURSE
  "CMakeFiles/mp5_hw.dir/area_model.cpp.o"
  "CMakeFiles/mp5_hw.dir/area_model.cpp.o.d"
  "libmp5_hw.a"
  "libmp5_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp5_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
