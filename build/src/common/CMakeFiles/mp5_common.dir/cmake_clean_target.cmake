file(REMOVE_RECURSE
  "libmp5_common.a"
)
