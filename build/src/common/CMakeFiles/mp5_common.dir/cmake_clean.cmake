file(REMOVE_RECURSE
  "CMakeFiles/mp5_common.dir/hashing.cpp.o"
  "CMakeFiles/mp5_common.dir/hashing.cpp.o.d"
  "CMakeFiles/mp5_common.dir/rng.cpp.o"
  "CMakeFiles/mp5_common.dir/rng.cpp.o.d"
  "CMakeFiles/mp5_common.dir/stats.cpp.o"
  "CMakeFiles/mp5_common.dir/stats.cpp.o.d"
  "CMakeFiles/mp5_common.dir/table.cpp.o"
  "CMakeFiles/mp5_common.dir/table.cpp.o.d"
  "CMakeFiles/mp5_common.dir/zipf.cpp.o"
  "CMakeFiles/mp5_common.dir/zipf.cpp.o.d"
  "libmp5_common.a"
  "libmp5_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp5_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
