# Empty compiler generated dependencies file for mp5_common.
# This may be replaced when dependencies are built.
