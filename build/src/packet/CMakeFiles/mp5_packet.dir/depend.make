# Empty dependencies file for mp5_packet.
# This may be replaced when dependencies are built.
