file(REMOVE_RECURSE
  "libmp5_packet.a"
)
