file(REMOVE_RECURSE
  "CMakeFiles/mp5_packet.dir/packet.cpp.o"
  "CMakeFiles/mp5_packet.dir/packet.cpp.o.d"
  "libmp5_packet.a"
  "libmp5_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp5_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
