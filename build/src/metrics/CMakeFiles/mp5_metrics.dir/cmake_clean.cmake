file(REMOVE_RECURSE
  "CMakeFiles/mp5_metrics.dir/c1_checker.cpp.o"
  "CMakeFiles/mp5_metrics.dir/c1_checker.cpp.o.d"
  "CMakeFiles/mp5_metrics.dir/equivalence.cpp.o"
  "CMakeFiles/mp5_metrics.dir/equivalence.cpp.o.d"
  "CMakeFiles/mp5_metrics.dir/reordering.cpp.o"
  "CMakeFiles/mp5_metrics.dir/reordering.cpp.o.d"
  "CMakeFiles/mp5_metrics.dir/sim_result.cpp.o"
  "CMakeFiles/mp5_metrics.dir/sim_result.cpp.o.d"
  "libmp5_metrics.a"
  "libmp5_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp5_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
