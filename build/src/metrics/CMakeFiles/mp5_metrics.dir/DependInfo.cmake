
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/c1_checker.cpp" "src/metrics/CMakeFiles/mp5_metrics.dir/c1_checker.cpp.o" "gcc" "src/metrics/CMakeFiles/mp5_metrics.dir/c1_checker.cpp.o.d"
  "/root/repo/src/metrics/equivalence.cpp" "src/metrics/CMakeFiles/mp5_metrics.dir/equivalence.cpp.o" "gcc" "src/metrics/CMakeFiles/mp5_metrics.dir/equivalence.cpp.o.d"
  "/root/repo/src/metrics/reordering.cpp" "src/metrics/CMakeFiles/mp5_metrics.dir/reordering.cpp.o" "gcc" "src/metrics/CMakeFiles/mp5_metrics.dir/reordering.cpp.o.d"
  "/root/repo/src/metrics/sim_result.cpp" "src/metrics/CMakeFiles/mp5_metrics.dir/sim_result.cpp.o" "gcc" "src/metrics/CMakeFiles/mp5_metrics.dir/sim_result.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mp5_common.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/mp5_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/banzai/CMakeFiles/mp5_banzai.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
