file(REMOVE_RECURSE
  "libmp5_metrics.a"
)
