# Empty compiler generated dependencies file for mp5_metrics.
# This may be replaced when dependencies are built.
