file(REMOVE_RECURSE
  "CMakeFiles/mp5_trace.dir/trace.cpp.o"
  "CMakeFiles/mp5_trace.dir/trace.cpp.o.d"
  "CMakeFiles/mp5_trace.dir/trace_io.cpp.o"
  "CMakeFiles/mp5_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/mp5_trace.dir/workloads.cpp.o"
  "CMakeFiles/mp5_trace.dir/workloads.cpp.o.d"
  "libmp5_trace.a"
  "libmp5_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp5_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
