file(REMOVE_RECURSE
  "libmp5_trace.a"
)
