# Empty dependencies file for mp5_trace.
# This may be replaced when dependencies are built.
