file(REMOVE_RECURSE
  "CMakeFiles/flowlet_lb.dir/flowlet_lb.cpp.o"
  "CMakeFiles/flowlet_lb.dir/flowlet_lb.cpp.o.d"
  "flowlet_lb"
  "flowlet_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowlet_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
