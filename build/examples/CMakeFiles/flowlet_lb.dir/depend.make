# Empty dependencies file for flowlet_lb.
# This may be replaced when dependencies are built.
