file(REMOVE_RECURSE
  "CMakeFiles/sequencer_demo.dir/sequencer_demo.cpp.o"
  "CMakeFiles/sequencer_demo.dir/sequencer_demo.cpp.o.d"
  "sequencer_demo"
  "sequencer_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequencer_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
