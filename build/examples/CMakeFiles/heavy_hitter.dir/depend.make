# Empty dependencies file for heavy_hitter.
# This may be replaced when dependencies are built.
