file(REMOVE_RECURSE
  "CMakeFiles/heavy_hitter.dir/heavy_hitter.cpp.o"
  "CMakeFiles/heavy_hitter.dir/heavy_hitter.cpp.o.d"
  "heavy_hitter"
  "heavy_hitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heavy_hitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
