# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heavy_hitter "/root/repo/build/examples/heavy_hitter")
set_tests_properties(example_heavy_hitter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sequencer_demo "/root/repo/build/examples/sequencer_demo")
set_tests_properties(example_sequencer_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_flowlet_lb "/root/repo/build/examples/flowlet_lb")
set_tests_properties(example_flowlet_lb PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_tenant "/root/repo/build/examples/multi_tenant")
set_tests_properties(example_multi_tenant PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
