// Native multicore backend: execute a compiled PVSM program directly on
// CPU cores (ISSUE 9; ROADMAP "NFOS-style multicore software-switch
// backend").
//
// Where the simulators model a Banzai machine cycle by cycle, this
// backend runs the same compiled Mp5Program at full speed on a pool of
// worker threads, one per "pipeline", optionally pinned to cores:
//
//   * the dispatcher (caller thread) streams packets from a TraceSource,
//     runs the program's address-resolution block (the D4 resolver) on
//     each packet, and plans every stateful access: resolved index,
//     owning worker, and a per-(register, index) *ticket*;
//   * state ownership is decided by the existing D2 shard map
//     (ShardedState): every register index has exactly one owner worker,
//     pinned arrays map wholly to the pin worker, and — under the dynamic
//     policy — the dispatcher periodically rebalances ownership with the
//     Figure 6 heuristic (an index is only re-homed when no packet is in
//     flight to it, so migration never races an access);
//   * packets travel between cores through SPSC batched rings; a worker
//     executes program stages in order, performs the stateful atoms it
//     owns, and forwards the packet to the owner of the next access;
//   * tickets replay the switch's arrival order per register index: an
//     access executes only when every earlier-admitted claim on that
//     index has executed, which makes the end-to-end result bit-identical
//     to the sequential AstInterp oracle for every core count.
//
// Synchronization is confined to the rings: headers, access plans and
// register values live in plain shared arrays whose handoffs ride the
// rings' release/acquire pairs (see spsc_ring.hpp). Ticket "done"
// counters are only ever touched by the owning worker.
#pragma once

#include <cstdint>
#include <vector>

#include "mp5/shard_map.hpp"
#include "mp5/transform.hpp"
#include "native/profiler.hpp"
#include "trace/trace_source.hpp"

namespace mp5::native {

struct NativeOptions {
  /// Worker threads ("pipelines"); state is sharded across them.
  std::uint32_t workers = 1;
  /// Ring push/pop batch size (packets).
  std::uint32_t batch = 32;
  /// Per-ring capacity (rounded up to a power of two).
  std::uint32_t ring_capacity = 1024;
  /// In-flight packet bound (the dispatcher's admission window).
  std::uint32_t pool_packets = 8192;
  /// Ownership policy for shardable registers (the D2 shard map).
  ShardingPolicy policy = ShardingPolicy::kDynamic;
  /// Dispatcher runs a shard rebalance every this many reaped packets
  /// (dynamic/ideal policies only; 0 disables periodic rebalancing).
  std::uint64_t rebalance_packets = 8192;
  std::uint64_t seed = 1;
  /// Pin worker i to CPU i mod hardware_concurrency (Linux only; silently
  /// best-effort elsewhere).
  bool pin_threads = true;
  /// Record final declared-field values per packet (oracle checking;
  /// O(packets) memory — leave off for throughput runs).
  bool record_egress = false;
  /// Per-worker busy/idle wall-clock accounting (adds two clock reads per
  /// worker loop iteration; counters are always collected regardless).
  bool profile = false;
};

struct NativeResult {
  std::uint64_t packets = 0;
  double seconds = 0.0;
  double pkts_per_sec = 0.0;
  std::uint64_t shard_moves = 0;
  std::uint64_t rebalances = 0;
  /// Final register state, flattened per RegisterSpec (oracle-comparable).
  std::vector<std::vector<Value>> final_registers;
  /// Final declared-field values per packet by seq (record_egress only).
  std::vector<std::vector<Value>> egress_fields;
  NativeProfile profile;
};

class NativeBackend {
public:
  /// Throws ConfigError on unusable options (workers == 0, batch larger
  /// than the rings, a pool too small to keep every worker busy).
  NativeBackend(const Mp5Program& program, const NativeOptions& opts);
  ~NativeBackend();

  NativeBackend(const NativeBackend&) = delete;
  NativeBackend& operator=(const NativeBackend&) = delete;

  /// Drain the source to exhaustion. Single-shot: construct a fresh
  /// backend per run.
  NativeResult run(TraceSource& source);

private:
  struct Impl;
  Impl* impl_;
};

} // namespace mp5::native
