#include "native/oracle.hpp"

#include <sstream>
#include <unordered_map>

#include "domino/ast_interp.hpp"

namespace mp5::native {

OracleCheck check_against_oracle(const domino::Ast& ast,
                                 const Mp5Program& program,
                                 const Trace& trace,
                                 const NativeResult& result) {
  OracleCheck check;
  auto fail = [&check](const std::string& why) {
    check.equivalent = false;
    check.first_difference = why;
    return check;
  };

  if (result.egress_fields.size() != trace.size()) {
    std::ostringstream os;
    os << "egress packet count: native " << result.egress_fields.size()
       << ", trace " << trace.size()
       << " (was the run made with record_egress?)";
    return fail(os.str());
  }

  domino::AstInterp oracle(ast);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    std::unordered_map<std::string, Value> fields;
    for (std::size_t f = 0; f < ast.fields.size(); ++f) {
      fields[ast.fields[f]] =
          f < trace[i].fields.size() ? trace[i].fields[f] : 0;
    }
    const auto out = oracle.process(fields);
    for (const auto& name : ast.fields) {
      const auto slot =
          static_cast<std::size_t>(program.pvsm.slot_of(name));
      const Value want = out.at(name);
      if (slot >= result.egress_fields[i].size()) {
        std::ostringstream os;
        os << "packet " << i << " field '" << name
           << "': slot missing from native egress record";
        return fail(os.str());
      }
      const Value got = result.egress_fields[i][slot];
      if (want != got) {
        std::ostringstream os;
        os << "packet " << i << " field '" << name << "': oracle " << want
           << ", native " << got;
        return fail(os.str());
      }
    }
  }

  const auto& oracle_regs = oracle.registers();
  const auto& native_regs = result.final_registers;
  for (std::size_t r = 0;
       r < oracle_regs.size() && r < native_regs.size(); ++r) {
    for (std::size_t i = 0; i < oracle_regs[r].size(); ++i) {
      if (oracle_regs[r][i] != native_regs[r][i]) {
        std::ostringstream os;
        os << "register " << ast.registers[r].name << "[" << i
           << "]: oracle " << oracle_regs[r][i] << ", native "
           << native_regs[r][i];
        return fail(os.str());
      }
    }
  }
  return check;
}

} // namespace mp5::native
