// Equivalence check of a native-backend run against the AstInterp oracle
// (ISSUE 9 acceptance: native egress must match the sequential source
// semantics for every core count).
#pragma once

#include <string>

#include "domino/ast.hpp"
#include "mp5/transform.hpp"
#include "native/backend.hpp"
#include "trace/trace.hpp"

namespace mp5::native {

struct OracleCheck {
  bool equivalent = true;
  /// Human-readable description of the first divergence (empty if none).
  std::string first_difference;
  explicit operator bool() const { return equivalent; }
};

/// Replay `trace` through the AstInterp oracle and compare per-packet
/// declared-field egress values and final register state against a
/// finished native run. The run must have been made with
/// NativeOptions::record_egress = true.
OracleCheck check_against_oracle(const domino::Ast& ast,
                                 const Mp5Program& program,
                                 const Trace& trace,
                                 const NativeResult& result);

} // namespace mp5::native
