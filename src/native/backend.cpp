#include "native/backend.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <exception>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "native/spsc_ring.hpp"
#include "packet/packet.hpp" // kUnresolvedIndex

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace mp5::native {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint16_t kNoOwner = 0xffff;
constexpr std::uint8_t kSkipState = 1; // resolved guard false at dispatch

/// One planned stateful access of one in-flight packet. Written by the
/// dispatcher at admission, read by workers; the packet ref's ring
/// handoff orders the two.
struct PlanEntry {
  std::uint32_t ticket = 0;
  RegIndex index = kUnresolvedIndex; // resolved index (D2 accounting)
  std::uint32_t gate = 0;            // slot in done_[reg]
  std::uint16_t reg = 0;
  std::uint16_t owner = kNoOwner;
  std::uint8_t flags = 0;
};

/// Plain-array register file over the backend's shared value table.
/// Stateless itself; cell-level exclusivity comes from shard ownership.
class ValuesRegFile final : public ir::RegFile {
public:
  explicit ValuesRegFile(std::vector<std::vector<Value>>* v) : v_(v) {}
  Value read(RegId reg, RegIndex index) override { return (*v_)[reg][index]; }
  void write(RegId reg, RegIndex index, Value v) override {
    (*v_)[reg][index] = v;
  }

private:
  std::vector<std::vector<Value>>* v_;
};

void pin_current_thread(std::uint32_t core) {
#if defined(__linux__)
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core % hw, &set);
  // Best effort: failure (restricted affinity masks in containers) only
  // costs locality, never correctness.
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)core;
#endif
}

} // namespace

struct NativeBackend::Impl {
  const Mp5Program& program;
  NativeOptions opts;
  std::size_t slots = 0;
  std::size_t declared = 0;  // declared fields occupy slots [0, declared)
  std::size_t naccesses = 0;
  std::size_t nregs = 0;

  // (stage, atom) -> ordinal into program.accesses, or -1 for stateless.
  std::vector<std::vector<std::int32_t>> atom_ordinal;

  // Shared register values + per-(reg, gate) completed-ticket counters.
  // done[r] has reg-size slots for shardable arrays and a single slot for
  // pinned arrays (whole-array serialization at the pin worker).
  std::vector<std::vector<Value>> values;
  std::vector<std::vector<std::uint32_t>> done;

  // Dispatcher-private.
  std::vector<std::vector<std::uint32_t>> next_ticket; // same shape as done
  ShardedState state;

  // Packet pool (ref-indexed plain arrays; ring handoffs order access).
  std::vector<std::vector<Value>> headers;
  std::vector<PlanEntry> plans; // pool * naccesses
  std::vector<SeqNo> seq;
  std::vector<std::uint16_t> pos_stage;
  std::vector<std::uint16_t> pos_atom;
  std::vector<std::uint8_t> hopped;

  // Rings.
  std::vector<std::unique_ptr<SpscRing<std::uint32_t>>> dispatch_ring;
  std::vector<std::unique_ptr<SpscRing<std::uint32_t>>> egress_ring;
  std::vector<std::unique_ptr<SpscRing<std::uint32_t>>> xfer_ring; // from*W+to

  ValuesRegFile regfile{&values};
  /// More runnable threads (workers + dispatcher) than hardware threads:
  /// spinning then burns scheduler quanta the thread we wait for needs,
  /// so idle paths yield immediately instead of pause-looping.
  bool oversubscribed = false;
  std::atomic<bool> stop{false};
  std::vector<std::exception_ptr> worker_error;
  std::vector<WorkerScratch> scratch;

  Impl(const Mp5Program& prog, const NativeOptions& o)
      : program(prog), opts(o),
        state(prog.pvsm.registers, prog.shardable, o.workers, o.policy,
              Rng(o.seed)) {
    validate();
    const unsigned hw = std::thread::hardware_concurrency();
    oversubscribed = hw != 0 && opts.workers + 1u > hw;
    slots = program.pvsm.num_slots();
    naccesses = program.accesses.size();
    nregs = program.pvsm.registers.size();
    for (std::size_t s = 0; s < slots; ++s) {
      if (program.pvsm.fields[s].declared) {
        if (s != declared) {
          throw Error("native: declared fields are not a slot prefix");
        }
        ++declared;
      }
    }
    build_atom_map();

    values = program.pvsm.initial_registers();
    done.resize(nregs);
    next_ticket.resize(nregs);
    for (RegId r = 0; r < nregs; ++r) {
      const std::size_t gates =
          program.shardable[r] ? program.pvsm.registers[r].size : 1;
      done[r].assign(gates, 0);
      next_ticket[r].assign(gates, 0);
    }

    const std::uint32_t pool = opts.pool_packets;
    headers.assign(pool, std::vector<Value>(slots, 0));
    plans.assign(static_cast<std::size_t>(pool) * naccesses, PlanEntry{});
    seq.assign(pool, 0);
    pos_stage.assign(pool, 0);
    pos_atom.assign(pool, 0);
    hopped.assign(pool, 0);

    const std::uint32_t w = opts.workers;
    dispatch_ring.resize(w);
    egress_ring.resize(w);
    xfer_ring.resize(static_cast<std::size_t>(w) * w);
    for (std::uint32_t i = 0; i < w; ++i) {
      dispatch_ring[i] =
          std::make_unique<SpscRing<std::uint32_t>>(opts.ring_capacity);
      egress_ring[i] =
          std::make_unique<SpscRing<std::uint32_t>>(opts.ring_capacity);
      for (std::uint32_t j = 0; j < w; ++j) {
        if (i == j) continue;
        xfer_ring[static_cast<std::size_t>(i) * w + j] =
            std::make_unique<SpscRing<std::uint32_t>>(opts.ring_capacity);
      }
    }
    worker_error.resize(w);
    scratch.reserve(w);
    for (std::uint32_t i = 0; i < w; ++i) scratch.emplace_back(nregs);
  }

  void validate() const {
    if (opts.workers < 1 || opts.workers > 64) {
      throw ConfigError("native: workers must be in [1, 64], got " +
                        std::to_string(opts.workers));
    }
    if (opts.batch < 1) throw ConfigError("native: batch must be >= 1");
    if (opts.ring_capacity < 2 * opts.batch) {
      throw ConfigError("native: ring_capacity must be at least 2x batch (" +
                        std::to_string(opts.ring_capacity) + " < 2*" +
                        std::to_string(opts.batch) + ")");
    }
    if (opts.pool_packets <
        2ull * opts.batch * opts.workers) {
      throw ConfigError(
          "native: pool_packets must be >= 2 * batch * workers (need " +
          std::to_string(2ull * opts.batch * opts.workers) + ", got " +
          std::to_string(opts.pool_packets) + ")");
    }
    if (program.pvsm.registers.size() > 0xffff ||
        program.accesses.size() > 0xffff ||
        program.pvsm.stages.size() > 0xfffe) {
      throw ConfigError("native: program too large for the packet plan");
    }
  }

  /// Each register is fused into exactly one stateful atom, so
  /// (pvsm stage, reg) identifies its access descriptor uniquely.
  void build_atom_map() {
    atom_ordinal.resize(program.pvsm.stages.size());
    std::size_t matched = 0;
    for (StageId s = 0; s < program.pvsm.stages.size(); ++s) {
      const auto& atoms = program.pvsm.stages[s].atoms;
      atom_ordinal[s].assign(atoms.size(), -1);
      for (std::size_t a = 0; a < atoms.size(); ++a) {
        if (!atoms[a].stateful()) continue;
        std::int32_t ord = -1;
        for (std::size_t i = 0; i < program.accesses.size(); ++i) {
          const auto& desc = program.accesses[i];
          if (desc.stage == s + 1 && desc.reg == atoms[a].reg) {
            ord = static_cast<std::int32_t>(i);
            break;
          }
        }
        if (ord < 0) {
          throw Error("native: no access descriptor for register '" +
                      program.pvsm.registers[atoms[a].reg].name +
                      "' in stage " + std::to_string(s));
        }
        atom_ordinal[s][a] = ord;
        ++matched;
      }
    }
    if (matched != program.accesses.size()) {
      throw Error("native: access descriptor count mismatch");
    }
  }

  PlanEntry* plan_of(std::uint32_t ref) {
    return plans.data() + static_cast<std::size_t>(ref) * naccesses;
  }

  SpscRing<std::uint32_t>& xfer(std::uint32_t from, std::uint32_t to) {
    return *xfer_ring[static_cast<std::size_t>(from) * opts.workers + to];
  }

  // ---- worker side ------------------------------------------------------

  enum class Outcome { kParked, kForwarded, kEgressed };

  struct OutBufs {
    // Per-destination pending refs with a consumed-prefix offset, so a
    // partially accepted batch keeps FIFO order without memmove.
    std::vector<std::vector<std::uint32_t>> to;
    std::vector<std::size_t> to_off;
    std::vector<std::uint32_t> egress;
    std::size_t egress_off = 0;

    explicit OutBufs(std::uint32_t workers)
        : to(workers), to_off(workers, 0) {}

    bool pending() const {
      if (egress.size() != egress_off) return true;
      for (std::size_t i = 0; i < to.size(); ++i) {
        if (to[i].size() != to_off[i]) return true;
      }
      return false;
    }
  };

  Outcome run_packet(std::uint32_t me, std::uint32_t ref, WorkerScratch& s,
                     OutBufs& outs) {
    auto& hdr = headers[ref];
    const auto& stages = program.pvsm.stages;
    const auto& specs = program.pvsm.registers;
    std::uint32_t st = pos_stage[ref];
    std::uint32_t at = pos_atom[ref];
    while (st < stages.size()) {
      const auto& atoms = stages[st].atoms;
      while (at < atoms.size()) {
        const ir::Atom& atom = atoms[at];
        const std::int32_t ord = atom_ordinal[st][at];
        if (ord < 0) {
          ir::exec_atom(atom, hdr, regfile, specs);
          ++at;
          continue;
        }
        PlanEntry& e = *(plan_of(ref) + ord);
        if (e.flags & kSkipState) {
          // Resolved guard was false at dispatch: the state access cannot
          // happen, but the atom's pure body still runs (its instructions
          // honour their own guards) — simulator pass-through parity.
          for (const auto& instr : atom.body) {
            if (instr.op == ir::TacOp::kRegRead ||
                instr.op == ir::TacOp::kRegWrite) {
              continue;
            }
            ir::exec_instr(instr, hdr, regfile, specs);
          }
          ++at;
          continue;
        }
        if (e.owner != me) {
          pos_stage[ref] = static_cast<std::uint16_t>(st);
          pos_atom[ref] = static_cast<std::uint16_t>(at);
          hopped[ref] = 1;
          ++s.stats.forwards;
          outs.to[e.owner].push_back(ref);
          return Outcome::kForwarded;
        }
        std::uint32_t& done_ctr = done[e.reg][e.gate];
        if (done_ctr != e.ticket) {
          // An earlier-admitted claim on this index has not executed yet
          // (its packet is still in flight to this worker). Park; the
          // ticket makes arrival order exact no matter when we retry.
          pos_stage[ref] = static_cast<std::uint16_t>(st);
          pos_atom[ref] = static_cast<std::uint16_t>(at);
          ++s.stats.parks;
          ++s.reg_parks[e.reg];
          return Outcome::kParked;
        }
        bool performed = true;
        if (atom.guard != ir::kNoSlot) {
          const bool truthy =
              hdr[static_cast<std::size_t>(atom.guard)] != 0;
          performed = atom.guard_negate ? !truthy : truthy;
        }
        ir::exec_atom(atom, hdr, regfile, specs);
        ++done_ctr;
        ++s.reg_claimed[e.reg];
        if (performed) {
          ++s.stats.accesses;
          ++s.reg_performed[e.reg];
          if (hopped[ref]) ++s.reg_remote[e.reg];
        }
        ++at;
      }
      ++st;
      at = 0;
      ++s.stats.stages;
    }
    outs.egress.push_back(ref);
    return Outcome::kEgressed;
  }

  void flush_outs(std::uint32_t me, OutBufs& outs) {
    for (std::uint32_t w = 0; w < opts.workers; ++w) {
      auto& buf = outs.to[w];
      auto& off = outs.to_off[w];
      if (buf.size() == off) continue;
      off += xfer(me, w).push_batch(buf.data() + off, buf.size() - off);
      if (off == buf.size()) {
        buf.clear();
        off = 0;
      }
    }
    auto& ebuf = outs.egress;
    if (ebuf.size() != outs.egress_off) {
      outs.egress_off += egress_ring[me]->push_batch(
          ebuf.data() + outs.egress_off, ebuf.size() - outs.egress_off);
      if (outs.egress_off == ebuf.size()) {
        ebuf.clear();
        outs.egress_off = 0;
      }
    }
  }

  void worker_main(std::uint32_t me) {
    if (opts.pin_threads) pin_current_thread(me);
    WorkerScratch& s = scratch[me];
    OutBufs outs(opts.workers);
    std::vector<SpscRing<std::uint32_t>*> in;
    in.push_back(dispatch_ring[me].get());
    for (std::uint32_t from = 0; from < opts.workers; ++from) {
      if (from != me) in.push_back(&xfer(from, me));
    }
    std::deque<std::uint32_t> parked;
    std::vector<std::uint32_t> batch(opts.batch);
    const bool profiling = opts.profile;
    auto t_prev = profiling ? Clock::now() : Clock::time_point{};

    while (true) {
      bool did = false;
      // Parked packets first, FIFO: the claim they wait on may have just
      // executed.
      for (std::size_t n = parked.size(); n > 0; --n) {
        const std::uint32_t ref = parked.front();
        parked.pop_front();
        const Outcome out = run_packet(me, ref, s, outs);
        if (out == Outcome::kParked) {
          parked.push_back(ref);
        } else {
          did = true;
        }
      }
      for (auto* ring : in) {
        const std::size_t n = ring->pop_batch(batch.data(), batch.size());
        for (std::size_t i = 0; i < n; ++i) {
          ++s.stats.hops;
          if (run_packet(me, batch[i], s, outs) == Outcome::kParked) {
            parked.push_back(batch[i]);
          }
        }
        did = did || n > 0;
      }
      flush_outs(me, outs);

      if (profiling) {
        const auto now = Clock::now();
        const auto ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(now - t_prev)
                .count());
        (did ? s.stats.busy_ns : s.stats.idle_ns) += ns;
        t_prev = now;
      }
      if (!did) {
        if (stop.load(std::memory_order_acquire) && parked.empty() &&
            !outs.pending()) {
          bool drained = true;
          for (auto* ring : in) drained = drained && ring->empty_consumer();
          if (drained) return;
        }
        ++s.stats.idle_spins;
        if (oversubscribed || (s.stats.idle_spins & 0xfff) == 0) {
          std::this_thread::yield();
        } else {
          cpu_relax();
        }
      }
    }
  }

  // ---- dispatcher side --------------------------------------------------

  void admit(std::uint32_t ref, const TraceItem& item, SeqNo n,
             std::vector<std::vector<std::uint32_t>>& outbuf) {
    auto& hdr = headers[ref];
    std::fill(hdr.begin(), hdr.end(), 0);
    const std::size_t nf = std::min(item.fields.size(), declared);
    for (std::size_t f = 0; f < nf; ++f) hdr[f] = item.fields[f];
    seq[ref] = n;
    pos_stage[ref] = 0;
    pos_atom[ref] = 0;
    hopped[ref] = 0;

    // Address resolution (the D4 resolver): compute every preemptively
    // resolvable index and guard on the arrival headers.
    const auto& specs = program.pvsm.registers;
    for (const auto& instr : program.resolver) {
      ir::exec_instr(instr, hdr, regfile, specs);
    }

    PlanEntry* plan = plan_of(ref);
    std::uint16_t first_owner = kNoOwner;
    for (std::size_t i = 0; i < naccesses; ++i) {
      const AccessDescriptor& desc = program.accesses[i];
      PlanEntry& e = plan[i];
      e.reg = static_cast<std::uint16_t>(desc.reg);
      if (desc.guard != ir::kNoSlot && desc.guard_resolvable) {
        const bool truthy =
            hdr[static_cast<std::size_t>(desc.guard)] != 0;
        if (desc.guard_negate ? truthy : !truthy) {
          e.flags = kSkipState; // branch not taken: no claim, no ticket
          continue;
        }
      }
      e.flags = 0;
      e.index = desc.index_resolvable
                    ? ir::resolve_index(desc.index, hdr,
                                        specs[desc.reg].size)
                    : kUnresolvedIndex;
      e.gate = program.shardable[desc.reg] ? e.index : 0;
      e.ticket = next_ticket[desc.reg][e.gate]++;
      e.owner =
          static_cast<std::uint16_t>(state.pipeline_of(desc.reg, e.index));
      state.note_resolved(desc.reg, e.index);
      if (first_owner == kNoOwner) first_owner = e.owner;
    }
    if (first_owner == kNoOwner) {
      // Stateless packet: spread round-robin.
      first_owner = static_cast<std::uint16_t>(n % opts.workers);
    }
    outbuf[first_owner].push_back(ref);
  }

  NativeResult run(TraceSource& source) {
    NativeResult result;
    const std::uint32_t w = opts.workers;

    std::vector<std::uint32_t> free_refs(opts.pool_packets);
    for (std::uint32_t i = 0; i < opts.pool_packets; ++i) {
      free_refs[i] = opts.pool_packets - 1 - i;
    }
    std::vector<std::vector<std::uint32_t>> outbuf(w);
    std::vector<std::size_t> outoff(w, 0);
    std::vector<std::uint32_t> reap(opts.batch);

    if (const auto hint = source.size();
        opts.record_egress && hint.has_value()) {
      result.egress_fields.reserve(static_cast<std::size_t>(*hint));
    }

    std::vector<std::thread> threads;
    threads.reserve(w);
    for (std::uint32_t i = 0; i < w; ++i) {
      threads.emplace_back([this, i] {
        try {
          worker_main(i);
        } catch (...) {
          worker_error[i] = std::current_exception();
          stop.store(true, std::memory_order_release);
        }
      });
    }

    const auto t0 = Clock::now();
    SeqNo admitted = 0;
    SeqNo reaped = 0;
    std::uint64_t last_rebalance = 0;
    const bool moving_policy = opts.policy == ShardingPolicy::kDynamic ||
                               opts.policy == ShardingPolicy::kIdealLpt;
    bool worker_died = false;

    while (!worker_died) {
      bool did = false;

      // Admit while the pool and the first-hop rings have room.
      const TraceItem* item = nullptr;
      std::uint64_t fresh = 0;
      while (admitted - reaped < opts.pool_packets && !free_refs.empty() &&
             fresh < opts.batch && (item = source.peek()) != nullptr) {
        const std::uint32_t ref = free_refs.back();
        free_refs.pop_back();
        admit(ref, *item, admitted, outbuf);
        ++admitted;
        ++fresh;
        source.advance();
        did = true;
      }
      for (std::uint32_t i = 0; i < w; ++i) {
        auto& buf = outbuf[i];
        auto& off = outoff[i];
        if (buf.size() == off) continue;
        off += dispatch_ring[i]->push_batch(buf.data() + off,
                                            buf.size() - off);
        if (off == buf.size()) {
          buf.clear();
          off = 0;
        }
      }

      // Reap egressed packets: D2 in-flight accounting, optional egress
      // recording, ref recycling.
      for (std::uint32_t i = 0; i < w; ++i) {
        const std::size_t n =
            egress_ring[i]->pop_batch(reap.data(), reap.size());
        for (std::size_t p = 0; p < n; ++p) {
          const std::uint32_t ref = reap[p];
          const PlanEntry* plan = plan_of(ref);
          for (std::size_t a = 0; a < naccesses; ++a) {
            if (plan[a].flags & kSkipState) continue;
            state.note_completed(plan[a].reg, plan[a].index);
          }
          if (opts.record_egress) {
            const SeqNo sq = seq[ref];
            if (result.egress_fields.size() <= sq) {
              result.egress_fields.resize(sq + 1);
            }
            result.egress_fields[sq].assign(headers[ref].begin(),
                                            headers[ref].begin() + declared);
          }
          free_refs.push_back(ref);
          ++reaped;
        }
        did = did || n > 0;
      }

      // Periodic D2 rebalance: ownership of quiescent (in-flight == 0)
      // indices migrates between workers; the dispatcher's ring handoffs
      // carry the happens-before edge from the old owner's last write to
      // the new owner's first read.
      if (moving_policy && opts.rebalance_packets > 0 &&
          reaped - last_rebalance >= opts.rebalance_packets) {
        result.shard_moves += state.rebalance();
        ++result.rebalances;
        last_rebalance = reaped;
      }

      if (admitted == reaped && source.peek() == nullptr) break;
      if (!did) {
        if (oversubscribed) std::this_thread::yield();
        else cpu_relax();
      }
      for (std::uint32_t i = 0; i < w && !worker_died; ++i) {
        worker_died = worker_error[i] != nullptr;
      }
    }

    const auto t1 = Clock::now();
    stop.store(true, std::memory_order_release);
    for (auto& t : threads) t.join();
    for (std::uint32_t i = 0; i < w; ++i) {
      if (worker_error[i]) std::rethrow_exception(worker_error[i]);
    }

    result.packets = admitted;
    result.seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
            .count();
    result.pkts_per_sec =
        result.seconds > 0.0 ? static_cast<double>(admitted) / result.seconds
                             : 0.0;
    result.final_registers = values;
    merge_profile(result);
    return result;
  }

  void merge_profile(NativeResult& result) {
    NativeProfile& prof = result.profile;
    prof.workers.reserve(opts.workers);
    for (const auto& s : scratch) prof.workers.push_back(s.stats);

    prof.registers.resize(nregs);
    std::uint64_t best_serial = 0;
    for (RegId r = 0; r < nregs; ++r) {
      RegisterStats& rs = prof.registers[r];
      rs.name = program.pvsm.registers[r].name;
      for (std::uint32_t w = 0; w < opts.workers; ++w) {
        const WorkerScratch& s = scratch[w];
        rs.claimed += s.reg_claimed[r];
        rs.performed += s.reg_performed[r];
        rs.remote += s.reg_remote[r];
        rs.parks += s.reg_parks[r];
        if (s.reg_claimed[r] > rs.busiest_owner_accesses) {
          rs.busiest_owner_accesses = s.reg_claimed[r];
          rs.busiest_owner = w;
        }
      }
      if (rs.claimed > 0) {
        rs.owner_share = static_cast<double>(rs.busiest_owner_accesses) /
                         static_cast<double>(rs.claimed);
      }
      if (rs.busiest_owner_accesses > best_serial) {
        best_serial = rs.busiest_owner_accesses;
        prof.serializing_register = rs.name;
      }
    }
    if (result.packets > 0) {
      prof.serial_fraction = static_cast<double>(best_serial) /
                             static_cast<double>(result.packets);
    }
  }
};

NativeBackend::NativeBackend(const Mp5Program& program,
                             const NativeOptions& opts)
    : impl_(new Impl(program, opts)) {}

NativeBackend::~NativeBackend() { delete impl_; }

NativeResult NativeBackend::run(TraceSource& source) {
  return impl_->run(source);
}

} // namespace mp5::native
