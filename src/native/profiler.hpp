// NFOS-style scalability profiler for the native multicore backend.
//
// Answers the question the ROADMAP item poses: *which register serializes
// scaling?* Every worker keeps private per-worker and per-register
// counters (no shared cache lines on the hot path); the backend merges
// them after the run and computes, per register, how large a share of all
// packets funneled through that register's single busiest owner core. The
// register with the largest such share is the serialization bottleneck in
// the Amdahl sense: its owner must touch that fraction of the workload
// serially no matter how many cores are added (cf. NFOS's packet-set
// state, scalability-profiler.c).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mp5::native {

/// Per-worker accounting, merged from each worker's private copy.
struct WorkerStats {
  std::uint64_t hops = 0;       // packet visits processed (incl. re-tries)
  std::uint64_t stages = 0;     // program stages executed
  std::uint64_t accesses = 0;   // stateful atoms executed with state access
  std::uint64_t forwards = 0;   // packets forwarded to another worker
  std::uint64_t parks = 0;      // head-of-line waits on an access ticket
  std::uint64_t idle_spins = 0; // loop iterations with nothing to do
  std::uint64_t busy_ns = 0;    // wall time of productive iterations
  std::uint64_t idle_ns = 0;    // wall time of idle iterations
};

/// Per-register contention accounting (merged across workers).
struct RegisterStats {
  std::string name;
  std::uint64_t claimed = 0;   // accesses planned/ticketed at dispatch
  std::uint64_t performed = 0; // accesses whose guard passed at execution
  std::uint64_t remote = 0;    // performed for packets that hopped cores
  std::uint64_t parks = 0;     // ticket waits observed at this register
  std::uint32_t busiest_owner = 0;
  std::uint64_t busiest_owner_accesses = 0;
  /// busiest_owner_accesses / claimed (0 when never accessed).
  double owner_share = 0.0;
};

struct NativeProfile {
  std::vector<WorkerStats> workers;
  std::vector<RegisterStats> registers;
  /// Register whose busiest single owner had to serially execute the
  /// largest fraction of the run; empty when the program has no claimed
  /// state accesses.
  std::string serializing_register;
  /// That fraction, relative to total packets: ~1.0 means every packet
  /// serialized through one core (a global counter), ~1/k means the
  /// register shards perfectly.
  double serial_fraction = 0.0;
};

/// Worker-private scratch: one instance per worker, merged post-run.
struct WorkerScratch {
  WorkerStats stats;
  std::vector<std::uint64_t> reg_claimed;   // executed claims (ticket bumps)
  std::vector<std::uint64_t> reg_performed;
  std::vector<std::uint64_t> reg_remote;
  std::vector<std::uint64_t> reg_parks;

  explicit WorkerScratch(std::size_t regs)
      : reg_claimed(regs, 0), reg_performed(regs, 0), reg_remote(regs, 0),
        reg_parks(regs, 0) {}
};

} // namespace mp5::native
