// Single-producer/single-consumer packet ring for the native multicore
// backend (ISSUE 9).
//
// The native backend moves packets between CPU cores exclusively through
// these rings: dispatcher -> worker, worker -> worker (one ring per
// ordered pair), worker -> dispatcher (egress). Design follows the
// classic cache-friendly SPSC queue (NFOS / DPDK lineage):
//
//   * fixed capacity, rounded up to a power of two (mask indexing);
//   * head (consumer) and tail (producer) live on their own cache lines
//     so the two sides never false-share;
//   * each side keeps a *cached* copy of the other side's index and only
//     re-reads the shared atomic when the cached value says the ring
//     looks full/empty — the hot path is one relaxed load + one release
//     store per batch;
//   * batch push/pop amortize even that: one index publication per batch
//     instead of per element.
//
// The release/acquire pair on tail (push -> pop) and head (pop -> push
// slot reuse) is also what makes the backend's plain shared arrays
// (packet headers, access plans, register values) race-free: every
// handoff of a packet ref between threads goes through exactly one ring,
// so writes made by the sender happen-before reads by the receiver.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace mp5::native {

inline constexpr std::size_t kCacheLine = 64;

template <typename T>
class SpscRing {
public:
  /// Capacity is rounded up to the next power of two (minimum 2). The
  /// ring holds exactly `capacity()` elements when full.
  explicit SpscRing(std::size_t capacity) {
    if (capacity < 2) capacity = 2;
    std::size_t pow2 = 2;
    while (pow2 < capacity) {
      if (pow2 > (std::size_t{1} << 62)) {
        throw ConfigError("SpscRing: capacity too large");
      }
      pow2 <<= 1;
    }
    buf_.resize(pow2);
    mask_ = pow2 - 1;
  }

  std::size_t capacity() const noexcept { return buf_.size(); }

  // -- producer side ------------------------------------------------------

  /// Append up to `n` items; returns how many were accepted (0 when the
  /// ring is full). Accepted items are published with one release store.
  std::size_t push_batch(const T* items, std::size_t n) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t room = capacity() - static_cast<std::size_t>(tail - head_cache_);
    if (room < n) {
      head_cache_ = head_.load(std::memory_order_acquire);
      room = capacity() - static_cast<std::size_t>(tail - head_cache_);
      if (room == 0) return 0;
    }
    const std::size_t take = n < room ? n : room;
    for (std::size_t i = 0; i < take; ++i) {
      buf_[static_cast<std::size_t>(tail + i) & mask_] = items[i];
    }
    tail_.store(tail + take, std::memory_order_release);
    return take;
  }

  bool try_push(const T& item) { return push_batch(&item, 1) == 1; }

  // -- consumer side ------------------------------------------------------

  /// Remove up to `max` items into `out`; returns how many were popped.
  std::size_t pop_batch(T* out, std::size_t max) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::size_t ready = static_cast<std::size_t>(tail_cache_ - head);
    if (ready == 0) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      ready = static_cast<std::size_t>(tail_cache_ - head);
      if (ready == 0) return 0;
    }
    const std::size_t take = max < ready ? max : ready;
    for (std::size_t i = 0; i < take; ++i) {
      out[i] = buf_[static_cast<std::size_t>(head + i) & mask_];
    }
    head_.store(head + take, std::memory_order_release);
    return take;
  }

  bool try_pop(T& out) { return pop_batch(&out, 1) == 1; }

  /// Consumer-side emptiness check (exact for the consumer: it re-reads
  /// the producer index). Used for termination, not for flow control.
  bool empty_consumer() {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (tail_cache_ != head) return false;
    tail_cache_ = tail_.load(std::memory_order_acquire);
    return tail_cache_ == head;
  }

private:
  std::vector<T> buf_;
  std::size_t mask_ = 0;

  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0}; // consumer
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0}; // producer
  /// Producer-private cache of head_ (same line as nothing shared).
  alignas(kCacheLine) std::uint64_t head_cache_ = 0;
  /// Consumer-private cache of tail_.
  alignas(kCacheLine) std::uint64_t tail_cache_ = 0;
};

/// Polite spin: x86 PAUSE / ARM YIELD when available.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

} // namespace mp5::native
