// TAC optimizer, run between lowering and pipelining.
//
// Pipeline stages and atom circuits are the scarce resources on a switch
// (§2.1, §4.2), so shrinking the instruction list directly improves how
// programs fit the machine. Passes (iterated to fixpoint):
//   * constant folding of pure instructions (the operator semantics are
//     the shared total semantics of banzai/ir.hpp);
//   * copy propagation through SSA slots;
//   * select-with-constant-condition reduction;
//   * guard simplification on register accesses: a statically false guard
//     deletes the access (a read's destination becomes the constant 0,
//     matching the reference executor's skip semantics), a statically
//     true guard is removed;
//   * dead-code elimination, rooted at register accesses and the egress
//     copies of declared fields.
//
// Correctness is enforced by the differential suite: random programs must
// behave identically under the AST interpreter, the compiled reference
// switch, and MP5, with and without optimization.
#pragma once

#include "domino/lower.hpp"

namespace mp5::domino {

struct OptimizeStats {
  std::size_t folded = 0;
  std::size_t copies_propagated = 0;
  std::size_t guards_simplified = 0;
  std::size_t dead_removed = 0;

  std::size_t total() const {
    return folded + copies_propagated + guards_simplified + dead_removed;
  }
};

/// Optimize in place; returns what happened.
OptimizeStats optimize(LoweredProgram& program);

} // namespace mp5::domino
