// Recursive-descent parser for the Domino subset.
//
// Grammar (loosely):
//   program   := decl*
//   decl      := packet_decl | const_decl | reg_decl | func_decl
//   packet_decl := 'struct' 'Packet' '{' ('int' ident ';')* '}' ';'
//   const_decl  := 'const' 'int' ident '=' const_expr ';'
//   reg_decl    := 'int' ident ('[' const_expr ']')? ('=' init)? ';'
//   init        := const_expr | '{' const_expr (',' const_expr)* '}'
//   func_decl   := 'void' ident '(' 'struct' 'Packet' ident ')' block
//   stmt        := assign ';' | 'if' '(' expr ')' stmt_or_block
//                  ('else' stmt_or_block)?
//   assign      := lvalue ('='|'+='|'-='|'*=') expr | lvalue '++' | ...
// Expressions use C precedence; `p.<field>` references packet fields.
#pragma once

#include <string>

#include "domino/ast.hpp"

namespace mp5::domino {

/// Parse a full Domino program. Throws ParseError on syntax errors and
/// SemanticError on (the few) semantic issues detectable at parse time,
/// e.g. duplicate declarations or non-constant initializers.
Ast parse(const std::string& source);

} // namespace mp5::domino
