// Standalone semantic checker for parsed Domino programs.
//
// The parser only validates what it can see locally (duplicate
// declarations, malformed initializers); everything name- and
// arity-related used to be discovered as a side effect of lowering or —
// worse — at interpretation time. check_semantics() concentrates those
// rules so that `compile()` and the AST interpreter reject the same
// programs with the same diagnostics before any code runs:
//   * packet-field reads/writes must name declared fields of the packet
//     parameter;
//   * bare identifiers must be constants or *scalar* registers — an
//     unindexed read or write of a register array with size > 1 is an
//     error (it used to silently touch element 0);
//   * register declarations must have positive size (so the runtime's
//     `floor_mod(idx, size)` index reduction can never divide by zero)
//     and initializers no longer than the array;
//   * builtin calls (hash2/hash3/hash5/min/max) must name a known builtin
//     with the right arity;
//   * assignment targets must be packet fields or registers, never
//     constants.
// Throws SemanticError with the same wording as the parser and lowerer.
#pragma once

#include "domino/ast.hpp"

namespace mp5::domino {

void check_semantics(const Ast& ast);

} // namespace mp5::domino
