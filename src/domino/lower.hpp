// Lowering: AST -> flat three-address code (the compiler's preprocessing
// phase, §3.3 phase (i)).
//
// Transformations performed here:
//   * semantic checking (undeclared fields/registers, builtin arity, ...);
//   * if-conversion: branches become (a) Select instructions for packet
//     field updates and (b) guard predicates on register accesses — the
//     guarded-state-access form matches the Banzai stateful-stage template
//     in Figure 5;
//   * SSA renaming of packet fields: each assignment defines a fresh
//     version slot, eliminating WAR/WAW hazards so that pipelining only
//     has to respect true dataflow. Final versions are copied back to the
//     declared ("canonical") slots by explicit egress copies;
//   * common-subexpression elimination over pure instructions. Because
//     slots are single-assignment and register reads are never merged, CSE
//     is semantics-preserving; it also canonicalizes register index
//     expressions so that all accesses to one array resolve to the same
//     operand (a requirement for Banzai's one-index-per-atom model).
#pragma once

#include <vector>

#include "banzai/ir.hpp"
#include "domino/ast.hpp"

namespace mp5::domino {

struct LoweredProgram {
  std::vector<ir::FieldInfo> fields;
  std::unordered_map<std::string, ir::Slot> declared_slot;
  std::vector<ir::RegisterSpec> registers;
  /// Program order; SSA over slots; guards only on RegRead/RegWrite.
  std::vector<ir::TacInstr> instrs;
  /// Indices into `instrs` of the trailing canonical write-back copies.
  std::vector<std::size_t> egress_copies;
};

/// Lower a parsed program. Throws SemanticError on semantic faults.
LoweredProgram lower(const Ast& ast);

} // namespace mp5::domino
