// Direct AST interpreter for Domino programs.
//
// This is the compiler's differential-testing oracle: the property suite
// runs random programs over random packets through (a) this interpreter
// and (b) the compiled PVSM executed by the single-pipeline reference
// switch, and requires identical final packet fields and register state.
//
// Semantics notes (shared with the compiled code):
//   * integer-only values (64-bit signed);
//   * division/modulo by zero yield 0 (hardware-style total operators);
//   * && and || evaluate both operands — expressions are side-effect-free
//     in this subset, so this is observationally equal to short-circuit;
//   * register indexes are reduced modulo the array size (non-negative).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "domino/ast.hpp"

namespace mp5::domino {

class AstInterp {
public:
  explicit AstInterp(const Ast& ast);

  /// Process one packet; missing fields default to 0. Returns the final
  /// value of every declared field.
  std::unordered_map<std::string, Value> process(
      const std::unordered_map<std::string, Value>& fields);

  const std::vector<std::vector<Value>>& registers() const { return regs_; }

private:
  Value eval(const Expr& e,
             const std::unordered_map<std::string, Value>& env) const;
  void exec(const Stmt& stmt, std::unordered_map<std::string, Value>& env);

  Value* lvalue_reg(const Expr& e,
                    const std::unordered_map<std::string, Value>& env);

  const Ast* ast_;
  std::unordered_map<std::string, std::size_t> reg_index_;
  std::unordered_map<std::string, Value> consts_;
  std::vector<std::vector<Value>> regs_;
};

} // namespace mp5::domino
