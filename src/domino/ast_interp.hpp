// Direct AST interpreter for Domino programs.
//
// This is the compiler's differential-testing oracle: the property suite
// runs random programs over random packets through (a) this interpreter
// and (b) the compiled PVSM executed by the single-pipeline reference
// switch, and requires identical final packet fields and register state.
//
// Semantics notes (shared with the compiled code):
//   * integer-only values (64-bit signed);
//   * division/modulo by zero yield 0 (hardware-style total operators);
//   * && and || evaluate both operands — expressions are side-effect-free
//     in this subset, so this is observationally equal to short-circuit;
//   * register indexes are reduced modulo the array size (non-negative).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "domino/ast.hpp"

namespace mp5::domino {

class AstInterp {
public:
  /// By default the program is semantically validated up front
  /// (check_semantics), so the interpreter rejects exactly what the
  /// compiler rejects. Pass validate = false to skip that and exercise
  /// the defensive runtime backstops (bad builtins and bare array reads
  /// then throw SemanticError mid-run instead).
  explicit AstInterp(const Ast& ast, bool validate = true);
  virtual ~AstInterp() = default;

  /// Process one packet; missing fields default to 0. Returns the final
  /// value of every declared field.
  std::unordered_map<std::string, Value> process(
      const std::unordered_map<std::string, Value>& fields);

  const std::vector<std::vector<Value>>& registers() const { return regs_; }

protected:
  /// Reduce a raw index expression value to an array slot in [0, size).
  /// Virtual as a fault-injection seam: the differential fuzzer's
  /// self-test subclasses this with a deliberately wrong reduction to
  /// prove the divergence pipeline catches and shrinks it.
  virtual Value reduce_index(Value raw, Value size) const;

private:
  Value eval(const Expr& e,
             const std::unordered_map<std::string, Value>& env) const;
  void exec(const Stmt& stmt, std::unordered_map<std::string, Value>& env);

  Value* lvalue_reg(const Expr& e,
                    const std::unordered_map<std::string, Value>& env);

  const Ast* ast_;
  std::unordered_map<std::string, std::size_t> reg_index_;
  std::unordered_map<std::string, Value> consts_;
  std::vector<std::vector<Value>> regs_;
};

} // namespace mp5::domino
