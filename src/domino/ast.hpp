// Abstract syntax tree for the Domino subset.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "banzai/ir.hpp"
#include "common/types.hpp"

namespace mp5::domino {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind {
    kIntLit,  // int_value
    kField,   // p.<name>
    kIdent,   // bare identifier: scalar register or const (resolved in sema)
    kReg,     // <name>[index]
    kUnary,   // un a
    kBinary,  // a bin b
    kTernary, // a ? b : c
    kCall,    // name(args...): hash2 hash3 hash5 min max
  };

  Kind kind = Kind::kIntLit;
  Value int_value = 0;
  std::string name;
  ExprPtr index;
  ir::UnOp un = ir::UnOp::kNeg;
  ir::BinOp bin = ir::BinOp::kAdd;
  ExprPtr a, b, c;
  std::vector<ExprPtr> args;
  int line = 0, col = 0;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind { kAssign, kIf };

  Kind kind = Kind::kAssign;
  // kAssign: lhs = rhs (compound assignments are desugared by the parser)
  ExprPtr lhs;
  ExprPtr rhs;
  // kIf
  ExprPtr cond;
  std::vector<StmtPtr> then_body;
  std::vector<StmtPtr> else_body;
  int line = 0, col = 0;
};

/// A match table with constant entries (§2.1: match tables are populated
/// by the control plane before runtime and stay constant — the functional
/// equivalence assumption of §2.2.1 — so const entries compile to
/// predicated execution, exactly the Figure 5 stateful-stage template).
struct TableDecl {
  std::string name;
  ExprPtr key;                       // matched against entry values
  struct Entry {
    Value match;                     // exact-match constant
    std::vector<StmtPtr> body;       // the entry's action
  };
  std::vector<Entry> entries;
  std::vector<StmtPtr> default_body; // optional default action
};

/// A whole parsed program: one packet struct, register declarations,
/// compile-time constants, match tables, and a single packet-processing
/// function.
struct Ast {
  std::string func_name;
  std::string packet_param;              // parameter name, e.g. "p"
  std::vector<std::string> fields;       // declared packet fields, in order
  std::vector<ir::RegisterSpec> registers;
  std::vector<std::pair<std::string, Value>> constants;
  std::vector<StmtPtr> body;
};

/// Deep structural clones (used by tests, table desugaring, and the
/// differential fuzzer's delta-debugging shrinker).
ExprPtr clone(const Expr& e);
StmtPtr clone(const Stmt& s);
Ast clone(const Ast& ast);

} // namespace mp5::domino
