// Top-level Domino compiler driver (§3.3, Figure 5 left):
//   source -> parse -> lower (preprocessing) -> pipeline (PVSM)
//          -> machine resource check (code generation)
//
// The MP5 target additionally reserves pipeline stages at the front for
// address resolution (the PVSM-to-PVSM transformer prepends them), so
// callers compiling for MP5 pass reserve_stages >= 1.
//
// Per §3.3, the compiler first tries to serialize register-array accesses
// (one array per stage) to keep every array shardable; if the serialized
// program does not fit the machine's stage budget, it falls back to the
// unserialized schedule and the transformer pins co-staged arrays to a
// single pipeline.
#pragma once

#include <string>

#include "banzai/machine.hpp"
#include "domino/ast.hpp"
#include "domino/lower.hpp"
#include "domino/pipeline.hpp"

namespace mp5::domino {

struct CompileResult {
  ir::Pvsm pvsm;
  /// True when the stateful-serialization schedule was used.
  bool serialized = true;
};

/// Compile Domino source for a machine. Throws ParseError / SemanticError /
/// ResourceError.
CompileResult compile(const std::string& source,
                      const banzai::MachineSpec& machine = {},
                      std::uint32_t reserve_stages = 0);

/// Compile an already parsed program.
CompileResult compile(const Ast& ast, const banzai::MachineSpec& machine = {},
                      std::uint32_t reserve_stages = 0);

} // namespace mp5::domino
