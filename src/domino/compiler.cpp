#include "domino/compiler.hpp"

#include "common/error.hpp"
#include "domino/optimize.hpp"
#include "domino/parser.hpp"
#include "domino/sema.hpp"

namespace mp5::domino {
namespace {

banzai::MachineSpec with_reserved(const banzai::MachineSpec& machine,
                                  std::uint32_t reserve_stages) {
  banzai::MachineSpec spec = machine;
  if (reserve_stages >= spec.max_stages) {
    throw ResourceError("machine has no stages left after reserving " +
                        std::to_string(reserve_stages));
  }
  spec.max_stages -= reserve_stages;
  return spec;
}

} // namespace

CompileResult compile(const Ast& ast, const banzai::MachineSpec& machine,
                      std::uint32_t reserve_stages) {
  const banzai::MachineSpec target = with_reserved(machine, reserve_stages);
  check_semantics(ast);
  LoweredProgram lowered = lower(ast);
  optimize(lowered);

  PipelineOptions serialize;
  serialize.serialize_stateful = true;
  ir::Pvsm serialized = pipeline(lowered, serialize);
  if (target.fits(serialized)) {
    return CompileResult{std::move(serialized), /*serialized=*/true};
  }

  PipelineOptions packed;
  packed.serialize_stateful = false;
  ir::Pvsm unserialized = pipeline(lowered, packed);
  target.check(unserialized); // throws with a useful message if still too big
  return CompileResult{std::move(unserialized), /*serialized=*/false};
}

CompileResult compile(const std::string& source,
                      const banzai::MachineSpec& machine,
                      std::uint32_t reserve_stages) {
  return compile(parse(source), machine, reserve_stages);
}

} // namespace mp5::domino
