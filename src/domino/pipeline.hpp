// Pipelining: three-address code -> PVSM (§3.3 phase (ii)).
//
// Builds the dataflow DAG over the lowered instructions, fuses every
// register's accesses (plus the computations between a read and the write
// it feeds) into a single stateful atom — Banzai's "atomic state operation
// within one stage" requirement (§2.1) — and assigns atoms to stages by
// longest-path levelling.
//
// Additional MP5-specific policy: by default, stateful atoms are
// *serialized* so each stage holds at most one register array (unless two
// atoms have provably mutually-exclusive guards, i.e. the if/else template
// of Figure 5). This is the compiler behaviour of §3.3: "if there are
// enough pipeline stages available, the compiler would try to serialize
// the register array accesses such that a packet accesses at most one
// register array per stage". With serialization disabled, co-staged
// register arrays are later pinned to one pipeline by the transformer.
//
// Rejected programs (SemanticError):
//   * accesses of one register with distinct index expressions (a Banzai
//     atom has a single memory port);
//   * computations that would require updating two registers atomically
//     (a dependency cycle between two stateful atoms).
#pragma once

#include "banzai/ir.hpp"
#include "domino/lower.hpp"

namespace mp5::domino {

struct PipelineOptions {
  /// Serialize stateful atoms so each stage has at most one register array
  /// (mutually-exclusive-guard pairs may share a stage).
  bool serialize_stateful = true;
};

ir::Pvsm pipeline(const LoweredProgram& lowered,
                  const PipelineOptions& options = {});

} // namespace mp5::domino
