#include "domino/sema.hpp"

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"

namespace mp5::domino {
namespace {

class Sema {
public:
  explicit Sema(const Ast& ast) : ast_(&ast) {
    for (const auto& [name, value] : ast.constants) {
      declare(name);
      consts_.insert(name);
    }
    for (const auto& spec : ast.registers) {
      declare(spec.name);
      if (spec.size == 0) {
        throw SemanticError("register '" + spec.name +
                            "' must have positive size");
      }
      if (spec.init.size() > spec.size) {
        throw SemanticError("register '" + spec.name +
                            "' initializer is longer than the array");
      }
      reg_size_[spec.name] = spec.size;
    }
    for (const auto& field : ast.fields) fields_.insert(field);
  }

  void run() {
    for (const auto& stmt : ast_->body) check_stmt(*stmt);
  }

private:
  void declare(const std::string& name) {
    if (!declared_.insert(name).second) {
      throw SemanticError("duplicate declaration of '" + name + "'");
    }
  }

  std::size_t reg_size_of(const std::string& name) const {
    auto it = reg_size_.find(name);
    if (it == reg_size_.end()) {
      throw SemanticError("undeclared register '" + name + "'");
    }
    return it->second;
  }

  void check_field(const Expr& e) const {
    if (!e.args.empty() && e.args[0]->name != ast_->packet_param) {
      throw SemanticError("unknown struct value '" + e.args[0]->name +
                          "' (expected packet parameter '" +
                          ast_->packet_param + "')");
    }
    if (!fields_.count(e.name)) {
      throw SemanticError("undeclared packet field '" + e.name + "'");
    }
  }

  void check_expr(const Expr& e) const {
    switch (e.kind) {
      case Expr::Kind::kIntLit:
        return;
      case Expr::Kind::kField:
        check_field(e);
        return;
      case Expr::Kind::kIdent: {
        if (consts_.count(e.name)) return;
        const std::size_t size = reg_size_of(e.name);
        if (size > 1) {
          throw SemanticError("register array '" + e.name + "' (size " +
                              std::to_string(size) +
                              ") cannot be accessed without an index");
        }
        return;
      }
      case Expr::Kind::kReg:
        reg_size_of(e.name);
        check_expr(*e.index);
        return;
      case Expr::Kind::kUnary:
        check_expr(*e.a);
        return;
      case Expr::Kind::kBinary:
        check_expr(*e.a);
        check_expr(*e.b);
        return;
      case Expr::Kind::kTernary:
        check_expr(*e.a);
        check_expr(*e.b);
        check_expr(*e.c);
        return;
      case Expr::Kind::kCall:
        check_call(e);
        return;
    }
    throw Error("check_expr: bad expression kind");
  }

  // Mirrors the lowerer's builtin handling so `mp5c` and the interpreter
  // reject bad calls up front with identical messages.
  void check_call(const Expr& e) const {
    std::size_t arity = 0;
    if (e.name == "min" || e.name == "max") {
      if (e.args.size() != 2) {
        throw SemanticError(e.name + " expects 2 arguments");
      }
      arity = 2;
    } else if (e.name == "hash2") {
      arity = 2;
    } else if (e.name == "hash3") {
      arity = 3;
    } else if (e.name == "hash5") {
      arity = 5;
    } else {
      throw SemanticError("unknown builtin '" + e.name + "'");
    }
    if (e.args.size() != arity) {
      throw SemanticError(e.name + " expects " + std::to_string(arity) +
                          " arguments, got " + std::to_string(e.args.size()));
    }
    for (const auto& arg : e.args) check_expr(*arg);
  }

  void check_assign_target(const Expr& lhs) const {
    switch (lhs.kind) {
      case Expr::Kind::kField:
        check_field(lhs);
        return;
      case Expr::Kind::kReg:
        reg_size_of(lhs.name);
        check_expr(*lhs.index);
        return;
      case Expr::Kind::kIdent: {
        if (consts_.count(lhs.name)) {
          throw SemanticError("cannot assign to constant '" + lhs.name + "'");
        }
        const std::size_t size = reg_size_of(lhs.name);
        if (size > 1) {
          throw SemanticError("register array '" + lhs.name + "' (size " +
                              std::to_string(size) +
                              ") cannot be accessed without an index");
        }
        return;
      }
      default:
        throw SemanticError("bad assignment target");
    }
  }

  void check_stmt(const Stmt& stmt) const {
    switch (stmt.kind) {
      case Stmt::Kind::kAssign:
        check_assign_target(*stmt.lhs);
        check_expr(*stmt.rhs);
        return;
      case Stmt::Kind::kIf:
        check_expr(*stmt.cond);
        for (const auto& s : stmt.then_body) check_stmt(*s);
        for (const auto& s : stmt.else_body) check_stmt(*s);
        return;
    }
  }

  const Ast* ast_;
  std::unordered_set<std::string> declared_;
  std::unordered_set<std::string> consts_;
  std::unordered_set<std::string> fields_;
  std::unordered_map<std::string, std::size_t> reg_size_;
};

} // namespace

void check_semantics(const Ast& ast) { Sema(ast).run(); }

} // namespace mp5::domino
