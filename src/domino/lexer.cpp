#include "domino/lexer.hpp"

#include <cctype>
#include <unordered_map>

#include "common/error.hpp"

namespace mp5::domino {
namespace {

const std::unordered_map<std::string, Tok>& keywords() {
  static const std::unordered_map<std::string, Tok> kw = {
      {"struct", Tok::kStruct}, {"int", Tok::kInt},   {"void", Tok::kVoid},
      {"if", Tok::kIf},         {"else", Tok::kElse}, {"const", Tok::kConst},
  };
  return kw;
}

} // namespace

std::vector<Token> lex(const std::string& source) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1, col = 1;

  auto peek = [&](std::size_t off = 0) -> char {
    return i + off < source.size() ? source[i + off] : '\0';
  };
  auto advance = [&]() {
    if (source[i] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    ++i;
  };
  auto emit = [&](Tok kind, std::string text, int l, int c) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = l;
    t.col = c;
    out.push_back(std::move(t));
  };

  while (i < source.size()) {
    const char ch = peek();
    const int l = line, c = col;
    if (std::isspace(static_cast<unsigned char>(ch))) {
      advance();
      continue;
    }
    if (ch == '/' && peek(1) == '/') {
      while (i < source.size() && peek() != '\n') advance();
      continue;
    }
    if (ch == '/' && peek(1) == '*') {
      advance();
      advance();
      while (i < source.size() && !(peek() == '*' && peek(1) == '/')) advance();
      if (i >= source.size()) throw ParseError(l, c, "unterminated comment");
      advance();
      advance();
      continue;
    }
    if (ch == '#') { // skip preprocessor-style lines
      while (i < source.size() && peek() != '\n') advance();
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_') {
      std::string ident;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(peek())) ||
              peek() == '_')) {
        ident += peek();
        advance();
      }
      auto it = keywords().find(ident);
      emit(it != keywords().end() ? it->second : Tok::kIdent, ident, l, c);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(ch))) {
      Value v = 0;
      std::string text;
      if (ch == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        advance();
        advance();
        bool any = false;
        while (i < source.size() &&
               std::isxdigit(static_cast<unsigned char>(peek()))) {
          const char d = peek();
          const int digit = std::isdigit(static_cast<unsigned char>(d))
                                ? d - '0'
                                : std::tolower(d) - 'a' + 10;
          v = v * 16 + digit;
          text += d;
          any = true;
          advance();
        }
        if (!any) throw ParseError(l, c, "bad hex literal");
      } else {
        while (i < source.size() &&
               std::isdigit(static_cast<unsigned char>(peek()))) {
          v = v * 10 + (peek() - '0');
          text += peek();
          advance();
        }
      }
      Token t;
      t.kind = Tok::kIntLit;
      t.text = text;
      t.int_value = v;
      t.line = l;
      t.col = c;
      out.push_back(std::move(t));
      continue;
    }

    auto two = [&](char second) { return peek(1) == second; };
    switch (ch) {
      case '{': emit(Tok::kLBrace, "{", l, c); advance(); continue;
      case '}': emit(Tok::kRBrace, "}", l, c); advance(); continue;
      case '(': emit(Tok::kLParen, "(", l, c); advance(); continue;
      case ')': emit(Tok::kRParen, ")", l, c); advance(); continue;
      case '[': emit(Tok::kLBracket, "[", l, c); advance(); continue;
      case ']': emit(Tok::kRBracket, "]", l, c); advance(); continue;
      case ';': emit(Tok::kSemi, ";", l, c); advance(); continue;
      case ',': emit(Tok::kComma, ",", l, c); advance(); continue;
      case '.': emit(Tok::kDot, ".", l, c); advance(); continue;
      case '?': emit(Tok::kQuestion, "?", l, c); advance(); continue;
      case ':': emit(Tok::kColon, ":", l, c); advance(); continue;
      case '~': emit(Tok::kTilde, "~", l, c); advance(); continue;
      case '^': emit(Tok::kCaret, "^", l, c); advance(); continue;
      case '+':
        if (two('+')) { emit(Tok::kPlusPlus, "++", l, c); advance(); advance(); }
        else if (two('=')) { emit(Tok::kPlusAssign, "+=", l, c); advance(); advance(); }
        else { emit(Tok::kPlus, "+", l, c); advance(); }
        continue;
      case '-':
        if (two('-')) { emit(Tok::kMinusMinus, "--", l, c); advance(); advance(); }
        else if (two('=')) { emit(Tok::kMinusAssign, "-=", l, c); advance(); advance(); }
        else { emit(Tok::kMinus, "-", l, c); advance(); }
        continue;
      case '*':
        if (two('=')) { emit(Tok::kStarAssign, "*=", l, c); advance(); advance(); }
        else { emit(Tok::kStar, "*", l, c); advance(); }
        continue;
      case '/': emit(Tok::kSlash, "/", l, c); advance(); continue;
      case '%': emit(Tok::kPercent, "%", l, c); advance(); continue;
      case '&':
        if (two('&')) { emit(Tok::kAmpAmp, "&&", l, c); advance(); advance(); }
        else { emit(Tok::kAmp, "&", l, c); advance(); }
        continue;
      case '|':
        if (two('|')) { emit(Tok::kPipePipe, "||", l, c); advance(); advance(); }
        else { emit(Tok::kPipe, "|", l, c); advance(); }
        continue;
      case '<':
        if (two('<')) { emit(Tok::kShl, "<<", l, c); advance(); advance(); }
        else if (two('=')) { emit(Tok::kLe, "<=", l, c); advance(); advance(); }
        else { emit(Tok::kLt, "<", l, c); advance(); }
        continue;
      case '>':
        if (two('>')) { emit(Tok::kShr, ">>", l, c); advance(); advance(); }
        else if (two('=')) { emit(Tok::kGe, ">=", l, c); advance(); advance(); }
        else { emit(Tok::kGt, ">", l, c); advance(); }
        continue;
      case '=':
        if (two('=')) { emit(Tok::kEqEq, "==", l, c); advance(); advance(); }
        else { emit(Tok::kAssign, "=", l, c); advance(); }
        continue;
      case '!':
        if (two('=')) { emit(Tok::kNe, "!=", l, c); advance(); advance(); }
        else { emit(Tok::kBang, "!", l, c); advance(); }
        continue;
      default:
        throw ParseError(l, c, std::string("unexpected character '") + ch + "'");
    }
  }
  Token end;
  end.kind = Tok::kEnd;
  end.line = line;
  end.col = col;
  out.push_back(std::move(end));
  return out;
}

std::string tok_name(Tok kind) {
  switch (kind) {
    case Tok::kEnd: return "<eof>";
    case Tok::kIdent: return "identifier";
    case Tok::kIntLit: return "integer literal";
    case Tok::kStruct: return "'struct'";
    case Tok::kInt: return "'int'";
    case Tok::kVoid: return "'void'";
    case Tok::kIf: return "'if'";
    case Tok::kElse: return "'else'";
    case Tok::kConst: return "'const'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kSemi: return "';'";
    case Tok::kComma: return "','";
    case Tok::kDot: return "'.'";
    case Tok::kQuestion: return "'?'";
    case Tok::kColon: return "':'";
    case Tok::kAssign: return "'='";
    case Tok::kPlusAssign: return "'+='";
    case Tok::kMinusAssign: return "'-='";
    case Tok::kStarAssign: return "'*='";
    case Tok::kPlusPlus: return "'++'";
    case Tok::kMinusMinus: return "'--'";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kAmp: return "'&'";
    case Tok::kPipe: return "'|'";
    case Tok::kCaret: return "'^'";
    case Tok::kShl: return "'<<'";
    case Tok::kShr: return "'>>'";
    case Tok::kLt: return "'<'";
    case Tok::kLe: return "'<='";
    case Tok::kGt: return "'>'";
    case Tok::kGe: return "'>='";
    case Tok::kEqEq: return "'=='";
    case Tok::kNe: return "'!='";
    case Tok::kAmpAmp: return "'&&'";
    case Tok::kPipePipe: return "'||'";
    case Tok::kBang: return "'!'";
    case Tok::kTilde: return "'~'";
  }
  return "<bad token>";
}

} // namespace mp5::domino
