#include "domino/optimize.hpp"

#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"

namespace mp5::domino {
namespace {

using ir::Operand;
using ir::Slot;
using ir::TacInstr;
using ir::TacOp;

class Optimizer {
public:
  explicit Optimizer(LoweredProgram& program) : prog_(&program) {}

  OptimizeStats run() {
    // Iterate to fixpoint: folding can enable propagation and vice versa.
    for (;;) {
      const std::size_t before = stats_.total();
      forward_pass();
      if (stats_.total() == before) break;
    }
    dce();
    return stats_;
  }

private:
  bool is_egress_copy(std::size_t idx) const {
    for (const std::size_t e : prog_->egress_copies) {
      if (e == idx) return true;
    }
    return false;
  }

  /// Apply accumulated slot replacements to one operand.
  void substitute(Operand& op) {
    while (!op.is_const) {
      auto it = replace_.find(op.slot);
      if (it == replace_.end()) return;
      op = it->second;
    }
  }

  void substitute_all(TacInstr& instr) {
    substitute(instr.a);
    substitute(instr.b);
    substitute(instr.c);
    for (auto& arg : instr.hash_args) substitute(arg);
    substitute(instr.index);
    if (instr.guard != ir::kNoSlot) {
      Operand g = Operand::make_slot(instr.guard);
      substitute(g);
      if (g.is_const) {
        guard_const_ = g.constant != 0;
        guard_is_const_ = true;
      } else {
        instr.guard = g.slot;
        guard_is_const_ = false;
      }
    } else {
      guard_is_const_ = false;
    }
  }

  void forward_pass() {
    std::vector<TacInstr> kept;
    std::vector<std::size_t> kept_egress;
    kept.reserve(prog_->instrs.size());

    for (std::size_t i = 0; i < prog_->instrs.size(); ++i) {
      TacInstr instr = prog_->instrs[i];
      const bool egress = is_egress_copy(i);
      substitute_all(instr);

      // Guard simplification on register accesses.
      if ((instr.op == TacOp::kRegRead || instr.op == TacOp::kRegWrite) &&
          guard_is_const_) {
        const bool passes = instr.guard_negate ? !guard_const_ : guard_const_;
        if (passes) {
          instr.guard = ir::kNoSlot;
          instr.guard_negate = false;
          ++stats_.guards_simplified;
        } else {
          // Never executes: a skipped read leaves its destination at the
          // initial 0; a skipped write vanishes.
          if (instr.op == TacOp::kRegRead) {
            replace_[instr.dst] = Operand::make_const(0);
          }
          ++stats_.guards_simplified;
          continue;
        }
      }

      switch (instr.op) {
        case TacOp::kCopy:
          // Never propagate a copy whose source is a declared (canonical)
          // slot: such copies are the snapshots that keep the parallel
          // egress write-back acyclic (see Lowerer::emit_egress_copies).
          if (!egress &&
              (instr.a.is_const ||
               !prog_->fields[static_cast<std::size_t>(instr.a.slot)]
                    .declared)) {
            replace_[instr.dst] = instr.a;
            ++stats_.copies_propagated;
            continue;
          }
          break;
        case TacOp::kUn:
          if (instr.a.is_const) {
            replace_[instr.dst] =
                Operand::make_const(ir::apply_un(instr.un, instr.a.constant));
            ++stats_.folded;
            continue;
          }
          break;
        case TacOp::kBin:
          if (instr.a.is_const && instr.b.is_const) {
            replace_[instr.dst] = Operand::make_const(
                ir::apply_bin(instr.bin, instr.a.constant, instr.b.constant));
            ++stats_.folded;
            continue;
          }
          break;
        case TacOp::kSelect:
          if (instr.a.is_const) {
            replace_[instr.dst] = instr.a.constant != 0 ? instr.b : instr.c;
            ++stats_.folded;
            continue;
          }
          if (!instr.b.is_const && !instr.c.is_const &&
              instr.b.slot == instr.c.slot) {
            // Both branches identical: the select is a copy.
            replace_[instr.dst] = instr.b;
            ++stats_.folded;
            continue;
          }
          break;
        default:
          break;
      }
      if (egress) kept_egress.push_back(kept.size());
      kept.push_back(std::move(instr));
    }
    prog_->instrs = std::move(kept);
    prog_->egress_copies = std::move(kept_egress);
  }

  void dce() {
    // Roots: register accesses (their operands, indexes, guards) and the
    // egress copies that materialize declared fields.
    std::unordered_set<Slot> live;
    auto mark = [&](const Operand& op) {
      if (!op.is_const) live.insert(op.slot);
    };
    std::unordered_set<std::size_t> keep;
    for (std::size_t i = 0; i < prog_->instrs.size(); ++i) {
      const auto& instr = prog_->instrs[i];
      if (instr.op == TacOp::kRegRead || instr.op == TacOp::kRegWrite ||
          is_egress_copy(i)) {
        keep.insert(i);
      }
    }
    // Backward liveness propagation (SSA: one def per temp).
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = prog_->instrs.size(); i-- > 0;) {
        const auto& instr = prog_->instrs[i];
        const bool needed =
            keep.count(i) ||
            (instr.dst != ir::kNoSlot && live.count(instr.dst));
        if (!needed) continue;
        if (keep.insert(i).second) changed = true;
        const std::size_t before = live.size();
        mark(instr.a);
        mark(instr.b);
        mark(instr.c);
        for (const auto& arg : instr.hash_args) mark(arg);
        mark(instr.index);
        if (instr.guard != ir::kNoSlot) live.insert(instr.guard);
        if (live.size() != before) changed = true;
      }
    }
    std::vector<TacInstr> kept;
    std::vector<std::size_t> kept_egress;
    kept.reserve(keep.size());
    for (std::size_t i = 0; i < prog_->instrs.size(); ++i) {
      if (!keep.count(i)) {
        ++stats_.dead_removed;
        continue;
      }
      if (is_egress_copy(i)) kept_egress.push_back(kept.size());
      kept.push_back(prog_->instrs[i]);
    }
    prog_->instrs = std::move(kept);
    prog_->egress_copies = std::move(kept_egress);
  }

  LoweredProgram* prog_;
  std::unordered_map<Slot, Operand> replace_;
  OptimizeStats stats_;
  bool guard_is_const_ = false;
  bool guard_const_ = false;
};

} // namespace

OptimizeStats optimize(LoweredProgram& program) {
  return Optimizer(program).run();
}

} // namespace mp5::domino
