// Lexer for the Domino subset (§3.3).
//
// Domino is a C-like language; the subset implemented here covers every
// construct used by the paper's example (Figure 3) and by the four real
// applications of §4.4: integer packet fields, global register arrays,
// if/else, ternaries, the usual C arithmetic/logic operators, compound
// assignments, and hash builtins.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace mp5::domino {

enum class Tok {
  kEnd,
  kIdent, kIntLit,
  // keywords
  kStruct, kInt, kVoid, kIf, kElse, kConst,
  // punctuation
  kLBrace, kRBrace, kLParen, kRParen, kLBracket, kRBracket,
  kSemi, kComma, kDot, kQuestion, kColon,
  // operators
  kAssign, kPlusAssign, kMinusAssign, kStarAssign,
  kPlusPlus, kMinusMinus,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kShl, kShr,
  kLt, kLe, kGt, kGe, kEqEq, kNe,
  kAmpAmp, kPipePipe, kBang, kTilde,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  Value int_value = 0;
  int line = 1;
  int col = 1;
};

/// Tokenize a full source string. Throws ParseError on bad input.
/// `//` and `/* */` comments and `#` preprocessor-style lines are skipped
/// (so programs copied from domino-examples with #define headers still
/// lex; constants should be declared with `const int`).
std::vector<Token> lex(const std::string& source);

/// Name of a token kind, for error messages.
std::string tok_name(Tok kind);

} // namespace mp5::domino
