#include "domino/ast_interp.hpp"

#include "common/error.hpp"
#include "common/hashing.hpp"
#include "domino/sema.hpp"

namespace mp5::domino {

AstInterp::AstInterp(const Ast& ast, bool validate) : ast_(&ast) {
  if (validate) check_semantics(ast);
  for (std::size_t i = 0; i < ast.registers.size(); ++i) {
    reg_index_[ast.registers[i].name] = i;
  }
  for (const auto& [name, value] : ast.constants) consts_[name] = value;
  // Initial register state, matching Pvsm::initial_registers().
  for (const auto& spec : ast.registers) {
    std::vector<Value> arr(spec.size, 0);
    for (std::size_t i = 0; i < spec.init.size() && i < spec.size; ++i) {
      arr[i] = spec.init[i];
    }
    if (spec.init.size() == 1) std::fill(arr.begin(), arr.end(), spec.init[0]);
    regs_.push_back(std::move(arr));
  }
}

Value AstInterp::eval(const Expr& e,
                      const std::unordered_map<std::string, Value>& env) const {
  switch (e.kind) {
    case Expr::Kind::kIntLit:
      return e.int_value;
    case Expr::Kind::kField: {
      auto it = env.find(e.name);
      return it == env.end() ? 0 : it->second;
    }
    case Expr::Kind::kIdent: {
      if (auto c = consts_.find(e.name); c != consts_.end()) return c->second;
      auto r = reg_index_.find(e.name);
      if (r == reg_index_.end()) {
        throw SemanticError("undeclared identifier '" + e.name + "'");
      }
      const auto& arr = regs_[r->second];
      if (arr.size() > 1) {
        // Backstop for unvalidated programs; sema rejects this up front.
        throw SemanticError("register array '" + e.name + "' (size " +
                            std::to_string(arr.size()) +
                            ") cannot be accessed without an index");
      }
      return arr[0];
    }
    case Expr::Kind::kReg: {
      auto r = reg_index_.find(e.name);
      if (r == reg_index_.end()) {
        throw SemanticError("undeclared register '" + e.name + "'");
      }
      const auto& arr = regs_[r->second];
      const Value idx =
          reduce_index(eval(*e.index, env), static_cast<Value>(arr.size()));
      return arr[static_cast<std::size_t>(idx)];
    }
    case Expr::Kind::kUnary:
      return ir::apply_un(e.un, eval(*e.a, env));
    case Expr::Kind::kBinary:
      return ir::apply_bin(e.bin, eval(*e.a, env), eval(*e.b, env));
    case Expr::Kind::kTernary:
      return eval(*e.a, env) != 0 ? eval(*e.b, env) : eval(*e.c, env);
    case Expr::Kind::kCall: {
      std::vector<Value> args;
      args.reserve(e.args.size());
      for (const auto& a : e.args) args.push_back(eval(*a, env));
      if (e.name == "hash2" && args.size() == 2) return hash2(args[0], args[1]);
      if (e.name == "hash3" && args.size() == 3) {
        return hash3(args[0], args[1], args[2]);
      }
      if (e.name == "hash5" && args.size() == 5) {
        return hash5(args[0], args[1], args[2], args[3], args[4]);
      }
      if (e.name == "min" && args.size() == 2) {
        return ir::apply_bin(ir::BinOp::kMin, args[0], args[1]);
      }
      if (e.name == "max" && args.size() == 2) {
        return ir::apply_bin(ir::BinOp::kMax, args[0], args[1]);
      }
      throw SemanticError("unknown builtin '" + e.name + "' with " +
                          std::to_string(args.size()) + " args");
    }
  }
  throw Error("AstInterp::eval: bad expression kind");
}

Value* AstInterp::lvalue_reg(const Expr& e,
                             const std::unordered_map<std::string, Value>& env) {
  auto r = reg_index_.find(e.name);
  if (r == reg_index_.end()) {
    throw SemanticError("undeclared register '" + e.name + "'");
  }
  auto& arr = regs_[r->second];
  Value idx = 0;
  if (e.kind == Expr::Kind::kReg) {
    idx = reduce_index(eval(*e.index, env), static_cast<Value>(arr.size()));
  } else if (arr.size() > 1) {
    // Backstop for unvalidated programs; sema rejects this up front.
    throw SemanticError("register array '" + e.name + "' (size " +
                        std::to_string(arr.size()) +
                        ") cannot be accessed without an index");
  }
  return &arr[static_cast<std::size_t>(idx)];
}

Value AstInterp::reduce_index(Value raw, Value size) const {
  return floor_mod(raw, size);
}

void AstInterp::exec(const Stmt& stmt,
                     std::unordered_map<std::string, Value>& env) {
  switch (stmt.kind) {
    case Stmt::Kind::kAssign: {
      const Value v = eval(*stmt.rhs, env);
      if (stmt.lhs->kind == Expr::Kind::kField) {
        env[stmt.lhs->name] = v;
      } else {
        *lvalue_reg(*stmt.lhs, env) = v;
      }
      return;
    }
    case Stmt::Kind::kIf: {
      const auto& body =
          eval(*stmt.cond, env) != 0 ? stmt.then_body : stmt.else_body;
      for (const auto& s : body) exec(*s, env);
      return;
    }
  }
}

std::unordered_map<std::string, Value> AstInterp::process(
    const std::unordered_map<std::string, Value>& fields) {
  std::unordered_map<std::string, Value> env;
  for (const auto& name : ast_->fields) {
    auto it = fields.find(name);
    env[name] = it == fields.end() ? 0 : it->second;
  }
  for (const auto& stmt : ast_->body) exec(*stmt, env);
  std::unordered_map<std::string, Value> out;
  for (const auto& name : ast_->fields) out[name] = env[name];
  return out;
}

} // namespace mp5::domino
