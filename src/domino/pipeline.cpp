#include "domino/pipeline.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"

namespace mp5::domino {
namespace {

using ir::Atom;
using ir::Operand;
using ir::Slot;
using ir::TacInstr;
using ir::TacOp;

std::vector<Slot> used_slots(const TacInstr& instr) {
  std::vector<Slot> slots;
  auto add = [&](const Operand& op) {
    if (!op.is_const) slots.push_back(op.slot);
  };
  add(instr.a);
  add(instr.b);
  add(instr.c);
  for (const auto& arg : instr.hash_args) add(arg);
  add(instr.index);
  if (instr.guard != ir::kNoSlot) slots.push_back(instr.guard);
  return slots;
}

bool is_access(const TacInstr& instr) {
  return instr.op == TacOp::kRegRead || instr.op == TacOp::kRegWrite;
}

bool operand_equal(const Operand& a, const Operand& b) {
  if (a.is_const != b.is_const) return false;
  return a.is_const ? a.constant == b.constant : a.slot == b.slot;
}

class PipelineBuilder {
public:
  PipelineBuilder(const LoweredProgram& lowered, const PipelineOptions& opts)
      : in_(&lowered), opts_(opts), n_(lowered.instrs.size()) {}

  ir::Pvsm run() {
    build_instr_edges();
    build_atom_membership();
    build_nodes();
    assign_stages();
    return emit();
  }

private:
  // ---- instruction-level dependency DAG ---------------------------------
  void build_instr_edges() {
    adj_.assign(n_, {});
    // slot -> defining instruction (SSA; canonical slots are defined only
    // by their trailing egress copy).
    std::unordered_map<Slot, std::size_t> def;
    for (std::size_t i = 0; i < n_; ++i) {
      const auto& instr = in_->instrs[i];
      if (instr.dst != ir::kNoSlot) def[instr.dst] = i;
    }
    std::unordered_set<std::size_t> egress(in_->egress_copies.begin(),
                                           in_->egress_copies.end());
    auto add_edge = [&](std::size_t from, std::size_t to) {
      if (from != to) adj_[from].push_back(to);
    };
    // RAW edges: def -> use, only when the def precedes the use. Egress
    // copies never feed anything: they form a *parallel* write-back of the
    // final field versions, so every use of a canonical slot reads the
    // packet's input value.
    for (std::size_t j = 0; j < n_; ++j) {
      for (const Slot s : used_slots(in_->instrs[j])) {
        auto it = def.find(s);
        if (it != def.end() && it->second < j && !egress.count(it->second)) {
          add_edge(it->second, j);
        }
      }
    }
    // WAR edges: every reader of a canonical slot (including other egress
    // copies — the parallel-assignment semantics) must execute before the
    // egress copy overwrites it.
    for (const std::size_t copy : in_->egress_copies) {
      const Slot canonical = in_->instrs[copy].dst;
      for (std::size_t j = 0; j < n_; ++j) {
        if (j == copy) continue;
        const auto slots = used_slots(in_->instrs[j]);
        if (std::find(slots.begin(), slots.end(), canonical) != slots.end()) {
          add_edge(j, copy);
        }
      }
    }
    // Program-order chains between accesses of the same register, so a
    // later read observes an earlier write within the same packet.
    std::unordered_map<RegId, std::size_t> last_access;
    for (std::size_t i = 0; i < n_; ++i) {
      const auto& instr = in_->instrs[i];
      if (!is_access(instr)) continue;
      auto it = last_access.find(instr.reg);
      if (it != last_access.end()) add_edge(it->second, i);
      last_access[instr.reg] = i;
    }
  }

  std::vector<bool> reach_from(const std::vector<std::size_t>& seeds,
                               bool forward) const {
    // For backward reachability, walk the reverse graph.
    std::vector<std::vector<std::size_t>> radj;
    const std::vector<std::vector<std::size_t>>* graph = &adj_;
    if (!forward) {
      radj.assign(n_, {});
      for (std::size_t i = 0; i < n_; ++i) {
        for (const std::size_t j : adj_[i]) radj[j].push_back(i);
      }
      graph = &radj;
    }
    std::vector<bool> seen(n_, false);
    std::deque<std::size_t> work(seeds.begin(), seeds.end());
    for (const std::size_t s : seeds) seen[s] = true;
    while (!work.empty()) {
      const std::size_t u = work.front();
      work.pop_front();
      for (const std::size_t v : (*graph)[u]) {
        if (!seen[v]) {
          seen[v] = true;
          work.push_back(v);
        }
      }
    }
    return seen;
  }

  // ---- atom membership ---------------------------------------------------
  void build_atom_membership() {
    member_of_.assign(n_, ir::kNoReg);
    std::unordered_map<RegId, std::vector<std::size_t>> accesses;
    for (std::size_t i = 0; i < n_; ++i) {
      if (is_access(in_->instrs[i])) accesses[in_->instrs[i].reg].push_back(i);
    }
    for (const auto& [reg, acc] : accesses) {
      const auto from = reach_from(acc, /*forward=*/true);
      const auto to = reach_from(acc, /*forward=*/false);
      for (std::size_t i = 0; i < n_; ++i) {
        const bool own_access =
            is_access(in_->instrs[i]) && in_->instrs[i].reg == reg;
        const bool between = from[i] && to[i];
        if (!own_access && !between) continue;
        if (is_access(in_->instrs[i]) && in_->instrs[i].reg != reg) {
          throw SemanticError(
              "registers '" + in_->registers[in_->instrs[i].reg].name +
              "' and '" + in_->registers[reg].name +
              "' would need to be updated atomically together; this is not "
              "implementable on a Banzai pipeline (one state per atom)");
        }
        if (member_of_[i] != ir::kNoReg && member_of_[i] != reg) {
          throw SemanticError(
              "a computation is shared between the atomic updates of "
              "registers '" + in_->registers[member_of_[i]].name + "' and '" +
              in_->registers[reg].name + "'; not implementable on Banzai");
        }
        member_of_[i] = reg;
      }
    }
  }

  // ---- condensed node graph ----------------------------------------------
  struct Node {
    RegId reg = ir::kNoReg; // kNoReg => singleton stateless instruction
    std::vector<std::size_t> instrs; // sorted by program order
    Slot guard = ir::kNoSlot;        // unified access guard (atoms only)
    bool guard_negate = false;
    std::uint32_t stage = 0;
  };

  void build_nodes() {
    std::unordered_map<RegId, std::size_t> reg_node;
    node_of_.assign(n_, 0);
    for (std::size_t i = 0; i < n_; ++i) {
      const RegId reg = member_of_[i];
      if (reg == ir::kNoReg) {
        node_of_[i] = nodes_.size();
        Node node;
        node.instrs.push_back(i);
        nodes_.push_back(std::move(node));
      } else if (auto it = reg_node.find(reg); it != reg_node.end()) {
        node_of_[i] = it->second;
        nodes_[it->second].instrs.push_back(i);
      } else {
        reg_node[reg] = nodes_.size();
        node_of_[i] = nodes_.size();
        Node node;
        node.reg = reg;
        node.instrs.push_back(i);
        nodes_.push_back(std::move(node));
      }
    }
    // Unified access guard per stateful node: used by the MP5 transformer
    // to decide whether a packet will access the atom's state. If any
    // access is unguarded, or accesses carry different guards, the state
    // is (conservatively) always accessed.
    for (auto& node : nodes_) {
      if (node.reg == ir::kNoReg) continue;
      bool first = true, always = false;
      for (const std::size_t i : node.instrs) {
        const auto& instr = in_->instrs[i];
        if (!is_access(instr)) continue;
        if (instr.guard == ir::kNoSlot) {
          always = true;
          break;
        }
        if (first) {
          node.guard = instr.guard;
          node.guard_negate = instr.guard_negate;
          first = false;
        } else if (node.guard != instr.guard ||
                   node.guard_negate != instr.guard_negate) {
          always = true;
          break;
        }
      }
      if (always) {
        node.guard = ir::kNoSlot;
        node.guard_negate = false;
      }
    }
    // Condensed edges.
    node_adj_.assign(nodes_.size(), {});
    node_indeg_.assign(nodes_.size(), 0);
    std::set<std::pair<std::size_t, std::size_t>> seen;
    for (std::size_t i = 0; i < n_; ++i) {
      for (const std::size_t j : adj_[i]) {
        const std::size_t a = node_of_[i], b = node_of_[j];
        if (a == b) continue;
        if (seen.insert({a, b}).second) {
          node_adj_[a].push_back(b);
          ++node_indeg_[b];
        }
      }
    }
  }

  // ---- stage assignment -----------------------------------------------------
  static bool exclusive(const Node& a, const Node& b) {
    return a.guard != ir::kNoSlot && b.guard != ir::kNoSlot &&
           a.guard == b.guard && a.guard_negate != b.guard_negate;
  }

  void assign_stages() {
    // Kahn topological order, stable by first instruction index so the
    // result is deterministic and respects program order among peers.
    auto indeg = node_indeg_;
    auto cmp = [&](std::size_t a, std::size_t b) {
      return nodes_[a].instrs.front() > nodes_[b].instrs.front();
    };
    std::vector<std::size_t> heap;
    for (std::size_t v = 0; v < nodes_.size(); ++v) {
      if (indeg[v] == 0) heap.push_back(v);
    }
    std::make_heap(heap.begin(), heap.end(), cmp);
    std::vector<std::size_t> topo;
    std::vector<std::uint32_t> stage(nodes_.size(), 0);
    // stateful placements: stage -> node ids already holding a register
    std::unordered_map<std::uint32_t, std::vector<std::size_t>> stateful_at;
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), cmp);
      const std::size_t u = heap.back();
      heap.pop_back();
      topo.push_back(u);
      if (nodes_[u].reg != ir::kNoReg && opts_.serialize_stateful) {
        for (;;) {
          bool conflict = false;
          for (const std::size_t other : stateful_at[stage[u]]) {
            if (!exclusive(nodes_[u], nodes_[other])) {
              conflict = true;
              break;
            }
          }
          if (!conflict) break;
          ++stage[u];
        }
        stateful_at[stage[u]].push_back(u);
      } else if (nodes_[u].reg != ir::kNoReg) {
        stateful_at[stage[u]].push_back(u);
      }
      nodes_[u].stage = stage[u];
      for (const std::size_t v : node_adj_[u]) {
        stage[v] = std::max(stage[v], stage[u] + 1);
        if (--indeg[v] == 0) {
          heap.push_back(v);
          std::push_heap(heap.begin(), heap.end(), cmp);
        }
      }
    }
    if (topo.size() != nodes_.size()) {
      // A cycle through >= 2 stateful atoms: name the registers involved.
      std::string regs;
      for (std::size_t v = 0; v < nodes_.size(); ++v) {
        if (indeg[v] > 0 && nodes_[v].reg != ir::kNoReg) {
          if (!regs.empty()) regs += ", ";
          regs += in_->registers[nodes_[v].reg].name;
        }
      }
      throw SemanticError(
          "cyclic dependency between stateful updates (registers: " + regs +
          "); the states cannot be placed in a feed-forward pipeline");
    }
  }

  // ---- PVSM emission ---------------------------------------------------------
  ir::Pvsm emit() {
    ir::Pvsm out;
    out.fields = in_->fields;
    out.declared_slot = in_->declared_slot;
    out.registers = in_->registers;
    std::uint32_t max_stage = 0;
    for (const auto& node : nodes_) max_stage = std::max(max_stage, node.stage);
    out.stages.resize(max_stage + 1);

    // Emit nodes into stages, ordered by first instruction index for
    // deterministic output.
    std::vector<std::size_t> order(nodes_.size());
    for (std::size_t v = 0; v < nodes_.size(); ++v) order[v] = v;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return nodes_[a].instrs.front() < nodes_[b].instrs.front();
    });
    for (const std::size_t v : order) {
      const Node& node = nodes_[v];
      Atom atom;
      atom.reg = node.reg;
      atom.guard = node.guard;
      atom.guard_negate = node.guard_negate;
      for (const std::size_t i : node.instrs) {
        atom.body.push_back(in_->instrs[i]);
      }
      if (node.reg != ir::kNoReg) {
        // Validate the single-index-per-atom requirement and record the
        // unified index operand.
        bool have_index = false;
        for (const auto& instr : atom.body) {
          if (!is_access(instr)) continue;
          if (!have_index) {
            atom.index = instr.index;
            have_index = true;
          } else if (!operand_equal(atom.index, instr.index)) {
            throw SemanticError(
                "register '" + in_->registers[node.reg].name +
                "' is accessed with multiple distinct index expressions; a "
                "Banzai atom has a single memory port");
          }
        }
      }
      out.stages[node.stage].atoms.push_back(std::move(atom));
    }
    return out;
  }

  const LoweredProgram* in_;
  PipelineOptions opts_;
  std::size_t n_;
  std::vector<std::vector<std::size_t>> adj_;
  std::vector<RegId> member_of_;
  std::vector<Node> nodes_;
  std::vector<std::size_t> node_of_;
  std::vector<std::vector<std::size_t>> node_adj_;
  std::vector<std::size_t> node_indeg_;
};

} // namespace

ir::Pvsm pipeline(const LoweredProgram& lowered,
                  const PipelineOptions& options) {
  return PipelineBuilder(lowered, options).run();
}

} // namespace mp5::domino
