#include "domino/lower.hpp"

#include <map>
#include <sstream>
#include <unordered_map>

#include "common/error.hpp"

namespace mp5::domino {
namespace {

using ir::Operand;
using ir::Slot;
using ir::TacInstr;
using ir::TacOp;

/// Current guard: a slot holding the path condition, possibly negated.
struct Guard {
  Slot slot = ir::kNoSlot;
  bool negate = false;
  bool active() const { return slot != ir::kNoSlot; }
};

class Lowerer {
public:
  explicit Lowerer(const Ast& ast) : ast_(&ast) {
    for (const auto& [name, value] : ast.constants) consts_[name] = value;
    for (std::size_t i = 0; i < ast.registers.size(); ++i) {
      reg_id_[ast.registers[i].name] = static_cast<RegId>(i);
    }
    out_.registers = ast.registers;
    for (const auto& field : ast.fields) {
      const Slot s = new_slot(field, /*declared=*/true);
      out_.declared_slot[field] = s;
      version_[field] = s;
    }
  }

  LoweredProgram run() {
    for (const auto& stmt : ast_->body) lower_stmt(*stmt, Guard{});
    emit_egress_copies();
    return std::move(out_);
  }

private:
  // ---- slot management ---------------------------------------------------
  Slot new_slot(const std::string& name, bool declared) {
    out_.fields.push_back(ir::FieldInfo{name, declared});
    return static_cast<Slot>(out_.fields.size() - 1);
  }

  Slot new_temp(const std::string& hint) {
    return new_slot("$t" + std::to_string(temp_counter_++) + "_" + hint,
                    /*declared=*/false);
  }

  // ---- instruction emission with CSE over pure ops -----------------------
  static std::string operand_key(const Operand& op) {
    return op.is_const ? "#" + std::to_string(op.constant)
                       : "s" + std::to_string(op.slot);
  }

  /// Emit a pure instruction producing a fresh temp, or reuse an existing
  /// temp computing the same value (safe: slots are single-assignment).
  Slot emit_pure(TacInstr instr, const std::string& hint) {
    std::ostringstream key;
    key << static_cast<int>(instr.op) << "/" << static_cast<int>(instr.un)
        << "/" << static_cast<int>(instr.bin) << ":" << operand_key(instr.a)
        << "," << operand_key(instr.b) << "," << operand_key(instr.c);
    for (const auto& arg : instr.hash_args) key << "," << operand_key(arg);
    auto it = cse_.find(key.str());
    if (it != cse_.end()) return it->second;
    const Slot dst = new_temp(hint);
    instr.dst = dst;
    out_.instrs.push_back(std::move(instr));
    cse_[key.str()] = dst;
    return dst;
  }

  Slot emit_bin(ir::BinOp op, Operand a, Operand b, const std::string& hint) {
    TacInstr i;
    i.op = TacOp::kBin;
    i.bin = op;
    i.a = a;
    i.b = b;
    return emit_pure(std::move(i), hint);
  }

  Slot emit_un(ir::UnOp op, Operand a, const std::string& hint) {
    TacInstr i;
    i.op = TacOp::kUn;
    i.un = op;
    i.a = a;
    return emit_pure(std::move(i), hint);
  }

  Slot emit_select(Operand cond, Operand when_true, Operand when_false,
                   const std::string& hint) {
    TacInstr i;
    i.op = TacOp::kSelect;
    i.a = cond;
    i.b = when_true;
    i.c = when_false;
    return emit_pure(std::move(i), hint);
  }

  // ---- expression lowering ------------------------------------------------
  RegId reg_of(const std::string& name) const {
    auto it = reg_id_.find(name);
    if (it == reg_id_.end()) {
      throw SemanticError("undeclared register '" + name + "'");
    }
    return it->second;
  }

  void reject_bare_array(RegId reg) const {
    const auto& spec = out_.registers[reg];
    if (spec.size > 1) {
      throw SemanticError("register array '" + spec.name + "' (size " +
                          std::to_string(spec.size) +
                          ") cannot be accessed without an index");
    }
  }

  Operand lower_expr(const Expr& e, const Guard& guard) {
    switch (e.kind) {
      case Expr::Kind::kIntLit:
        return Operand::make_const(e.int_value);
      case Expr::Kind::kField: {
        if (!e.args.empty() && e.args[0]->name != ast_->packet_param) {
          throw SemanticError("unknown struct value '" + e.args[0]->name +
                              "' (expected packet parameter '" +
                              ast_->packet_param + "')");
        }
        auto it = version_.find(e.name);
        if (it == version_.end()) {
          throw SemanticError("undeclared packet field '" + e.name + "'");
        }
        return Operand::make_slot(it->second);
      }
      case Expr::Kind::kIdent: {
        if (auto c = consts_.find(e.name); c != consts_.end()) {
          return Operand::make_const(c->second);
        }
        // Scalar register read (sema rejects bare reads of real arrays;
        // re-checked here for callers that lower unvalidated ASTs).
        const RegId reg = reg_of(e.name);
        reject_bare_array(reg);
        return emit_reg_read(reg, Operand::make_const(0), guard);
      }
      case Expr::Kind::kReg: {
        const Operand idx = lower_expr(*e.index, guard);
        return emit_reg_read(reg_of(e.name), idx, guard);
      }
      case Expr::Kind::kUnary:
        return Operand::make_slot(
            emit_un(e.un, lower_expr(*e.a, guard), "un"));
      case Expr::Kind::kBinary:
        return Operand::make_slot(emit_bin(e.bin, lower_expr(*e.a, guard),
                                           lower_expr(*e.b, guard), "bin"));
      case Expr::Kind::kTernary: {
        const Operand cond = lower_expr(*e.a, guard);
        const Operand t = lower_expr(*e.b, guard);
        const Operand f = lower_expr(*e.c, guard);
        return Operand::make_slot(emit_select(cond, t, f, "sel"));
      }
      case Expr::Kind::kCall: {
        if (e.name == "min" || e.name == "max") {
          if (e.args.size() != 2) {
            throw SemanticError(e.name + " expects 2 arguments");
          }
          return Operand::make_slot(
              emit_bin(e.name == "min" ? ir::BinOp::kMin : ir::BinOp::kMax,
                       lower_expr(*e.args[0], guard),
                       lower_expr(*e.args[1], guard), e.name));
        }
        std::size_t arity = 0;
        if (e.name == "hash2") arity = 2;
        else if (e.name == "hash3") arity = 3;
        else if (e.name == "hash5") arity = 5;
        else throw SemanticError("unknown builtin '" + e.name + "'");
        if (e.args.size() != arity) {
          throw SemanticError(e.name + " expects " + std::to_string(arity) +
                              " arguments, got " +
                              std::to_string(e.args.size()));
        }
        TacInstr i;
        i.op = TacOp::kHash;
        for (const auto& arg : e.args) {
          i.hash_args.push_back(lower_expr(*arg, guard));
        }
        return Operand::make_slot(emit_pure(std::move(i), "hash"));
      }
    }
    throw Error("lower_expr: bad expression kind");
  }

  Operand emit_reg_read(RegId reg, const Operand& index, const Guard& guard) {
    // Register reads are impure (their value depends on interleaving), so
    // they are never CSE'd: every source-level read is its own instruction.
    TacInstr i;
    i.op = TacOp::kRegRead;
    i.reg = reg;
    i.index = index;
    i.guard = guard.slot;
    i.guard_negate = guard.negate;
    const Slot dst = new_temp("r" + out_.registers[reg].name);
    i.dst = dst;
    out_.instrs.push_back(std::move(i));
    return Operand::make_slot(dst);
  }

  // ---- statement lowering ---------------------------------------------------
  void lower_stmt(const Stmt& stmt, const Guard& guard) {
    switch (stmt.kind) {
      case Stmt::Kind::kAssign: {
        const Operand rhs = lower_expr(*stmt.rhs, guard);
        lower_assign(*stmt.lhs, rhs, guard);
        return;
      }
      case Stmt::Kind::kIf: {
        const Operand cond = lower_expr(*stmt.cond, guard);
        // Branch-local version maps: the else branch must see pre-if field
        // versions (branches are alternatives, not a sequence), and the
        // join merges differing versions with a select on this if's own
        // condition. Register accesses still carry the full path condition
        // as their guard.
        const auto before = version_;
        const Guard then_guard = combine(guard, cond, /*negate=*/false);
        for (const auto& s : stmt.then_body) lower_stmt(*s, then_guard);
        auto then_versions = std::move(version_);
        version_ = before;
        if (!stmt.else_body.empty()) {
          const Guard else_guard = combine(guard, cond, /*negate=*/true);
          for (const auto& s : stmt.else_body) lower_stmt(*s, else_guard);
        }
        for (const auto& [field, then_slot] : then_versions) {
          const Slot else_slot = version_[field];
          if (then_slot == else_slot) continue;
          version_[field] = emit_select(cond, Operand::make_slot(then_slot),
                                        Operand::make_slot(else_slot),
                                        "phi_" + field);
        }
        return;
      }
    }
  }

  Guard combine(const Guard& parent, const Operand& cond, bool negate) {
    // Normalize the condition to a slot (conditions are rarely constants,
    // but `if (1)` should still work).
    Slot cond_slot;
    if (cond.is_const) {
      TacInstr c;
      c.op = TacOp::kCopy;
      c.a = cond;
      cond_slot = emit_pure(std::move(c), "const_cond");
    } else {
      cond_slot = cond.slot;
    }
    if (!parent.active()) return Guard{cond_slot, negate};
    // Materialize parent and child as values and AND them.
    Operand parent_val = Operand::make_slot(parent.slot);
    if (parent.negate) {
      parent_val = Operand::make_slot(
          emit_un(ir::UnOp::kLNot, parent_val, "nguard"));
    }
    Operand child_val = Operand::make_slot(cond_slot);
    if (negate) {
      child_val =
          Operand::make_slot(emit_un(ir::UnOp::kLNot, child_val, "ncond"));
    }
    return Guard{emit_bin(ir::BinOp::kLAnd, parent_val, child_val, "guard"),
                 false};
  }

  void lower_assign(const Expr& lhs, const Operand& rhs, const Guard& guard) {
    if (lhs.kind == Expr::Kind::kField) {
      if (!lhs.args.empty() && lhs.args[0]->name != ast_->packet_param) {
        throw SemanticError("unknown struct value '" + lhs.args[0]->name + "'");
      }
      auto it = version_.find(lhs.name);
      if (it == version_.end()) {
        throw SemanticError("undeclared packet field '" + lhs.name + "'");
      }
      // With branch-local version maps the assignment itself is
      // unconditional; the join select at the enclosing if handles the
      // path condition. Constants are materialized so versions are slots.
      if (rhs.is_const) {
        TacInstr i;
        i.op = TacOp::kCopy;
        i.a = rhs;
        version_[lhs.name] = emit_pure(std::move(i), "v_" + lhs.name);
      } else {
        version_[lhs.name] = rhs.slot;
      }
      return;
    }
    // Register write (scalar or array element).
    RegId reg;
    Operand index = Operand::make_const(0);
    if (lhs.kind == Expr::Kind::kReg) {
      reg = reg_of(lhs.name);
      index = lower_expr(*lhs.index, guard);
    } else if (lhs.kind == Expr::Kind::kIdent) {
      if (consts_.count(lhs.name)) {
        throw SemanticError("cannot assign to constant '" + lhs.name + "'");
      }
      reg = reg_of(lhs.name);
      reject_bare_array(reg);
    } else {
      throw SemanticError("bad assignment target");
    }
    TacInstr i;
    i.op = TacOp::kRegWrite;
    i.reg = reg;
    i.index = index;
    i.a = rhs;
    i.guard = guard.slot;
    i.guard_negate = guard.negate;
    out_.instrs.push_back(std::move(i));
  }

  void emit_egress_copies() {
    for (const auto& field : ast_->fields) {
      const Slot canonical = out_.declared_slot[field];
      Slot last = version_[field];
      if (last == canonical) continue;
      // The write-back is a *parallel* assignment of final versions. When
      // a field's final version aliases another field's canonical slot
      // (e.g. a swap through a temp), snapshot it first so the write-back
      // copies cannot form a read/write cycle among themselves.
      if (out_.fields[static_cast<std::size_t>(last)].declared) {
        TacInstr snap;
        snap.op = TacOp::kCopy;
        snap.dst = new_temp("snap_" + field);
        snap.a = Operand::make_slot(last);
        last = snap.dst;
        out_.instrs.push_back(std::move(snap));
      }
      TacInstr i;
      i.op = TacOp::kCopy;
      i.dst = canonical;
      i.a = Operand::make_slot(last);
      out_.egress_copies.push_back(out_.instrs.size());
      out_.instrs.push_back(std::move(i));
    }
  }

  const Ast* ast_;
  LoweredProgram out_;
  std::unordered_map<std::string, Value> consts_;
  std::unordered_map<std::string, RegId> reg_id_;
  std::unordered_map<std::string, Slot> version_;
  std::unordered_map<std::string, Slot> cse_;
  int temp_counter_ = 0;
};

} // namespace

LoweredProgram lower(const Ast& ast) { return Lowerer(ast).run(); }

} // namespace mp5::domino
