#include "domino/parser.hpp"

#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"
#include "domino/lexer.hpp"

namespace mp5::domino {
namespace {

class Parser {
public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Ast run() {
    Ast ast;
    bool saw_packet = false, saw_func = false;
    while (!at(Tok::kEnd)) {
      if (at(Tok::kStruct)) {
        if (saw_packet) fail("duplicate packet struct declaration");
        parse_packet_decl(ast);
        saw_packet = true;
      } else if (at(Tok::kConst)) {
        parse_const_decl(ast);
      } else if (at(Tok::kIdent) && cur().text == "table") {
        parse_table_decl();
      } else if (at(Tok::kInt)) {
        parse_reg_decl(ast);
      } else if (at(Tok::kVoid)) {
        if (saw_func) fail("only one packet-processing function is allowed");
        parse_func_decl(ast);
        saw_func = true;
      } else {
        fail("expected a declaration, got " + tok_name(cur().kind));
      }
    }
    if (!saw_packet) {
      throw SemanticError("program has no 'struct Packet' declaration");
    }
    if (!saw_func) {
      throw SemanticError("program has no packet-processing function");
    }
    return ast;
  }

private:
  // ---- token plumbing -------------------------------------------------
  const Token& cur() const { return toks_[pos_]; }
  bool at(Tok kind) const { return cur().kind == kind; }
  Token eat() { return toks_[pos_++]; }
  Token expect(Tok kind) {
    if (!at(kind)) {
      fail("expected " + tok_name(kind) + ", got " + tok_name(cur().kind));
    }
    return eat();
  }
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(cur().line, cur().col, msg);
  }

  // ---- declarations ----------------------------------------------------
  void parse_packet_decl(Ast& ast) {
    expect(Tok::kStruct);
    const Token name = expect(Tok::kIdent);
    if (name.text != "Packet") fail("packet struct must be named 'Packet'");
    expect(Tok::kLBrace);
    std::unordered_set<std::string> seen;
    while (!at(Tok::kRBrace)) {
      expect(Tok::kInt);
      const Token field = expect(Tok::kIdent);
      if (!seen.insert(field.text).second) {
        throw SemanticError("duplicate packet field '" + field.text + "'");
      }
      ast.fields.push_back(field.text);
      expect(Tok::kSemi);
    }
    expect(Tok::kRBrace);
    expect(Tok::kSemi);
  }

  void parse_const_decl(Ast& ast) {
    expect(Tok::kConst);
    expect(Tok::kInt);
    const Token name = expect(Tok::kIdent);
    expect(Tok::kAssign);
    const Value v = parse_const_expr();
    expect(Tok::kSemi);
    declare_unique(name.text);
    consts_[name.text] = v;
    ast.constants.emplace_back(name.text, v);
  }

  void parse_reg_decl(Ast& ast) {
    expect(Tok::kInt);
    const Token name = expect(Tok::kIdent);
    ir::RegisterSpec spec;
    spec.name = name.text;
    spec.size = 1;
    if (at(Tok::kLBracket)) {
      eat();
      const Value n = parse_const_expr();
      if (n <= 0) throw SemanticError("register '" + spec.name +
                                      "' must have positive size");
      spec.size = static_cast<std::size_t>(n);
      expect(Tok::kRBracket);
    }
    if (at(Tok::kAssign)) {
      eat();
      if (at(Tok::kLBrace)) {
        eat();
        spec.init.push_back(parse_const_expr());
        while (at(Tok::kComma)) {
          eat();
          spec.init.push_back(parse_const_expr());
        }
        expect(Tok::kRBrace);
        if (spec.init.size() > spec.size) {
          throw SemanticError("register '" + spec.name +
                              "' initializer is longer than the array");
        }
      } else {
        spec.init.push_back(parse_const_expr());
      }
    }
    expect(Tok::kSemi);
    declare_unique(spec.name);
    regs_.insert(spec.name);
    ast.registers.push_back(std::move(spec));
  }

  // table <name> (<key expr>) { <const> : { stmts } ... default : {...} }
  // Desugared at `apply <name>;` into an if/else-if chain — constant
  // entries are exactly predicated execution (Figure 5's Match part).
  void parse_table_decl() {
    expect(Tok::kIdent); // 'table'
    const Token name = expect(Tok::kIdent);
    declare_unique(name.text);
    TableDecl table;
    table.name = name.text;
    expect(Tok::kLParen);
    table.key = parse_expr();
    expect(Tok::kRParen);
    expect(Tok::kLBrace);
    bool saw_default = false;
    while (!at(Tok::kRBrace)) {
      if (at(Tok::kIdent) && cur().text == "default") {
        if (saw_default) fail("duplicate default entry");
        eat();
        expect(Tok::kColon);
        table.default_body = parse_stmt_or_block();
        saw_default = true;
      } else {
        TableDecl::Entry entry;
        entry.match = parse_const_expr();
        expect(Tok::kColon);
        entry.body = parse_stmt_or_block();
        table.entries.push_back(std::move(entry));
      }
    }
    expect(Tok::kRBrace);
    if (table.entries.empty() && table.default_body.empty()) {
      throw SemanticError("table '" + table.name + "' has no entries");
    }
    tables_[table.name] = std::move(table);
  }

  static StmtPtr clone_stmt(const Stmt& stmt) { return clone(stmt); }

  /// apply <table>; -> if (key == m1) {a1} else if (key == m2) {a2} ...
  StmtPtr desugar_apply(const TableDecl& table, int line, int col) {
    if (table.entries.empty()) {
      // Default-only table: the default action applies unconditionally.
      auto always = std::make_unique<Stmt>();
      always->kind = Stmt::Kind::kIf;
      always->line = line;
      always->col = col;
      always->cond = make_int(1);
      for (const auto& stmt : table.default_body) {
        always->then_body.push_back(clone_stmt(*stmt));
      }
      return always;
    }
    std::vector<StmtPtr> else_body;
    for (const auto& stmt : table.default_body) {
      else_body.push_back(clone_stmt(*stmt));
    }
    for (auto it = table.entries.rbegin(); it != table.entries.rend(); ++it) {
      auto branch = std::make_unique<Stmt>();
      branch->kind = Stmt::Kind::kIf;
      branch->line = line;
      branch->col = col;
      branch->cond =
          make_bin(ir::BinOp::kEq, clone(*table.key), make_int(it->match));
      for (const auto& stmt : it->body) {
        branch->then_body.push_back(clone_stmt(*stmt));
      }
      branch->else_body = std::move(else_body);
      else_body.clear();
      else_body.push_back(std::move(branch));
    }
    return std::move(else_body.front());
  }

  void parse_func_decl(Ast& ast) {
    expect(Tok::kVoid);
    ast.func_name = expect(Tok::kIdent).text;
    expect(Tok::kLParen);
    expect(Tok::kStruct);
    const Token pname = expect(Tok::kIdent);
    if (pname.text != "Packet") fail("parameter must have type 'struct Packet'");
    ast.packet_param = expect(Tok::kIdent).text;
    expect(Tok::kRParen);
    expect(Tok::kLBrace);
    while (!at(Tok::kRBrace)) ast.body.push_back(parse_stmt());
    expect(Tok::kRBrace);
  }

  void declare_unique(const std::string& name) {
    if (consts_.count(name) || regs_.count(name)) {
      throw SemanticError("duplicate declaration of '" + name + "'");
    }
  }

  // ---- statements -------------------------------------------------------
  StmtPtr parse_stmt() {
    if (at(Tok::kIf)) return parse_if();
    if (at(Tok::kIdent) && cur().text == "apply") {
      const int line = cur().line, col = cur().col;
      eat();
      const Token name = expect(Tok::kIdent);
      expect(Tok::kSemi);
      auto it = tables_.find(name.text);
      if (it == tables_.end()) {
        throw SemanticError("unknown table '" + name.text + "'");
      }
      return desugar_apply(it->second, line, col);
    }
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kAssign;
    stmt->line = cur().line;
    stmt->col = cur().col;
    ExprPtr lhs = parse_unary(); // lvalue: p.x, reg[expr], or bare ident
    if (lhs->kind != Expr::Kind::kField && lhs->kind != Expr::Kind::kReg &&
        lhs->kind != Expr::Kind::kIdent) {
      fail("assignment target must be a packet field or register");
    }
    if (at(Tok::kPlusPlus) || at(Tok::kMinusMinus)) {
      const bool inc = eat().kind == Tok::kPlusPlus;
      stmt->rhs = make_bin(inc ? ir::BinOp::kAdd : ir::BinOp::kSub,
                           clone(*lhs), make_int(1));
      stmt->lhs = std::move(lhs);
      expect(Tok::kSemi);
      return stmt;
    }
    ir::BinOp compound{};
    bool is_compound = true;
    switch (cur().kind) {
      case Tok::kPlusAssign: compound = ir::BinOp::kAdd; break;
      case Tok::kMinusAssign: compound = ir::BinOp::kSub; break;
      case Tok::kStarAssign: compound = ir::BinOp::kMul; break;
      default: is_compound = false; break;
    }
    if (is_compound) {
      eat();
      stmt->rhs = make_bin(compound, clone(*lhs), parse_expr());
    } else {
      expect(Tok::kAssign);
      stmt->rhs = parse_expr();
    }
    stmt->lhs = std::move(lhs);
    expect(Tok::kSemi);
    return stmt;
  }

  StmtPtr parse_if() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kIf;
    stmt->line = cur().line;
    stmt->col = cur().col;
    expect(Tok::kIf);
    expect(Tok::kLParen);
    stmt->cond = parse_expr();
    expect(Tok::kRParen);
    stmt->then_body = parse_stmt_or_block();
    if (at(Tok::kElse)) {
      eat();
      if (at(Tok::kIf)) {
        stmt->else_body.push_back(parse_if()); // else-if chain
      } else {
        stmt->else_body = parse_stmt_or_block();
      }
    }
    return stmt;
  }

  std::vector<StmtPtr> parse_stmt_or_block() {
    std::vector<StmtPtr> body;
    if (at(Tok::kLBrace)) {
      eat();
      while (!at(Tok::kRBrace)) body.push_back(parse_stmt());
      expect(Tok::kRBrace);
    } else {
      body.push_back(parse_stmt());
    }
    return body;
  }

  // ---- expressions (C precedence, precedence climbing) ------------------
  ExprPtr parse_expr() { return parse_ternary(); }

  ExprPtr parse_ternary() {
    ExprPtr cond = parse_binary(0);
    if (!at(Tok::kQuestion)) return cond;
    eat();
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kTernary;
    e->line = cond->line;
    e->col = cond->col;
    e->a = std::move(cond);
    e->b = parse_expr();
    expect(Tok::kColon);
    e->c = parse_expr();
    return e;
  }

  struct OpInfo {
    ir::BinOp op;
    int prec;
  };

  bool binop_info(Tok kind, OpInfo& out) const {
    switch (kind) {
      case Tok::kPipePipe: out = {ir::BinOp::kLOr, 1}; return true;
      case Tok::kAmpAmp: out = {ir::BinOp::kLAnd, 2}; return true;
      case Tok::kPipe: out = {ir::BinOp::kBitOr, 3}; return true;
      case Tok::kCaret: out = {ir::BinOp::kBitXor, 4}; return true;
      case Tok::kAmp: out = {ir::BinOp::kBitAnd, 5}; return true;
      case Tok::kEqEq: out = {ir::BinOp::kEq, 6}; return true;
      case Tok::kNe: out = {ir::BinOp::kNe, 6}; return true;
      case Tok::kLt: out = {ir::BinOp::kLt, 7}; return true;
      case Tok::kLe: out = {ir::BinOp::kLe, 7}; return true;
      case Tok::kGt: out = {ir::BinOp::kGt, 7}; return true;
      case Tok::kGe: out = {ir::BinOp::kGe, 7}; return true;
      case Tok::kShl: out = {ir::BinOp::kShl, 8}; return true;
      case Tok::kShr: out = {ir::BinOp::kShr, 8}; return true;
      case Tok::kPlus: out = {ir::BinOp::kAdd, 9}; return true;
      case Tok::kMinus: out = {ir::BinOp::kSub, 9}; return true;
      case Tok::kStar: out = {ir::BinOp::kMul, 10}; return true;
      case Tok::kSlash: out = {ir::BinOp::kDiv, 10}; return true;
      case Tok::kPercent: out = {ir::BinOp::kMod, 10}; return true;
      default: return false;
    }
  }

  ExprPtr parse_binary(int min_prec) {
    ExprPtr lhs = parse_unary();
    for (;;) {
      OpInfo info;
      if (!binop_info(cur().kind, info) || info.prec < min_prec) return lhs;
      eat();
      ExprPtr rhs = parse_binary(info.prec + 1);
      lhs = make_bin(info.op, std::move(lhs), std::move(rhs));
    }
  }

  ExprPtr parse_unary() {
    const int l = cur().line, c = cur().col;
    if (at(Tok::kMinus) || at(Tok::kBang) || at(Tok::kTilde)) {
      const Tok kind = eat().kind;
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->un = kind == Tok::kMinus  ? ir::UnOp::kNeg
              : kind == Tok::kBang ? ir::UnOp::kLNot
                                   : ir::UnOp::kBitNot;
      e->a = parse_unary();
      e->line = l;
      e->col = c;
      return e;
    }
    if (at(Tok::kPlus)) { // unary plus is a no-op
      eat();
      return parse_unary();
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_primary();
    for (;;) {
      if (at(Tok::kDot)) {
        eat();
        const Token field = expect(Tok::kIdent);
        if (e->kind != Expr::Kind::kIdent) fail("'.' on a non-packet value");
        auto f = std::make_unique<Expr>();
        f->kind = Expr::Kind::kField;
        f->name = field.text;
        f->line = e->line;
        f->col = e->col;
        // remember the struct value name so sema can verify it is the
        // packet parameter
        f->args.push_back(std::move(e));
        e = std::move(f);
      } else if (at(Tok::kLBracket)) {
        eat();
        if (e->kind != Expr::Kind::kIdent) fail("'[' on a non-register value");
        auto r = std::make_unique<Expr>();
        r->kind = Expr::Kind::kReg;
        r->name = e->name;
        r->index = parse_expr();
        r->line = e->line;
        r->col = e->col;
        expect(Tok::kRBracket);
        e = std::move(r);
      } else {
        return e;
      }
    }
  }

  ExprPtr parse_primary() {
    const int l = cur().line, c = cur().col;
    if (at(Tok::kIntLit)) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kIntLit;
      e->int_value = eat().int_value;
      e->line = l;
      e->col = c;
      return e;
    }
    if (at(Tok::kLParen)) {
      eat();
      ExprPtr e = parse_expr();
      expect(Tok::kRParen);
      return e;
    }
    if (at(Tok::kIdent)) {
      const Token name = eat();
      if (at(Tok::kLParen)) {
        eat();
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kCall;
        e->name = name.text;
        e->line = l;
        e->col = c;
        if (!at(Tok::kRParen)) {
          e->args.push_back(parse_expr());
          while (at(Tok::kComma)) {
            eat();
            e->args.push_back(parse_expr());
          }
        }
        expect(Tok::kRParen);
        return e;
      }
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kIdent;
      e->name = name.text;
      e->line = l;
      e->col = c;
      return e;
    }
    fail("expected an expression, got " + tok_name(cur().kind));
  }

  // ---- constant expressions (register sizes & initializers) -------------
  Value parse_const_expr() {
    ExprPtr e = parse_expr();
    return fold_const(*e);
  }

  Value fold_const(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kIntLit:
        return e.int_value;
      case Expr::Kind::kIdent: {
        auto it = consts_.find(e.name);
        if (it == consts_.end()) {
          throw SemanticError("'" + e.name +
                              "' is not a compile-time constant");
        }
        return it->second;
      }
      case Expr::Kind::kUnary:
        return ir::apply_un(e.un, fold_const(*e.a));
      case Expr::Kind::kBinary:
        return ir::apply_bin(e.bin, fold_const(*e.a), fold_const(*e.b));
      case Expr::Kind::kTernary:
        return fold_const(*e.a) != 0 ? fold_const(*e.b) : fold_const(*e.c);
      default:
        throw SemanticError("expression is not a compile-time constant");
    }
  }

  // ---- tiny AST factories ------------------------------------------------
  static ExprPtr make_int(Value v) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kIntLit;
    e->int_value = v;
    return e;
  }
  static ExprPtr make_bin(ir::BinOp op, ExprPtr a, ExprPtr b) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kBinary;
    e->bin = op;
    e->line = a->line;
    e->col = a->col;
    e->a = std::move(a);
    e->b = std::move(b);
    return e;
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  std::unordered_map<std::string, Value> consts_;
  std::unordered_set<std::string> regs_;
  std::unordered_map<std::string, TableDecl> tables_;
};

} // namespace

ExprPtr clone(const Expr& e) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->int_value = e.int_value;
  out->name = e.name;
  out->un = e.un;
  out->bin = e.bin;
  out->line = e.line;
  out->col = e.col;
  if (e.index) out->index = clone(*e.index);
  if (e.a) out->a = clone(*e.a);
  if (e.b) out->b = clone(*e.b);
  if (e.c) out->c = clone(*e.c);
  for (const auto& arg : e.args) out->args.push_back(clone(*arg));
  return out;
}

StmtPtr clone(const Stmt& s) {
  auto out = std::make_unique<Stmt>();
  out->kind = s.kind;
  out->line = s.line;
  out->col = s.col;
  if (s.lhs) out->lhs = clone(*s.lhs);
  if (s.rhs) out->rhs = clone(*s.rhs);
  if (s.cond) out->cond = clone(*s.cond);
  for (const auto& child : s.then_body) out->then_body.push_back(clone(*child));
  for (const auto& child : s.else_body) out->else_body.push_back(clone(*child));
  return out;
}

Ast clone(const Ast& ast) {
  Ast out;
  out.func_name = ast.func_name;
  out.packet_param = ast.packet_param;
  out.fields = ast.fields;
  out.registers = ast.registers;
  out.constants = ast.constants;
  for (const auto& stmt : ast.body) out.body.push_back(clone(*stmt));
  return out;
}

Ast parse(const std::string& source) {
  return Parser(lex(source)).run();
}

} // namespace mp5::domino
