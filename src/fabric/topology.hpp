// Leaf–spine Clos topology for the fabric simulator (see DESIGN.md
// "Fabric simulation").
//
// N leaves × M spines, fully bipartite: every leaf has one uplink to each
// spine and every spine one downlink to each leaf (links are directional;
// 2·N·M total). Hosts attach to leaves only — `hosts_per_leaf` ports per
// leaf — so every host pair is at most leaf→spine→leaf apart. Links carry
// a propagation latency (cycles, ≥ 1 so a hop is never same-cycle) and a
// serialization capacity (bytes per cycle); WCMP weights are per spine.
//
// Switch ids are dense: leaves 0..N-1, spines N..N+M-1. Link ids are
// dense too (uplinks first), so per-link state lives in flat vectors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace mp5::fabric {

using SwitchId = std::uint32_t;
using LinkId = std::uint32_t;
using HostId = std::uint32_t;

struct FabricTopology {
  std::uint32_t leaves = 4;
  std::uint32_t spines = 2;
  std::uint32_t hosts_per_leaf = 16;

  /// Propagation delay of every link, in cycles. Must be >= 1: a packet
  /// egressing switch A at cycle c can enter switch B no earlier than
  /// c + 2 (one cycle of serialization start + one of propagation), which
  /// is what lets the fabric step all switches in one pass per cycle.
  Cycle link_latency = 8;

  /// Serialization capacity of every link in bytes per cycle. One MP5
  /// pipeline drains 64 B per cycle, so 64.0 models an uplink matched to
  /// a single lane's line rate.
  double link_bytes_per_cycle = 64.0;

  /// WCMP weight per spine (leaves hash flows over spines proportionally).
  /// Empty = equal weights. Size must equal `spines` otherwise.
  std::vector<double> spine_weights;

  /// Throws ConfigError on an unusable topology (zero dimensions,
  /// latency < 1, non-positive capacity, bad weight vector).
  void validate() const;

  // -- switches --
  std::uint32_t num_switches() const { return leaves + spines; }
  bool is_leaf(SwitchId id) const { return id < leaves; }
  bool is_spine(SwitchId id) const { return id >= leaves && id < num_switches(); }
  SwitchId spine_id(std::uint32_t spine_index) const {
    return leaves + spine_index;
  }
  std::uint32_t spine_index(SwitchId id) const { return id - leaves; }
  std::string switch_name(SwitchId id) const;
  /// Inverse of switch_name ("leaf3" -> 3, "spine0" -> leaves+0); throws
  /// ConfigError on unknown names (CLI fault-plan parsing).
  SwitchId switch_by_name(const std::string& name) const;

  // -- hosts --
  std::uint32_t num_hosts() const { return leaves * hosts_per_leaf; }
  SwitchId leaf_of_host(HostId host) const { return host / hosts_per_leaf; }
  /// Ingress port of `host` on its leaf (host ports precede link ports).
  std::uint32_t host_port(HostId host) const { return host % hosts_per_leaf; }

  // -- links (directional; uplinks first, then downlinks) --
  std::uint32_t num_links() const { return 2 * leaves * spines; }
  LinkId uplink(SwitchId leaf, std::uint32_t spine_index) const {
    return leaf * spines + spine_index;
  }
  LinkId downlink(std::uint32_t spine_index, SwitchId leaf) const {
    return leaves * spines + spine_index * leaves + leaf;
  }
  bool is_uplink(LinkId link) const { return link < leaves * spines; }
  SwitchId link_from(LinkId link) const;
  SwitchId link_to(LinkId link) const;
  std::string link_name(LinkId link) const;
  /// Ingress port on link_to(link) where this link's deliveries arrive:
  /// on a spine, port = source leaf; on a leaf, port = hosts_per_leaf +
  /// source spine index (after the host ports).
  std::uint32_t ingress_port(LinkId link) const;
};

} // namespace mp5::fabric
