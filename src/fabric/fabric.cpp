#include "fabric/fabric.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "apps/programs.hpp"
#include "banzai/machine.hpp"
#include "common/error.hpp"
#include "common/hashing.hpp"
#include "domino/compiler.hpp"
#include "domino/parser.hpp"
#include "trace/trace_source.hpp"

namespace mp5::fabric {

LbMode parse_lb_mode(const std::string& name) {
  if (name == "ecmp") return LbMode::kEcmp;
  if (name == "wcmp") return LbMode::kWcmp;
  if (name == "flowlet") return LbMode::kFlowlet;
  if (name == "conga") return LbMode::kConga;
  throw ConfigError("fabric: unknown load-balancing mode '" + name +
                    "' (want ecmp | wcmp | flowlet | conga)");
}

std::string lb_mode_name(LbMode mode) {
  switch (mode) {
    case LbMode::kEcmp: return "ecmp";
    case LbMode::kWcmp: return "wcmp";
    case LbMode::kFlowlet: return "flowlet";
    case LbMode::kConga: return "conga";
  }
  return "?";
}

void FabricFaultPlan::validate(const FabricTopology& topo) const {
  for (const FabricFaultEvent& ev : events) {
    if (ev.kind == FabricFaultEvent::Kind::kKillSwitch) {
      if (ev.target >= topo.num_switches()) {
        throw ConfigError("fabric fault: no such switch id " +
                          std::to_string(ev.target));
      }
    } else {
      if (ev.link >= topo.num_links()) {
        throw ConfigError("fabric fault: no such link id " +
                          std::to_string(ev.link));
      }
    }
  }
}

namespace {

bool differ(std::string* why, const std::string& field) {
  if (why != nullptr) *why = "field '" + field + "' differs";
  return false;
}

/// Derived per-flow transport ports: stable across hops and runs, shared
/// by the ECMP tuple and the flowlet program's flow identity.
std::uint64_t flow_ports(std::uint64_t flow) { return mix64(flow + 0x5eed); }

} // namespace

bool same_fabric_results(const FabricResult& a, const FabricResult& b,
                         std::string* why) {
#define MP5_SAME(field) \
  if (a.field != b.field) return differ(why, #field)
  MP5_SAME(injected);
  MP5_SAME(delivered);
  MP5_SAME(dropped_dead_source);
  MP5_SAME(dropped_dead_destination);
  MP5_SAME(dropped_switch_killed);
  MP5_SAME(dropped_in_switch);
  MP5_SAME(in_flight_end);
  MP5_SAME(truncated);
  MP5_SAME(cycles_run);
  MP5_SAME(flows_total);
  MP5_SAME(flows_started);
  MP5_SAME(flows_completed);
  MP5_SAME(flows_fully_delivered);
  MP5_SAME(peak_concurrent_flows);
  MP5_SAME(reordered_packets);
  MP5_SAME(fct_count);
  MP5_SAME(fct_p50);
  MP5_SAME(fct_p90);
  MP5_SAME(fct_p99);
  MP5_SAME(fct_mean);
  MP5_SAME(fct_max);
  MP5_SAME(latency_p50);
  MP5_SAME(latency_p90);
  MP5_SAME(latency_p99);
  MP5_SAME(throughput_pkts_per_cycle);
  MP5_SAME(offered_pkts_per_cycle);
  MP5_SAME(delivered_fraction);
  MP5_SAME(uplink_util_max);
  MP5_SAME(uplink_util_mean);
  MP5_SAME(uplink_util_skew);
#undef MP5_SAME
  if (a.links.size() != b.links.size()) return differ(why, "links.size");
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    const FabricLinkResult& la = a.links[i];
    const FabricLinkResult& lb = b.links[i];
#define MP5_SAME_LINK(field)   \
  if (la.field != lb.field)    \
  return differ(why, "links[" + std::to_string(i) + "]." #field)
    MP5_SAME_LINK(name);
    MP5_SAME_LINK(killed);
    MP5_SAME_LINK(packets);
    MP5_SAME_LINK(bytes);
    MP5_SAME_LINK(busy_cycles);
    MP5_SAME_LINK(utilization);
    MP5_SAME_LINK(peak_queue_cycles);
#undef MP5_SAME_LINK
  }
  if (a.switches.size() != b.switches.size()) {
    return differ(why, "switches.size");
  }
  for (std::size_t i = 0; i < a.switches.size(); ++i) {
    const FabricSwitchResult& sa = a.switches[i];
    const FabricSwitchResult& sb = b.switches[i];
    if (sa.name != sb.name || sa.killed != sb.killed ||
        sa.killed_at != sb.killed_at) {
      return differ(why, "switches[" + std::to_string(i) + "]");
    }
    std::string sub;
    if (!same_results(sa.sim, sb.sim, &sub)) {
      if (why != nullptr) *why = "switches[" + std::to_string(i) + "]: " + sub;
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// SwitchSource: the per-switch ingress queue, fed by the fabric each cycle
// and fully drained by the switch's step() in the same cycle. advance()
// records seq -> fabric-packet-id in the switch tracker (the simulator
// assigns seq numbers in consumption order, so seq == consumed() count at
// admission).
// ---------------------------------------------------------------------------

class FabricSimulator::SwitchSource final : public TraceSource {
public:
  SwitchSource(FabricSimulator* fab, SwitchId sw) : fab_(fab), sw_(sw) {}

  void push(TraceItem&& item, std::uint32_t pkt) {
    pending_.push_back(Pending{std::move(item), push_order_++, pkt});
  }

  /// Sort this cycle's pushes into admission order — (time, port, push
  /// order) — before the switch steps.
  void seal() {
    if (head_ == pending_.size()) return;
    std::sort(pending_.begin() + static_cast<std::ptrdiff_t>(head_),
              pending_.end(), [](const Pending& a, const Pending& b) {
                if (a.item.arrival_time != b.item.arrival_time) {
                  return a.item.arrival_time < b.item.arrival_time;
                }
                if (a.item.port != b.item.port) {
                  return a.item.port < b.item.port;
                }
                return a.order < b.order;
              });
  }

  const TraceItem* peek() override {
    return head_ < pending_.size() ? &pending_[head_].item : nullptr;
  }

  void advance() override {
    fab_->switches_[sw_].inflight.emplace(consumed_, pending_[head_].pkt);
    ++head_;
    ++consumed_;
    if (head_ == pending_.size()) {
      pending_.clear();
      head_ = 0;
    }
  }

  std::uint64_t consumed() const override { return consumed_; }

  void skip_to(std::uint64_t) override {
    throw Error("fabric SwitchSource does not support skip_to");
  }

  std::optional<std::uint64_t> size() const override { return std::nullopt; }

  /// Remove and return every not-yet-admitted fabric packet id (used when
  /// the switch is killed before consuming this cycle's pushes).
  std::vector<std::uint32_t> drain_pending() {
    std::vector<std::uint32_t> out;
    for (std::size_t i = head_; i < pending_.size(); ++i) {
      out.push_back(pending_[i].pkt);
    }
    pending_.clear();
    head_ = 0;
    return out;
  }

private:
  struct Pending {
    TraceItem item;
    std::uint64_t order = 0;
    std::uint32_t pkt = 0;
  };

  FabricSimulator* fab_;
  SwitchId sw_;
  std::vector<Pending> pending_;
  std::size_t head_ = 0;
  std::uint64_t consumed_ = 0;
  std::uint64_t push_order_ = 0;
};

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

FabricSimulator::FabricSimulator(const FabricOptions& options)
    : opts_(options), topo_(options.topology) {
  topo_.validate();
  opts_.workload.validate();
  opts_.faults.validate(topo_);
  if (opts_.util_window == 0) {
    throw ConfigError("fabric: util_window must be > 0");
  }
  if (opts_.max_cycles == 0) {
    throw ConfigError("fabric: max_cycles must be > 0");
  }

  // Compile the shared per-switch program once. CONGA runs the paper's
  // best-path app; every other mode runs the flowlet app (its next_hop
  // output is the flowlet path choice; ecmp/wcmp ignore the output but
  // still exercise the switch with a real stateful program).
  const apps::AppSpec app =
      opts_.lb == LbMode::kConga ? apps::conga_app() : apps::flowlet_app();
  const auto ast = domino::parse(app.source);
  num_fields_ = ast.fields.size();
  const auto compiled =
      domino::compile(ast, banzai::MachineSpec{}, /*reserve_stages=*/1);
  program_ = std::make_unique<Mp5Program>(transform(compiled.pvsm));
  if (opts_.lb == LbMode::kConga) {
    slot_a_ = program_->pvsm.slot_of("dst");
    slot_b_ = program_->pvsm.slot_of("util");
    slot_c_ = program_->pvsm.slot_of("path_id");
    slot_out_ = program_->pvsm.slot_of("best");
  } else {
    slot_a_ = program_->pvsm.slot_of("sport");
    slot_b_ = program_->pvsm.slot_of("dport");
    slot_c_ = program_->pvsm.slot_of("arrival");
    slot_out_ = program_->pvsm.slot_of("next_hop");
  }

  base_weights_ = opts_.lb == LbMode::kWcmp && !topo_.spine_weights.empty()
                      ? topo_.spine_weights
                      : std::vector<double>(topo_.spines, 1.0);
  if (opts_.lb == LbMode::kEcmp || opts_.lb == LbMode::kWcmp) {
    hashers_.reserve(topo_.leaves);
    for (SwitchId l = 0; l < topo_.leaves; ++l) {
      hashers_.emplace_back(opts_.hash_alg, opts_.salt, base_weights_);
    }
  }
  leaf_has_path_.assign(topo_.leaves, true);
  probe_rr_.assign(topo_.leaves, 0);
  links_.resize(topo_.num_links());

  switches_.resize(topo_.num_switches());
  for (SwitchId s = 0; s < topo_.num_switches(); ++s) {
    SwitchCtx& ctx = switches_[s];
    ctx.source = std::make_unique<SwitchSource>(this, s);
    SimOptions so;
    so.pipelines = opts_.pipelines;
    so.fifo_capacity = opts_.fifo_capacity;
    so.remap_period = opts_.remap_period;
    so.check_c1 = opts_.check_c1;
    so.paranoid_checks = opts_.paranoid_checks;
    so.engine = opts_.engine;
    so.seed = mix64(opts_.seed ^ (0xfab00000ULL + s));
    so.max_cycles = opts_.max_cycles + 2;
    so.track_flow_reordering = false;
    so.telemetry = opts_.telemetry;
    so.telemetry_prefix = "fabric." + topo_.switch_name(s) + ".";
    so.egress_sink = [this, s](EgressRecord&& rec) {
      on_egress(s, std::move(rec));
    };
    so.fault_drop_sink = [this, s](SeqNo seq, bool) { on_switch_drop(s, seq); };
    ctx.sim = std::make_unique<Mp5Simulator>(*program_, so);
  }

  faults_ = opts_.faults.events;
  std::stable_sort(faults_.begin(), faults_.end(),
                   [](const FabricFaultEvent& a, const FabricFaultEvent& b) {
                     return a.cycle < b.cycle;
                   });
}

FabricSimulator::~FabricSimulator() = default;

// ---------------------------------------------------------------------------
// Packet lifecycle
// ---------------------------------------------------------------------------

std::uint32_t FabricSimulator::alloc_pkt(const FabricPacketEvent& ev,
                                         Cycle now) {
  std::uint32_t id;
  if (!free_pkts_.empty()) {
    id = free_pkts_.back();
    free_pkts_.pop_back();
  } else {
    id = static_cast<std::uint32_t>(pkts_.size());
    pkts_.emplace_back();
  }
  FabricPkt& fp = pkts_[id];
  fp = FabricPkt{};
  fp.flow = ev.flow;
  fp.inject_cycle = now;
  fp.src_host = ev.src_host;
  fp.dst_host = ev.dst_host;
  fp.pkt_index = ev.pkt_index;
  fp.size_bytes = ev.size_bytes;
  ++live_pkts_;
  return id;
}

void FabricSimulator::release_pkt(std::uint32_t pkt) {
  free_pkts_.push_back(pkt);
  --live_pkts_;
}

void FabricSimulator::account_terminal(std::uint64_t flow,
                                       std::uint32_t pkt_index,
                                       bool was_delivered, Cycle now) {
  FlowRec& fr = flows_[flow];
  ++fr.accounted;
  if (was_delivered) {
    ++fr.delivered;
    fr.last_deliver = now;
    if (fr.max_idx_plus1 != 0 && pkt_index + 1 < fr.max_idx_plus1) {
      ++reordered_packets_;
    } else {
      fr.max_idx_plus1 = pkt_index + 1;
    }
  }
  if (fr.accounted == fr.total) {
    --active_flows_;
    ++flows_completed_;
    if (fr.delivered == fr.total) {
      ++flows_fully_delivered_;
      fct_samples_.push_back(
          static_cast<double>(fr.last_deliver - fr.first_inject + 1));
    }
  }
}

void FabricSimulator::drop(std::uint32_t pkt, std::uint64_t& counter,
                           Cycle now) {
  ++counter;
  account_terminal(pkts_[pkt].flow, pkts_[pkt].pkt_index, false, now);
  release_pkt(pkt);
}

void FabricSimulator::inject(const FabricPacketEvent& ev, Cycle now) {
  ++injected_;
  FlowRec& fr = flows_[ev.flow];
  if (fr.total == 0) {
    fr.total = ev.pkt_count;
    fr.first_inject = now;
    ++flows_started_;
    ++active_flows_;
    peak_concurrent_ = std::max(peak_concurrent_, active_flows_);
  }
  const SwitchId leaf = topo_.leaf_of_host(ev.src_host);
  if (!switches_[leaf].alive) {
    ++dropped_dead_source_;
    account_terminal(ev.flow, ev.pkt_index, false, now);
    return;
  }
  const std::uint32_t pkt = alloc_pkt(ev, now);
  push_into_switch(leaf, pkt, ev.time, topo_.host_port(ev.src_host), now);
}

void FabricSimulator::push_into_switch(SwitchId sw, std::uint32_t pkt,
                                       double time, std::uint32_t port,
                                       Cycle now) {
  TraceItem item;
  item.arrival_time = time;
  item.port = port;
  item.size_bytes = pkts_[pkt].size_bytes;
  item.flow = pkts_[pkt].flow;
  item.fields = make_fields(sw, pkts_[pkt], now);
  switches_[sw].source->push(std::move(item), pkt);
}

std::vector<Value> FabricSimulator::make_fields(SwitchId sw,
                                                const FabricPkt& fp,
                                                Cycle now) {
  std::vector<Value> f(num_fields_, 0);
  if (opts_.lb == LbMode::kConga) {
    const SwitchId dst_leaf = topo_.leaf_of_host(fp.dst_host);
    const SwitchId src_leaf = topo_.leaf_of_host(fp.src_host);
    std::uint32_t key, path, util;
    if (topo_.is_spine(sw)) {
      // Transit at a spine: the spine's table learns its own downlink
      // congestion (unused for routing but keeps every switch stateful).
      path = topo_.spine_index(sw);
      key = dst_leaf;
      util = links_[topo_.downlink(path, dst_leaf)].util;
    } else if (fp.hops == 0) {
      // Fresh at the source leaf: probe paths round-robin, feeding the
      // best-path table the probed path's current congestion metric
      // (max of uplink and downlink utilization — CONGA's path metric,
      // here read from the fabric's own link EWMAs).
      key = dst_leaf;
      path = static_cast<std::uint32_t>(probe_rr_[sw]++ % topo_.spines);
      util = path_util(sw, path, dst_leaf);
    } else {
      // Arriving at the destination leaf: piggybacked feedback about the
      // path back to the sender through the spine the packet crossed —
      // CONGA's leaf-to-leaf feedback loop.
      key = src_leaf;
      path = fp.last_spine;
      util = path_util(sw, path, src_leaf);
    }
    f[static_cast<std::size_t>(slot_a_)] = static_cast<Value>(key);
    f[static_cast<std::size_t>(slot_b_)] = static_cast<Value>(util);
    f[static_cast<std::size_t>(slot_c_)] = static_cast<Value>(path);
  } else {
    const std::uint64_t h = flow_ports(fp.flow);
    f[static_cast<std::size_t>(slot_a_)] = static_cast<Value>(h & 0xffff);
    f[static_cast<std::size_t>(slot_b_)] =
        static_cast<Value>((h >> 16) & 0xffff);
    f[static_cast<std::size_t>(slot_c_)] = static_cast<Value>(now);
  }
  return f;
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

bool FabricSimulator::spine_usable(SwitchId leaf,
                                   std::uint32_t spine_index) const {
  return switches_[topo_.spine_id(spine_index)].alive &&
         links_[topo_.uplink(leaf, spine_index)].alive;
}

std::uint32_t FabricSimulator::path_util(SwitchId leaf,
                                         std::uint32_t spine_index,
                                         SwitchId other_leaf) const {
  return std::max(links_[topo_.uplink(leaf, spine_index)].util,
                  links_[topo_.downlink(spine_index, other_leaf)].util);
}

std::optional<std::uint32_t> FabricSimulator::choose_spine(
    SwitchId leaf, const FabricPkt& fp, const std::vector<Value>& headers) {
  const std::uint32_t spines = topo_.spines;
  std::uint32_t start = 0;
  switch (opts_.lb) {
    case LbMode::kEcmp:
    case LbMode::kWcmp: {
      if (!leaf_has_path_[leaf]) return std::nullopt;
      const std::uint64_t h = flow_ports(fp.flow);
      FiveTuple t;
      t.src = fp.src_host;
      t.dst = fp.dst_host;
      t.sport = static_cast<std::uint16_t>(h & 0xffff);
      t.dport = static_cast<std::uint16_t>((h >> 16) & 0xffff);
      t.proto = 6;
      start = hashers_[leaf].pick(t);
      break;
    }
    case LbMode::kFlowlet:
    case LbMode::kConga:
      // The switch program chose the path; the fabric just obeys its
      // output header (falling forward to the next live spine on faults).
      start = static_cast<std::uint32_t>(floor_mod(
          headers[static_cast<std::size_t>(slot_out_)],
          static_cast<Value>(spines)));
      break;
  }
  for (std::uint32_t d = 0; d < spines; ++d) {
    const std::uint32_t i = (start + d) % spines;
    if (spine_usable(leaf, i)) return i;
  }
  return std::nullopt;
}

void FabricSimulator::on_egress(SwitchId sw, EgressRecord&& rec) {
  SwitchCtx& ctx = switches_[sw];
  const auto it = ctx.inflight.find(rec.seq);
  if (it == ctx.inflight.end()) {
    throw InvariantError("fabric-egress-tracked", rec.egress_cycle,
                         topo_.switch_name(sw) + " egressed unknown seq " +
                             std::to_string(rec.seq));
  }
  const std::uint32_t pkt = it->second;
  ctx.inflight.erase(it);
  route(sw, pkt, rec.headers, rec.egress_cycle);
}

void FabricSimulator::on_switch_drop(SwitchId sw, SeqNo seq) {
  SwitchCtx& ctx = switches_[sw];
  const auto it = ctx.inflight.find(seq);
  if (it == ctx.inflight.end()) return;
  const std::uint32_t pkt = it->second;
  ctx.inflight.erase(it);
  drop(pkt, dropped_in_switch_, 0);
}

void FabricSimulator::route(SwitchId sw, std::uint32_t pkt,
                            const std::vector<Value>& headers, Cycle now) {
  FabricPkt& fp = pkts_[pkt];
  const SwitchId dst_leaf = topo_.leaf_of_host(fp.dst_host);
  if (topo_.is_spine(sw)) {
    const std::uint32_t si = topo_.spine_index(sw);
    const LinkId link = topo_.downlink(si, dst_leaf);
    if (!switches_[dst_leaf].alive || !links_[link].alive) {
      drop(pkt, dropped_dead_destination_, now);
      return;
    }
    transmit(link, pkt, now);
    return;
  }
  if (dst_leaf == sw) {
    deliver_to_host(pkt, now);
    return;
  }
  const auto spine = choose_spine(sw, fp, headers);
  if (!spine) {
    drop(pkt, dropped_dead_destination_, now);
    return;
  }
  transmit(topo_.uplink(sw, *spine), pkt, now);
}

void FabricSimulator::transmit(LinkId link, std::uint32_t pkt, Cycle now) {
  LinkCtx& L = links_[link];
  FabricPkt& fp = pkts_[pkt];
  // Serialization starts next cycle at the earliest, after whatever is
  // already on the wire; propagation (>= 1 cycle) comes on top, so the
  // packet can never enter the next switch before now + 2 — the property
  // the single-pass-per-cycle fabric walk rests on.
  const double earliest = static_cast<double>(now + 1);
  const double start = std::max(earliest, L.busy_until);
  const double tx =
      static_cast<double>(fp.size_bytes) / topo_.link_bytes_per_cycle;
  L.busy_until = start + tx;
  L.busy_accum += tx;
  ++L.packets;
  L.bytes += fp.size_bytes;
  L.window_bytes += fp.size_bytes;
  L.peak_queue = std::max(L.peak_queue, start - earliest);
  if (topo_.is_uplink(link)) {
    fp.last_spine = static_cast<std::uint16_t>(link % topo_.spines);
  }
  ++fp.hops;
  heap_.push(Delivery{start + tx + static_cast<double>(topo_.link_latency),
                      transmit_order_++, link, pkt});
}

void FabricSimulator::deliver(const Delivery& d, Cycle now) {
  const SwitchId dst = topo_.link_to(d.link);
  if (!switches_[dst].alive) {
    drop(d.pkt, dropped_dead_destination_, now);
    return;
  }
  push_into_switch(dst, d.pkt, d.time, topo_.ingress_port(d.link), now);
}

void FabricSimulator::deliver_to_host(std::uint32_t pkt, Cycle now) {
  const FabricPkt& fp = pkts_[pkt];
  ++delivered_;
  latency_samples_.push_back(
      static_cast<std::uint32_t>(std::min<Cycle>(now - fp.inject_cycle,
                                                 0xffffffffu)));
  account_terminal(fp.flow, fp.pkt_index, true, now);
  release_pkt(pkt);
}

// ---------------------------------------------------------------------------
// Faults and link utilization
// ---------------------------------------------------------------------------

void FabricSimulator::apply_fault(const FabricFaultEvent& ev, Cycle now) {
  if (ev.kind == FabricFaultEvent::Kind::kKillSwitch) {
    kill_switch(ev.target, now);
  } else {
    kill_link(ev.link);
  }
}

void FabricSimulator::kill_link(LinkId link) {
  LinkCtx& L = links_[link];
  if (L.killed) return;
  L.alive = false;
  L.killed = true;
  L.util = 1000; // looks saturated forever: CONGA steers away on its own
  L.window_bytes = 0;
  if (topo_.is_uplink(link)) rebuild_leaf_weights(topo_.link_from(link));
}

void FabricSimulator::kill_switch(SwitchId sw, Cycle now) {
  SwitchCtx& ctx = switches_[sw];
  if (!ctx.alive) return;
  ctx.alive = false;
  ctx.killed_at = now;
  ctx.result = ctx.sim->finish(now);
  ctx.finished = true;
  for (const auto& [seq, pkt] : ctx.inflight) {
    drop(pkt, dropped_switch_killed_, now);
  }
  ctx.inflight.clear();
  for (const std::uint32_t pkt : ctx.source->drain_pending()) {
    drop(pkt, dropped_switch_killed_, now);
  }
  if (topo_.is_spine(sw)) {
    const std::uint32_t si = topo_.spine_index(sw);
    for (SwitchId l = 0; l < topo_.leaves; ++l) {
      kill_link(topo_.uplink(l, si));
      kill_link(topo_.downlink(si, l));
    }
  } else {
    for (std::uint32_t si = 0; si < topo_.spines; ++si) {
      kill_link(topo_.uplink(sw, si));
      kill_link(topo_.downlink(si, sw));
    }
  }
}

void FabricSimulator::rebuild_leaf_weights(SwitchId leaf) {
  if (!switches_[leaf].alive) {
    leaf_has_path_[leaf] = false;
    return;
  }
  std::vector<double> w = base_weights_;
  bool any = false;
  for (std::uint32_t i = 0; i < topo_.spines; ++i) {
    if (!spine_usable(leaf, i)) {
      w[i] = 0.0;
    } else if (w[i] > 0.0) {
      any = true;
    }
  }
  leaf_has_path_[leaf] = any;
  if (any && !hashers_.empty()) hashers_[leaf].set_weights(std::move(w));
}

void FabricSimulator::roll_util_until(Cycle cycle) {
  while (next_util_roll_ <= cycle) {
    const double cap =
        static_cast<double>(opts_.util_window) * topo_.link_bytes_per_cycle;
    for (LinkCtx& L : links_) {
      if (!L.alive) continue;
      const auto inst = static_cast<std::uint32_t>(std::min(
          1000.0, 1000.0 * static_cast<double>(L.window_bytes) / cap));
      L.util = (3 * L.util + inst) / 4; // EWMA: responsive yet smooth
      L.window_bytes = 0;
    }
    next_util_roll_ += opts_.util_window;
  }
}

// ---------------------------------------------------------------------------
// The fabric clock
// ---------------------------------------------------------------------------

FabricResult FabricSimulator::run() {
  if (started_) throw Error("FabricSimulator::run may only be called once");
  started_ = true;

  FabricWorkload wl(opts_.workload, topo_.num_hosts());
  flows_.assign(opts_.workload.flows, FlowRec{});
  for (SwitchCtx& ctx : switches_) ctx.sim->begin(*ctx.source);
  next_util_roll_ = opts_.util_window;

  Cycle now = 0;
  bool truncated = false;
  Cycle end = 0;
  while (true) {
    if (now >= opts_.max_cycles) {
      truncated = true;
      end = now;
      break;
    }
    roll_util_until(now);

    // (1) fabric fault events due this cycle.
    while (fault_cursor_ < faults_.size() &&
           faults_[fault_cursor_].cycle <= now) {
      apply_fault(faults_[fault_cursor_], now);
      ++fault_cursor_;
    }

    // (2) workload injections due this cycle.
    while (const FabricPacketEvent* ev = wl.peek()) {
      if (ev->time >= static_cast<double>(now + 1)) break;
      inject(*ev, now);
      wl.advance();
    }

    // (3) link deliveries due this cycle (transmitted no later than
    // now - 2, so nothing below can add a delivery for this cycle).
    while (!heap_.empty() &&
           heap_.top().time < static_cast<double>(now + 1)) {
      const Delivery d = heap_.top();
      heap_.pop();
      deliver(d, now);
    }

    // (4) step every live switch once. Egress sinks fire from inside
    // step() and feed the delivery heap for cycle >= now + 2.
    bool any_work = false;
    for (SwitchCtx& ctx : switches_) {
      if (!ctx.alive) continue;
      ctx.source->seal();
      ctx.sim->step(now);
      if (ctx.sim->has_work()) any_work = true;
    }

    // (5) advance the clock; when every switch is drained, jump straight
    // to the next fabric event (never past a pending fault).
    if (!any_work) {
      double next = std::numeric_limits<double>::infinity();
      if (const FabricPacketEvent* ev = wl.peek()) {
        next = std::min(next, ev->time);
      }
      if (!heap_.empty()) next = std::min(next, heap_.top().time);
      const bool faults_left = fault_cursor_ < faults_.size();
      if (!std::isfinite(next) && !faults_left) {
        end = now + 1;
        break;
      }
      Cycle target = std::isfinite(next)
                         ? std::max(now + 1, static_cast<Cycle>(next))
                         : std::max(now + 1, faults_[fault_cursor_].cycle);
      if (faults_left) {
        target = std::min(target,
                          std::max(now + 1, faults_[fault_cursor_].cycle));
      }
      now = target;
    } else {
      ++now;
    }
  }
  return finalize(end, truncated);
}

FabricResult FabricSimulator::finalize(Cycle end, bool truncated) {
  for (SwitchId s = 0; s < static_cast<SwitchId>(switches_.size()); ++s) {
    SwitchCtx& ctx = switches_[s];
    if (!ctx.finished) {
      ctx.result = ctx.sim->finish(end);
      ctx.finished = true;
    }
    if (!truncated) {
      // A completed run has no in-flight packets, so whatever a live
      // switch still maps was silently lost inside it (bounded-FIFO data
      // drops, starvation-guard drops).
      for (const auto& [seq, pkt] : ctx.inflight) {
        drop(pkt, dropped_in_switch_, end);
      }
      ctx.inflight.clear();
      for (const std::uint32_t pkt : ctx.source->drain_pending()) {
        drop(pkt, dropped_in_switch_, end);
      }
    }
  }

  FabricResult r;
  r.cycles_run = end;
  r.truncated = truncated;
  r.injected = injected_;
  r.delivered = delivered_;
  r.dropped_dead_source = dropped_dead_source_;
  r.dropped_dead_destination = dropped_dead_destination_;
  r.dropped_switch_killed = dropped_switch_killed_;
  r.dropped_in_switch = dropped_in_switch_;
  r.in_flight_end = live_pkts_;

  r.flows_total = opts_.workload.flows;
  r.flows_started = flows_started_;
  r.flows_completed = flows_completed_;
  r.flows_fully_delivered = flows_fully_delivered_;
  r.peak_concurrent_flows = peak_concurrent_;
  r.reordered_packets = reordered_packets_;

  r.fct_count = fct_samples_.size();
  if (!fct_samples_.empty()) {
    std::sort(fct_samples_.begin(), fct_samples_.end());
    const auto quant = [&](double q) {
      const double pos = q * static_cast<double>(fct_samples_.size() - 1);
      const auto lo = static_cast<std::size_t>(pos);
      const auto hi = std::min(lo + 1, fct_samples_.size() - 1);
      const double frac = pos - static_cast<double>(lo);
      return fct_samples_[lo] * (1.0 - frac) + fct_samples_[hi] * frac;
    };
    r.fct_p50 = quant(0.50);
    r.fct_p90 = quant(0.90);
    r.fct_p99 = quant(0.99);
    double sum = 0.0;
    for (const double x : fct_samples_) sum += x;
    r.fct_mean = sum / static_cast<double>(fct_samples_.size());
    r.fct_max = fct_samples_.back();
  }
  if (!latency_samples_.empty()) {
    std::sort(latency_samples_.begin(), latency_samples_.end());
    const auto lquant = [&](double q) {
      const double pos =
          q * static_cast<double>(latency_samples_.size() - 1);
      const auto lo = static_cast<std::size_t>(pos);
      const auto hi = std::min(lo + 1, latency_samples_.size() - 1);
      const double frac = pos - static_cast<double>(lo);
      return static_cast<double>(latency_samples_[lo]) * (1.0 - frac) +
             static_cast<double>(latency_samples_[hi]) * frac;
    };
    r.latency_p50 = lquant(0.50);
    r.latency_p90 = lquant(0.90);
    r.latency_p99 = lquant(0.99);
  }

  if (end > 0) {
    r.throughput_pkts_per_cycle =
        static_cast<double>(delivered_) / static_cast<double>(end);
    r.offered_pkts_per_cycle =
        static_cast<double>(injected_) / static_cast<double>(end);
  }
  if (injected_ > 0) {
    r.delivered_fraction =
        static_cast<double>(delivered_) / static_cast<double>(injected_);
  }

  r.links.resize(topo_.num_links());
  double up_sum = 0.0;
  for (LinkId l = 0; l < topo_.num_links(); ++l) {
    FabricLinkResult& lr = r.links[l];
    const LinkCtx& L = links_[l];
    lr.name = topo_.link_name(l);
    lr.from = topo_.link_from(l);
    lr.to = topo_.link_to(l);
    lr.uplink = topo_.is_uplink(l);
    lr.killed = L.killed;
    lr.weight = lr.uplink ? base_weights_[l % topo_.spines] : 1.0;
    lr.packets = L.packets;
    lr.bytes = L.bytes;
    lr.busy_cycles = L.busy_accum;
    lr.utilization =
        end > 0 ? std::min(1.0, L.busy_accum / static_cast<double>(end))
                : 0.0;
    lr.peak_queue_cycles = L.peak_queue;
    if (lr.uplink) {
      up_sum += lr.utilization;
      r.uplink_util_max = std::max(r.uplink_util_max, lr.utilization);
    }
  }
  const std::uint32_t uplinks = topo_.leaves * topo_.spines;
  r.uplink_util_mean = up_sum / static_cast<double>(uplinks);
  r.uplink_util_skew =
      r.uplink_util_mean > 0.0 ? r.uplink_util_max / r.uplink_util_mean : 0.0;

  r.switches.resize(switches_.size());
  for (SwitchId s = 0; s < static_cast<SwitchId>(switches_.size()); ++s) {
    FabricSwitchResult& sr = r.switches[s];
    sr.name = topo_.switch_name(s);
    sr.killed = !switches_[s].alive;
    sr.killed_at = switches_[s].killed_at;
    sr.sim = std::move(switches_[s].result);
  }

  if (!r.conserved()) {
    throw InvariantError(
        "fabric-conservation", end,
        "packet ledger does not balance: injected=" +
            std::to_string(r.injected) + " delivered=" +
            std::to_string(r.delivered) + " dropped=" +
            std::to_string(r.dropped_total()) + " in_flight=" +
            std::to_string(r.in_flight_end));
  }
  return r;
}

} // namespace mp5::fabric
