// ECMP/WCMP path selection at the fabric leaves, after the WcmpHasher of
// USC-NSL/SWARM-SIM (see SNIPPETS.md): a per-flow 5-tuple hash with a
// selectable field set and a configurable salt, mapped onto weighted
// paths. Unlike the ns-3 exemplar (which hashes serialized header bytes),
// ours mixes the tuple through the repo's platform-stable mix64 chain so
// two same-seed fabric runs pick identical paths on any host.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mp5::fabric {

/// Which 5-tuple fields participate in the hash (the exemplar's
/// HASH_IP_ONLY / HASH_IP_TCP / HASH_IP_TCP_UDP ladder).
enum class HashAlg : std::uint8_t {
  kAddressesOnly, // src + dst addresses
  kAddressesPorts, // + sport/dport
  kFiveTuple,      // + protocol
};

HashAlg parse_hash_alg(const std::string& name); // throws ConfigError
std::string hash_alg_name(HashAlg alg);

struct FiveTuple {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint8_t proto = 0;
};

class WcmpHasher {
public:
  /// `weights`: one non-negative weight per path; at least one positive.
  /// Equal weights degrade WCMP to plain ECMP.
  WcmpHasher(HashAlg alg, std::uint64_t salt, std::vector<double> weights);

  /// Replace the weight vector (same size), e.g. zeroing a dead spine so
  /// survivors absorb its share. Throws ConfigError when every weight is
  /// zero — the caller must detect a fully partitioned fabric itself.
  void set_weights(std::vector<double> weights);

  /// Stable 64-bit flow hash over the fields selected by the algorithm.
  std::uint64_t hash(const FiveTuple& t) const;

  /// Weighted path pick: hash is mapped to [0, total_weight) and walked
  /// through the cumulative weights, so a path's share of the flow space
  /// equals its weight share and zero-weight paths are never picked.
  std::uint32_t pick(const FiveTuple& t) const;

  std::size_t num_paths() const { return weights_.size(); }
  std::uint64_t salt() const { return salt_; }
  HashAlg alg() const { return alg_; }
  const std::vector<double>& weights() const { return weights_; }

private:
  HashAlg alg_;
  std::uint64_t salt_;
  std::vector<double> weights_;
  std::vector<double> cumulative_; // prefix sums of weights_
};

} // namespace mp5::fabric
