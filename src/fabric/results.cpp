#include "fabric/results.hpp"

#include "telemetry/json_writer.hpp"
#include "telemetry/results.hpp"
#include "telemetry/telemetry.hpp"

namespace mp5::fabric {

using telemetry::JsonWriter;

void write_fabric_results_json(std::ostream& out,
                               const FabricOptions& options,
                               const FabricResult& result,
                               const telemetry::Telemetry* telem) {
  JsonWriter json(out);
  json.begin_object();
  json.kv("schema", "mp5-fabric-results");
  json.kv("schema_version", kFabricResultsSchemaVersion);

  const FabricTopology& topo = options.topology;
  json.key("config").begin_object();
  json.kv("leaves", topo.leaves);
  json.kv("spines", topo.spines);
  json.kv("hosts_per_leaf", topo.hosts_per_leaf);
  json.kv("link_latency", topo.link_latency);
  json.kv("link_bytes_per_cycle", topo.link_bytes_per_cycle);
  json.kv("lb", lb_mode_name(options.lb));
  json.kv("hash", hash_alg_name(options.hash_alg));
  json.kv("salt", options.salt);
  json.kv("seed", options.seed);
  json.kv("pipelines", options.pipelines);
  json.kv("remap_period", options.remap_period);
  json.kv("util_window", options.util_window);
  json.key("workload").begin_object();
  const FabricWorkloadConfig& wl = options.workload;
  json.kv("flows", wl.flows);
  json.kv("flow_rate", wl.flow_rate);
  json.kv("mean_lifetime", wl.mean_lifetime);
  json.kv("max_flow_packets", wl.max_flow_packets);
  json.kv("zipf_exponent", wl.zipf_exponent);
  json.kv("burst_size", wl.burst_size);
  json.kv("burst_spacing", wl.burst_spacing);
  json.kv("packet_bytes", wl.packet_bytes);
  json.kv("seed", wl.seed);
  json.end_object();
  json.end_object();

  json.key("totals").begin_object();
  json.kv("injected", result.injected);
  json.kv("delivered", result.delivered);
  json.key("dropped").begin_object();
  json.kv("dead_source", result.dropped_dead_source);
  json.kv("dead_destination", result.dropped_dead_destination);
  json.kv("switch_killed", result.dropped_switch_killed);
  json.kv("in_switch", result.dropped_in_switch);
  json.kv("total", result.dropped_total());
  json.end_object();
  json.kv("in_flight_end", result.in_flight_end);
  json.kv("conserved", result.conserved());
  json.kv("truncated", result.truncated);
  json.kv("cycles_run", result.cycles_run);
  json.kv("throughput_pkts_per_cycle", result.throughput_pkts_per_cycle);
  json.kv("offered_pkts_per_cycle", result.offered_pkts_per_cycle);
  json.kv("delivered_fraction", result.delivered_fraction);
  json.end_object();

  json.key("flows").begin_object();
  json.kv("total", result.flows_total);
  json.kv("started", result.flows_started);
  json.kv("completed", result.flows_completed);
  json.kv("fully_delivered", result.flows_fully_delivered);
  json.kv("peak_concurrent", result.peak_concurrent_flows);
  json.kv("reordered_packets", result.reordered_packets);
  json.key("fct").begin_object();
  json.kv("count", result.fct_count);
  json.kv("p50", result.fct_p50);
  json.kv("p90", result.fct_p90);
  json.kv("p99", result.fct_p99);
  json.kv("mean", result.fct_mean);
  json.kv("max", result.fct_max);
  json.end_object();
  json.end_object();

  json.key("latency").begin_object();
  json.kv("p50", result.latency_p50);
  json.kv("p90", result.latency_p90);
  json.kv("p99", result.latency_p99);
  json.end_object();

  json.key("uplinks").begin_object();
  json.kv("util_max", result.uplink_util_max);
  json.kv("util_mean", result.uplink_util_mean);
  json.kv("util_skew", result.uplink_util_skew);
  json.end_object();

  json.key("links").begin_array();
  for (const FabricLinkResult& l : result.links) {
    json.begin_object();
    json.kv("name", l.name);
    json.kv("from", l.from);
    json.kv("to", l.to);
    json.kv("uplink", l.uplink);
    json.kv("killed", l.killed);
    json.kv("weight", l.weight);
    json.kv("packets", l.packets);
    json.kv("bytes", l.bytes);
    json.kv("busy_cycles", l.busy_cycles);
    json.kv("utilization", l.utilization);
    json.kv("peak_queue_cycles", l.peak_queue_cycles);
    json.end_object();
  }
  json.end_array();

  json.key("switches").begin_array();
  for (const FabricSwitchResult& s : result.switches) {
    json.begin_object();
    json.kv("name", s.name);
    json.kv("killed", s.killed);
    json.kv("killed_at", s.killed_at);
    json.kv("offered", s.sim.offered);
    json.kv("egressed", s.sim.egressed);
    json.kv("dropped_data", s.sim.dropped_data);
    json.kv("dropped_phantom", s.sim.dropped_phantom);
    json.kv("steers", s.sim.steers);
    json.kv("wasted_cycles", s.sim.wasted_cycles);
    json.kv("remap_moves", s.sim.remap_moves);
    json.kv("max_queue_depth",
            static_cast<std::uint64_t>(s.sim.max_queue_depth));
    json.kv("c1_violating_packets", s.sim.c1_violating_packets);
    json.kv("c1_fraction", s.sim.c1_fraction());
    json.kv("reordered_flow_packets", s.sim.reordered_flow_packets);
    json.end_object();
  }
  json.end_array();

  json.key("telemetry");
  if (telem != nullptr) {
    telemetry::write_telemetry_section(json, *telem);
  } else {
    json.null();
  }

  json.end_object();
  out << "\n";
}

} // namespace mp5::fabric
