// Fabric simulator: a leaf–spine Clos of MP5 switches with end-to-end
// load balancing (see DESIGN.md "Fabric simulation").
//
// One Mp5Simulator per switch, all externally clocked through the
// begin()/step()/finish() API so the fabric owns a single global cycle
// counter. Per cycle the fabric (a) applies due fault events, (b) injects
// due workload packets at their source leaf's host ports, (c) moves due
// link deliveries into the next switch's ingress source, and (d) steps
// every live switch once. Egressed packets come back through the
// per-switch egress sink, are routed (host delivery, spine downlink, or a
// leaf's LB-chosen uplink) and serialized onto a link: transmission
// starts at max(now+1, link busy_until) and the packet arrives
// latency + size/capacity cycles later — never sooner than now+2, which
// is what lets one pass per cycle over the switches be exact.
//
// Load balancing at the leaves:
//   * ecmp / wcmp — WcmpHasher over the flow 5-tuple (configurable salt
//     and field set); wcmp honors the topology's per-spine weights.
//   * flowlet     — every switch runs the paper's flowlet program (§4.4);
//     the leaf forwards on the program's `next_hop` output, so the path
//     choice is made *by switch state*, complete with the C1-reordering
//     consequences the paper measures.
//   * conga       — every switch runs the CONGA best-path program; the
//     fabric feeds the program's `util` input from its link-utilization
//     EWMAs (leaf-to-leaf path congestion, CONGA's piggybacked metric)
//     and forwards on the program's `best` output.
//
// Every random quantity derives from FabricOptions::seed, so a run is
// bit-reproducible: same options -> same FabricResult, field by field
// (same_fabric_results is the contract; tests enforce it).
//
// Packet conservation is an invariant, not a hope: every injected packet
// is eventually delivered at a host port, dropped with a recorded fate
// (source/destination dead, switch killed mid-flight, lost inside a
// switch), or still in flight when a truncated run ends. run() throws
// InvariantError if the ledger does not balance.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "fabric/topology.hpp"
#include "fabric/wcmp.hpp"
#include "fabric/workload.hpp"
#include "metrics/sim_result.hpp"
#include "mp5/options.hpp"
#include "mp5/simulator.hpp"
#include "mp5/transform.hpp"

namespace mp5::fabric {

enum class LbMode : std::uint8_t { kEcmp, kWcmp, kFlowlet, kConga };

LbMode parse_lb_mode(const std::string& name); // throws ConfigError
std::string lb_mode_name(LbMode mode);

/// Scheduled fabric-level fault: kill a whole switch (its in-flight
/// packets are dropped with fate `switch_killed` and its links go dead)
/// or a single directional link (traffic already on the wire still
/// arrives; nothing new is serialized onto it).
struct FabricFaultEvent {
  enum class Kind : std::uint8_t { kKillSwitch, kKillLink };
  Kind kind = Kind::kKillSwitch;
  Cycle cycle = 0;
  SwitchId target = 0; // kKillSwitch
  LinkId link = 0;     // kKillLink
};

struct FabricFaultPlan {
  std::vector<FabricFaultEvent> events;
  bool empty() const { return events.empty(); }
  void validate(const FabricTopology& topo) const; // throws ConfigError
};

struct FabricOptions {
  FabricTopology topology;
  LbMode lb = LbMode::kConga;
  FabricWorkloadConfig workload;

  // Per-switch MP5 knobs (every switch gets the same configuration; seeds
  // are derived per switch from `seed`).
  std::uint32_t pipelines = 4;
  std::size_t fifo_capacity = 0;
  std::uint32_t remap_period = 100;
  bool check_c1 = true;
  bool paranoid_checks = false;
  /// Cycle-walk engine for every inner switch simulator. Fabrics clock
  /// their switches externally, so the event engine's win here is the
  /// per-cycle walk cost, not whole-run cycle skipping.
  SimEngine engine = SimEngine::kLockstep;

  std::uint64_t seed = 1;
  /// ECMP/WCMP hash salt and field selection at the leaves.
  std::uint64_t salt = 0;
  HashAlg hash_alg = HashAlg::kFiveTuple;

  /// Link-utilization EWMA window in cycles: every window the fabric
  /// folds the bytes serialized per link into a 0..1000 utilization
  /// estimate — the `util` metric CONGA's best-path table consumes.
  std::uint32_t util_window = 256;

  /// Hard cap on fabric cycles; hitting it truncates the run (the result
  /// is marked `truncated` and undelivered packets count as in-flight).
  Cycle max_cycles = 50'000'000;

  FabricFaultPlan faults;

  /// Optional shared telemetry sink. Each switch registers its metrics
  /// under "fabric.<switch-name>." (the Scope mechanism), so one process
  /// can host the whole fabric without name collisions.
  telemetry::Telemetry* telemetry = nullptr;
};

struct FabricLinkResult {
  std::string name;          // "leaf0->spine1"
  SwitchId from = 0, to = 0;
  bool uplink = false;
  bool killed = false;
  double weight = 1.0;       // WCMP weight (uplinks; 1.0 for downlinks)
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  double busy_cycles = 0.0;  // cycles spent serializing
  double utilization = 0.0;  // busy_cycles / cycles_run, clamped to 1
  double peak_queue_cycles = 0.0; // worst serialization backlog seen
};

struct FabricSwitchResult {
  std::string name;
  bool killed = false;
  Cycle killed_at = 0;
  SimResult sim; // the switch's own MP5 result (C1 violations live here)
};

struct FabricResult {
  // --- packet ledger (conservation: injected == delivered + dropped
  // --- + in_flight_end) ---
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_dead_source = 0;      // source leaf was dead
  std::uint64_t dropped_dead_destination = 0; // no live path / dest dead
  std::uint64_t dropped_switch_killed = 0;    // inside a killed switch
  std::uint64_t dropped_in_switch = 0;        // lost by a live switch
  std::uint64_t in_flight_end = 0;            // truncated runs only
  bool truncated = false;
  Cycle cycles_run = 0;

  // --- flows ---
  std::uint64_t flows_total = 0;
  std::uint64_t flows_started = 0;
  std::uint64_t flows_completed = 0;       // all packets accounted
  std::uint64_t flows_fully_delivered = 0; // all packets delivered
  std::uint64_t peak_concurrent_flows = 0;
  /// End-to-end packet reordering: deliveries whose in-flow index is
  /// below an already-delivered index of the same flow.
  std::uint64_t reordered_packets = 0;

  // --- flow completion time (fully delivered flows; cycles) ---
  std::uint64_t fct_count = 0;
  double fct_p50 = 0.0, fct_p90 = 0.0, fct_p99 = 0.0;
  double fct_mean = 0.0, fct_max = 0.0;

  // --- per-packet end-to-end latency (delivered packets; cycles) ---
  double latency_p50 = 0.0, latency_p90 = 0.0, latency_p99 = 0.0;

  // --- rates ---
  double throughput_pkts_per_cycle = 0.0; // delivered / cycles_run
  double offered_pkts_per_cycle = 0.0;    // injected / cycles_run
  double delivered_fraction = 0.0;        // delivered / injected

  // --- link utilization skew (uplinks) ---
  double uplink_util_max = 0.0;
  double uplink_util_mean = 0.0;
  double uplink_util_skew = 0.0; // max / mean (1.0 = perfectly balanced)

  std::vector<FabricLinkResult> links;      // indexed by LinkId
  std::vector<FabricSwitchResult> switches; // indexed by SwitchId

  std::uint64_t dropped_total() const {
    return dropped_dead_source + dropped_dead_destination +
           dropped_switch_killed + dropped_in_switch;
  }
  bool conserved() const {
    return injected == delivered + dropped_total() + in_flight_end;
  }
};

/// Field-by-field equality — the fabric's bit-reproducibility contract.
/// On mismatch returns false and, when `why` is non-null, names the first
/// differing field.
bool same_fabric_results(const FabricResult& a, const FabricResult& b,
                         std::string* why = nullptr);

class FabricSimulator {
public:
  explicit FabricSimulator(const FabricOptions& options);
  ~FabricSimulator();

  FabricSimulator(const FabricSimulator&) = delete;
  FabricSimulator& operator=(const FabricSimulator&) = delete;

  /// Run the whole fabric to completion (or max_cycles). One-shot.
  FabricResult run();

  const FabricTopology& topology() const { return topo_; }
  const Mp5Program& program() const { return *program_; }

private:
  class SwitchSource;

  /// A packet in flight through the fabric (switch-internal hops are
  /// tracked by the per-switch simulators; this is the fabric's view).
  struct FabricPkt {
    std::uint64_t flow = 0;
    Cycle inject_cycle = 0;
    HostId src_host = 0;
    HostId dst_host = 0;
    std::uint32_t pkt_index = 0;
    std::uint32_t size_bytes = 64;
    std::uint16_t last_spine = 0; // spine index of the most recent uplink
    std::uint8_t hops = 0;        // links crossed so far
  };

  struct SwitchCtx {
    std::unique_ptr<Mp5Simulator> sim;
    std::unique_ptr<SwitchSource> source;
    /// Sub-simulator seq -> fabric packet id, for every packet currently
    /// inside the switch. Seq numbers are assigned in admission order, so
    /// the id is simply the source's consumed() count at admission.
    std::unordered_map<SeqNo, std::uint32_t> inflight;
    bool alive = true;
    bool finished = false;
    Cycle killed_at = 0;
    SimResult result;
  };

  struct LinkCtx {
    double busy_until = 0.0;
    double busy_accum = 0.0;
    double peak_queue = 0.0;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint64_t window_bytes = 0;
    std::uint32_t util = 0; // EWMA, 0..1000 (1000 once killed)
    bool alive = true;
    bool killed = false;
  };

  struct Delivery {
    double time = 0.0;
    std::uint64_t order = 0; // global transmit counter: deterministic ties
    LinkId link = 0;
    std::uint32_t pkt = 0;
  };
  struct LaterDelivery {
    bool operator()(const Delivery& a, const Delivery& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.order > b.order;
    }
  };

  struct FlowRec {
    Cycle first_inject = 0;
    Cycle last_deliver = 0;
    std::uint32_t total = 0; // 0 until the first packet is injected
    std::uint32_t accounted = 0;
    std::uint32_t delivered = 0;
    std::uint32_t max_idx_plus1 = 0; // highest delivered index + 1
  };

  // -- lifecycle --
  std::uint32_t alloc_pkt(const FabricPacketEvent& ev, Cycle now);
  void release_pkt(std::uint32_t pkt);
  void inject(const FabricPacketEvent& ev, Cycle now);
  void deliver(const Delivery& d, Cycle now);
  void on_egress(SwitchId sw, EgressRecord&& rec);
  void on_switch_drop(SwitchId sw, SeqNo seq);
  void route(SwitchId sw, std::uint32_t pkt,
             const std::vector<Value>& headers, Cycle now);
  void transmit(LinkId link, std::uint32_t pkt, Cycle now);
  void deliver_to_host(std::uint32_t pkt, Cycle now);
  void drop(std::uint32_t pkt, std::uint64_t& counter, Cycle now);
  void push_into_switch(SwitchId sw, std::uint32_t pkt, double time,
                        std::uint32_t port, Cycle now);
  std::vector<Value> make_fields(SwitchId sw, const FabricPkt& fp,
                                 Cycle now);
  std::optional<std::uint32_t> choose_spine(SwitchId leaf,
                                            const FabricPkt& fp,
                                            const std::vector<Value>& headers);
  bool spine_usable(SwitchId leaf, std::uint32_t spine_index) const;
  std::uint32_t path_util(SwitchId leaf, std::uint32_t spine_index,
                          SwitchId other_leaf) const;

  // -- accounting --
  void account_terminal(std::uint64_t flow, std::uint32_t pkt_index,
                        bool was_delivered, Cycle now);

  // -- faults / utilization --
  void apply_fault(const FabricFaultEvent& ev, Cycle now);
  void kill_switch(SwitchId sw, Cycle now);
  void kill_link(LinkId link);
  void rebuild_leaf_weights(SwitchId leaf);
  void roll_util_until(Cycle cycle);

  FabricResult finalize(Cycle end, bool truncated);

  FabricOptions opts_;
  FabricTopology topo_;
  std::unique_ptr<Mp5Program> program_;
  std::size_t num_fields_ = 0;
  // Header slots: for conga {dst, util, path_id, best}; for the other
  // modes the flowlet program's {sport, dport, arrival, next_hop}.
  ir::Slot slot_a_ = 0, slot_b_ = 0, slot_c_ = 0, slot_out_ = 0;

  std::vector<SwitchCtx> switches_;
  std::vector<LinkCtx> links_;
  std::vector<WcmpHasher> hashers_;     // one per leaf (ecmp/wcmp)
  std::vector<bool> leaf_has_path_;     // any usable uplink left?
  std::vector<double> base_weights_;    // per-spine, before fault masking
  std::vector<std::uint64_t> probe_rr_; // CONGA path-probe round robin
  std::vector<FabricFaultEvent> faults_; // sorted by cycle
  std::size_t fault_cursor_ = 0;

  std::priority_queue<Delivery, std::vector<Delivery>, LaterDelivery> heap_;
  std::uint64_t transmit_order_ = 0;

  std::vector<FabricPkt> pkts_;
  std::vector<std::uint32_t> free_pkts_;
  std::uint64_t live_pkts_ = 0;

  std::vector<FlowRec> flows_;
  std::uint64_t active_flows_ = 0;

  Cycle next_util_roll_ = 0;

  // running totals (names mirror FabricResult)
  std::uint64_t injected_ = 0, delivered_ = 0;
  std::uint64_t dropped_dead_source_ = 0, dropped_dead_destination_ = 0;
  std::uint64_t dropped_switch_killed_ = 0, dropped_in_switch_ = 0;
  std::uint64_t flows_started_ = 0, flows_completed_ = 0;
  std::uint64_t flows_fully_delivered_ = 0, peak_concurrent_ = 0;
  std::uint64_t reordered_packets_ = 0;
  std::vector<double> fct_samples_;
  /// One entry per delivered packet (4 B each — ~40 MB per 10M packets),
  /// sorted once at finalize for exact rather than bucketed percentiles:
  /// fabric-scale latency tails reach millions of cycles, far past any
  /// practical fixed histogram range.
  std::vector<std::uint32_t> latency_samples_;

  bool started_ = false;
};

} // namespace mp5::fabric
