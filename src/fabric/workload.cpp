#include "fabric/workload.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/hashing.hpp"

namespace mp5::fabric {

void FabricWorkloadConfig::validate() const {
  if (flows == 0) throw ConfigError("FabricWorkload: flows must be > 0");
  if (!(flow_rate > 0.0)) {
    throw ConfigError("FabricWorkload: flow_rate must be > 0");
  }
  if (!(mean_lifetime >= 0.0)) {
    throw ConfigError("FabricWorkload: mean_lifetime must be >= 0");
  }
  if (max_flow_packets == 0) {
    throw ConfigError("FabricWorkload: max_flow_packets must be > 0");
  }
  if (!(zipf_exponent > 0.0)) {
    throw ConfigError("FabricWorkload: zipf_exponent must be > 0");
  }
  if (burst_size == 0) {
    throw ConfigError("FabricWorkload: burst_size must be > 0");
  }
  if (!(burst_spacing >= 0.0)) {
    throw ConfigError("FabricWorkload: burst_spacing must be >= 0");
  }
  if (packet_bytes == 0) {
    throw ConfigError("FabricWorkload: packet_bytes must be > 0");
  }
}

double zipf_mean_packets(std::uint32_t max_flow_packets,
                         double zipf_exponent) {
  double norm = 0.0, mean = 0.0;
  for (std::uint32_t k = 1; k <= max_flow_packets; ++k) {
    const double p = 1.0 / std::pow(static_cast<double>(k), zipf_exponent);
    norm += p;
    mean += p * static_cast<double>(k);
  }
  return mean / norm;
}

FabricWorkload::FabricWorkload(const FabricWorkloadConfig& config,
                               std::uint32_t num_hosts)
    : config_(config),
      num_hosts_(num_hosts),
      size_sampler_(config.max_flow_packets, config.zipf_exponent),
      birth_rng_(mix64(config.seed ^ 0xfab51cb1u)) {
  config_.validate();
  if (num_hosts_ < 2) {
    throw ConfigError("FabricWorkload: need at least 2 hosts");
  }
  next_birth_ = birth_rng_.next_exponential(1.0 / config_.flow_rate);
}

FabricWorkload::ActiveFlow FabricWorkload::make_flow(std::uint64_t flow,
                                                     double birth) const {
  // All randomness below comes from an Rng reseeded from (seed, flow) —
  // the flow's identity fully determines its size, lifetime and endpoints
  // regardless of how many flows came before it.
  Rng rng(mix64(config_.seed) ^ mix64(flow + 0x51a7e));
  ActiveFlow f;
  f.flow = flow;
  f.birth = birth;
  f.pkt_count = static_cast<std::uint32_t>(size_sampler_.sample(rng)) + 1;
  if (f.pkt_count > config_.max_flow_packets) {
    f.pkt_count = config_.max_flow_packets;
  }
  const double lifetime = rng.next_exponential(config_.mean_lifetime);
  const std::uint32_t bursts =
      (f.pkt_count + config_.burst_size - 1) / config_.burst_size;
  f.burst_gap = bursts > 1 ? lifetime / static_cast<double>(bursts - 1) : 0.0;
  // Keep per-flow packet times strictly increasing even when a short
  // lifetime squeezes the burst gap under the intra-burst span.
  const double burst_span =
      static_cast<double>(config_.burst_size) * config_.burst_spacing;
  if (bursts > 1 && f.burst_gap < burst_span + 1.0) {
    f.burst_gap = burst_span + 1.0;
  }
  f.src = static_cast<HostId>(rng.next_below(num_hosts_));
  HostId dst = static_cast<HostId>(rng.next_below(num_hosts_ - 1));
  if (dst >= f.src) ++dst;
  f.dst = dst;
  f.next_pkt = 0;
  f.next_time = birth;
  return f;
}

double FabricWorkload::packet_time(const ActiveFlow& f,
                                   std::uint32_t pkt) const {
  const std::uint32_t burst = pkt / config_.burst_size;
  const std::uint32_t in_burst = pkt % config_.burst_size;
  return f.birth + static_cast<double>(burst) * f.burst_gap +
         static_cast<double>(in_burst) * config_.burst_spacing;
}

void FabricWorkload::refill() {
  while (true) {
    // Activate every flow born before the next already-scheduled packet,
    // so the heap top is always the globally next event.
    const double frontier =
        active_.empty() ? next_birth_ : active_.top().next_time;
    if (next_flow_ < config_.flows && next_birth_ <= frontier) {
      active_.push(make_flow(next_flow_, next_birth_));
      ++next_flow_;
      next_birth_ += birth_rng_.next_exponential(1.0 / config_.flow_rate);
      continue;
    }
    break;
  }
  if (active_.empty()) {
    have_current_ = false;
    return;
  }
  const ActiveFlow f = active_.top();
  current_.time = f.next_time;
  current_.flow = f.flow;
  current_.pkt_index = f.next_pkt;
  current_.pkt_count = f.pkt_count;
  current_.src_host = f.src;
  current_.dst_host = f.dst;
  current_.size_bytes = config_.packet_bytes;
  have_current_ = true;
}

const FabricPacketEvent* FabricWorkload::peek() {
  if (!have_current_) refill();
  return have_current_ ? &current_ : nullptr;
}

void FabricWorkload::advance() {
  if (!have_current_ && peek() == nullptr) {
    throw Error("FabricWorkload::advance past end of stream");
  }
  ActiveFlow f = active_.top();
  active_.pop();
  ++f.next_pkt;
  if (f.next_pkt < f.pkt_count) {
    f.next_time = packet_time(f, f.next_pkt);
    active_.push(f);
  }
  ++emitted_;
  have_current_ = false;
}

void FabricWorkload::skip_to(std::uint64_t n) {
  if (n < emitted_) {
    throw Error("FabricWorkload::skip_to: cannot rewind (recreate the "
                "workload to restart)");
  }
  while (emitted_ < n) {
    if (peek() == nullptr) {
      throw Error("FabricWorkload::skip_to past end of stream");
    }
    advance();
  }
}

} // namespace mp5::fabric
