// Fabric-level traffic synthesis: millions of concurrent flows between
// hosts, streamed in time order with O(active flows) memory.
//
// Flow model (every quantity drawn from the run seed, so the stream is
// bit-reproducible):
//   * births   — Poisson process at `flow_rate` flows/cycle (exponential
//                interarrivals);
//   * size     — Zipf(zipf_exponent) packet count in
//                [1, max_flow_packets] (heavy-tailed mice/elephants);
//   * lifetime — exponential with mean `mean_lifetime` cycles; the flow's
//                packets are spread across it in bursts of `burst_size`
//                packets `burst_spacing` cycles apart, so a flow is a
//                sequence of flowlets (bursts separated by idle gaps far
//                exceeding the flowlet IPG) and stays concurrent with the
//                ~flow_rate × mean_lifetime flows born around it;
//   * endpoints — src/dst hosts uniform, src != dst.
//
// Every per-flow quantity is a pure function of (seed, flow id) — the
// SyntheticTraceSource recipe — so the generator is resumable: skip_to(n)
// replays the first n emissions at generator speed without touching a
// simulator. Emission order is (time, flow id), deterministic.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "fabric/topology.hpp"

namespace mp5::fabric {

struct FabricWorkloadConfig {
  /// Total flows to generate over the run.
  std::uint64_t flows = 20'000;
  /// Mean flow births per cycle (Poisson arrivals).
  double flow_rate = 1.0;
  /// Mean flow lifetime in cycles (exponential). Steady-state concurrent
  /// flows ≈ flow_rate × mean_lifetime.
  double mean_lifetime = 4'000.0;
  /// Packet count per flow: Zipf over [1, max_flow_packets].
  std::uint32_t max_flow_packets = 16;
  double zipf_exponent = 1.2;
  /// Packets per burst (flowlet) and intra-burst spacing in cycles.
  std::uint32_t burst_size = 4;
  double burst_spacing = 2.0;
  std::uint32_t packet_bytes = 64;
  std::uint64_t seed = 1;

  void validate() const; // throws ConfigError
};

/// Expected packets per flow under the config's Zipf size distribution
/// (for sizing host load: packet rate = flow_rate × mean).
double zipf_mean_packets(std::uint32_t max_flow_packets,
                         double zipf_exponent);

struct FabricPacketEvent {
  double time = 0.0;
  std::uint64_t flow = 0;       // dense id in [0, config.flows)
  std::uint32_t pkt_index = 0;  // position within the flow
  std::uint32_t pkt_count = 0;  // the flow's total packet count
  HostId src_host = 0;
  HostId dst_host = 0;
  std::uint32_t size_bytes = 64;
};

class FabricWorkload {
public:
  FabricWorkload(const FabricWorkloadConfig& config, std::uint32_t num_hosts);

  /// Next event in (time, flow) order, nullptr when exhausted. Valid
  /// until the next advance().
  const FabricPacketEvent* peek();
  void advance();

  /// Reposition so that emitted() == n (forward only): replays the
  /// intervening events at generator speed, no simulator required.
  void skip_to(std::uint64_t n);

  std::uint64_t emitted() const { return emitted_; }
  std::uint64_t total_flows() const { return config_.flows; }
  /// Flows whose first packet has been emitted.
  std::uint64_t flows_born() const { return next_flow_; }

private:
  struct ActiveFlow {
    double next_time = 0.0;
    std::uint64_t flow = 0;
    std::uint32_t next_pkt = 0;
    std::uint32_t pkt_count = 0;
    HostId src = 0;
    HostId dst = 0;
    double birth = 0.0;
    double burst_gap = 0.0; // cycles between burst starts
  };
  struct Later {
    bool operator()(const ActiveFlow& a, const ActiveFlow& b) const {
      if (a.next_time != b.next_time) return a.next_time > b.next_time;
      return a.flow > b.flow;
    }
  };

  /// Per-flow spec from (seed, flow): a pure function, the backbone of
  /// reproducibility and skip_to.
  ActiveFlow make_flow(std::uint64_t flow, double birth) const;
  double packet_time(const ActiveFlow& f, std::uint32_t pkt) const;
  void refill();

  FabricWorkloadConfig config_;
  std::uint32_t num_hosts_;
  ZipfSampler size_sampler_;
  Rng birth_rng_;
  double next_birth_ = 0.0;
  std::uint64_t next_flow_ = 0;
  std::priority_queue<ActiveFlow, std::vector<ActiveFlow>, Later> active_;
  FabricPacketEvent current_;
  bool have_current_ = false;
  std::uint64_t emitted_ = 0;
};

} // namespace mp5::fabric
