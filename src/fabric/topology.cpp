#include "fabric/topology.hpp"

#include "common/error.hpp"

namespace mp5::fabric {

void FabricTopology::validate() const {
  if (leaves == 0) throw ConfigError("FabricTopology: leaves must be > 0");
  if (spines == 0) throw ConfigError("FabricTopology: spines must be > 0");
  if (hosts_per_leaf == 0) {
    throw ConfigError("FabricTopology: hosts_per_leaf must be > 0");
  }
  if (link_latency < 1) {
    throw ConfigError(
        "FabricTopology: link_latency must be >= 1 cycle (same-cycle hops "
        "would break the one-pass-per-cycle fabric walk)");
  }
  if (!(link_bytes_per_cycle > 0.0)) {
    throw ConfigError("FabricTopology: link_bytes_per_cycle must be > 0");
  }
  if (!spine_weights.empty()) {
    if (spine_weights.size() != spines) {
      throw ConfigError(
          "FabricTopology: spine_weights size " +
          std::to_string(spine_weights.size()) + " != spines " +
          std::to_string(spines));
    }
    double total = 0.0;
    for (const double w : spine_weights) {
      if (w < 0.0) {
        throw ConfigError("FabricTopology: spine weights must be >= 0");
      }
      total += w;
    }
    if (!(total > 0.0)) {
      throw ConfigError("FabricTopology: at least one spine weight must be "
                        "positive");
    }
  }
}

std::string FabricTopology::switch_name(SwitchId id) const {
  if (is_leaf(id)) return "leaf" + std::to_string(id);
  return "spine" + std::to_string(spine_index(id));
}

SwitchId FabricTopology::switch_by_name(const std::string& name) const {
  const auto parse_index = [&](std::size_t prefix_len) -> std::uint32_t {
    const std::string digits = name.substr(prefix_len);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      throw ConfigError("FabricTopology: bad switch name '" + name + "'");
    }
    return static_cast<std::uint32_t>(std::stoul(digits));
  };
  if (name.rfind("leaf", 0) == 0) {
    const std::uint32_t i = parse_index(4);
    if (i >= leaves) {
      throw ConfigError("FabricTopology: no such leaf '" + name + "' (" +
                        std::to_string(leaves) + " leaves)");
    }
    return i;
  }
  if (name.rfind("spine", 0) == 0) {
    const std::uint32_t i = parse_index(5);
    if (i >= spines) {
      throw ConfigError("FabricTopology: no such spine '" + name + "' (" +
                        std::to_string(spines) + " spines)");
    }
    return spine_id(i);
  }
  throw ConfigError("FabricTopology: bad switch name '" + name +
                    "' (want leaf<i> or spine<i>)");
}

SwitchId FabricTopology::link_from(LinkId link) const {
  if (is_uplink(link)) return link / spines;
  const LinkId d = link - leaves * spines;
  return spine_id(d / leaves);
}

SwitchId FabricTopology::link_to(LinkId link) const {
  if (is_uplink(link)) return spine_id(link % spines);
  const LinkId d = link - leaves * spines;
  return d % leaves;
}

std::string FabricTopology::link_name(LinkId link) const {
  return switch_name(link_from(link)) + "->" + switch_name(link_to(link));
}

std::uint32_t FabricTopology::ingress_port(LinkId link) const {
  if (is_uplink(link)) {
    return link / spines; // port on the spine = source leaf id
  }
  const LinkId d = link - leaves * spines;
  return hosts_per_leaf + d / leaves; // port on the leaf, after host ports
}

} // namespace mp5::fabric
