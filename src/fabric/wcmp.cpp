#include "fabric/wcmp.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/hashing.hpp"

namespace mp5::fabric {

HashAlg parse_hash_alg(const std::string& name) {
  if (name == "addresses" || name == "ip") return HashAlg::kAddressesOnly;
  if (name == "addresses-ports" || name == "ip-tcp") {
    return HashAlg::kAddressesPorts;
  }
  if (name == "five-tuple" || name == "5-tuple") return HashAlg::kFiveTuple;
  throw ConfigError("WcmpHasher: unknown hash algorithm '" + name +
                    "' (want addresses | addresses-ports | five-tuple)");
}

std::string hash_alg_name(HashAlg alg) {
  switch (alg) {
    case HashAlg::kAddressesOnly: return "addresses";
    case HashAlg::kAddressesPorts: return "addresses-ports";
    case HashAlg::kFiveTuple: return "five-tuple";
  }
  return "?";
}

WcmpHasher::WcmpHasher(HashAlg alg, std::uint64_t salt,
                       std::vector<double> weights)
    : alg_(alg), salt_(salt) {
  set_weights(std::move(weights));
}

void WcmpHasher::set_weights(std::vector<double> weights) {
  if (weights.empty()) throw ConfigError("WcmpHasher: no paths");
  if (!weights_.empty() && weights.size() != weights_.size()) {
    throw ConfigError("WcmpHasher: weight count changed");
  }
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw ConfigError("WcmpHasher: negative weight");
    total += w;
  }
  if (!(total > 0.0)) {
    throw ConfigError("WcmpHasher: all path weights are zero");
  }
  weights_ = std::move(weights);
  cumulative_.resize(weights_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    acc += weights_[i];
    cumulative_[i] = acc;
  }
}

std::uint64_t WcmpHasher::hash(const FiveTuple& t) const {
  std::uint64_t h = mix64(salt_ ^ 0x9e3779b97f4a7c15ULL);
  h = mix64(h ^ ((static_cast<std::uint64_t>(t.src) << 32) | t.dst));
  if (alg_ != HashAlg::kAddressesOnly) {
    h = mix64(h ^ ((static_cast<std::uint64_t>(t.sport) << 16) | t.dport));
  }
  if (alg_ == HashAlg::kFiveTuple) {
    h = mix64(h ^ t.proto);
  }
  return h;
}

std::uint32_t WcmpHasher::pick(const FiveTuple& t) const {
  const std::uint64_t h = hash(t);
  // Map to [0, total); 2^-64 granularity is far finer than any weight
  // split a test could distinguish.
  const double u = static_cast<double>(h) / 18446744073709551616.0; // 2^64
  const double x = u * cumulative_.back();
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), x);
  if (it == cumulative_.end()) {
    // x == total (u rounding); the last positive-weight path takes it.
    for (std::size_t i = weights_.size(); i-- > 0;) {
      if (weights_[i] > 0.0) return static_cast<std::uint32_t>(i);
    }
  }
  return static_cast<std::uint32_t>(it - cumulative_.begin());
}

} // namespace mp5::fabric
