// Machine-readable fabric run results, schema "mp5-fabric-results"
// version 1 (validated by tools/validate_results.py):
//   {
//     "schema": "mp5-fabric-results", "schema_version": 1,
//     "config":   { leaves, spines, hosts_per_leaf, link_latency,
//                   link_bytes_per_cycle, lb, hash, salt, seed, pipelines,
//                   remap_period, util_window,
//                   workload { flows, flow_rate, mean_lifetime,
//                              max_flow_packets, zipf_exponent, burst_size,
//                              burst_spacing, packet_bytes, seed } },
//     "totals":   { injected, delivered, dropped { dead_source,
//                   dead_destination, switch_killed, in_switch, total },
//                   in_flight_end, conserved, truncated, cycles_run,
//                   throughput_pkts_per_cycle, offered_pkts_per_cycle,
//                   delivered_fraction },
//     "flows":    { total, started, completed, fully_delivered,
//                   peak_concurrent, reordered_packets,
//                   fct { count, p50, p90, p99, mean, max } },
//     "latency":  { p50, p90, p99 },
//     "uplinks":  { util_max, util_mean, util_skew },
//     "links":    [ { name, from, to, uplink, killed, weight, packets,
//                     bytes, busy_cycles, utilization,
//                     peak_queue_cycles } ],
//     "switches": [ { name, killed, killed_at, offered, egressed,
//                     dropped_data, dropped_phantom, steers,
//                     wasted_cycles, remap_moves, max_queue_depth,
//                     c1_violating_packets, c1_fraction,
//                     reordered_flow_packets } ],
//     "telemetry": { counters, gauges, histograms, events } | null
//   }
//
// Per-switch telemetry metrics appear in the telemetry section under
// their "fabric.<switch-name>." prefixes (the Scope mechanism keeps the
// per-instance names collision-free in the shared registry).
#pragma once

#include <ostream>

#include "fabric/fabric.hpp"

namespace mp5::fabric {

inline constexpr int kFabricResultsSchemaVersion = 1;

void write_fabric_results_json(std::ostream& out,
                               const FabricOptions& options,
                               const FabricResult& result,
                               const telemetry::Telemetry* telem = nullptr);

} // namespace mp5::fabric
