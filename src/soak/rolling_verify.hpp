// Rolling egress verification for billion-packet soaks.
//
// The batch checker (metrics/equivalence.hpp) needs the whole egress log in
// memory — O(packets) RSS, a non-starter at 10^9 packets. RollingVerifier
// performs the same declared-field comparison incrementally: egress records
// and declared fault drops stream in (via the simulator's egress_sink /
// fault_drop_sink), fates are resolved in seq order against the
// single-pipeline reference, and verified history is discarded immediately.
// Memory is bounded by the egress reordering span (the window), not the
// trace length.
//
// Fate resolution, per seq:
//   * egressed            -> run the reference on the packet, compare the
//                            declared fields (shared EquivalenceVerifier
//                            core: same duplicate/out-of-range diagnostics
//                            as the batch checker);
//   * fault drop, state untouched -> the packet left no effects anywhere;
//                            the reference skips it and stays in sync;
//   * fault drop, state touched   -> the packet's partial register effects
//                            cannot be replayed on the reference:
//                            verification is truncated at that seq (the
//                            report says so) — everything before it stays
//                            verified.
//
// The verifier is checkpointable alongside the simulator (save/load), so a
// crash-recovered soak resumes verification exactly where it stopped.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "banzai/single_pipeline.hpp"
#include "metrics/equivalence.hpp"
#include "trace/trace_source.hpp"

namespace mp5 {
class ByteReader;
class ByteWriter;
} // namespace mp5

namespace mp5::soak {

struct RollingVerifyOptions {
  /// Hard cap on pending (unresolved) fates. The window only grows while
  /// egress order runs ahead of seq order, so hitting this means the run
  /// is pathologically reordered or leaking fates; throwing beats
  /// unbounded RSS in a soak.
  std::size_t max_window = std::size_t{1} << 20;
};

class RollingVerifier {
public:
  using Options = RollingVerifyOptions;

  /// `reference_input` must yield the same packet stream the simulator
  /// consumes (a second TraceSource over the same trace).
  RollingVerifier(const ir::Pvsm& program,
                  std::unique_ptr<TraceSource> reference_input,
                  Options options = {});

  /// Wire these to SimOptions::egress_sink / fault_drop_sink.
  void on_egress(EgressRecord&& rec);
  void on_fault_drop(SeqNo seq, bool state_touched);

  /// Close the stream: every admitted-but-unresolved seq is flagged as
  /// never egressed, and (unless truncated) the final register state is
  /// compared. `admitted` is the simulator's SimResult::offered.
  EquivalenceReport finish(
      std::uint64_t admitted,
      const std::vector<std::vector<Value>>& final_registers);

  /// Packets fully verified so far (resolved, compared, discarded).
  std::uint64_t verified() const { return verified_; }
  /// True once a state-touching fault drop ended comparable verification.
  bool truncated() const { return truncated_; }
  /// High-water mark of the pending window (flat-RSS diagnostics).
  std::size_t window_peak() const { return window_peak_; }
  const EquivalenceReport& report() const { return core_.report(); }

  /// Checkpoint support: serialize resolution position, pending window,
  /// accumulated report, and the reference switch's register state. load()
  /// requires a freshly constructed verifier over the same program and
  /// reference input; it repositions the input to the saved seq.
  void save(ByteWriter& w) const;
  void load(ByteReader& r);

private:
  struct Pending {
    bool resolved = false;      // fate known?
    bool egressed = false;      // else: declared fault drop
    bool state_touched = false; // fault drops only
    std::vector<Value> headers; // egressed only: observed final headers
  };

  void set_fate(SeqNo seq, Pending&& fate);
  void drain();
  void resolve(SeqNo seq, Pending& fate);

  const ir::Pvsm* program_;
  banzai::ReferenceSwitch ref_;
  std::unique_ptr<TraceSource> input_;
  Options opts_;
  EquivalenceVerifier core_;

  SeqNo next_seq_ = 0;          // next seq to resolve, in order
  std::deque<Pending> window_;  // window_[i] is seq next_seq_ + i
  std::uint64_t verified_ = 0;
  bool truncated_ = false;
  std::size_t window_peak_ = 0;
};

} // namespace mp5::soak
