#include "soak/rss.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mp5::soak {

RssSample sample_rss() {
  RssSample sample;
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return sample;
  char line[256];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      sample.rss_kib = std::strtoull(line + 6, nullptr, 10);
    } else if (std::strncmp(line, "VmHWM:", 6) == 0) {
      sample.peak_kib = std::strtoull(line + 6, nullptr, 10);
    }
  }
  std::fclose(f);
  return sample;
}

} // namespace mp5::soak
