#include "soak/rolling_verify.hpp"

#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace mp5::soak {

RollingVerifier::RollingVerifier(const ir::Pvsm& program,
                                 std::unique_ptr<TraceSource> reference_input,
                                 Options options)
    : program_(&program),
      ref_(program),
      input_(std::move(reference_input)),
      opts_(options),
      core_(program) {
  if (input_ == nullptr) {
    throw ConfigError("RollingVerifier: reference input source is null");
  }
  // The C1 access log is O(packets); rolling verification never reads it.
  ref_.set_access_logging(false);
}

void RollingVerifier::on_egress(EgressRecord&& rec) {
  if (truncated_) return; // nothing downstream is comparable any more
  if (rec.seq < next_seq_) {
    // This seq was already resolved — a second egress of the same packet.
    core_.flag_duplicate(rec.seq, 2);
    return;
  }
  Pending fate;
  fate.resolved = true;
  fate.egressed = true;
  fate.headers = std::move(rec.headers);
  set_fate(rec.seq, std::move(fate));
  drain();
}

void RollingVerifier::on_fault_drop(SeqNo seq, bool state_touched) {
  if (truncated_) return;
  if (seq < next_seq_) {
    core_.flag_duplicate(seq, 2);
    return;
  }
  Pending fate;
  fate.resolved = true;
  fate.egressed = false;
  fate.state_touched = state_touched;
  set_fate(seq, std::move(fate));
  drain();
}

void RollingVerifier::set_fate(SeqNo seq, Pending&& fate) {
  const std::uint64_t offset = seq - next_seq_;
  if (offset >= opts_.max_window) {
    throw Error("rolling verification window exceeded (" +
                std::to_string(opts_.max_window) +
                " pending fates): egress for seq " + std::to_string(seq) +
                " arrived while seq " + std::to_string(next_seq_) +
                " is still unresolved");
  }
  if (window_.size() <= offset) {
    window_.resize(static_cast<std::size_t>(offset) + 1);
    window_peak_ = std::max(window_peak_, window_.size());
  }
  Pending& slot = window_[static_cast<std::size_t>(offset)];
  if (slot.resolved) {
    core_.flag_duplicate(seq, 2);
    return;
  }
  slot = std::move(fate);
}

void RollingVerifier::drain() {
  while (!window_.empty() && window_.front().resolved && !truncated_) {
    resolve(next_seq_, window_.front());
    window_.pop_front();
    ++next_seq_;
  }
  if (truncated_) {
    // Free everything: no further comparison is possible, and a soak must
    // not accumulate the rest of the stream.
    window_.clear();
  }
}

void RollingVerifier::resolve(SeqNo seq, Pending& fate) {
  const TraceItem* item = input_->peek();
  if (item == nullptr) {
    // The simulator produced a record for a packet the trace never
    // contained — same malformed-stream class as the batch checker's
    // out-of-range diagnostic.
    core_.flag_out_of_range(seq, input_->consumed());
    return;
  }
  if (!fate.egressed) {
    if (fate.state_touched) {
      truncated_ = true;
      core_.note("rolling verification truncated at seq " +
                 std::to_string(seq) +
                 ": fault-dropped packet left partial register effects the "
                 "reference cannot replay");
      return;
    }
    // Declared drop with no state effects: the reference skips the packet.
    input_->advance();
    return;
  }
  std::vector<Value> headers(item->fields.begin(), item->fields.end());
  input_->advance();
  core_.compare_packet(seq, ref_.process(std::move(headers)), fate.headers);
  ++verified_;
}

EquivalenceReport RollingVerifier::finish(
    std::uint64_t admitted,
    const std::vector<std::vector<Value>>& final_registers) {
  if (!truncated_) {
    // Everything admitted but never resolved is a lost packet. Flag the
    // first few individually, then aggregate (a badly lossy run could have
    // millions of holes; the report must stay O(window), not O(trace)).
    constexpr std::uint64_t kDetailed = 8;
    std::uint64_t resolved_pending = 0;
    for (const Pending& p : window_) {
      if (p.resolved) ++resolved_pending;
    }
    const std::uint64_t outstanding =
        admitted > next_seq_ ? admitted - next_seq_ : 0;
    const std::uint64_t missing =
        outstanding > resolved_pending ? outstanding - resolved_pending : 0;
    std::uint64_t flagged = 0;
    for (std::size_t off = 0;
         flagged < std::min(missing, kDetailed) &&
         off < static_cast<std::size_t>(outstanding);
         ++off) {
      const bool resolved =
          off < window_.size() && window_[off].resolved;
      if (!resolved) {
        core_.flag_never_egressed(next_seq_ + off);
        ++flagged;
      }
    }
    if (missing > flagged) {
      core_.report().packet_mismatches += missing - flagged;
      core_.report().packets_equal = false;
    }
    if (missing == 0) {
      core_.compare_registers(ref_.registers(), final_registers);
    } else {
      core_.note("final register state not compared: " +
                 std::to_string(missing) + " packets unresolved");
    }
  }
  return core_.report();
}

void RollingVerifier::save(ByteWriter& w) const {
  w.u64(next_seq_);
  w.u64(verified_);
  w.boolean(truncated_);
  w.u64(window_peak_);
  w.u64(window_.size());
  for (const Pending& p : window_) {
    w.boolean(p.resolved);
    w.boolean(p.egressed);
    w.boolean(p.state_touched);
    w.u64(p.headers.size());
    for (const Value v : p.headers) w.i64(v);
  }
  const EquivalenceReport& rep = core_.report();
  w.boolean(rep.registers_equal);
  w.boolean(rep.packets_equal);
  w.u64(rep.register_mismatches);
  w.u64(rep.packet_mismatches);
  w.str(rep.first_difference);
  const auto& regs = ref_.registers();
  w.u64(regs.size());
  for (const auto& reg : regs) {
    w.u64(reg.size());
    for (const Value v : reg) w.i64(v);
  }
}

void RollingVerifier::load(ByteReader& r) {
  if (next_seq_ != 0 || verified_ != 0 || !window_.empty()) {
    throw Error(
        "RollingVerifier::load requires a freshly constructed verifier");
  }
  next_seq_ = r.u64();
  verified_ = r.u64();
  truncated_ = r.boolean();
  window_peak_ = static_cast<std::size_t>(r.u64());
  const std::uint64_t nwin = r.count(11);
  for (std::uint64_t i = 0; i < nwin; ++i) {
    Pending p;
    p.resolved = r.boolean();
    p.egressed = r.boolean();
    p.state_touched = r.boolean();
    p.headers.resize(static_cast<std::size_t>(r.count(8)));
    for (Value& v : p.headers) v = r.i64();
    window_.push_back(std::move(p));
  }
  EquivalenceReport& rep = core_.report();
  rep.registers_equal = r.boolean();
  rep.packets_equal = r.boolean();
  rep.register_mismatches = r.u64();
  rep.packet_mismatches = r.u64();
  rep.first_difference = r.str();
  std::vector<std::vector<Value>> regs;
  regs.resize(static_cast<std::size_t>(r.count(8)));
  for (auto& reg : regs) {
    reg.resize(static_cast<std::size_t>(r.count(8)));
    for (Value& v : reg) v = r.i64();
  }
  ref_.restore_registers(std::move(regs));
  // Every resolved seq consumed exactly one reference item (egressed and
  // skipped-drop fates alike), so the input resumes at the resolution seq.
  input_->skip_to(next_seq_);
  if (input_->consumed() != next_seq_) {
    throw Error("RollingVerifier::load: reference input too short for the "
                "saved verification position");
  }
}

} // namespace mp5::soak
