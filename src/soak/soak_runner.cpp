#include "soak/soak_runner.hpp"

#include <algorithm>
#include <string_view>
#include <utility>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "mp5/checkpoint.hpp"
#include "mp5/simulator.hpp"
#include "soak/rolling_verify.hpp"
#include "soak/rss.hpp"

namespace mp5::soak {

std::unique_ptr<TraceSource> make_soak_source(const SoakOptions& options) {
  if (!options.trace_path.empty()) {
    return open_trace_source(options.trace_path);
  }
  return std::make_unique<SyntheticTraceSource>(options.synthetic);
}

namespace {

void track_rss(SoakReport& report) {
  const RssSample rss = sample_rss();
  report.rss_kib = rss.rss_kib;
  report.peak_rss_kib = std::max(report.peak_rss_kib, rss.peak_kib);
}

} // namespace

SoakReport run_soak(const Mp5Program& program, const SoakOptions& options) {
  if (options.checkpoint_interval != 0 && options.checkpoint_path.empty()) {
    throw ConfigError("soak: checkpoint_interval requires checkpoint_path");
  }
  if (options.resume && options.checkpoint_path.empty()) {
    throw ConfigError("soak: resume requires checkpoint_path");
  }

  SoakReport report;
  SimOptions sim_opts = options.sim;
  // Verification is fully sink-driven; nothing may accumulate per packet.
  sim_opts.record_egress = false;
  sim_opts.checkpoint_interval = options.checkpoint_interval;

  std::unique_ptr<RollingVerifier> verifier;
  if (options.verify) {
    RollingVerifier::Options vopts;
    vopts.max_window = options.verify_window;
    verifier = std::make_unique<RollingVerifier>(
        program.pvsm, make_soak_source(options), vopts);
    sim_opts.egress_sink = [&v = *verifier](EgressRecord&& rec) {
      v.on_egress(std::move(rec));
    };
    sim_opts.fault_drop_sink = [&v = *verifier](SeqNo seq, bool touched) {
      v.on_fault_drop(seq, touched);
    };
  }

  // Sinks and checkpoint cadence are excluded from the fingerprint, so
  // this matches what the simulator stamps into its own frames.
  const std::uint64_t fp = config_fingerprint(program, sim_opts);

  if (options.checkpoint_interval != 0) {
    sim_opts.checkpoint_sink = [&](Cycle cycle, std::string&& blob) {
      std::string file = std::move(blob);
      if (verifier != nullptr) {
        ByteWriter w;
        verifier->save(w);
        file += frame_checkpoint(fp, cycle, w.take());
      }
      write_checkpoint_file(options.checkpoint_path, file);
      ++report.checkpoints_written;
      track_rss(report);
      if (options.rss_limit_kib != 0 &&
          report.rss_kib > options.rss_limit_kib) {
        throw Error("soak RSS ceiling exceeded: VmRSS " +
                    std::to_string(report.rss_kib) + " KiB > limit " +
                    std::to_string(options.rss_limit_kib) +
                    " KiB at cycle " + std::to_string(cycle));
      }
    };
  }

  auto source = make_soak_source(options);
  Mp5Simulator sim(program, sim_opts);

  if (options.resume) {
    const std::string file = read_checkpoint_file(options.checkpoint_path);
    const std::size_t sim_len = framed_size(file);
    const std::string_view sim_frame(file.data(), sim_len);
    const std::string_view rest(file.data() + sim_len, file.size() - sim_len);
    const CheckpointInfo sim_info = parse_checkpoint(sim_frame);
    if (verifier != nullptr) {
      if (rest.empty()) {
        throw Error("soak checkpoint has no verifier section (the "
                    "checkpointing run had verification disabled)");
      }
      if (framed_size(rest) != rest.size()) {
        throw Error("soak checkpoint corrupted (trailing bytes after the "
                    "verifier frame)");
      }
      const CheckpointInfo vinfo = parse_checkpoint(rest);
      if (vinfo.fingerprint != fp) {
        throw Error("soak checkpoint was taken under a different "
                    "configuration (verifier fingerprint mismatch)");
      }
      if (vinfo.cycle != sim_info.cycle) {
        throw Error("soak checkpoint corrupted: simulator and verifier "
                    "frames disagree on the checkpoint cycle");
      }
      ByteReader r(vinfo.payload);
      verifier->load(r);
      r.expect_done();
    }
    report.resumed = true;
    report.resumed_from_cycle = sim_info.cycle;
    report.result = sim.resume(*source, sim_frame);
  } else {
    report.result = sim.run(*source);
  }

  if (verifier != nullptr) {
    report.verify_ran = true;
    report.equivalence =
        verifier->finish(report.result.offered, report.result.final_registers);
    report.truncated = verifier->truncated();
    report.verified_packets = verifier->verified();
    report.verify_window_peak = verifier->window_peak();
    report.verified = !report.truncated && report.equivalence.packets_equal &&
                      report.equivalence.registers_equal;
  }
  track_rss(report);
  return report;
}

} // namespace mp5::soak
