// Crash-recoverable soak driver (ISSUE 6 tentpole).
//
// run_soak() wires the streaming pieces into one billion-packet-capable
// harness: a TraceSource feeds the simulator, a second source over the
// same stream feeds the RollingVerifier via the egress/fault-drop sinks
// (so nothing accumulates in SimResult), and every checkpoint_interval
// cycles the complete simulator + verifier state is written atomically to
// one file. A crashed (even SIGKILLed) soak resumes from that file and
// finishes with the same SimResult as an uninterrupted run.
//
// Soak checkpoint file layout: two `mp5-checkpoint v1` frames back to
// back — the simulator frame first (so external tools can sniff the magic
// at offset 0), then the verifier frame carrying RollingVerifier state.
// Both land in a single atomic rename, so there is no crash window in
// which the two halves disagree.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "metrics/equivalence.hpp"
#include "metrics/sim_result.hpp"
#include "mp5/options.hpp"
#include "mp5/transform.hpp"
#include "trace/trace_source.hpp"

namespace mp5::soak {

struct SoakOptions {
  /// Trace file (.trace.csv or compact binary) to stream. When empty the
  /// deterministic synthetic generator below supplies the packets.
  std::string trace_path;
  SyntheticSpec synthetic;

  /// Base simulator configuration. The checkpoint knobs
  /// (checkpoint_interval / checkpoint_sink) and the streaming sinks are
  /// owned by the soak driver and overwritten; record_egress is forced
  /// off (verification is fully sink-driven).
  SimOptions sim;

  /// Cycles between checkpoints; 0 disables checkpointing.
  std::uint64_t checkpoint_interval = 0;
  /// File the combined checkpoint is (re)written to. Required when
  /// checkpoint_interval != 0.
  std::string checkpoint_path;
  /// Resume from checkpoint_path instead of starting fresh.
  bool resume = false;

  /// Rolling equivalence verification against the single-pipeline
  /// reference.
  bool verify = true;
  /// RollingVerifier window cap (pending out-of-order fates).
  std::size_t verify_window = std::size_t{1} << 20;

  /// Abort (throw Error) if VmRSS exceeds this many KiB at a checkpoint
  /// boundary — the soak's flat-memory contract, enforced. 0 = unlimited.
  std::uint64_t rss_limit_kib = 0;
};

struct SoakReport {
  SimResult result;
  /// Meaningful only when SoakOptions::verify was set.
  EquivalenceReport equivalence;
  bool verify_ran = false;
  /// verify_ran && packets and registers matched the reference.
  bool verified = false;
  /// Verification stopped early at a state-touching fault drop.
  bool truncated = false;
  std::uint64_t verified_packets = 0;
  std::size_t verify_window_peak = 0;

  std::uint64_t checkpoints_written = 0;
  bool resumed = false;
  Cycle resumed_from_cycle = 0;

  /// VmRSS/VmHWM sampled at checkpoints and at completion (KiB; 0 when
  /// procfs is unavailable).
  std::uint64_t rss_kib = 0;
  std::uint64_t peak_rss_kib = 0;
};

/// Build the packet source a SoakOptions describes (file or synthetic).
/// Exposed so callers (mp5soak, tests) can stream the same trace the soak
/// will consume.
std::unique_ptr<TraceSource> make_soak_source(const SoakOptions& options);

SoakReport run_soak(const Mp5Program& program, const SoakOptions& options);

} // namespace mp5::soak
