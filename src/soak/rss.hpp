// Process resident-set sampling for the soak driver's flat-RSS contract.
#pragma once

#include <cstdint>

namespace mp5::soak {

struct RssSample {
  /// Current resident set (VmRSS), KiB. 0 when /proc is unavailable.
  std::uint64_t rss_kib = 0;
  /// Peak resident set (VmHWM), KiB. 0 when /proc is unavailable.
  std::uint64_t peak_kib = 0;
};

/// Read VmRSS/VmHWM from /proc/self/status (Linux). On platforms without
/// procfs both fields are 0 — callers treat that as "unknown", never as an
/// over-limit condition.
RssSample sample_rss();

} // namespace mp5::soak
