#include "fuzz/program_gen.hpp"

#include <iterator>
#include <sstream>

namespace mp5::fuzz {

ProgramGen::ProgramGen(std::uint64_t seed, const Options& opts)
    : opts_(opts), rng_(seed) {}

std::string ProgramGen::generate() {
  num_fields_ =
      static_cast<int>(rng_.next_in(opts_.min_fields, opts_.max_fields));
  num_regs_ = static_cast<int>(rng_.next_in(opts_.min_regs, opts_.max_regs));
  std::ostringstream os;
  os << "struct Packet {";
  for (int f = 0; f < num_fields_; ++f) os << " int f" << f << ";";
  os << " };\n";
  for (int r = 0; r < num_regs_; ++r) {
    reg_size_[r] = static_cast<int>(rng_.next_in(1, opts_.max_reg_size));
    if (reg_size_[r] == 1) {
      os << "int r" << r << " = " << rng_.next_in(0, 9) << ";\n";
      reg_index_[r].clear();
    } else {
      os << "int r" << r << "[" << reg_size_[r] << "] = {"
         << rng_.next_in(0, 9) << "};\n";
      // Fixed per-register index expression (single memory port per
      // atom); with the wide grammar the shape varies per register.
      const std::string f0 = "p.f" + std::to_string(r % num_fields_);
      const std::string size = std::to_string(reg_size_[r]);
      switch (opts_.wide ? rng_.next_below(3) : 0u) {
        case 0:
          reg_index_[r] = f0 + " % " + size;
          break;
        case 1:
          reg_index_[r] = "(" + f0 + " + " +
                          std::to_string(rng_.next_in(1, reg_size_[r])) +
                          ") % " + size;
          break;
        default:
          reg_index_[r] =
              "hash2(" + f0 + ", p.f" +
              std::to_string(rng_.next_below(
                  static_cast<std::uint64_t>(num_fields_))) +
              ") % " + size;
          break;
      }
    }
  }
  os << "void prog(struct Packet p) {\n";
  const int stmts =
      static_cast<int>(rng_.next_in(opts_.min_stmts, opts_.max_stmts));
  for (int i = 0; i < stmts; ++i) os << stmt(1);
  os << "}\n";
  return os.str();
}

std::string ProgramGen::reg_ref(int r) {
  if (reg_size_[r] == 1) return "r" + std::to_string(r);
  return "r" + std::to_string(r) + "[" + reg_index_[r] + "]";
}

std::string ProgramGen::expr(int depth) {
  const std::uint64_t cases = opts_.wide ? 9 : 7;
  const auto pick = rng_.next_below(depth >= 3 ? 3 : cases);
  switch (pick) {
    case 0:
      return std::to_string(rng_.next_in(0, 15));
    case 1:
      return "p.f" + std::to_string(rng_.next_below(
                         static_cast<std::uint64_t>(num_fields_)));
    case 2:
      return reg_ref(static_cast<int>(
          rng_.next_below(static_cast<std::uint64_t>(num_regs_))));
    case 3: {
      static const char* kNarrowOps[] = {"+", "-", "*",  "&", "|",
                                         "^", "<", "==", ">>"};
      static const char* kWideOps[] = {"+",  "-", "*",  "&",  "|", "^", "<",
                                       "==", ">>", "<=", ">", "!="};
      const auto* ops = opts_.wide ? kWideOps : kNarrowOps;
      const auto n = opts_.wide ? std::size(kWideOps) : std::size(kNarrowOps);
      const auto op = ops[rng_.next_below(n)];
      return "(" + expr(depth + 1) + " " + op + " " + expr(depth + 1) + ")";
    }
    case 4:
      return "(" + expr(depth + 1) + " ? " + expr(depth + 1) + " : " +
             expr(depth + 1) + ")";
    case 5:
      return "hash2(" + expr(depth + 1) + ", " + expr(depth + 1) + ")";
    case 6:
      return "(" + expr(depth + 1) + " % " +
             std::to_string(rng_.next_in(1, 16)) + ")";
    case 7:
      return std::string(rng_.chance(0.5) ? "min" : "max") + "(" +
             expr(depth + 1) + ", " + expr(depth + 1) + ")";
    default:
      return "hash3(" + expr(depth + 1) + ", " + expr(depth + 1) + ", " +
             expr(depth + 1) + ")";
  }
}

std::string ProgramGen::stmt(int depth) {
  const bool allow_if = depth < opts_.max_if_depth;
  const auto pick = rng_.next_below(allow_if ? 4 : 3);
  std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  switch (pick) {
    case 0:
      return pad + "p.f" +
             std::to_string(rng_.next_below(
                 static_cast<std::uint64_t>(num_fields_))) +
             " = " + expr(1) + ";\n";
    case 1:
    case 2:
      return pad +
             reg_ref(static_cast<int>(
                 rng_.next_below(static_cast<std::uint64_t>(num_regs_)))) +
             " = " + expr(1) + ";\n";
    default: {
      std::string out = pad + "if (" + expr(1) + ") {\n";
      const int n = static_cast<int>(rng_.next_in(1, 2));
      for (int i = 0; i < n; ++i) out += stmt(depth + 1);
      out += pad + "}";
      if (rng_.chance(0.5)) {
        out += " else {\n";
        const int m = static_cast<int>(rng_.next_in(1, 2));
        for (int i = 0; i < m; ++i) out += stmt(depth + 1);
        out += pad + "}";
      }
      out += "\n";
      return out;
    }
  }
}

} // namespace mp5::fuzz
