// Seeded random Domino-program generator for differential fuzzing and
// property tests (promoted from tests/program_gen.hpp).
//
// Generated programs use each register with one fixed index expression (a
// Banzai single-memory-port requirement), but — unlike the original test
// helper — the index *shape* varies per register: plain `p.f % size`,
// offset `(p.f + c) % size`, or hashed `hash2(p.f, p.g) % size`. The
// expression grammar additionally covers ternaries, nested ifs, and the
// hash2/hash3/min/max builtins.
//
// Cyclic state dependencies can still arise and are rejected by the
// compiler — callers skip those seeds (the fuzz driver counts them).
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"

namespace mp5::fuzz {

class ProgramGen {
public:
  struct Options {
    int min_fields = 2;
    int max_fields = 4;
    int min_regs = 1;
    int max_regs = 3;
    int max_reg_size = 8;
    int min_stmts = 3;
    int max_stmts = 8;
    /// Maximum statement nesting (ifs inside ifs).
    int max_if_depth = 3;
    /// Enable the widened grammar: hash3/min/max calls, <=/>/!=
    /// comparisons, and varied per-register index shapes. Off reproduces
    /// the original narrow test-helper grammar distribution.
    bool wide = true;
  };

  explicit ProgramGen(std::uint64_t seed, const Options& opts);
  explicit ProgramGen(std::uint64_t seed) : ProgramGen(seed, Options()) {}

  /// Generate one program. Each call advances the seeded stream.
  std::string generate();

  /// Number of packet fields of the most recently generated program.
  int num_fields() const { return num_fields_; }

private:
  std::string reg_ref(int r);
  std::string expr(int depth);
  std::string stmt(int depth);

  Options opts_;
  Rng rng_;
  int num_fields_ = 0;
  int num_regs_ = 0;
  int reg_size_[8] = {};
  std::string reg_index_[8]; // fixed per-register index expression
};

} // namespace mp5::fuzz
