// Seeded packet-trace generator and mutator for the differential fuzzer.
//
// Traces are generated against a *value profile* drawn per trace (small
// field domains collide register indices and stress ordering; large and
// negative domains stress arithmetic), paced back to back at line rate
// with optional idle gaps (which exercise the simulator's fast-forward
// path and remap boundaries).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "trace/trace.hpp"

namespace mp5::fuzz {

struct TraceGenOptions {
  std::size_t min_packets = 8;
  std::size_t max_packets = 96;
  /// Pacing: arrivals are clocked at line rate for this many pipelines.
  std::uint32_t pipelines = 4;
  double load = 1.0;
  /// Probability that the trace draws negative field values too.
  double negative_chance = 0.25;
  /// Probability that idle gaps are inserted between some arrivals.
  double gap_chance = 0.3;
};

/// Generate a seeded trace whose packets carry `num_fields` field values.
Trace generate_trace(std::uint64_t seed, std::size_t num_fields,
                     const TraceGenOptions& opts = {});

/// Apply one random structural or value mutation (remove / duplicate a
/// packet, tweak / zero / swap field values) and re-pace arrivals.
void mutate_trace(Trace& trace, Rng& rng, std::size_t num_fields,
                  const TraceGenOptions& opts = {});

/// Rewrite arrival times back to back at line rate (canonical pacing),
/// preserving packet order. Used after structural mutations and by the
/// shrinker's trace canonicalization.
void repace(Trace& trace, std::uint32_t pipelines, double load = 1.0);

} // namespace mp5::fuzz
