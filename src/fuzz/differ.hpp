// Differential-fuzzing driver: for each seed, generate a program and a
// trace, then run three executors and cross-check them —
//   1. the AstInterp oracle (direct source semantics),
//   2. the banzai::SinglePipeline reference (compiled PVSM, §2.2), and
//   3. the MP5 simulator across a configuration matrix
//      (k ∈ {2,4,8} × sharding policy × engine threads × fast-forward
//       on/off × reference_rebalance on/off)
// via check_equivalence. Every run is lossless (unbounded FIFOs) with the
// paranoid invariant watchdog armed, so a failure is a divergence, a drop
// in a lossless config, or a crash/invariant violation — exactly the
// Theorem 1 obligations (§2.2.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "domino/ast.hpp"
#include "fuzz/program_gen.hpp"
#include "fuzz/shrink.hpp"
#include "fuzz/trace_gen.hpp"
#include "mp5/options.hpp"
#include "trace/trace.hpp"

namespace mp5::fuzz {

/// One cell of the simulator configuration matrix.
struct SimConfig {
  /// Consistency design for this cell. kMp5 cells exercise the Mp5Simulator
  /// knob axes below; kScr/kRelaxed cells run the replicated-state
  /// baselines, whose only knobs are pipelines, staleness (relaxed),
  /// fast_forward and checkpoint_restore — the MP5-only axes must stay at
  /// their defaults (to_options() would otherwise be rejected at
  /// simulator construction).
  DesignVariant variant = DesignVariant::kMp5;
  /// Staleness bound Δ for kRelaxed cells; 0 otherwise.
  std::uint32_t staleness = 0;
  std::uint32_t pipelines = 4;
  ShardingPolicy sharding = ShardingPolicy::kDynamic;
  /// Engine threads; 1 = sequential engine, >1 = parallel lane engine.
  std::uint32_t threads = 1;
  bool fast_forward = true;
  bool reference_rebalance = false;
  /// Cycle-walk engine: lockstep dense scan or event-driven bitmap walk.
  SimEngine engine = SimEngine::kLockstep;
  std::uint32_t remap_period = 32;
  std::size_t fifo_capacity = 0; // 0 = unbounded (lossless)
  std::uint64_t seed = 1;

  /// Checkpoint/restore column: after the plain run passes, re-run the
  /// cell with a mid-run checkpoint, restore it into a fresh simulator,
  /// and require the finished SimResult to be field-identical to the
  /// uninterrupted run (the mp5-checkpoint v1 bit-identity contract).
  bool checkpoint_restore = false;

  /// Stable human-readable id, e.g. "k4-dynamic-t1-ff-incr"
  /// (event-engine cells get an extra "-ev" suffix); variant cells use
  /// "k4-scr-ff" / "k2-relaxed64-noff".
  std::string name() const;
  SimOptions to_options() const;
};

std::string to_string(ShardingPolicy policy);
/// Inverse of to_string; throws ConfigError on unknown names.
ShardingPolicy sharding_from_string(const std::string& name);

/// The full ISSUE matrix: 3 k-values x 3 sharding policies x 2 thread
/// counts x fast-forward on/off x reference/incremental rebalance x
/// lockstep/event engine.
std::vector<SimConfig> full_config_matrix();
/// A small subset for smoke tests (one config per distinguishing axis).
std::vector<SimConfig> quick_config_matrix();

/// Replicated-variant matrix (ISSUE 10): k ∈ {2,4,8} × {scr, relaxed Δ1,
/// relaxed Δ64, relaxed Δ512} × fast-forward on/off. These cells run in
/// *expectation mode*: divergence from the single-pipeline reference is a
/// classification (the designs genuinely relax consistency), not a
/// failure — only crashes, drops, nondeterminism and checkpoint breakage
/// are unexpected.
std::vector<SimConfig> variant_config_matrix();
/// Small variant subset for smoke tests.
std::vector<SimConfig> quick_variant_matrix();

enum class FailureKind {
  kNone,
  kOracleDivergence,     // AstInterp vs single-pipeline reference
  kSimDivergence,        // MP5 simulator vs single-pipeline reference
  kCheckpointDivergence, // restore-from-checkpoint broke bit-identity
  kCrash,                // exception / invariant violation while simulating
  /// A replicated variant (scr/relaxed) diverged from the single-pipeline
  /// reference. Never produced by run_seed/check (expectation mode
  /// classifies it instead); check_variant_config returns it so that
  /// shrunk divergence *witnesses* can be replayed from the corpus.
  kVariantDivergence,
};

const char* to_string(FailureKind kind);

struct Failure {
  FailureKind kind = FailureKind::kNone;
  /// Failing matrix cell (empty for oracle divergences).
  SimConfig config;
  std::string detail;
  explicit operator bool() const { return kind != FailureKind::kNone; }
};

/// Expectation-mode classification of one replicated-variant cell.
struct VariantCellOutcome {
  SimConfig config;
  /// True when the variant matched the single-pipeline reference exactly
  /// (final registers + declared egress fields).
  bool equivalent = false;
  /// First difference when !equivalent (empty otherwise).
  std::string detail;
};

struct SeedOutcome {
  std::uint64_t seed = 0;
  /// False when the generated program was legitimately rejected by the
  /// compiler (cyclic state dependencies etc.) and the seed was skipped.
  bool compiled = false;
  std::size_t configs_checked = 0;
  std::string source;
  domino::Ast program;
  Trace trace;
  Failure failure;
  /// Per-variant-cell equivalence classification (empty when the MP5
  /// matrix already failed, or when variant_matrix is empty).
  std::vector<VariantCellOutcome> variant_cells;
};

struct DifferOptions {
  std::vector<SimConfig> matrix = full_config_matrix();
  /// Replicated-variant cells checked in expectation mode after the MP5
  /// matrix passes. Clear to skip variants entirely.
  std::vector<SimConfig> variant_matrix = variant_config_matrix();
  ProgramGen::Options gen;
  TraceGenOptions trace_gen;
  /// Extra seeded trace mutations applied after generation (0-3).
  std::uint32_t trace_mutations = 2;
  /// Fault-injection self-test: run the oracle with an off-by-one in its
  /// floor_mod index reduction. The fuzzer must then catch and shrink the
  /// resulting divergence — proving the detection pipeline works.
  bool inject_floor_mod_bug = false;
  /// Turn on SimConfig::checkpoint_restore for every matrix cell
  /// (mp5fuzz --checkpoint): each cell additionally proves
  /// checkpoint → restore → identical SimResult.
  bool checkpoint_restore = false;
};

class Differ {
public:
  explicit Differ(DifferOptions opts = {});

  /// Generate program + trace for one seed and cross-check everything.
  SeedOutcome run_seed(std::uint64_t seed) const;

  /// Cross-check one (program, trace) pair against the whole matrix.
  /// Stops at the first failure.
  Failure check(const domino::Ast& ast, const Trace& trace) const;

  /// Check a single matrix cell (used by reproducer replay).
  Failure check_config(const domino::Ast& ast, const Trace& trace,
                       const SimConfig& config) const;

  /// Check a single replicated-variant cell *strictly*: unlike the
  /// expectation-mode matrix walk, divergence from the reference comes
  /// back as kVariantDivergence (crashes / drops / nondeterminism /
  /// checkpoint breakage keep their own kinds). Used by witness shrinking
  /// and reproducer replay.
  Failure check_variant_config(const domino::Ast& ast, const Trace& trace,
                               const SimConfig& config) const;

  /// Shrink predicate reproducing `failure`: oracle divergences re-run
  /// only the oracle-vs-reference comparison; simulator divergences and
  /// crashes re-run only the failing matrix cell. Variant-divergence
  /// witnesses additionally require the MP5 cell with the same pipeline
  /// count to PASS — a witness demonstrates the variant diverging where
  /// MP5 does not. Deterministic.
  FailurePredicate make_predicate(const Failure& failure) const;

  const DifferOptions& options() const { return opts_; }

private:
  Failure check_oracle(const domino::Ast& ast, const Trace& trace) const;

  DifferOptions opts_;
};

} // namespace mp5::fuzz
