#include "fuzz/ast_printer.hpp"

#include <sstream>

#include "common/error.hpp"

namespace mp5::fuzz {
namespace {

using domino::Ast;
using domino::Expr;
using domino::Stmt;

const char* bin_token(ir::BinOp op) {
  switch (op) {
    case ir::BinOp::kAdd: return "+";
    case ir::BinOp::kSub: return "-";
    case ir::BinOp::kMul: return "*";
    case ir::BinOp::kDiv: return "/";
    case ir::BinOp::kMod: return "%";
    case ir::BinOp::kBitAnd: return "&";
    case ir::BinOp::kBitOr: return "|";
    case ir::BinOp::kBitXor: return "^";
    case ir::BinOp::kShl: return "<<";
    case ir::BinOp::kShr: return ">>";
    case ir::BinOp::kLt: return "<";
    case ir::BinOp::kLe: return "<=";
    case ir::BinOp::kGt: return ">";
    case ir::BinOp::kGe: return ">=";
    case ir::BinOp::kEq: return "==";
    case ir::BinOp::kNe: return "!=";
    case ir::BinOp::kLAnd: return "&&";
    case ir::BinOp::kLOr: return "||";
    case ir::BinOp::kMin: return "min";
    case ir::BinOp::kMax: return "max";
  }
  throw Error("bin_token: bad operator");
}

void print_expr(std::ostream& os, const Expr& e, const std::string& param) {
  switch (e.kind) {
    case Expr::Kind::kIntLit:
      if (e.int_value < 0) {
        os << "(" << e.int_value << ")";
      } else {
        os << e.int_value;
      }
      return;
    case Expr::Kind::kField:
      os << param << "." << e.name;
      return;
    case Expr::Kind::kIdent:
      os << e.name;
      return;
    case Expr::Kind::kReg:
      os << e.name << "[";
      print_expr(os, *e.index, param);
      os << "]";
      return;
    case Expr::Kind::kUnary:
      os << "("
         << (e.un == ir::UnOp::kNeg ? "-"
             : e.un == ir::UnOp::kLNot ? "!" : "~");
      print_expr(os, *e.a, param);
      os << ")";
      return;
    case Expr::Kind::kBinary: {
      // min/max only exist as calls at source level.
      if (e.bin == ir::BinOp::kMin || e.bin == ir::BinOp::kMax) {
        os << bin_token(e.bin) << "(";
        print_expr(os, *e.a, param);
        os << ", ";
        print_expr(os, *e.b, param);
        os << ")";
        return;
      }
      os << "(";
      print_expr(os, *e.a, param);
      os << " " << bin_token(e.bin) << " ";
      print_expr(os, *e.b, param);
      os << ")";
      return;
    }
    case Expr::Kind::kTernary:
      os << "(";
      print_expr(os, *e.a, param);
      os << " ? ";
      print_expr(os, *e.b, param);
      os << " : ";
      print_expr(os, *e.c, param);
      os << ")";
      return;
    case Expr::Kind::kCall: {
      os << e.name << "(";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i) os << ", ";
        print_expr(os, *e.args[i], param);
      }
      os << ")";
      return;
    }
  }
  throw Error("print_expr: bad expression kind");
}

void print_stmt(std::ostream& os, const Stmt& stmt, const std::string& param,
                int depth) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  switch (stmt.kind) {
    case Stmt::Kind::kAssign:
      os << pad;
      print_expr(os, *stmt.lhs, param);
      os << " = ";
      print_expr(os, *stmt.rhs, param);
      os << ";\n";
      return;
    case Stmt::Kind::kIf: {
      os << pad << "if (";
      print_expr(os, *stmt.cond, param);
      os << ") {\n";
      for (const auto& s : stmt.then_body) print_stmt(os, *s, param, depth + 1);
      os << pad << "}";
      if (!stmt.else_body.empty()) {
        os << " else {\n";
        for (const auto& s : stmt.else_body) {
          print_stmt(os, *s, param, depth + 1);
        }
        os << pad << "}";
      }
      os << "\n";
      return;
    }
  }
}

} // namespace

std::string to_source(const Expr& expr) {
  std::ostringstream os;
  print_expr(os, expr, "p");
  return os.str();
}

std::string to_source(const Ast& ast) {
  std::ostringstream os;
  os << "struct Packet {";
  for (const auto& field : ast.fields) os << " int " << field << ";";
  os << " };\n";
  for (const auto& [name, value] : ast.constants) {
    os << "const int " << name << " = " << value << ";\n";
  }
  for (const auto& spec : ast.registers) {
    os << "int " << spec.name;
    if (spec.size != 1) os << "[" << spec.size << "]";
    if (!spec.init.empty()) {
      if (spec.size == 1 && spec.init.size() == 1) {
        os << " = " << spec.init[0];
      } else {
        os << " = {";
        for (std::size_t i = 0; i < spec.init.size(); ++i) {
          if (i) os << ", ";
          os << spec.init[i];
        }
        os << "}";
      }
    }
    os << ";\n";
  }
  const std::string param =
      ast.packet_param.empty() ? "p" : ast.packet_param;
  os << "void " << (ast.func_name.empty() ? "prog" : ast.func_name)
     << "(struct Packet " << param << ") {\n";
  for (const auto& stmt : ast.body) print_stmt(os, *stmt, param, 1);
  os << "}\n";
  return os.str();
}

} // namespace mp5::fuzz
