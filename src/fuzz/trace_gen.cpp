#include "fuzz/trace_gen.hpp"

#include <algorithm>

namespace mp5::fuzz {
namespace {

/// Field-value domain for one trace, drawn once per generation.
struct ValueProfile {
  Value lo = 0;
  Value hi = 15;
};

ValueProfile draw_profile(Rng& rng, double negative_chance) {
  static constexpr Value kBounds[] = {2, 4, 16, 64, 1024, 1 << 20};
  ValueProfile p;
  p.hi = kBounds[rng.next_below(std::size(kBounds))] - 1;
  if (rng.chance(negative_chance)) p.lo = -(p.hi + 1);
  return p;
}

} // namespace

Trace generate_trace(std::uint64_t seed, std::size_t num_fields,
                     const TraceGenOptions& opts) {
  Rng rng(seed);
  const auto packets = static_cast<std::size_t>(
      rng.next_in(static_cast<std::int64_t>(opts.min_packets),
                  static_cast<std::int64_t>(opts.max_packets)));
  const ValueProfile profile = draw_profile(rng, opts.negative_chance);
  const std::uint64_t flows = static_cast<std::uint64_t>(rng.next_in(1, 8));
  const bool gappy = rng.chance(opts.gap_chance);

  Trace trace;
  trace.reserve(packets);
  LineRateClock clock(opts.pipelines, opts.load);
  double gap = 0.0;
  for (std::size_t i = 0; i < packets; ++i) {
    TraceItem item;
    if (gappy && rng.chance(0.1)) gap += static_cast<double>(rng.next_in(1, 200));
    item.arrival_time = clock.next(64) + gap;
    item.port = static_cast<std::uint32_t>(i % 64);
    item.size_bytes = 64;
    item.flow = rng.next_below(flows);
    item.fields.resize(num_fields);
    for (auto& v : item.fields) v = rng.next_in(profile.lo, profile.hi);
    trace.push_back(std::move(item));
  }
  return trace;
}

void mutate_trace(Trace& trace, Rng& rng, std::size_t num_fields,
                  const TraceGenOptions& opts) {
  if (trace.empty()) return;
  const auto pick = rng.next_below(5);
  const std::size_t i = rng.next_below(trace.size());
  switch (pick) {
    case 0: // remove a packet
      if (trace.size() > 1) trace.erase(trace.begin() + i);
      break;
    case 1: { // duplicate a packet's payload as a new arrival
      TraceItem dup = trace[i];
      trace.insert(trace.begin() + rng.next_below(trace.size() + 1),
                   std::move(dup));
      break;
    }
    case 2: { // tweak one field value
      if (num_fields == 0) break;
      Value& v = trace[i].fields[rng.next_below(num_fields)];
      switch (rng.next_below(3)) {
        case 0: v += rng.chance(0.5) ? 1 : -1; break;
        case 1: v = 0; break;
        default: v = rng.next_in(-8, 1 << 20); break;
      }
      break;
    }
    case 3: { // swap two packets' payloads
      const std::size_t j = rng.next_below(trace.size());
      std::swap(trace[i].fields, trace[j].fields);
      std::swap(trace[i].flow, trace[j].flow);
      break;
    }
    default: // zero a packet's payload
      std::fill(trace[i].fields.begin(), trace[i].fields.end(), Value{0});
      break;
  }
  repace(trace, opts.pipelines, opts.load);
}

void repace(Trace& trace, std::uint32_t pipelines, double load) {
  LineRateClock clock(pipelines, load);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i].arrival_time = clock.next(trace[i].size_bytes);
    trace[i].port = static_cast<std::uint32_t>(i % 64);
  }
}

} // namespace mp5::fuzz
