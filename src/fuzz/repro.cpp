#include "fuzz/repro.hpp"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "domino/parser.hpp"
#include "telemetry/json_writer.hpp"
#include "trace/trace_io.hpp"

namespace mp5::fuzz {
namespace {

namespace fs = std::filesystem;

FailureKind kind_from_string(const std::string& name) {
  if (name == "pass" || name == "none") return FailureKind::kNone;
  if (name == "oracle-divergence") return FailureKind::kOracleDivergence;
  if (name == "sim-divergence") return FailureKind::kSimDivergence;
  if (name == "checkpoint-divergence") return FailureKind::kCheckpointDivergence;
  if (name == "crash") return FailureKind::kCrash;
  if (name == "variant-divergence") return FailureKind::kVariantDivergence;
  throw ConfigError("reproducer: unknown expect kind '" + name + "'");
}

std::string stem_of(const std::string& json_path) {
  constexpr std::string_view kSuffix = ".json";
  if (json_path.size() <= kSuffix.size() ||
      json_path.compare(json_path.size() - kSuffix.size(), kSuffix.size(),
                        kSuffix) != 0) {
    throw ConfigError("reproducer path must end in .json: " + json_path);
  }
  return json_path.substr(0, json_path.size() - kSuffix.size());
}

// --- targeted JSON key scanning -----------------------------------------
// The metadata schema is flat (one nested "config" object, no arrays), so
// instead of a full JSON parser we scan for `"key":` and read the scalar
// that follows. The config object is carved out of the text first so its
// "seed" cannot shadow the top-level "seed".

std::size_t find_key(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  std::size_t pos = text.find(needle);
  if (pos == std::string::npos) {
    throw ConfigError("reproducer: missing key '" + key + "'");
  }
  pos += needle.size();
  while (pos < text.size() &&
         (std::isspace(static_cast<unsigned char>(text[pos])) ||
          text[pos] == ':')) {
    ++pos;
  }
  return pos;
}

std::string scan_string(const std::string& text, const std::string& key) {
  std::size_t pos = find_key(text, key);
  if (pos >= text.size() || text[pos] != '"') {
    throw ConfigError("reproducer: key '" + key + "' is not a string");
  }
  ++pos;
  std::string out;
  while (pos < text.size() && text[pos] != '"') {
    char c = text[pos++];
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (pos >= text.size()) break;
    const char esc = text[pos++];
    switch (esc) {
      case 'n': out.push_back('\n'); break;
      case 't': out.push_back('\t'); break;
      case 'r': out.push_back('\r'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'u': {
        unsigned code = 0;
        for (int i = 0; i < 4 && pos < text.size(); ++i) {
          code = code * 16 +
                 static_cast<unsigned>(
                     std::stoi(std::string(1, text[pos++]), nullptr, 16));
        }
        out.push_back(static_cast<char>(code & 0x7f));
        break;
      }
      default: out.push_back(esc); break;
    }
  }
  return out;
}

std::int64_t scan_int(const std::string& text, const std::string& key) {
  const std::size_t pos = find_key(text, key);
  try {
    return std::stoll(text.substr(pos, 24));
  } catch (const std::exception&) {
    throw ConfigError("reproducer: key '" + key + "' is not an integer");
  }
}

bool scan_bool(const std::string& text, const std::string& key) {
  const std::size_t pos = find_key(text, key);
  if (text.compare(pos, 4, "true") == 0) return true;
  if (text.compare(pos, 5, "false") == 0) return false;
  throw ConfigError("reproducer: key '" + key + "' is not a boolean");
}

/// Absence-tolerant scan_bool for keys added after schema_version 1
/// shipped: corpus files written before the key existed read as
/// `fallback` instead of failing to load.
bool scan_bool_or(const std::string& text, const std::string& key,
                  bool fallback) {
  if (text.find("\"" + key + "\"") == std::string::npos) return fallback;
  return scan_bool(text, key);
}

/// Splits `text` into (config-object substring, everything else).
std::pair<std::string, std::string> split_config(const std::string& text) {
  const std::size_t key = text.find("\"config\"");
  if (key == std::string::npos) {
    throw ConfigError("reproducer: missing key 'config'");
  }
  const std::size_t open = text.find('{', key);
  const std::size_t close = text.find('}', open);
  if (open == std::string::npos || close == std::string::npos) {
    throw ConfigError("reproducer: malformed 'config' object");
  }
  return {text.substr(open, close - open + 1),
          text.substr(0, key) + text.substr(close + 1)};
}

} // namespace

void save_reproducer(const Reproducer& repro, const std::string& json_path) {
  const std::string stem = stem_of(json_path);
  const std::string dom_path = stem + ".dom";
  const std::string trace_path = stem + ".trace.csv";

  {
    std::ofstream dom(dom_path);
    if (!dom) throw Error("cannot write " + dom_path);
    dom << repro.program_source;
  }
  save_trace_file(repro.trace, trace_path);

  std::ofstream out(json_path);
  if (!out) throw Error("cannot write " + json_path);
  telemetry::JsonWriter w(out);
  w.begin_object();
  w.kv("schema", "mp5-fuzz-repro");
  w.kv("schema_version", 1);
  w.kv("expect", repro.kind == FailureKind::kNone ? "pass"
                                                  : to_string(repro.kind));
  w.kv("seed", repro.seed);
  w.kv("inject_floor_mod_bug", repro.inject_floor_mod_bug);
  w.kv("detail", repro.detail);
  // Side files are referenced by basename: a reproducer directory can be
  // moved wholesale.
  w.kv("program", fs::path(dom_path).filename().string());
  w.kv("trace", fs::path(trace_path).filename().string());
  w.key("config").begin_object();
  w.kv("variant", mp5::to_string(repro.config.variant));
  w.kv("staleness", repro.config.staleness);
  w.kv("pipelines", repro.config.pipelines);
  w.kv("sharding", to_string(repro.config.sharding));
  w.kv("threads", repro.config.threads);
  w.kv("fast_forward", repro.config.fast_forward);
  w.kv("reference_rebalance", repro.config.reference_rebalance);
  w.kv("engine", mp5::to_string(repro.config.engine));
  w.kv("remap_period", repro.config.remap_period);
  w.kv("fifo_capacity", static_cast<std::uint64_t>(repro.config.fifo_capacity));
  w.kv("seed", repro.config.seed);
  w.kv("checkpoint_restore", repro.config.checkpoint_restore);
  w.end_object();
  w.end_object();
  out << "\n";
  if (!out) throw Error("failed writing " + json_path);
}

Reproducer load_reproducer(const std::string& json_path) {
  std::ifstream in(json_path);
  if (!in) throw Error("cannot read " + json_path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  if (scan_string(text, "schema") != "mp5-fuzz-repro") {
    throw ConfigError("reproducer: bad schema in " + json_path);
  }
  if (scan_int(text, "schema_version") != 1) {
    throw ConfigError("reproducer: unsupported version in " + json_path);
  }

  const auto [config_text, top_text] = split_config(text);

  Reproducer repro;
  repro.kind = kind_from_string(scan_string(top_text, "expect"));
  repro.seed = static_cast<std::uint64_t>(scan_int(top_text, "seed"));
  repro.inject_floor_mod_bug = scan_bool(top_text, "inject_floor_mod_bug");
  repro.detail = scan_string(top_text, "detail");

  // Keys added with the replicated variants (ISSUE 10); corpus files
  // written before them existed mean the (then-only) MP5 design.
  repro.config.variant =
      config_text.find("\"variant\"") == std::string::npos
          ? DesignVariant::kMp5
          : variant_from_string(scan_string(config_text, "variant"));
  repro.config.staleness =
      config_text.find("\"staleness\"") == std::string::npos
          ? 0
          : static_cast<std::uint32_t>(scan_int(config_text, "staleness"));
  repro.config.pipelines =
      static_cast<std::uint32_t>(scan_int(config_text, "pipelines"));
  repro.config.sharding =
      sharding_from_string(scan_string(config_text, "sharding"));
  repro.config.threads =
      static_cast<std::uint32_t>(scan_int(config_text, "threads"));
  repro.config.fast_forward = scan_bool(config_text, "fast_forward");
  repro.config.reference_rebalance =
      scan_bool(config_text, "reference_rebalance");
  // Key added with the event engine; corpus files written before it
  // existed mean the (then-only) lockstep engine.
  repro.config.engine =
      config_text.find("\"engine\"") == std::string::npos
          ? SimEngine::kLockstep
          : engine_from_string(scan_string(config_text, "engine"));
  repro.config.remap_period =
      static_cast<std::uint32_t>(scan_int(config_text, "remap_period"));
  repro.config.fifo_capacity =
      static_cast<std::size_t>(scan_int(config_text, "fifo_capacity"));
  repro.config.seed = static_cast<std::uint64_t>(scan_int(config_text, "seed"));
  repro.config.checkpoint_restore =
      scan_bool_or(config_text, "checkpoint_restore", false);

  const fs::path dir = fs::path(json_path).parent_path();
  const fs::path dom_path = dir / scan_string(top_text, "program");
  const fs::path trace_path = dir / scan_string(top_text, "trace");

  std::ifstream dom(dom_path);
  if (!dom) throw Error("cannot read " + dom_path.string());
  std::ostringstream dom_buf;
  dom_buf << dom.rdbuf();
  repro.program_source = dom_buf.str();
  repro.trace = load_trace_file(trace_path.string());
  return repro;
}

Failure replay(const Reproducer& repro) {
  const domino::Ast ast = domino::parse(repro.program_source);
  DifferOptions opts;
  opts.inject_floor_mod_bug = repro.inject_floor_mod_bug;
  if (repro.kind == FailureKind::kOracleDivergence) {
    // check() then runs the oracle comparison only.
    opts.matrix.clear();
    opts.variant_matrix.clear();
    return Differ(std::move(opts)).check(ast, repro.trace);
  }
  if (repro.kind == FailureKind::kNone) {
    opts.matrix = quick_config_matrix();
    opts.variant_matrix = quick_variant_matrix();
    return Differ(std::move(opts)).check(ast, repro.trace);
  }
  if (repro.kind == FailureKind::kVariantDivergence) {
    // A divergence witness demonstrates the *gap*: MP5 at the same
    // pipeline count must pass before the variant cell is required to
    // diverge. If MP5 itself fails, that (unexpected) failure is
    // returned and the replay comparison flags it.
    Differ differ(std::move(opts));
    SimConfig mp5_cell;
    mp5_cell.pipelines = repro.config.pipelines;
    mp5_cell.fast_forward = repro.config.fast_forward;
    if (Failure f = differ.check_config(ast, repro.trace, mp5_cell)) return f;
    return differ.check_variant_config(ast, repro.trace, repro.config);
  }
  return Differ(std::move(opts)).check_config(ast, repro.trace, repro.config);
}

} // namespace mp5::fuzz
