// Self-contained reproducers for differential-fuzzing failures.
//
// A reproducer is three side-by-side files sharing one stem:
//   <stem>.json      — metadata: schema "mp5-fuzz-repro" v1, the seed, the
//                      expected outcome ("pass" or a FailureKind), the
//                      failing SimConfig, and pointers to the side files
//   <stem>.dom       — the (shrunk) Domino program
//   <stem>.trace.csv — the (shrunk) packet trace
// Committed reproducers live under tests/corpus/ and are replayed by
// test_fuzz_replay; `mp5fuzz --replay <stem>.json` replays one by hand.
#pragma once

#include <string>
#include <vector>

#include "fuzz/differ.hpp"
#include "trace/trace.hpp"

namespace mp5::fuzz {

struct Reproducer {
  /// Expected outcome when replayed. kNone means "expect: pass" — the
  /// corpus entry is a regression witness for a *fixed* bug.
  FailureKind kind = FailureKind::kNone;
  /// Failing matrix cell; ignored for kNone/kOracleDivergence entries.
  SimConfig config;
  std::uint64_t seed = 0;
  /// Replay with the off-by-one oracle fault injected (self-test entries).
  bool inject_floor_mod_bug = false;
  /// Human triage note (original failure detail).
  std::string detail;
  std::string program_source;
  Trace trace;
};

/// Writes <stem>.json, <stem>.dom and <stem>.trace.csv, where <stem> is
/// `json_path` minus its ".json" suffix. Throws Error on I/O failure.
void save_reproducer(const Reproducer& repro, const std::string& json_path);

/// Loads the metadata and both side files back. Throws Error /
/// ConfigError on missing files or malformed metadata.
Reproducer load_reproducer(const std::string& json_path);

/// Replays a reproducer: runs the scoped check (oracle-only for oracle
/// divergences, the stored config cell otherwise, the full quick matrix
/// plus oracle for expect-pass entries) and returns the observed failure.
/// The caller compares `.kind` against `repro.kind`.
Failure replay(const Reproducer& repro);

} // namespace mp5::fuzz
