#include "fuzz/shrink.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "fuzz/trace_gen.hpp"

namespace mp5::fuzz {
namespace {

using domino::Ast;
using domino::clone;
using domino::Expr;
using domino::ExprPtr;
using domino::Stmt;
using domino::StmtPtr;

ExprPtr make_int(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kIntLit;
  e->int_value = v;
  return e;
}

// ---- statement addressing (pre-order over nested bodies) -----------------

std::size_t count_stmts(const std::vector<StmtPtr>& body) {
  std::size_t n = 0;
  for (const auto& stmt : body) {
    ++n;
    n += count_stmts(stmt->then_body);
    n += count_stmts(stmt->else_body);
  }
  return n;
}

/// Position of a statement inside its owning body list.
struct StmtLoc {
  std::vector<StmtPtr>* body = nullptr;
  std::size_t pos = 0;
};

/// Locate the statement with pre-order index `idx` (a statement counts
/// before the statements nested inside it). Returns true when found.
bool locate_stmt(std::vector<StmtPtr>& body, std::size_t& idx, StmtLoc& out) {
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (idx == 0) {
      out = {&body, i};
      return true;
    }
    --idx;
    if (locate_stmt(body[i]->then_body, idx, out)) return true;
    if (locate_stmt(body[i]->else_body, idx, out)) return true;
  }
  return false;
}

/// Delete the statement with pre-order index `idx` (with everything
/// nested inside it). Returns true when found.
bool delete_stmt(std::vector<StmtPtr>& body, std::size_t idx) {
  StmtLoc loc;
  if (!locate_stmt(body, idx, loc)) return false;
  loc.body->erase(loc.body->begin() + static_cast<std::ptrdiff_t>(loc.pos));
  return true;
}

/// Replace the if-statement with pre-order index `idx` by one of its
/// branch bodies spliced in place. Returns false when the indexed
/// statement is not an if.
bool flatten_if(std::vector<StmtPtr>& body, std::size_t idx, bool use_else) {
  StmtLoc loc;
  if (!locate_stmt(body, idx, loc)) return false;
  StmtPtr& stmt = (*loc.body)[loc.pos];
  if (stmt->kind != Stmt::Kind::kIf) return false;
  std::vector<StmtPtr> branch =
      use_else ? std::move(stmt->else_body) : std::move(stmt->then_body);
  loc.body->erase(loc.body->begin() + static_cast<std::ptrdiff_t>(loc.pos));
  loc.body->insert(loc.body->begin() + static_cast<std::ptrdiff_t>(loc.pos),
                   std::make_move_iterator(branch.begin()),
                   std::make_move_iterator(branch.end()));
  return true;
}

// ---- expression addressing ----------------------------------------------

/// Collect every mutable expression slot in evaluation position: rhs and
/// register-index expressions of assignments, if conditions, and all of
/// their descendants. Packet-field nodes are leaves (their args[] records
/// the struct value name, not an evaluated operand).
void collect_expr(std::vector<ExprPtr*>& out, ExprPtr& e) {
  out.push_back(&e);
  switch (e->kind) {
    case Expr::Kind::kReg:
      collect_expr(out, e->index);
      break;
    case Expr::Kind::kUnary:
      collect_expr(out, e->a);
      break;
    case Expr::Kind::kBinary:
      collect_expr(out, e->a);
      collect_expr(out, e->b);
      break;
    case Expr::Kind::kTernary:
      collect_expr(out, e->a);
      collect_expr(out, e->b);
      collect_expr(out, e->c);
      break;
    case Expr::Kind::kCall:
      for (auto& arg : e->args) collect_expr(out, arg);
      break;
    default:
      break;
  }
}

void collect_sites(std::vector<ExprPtr*>& out, std::vector<StmtPtr>& body) {
  for (auto& stmt : body) {
    switch (stmt->kind) {
      case Stmt::Kind::kAssign:
        if (stmt->lhs->kind == Expr::Kind::kReg) {
          collect_expr(out, stmt->lhs->index);
        }
        collect_expr(out, stmt->rhs);
        break;
      case Stmt::Kind::kIf:
        collect_expr(out, stmt->cond);
        collect_sites(out, stmt->then_body);
        collect_sites(out, stmt->else_body);
        break;
    }
  }
}

/// Candidate replacements for one expression site, tried in order:
/// 0 -> literal 0, 1 -> literal 1, >= 2 -> hoist the (variant-2)-th child.
/// Returns false when the variant does not apply to this node.
bool apply_expr_variant(ExprPtr& slot, std::size_t variant) {
  Expr& e = *slot;
  if (variant == 0) {
    if (e.kind == Expr::Kind::kIntLit && e.int_value == 0) return false;
    slot = make_int(0);
    return true;
  }
  if (variant == 1) {
    if (e.kind == Expr::Kind::kIntLit) return false; // 0/1 already minimal
    slot = make_int(1);
    return true;
  }
  std::vector<ExprPtr*> children;
  switch (e.kind) {
    case Expr::Kind::kUnary:
      children = {&e.a};
      break;
    case Expr::Kind::kBinary:
      children = {&e.a, &e.b};
      break;
    case Expr::Kind::kTernary:
      children = {&e.b, &e.c}; // hoisting the condition rarely simplifies
      break;
    case Expr::Kind::kCall:
      for (auto& arg : e.args) children.push_back(&arg);
      break;
    default:
      return false;
  }
  const std::size_t child = variant - 2;
  if (child >= children.size()) return false;
  ExprPtr hoisted = std::move(*children[child]);
  slot = std::move(hoisted);
  return true;
}

constexpr std::size_t kMaxExprVariants = 2 + 5; // 0, 1, up to 5 children

// ---- name-usage analysis -------------------------------------------------

void used_names_expr(const Expr& e, std::unordered_set<std::string>& idents,
                     std::unordered_set<std::string>& fields) {
  switch (e.kind) {
    case Expr::Kind::kField:
      fields.insert(e.name);
      return;
    case Expr::Kind::kIdent:
      idents.insert(e.name);
      return;
    case Expr::Kind::kReg:
      idents.insert(e.name);
      used_names_expr(*e.index, idents, fields);
      return;
    case Expr::Kind::kUnary:
      used_names_expr(*e.a, idents, fields);
      return;
    case Expr::Kind::kBinary:
      used_names_expr(*e.a, idents, fields);
      used_names_expr(*e.b, idents, fields);
      return;
    case Expr::Kind::kTernary:
      used_names_expr(*e.a, idents, fields);
      used_names_expr(*e.b, idents, fields);
      used_names_expr(*e.c, idents, fields);
      return;
    case Expr::Kind::kCall:
      for (const auto& arg : e.args) used_names_expr(*arg, idents, fields);
      return;
    default:
      return;
  }
}

void used_names(const std::vector<StmtPtr>& body,
                std::unordered_set<std::string>& idents,
                std::unordered_set<std::string>& fields) {
  for (const auto& stmt : body) {
    switch (stmt->kind) {
      case Stmt::Kind::kAssign:
        used_names_expr(*stmt->lhs, idents, fields);
        used_names_expr(*stmt->rhs, idents, fields);
        break;
      case Stmt::Kind::kIf:
        used_names_expr(*stmt->cond, idents, fields);
        used_names(stmt->then_body, idents, fields);
        used_names(stmt->else_body, idents, fields);
        break;
    }
  }
}

// ---- the shrinker --------------------------------------------------------

class Shrinker {
public:
  Shrinker(const Ast& program, const Trace& trace,
           const FailurePredicate& fails, const ShrinkOptions& opts)
      : fails_(fails), opts_(opts), cur_(clone(program)), trace_(trace) {}

  ShrinkResult run() {
    ShrinkResult out;
    if (!test(cur_, trace_)) {
      out.program = std::move(cur_);
      out.trace = std::move(trace_);
      out.evals = evals_;
      return out;
    }
    out.reproduced = true;
    for (std::size_t round = 0; round < opts_.max_rounds; ++round) {
      bool changed = false;
      changed |= pass_delete_stmts();
      changed |= pass_flatten_ifs();
      changed |= pass_simplify_exprs();
      changed |= pass_shrink_registers();
      changed |= pass_prune_decls();
      changed |= pass_ddmin_trace();
      changed |= pass_canonicalize_fields();
      changed |= pass_normalize_metadata();
      out.rounds = round + 1;
      if (!changed) break;
    }
    out.program = std::move(cur_);
    out.trace = std::move(trace_);
    out.evals = evals_;
    return out;
  }

private:
  bool test(const Ast& ast, const Trace& trace) {
    if (evals_ >= opts_.max_evals) return false;
    ++evals_;
    return fails_(ast, trace);
  }

  bool accept(Ast cand) {
    if (!test(cand, trace_)) return false;
    cur_ = std::move(cand);
    return true;
  }

  // Greedy statement deletion: keep retrying index i after a successful
  // deletion (the next statement shifted into it), stop at one statement.
  bool pass_delete_stmts() {
    bool changed = false;
    std::size_t i = 0;
    while (count_stmts(cur_.body) > 1 && i < count_stmts(cur_.body)) {
      Ast cand = clone(cur_);
      delete_stmt(cand.body, i);
      if (count_stmts(cand.body) == 0) {
        ++i; // deleting this one would empty the program
        continue;
      }
      if (accept(std::move(cand))) {
        changed = true;
      } else {
        ++i;
      }
    }
    return changed;
  }

  bool pass_flatten_ifs() {
    bool changed = false;
    std::size_t i = 0;
    while (i < count_stmts(cur_.body)) {
      bool accepted = false;
      for (const bool use_else : {false, true}) {
        Ast cand = clone(cur_);
        if (!flatten_if(cand.body, i, use_else)) continue;
        if (count_stmts(cand.body) == 0) continue;
        if (accept(std::move(cand))) {
          accepted = true;
          changed = true;
          break;
        }
      }
      if (!accepted) ++i;
    }
    return changed;
  }

  bool pass_simplify_exprs() {
    bool changed = false;
    std::size_t site = 0;
    for (;;) {
      std::vector<ExprPtr*> sites;
      collect_sites(sites, cur_.body);
      if (site >= sites.size()) break;
      bool accepted = false;
      for (std::size_t variant = 0; variant < kMaxExprVariants; ++variant) {
        Ast cand = clone(cur_);
        std::vector<ExprPtr*> cand_sites;
        collect_sites(cand_sites, cand.body);
        if (!apply_expr_variant(*cand_sites[site], variant)) continue;
        if (accept(std::move(cand))) {
          accepted = true;
          changed = true;
          break; // re-enumerate: the site now holds the replacement
        }
      }
      if (!accepted) ++site;
    }
    return changed;
  }

  // Try to shrink each register array to a scalar (then the whole array
  // access machinery drops out of the compiled program).
  bool pass_shrink_registers() {
    bool changed = false;
    for (std::size_t r = 0; r < cur_.registers.size(); ++r) {
      if (cur_.registers[r].size <= 1) continue;
      for (const std::size_t size : {std::size_t{1}, std::size_t{2}}) {
        if (cur_.registers[r].size <= size) continue;
        Ast cand = clone(cur_);
        cand.registers[r].size = size;
        if (cand.registers[r].init.size() > size) {
          cand.registers[r].init.resize(size);
        }
        if (accept(std::move(cand))) {
          changed = true;
          break;
        }
      }
    }
    return changed;
  }

  // Remove declarations (registers, constants, packet fields) the body no
  // longer references. Dropping field f also drops column f from every
  // trace packet, so the candidate must be tested with the edited trace.
  bool pass_prune_decls() {
    bool changed = false;
    std::unordered_set<std::string> idents, fields;
    used_names(cur_.body, idents, fields);

    for (std::size_t r = cur_.registers.size(); r-- > 0;) {
      if (idents.count(cur_.registers[r].name)) continue;
      Ast cand = clone(cur_);
      cand.registers.erase(cand.registers.begin() +
                           static_cast<std::ptrdiff_t>(r));
      if (accept(std::move(cand))) changed = true;
    }
    for (std::size_t c = cur_.constants.size(); c-- > 0;) {
      if (idents.count(cur_.constants[c].first)) continue;
      Ast cand = clone(cur_);
      cand.constants.erase(cand.constants.begin() +
                           static_cast<std::ptrdiff_t>(c));
      if (accept(std::move(cand))) changed = true;
    }
    for (std::size_t f = cur_.fields.size(); f-- > 0;) {
      if (fields.count(cur_.fields[f])) continue;
      Ast cand = clone(cur_);
      cand.fields.erase(cand.fields.begin() + static_cast<std::ptrdiff_t>(f));
      Trace trimmed = trace_;
      for (auto& item : trimmed) {
        if (f < item.fields.size()) {
          item.fields.erase(item.fields.begin() +
                            static_cast<std::ptrdiff_t>(f));
        }
      }
      if (test(cand, trimmed)) {
        cur_ = std::move(cand);
        trace_ = std::move(trimmed);
        changed = true;
      }
    }
    return changed;
  }

  bool accept_trace(Trace cand) {
    if (!test(cur_, cand)) return false;
    trace_ = std::move(cand);
    return true;
  }

  // Classic ddmin over packets, never going below one packet.
  bool pass_ddmin_trace() {
    bool changed = false;
    std::size_t n = 2;
    while (trace_.size() >= 2) {
      const std::size_t chunk = (trace_.size() + n - 1) / n;
      bool removed = false;
      for (std::size_t start = 0; start < trace_.size(); start += chunk) {
        Trace cand;
        cand.reserve(trace_.size());
        for (std::size_t i = 0; i < trace_.size(); ++i) {
          if (i < start || i >= start + chunk) cand.push_back(trace_[i]);
        }
        if (cand.empty()) continue;
        if (accept_trace(std::move(cand))) {
          removed = true;
          changed = true;
          n = std::max<std::size_t>(2, n - 1);
          break;
        }
      }
      if (!removed) {
        if (chunk == 1) break;
        n = std::min(n * 2, trace_.size());
      }
    }
    return changed;
  }

  // Push every field value toward 0 (then 1 as a fallback).
  bool pass_canonicalize_fields() {
    bool changed = false;
    for (std::size_t i = 0; i < trace_.size(); ++i) {
      for (std::size_t f = 0; f < trace_[i].fields.size(); ++f) {
        const Value v = trace_[i].fields[f];
        for (const Value target : {Value{0}, Value{1}}) {
          if (v == target) break;
          Trace cand = trace_;
          cand[i].fields[f] = target;
          if (accept_trace(std::move(cand))) {
            changed = true;
            break;
          }
        }
      }
    }
    return changed;
  }

  // One candidate normalizing all packet metadata: canonical line-rate
  // pacing, sequential ports, zero flow ids, minimum-size packets.
  bool pass_normalize_metadata() {
    Trace cand = trace_;
    for (auto& item : cand) {
      item.flow = 0;
      item.size_bytes = 64;
    }
    repace(cand, 4, 1.0);
    bool same = cand.size() == trace_.size();
    for (std::size_t i = 0; same && i < cand.size(); ++i) {
      same = cand[i].arrival_time == trace_[i].arrival_time &&
             cand[i].port == trace_[i].port && cand[i].flow == trace_[i].flow &&
             cand[i].size_bytes == trace_[i].size_bytes;
    }
    if (same) return false;
    return accept_trace(std::move(cand));
  }

  const FailurePredicate& fails_;
  ShrinkOptions opts_;
  Ast cur_;
  Trace trace_;
  std::size_t evals_ = 0;
};

} // namespace

ShrinkResult shrink(const Ast& program, const Trace& trace,
                    const FailurePredicate& fails, const ShrinkOptions& opts) {
  return Shrinker(program, trace, fails, opts).run();
}

std::size_t count_stmts(const Ast& ast) { return count_stmts(ast.body); }

} // namespace mp5::fuzz
