// Pretty-printer from a parsed Domino AST back to compilable source.
//
// The shrinker mutates ASTs, but reproducers ship as `.dom` text, so the
// printer must round-trip: parse(to_source(ast)) is semantically identical
// to `ast` (expressions are fully parenthesized rather than relying on
// precedence). Table declarations do not appear — the parser desugars
// `apply` into if/else chains before the AST reaches us.
#pragma once

#include <string>

#include "domino/ast.hpp"

namespace mp5::fuzz {

std::string to_source(const domino::Ast& ast);
std::string to_source(const domino::Expr& expr);

} // namespace mp5::fuzz
