#include "fuzz/differ.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "banzai/single_pipeline.hpp"
#include "baseline/replicated.hpp"
#include "common/error.hpp"
#include "common/hashing.hpp"
#include "domino/ast_interp.hpp"
#include "domino/compiler.hpp"
#include "domino/parser.hpp"
#include "metrics/equivalence.hpp"
#include "metrics/sim_result.hpp"
#include "mp5/simulator.hpp"
#include "mp5/transform.hpp"
#include "trace/trace_source.hpp"

namespace mp5::fuzz {
namespace {

/// Decorrelates the trace stream from the program stream per seed.
constexpr std::uint64_t kTraceSalt = 0x7ea15eedULL;
constexpr std::uint64_t kMutationSalt = 0x5ca1ab1eULL;

/// The deliberately broken oracle for the fuzzer's self-test: every array
/// index lands one slot off. Any program that distinguishes array slots
/// then diverges from the compiled reference, and the divergence pipeline
/// must catch and shrink it (ISSUE acceptance criterion).
class OffByOneOracle final : public domino::AstInterp {
public:
  using AstInterp::AstInterp;

protected:
  Value reduce_index(Value raw, Value size) const override {
    return size <= 0 ? 0 : (floor_mod(raw, size) + 1) % size;
  }
};

struct Compiled {
  Mp5Program prog;
  banzai::ReferenceResult reference;
};

Compiled prepare(const domino::Ast& ast, const Trace& trace) {
  Compiled out;
  out.prog = transform(domino::compile(ast, {}, /*reserve_stages=*/1).pvsm);
  banzai::ReferenceSwitch ref(out.prog.pvsm);
  out.reference = ref.run(to_header_batch(trace, out.prog.pvsm.num_slots()));
  return out;
}

} // namespace

std::string to_string(ShardingPolicy policy) {
  switch (policy) {
    case ShardingPolicy::kDynamic: return "dynamic";
    case ShardingPolicy::kStaticRandom: return "static-random";
    case ShardingPolicy::kSinglePipeline: return "single-pipeline";
    case ShardingPolicy::kIdealLpt: return "ideal-lpt";
  }
  throw Error("to_string: bad sharding policy");
}

ShardingPolicy sharding_from_string(const std::string& name) {
  if (name == "dynamic") return ShardingPolicy::kDynamic;
  if (name == "static-random") return ShardingPolicy::kStaticRandom;
  if (name == "single-pipeline") return ShardingPolicy::kSinglePipeline;
  if (name == "ideal-lpt") return ShardingPolicy::kIdealLpt;
  throw ConfigError("unknown sharding policy '" + name + "'");
}

const char* to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNone: return "none";
    case FailureKind::kOracleDivergence: return "oracle-divergence";
    case FailureKind::kSimDivergence: return "sim-divergence";
    case FailureKind::kCheckpointDivergence: return "checkpoint-divergence";
    case FailureKind::kCrash: return "crash";
    case FailureKind::kVariantDivergence: return "variant-divergence";
  }
  throw Error("to_string: bad failure kind");
}

std::string SimConfig::name() const {
  std::ostringstream os;
  if (variant != DesignVariant::kMp5) {
    os << "k" << pipelines << "-" << mp5::to_string(variant);
    if (variant == DesignVariant::kRelaxed) os << staleness;
    os << (fast_forward ? "-ff" : "-noff");
    if (checkpoint_restore) os << "-ckpt";
    return os.str();
  }
  os << "k" << pipelines << "-" << fuzz::to_string(sharding) << "-t" << threads
     << (fast_forward ? "-ff" : "-noff")
     << (reference_rebalance ? "-ref" : "-incr");
  if (engine == SimEngine::kEvent) os << "-ev";
  if (checkpoint_restore) os << "-ckpt";
  return os.str();
}

SimOptions SimConfig::to_options() const {
  SimOptions opts;
  opts.pipelines = pipelines;
  opts.fast_forward = fast_forward;
  opts.seed = seed;
  opts.record_egress = true;
  // Every fuzz run doubles as a watchdog run: invariant violations are
  // failures, not silent corruption.
  opts.paranoid_checks = true;
  if (variant != DesignVariant::kMp5) {
    // Replicated cells: the MP5-only axes must stay at their defaults —
    // the Scr/Relaxed constructors reject each of them by name.
    opts.variant = variant;
    opts.staleness_bound = staleness;
    return opts;
  }
  opts.sharding = sharding;
  opts.threads = threads;
  opts.reference_rebalance = reference_rebalance;
  opts.engine = engine;
  opts.remap_period = remap_period;
  opts.fifo_capacity = fifo_capacity;
  return opts;
}

std::vector<SimConfig> full_config_matrix() {
  std::vector<SimConfig> matrix;
  for (const std::uint32_t k : {2u, 4u, 8u}) {
    for (const ShardingPolicy policy :
         {ShardingPolicy::kDynamic, ShardingPolicy::kStaticRandom,
          ShardingPolicy::kIdealLpt}) {
      for (const std::uint32_t threads : {1u, 4u}) {
        for (const bool ff : {true, false}) {
          for (const bool ref_rebalance : {false, true}) {
            for (const SimEngine engine :
                 {SimEngine::kLockstep, SimEngine::kEvent}) {
              SimConfig cfg;
              cfg.pipelines = k;
              cfg.sharding = policy;
              cfg.threads = threads;
              cfg.fast_forward = ff;
              cfg.reference_rebalance = ref_rebalance;
              cfg.engine = engine;
              matrix.push_back(cfg);
            }
          }
        }
      }
    }
  }
  return matrix;
}

std::vector<SimConfig> quick_config_matrix() {
  std::vector<SimConfig> matrix;
  SimConfig cfg; // k4 dynamic t1 ff incremental
  matrix.push_back(cfg);
  cfg.pipelines = 2;
  cfg.sharding = ShardingPolicy::kStaticRandom;
  matrix.push_back(cfg);
  cfg = SimConfig{};
  cfg.pipelines = 8;
  cfg.sharding = ShardingPolicy::kIdealLpt;
  cfg.fast_forward = false;
  matrix.push_back(cfg);
  cfg = SimConfig{};
  cfg.threads = 4;
  cfg.reference_rebalance = true;
  matrix.push_back(cfg);
  cfg = SimConfig{}; // k4 dynamic t1 ff incremental, event engine
  cfg.engine = SimEngine::kEvent;
  matrix.push_back(cfg);
  cfg.threads = 4;
  matrix.push_back(cfg);
  return matrix;
}

std::vector<SimConfig> variant_config_matrix() {
  std::vector<SimConfig> matrix;
  for (const std::uint32_t k : {2u, 4u, 8u}) {
    for (const bool ff : {true, false}) {
      SimConfig cfg;
      cfg.pipelines = k;
      cfg.fast_forward = ff;
      cfg.variant = DesignVariant::kScr;
      matrix.push_back(cfg);
      cfg.variant = DesignVariant::kRelaxed;
      for (const std::uint32_t staleness : {1u, 64u, 512u}) {
        cfg.staleness = staleness;
        matrix.push_back(cfg);
      }
    }
  }
  return matrix;
}

std::vector<SimConfig> quick_variant_matrix() {
  std::vector<SimConfig> matrix;
  SimConfig cfg;
  cfg.variant = DesignVariant::kScr; // k4-scr-ff
  matrix.push_back(cfg);
  cfg.variant = DesignVariant::kRelaxed; // k4-relaxed64-ff
  cfg.staleness = 64;
  matrix.push_back(cfg);
  cfg = SimConfig{};
  cfg.variant = DesignVariant::kRelaxed; // k2-relaxed1-noff
  cfg.staleness = 1;
  cfg.pipelines = 2;
  cfg.fast_forward = false;
  matrix.push_back(cfg);
  return matrix;
}

Differ::Differ(DifferOptions opts) : opts_(std::move(opts)) {}

Failure Differ::check_oracle(const domino::Ast& ast,
                             const Trace& trace) const {
  const Compiled compiled = prepare(ast, trace);
  std::unique_ptr<domino::AstInterp> oracle;
  if (opts_.inject_floor_mod_bug) {
    oracle = std::make_unique<OffByOneOracle>(ast);
  } else {
    oracle = std::make_unique<domino::AstInterp>(ast);
  }

  Failure failure;
  failure.kind = FailureKind::kOracleDivergence;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    std::unordered_map<std::string, Value> fields;
    for (std::size_t f = 0; f < ast.fields.size(); ++f) {
      fields[ast.fields[f]] =
          f < trace[i].fields.size() ? trace[i].fields[f] : 0;
    }
    const auto out = oracle->process(fields);
    for (const auto& name : ast.fields) {
      const auto slot =
          static_cast<std::size_t>(compiled.prog.pvsm.slot_of(name));
      const Value want = out.at(name);
      const Value got = compiled.reference.egress_headers[i][slot];
      if (want != got) {
        std::ostringstream os;
        os << "packet " << i << " field '" << name << "': oracle " << want
           << ", reference " << got;
        failure.detail = os.str();
        return failure;
      }
    }
  }
  const auto& oracle_regs = oracle->registers();
  const auto& ref_regs = compiled.reference.final_registers;
  for (std::size_t r = 0; r < oracle_regs.size() && r < ref_regs.size(); ++r) {
    for (std::size_t i = 0; i < oracle_regs[r].size(); ++i) {
      if (oracle_regs[r][i] != ref_regs[r][i]) {
        std::ostringstream os;
        os << "register " << ast.registers[r].name << "[" << i << "]: oracle "
           << oracle_regs[r][i] << ", reference " << ref_regs[r][i];
        failure.detail = os.str();
        return failure;
      }
    }
  }
  return Failure{};
}

namespace {

/// The checkpoint/restore column: re-run the cell checkpointing roughly
/// mid-run, restore the captured blob into a fresh simulator, and demand
/// a SimResult field-identical to the uninterrupted run's.
Failure check_checkpoint_cell(const Compiled& compiled, const Trace& trace,
                              const SimConfig& config,
                              const SimResult& baseline) {
  Failure failure;
  failure.config = config;
  SimOptions ckpt_opts = config.to_options();
  ckpt_opts.checkpoint_interval =
      std::max<std::uint64_t>(1, baseline.cycles_run / 2);
  std::string blob;
  Cycle ckpt_cycle = 0;
  bool captured = false;
  ckpt_opts.checkpoint_sink = [&](Cycle cycle, std::string&& b) {
    if (!captured) {
      blob = std::move(b);
      ckpt_cycle = cycle;
      captured = true;
    }
  };
  Mp5Simulator ckpt_sim(compiled.prog, ckpt_opts);
  const SimResult with_ckpt = ckpt_sim.run(trace);
  std::string why;
  if (!same_results(baseline, with_ckpt, &why)) {
    failure.kind = FailureKind::kCheckpointDivergence;
    failure.detail = "checkpointing run diverged from the plain run: " + why;
    return failure;
  }
  if (!captured) return Failure{}; // run finished before the first boundary
  Mp5Simulator restored(compiled.prog, config.to_options());
  VectorTraceSource source(trace);
  const SimResult after = restored.resume(source, blob);
  if (!same_results(baseline, after, &why)) {
    failure.kind = FailureKind::kCheckpointDivergence;
    failure.detail =
        "restore at cycle " + std::to_string(ckpt_cycle) + " diverged: " + why;
    return failure;
  }
  return Failure{};
}

Failure check_cell(const Compiled& compiled, const Trace& trace,
                   const SimConfig& config) {
  Failure failure;
  failure.config = config;
  try {
    Mp5Simulator sim(compiled.prog, config.to_options());
    const SimResult result = sim.run(trace);
    if (result.egressed != result.offered) {
      failure.kind = FailureKind::kSimDivergence;
      failure.detail = "lossless config dropped packets: offered " +
                       std::to_string(result.offered) + ", egressed " +
                       std::to_string(result.egressed);
      return failure;
    }
    const EquivalenceReport report =
        check_equivalence(compiled.prog.pvsm, compiled.reference, result);
    if (!report.equivalent()) {
      failure.kind = FailureKind::kSimDivergence;
      failure.detail = report.first_difference;
      return failure;
    }
    if (config.checkpoint_restore) {
      if (Failure f = check_checkpoint_cell(compiled, trace, config, result)) {
        return f;
      }
    }
  } catch (const std::exception& e) {
    failure.kind = FailureKind::kCrash;
    failure.detail = e.what();
    return failure;
  }
  return Failure{};
}

std::unique_ptr<ReplicatedSimulator> make_replicated(const Mp5Program& prog,
                                                     const SimOptions& opts) {
  if (opts.variant == DesignVariant::kScr) {
    return std::make_unique<ScrSimulator>(prog, opts);
  }
  return std::make_unique<RelaxedSimulator>(prog, opts);
}

/// One replicated-variant cell under expectation mode. `failure` carries
/// anything *unexpected* (crash, drop in a lossless design,
/// nondeterminism, checkpoint breakage); reference divergence lands in
/// `equivalent`/`detail` as classification data instead.
struct VariantCheck {
  Failure failure;
  bool equivalent = false;
  std::string detail;
};

VariantCheck check_variant_cell(const Compiled& compiled, const Trace& trace,
                                const SimConfig& config) {
  VariantCheck out;
  out.failure.config = config;
  try {
    const SimResult result =
        make_replicated(compiled.prog, config.to_options())->run(trace);
    if (result.egressed != result.offered) {
      // The replicated designs admit through unbounded ingress queues:
      // any drop is a simulator bug, not a consistency relaxation.
      out.failure.kind = FailureKind::kSimDivergence;
      out.failure.detail = "lossless replicated design dropped packets: "
                           "offered " +
                           std::to_string(result.offered) + ", egressed " +
                           std::to_string(result.egressed);
      return out;
    }
    // Relaxed consistency never excuses nondeterminism: the same trace
    // must produce the bit-identical result on a second run.
    const SimResult again =
        make_replicated(compiled.prog, config.to_options())->run(trace);
    std::string why;
    if (!same_results(result, again, &why)) {
      out.failure.kind = FailureKind::kSimDivergence;
      out.failure.detail = "replicated run is nondeterministic: " + why;
      return out;
    }
    if (config.checkpoint_restore) {
      SimOptions ckpt_opts = config.to_options();
      ckpt_opts.checkpoint_interval =
          std::max<std::uint64_t>(1, result.cycles_run / 2);
      std::string blob;
      Cycle ckpt_cycle = 0;
      bool captured = false;
      ckpt_opts.checkpoint_sink = [&](Cycle cycle, std::string&& b) {
        if (!captured) {
          blob = std::move(b);
          ckpt_cycle = cycle;
          captured = true;
        }
      };
      const SimResult with_ckpt =
          make_replicated(compiled.prog, ckpt_opts)->run(trace);
      if (!same_results(result, with_ckpt, &why)) {
        out.failure.kind = FailureKind::kCheckpointDivergence;
        out.failure.detail =
            "checkpointing run diverged from the plain run: " + why;
        return out;
      }
      if (captured) {
        const SimResult after =
            make_replicated(compiled.prog, config.to_options())
                ->resume(trace, blob);
        if (!same_results(result, after, &why)) {
          out.failure.kind = FailureKind::kCheckpointDivergence;
          out.failure.detail = "restore at cycle " +
                               std::to_string(ckpt_cycle) +
                               " diverged: " + why;
          return out;
        }
      }
    }
    const EquivalenceReport report =
        check_equivalence(compiled.prog.pvsm, compiled.reference, result);
    out.equivalent = report.equivalent();
    if (!out.equivalent) out.detail = report.first_difference;
  } catch (const std::exception& e) {
    out.failure.kind = FailureKind::kCrash;
    out.failure.detail = e.what();
  }
  return out;
}

} // namespace

Failure Differ::check(const domino::Ast& ast, const Trace& trace) const {
  if (Failure f = check_oracle(ast, trace)) return f;
  const Compiled compiled = prepare(ast, trace);
  for (SimConfig config : opts_.matrix) {
    config.checkpoint_restore |= opts_.checkpoint_restore;
    if (Failure f = check_cell(compiled, trace, config)) return f;
  }
  for (SimConfig config : opts_.variant_matrix) {
    config.checkpoint_restore |= opts_.checkpoint_restore;
    VariantCheck vc = check_variant_cell(compiled, trace, config);
    if (vc.failure) return vc.failure; // only unexpected failures surface
  }
  return Failure{};
}

Failure Differ::check_config(const domino::Ast& ast, const Trace& trace,
                             const SimConfig& config) const {
  if (config.variant != DesignVariant::kMp5) {
    return check_variant_config(ast, trace, config);
  }
  return check_cell(prepare(ast, trace), trace, config);
}

Failure Differ::check_variant_config(const domino::Ast& ast,
                                     const Trace& trace,
                                     const SimConfig& config) const {
  VariantCheck vc = check_variant_cell(prepare(ast, trace), trace, config);
  if (vc.failure) return vc.failure;
  if (!vc.equivalent) {
    Failure failure;
    failure.kind = FailureKind::kVariantDivergence;
    failure.config = config;
    failure.detail = vc.detail;
    return failure;
  }
  return Failure{};
}

FailurePredicate Differ::make_predicate(const Failure& failure) const {
  const Failure target = failure;
  const bool inject = opts_.inject_floor_mod_bug;
  return [this, target, inject](const domino::Ast& ast,
                                const Trace& trace) -> bool {
    try {
      if (target.kind == FailureKind::kOracleDivergence) {
        DifferOptions sub;
        sub.inject_floor_mod_bug = inject;
        return Differ(sub).check_oracle(ast, trace).kind == target.kind;
      }
      if (target.kind == FailureKind::kVariantDivergence) {
        // A witness must keep demonstrating the *gap*: the replicated
        // variant diverges while MP5 at the same pipeline count does not.
        SimConfig mp5_cell;
        mp5_cell.pipelines = target.config.pipelines;
        mp5_cell.fast_forward = target.config.fast_forward;
        if (check_config(ast, trace, mp5_cell)) return false;
        return check_variant_config(ast, trace, target.config).kind ==
               target.kind;
      }
      return check_config(ast, trace, target.config).kind == target.kind;
    } catch (const std::exception&) {
      // Candidate no longer compiles (or otherwise fails before the
      // executors run): not a reproduction.
      return false;
    }
  };
}

SeedOutcome Differ::run_seed(std::uint64_t seed) const {
  SeedOutcome out;
  out.seed = seed;
  ProgramGen gen(seed, opts_.gen);
  out.source = gen.generate();
  out.program = domino::parse(out.source);
  try {
    // Probe compilability once so legitimately rejected programs (cyclic
    // state dependencies, machine overflow) are counted as skips.
    (void)domino::compile(out.program, {}, /*reserve_stages=*/1);
  } catch (const SemanticError&) {
    return out;
  } catch (const ResourceError&) {
    return out;
  }
  out.compiled = true;

  out.trace = generate_trace(seed ^ kTraceSalt, out.program.fields.size(),
                             opts_.trace_gen);
  Rng mutation_rng(seed ^ kMutationSalt);
  for (std::uint32_t m = 0; m < opts_.trace_mutations; ++m) {
    mutate_trace(out.trace, mutation_rng, out.program.fields.size(),
                 opts_.trace_gen);
  }
  sort_by_arrival(out.trace);

  if (Failure f = check_oracle(out.program, out.trace)) {
    out.failure = std::move(f);
    return out;
  }
  const Compiled compiled = prepare(out.program, out.trace);
  for (SimConfig config : opts_.matrix) {
    config.checkpoint_restore |= opts_.checkpoint_restore;
    ++out.configs_checked;
    if (Failure f = check_cell(compiled, out.trace, config)) {
      out.failure = std::move(f);
      return out;
    }
  }
  for (SimConfig config : opts_.variant_matrix) {
    config.checkpoint_restore |= opts_.checkpoint_restore;
    ++out.configs_checked;
    VariantCheck vc = check_variant_cell(compiled, out.trace, config);
    if (vc.failure) {
      out.failure = std::move(vc.failure);
      return out;
    }
    VariantCellOutcome cell;
    cell.config = std::move(config);
    cell.equivalent = vc.equivalent;
    cell.detail = std::move(vc.detail);
    out.variant_cells.push_back(std::move(cell));
  }
  return out;
}

} // namespace mp5::fuzz
