// Delta-debugging shrinker for differential-fuzzing failures.
//
// Given a (program, trace) pair and a failure predicate that reproduces
// the divergence/crash, shrink() greedily minimizes first the program —
// statement deletion, if-flattening, expression replacement with
// {0, 1, subexpression}, register-size reduction, unused-declaration and
// unused-field pruning — then the trace — ddmin packet-chunk removal,
// field canonicalization toward 0/1, metadata (flow/port/arrival)
// normalization — iterating to a fixpoint while the predicate keeps
// holding. Every pass walks candidates in a fixed order and no randomness
// is involved, so shrinking is deterministic: the same inputs and
// predicate always produce the same minimized reproducer.
//
// Floors: the result always keeps at least one statement and one packet,
// even under an always-true predicate.
#pragma once

#include <cstddef>
#include <functional>

#include "domino/ast.hpp"
#include "trace/trace.hpp"

namespace mp5::fuzz {

/// Returns true when the failure still reproduces on (program, trace).
/// Must be a pure function of its arguments for shrinking to converge.
using FailurePredicate =
    std::function<bool(const domino::Ast&, const Trace&)>;

struct ShrinkOptions {
  /// Hard cap on predicate evaluations; once exceeded every further
  /// candidate is rejected, so passes wind down deterministically.
  std::size_t max_evals = 50000;
  /// Cap on full program+trace fixpoint rounds.
  std::size_t max_rounds = 12;
};

struct ShrinkResult {
  domino::Ast program;
  Trace trace;
  std::size_t evals = 0;  // predicate evaluations spent
  std::size_t rounds = 0; // fixpoint rounds run
  /// False when the predicate did not hold on the *input* pair; the
  /// inputs are then returned unshrunk.
  bool reproduced = false;
};

ShrinkResult shrink(const domino::Ast& program, const Trace& trace,
                    const FailurePredicate& fails,
                    const ShrinkOptions& opts = {});

/// Total statement count, including statements nested inside ifs.
std::size_t count_stmts(const domino::Ast& ast);

} // namespace mp5::fuzz
