#include "metrics/sim_result.hpp"

#include <algorithm>

#include "common/serialize.hpp"

namespace mp5 {

double SimResult::input_rate() const {
  if (offered == 0) return 0.0;
  const Cycle window = last_arrival >= first_arrival
                           ? last_arrival - first_arrival + 1
                           : 1;
  return static_cast<double>(offered) / static_cast<double>(window);
}

double SimResult::normalized_throughput() const {
  if (offered == 0 || egressed == 0) return 0.0;
  const Cycle drain = last_egress >= first_arrival
                          ? last_egress - first_arrival + 1
                          : 1;
  const double delivered_rate =
      static_cast<double>(egressed) / static_cast<double>(drain);
  return std::min(1.0, delivered_rate / input_rate());
}

void SimResult::save(ByteWriter& w) const {
  w.u64(offered);
  w.u64(egressed);
  w.u64(dropped_phantom);
  w.u64(dropped_data);
  w.u64(dropped_starved);
  w.u64(dropped_fault);
  w.u64(ecn_marked);
  w.u64(first_arrival);
  w.u64(last_arrival);
  w.u64(last_egress);
  w.u64(cycles_run);
  w.u64(steers);
  w.u64(wasted_cycles);
  w.u64(blocked_cycles);
  w.u64(remap_moves);
  w.u64(recirculations);
  w.u64(max_queue_depth);
  w.u64(pipeline_failures);
  w.u64(pipeline_recoveries);
  w.u64(fault_remapped_indices);
  w.u64(phantom_lost);
  w.u64(phantom_delayed);
  w.u64(stalled_cycles);
  w.u64(time_to_recover);
  w.u64(fault_drops.size());
  for (const FaultDrop& d : fault_drops) {
    w.u64(d.seq);
    w.boolean(d.state_touched);
  }
  w.u64(c1_violating_packets);
  w.u64(reordered_flow_packets);
  w.u64(final_registers.size());
  for (const auto& regs : final_registers) {
    w.u64(regs.size());
    for (const Value v : regs) w.i64(v);
  }
  w.u64(egress.size());
  for (const EgressRecord& rec : egress) {
    w.u64(rec.seq);
    w.u64(rec.egress_cycle);
    w.u64(rec.flow);
    w.u64(rec.headers.size());
    for (const Value v : rec.headers) w.i64(v);
  }
}

void SimResult::load(ByteReader& r) {
  offered = r.u64();
  egressed = r.u64();
  dropped_phantom = r.u64();
  dropped_data = r.u64();
  dropped_starved = r.u64();
  dropped_fault = r.u64();
  ecn_marked = r.u64();
  first_arrival = r.u64();
  last_arrival = r.u64();
  last_egress = r.u64();
  cycles_run = r.u64();
  steers = r.u64();
  wasted_cycles = r.u64();
  blocked_cycles = r.u64();
  remap_moves = r.u64();
  recirculations = r.u64();
  max_queue_depth = static_cast<std::size_t>(r.u64());
  pipeline_failures = r.u64();
  pipeline_recoveries = r.u64();
  fault_remapped_indices = r.u64();
  phantom_lost = r.u64();
  phantom_delayed = r.u64();
  stalled_cycles = r.u64();
  time_to_recover = r.u64();
  fault_drops.resize(static_cast<std::size_t>(r.count(9)));
  for (FaultDrop& d : fault_drops) {
    d.seq = r.u64();
    d.state_touched = r.boolean();
  }
  c1_violating_packets = r.u64();
  reordered_flow_packets = r.u64();
  final_registers.resize(static_cast<std::size_t>(r.count(8)));
  for (auto& regs : final_registers) {
    regs.resize(static_cast<std::size_t>(r.count(8)));
    for (Value& v : regs) v = r.i64();
  }
  egress.resize(static_cast<std::size_t>(r.count(32)));
  for (EgressRecord& rec : egress) {
    rec.seq = r.u64();
    rec.egress_cycle = r.u64();
    rec.flow = r.u64();
    rec.headers.resize(static_cast<std::size_t>(r.count(8)));
    for (Value& v : rec.headers) v = r.i64();
  }
}

namespace {

bool differ(std::string* why, const char* field) {
  if (why != nullptr) *why = std::string("field '") + field + "' differs";
  return false;
}

} // namespace

bool same_results(const SimResult& a, const SimResult& b, std::string* why) {
#define MP5_SAME(field) \
  if (a.field != b.field) return differ(why, #field)
  MP5_SAME(offered);
  MP5_SAME(egressed);
  MP5_SAME(dropped_phantom);
  MP5_SAME(dropped_data);
  MP5_SAME(dropped_starved);
  MP5_SAME(dropped_fault);
  MP5_SAME(ecn_marked);
  MP5_SAME(first_arrival);
  MP5_SAME(last_arrival);
  MP5_SAME(last_egress);
  MP5_SAME(cycles_run);
  MP5_SAME(steers);
  MP5_SAME(wasted_cycles);
  MP5_SAME(blocked_cycles);
  MP5_SAME(remap_moves);
  MP5_SAME(recirculations);
  MP5_SAME(max_queue_depth);
  MP5_SAME(pipeline_failures);
  MP5_SAME(pipeline_recoveries);
  MP5_SAME(fault_remapped_indices);
  MP5_SAME(phantom_lost);
  MP5_SAME(phantom_delayed);
  MP5_SAME(stalled_cycles);
  MP5_SAME(time_to_recover);
  MP5_SAME(c1_violating_packets);
  MP5_SAME(reordered_flow_packets);
  MP5_SAME(final_registers);
#undef MP5_SAME
  if (a.fault_drops.size() != b.fault_drops.size()) {
    return differ(why, "fault_drops.size");
  }
  for (std::size_t i = 0; i < a.fault_drops.size(); ++i) {
    if (a.fault_drops[i].seq != b.fault_drops[i].seq ||
        a.fault_drops[i].state_touched != b.fault_drops[i].state_touched) {
      return differ(why, "fault_drops");
    }
  }
  if (a.egress.size() != b.egress.size()) return differ(why, "egress.size");
  for (std::size_t i = 0; i < a.egress.size(); ++i) {
    const EgressRecord& x = a.egress[i];
    const EgressRecord& y = b.egress[i];
    if (x.seq != y.seq || x.egress_cycle != y.egress_cycle ||
        x.flow != y.flow || x.headers != y.headers) {
      if (why != nullptr) {
        *why = "egress record for seq " + std::to_string(x.seq) + " differs";
      }
      return false;
    }
  }
  return true;
}

} // namespace mp5
