#include "metrics/sim_result.hpp"

#include <algorithm>

namespace mp5 {

double SimResult::input_rate() const {
  if (offered == 0) return 0.0;
  const Cycle window = last_arrival >= first_arrival
                           ? last_arrival - first_arrival + 1
                           : 1;
  return static_cast<double>(offered) / static_cast<double>(window);
}

double SimResult::normalized_throughput() const {
  if (offered == 0 || egressed == 0) return 0.0;
  const Cycle drain = last_egress >= first_arrival
                          ? last_egress - first_arrival + 1
                          : 1;
  const double delivered_rate =
      static_cast<double>(egressed) / static_cast<double>(drain);
  return std::min(1.0, delivered_rate / input_rate());
}

} // namespace mp5
