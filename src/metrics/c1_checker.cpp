#include "metrics/c1_checker.hpp"

namespace mp5 {

void C1Checker::on_access(RegId reg, RegIndex index, SeqNo seq) {
  ++accesses_;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(reg) << 32) | index;
  auto [it, inserted] = last_seq_.try_emplace(key, seq);
  if (inserted) return;
  if (seq < it->second) {
    // `seq` arrives at the state after a later-arriving packet: inversion.
    violators_.insert(seq);
  } else {
    it->second = seq;
  }
}

} // namespace mp5
