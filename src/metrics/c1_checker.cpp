#include "metrics/c1_checker.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace mp5 {

void C1Checker::init_dense(const std::vector<std::size_t>& reg_sizes) {
  dense_ = true;
  last_seq_dense_.clear();
  last_seq_dense_.reserve(reg_sizes.size());
  for (const std::size_t size : reg_sizes) {
    last_seq_dense_.emplace_back(size, kInvalidSeqNo);
  }
}

void C1Checker::on_access(RegId reg, RegIndex index, SeqNo seq,
                          C1Scratch* scratch) {
  if (scratch != nullptr) {
    ++scratch->accesses;
  } else {
    ++accesses_;
  }
  if (dense_) {
    if (reg >= last_seq_dense_.size() ||
        index >= last_seq_dense_[reg].size()) {
      throw Error("C1Checker: access outside declared register space");
    }
    SeqNo& last = last_seq_dense_[reg][index];
    if (last == kInvalidSeqNo) {
      last = seq;
    } else if (seq < last) {
      // `seq` arrives at the state after a later-arriving packet: inversion.
      if (scratch != nullptr) {
        scratch->violators.insert(seq);
      } else {
        violators_.insert(seq);
      }
    } else {
      last = seq;
    }
    return;
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(reg) << 32) | index;
  auto [it, inserted] = last_seq_.try_emplace(key, seq);
  if (inserted) return;
  if (seq < it->second) {
    if (scratch != nullptr) {
      scratch->violators.insert(seq);
    } else {
      violators_.insert(seq);
    }
  } else {
    it->second = seq;
  }
}

void C1Checker::absorb(const C1Scratch& scratch) {
  accesses_ += scratch.accesses;
  violators_.insert(scratch.violators.begin(), scratch.violators.end());
}

void C1Checker::save(ByteWriter& w) const {
  w.boolean(dense_);
  if (dense_) {
    w.u64(last_seq_dense_.size());
    for (const auto& row : last_seq_dense_) {
      w.u64(row.size());
      for (const SeqNo s : row) w.u64(s);
    }
  } else {
    std::vector<std::pair<std::uint64_t, SeqNo>> entries(last_seq_.begin(),
                                                         last_seq_.end());
    std::sort(entries.begin(), entries.end());
    w.u64(entries.size());
    for (const auto& [key, seq] : entries) {
      w.u64(key);
      w.u64(seq);
    }
  }
  std::vector<SeqNo> violators(violators_.begin(), violators_.end());
  std::sort(violators.begin(), violators.end());
  w.u64(violators.size());
  for (const SeqNo s : violators) w.u64(s);
  w.u64(accesses_);
}

void C1Checker::load(ByteReader& r) {
  if (r.boolean() != dense_) {
    throw Error("checkpoint: C1 checker storage-mode mismatch");
  }
  if (dense_) {
    if (r.count(8) != last_seq_dense_.size()) {
      throw Error("checkpoint: C1 dense table register count mismatch");
    }
    for (auto& row : last_seq_dense_) {
      if (r.count(8) != row.size()) {
        throw Error("checkpoint: C1 dense table size mismatch");
      }
      for (SeqNo& s : row) s = r.u64();
    }
  } else {
    last_seq_.clear();
    const std::uint64_t n = r.count(16);
    last_seq_.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t key = r.u64();
      last_seq_[key] = r.u64();
    }
  }
  violators_.clear();
  const std::uint64_t nv = r.count(8);
  violators_.reserve(static_cast<std::size_t>(nv));
  for (std::uint64_t i = 0; i < nv; ++i) violators_.insert(r.u64());
  accesses_ = r.u64();
}

} // namespace mp5
