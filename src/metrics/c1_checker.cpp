#include "metrics/c1_checker.hpp"

#include "common/error.hpp"

namespace mp5 {

void C1Checker::init_dense(const std::vector<std::size_t>& reg_sizes) {
  dense_ = true;
  last_seq_dense_.clear();
  last_seq_dense_.reserve(reg_sizes.size());
  for (const std::size_t size : reg_sizes) {
    last_seq_dense_.emplace_back(size, kInvalidSeqNo);
  }
}

void C1Checker::on_access(RegId reg, RegIndex index, SeqNo seq,
                          C1Scratch* scratch) {
  if (scratch != nullptr) {
    ++scratch->accesses;
  } else {
    ++accesses_;
  }
  if (dense_) {
    if (reg >= last_seq_dense_.size() ||
        index >= last_seq_dense_[reg].size()) {
      throw Error("C1Checker: access outside declared register space");
    }
    SeqNo& last = last_seq_dense_[reg][index];
    if (last == kInvalidSeqNo) {
      last = seq;
    } else if (seq < last) {
      // `seq` arrives at the state after a later-arriving packet: inversion.
      if (scratch != nullptr) {
        scratch->violators.insert(seq);
      } else {
        violators_.insert(seq);
      }
    } else {
      last = seq;
    }
    return;
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(reg) << 32) | index;
  auto [it, inserted] = last_seq_.try_emplace(key, seq);
  if (inserted) return;
  if (seq < it->second) {
    if (scratch != nullptr) {
      scratch->violators.insert(seq);
    } else {
      violators_.insert(seq);
    }
  } else {
    it->second = seq;
  }
}

void C1Checker::absorb(const C1Scratch& scratch) {
  accesses_ += scratch.accesses;
  violators_.insert(scratch.violators.begin(), scratch.violators.end());
}

} // namespace mp5
