// Checker for condition C1 (§3): "for each register state, the same set of
// input packets must access the state and in the same order in both the
// single and multi-pipelined switch".
//
// In a single-pipelined switch the access order at every state is the
// packet arrival order, so C1 reduces to: at every (reg, index), observed
// access sequence numbers must be non-decreasing... strictly increasing.
// A packet "violates C1" when it accesses some state after a packet that
// arrived later than it already accessed that state (i.e. it participates
// in an inversion as the late side). The §4.3.2 D4 experiment reports the
// fraction of packets with at least one such violation.
//
// Two storage modes:
//  * map mode (default): last-seq table keyed by (reg << 32 | index) in an
//    unordered_map. Works for any index space; used by the recirculation
//    baseline, whose register universe is not pre-declared to the checker.
//  * dense mode (init_dense): one flat SeqNo vector per register, sized to
//    the register's declared length. This removes the hash+probe from every
//    state access on the simulator hot path, and — because a (reg, index)
//    cell is only ever written by the lane that owns its shard — makes the
//    table safely writable from the parallel engine's workers without
//    locks. Workers accumulate their own violator sets / access counts in a
//    C1Scratch and the simulator absorb()s them at the end of the run.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace mp5 {

class ByteReader;
class ByteWriter;

/// Per-worker accumulator for the parallel engine: everything a state
/// access mutates besides its own (reg, index) cell of the dense table.
struct C1Scratch {
  std::unordered_set<SeqNo> violators;
  std::uint64_t accesses = 0;
};

class C1Checker {
public:
  /// Switch to dense storage. `reg_sizes[r]` is the declared length of
  /// register array `r`; accesses outside the declared space throw.
  void init_dense(const std::vector<std::size_t>& reg_sizes);

  /// Record that packet `seq` performed an access at (reg, index).
  /// Violators and the access count go into `scratch` when given (parallel
  /// workers), into the checker's own totals otherwise.
  void on_access(RegId reg, RegIndex index, SeqNo seq,
                 C1Scratch* scratch = nullptr);

  /// Merge a worker's accumulator into the run totals.
  void absorb(const C1Scratch& scratch);

  /// Checkpoint serialization (unordered containers written sorted for a
  /// byte-stable payload). load() requires the same storage mode and,
  /// in dense mode, the same register shapes as at save time.
  void save(ByteWriter& w) const;
  void load(ByteReader& r);

  std::uint64_t violating_packets() const { return violators_.size(); }
  std::uint64_t total_accesses() const { return accesses_; }

  /// Fraction of `total_packets` that violated C1 at least once.
  double violation_fraction(std::uint64_t total_packets) const {
    return total_packets == 0
               ? 0.0
               : static_cast<double>(violators_.size()) /
                     static_cast<double>(total_packets);
  }

private:
  bool dense_ = false;
  std::vector<std::vector<SeqNo>> last_seq_dense_; // [reg][index] -> max seq
  std::unordered_map<std::uint64_t, SeqNo> last_seq_; // key -> max seq seen
  std::unordered_set<SeqNo> violators_;
  std::uint64_t accesses_ = 0;
};

} // namespace mp5
