// Checker for condition C1 (§3): "for each register state, the same set of
// input packets must access the state and in the same order in both the
// single and multi-pipelined switch".
//
// In a single-pipelined switch the access order at every state is the
// packet arrival order, so C1 reduces to: at every (reg, index), observed
// access sequence numbers must be non-decreasing... strictly increasing.
// A packet "violates C1" when it accesses some state after a packet that
// arrived later than it already accessed that state (i.e. it participates
// in an inversion as the late side). The §4.3.2 D4 experiment reports the
// fraction of packets with at least one such violation.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/types.hpp"

namespace mp5 {

class C1Checker {
public:
  /// Record that packet `seq` performed an access at (reg, index).
  void on_access(RegId reg, RegIndex index, SeqNo seq);

  std::uint64_t violating_packets() const { return violators_.size(); }
  std::uint64_t total_accesses() const { return accesses_; }

  /// Fraction of `total_packets` that violated C1 at least once.
  double violation_fraction(std::uint64_t total_packets) const {
    return total_packets == 0
               ? 0.0
               : static_cast<double>(violators_.size()) /
                     static_cast<double>(total_packets);
  }

private:
  std::unordered_map<std::uint64_t, SeqNo> last_seq_; // key -> max seq seen
  std::unordered_set<SeqNo> violators_;
  std::uint64_t accesses_ = 0;
};

} // namespace mp5
