// Packet reordering analysis (§3.4 "Handling starvation and packet
// re-ordering"): quantifies how far egress order departs from arrival
// order, globally and within flows — the effect that hurts TCP-like
// protocols and that the flow-order dummy stage eliminates.
#pragma once

#include <cstdint>
#include <vector>

#include "packet/packet.hpp"

namespace mp5 {

struct ReorderingReport {
  std::uint64_t packets = 0;
  /// Pairs (i, j) with arrival i < j but egress j before i.
  std::uint64_t inversions = 0;
  /// Kendall rank correlation between arrival and egress order:
  /// 1 = identical order, -1 = fully reversed.
  double kendall_tau = 1.0;
  /// Max |egress rank - arrival rank| over all packets.
  std::uint64_t max_displacement = 0;
  /// Packets that egressed before some earlier-arrived packet of the
  /// *same flow* (the §3.4 per-flow concern).
  std::uint64_t intra_flow_reordered = 0;
};

/// Analyze egress records (any order; egress order is reconstructed from
/// egress_cycle, ties broken by seq — same-cycle departures on different
/// pipelines count as in-order).
ReorderingReport analyze_reordering(std::vector<EgressRecord> egress);

} // namespace mp5
