// Result record common to all switch simulators (MP5, baselines).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "packet/packet.hpp"

namespace mp5 {

class ByteReader;
class ByteWriter;

struct SimResult {
  // --- packet accounting ---
  std::uint64_t offered = 0;
  std::uint64_t egressed = 0;
  std::uint64_t dropped_phantom = 0; // phantoms dropped at bounded FIFOs
  std::uint64_t dropped_data = 0;    // data packets dropped (missing phantom)
  std::uint64_t dropped_starved = 0; // stateless drops by the §3.4 guard
  std::uint64_t dropped_fault = 0;   // packets lost to injected faults
  std::uint64_t ecn_marked = 0;      // §3.4 backpressure marks

  // --- timing ---
  Cycle first_arrival = 0;
  Cycle last_arrival = 0;
  Cycle last_egress = 0;
  Cycle cycles_run = 0;

  // --- MP5 mechanics ---
  std::uint64_t steers = 0;        // inter-pipeline crossbar traversals
  std::uint64_t wasted_cycles = 0; // cancelled-phantom pop slots
  std::uint64_t blocked_cycles = 0;
  std::uint64_t remap_moves = 0;
  std::uint64_t recirculations = 0; // recirculation baseline only
  std::size_t max_queue_depth = 0;  // entries at any (pipeline, stage) FIFO

  // --- fault injection & recovery ---
  std::uint64_t pipeline_failures = 0;
  std::uint64_t pipeline_recoveries = 0;
  /// Shard indices atomically re-homed from a dead lane to survivors.
  std::uint64_t fault_remapped_indices = 0;
  std::uint64_t phantom_lost = 0;    // phantoms lost on the channel
  std::uint64_t phantom_delayed = 0; // phantoms given extra channel delay
  std::uint64_t stalled_cycles = 0;  // cell-cycles lost to injected stalls
  /// Cycles from the most recent pipeline failure to the next successful
  /// egress — how long the switch took to resume delivering packets.
  Cycle time_to_recover = 0;

  /// One record per fault-dropped packet (populated when record_egress is
  /// set): `state_touched` says whether the packet had already performed
  /// at least one state access, i.e. whether its partial effects remain in
  /// register state. The declared drop set for equivalence-modulo-drops.
  struct FaultDrop {
    SeqNo seq = kInvalidSeqNo;
    bool state_touched = false;
  };
  std::vector<FaultDrop> fault_drops;

  // --- correctness ---
  std::uint64_t c1_violating_packets = 0;
  std::uint64_t reordered_flow_packets = 0; // egress inversions within a flow

  // --- final state (for equivalence checks) ---
  std::vector<std::vector<Value>> final_registers;
  std::vector<EgressRecord> egress; // sorted by seq when recorded

  /// Packet throughput normalized to the input packet rate, the paper's
  /// §4.3 metric. Offered N packets over the arrival window at rate r,
  /// drained by `last_egress`: delivered-rate / offered-rate.
  double normalized_throughput() const;

  /// Measured input rate in packets per cycle.
  double input_rate() const;

  /// Fraction of processed packets that violated C1 at least once.
  /// (Packets dropped at ingress never touched state and are excluded.)
  double c1_fraction() const {
    return egressed == 0 ? 0.0
                         : static_cast<double>(c1_violating_packets) /
                               static_cast<double>(egressed);
  }

  double drop_fraction() const {
    return offered == 0 ? 0.0
                        : static_cast<double>(offered - egressed) /
                              static_cast<double>(offered);
  }

  /// Checkpoint serialization. The egress and fault-drop logs are written
  /// in their current (possibly unsorted mid-run) order — the run loop
  /// appends to them until the final sort, so restoring them in any other
  /// order would break bit-identity of the finished result.
  void save(ByteWriter& w) const;
  void load(ByteReader& r);
};

/// Field-by-field equality of two results — the checkpoint/restore
/// bit-identity contract. On mismatch returns false and, when `why` is
/// non-null, names the first differing field.
bool same_results(const SimResult& a, const SimResult& b,
                  std::string* why = nullptr);

} // namespace mp5
