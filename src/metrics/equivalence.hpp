// Functional-equivalence checking (§2.2.1).
//
// A multi-pipelined switch is functionally equivalent to the logical
// single-pipelined switch when, from the same initial state and input
// stream (and with no packet loss):
//   * register state: every register array ends with identical values;
//   * packet state: every packet leaves with identical header contents.
// Only declared packet fields are compared — compiler temporaries are
// scratch metadata, not packet state.
#pragma once

#include <string>
#include <vector>

#include "banzai/ir.hpp"
#include "banzai/single_pipeline.hpp"
#include "metrics/sim_result.hpp"

namespace mp5 {

struct EquivalenceReport {
  bool registers_equal = true;
  bool packets_equal = true;
  std::uint64_t register_mismatches = 0;
  std::uint64_t packet_mismatches = 0;
  std::string first_difference; // human-readable, empty when equivalent

  bool equivalent() const { return registers_equal && packets_equal; }
};

/// Compare a simulator run against the single-pipeline reference run of the
/// same program over the same packet stream. `result.egress` must be
/// recorded and the run must be lossless (drops legitimately break
/// equivalence, §3.5.1 — callers should check result.drop_fraction() first).
EquivalenceReport check_equivalence(const ir::Pvsm& program,
                                    const banzai::ReferenceResult& reference,
                                    const SimResult& result);

} // namespace mp5
