// Functional-equivalence checking (§2.2.1).
//
// A multi-pipelined switch is functionally equivalent to the logical
// single-pipelined switch when, from the same initial state and input
// stream (and with no packet loss):
//   * register state: every register array ends with identical values;
//   * packet state: every packet leaves with identical header contents.
// Only declared packet fields are compared — compiler temporaries are
// scratch metadata, not packet state.
//
// Two checkers share the comparison core below: the batch check_equivalence
// (whole SimResult vs whole ReferenceResult) and the rolling verifier in
// src/soak/ (per-egress incremental compare over a bounded window).
#pragma once

#include <string>
#include <vector>

#include "banzai/ir.hpp"
#include "banzai/single_pipeline.hpp"
#include "metrics/sim_result.hpp"

namespace mp5 {

struct EquivalenceReport {
  bool registers_equal = true;
  bool packets_equal = true;
  std::uint64_t register_mismatches = 0;
  std::uint64_t packet_mismatches = 0;
  std::string first_difference; // human-readable, empty when equivalent

  bool equivalent() const { return registers_equal && packets_equal; }
};

/// Shared comparison core: per-packet declared-field compares, register
/// compares, and the malformed-egress-stream diagnostics (duplicate seqs,
/// out-of-range seqs, never-egressed packets). Accumulates an
/// EquivalenceReport; callers own the iteration strategy (batch vs rolling).
class EquivalenceVerifier {
public:
  explicit EquivalenceVerifier(const ir::Pvsm& program)
      : program_(&program) {}

  /// Compare one egressed packet's declared fields against the reference's
  /// final headers for the same seq (missing trailing slots read 0).
  void compare_packet(SeqNo seq, const std::vector<Value>& reference_headers,
                      const std::vector<Value>& got_headers);

  /// A lossless run must produce exactly one egress record per reference
  /// packet; these flag the three malformed-stream shapes. (Earlier
  /// versions silently let the last duplicate win and dropped out-of-range
  /// records, hiding double-egress bugs.)
  void flag_duplicate(SeqNo seq, std::uint64_t times);
  void flag_out_of_range(SeqNo seq, std::uint64_t reference_count);
  void flag_never_egressed(SeqNo seq);
  void flag_count_mismatch(std::uint64_t reference_count,
                           std::uint64_t got_count);

  /// Compare declared register arrays (the simulated set may carry extra
  /// hidden arrays, e.g. the flow-order dummy register).
  void compare_registers(const std::vector<std::vector<Value>>& reference,
                         const std::vector<std::vector<Value>>& got);

  /// Record a free-form first difference (used by the rolling verifier for
  /// window/truncation diagnostics).
  void note(const std::string& msg);

  EquivalenceReport& report() { return report_; }
  const EquivalenceReport& report() const { return report_; }

private:
  const ir::Pvsm* program_;
  EquivalenceReport report_;
};

/// Compare a simulator run against the single-pipeline reference run of the
/// same program over the same packet stream. `result.egress` must be
/// recorded and the run must be lossless (drops legitimately break
/// equivalence, §3.5.1 — callers should check result.drop_fraction() first).
EquivalenceReport check_equivalence(const ir::Pvsm& program,
                                    const banzai::ReferenceResult& reference,
                                    const SimResult& result);

} // namespace mp5
