#include "metrics/reordering.hpp"

#include <algorithm>
#include <unordered_map>

namespace mp5 {
namespace {

/// Count inversions by merge sort, O(n log n).
std::uint64_t count_inversions(std::vector<SeqNo>& v, std::vector<SeqNo>& tmp,
                               std::size_t lo, std::size_t hi) {
  if (hi - lo <= 1) return 0;
  const std::size_t mid = lo + (hi - lo) / 2;
  std::uint64_t inv = count_inversions(v, tmp, lo, mid) +
                      count_inversions(v, tmp, mid, hi);
  std::merge(v.begin() + static_cast<std::ptrdiff_t>(lo),
             v.begin() + static_cast<std::ptrdiff_t>(mid),
             v.begin() + static_cast<std::ptrdiff_t>(mid),
             v.begin() + static_cast<std::ptrdiff_t>(hi),
             tmp.begin() + static_cast<std::ptrdiff_t>(lo));
  // Count crossings: elements from the right half placed before remaining
  // left-half elements.
  std::size_t i = lo, j = mid;
  while (i < mid && j < hi) {
    if (v[j] < v[i]) {
      inv += mid - i;
      ++j;
    } else {
      ++i;
    }
  }
  std::copy(tmp.begin() + static_cast<std::ptrdiff_t>(lo),
            tmp.begin() + static_cast<std::ptrdiff_t>(hi),
            v.begin() + static_cast<std::ptrdiff_t>(lo));
  return inv;
}

} // namespace

ReorderingReport analyze_reordering(std::vector<EgressRecord> egress) {
  ReorderingReport report;
  report.packets = egress.size();
  if (egress.size() < 2) return report;

  std::sort(egress.begin(), egress.end(),
            [](const EgressRecord& a, const EgressRecord& b) {
              if (a.egress_cycle != b.egress_cycle) {
                return a.egress_cycle < b.egress_cycle;
              }
              return a.seq < b.seq;
            });

  // Arrival ranks: seqs are not necessarily dense (drops) — rank them.
  std::vector<SeqNo> seqs_sorted;
  seqs_sorted.reserve(egress.size());
  for (const auto& rec : egress) seqs_sorted.push_back(rec.seq);
  std::sort(seqs_sorted.begin(), seqs_sorted.end());
  std::unordered_map<SeqNo, std::uint64_t> arrival_rank;
  for (std::size_t i = 0; i < seqs_sorted.size(); ++i) {
    arrival_rank[seqs_sorted[i]] = i;
  }

  std::vector<SeqNo> order;
  order.reserve(egress.size());
  std::unordered_map<std::uint64_t, SeqNo> flow_max;
  for (std::size_t i = 0; i < egress.size(); ++i) {
    const auto& rec = egress[i];
    order.push_back(rec.seq);
    const std::uint64_t rank = arrival_rank[rec.seq];
    const std::uint64_t displacement =
        rank > i ? rank - i : i - rank;
    report.max_displacement = std::max(report.max_displacement, displacement);
    auto [it, inserted] = flow_max.try_emplace(rec.flow, rec.seq);
    if (!inserted) {
      if (rec.seq < it->second) {
        ++report.intra_flow_reordered;
      } else {
        it->second = rec.seq;
      }
    }
  }

  std::vector<SeqNo> tmp(order.size());
  report.inversions = count_inversions(order, tmp, 0, order.size());
  const double pairs = static_cast<double>(report.packets) *
                       static_cast<double>(report.packets - 1) / 2.0;
  report.kendall_tau =
      1.0 - 2.0 * static_cast<double>(report.inversions) / pairs;
  return report;
}

} // namespace mp5
