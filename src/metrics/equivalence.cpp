#include "metrics/equivalence.hpp"

#include <algorithm>
#include <sstream>

namespace mp5 {

void EquivalenceVerifier::note(const std::string& msg) {
  if (report_.first_difference.empty()) report_.first_difference = msg;
}

void EquivalenceVerifier::compare_packet(
    SeqNo seq, const std::vector<Value>& reference_headers,
    const std::vector<Value>& got_headers) {
  bool mismatch = false;
  for (const auto& [name, slot] : program_->declared_slot) {
    const auto s = static_cast<std::size_t>(slot);
    const Value want =
        s < reference_headers.size() ? reference_headers[s] : 0;
    const Value got = s < got_headers.size() ? got_headers[s] : 0;
    if (want != got) {
      mismatch = true;
      std::ostringstream os;
      os << "packet " << seq << " field '" << name << "': reference " << want
         << ", got " << got;
      note(os.str());
    }
  }
  if (mismatch) {
    report_.packets_equal = false;
    ++report_.packet_mismatches;
  }
}

void EquivalenceVerifier::flag_duplicate(SeqNo seq, std::uint64_t times) {
  report_.packets_equal = false;
  ++report_.packet_mismatches;
  note("packet " + std::to_string(seq) + " egressed " +
       std::to_string(times) + " times");
}

void EquivalenceVerifier::flag_out_of_range(SeqNo seq,
                                            std::uint64_t reference_count) {
  report_.packets_equal = false;
  ++report_.packet_mismatches;
  note("egress record with out-of-range seq " + std::to_string(seq) +
       " (reference has " + std::to_string(reference_count) + " packets)");
}

void EquivalenceVerifier::flag_never_egressed(SeqNo seq) {
  report_.packets_equal = false;
  ++report_.packet_mismatches;
  note("packet " + std::to_string(seq) + " never egressed");
}

void EquivalenceVerifier::flag_count_mismatch(std::uint64_t reference_count,
                                              std::uint64_t got_count) {
  report_.packets_equal = false;
  note("egress count: reference " + std::to_string(reference_count) +
       " packets, got " + std::to_string(got_count));
}

void EquivalenceVerifier::compare_registers(
    const std::vector<std::vector<Value>>& reference,
    const std::vector<std::vector<Value>>& got) {
  for (std::size_t r = 0; r < reference.size(); ++r) {
    if (r >= got.size()) {
      report_.registers_equal = false;
      ++report_.register_mismatches;
      note("register array '" + program_->registers[r].name + "' missing");
      continue;
    }
    const auto& want = reference[r];
    const auto& have = got[r];
    for (std::size_t i = 0; i < want.size(); ++i) {
      if (i >= have.size() || want[i] != have[i]) {
        report_.registers_equal = false;
        ++report_.register_mismatches;
        std::ostringstream os;
        os << "register " << program_->registers[r].name << "[" << i
           << "]: reference " << want[i] << ", got "
           << (i < have.size() ? std::to_string(have[i]) : "<missing>");
        note(os.str());
      }
    }
  }
}

EquivalenceReport check_equivalence(const ir::Pvsm& program,
                                    const banzai::ReferenceResult& reference,
                                    const SimResult& result) {
  EquivalenceVerifier verifier(program);

  verifier.compare_registers(reference.final_registers,
                             result.final_registers);

  // Packet state: compare declared header fields per packet, by seq.
  if (result.egress.size() != reference.egress_headers.size()) {
    verifier.flag_count_mismatch(reference.egress_headers.size(),
                                 result.egress.size());
  }
  std::vector<const EgressRecord*> by_seq(reference.egress_headers.size(),
                                          nullptr);
  std::vector<std::uint32_t> records_per_seq(reference.egress_headers.size(),
                                             0);
  for (const auto& rec : result.egress) {
    if (rec.seq >= by_seq.size()) {
      verifier.flag_out_of_range(rec.seq, reference.egress_headers.size());
      continue;
    }
    // Field comparison uses the first record; every extra is a mismatch.
    if (records_per_seq[rec.seq]++ == 0) {
      by_seq[rec.seq] = &rec;
    } else {
      verifier.flag_duplicate(rec.seq, records_per_seq[rec.seq]);
    }
  }
  for (SeqNo seq = 0; seq < reference.egress_headers.size(); ++seq) {
    const EgressRecord* rec = by_seq[seq];
    if (rec == nullptr) {
      verifier.flag_never_egressed(seq);
      continue;
    }
    verifier.compare_packet(seq, reference.egress_headers[seq],
                            rec->headers);
  }
  return verifier.report();
}

} // namespace mp5
