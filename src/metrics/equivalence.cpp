#include "metrics/equivalence.hpp"

#include <algorithm>
#include <sstream>

namespace mp5 {

EquivalenceReport check_equivalence(const ir::Pvsm& program,
                                    const banzai::ReferenceResult& reference,
                                    const SimResult& result) {
  EquivalenceReport report;
  auto note = [&](const std::string& msg) {
    if (report.first_difference.empty()) report.first_difference = msg;
  };

  // Register state. The simulated final_registers may carry extra hidden
  // arrays (e.g. the flow-order dummy register); compare the declared ones.
  for (std::size_t r = 0; r < reference.final_registers.size(); ++r) {
    if (r >= result.final_registers.size()) {
      report.registers_equal = false;
      ++report.register_mismatches;
      note("register array '" + program.registers[r].name + "' missing");
      continue;
    }
    const auto& want = reference.final_registers[r];
    const auto& got = result.final_registers[r];
    for (std::size_t i = 0; i < want.size(); ++i) {
      if (i >= got.size() || want[i] != got[i]) {
        report.registers_equal = false;
        ++report.register_mismatches;
        std::ostringstream os;
        os << "register " << program.registers[r].name << "[" << i
           << "]: reference " << want[i] << ", got "
           << (i < got.size() ? std::to_string(got[i]) : "<missing>");
        note(os.str());
      }
    }
  }

  // Packet state: compare declared header fields per packet, by seq.
  //
  // A lossless run must produce exactly one egress record per reference
  // packet, so malformed egress streams are packet-state violations in
  // their own right: a bare count mismatch, duplicate records for one
  // seq, and records whose seq is outside the reference range are each
  // flagged. (Earlier versions silently let the last duplicate win and
  // dropped out-of-range records, hiding double-egress bugs.)
  if (result.egress.size() != reference.egress_headers.size()) {
    report.packets_equal = false;
    note("egress count: reference " +
         std::to_string(reference.egress_headers.size()) + " packets, got " +
         std::to_string(result.egress.size()));
  }
  std::vector<const EgressRecord*> by_seq(reference.egress_headers.size(),
                                          nullptr);
  std::vector<std::uint32_t> records_per_seq(reference.egress_headers.size(),
                                             0);
  for (const auto& rec : result.egress) {
    if (rec.seq >= by_seq.size()) {
      report.packets_equal = false;
      ++report.packet_mismatches;
      note("egress record with out-of-range seq " + std::to_string(rec.seq) +
           " (reference has " +
           std::to_string(reference.egress_headers.size()) + " packets)");
      continue;
    }
    // Field comparison uses the first record; every extra is a mismatch.
    if (records_per_seq[rec.seq]++ == 0) {
      by_seq[rec.seq] = &rec;
    } else {
      report.packets_equal = false;
      ++report.packet_mismatches;
      note("packet " + std::to_string(rec.seq) + " egressed " +
           std::to_string(records_per_seq[rec.seq]) + " times");
    }
  }
  for (SeqNo seq = 0; seq < reference.egress_headers.size(); ++seq) {
    const EgressRecord* rec = by_seq[seq];
    if (rec == nullptr) {
      report.packets_equal = false;
      ++report.packet_mismatches;
      note("packet " + std::to_string(seq) + " never egressed");
      continue;
    }
    bool mismatch = false;
    for (const auto& [name, slot] : program.declared_slot) {
      const auto s = static_cast<std::size_t>(slot);
      const Value want = reference.egress_headers[seq][s];
      const Value got = s < rec->headers.size() ? rec->headers[s] : 0;
      if (want != got) {
        mismatch = true;
        std::ostringstream os;
        os << "packet " << seq << " field '" << name << "': reference "
           << want << ", got " << got;
        note(os.str());
      }
    }
    if (mismatch) {
      report.packets_equal = false;
      ++report.packet_mismatches;
    }
  }
  return report;
}

} // namespace mp5
