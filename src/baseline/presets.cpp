#include "baseline/presets.hpp"

namespace mp5 {

SimOptions mp5_options(std::uint32_t pipelines, std::uint64_t seed) {
  SimOptions opts;
  opts.pipelines = pipelines;
  opts.seed = seed;
  return opts;
}

SimOptions no_d2_options(std::uint32_t pipelines, std::uint64_t seed) {
  SimOptions opts = mp5_options(pipelines, seed);
  opts.sharding = ShardingPolicy::kStaticRandom;
  return opts;
}

SimOptions no_d4_options(std::uint32_t pipelines, std::uint64_t seed) {
  SimOptions opts = mp5_options(pipelines, seed);
  opts.phantoms = false;
  return opts;
}

SimOptions naive_options(std::uint32_t pipelines, std::uint64_t seed) {
  SimOptions opts = mp5_options(pipelines, seed);
  opts.naive_single_pipeline = true;
  // The simulator rejects naive mode with any other sharding policy
  // (construction-time validation), so set the matching one explicitly.
  opts.sharding = ShardingPolicy::kSinglePipeline;
  return opts;
}

SimOptions ideal_options(std::uint32_t pipelines, std::uint64_t seed) {
  SimOptions opts = mp5_options(pipelines, seed);
  opts.ideal_queues = true;
  opts.sharding = ShardingPolicy::kIdealLpt;
  return opts;
}

SimOptions scr_options(std::uint32_t pipelines, std::uint64_t seed) {
  SimOptions opts = mp5_options(pipelines, seed);
  opts.variant = DesignVariant::kScr;
  return opts;
}

SimOptions relaxed_options(std::uint32_t pipelines, std::uint64_t seed,
                           std::uint32_t staleness) {
  SimOptions opts = mp5_options(pipelines, seed);
  opts.variant = DesignVariant::kRelaxed;
  opts.staleness_bound = staleness;
  return opts;
}

} // namespace mp5
