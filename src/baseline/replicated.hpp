// Replicated-state design variants (ISSUE 10): State-Compute Replication
// and relaxed-consistency replication, the two published alternatives to
// MP5's shared-state D1-D4 design.
//
// Shared model (ReplicatedSimulator): k independent linear pipelines, each
// holding a FULL replica of every register array. An arriving packet is
// sprayed to pipeline seq % k and executes the whole program against that
// pipeline's local replica — no cross-pipeline steering, no phantoms, no
// sharding. Whenever a packet finishes a stateful stage, a *digest*
// (the packet's header snapshot at stage entry) is broadcast to the other
// replicas, which replay the stage's compute against their own local state
// when the digest is delivered. The two variants differ only in when
// delivery happens:
//
//   * SCR (ScrSimulator; Xu et al., arXiv 2309.14647): the digest rides a
//     dedicated replication channel and is replayed after one pipeline
//     traversal — delivery at `execution cycle + num_stages`.
//   * relaxed (RelaxedSimulator; Cascone et al., arXiv 1703.05442):
//     digests are buffered and applied only at periodic synchronization
//     boundaries, every Δ = SimOptions::staleness_bound cycles — a read
//     observes remote updates at most Δ cycles stale.
//
// Neither variant enforces C1: a read on one replica can miss a
// concurrent update executed on another, which is exactly where these
// designs diverge from the single-pipeline reference while MP5 does not.
// The differential fuzzer classifies each generated program as equivalent
// or divergent per variant (src/fuzz/differ.hpp) and shrinks the
// divergent-where-MP5-isn't cases into committed witnesses.
//
// Both simulators take the common SimOptions. MP5-only knobs (threads,
// event engine, sharding, phantoms, faults, telemetry, ...) are rejected
// at construction with a ConfigError naming the variant and the knob —
// never silently ignored (the ISSUE 10 validation sweep). Supported:
// fast_forward (bit-identical including cycles_run), record_egress,
// check_c1, paranoid_checks, max_cycles, seed, and mp5-checkpoint v1
// checkpoint/restore (the config fingerprint covers variant and
// staleness bound, so cross-variant restores are refused).
#pragma once

#include <deque>
#include <optional>
#include <string_view>
#include <vector>

#include "banzai/ir.hpp"
#include "metrics/c1_checker.hpp"
#include "metrics/sim_result.hpp"
#include "mp5/options.hpp"
#include "mp5/transform.hpp"
#include "trace/trace.hpp"

namespace mp5 {

class ReplicatedSimulator {
public:
  ReplicatedSimulator(const Mp5Program& program, const SimOptions& options);

  SimResult run(const Trace& trace);

  /// Restore from an mp5-checkpoint v1 blob emitted by this variant's
  /// checkpoint_sink and finish the run. The config fingerprint (which
  /// covers variant and staleness_bound) must match; requires a freshly
  /// constructed simulator.
  SimResult resume(const Trace& trace, std::string_view checkpoint_blob);

private:
  /// One broadcast state update: replay stage `stage` of packet `seq`
  /// (headers snapshotted at stage entry) on every replica except
  /// `origin`, at cycle `deliver`.
  struct Digest {
    Cycle deliver = 0;
    SeqNo seq = 0;
    StageId stage = 0;
    PipelineId origin = 0;
    std::vector<Value> headers;
  };

  /// In-flight packet; replicated designs need no access plan (every
  /// replica holds all state), so this is leaner than packet/packet.hpp.
  struct Pkt {
    SeqNo seq = 0;
    Cycle arrival_cycle = 0;
    std::uint64_t flow = 0;
    std::vector<Value> headers;
  };

  SimResult run_loop(const Trace& trace, Cycle start);
  void admit(const TraceItem& item, Cycle now);
  void step_cell(PipelineId p, StageId st, Cycle now);
  void apply_due_digests(Cycle now);
  /// Delivery cycle for a digest generated at `now` (variant-specific).
  Cycle deliver_cycle(Cycle now) const;
  bool heap_greater(const Digest& a, const Digest& b) const;
  void push_digest(Digest&& d);
  void pop_digest();
  void check_accounting(Cycle now) const;
  void do_checkpoint(Cycle now);
  std::string serialize_state(Cycle now) const;
  Cycle restore_state(ByteReader& r);

  const Mp5Program* prog_;
  SimOptions opts_;
  std::uint32_t k_ = 0;
  StageId num_stages_ = 0;

  /// Per-pipeline full register replica. final_registers = replica 0
  /// (all replicas agree once every digest has been applied).
  std::vector<ir::FlatRegFile> replicas_;
  std::vector<std::vector<std::optional<Pkt>>> cells_; // [pipeline][stage]
  std::vector<std::deque<Pkt>> ingress_;
  /// Min-heap ordered by (deliver, seq, stage): replay happens in packet
  /// history order regardless of generation interleaving.
  std::vector<Digest> digests_;

  std::size_t cursor_ = 0;
  SeqNo next_seq_ = 0;
  std::uint64_t live_packets_ = 0;
  std::size_t max_ingress_depth_ = 0;
  Cycle next_checkpoint_ = 0;
  bool ran_ = false;

  SimResult result_;
  C1Checker c1_;
};

/// SCR: replay after one pipeline traversal.
class ScrSimulator : public ReplicatedSimulator {
public:
  ScrSimulator(const Mp5Program& program, const SimOptions& options);
};

/// Relaxed consistency: replay at staleness_bound boundaries.
class RelaxedSimulator : public ReplicatedSimulator {
public:
  RelaxedSimulator(const Mp5Program& program, const SimOptions& options);
};

} // namespace mp5
