// State-of-the-art multi-pipelined switch baseline (§2.3): static port-to-
// pipeline mapping, no state sharing between pipelines, and packet
// re-circulation as the only way to reach state in another pipeline.
//
// Model: k independent linear Banzai pipelines. Register state is sharded
// statically at compile time (random placement, never rebalanced; pinned
// arrays in pipeline 0). A packet is processed by the pipeline its ingress
// port maps to; any planned access whose state lives in the current
// pipeline executes as the packet passes the corresponding stage. If
// accesses remain when the packet reaches the end of the pipeline, it is
// re-circulated: re-injected into the ingress queue of the pipeline
// holding the next pending state, competing with fresh arrivals for the
// one-packet-per-cycle admission slot. This reproduces both documented
// costs of recirculation: the throughput penalty (each pass consumes a
// pipeline traversal) and the C1 order violations from the recirculation
// delay (§2.3.1, Example 2).
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "metrics/c1_checker.hpp"
#include "metrics/sim_result.hpp"
#include "mp5/shard_map.hpp"
#include "mp5/transform.hpp"
#include "trace/trace.hpp"

namespace mp5 {

struct RecircOptions {
  std::uint32_t pipelines = 4;
  std::uint32_t ports = 64;
  /// Per-pipeline ingress queue bound; fresh arrivals are tail-dropped
  /// when it is full (recirculated packets always re-enter, with priority,
  /// as on production switches). 0 = unbounded.
  std::size_t ingress_capacity = 64;
  std::uint64_t max_cycles = 5'000'000;
  bool record_egress = false;
  bool check_c1 = true;
  std::uint64_t seed = 1;
};

class RecircSimulator {
public:
  RecircSimulator(const Mp5Program& program, const RecircOptions& options);

  SimResult run(const Trace& trace);

private:
  void admit(const TraceItem& item, Cycle now);
  void step_cell(PipelineId p, StageId st, Cycle now);
  void resolve_conservative_guards(Packet& pkt, StageId done_stage);
  void finish_pass(Packet&& pkt, PipelineId p, Cycle now);

  const Mp5Program* prog_;
  RecircOptions opts_;
  StageId num_stages_;
  std::uint32_t k_;

  std::unique_ptr<ShardedState> state_;
  std::vector<std::vector<std::optional<Packet>>> cells_; // [pipeline][stage]
  std::vector<std::deque<Packet>> ingress_;

  const Trace* trace_ = nullptr;
  std::size_t cursor_ = 0;
  SeqNo next_seq_ = 0;
  std::uint64_t live_packets_ = 0;
  std::size_t max_ingress_depth_ = 0;

  SimResult result_;
  C1Checker c1_;
};

} // namespace mp5
