#include "baseline/replicated.hpp"

#include <algorithm>
#include <string>
#include <tuple>
#include <utility>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "mp5/checkpoint.hpp"

namespace mp5 {
namespace {

/// Collapses an atom's read-modify-write into one logical access, like the
/// recirculation baseline's observer: C1 reasons about packets touching a
/// state, not about individual port operations.
struct C1Observer final : ir::AccessObserver {
  void on_state_access(RegId reg, RegIndex index, bool /*is_write*/) override {
    if (seen && reg == last_reg && index == last_index) return;
    checker->on_access(reg, index, seq);
    last_reg = reg;
    last_index = index;
    seen = true;
  }
  C1Checker* checker = nullptr;
  SeqNo seq = 0;
  RegId last_reg = ir::kNoReg;
  RegIndex last_index = 0;
  bool seen = false;
};

/// Every MP5-only knob is rejected by name — the replicated designs must
/// never run silently with wrong semantics (ISSUE 10 validation sweep).
void validate_replicated(const SimOptions& o) {
  const std::string v = std::string("variant '") + to_string(o.variant) + "'";
  if (o.variant == DesignVariant::kMp5) {
    throw ConfigError(
        "SimOptions: variant 'mp5' selects the shared-state Mp5Simulator; "
        "ReplicatedSimulator implements variants 'scr' and 'relaxed' only");
  }
  if (o.pipelines == 0) {
    throw ConfigError("SimOptions: pipelines must be > 0");
  }
  if (o.variant == DesignVariant::kRelaxed && o.staleness_bound == 0) {
    throw ConfigError("SimOptions: " + v +
                      " requires staleness_bound >= 1 (the synchronization "
                      "period in cycles)");
  }
  if (o.variant == DesignVariant::kScr && o.staleness_bound != 0) {
    throw ConfigError("SimOptions: " + v +
                      " replays digests after a fixed pipeline traversal; "
                      "the staleness_bound knob applies to variant "
                      "'relaxed' only");
  }
  if (o.threads == 0) {
    throw ConfigError("SimOptions: threads must be >= 1");
  }
  if (o.threads > 1) {
    throw ConfigError("SimOptions: " + v +
                      " does not support the parallel engine; the threads "
                      "knob applies to variant 'mp5' only");
  }
  if (o.engine != SimEngine::kLockstep) {
    throw ConfigError("SimOptions: " + v +
                      " runs its own dense cycle walk; the engine knob "
                      "(event engine) applies to variant 'mp5' only");
  }
  if (o.sharding != ShardingPolicy::kDynamic) {
    throw ConfigError("SimOptions: " + v +
                      " replicates every register on every pipeline; the "
                      "sharding knob applies to variant 'mp5' only (leave "
                      "the kDynamic default)");
  }
  if (o.reference_rebalance) {
    throw ConfigError("SimOptions: " + v +
                      " performs no rebalancing; the reference_rebalance "
                      "knob applies to variant 'mp5' only");
  }
  if (!o.phantoms) {
    throw ConfigError("SimOptions: " + v +
                      " has no phantom packets to disable; the phantoms "
                      "knob (D4 ablation) applies to variant 'mp5' only");
  }
  if (o.realistic_phantom_channel) {
    throw ConfigError("SimOptions: " + v +
                      " has no phantom channel; the "
                      "realistic_phantom_channel knob applies to variant "
                      "'mp5' only");
  }
  if (o.ideal_queues) {
    throw ConfigError("SimOptions: " + v +
                      " queues per pipeline, not per index; the "
                      "ideal_queues knob applies to variant 'mp5' only");
  }
  if (o.naive_single_pipeline) {
    throw ConfigError("SimOptions: " + v +
                      " sprays packets across all pipelines; the "
                      "naive_single_pipeline knob applies to variant 'mp5' "
                      "only");
  }
  if (o.starvation_threshold != 0) {
    throw ConfigError("SimOptions: " + v +
                      " never queues packets behind state; the "
                      "starvation_threshold knob applies to variant 'mp5' "
                      "only");
  }
  if (o.ecn_threshold != 0) {
    throw ConfigError("SimOptions: " + v +
                      " has no stage FIFOs to mark from; the ecn_threshold "
                      "knob applies to variant 'mp5' only");
  }
  if (o.fifo_capacity != 0) {
    throw ConfigError("SimOptions: " + v +
                      " admits through unbounded ingress queues; the "
                      "fifo_capacity knob applies to variant 'mp5' only");
  }
  if (!o.faults.empty()) {
    throw ConfigError("SimOptions: " + v +
                      " does not model fault injection; the faults knob "
                      "applies to variant 'mp5' only");
  }
  if (o.telemetry != nullptr) {
    throw ConfigError("SimOptions: " + v +
                      " registers no metrics; the telemetry knob applies "
                      "to variant 'mp5' only");
  }
  if (o.timeline) {
    throw ConfigError("SimOptions: " + v +
                      " emits no simulator events; the timeline knob "
                      "applies to variant 'mp5' only");
  }
  if (o.track_flow_reordering) {
    throw ConfigError("SimOptions: " + v +
                      " does not implement the §3.4 ordering stage; the "
                      "track_flow_reordering knob applies to variant 'mp5' "
                      "only");
  }
  if (o.egress_sink) {
    throw ConfigError("SimOptions: " + v +
                      " does not stream egress records; the egress_sink "
                      "knob applies to variant 'mp5' only");
  }
  if (o.fault_drop_sink) {
    throw ConfigError("SimOptions: " + v +
                      " never drops packets to faults; the fault_drop_sink "
                      "knob applies to variant 'mp5' only");
  }
  if (o.checkpoint_interval != 0 && !o.checkpoint_sink) {
    throw ConfigError(
        "SimOptions: checkpoint_interval requires a checkpoint_sink to "
        "receive the blobs");
  }
}

} // namespace

ReplicatedSimulator::ReplicatedSimulator(const Mp5Program& program,
                                         const SimOptions& options)
    : prog_(&program), opts_(options) {
  validate_replicated(opts_);
  k_ = opts_.pipelines;
  num_stages_ = prog_->num_stages;
  replicas_.reserve(k_);
  for (std::uint32_t p = 0; p < k_; ++p) {
    replicas_.emplace_back(prog_->pvsm.initial_registers());
  }
  cells_.assign(k_, std::vector<std::optional<Pkt>>(num_stages_));
  ingress_.resize(k_);
  if (opts_.checkpoint_interval != 0) {
    next_checkpoint_ = opts_.checkpoint_interval;
  }
}

Cycle ReplicatedSimulator::deliver_cycle(Cycle now) const {
  if (opts_.variant == DesignVariant::kScr) {
    // One traversal of the replication channel + replay pipeline.
    return now + num_stages_;
  }
  // Relaxed: the next synchronization boundary strictly after `now`.
  const Cycle d = opts_.staleness_bound;
  return ((now / d) + 1) * d;
}

bool ReplicatedSimulator::heap_greater(const Digest& a, const Digest& b) const {
  return std::tie(a.deliver, a.seq, a.stage) >
         std::tie(b.deliver, b.seq, b.stage);
}

void ReplicatedSimulator::push_digest(Digest&& d) {
  digests_.push_back(std::move(d));
  std::push_heap(digests_.begin(), digests_.end(),
                 [this](const Digest& a, const Digest& b) {
                   return heap_greater(a, b);
                 });
}

void ReplicatedSimulator::pop_digest() {
  std::pop_heap(digests_.begin(), digests_.end(),
                [this](const Digest& a, const Digest& b) {
                  return heap_greater(a, b);
                });
  digests_.pop_back();
}

void ReplicatedSimulator::apply_due_digests(Cycle now) {
  // Delivery order is (deliver, seq, stage): replicas replay remote packet
  // history in arrival order regardless of how execution interleaved.
  while (!digests_.empty() && digests_.front().deliver <= now) {
    const Digest d = digests_.front();
    pop_digest();
    const ir::Stage& stage = prog_->pvsm.stages[d.stage - 1];
    for (PipelineId p = 0; p < k_; ++p) {
      if (p == d.origin) continue;
      std::vector<Value> headers = d.headers;
      ir::exec_stage(stage, headers, replicas_[p], prog_->pvsm.registers);
    }
  }
}

SimResult ReplicatedSimulator::run(const Trace& trace) {
  if (ran_) {
    throw Error("ReplicatedSimulator::run requires a freshly constructed "
                "simulator");
  }
  ran_ = true;
  return run_loop(trace, 0);
}

SimResult ReplicatedSimulator::run_loop(const Trace& trace, Cycle start) {
  Cycle now = start;
  bool first = result_.offered == 0;
  while (live_packets_ > 0 || cursor_ < trace.size() || !digests_.empty()) {
    if (now >= opts_.max_cycles) {
      throw Error("ReplicatedSimulator: max_cycles exceeded");
    }
    if (opts_.checkpoint_interval != 0 && now == next_checkpoint_) {
      do_checkpoint(now);
      next_checkpoint_ += opts_.checkpoint_interval;
    }
    if (opts_.fast_forward && live_packets_ == 0) {
      // Nothing in flight: jump to the next arrival or digest delivery.
      // Clamped to the next checkpoint boundary so the cadence is
      // preserved; results (including cycles_run) are bit-identical with
      // the optimization off.
      Cycle target = opts_.max_cycles;
      if (cursor_ < trace.size()) {
        target = std::min(target,
                          static_cast<Cycle>(trace[cursor_].arrival_time));
      }
      if (!digests_.empty()) {
        target = std::min(target, digests_.front().deliver);
      }
      if (opts_.checkpoint_interval != 0) {
        target = std::min(target, next_checkpoint_);
      }
      if (target > now) {
        now = target;
        continue; // re-run the boundary checks at the new cycle
      }
    }
    apply_due_digests(now);
    while (cursor_ < trace.size() &&
           trace[cursor_].arrival_time < static_cast<double>(now + 1)) {
      admit(trace[cursor_], now);
      ++cursor_;
      if (first) {
        result_.first_arrival = now;
        first = false;
      }
      result_.last_arrival = now;
    }
    for (StageId st = num_stages_; st-- > 0;) {
      for (PipelineId p = 0; p < k_; ++p) step_cell(p, st, now);
    }
    for (PipelineId p = 0; p < k_; ++p) {
      if (!cells_[p][0].has_value() && !ingress_[p].empty()) {
        cells_[p][0] = std::move(ingress_[p].front());
        ingress_[p].pop_front();
      }
      max_ingress_depth_ = std::max(max_ingress_depth_, ingress_[p].size());
    }
    if (opts_.paranoid_checks) check_accounting(now);
    ++now;
  }
  result_.cycles_run = now;
  result_.final_registers = replicas_[0].storage();
  result_.c1_violating_packets = c1_.violating_packets();
  result_.max_queue_depth = max_ingress_depth_;
  std::sort(result_.egress.begin(), result_.egress.end(),
            [](const EgressRecord& a, const EgressRecord& b) {
              return a.seq < b.seq;
            });
  return std::move(result_);
}

void ReplicatedSimulator::admit(const TraceItem& item, Cycle now) {
  Pkt pkt;
  pkt.seq = next_seq_++;
  pkt.arrival_cycle = now;
  pkt.flow = item.flow;
  pkt.headers.assign(prog_->pvsm.num_slots(), 0);
  for (std::size_t i = 0; i < item.fields.size() && i < pkt.headers.size();
       ++i) {
    pkt.headers[i] = item.fields[i];
  }
  ++result_.offered;
  ++live_packets_;
  // Round-robin spray: every replica holds all state, so placement is pure
  // load balancing (no address resolution, no steering).
  ingress_[static_cast<PipelineId>(pkt.seq % k_)].push_back(std::move(pkt));
}

void ReplicatedSimulator::step_cell(PipelineId p, StageId st, Cycle now) {
  if (!cells_[p][st].has_value()) return;
  Pkt pkt = std::move(*cells_[p][st]);
  cells_[p][st].reset();

  if (st > 0) {
    const ir::Stage& stage = prog_->pvsm.stages[st - 1];
    const bool stateful = !stage.stateful_regs().empty();
    std::vector<Value> snapshot;
    if (stateful && k_ > 1) snapshot = pkt.headers;
    C1Observer obs;
    obs.checker = &c1_;
    obs.seq = pkt.seq;
    ir::exec_stage(stage, pkt.headers, replicas_[p], prog_->pvsm.registers,
                   opts_.check_c1 ? &obs : nullptr);
    if (stateful && k_ > 1) {
      Digest d;
      d.deliver = deliver_cycle(now);
      d.seq = pkt.seq;
      d.stage = st;
      d.origin = p;
      d.headers = std::move(snapshot);
      push_digest(std::move(d));
      // Counted as steers: the cross-pipeline replication traffic is this
      // design's analogue of MP5's crossbar traversals.
      ++result_.steers;
    }
  }

  if (st == num_stages_ - 1) {
    ++result_.egressed;
    --live_packets_;
    result_.last_egress = now;
    if (opts_.record_egress) {
      EgressRecord rec;
      rec.seq = pkt.seq;
      rec.egress_cycle = now;
      rec.flow = pkt.flow;
      rec.headers = std::move(pkt.headers);
      result_.egress.push_back(std::move(rec));
    }
  } else {
    cells_[p][st + 1] = std::move(pkt);
  }
}

void ReplicatedSimulator::check_accounting(Cycle now) const {
  std::uint64_t counted = 0;
  for (PipelineId p = 0; p < k_; ++p) {
    counted += ingress_[p].size();
    for (StageId st = 0; st < num_stages_; ++st) {
      if (cells_[p][st].has_value()) ++counted;
    }
  }
  if (counted != live_packets_) {
    throw Error("ReplicatedSimulator: live-packet accounting broke at cycle " +
                std::to_string(now) + " (" + std::to_string(counted) +
                " packets found, " + std::to_string(live_packets_) +
                " expected)");
  }
  if (result_.offered != result_.egressed + live_packets_) {
    throw Error("ReplicatedSimulator: offered/egressed/live conservation "
                "broke at cycle " +
                std::to_string(now));
  }
}

// ---------------------------------------------------------------------------
// Checkpoint/restore (mp5-checkpoint v1 framing; the config fingerprint
// covers variant and staleness_bound, so cross-variant restores refuse).
// ---------------------------------------------------------------------------

namespace {

void save_pkt(ByteWriter& w, SeqNo seq, Cycle arrival, std::uint64_t flow,
              const std::vector<Value>& headers) {
  w.u64(seq);
  w.u64(arrival);
  w.u64(flow);
  w.u64(headers.size());
  for (const Value v : headers) w.i64(v);
}

} // namespace

std::string ReplicatedSimulator::serialize_state(Cycle now) const {
  ByteWriter w;
  w.u64(now);
  w.u64(next_seq_);
  w.u64(live_packets_);
  w.u64(cursor_);
  w.u64(max_ingress_depth_);
  result_.save(w);
  for (const ir::FlatRegFile& replica : replicas_) {
    for (const auto& reg : replica.storage()) {
      w.u64(reg.size());
      for (const Value v : reg) w.i64(v);
    }
  }
  for (PipelineId p = 0; p < k_; ++p) {
    for (StageId st = 0; st < num_stages_; ++st) {
      const auto& cell = cells_[p][st];
      w.boolean(cell.has_value());
      if (cell.has_value()) {
        save_pkt(w, cell->seq, cell->arrival_cycle, cell->flow,
                 cell->headers);
      }
    }
    w.u64(ingress_[p].size());
    for (const Pkt& pkt : ingress_[p]) {
      save_pkt(w, pkt.seq, pkt.arrival_cycle, pkt.flow, pkt.headers);
    }
  }
  // The heap's raw array is serialized as-is: restoring it verbatim
  // preserves the exact pop order.
  w.u64(digests_.size());
  for (const Digest& d : digests_) {
    w.u64(d.deliver);
    w.u64(d.seq);
    w.u32(d.stage);
    w.u32(d.origin);
    w.u64(d.headers.size());
    for (const Value v : d.headers) w.i64(v);
  }
  c1_.save(w);
  return w.take();
}

Cycle ReplicatedSimulator::restore_state(ByteReader& r) {
  const Cycle now = r.u64();
  next_seq_ = r.u64();
  live_packets_ = r.u64();
  cursor_ = static_cast<std::size_t>(r.u64());
  max_ingress_depth_ = static_cast<std::size_t>(r.u64());
  result_.load(r);

  const std::size_t num_slots = prog_->pvsm.num_slots();
  auto load_headers = [&](std::vector<Value>& headers) {
    const std::uint64_t n = r.count(8);
    if (n != num_slots) {
      throw Error("checkpoint: packet header width mismatch");
    }
    headers.resize(static_cast<std::size_t>(n));
    for (Value& v : headers) v = r.i64();
  };
  auto load_pkt = [&](Pkt& pkt) {
    pkt.seq = r.u64();
    pkt.arrival_cycle = r.u64();
    pkt.flow = r.u64();
    load_headers(pkt.headers);
  };

  for (ir::FlatRegFile& replica : replicas_) {
    std::vector<std::vector<Value>> storage;
    storage.reserve(prog_->pvsm.registers.size());
    for (const auto& spec : prog_->pvsm.registers) {
      const std::uint64_t n = r.count(8);
      if (n != spec.size) {
        throw Error("checkpoint: register size mismatch for '" + spec.name +
                    "'");
      }
      std::vector<Value> values(static_cast<std::size_t>(n));
      for (Value& v : values) v = r.i64();
      storage.push_back(std::move(values));
    }
    replica = ir::FlatRegFile(std::move(storage));
  }

  for (PipelineId p = 0; p < k_; ++p) {
    for (StageId st = 0; st < num_stages_; ++st) {
      cells_[p][st].reset();
      if (r.boolean()) {
        Pkt pkt;
        load_pkt(pkt);
        cells_[p][st] = std::move(pkt);
      }
    }
    ingress_[p].clear();
    const std::uint64_t n = r.count(28);
    for (std::uint64_t i = 0; i < n; ++i) {
      Pkt pkt;
      load_pkt(pkt);
      ingress_[p].push_back(std::move(pkt));
    }
  }

  digests_.clear();
  const std::uint64_t ndigests = r.count(32);
  digests_.reserve(static_cast<std::size_t>(ndigests));
  for (std::uint64_t i = 0; i < ndigests; ++i) {
    Digest d;
    d.deliver = r.u64();
    d.seq = r.u64();
    d.stage = r.u32();
    d.origin = r.u32();
    if (d.stage == 0 || d.stage >= num_stages_ || d.origin >= k_) {
      throw Error("checkpoint: digest addresses an invalid stage or lane");
    }
    load_headers(d.headers);
    digests_.push_back(std::move(d));
  }
  c1_.load(r);
  return now;
}

void ReplicatedSimulator::do_checkpoint(Cycle now) {
  opts_.checkpoint_sink(
      now, frame_checkpoint(config_fingerprint(*prog_, opts_), now,
                            serialize_state(now)));
}

SimResult ReplicatedSimulator::resume(const Trace& trace,
                                      std::string_view checkpoint_blob) {
  if (ran_ || next_seq_ != 0) {
    throw Error(
        "ReplicatedSimulator::resume requires a freshly constructed "
        "simulator");
  }
  ran_ = true;
  const CheckpointInfo info = parse_checkpoint(checkpoint_blob);
  const std::uint64_t expect = config_fingerprint(*prog_, opts_);
  if (info.fingerprint != expect) {
    throw Error(
        "checkpoint configuration fingerprint mismatch: the checkpoint was "
        "taken under a different program, variant or semantic simulator "
        "options");
  }
  ByteReader r(info.payload);
  const Cycle now = restore_state(r);
  r.expect_done();
  if (now != info.cycle) {
    throw Error("checkpoint corrupted (frame/payload cycle mismatch)");
  }
  if (opts_.checkpoint_interval != 0) {
    next_checkpoint_ = ((now / opts_.checkpoint_interval) + 1) *
                       opts_.checkpoint_interval;
  }
  return run_loop(trace, now);
}

ScrSimulator::ScrSimulator(const Mp5Program& program,
                           const SimOptions& options)
    : ReplicatedSimulator(program, options) {
  if (options.variant != DesignVariant::kScr) {
    throw ConfigError(std::string("ScrSimulator requires SimOptions::variant "
                                  "== 'scr' (got '") +
                      to_string(options.variant) + "')");
  }
}

RelaxedSimulator::RelaxedSimulator(const Mp5Program& program,
                                   const SimOptions& options)
    : ReplicatedSimulator(program, options) {
  if (options.variant != DesignVariant::kRelaxed) {
    throw ConfigError(
        std::string("RelaxedSimulator requires SimOptions::variant == "
                    "'relaxed' (got '") +
        to_string(options.variant) + "')");
  }
}

} // namespace mp5
