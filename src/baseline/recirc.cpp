#include "baseline/recirc.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mp5 {
namespace {

struct C1Observer final : ir::AccessObserver {
  void on_state_access(RegId reg, RegIndex index, bool /*is_write*/) override {
    if (seen && reg == last_reg && index == last_index) return;
    checker->on_access(reg, index, seq);
    last_reg = reg;
    last_index = index;
    seen = true;
  }
  C1Checker* checker = nullptr;
  SeqNo seq = 0;
  RegId last_reg = ir::kNoReg;
  RegIndex last_index = 0;
  bool seen = false;
};

bool entry_live(const PlannedAccess& e) { return !e.done && !e.cancelled; }

} // namespace

RecircSimulator::RecircSimulator(const Mp5Program& program,
                                 const RecircOptions& options)
    : prog_(&program), opts_(options) {
  if (opts_.pipelines == 0) throw ConfigError("pipelines must be > 0");
  k_ = opts_.pipelines;
  num_stages_ = prog_->num_stages;
  Rng rng(opts_.seed);
  state_ = std::make_unique<ShardedState>(
      prog_->pvsm.registers, prog_->shardable, k_,
      ShardingPolicy::kStaticRandom, rng.fork());
  cells_.assign(k_, std::vector<std::optional<Packet>>(num_stages_));
  ingress_.resize(k_);
}

SimResult RecircSimulator::run(const Trace& trace) {
  trace_ = &trace;
  cursor_ = 0;
  result_ = SimResult{};

  Cycle now = 0;
  bool first = true;
  while (live_packets_ > 0 || cursor_ < trace_->size()) {
    if (now >= opts_.max_cycles) {
      throw Error("RecircSimulator: max_cycles exceeded");
    }
    while (cursor_ < trace_->size() &&
           (*trace_)[cursor_].arrival_time < static_cast<double>(now + 1)) {
      admit((*trace_)[cursor_], now);
      ++cursor_;
      if (first) {
        result_.first_arrival = now;
        first = false;
      }
      result_.last_arrival = now;
    }
    // Stages drain back-to-front; stage 0 then admits one packet per
    // pipeline from its ingress queue (fresh arrivals and recirculations
    // compete for this slot — the recirculation throughput penalty).
    for (StageId st = num_stages_; st-- > 0;) {
      for (PipelineId p = 0; p < k_; ++p) step_cell(p, st, now);
    }
    for (PipelineId p = 0; p < k_; ++p) {
      if (!cells_[p][0].has_value() && !ingress_[p].empty()) {
        cells_[p][0] = std::move(ingress_[p].front());
        ingress_[p].pop_front();
      }
      max_ingress_depth_ = std::max(max_ingress_depth_, ingress_[p].size());
    }
    ++now;
  }
  result_.cycles_run = now;
  result_.final_registers = state_->storage();
  result_.c1_violating_packets = c1_.violating_packets();
  result_.max_queue_depth = max_ingress_depth_;
  std::sort(result_.egress.begin(), result_.egress.end(),
            [](const EgressRecord& a, const EgressRecord& b) {
              return a.seq < b.seq;
            });
  return std::move(result_);
}

void RecircSimulator::admit(const TraceItem& item, Cycle now) {
  Packet pkt;
  pkt.seq = next_seq_++;
  pkt.arrival_cycle = now;
  pkt.port = item.port;
  pkt.size_bytes = item.size_bytes;
  pkt.flow = item.flow;
  pkt.headers.assign(prog_->pvsm.num_slots(), 0);
  for (std::size_t i = 0; i < item.fields.size() && i < pkt.headers.size();
       ++i) {
    pkt.headers[i] = item.fields[i];
  }
  for (const auto& instr : prog_->resolver) {
    ir::exec_instr(instr, pkt.headers, *state_, prog_->pvsm.registers);
  }
  for (const auto& desc : prog_->accesses) {
    if (desc.guard != ir::kNoSlot && desc.guard_resolvable) {
      const bool truthy =
          pkt.headers[static_cast<std::size_t>(desc.guard)] != 0;
      if (desc.guard_negate ? truthy : !truthy) continue;
    }
    PlannedAccess acc;
    acc.reg = desc.reg;
    acc.stage = desc.stage;
    acc.index = desc.index_resolvable
                    ? ir::resolve_index(desc.index, pkt.headers,
                                        prog_->pvsm.registers[desc.reg].size)
                    : kUnresolvedIndex;
    acc.pipeline = state_->pipeline_of(desc.reg, acc.index);
    if (desc.guard != ir::kNoSlot && !desc.guard_resolvable) {
      acc.guard = GuardStatus::kConservative;
      acc.guard_known_after_stage = desc.guard_known_after_stage;
      acc.guard_slot = desc.guard;
      acc.guard_negate = desc.guard_negate;
    }
    state_->note_resolved(desc.reg, acc.index);
    pkt.plan.push_back(acc);
  }

  // Static port-to-pipeline mapping (§2.3): contiguous port blocks.
  const PipelineId pipe = std::min(
      static_cast<PipelineId>(static_cast<std::uint64_t>(pkt.port) * k_ /
                              std::max(1u, opts_.ports)),
      k_ - 1);
  ++result_.offered;
  if (opts_.ingress_capacity != 0 &&
      ingress_[pipe].size() >= opts_.ingress_capacity) {
    ++result_.dropped_data; // ingress tail drop under overload
    // note_completed for the planned accesses, mirroring drop cleanup.
    for (auto& e : pkt.plan) {
      if (!e.done && !e.cancelled) state_->note_completed(e.reg, e.index);
    }
    return;
  }
  ++live_packets_;
  ingress_[pipe].push_back(std::move(pkt));
}

void RecircSimulator::step_cell(PipelineId p, StageId st, Cycle now) {
  if (!cells_[p][st].has_value()) return;
  Packet pkt = std::move(*cells_[p][st]);
  cells_[p][st].reset();

  if (st > 0) {
    const ir::Stage& stage = prog_->pvsm.stages[st - 1];
    C1Observer obs;
    obs.checker = &c1_;
    obs.seq = pkt.seq;
    for (const auto& atom : stage.atoms) {
      bool allow_state = false;
      if (atom.stateful()) {
        for (const auto& e : pkt.plan) {
          if (e.stage == st && e.reg == atom.reg && entry_live(e) &&
              e.pipeline == p) {
            allow_state = true;
            break;
          }
        }
      }
      if (atom.stateful() && !allow_state) {
        // State lives in another pipeline (or the branch is not taken):
        // execute only the atom's pure computation. Pure instructions are
        // idempotent, so re-execution on later passes is harmless.
        for (const auto& instr : atom.body) {
          if (instr.op == ir::TacOp::kRegRead ||
              instr.op == ir::TacOp::kRegWrite) {
            continue;
          }
          ir::exec_instr(instr, pkt.headers, *state_, prog_->pvsm.registers);
        }
      } else {
        ir::exec_atom(atom, pkt.headers, *state_, prog_->pvsm.registers,
                      opts_.check_c1 ? &obs : nullptr);
      }
    }
    for (auto& e : pkt.plan) {
      if (e.stage == st && e.pipeline == p && entry_live(e)) {
        e.done = true;
        state_->note_completed(e.reg, e.index);
      }
    }
    resolve_conservative_guards(pkt, st);
  }

  if (st == num_stages_ - 1) {
    finish_pass(std::move(pkt), p, now);
  } else {
    cells_[p][st + 1] = std::move(pkt);
  }
}

void RecircSimulator::resolve_conservative_guards(Packet& pkt,
                                                  StageId done_stage) {
  for (auto& e : pkt.plan) {
    if (e.guard != GuardStatus::kConservative || !entry_live(e)) continue;
    if (e.guard_known_after_stage > done_stage) continue;
    // Unlike MP5, a recirculating packet may reach the guard-producing
    // stage before the stateful accesses feeding the guard have executed
    // (they can live in another pipeline). Only resolve once every access
    // at or before the producing stage is complete, i.e. once the pure
    // guard computation has been replayed over fresh register values.
    bool deps_done = true;
    for (const auto& d : pkt.plan) {
      if (&d != &e && entry_live(d) &&
          d.stage <= e.guard_known_after_stage) {
        deps_done = false;
        break;
      }
    }
    if (!deps_done) continue;
    const bool truthy =
        pkt.headers[static_cast<std::size_t>(e.guard_slot)] != 0;
    const bool taken = e.guard_negate ? !truthy : truthy;
    if (taken) {
      e.guard = GuardStatus::kTaken;
    } else {
      e.cancelled = true;
      state_->note_completed(e.reg, e.index);
    }
  }
}

void RecircSimulator::finish_pass(Packet&& pkt, PipelineId /*p*/, Cycle now) {
  pkt.next_access = 0; // rescan: earlier-stage accesses may still be pending
  PlannedAccess* pending = pkt.pending_access();
  if (pending == nullptr) {
    ++result_.egressed;
    --live_packets_;
    result_.last_egress = now;
    if (opts_.record_egress) {
      EgressRecord rec;
      rec.seq = pkt.seq;
      rec.egress_cycle = now;
      rec.flow = pkt.flow;
      rec.headers = std::move(pkt.headers);
      result_.egress.push_back(std::move(rec));
    }
    return;
  }
  // Re-circulate to the pipeline holding the next pending state (§2.3).
  // Recirculated packets take priority over fresh arrivals at the ingress
  // (as on production switches), so the recirculation delay is bounded by
  // pipeline passes rather than by the standing ingress backlog.
  ++result_.recirculations;
  ingress_[pending->pipeline].push_front(std::move(pkt));
}

} // namespace mp5
