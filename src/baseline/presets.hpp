// Ready-made simulator configurations for the designs compared in §4.3.2:
// full MP5, the ablations (no dynamic sharding, no phantom ordering), the
// naive single-pipeline-state design, and the ideal upper bound.
#pragma once

#include "mp5/options.hpp"

namespace mp5 {

/// Full MP5 (D1-D4), unbounded adaptive FIFOs, dynamic sharding @100cyc.
SimOptions mp5_options(std::uint32_t pipelines, std::uint64_t seed);

/// MP5 without D2: state sharded randomly at compile time, never moved.
SimOptions no_d2_options(std::uint32_t pipelines, std::uint64_t seed);

/// MP5 without D4: no phantom packets; order holds only among packets
/// already queued at a stage (Figure 3 Table II behaviour).
SimOptions no_d4_options(std::uint32_t pipelines, std::uint64_t seed);

/// Naive shared-memory design: all state and all packets in pipeline 0.
SimOptions naive_options(std::uint32_t pipelines, std::uint64_t seed);

/// Ideal MP5 (§3.5.2): per-index queues (no head-of-line blocking), free
/// cancellation, LPT re-sharding.
SimOptions ideal_options(std::uint32_t pipelines, std::uint64_t seed);

/// State-Compute Replication (ISSUE 10): per-pipeline full register
/// replicas, remote updates replayed after one pipeline traversal.
/// Consumed by ScrSimulator (src/baseline/replicated.hpp).
SimOptions scr_options(std::uint32_t pipelines, std::uint64_t seed);

/// Relaxed-consistency replication (ISSUE 10): per-pipeline full register
/// replicas, remote updates batched to every `staleness` cycles. Consumed
/// by RelaxedSimulator. Default bound 64 cycles.
SimOptions relaxed_options(std::uint32_t pipelines, std::uint64_t seed,
                           std::uint32_t staleness = 64);

} // namespace mp5
