// Minimal streaming JSON emitter — no external dependency, just enough
// for the telemetry exporters: nested objects/arrays, string escaping,
// and locale-independent number formatting (NaN/Inf become null, since
// JSON has no representation for them).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mp5::telemetry {

class JsonWriter {
public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Next value inside an object is written under this key.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint32_t v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& null();

  /// Shorthand: key + scalar value.
  template <typename T>
  JsonWriter& kv(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

  /// True once every opened object/array has been closed.
  bool complete() const { return !stack_.empty() && stack_.front().closed; }

  static std::string escape(std::string_view s);

private:
  struct Frame {
    bool is_object = false;
    bool first = true;
    bool closed = false; // only meaningful for the root frame
  };

  void comma_for_value();

  std::ostream& out_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

} // namespace mp5::telemetry
