// Chrome trace_event exporter: dumps the telemetry event ring as a JSON
// object-format trace loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Mapping:
//   ts  <- simulated cycle (microsecond units in the viewer; 1 us == 1 cycle)
//   pid <- pipeline, tid <- stage (so each lane renders as a process row)
//   ph  <- "i" instant events, scope "t" (thread)
//   args.seq <- packet sequence number (omitted for packet-less events)
#pragma once

#include <ostream>

namespace mp5::telemetry {

class Telemetry;

inline constexpr int kChromeTraceSchemaVersion = 1;

/// Write the whole retained event ring (plus counter totals as trace
/// metadata). Throws Error if the telemetry object has events disabled.
void write_chrome_trace(std::ostream& out, const Telemetry& telemetry);

} // namespace mp5::telemetry
