#include "telemetry/chrome_trace.hpp"

#include <set>

#include "telemetry/json_writer.hpp"
#include "telemetry/telemetry.hpp"

namespace mp5::telemetry {

void write_chrome_trace(std::ostream& out, const Telemetry& telemetry) {
  const EventRing& ring = telemetry.events(); // throws when disabled

  JsonWriter json(out);
  json.begin_object();
  json.key("traceEvents").begin_array();

  // Name the per-pipeline "processes" so the viewer rows are readable.
  std::set<PipelineId> pipelines;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    pipelines.insert(ring.at(i).pipeline);
  }
  for (const PipelineId p : pipelines) {
    json.begin_object()
        .kv("name", "process_name")
        .kv("ph", "M")
        .kv("pid", p)
        .key("args")
        .begin_object()
        .kv("name", "pipeline " + std::to_string(p))
        .end_object()
        .end_object();
  }

  for (std::size_t i = 0; i < ring.size(); ++i) {
    const TimelineEvent& ev = ring.at(i);
    json.begin_object()
        .kv("name", to_string(ev.kind))
        .kv("cat", "mp5")
        .kv("ph", "i")
        .kv("s", "t")
        .kv("ts", ev.cycle)
        .kv("pid", ev.pipeline)
        .kv("tid", ev.stage);
    json.key("args").begin_object();
    if (ev.seq != kInvalidSeqNo) json.kv("seq", ev.seq);
    if (ev.arg != 0) json.kv("arg", ev.arg);
    json.end_object();
    json.end_object();
  }
  json.end_array();

  json.kv("displayTimeUnit", "ms");
  json.key("otherData").begin_object();
  json.kv("schema", "mp5-chrome-trace");
  json.kv("schema_version", kChromeTraceSchemaVersion);
  json.kv("events_recorded", ring.recorded());
  json.kv("events_dropped", ring.dropped());
  json.key("counters").begin_object();
  for (const auto& [name, counter] : telemetry.counters()) {
    json.kv(name, counter.value());
  }
  json.end_object();
  json.end_object();
  json.end_object();
  out << "\n";
}

} // namespace mp5::telemetry
