// BENCH_*.json emitter: every bench harness collects named rows of
// numeric metrics (plus optional string labels) and writes one
// schema-versioned file per harness, so future PRs can diff benchmark
// trajectories for regressions instead of eyeballing table printouts.
//
// Schema "mp5-bench", version 1 (documented in DESIGN.md "Telemetry"):
//   {
//     "schema": "mp5-bench", "schema_version": 1,
//     "bench": "<harness name>",
//     "rows": [ { "name": "...",
//                 "metrics": { "<metric>": <number>, ... },
//                 "labels":  { "<label>": "<string>", ... } }, ... ]
//   }
//
// Output directory: the MP5_BENCH_JSON_DIR environment variable when set,
// else the current working directory. File name: BENCH_<name>.json.
#pragma once

#include <cstddef>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace mp5::telemetry {

inline constexpr int kBenchSchemaVersion = 1;

class BenchReport {
public:
  /// `name` becomes both the "bench" field and the BENCH_<name>.json
  /// file name; keep it filesystem-safe.
  explicit BenchReport(std::string name);

  class Row {
  public:
    explicit Row(std::string name) : name_(std::move(name)) {}
    Row& metric(const std::string& key, double value) {
      metrics_[key] = value;
      return *this;
    }
    Row& label(const std::string& key, std::string value) {
      labels_[key] = std::move(value);
      return *this;
    }
    const std::string& name() const { return name_; }
    const std::map<std::string, double>& metrics() const { return metrics_; }
    const std::map<std::string, std::string>& labels() const {
      return labels_;
    }

  private:
    std::string name_;
    std::map<std::string, double> metrics_;
    std::map<std::string, std::string> labels_;
  };

  /// Find-or-append a row (insertion order is preserved in the output).
  Row& row(const std::string& name);

  const std::string& name() const { return name_; }
  std::size_t size() const { return rows_.size(); }

  void write_to(std::ostream& out) const;

  /// Write BENCH_<name>.json into `dir` (empty: $MP5_BENCH_JSON_DIR or
  /// "."). Returns the path written. Throws Error if the file cannot be
  /// opened.
  std::string write(const std::string& dir = "") const;

private:
  std::string name_;
  std::vector<Row> rows_;
  std::map<std::string, std::size_t> index_;
};

} // namespace mp5::telemetry
