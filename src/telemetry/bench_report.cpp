#include "telemetry/bench_report.hpp"

#include <cstdlib>
#include <fstream>

#include "common/error.hpp"
#include "telemetry/json_writer.hpp"

namespace mp5::telemetry {

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {
  if (name_.empty()) throw ConfigError("BenchReport: name must be non-empty");
}

BenchReport::Row& BenchReport::row(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return rows_[it->second];
  index_.emplace(name, rows_.size());
  rows_.emplace_back(name);
  return rows_.back();
}

void BenchReport::write_to(std::ostream& out) const {
  JsonWriter json(out);
  json.begin_object();
  json.kv("schema", "mp5-bench");
  json.kv("schema_version", kBenchSchemaVersion);
  json.kv("bench", name_);
  json.key("rows").begin_array();
  for (const Row& row : rows_) {
    json.begin_object();
    json.kv("name", row.name());
    json.key("metrics").begin_object();
    for (const auto& [key, value] : row.metrics()) json.kv(key, value);
    json.end_object();
    json.key("labels").begin_object();
    for (const auto& [key, value] : row.labels()) json.kv(key, value);
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << "\n";
}

std::string BenchReport::write(const std::string& dir) const {
  std::string target = dir;
  if (target.empty()) {
    const char* env = std::getenv("MP5_BENCH_JSON_DIR");
    target = (env != nullptr && *env != '\0') ? env : ".";
  }
  const std::string path = target + "/BENCH_" + name_ + ".json";
  std::ofstream out(path);
  if (!out) {
    throw Error("BenchReport: cannot open '" + path + "' for writing");
  }
  write_to(out);
  if (!out) throw Error("BenchReport: write to '" + path + "' failed");
  return path;
}

} // namespace mp5::telemetry
