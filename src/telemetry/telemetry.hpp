// Telemetry subsystem: per-component counters/gauges/histograms plus a
// bounded cycle-level event ring buffer.
//
// Design contract (see DESIGN.md "Telemetry"):
//   * Zero overhead when disabled. Components hold raw pointers to
//     registry-owned metric objects; a disabled run leaves every pointer
//     null and each hook is a single predictable branch (the MP5_TELEM_*
//     macros below), compiled out entirely when MP5_TELEMETRY_COMPILED is
//     0. Telemetry never touches the simulation RNG or any simulated
//     state, so results are bit-identical with and without it.
//   * Deterministic. Metrics live in name-ordered maps; two same-seed runs
//     produce identical snapshots. No wall-clock time anywhere — the event
//     timestamps are simulated cycles.
//   * Bounded. The event ring keeps the newest `event_capacity` events and
//     counts what it had to discard; memory use is fixed up front.
//
// The exporters live next door: chrome_trace.hpp (Perfetto /
// chrome://tracing), results.hpp (schema-versioned run results JSON) and
// bench_report.hpp (BENCH_*.json files for the bench harnesses).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "mp5/timeline.hpp"

// Compile-time master switch. Building with -DMP5_TELEMETRY_COMPILED=0
// removes every hook from the binary (the "compiled out" half of the
// overhead contract); the default build keeps them behind null checks.
#ifndef MP5_TELEMETRY_COMPILED
#define MP5_TELEMETRY_COMPILED 1
#endif

#if MP5_TELEMETRY_COMPILED
/// Increment a registry counter through a possibly-null Counter*.
#define MP5_TELEM_INC(counter_ptr)                                  \
  do {                                                              \
    if (counter_ptr) (counter_ptr)->inc();                          \
  } while (0)
/// Add `delta` to a registry counter through a possibly-null Counter*.
#define MP5_TELEM_ADD(counter_ptr, delta)                           \
  do {                                                              \
    if (counter_ptr) (counter_ptr)->inc(delta);                     \
  } while (0)
/// Record a sample into a possibly-null Histogram*.
#define MP5_TELEM_OBSERVE(hist_ptr, sample)                         \
  do {                                                              \
    if (hist_ptr) (hist_ptr)->add(sample);                          \
  } while (0)
#else
#define MP5_TELEM_INC(counter_ptr) do {} while (0)
#define MP5_TELEM_ADD(counter_ptr, delta) do {} while (0)
#define MP5_TELEM_OBSERVE(hist_ptr, sample) do {} while (0)
#endif

namespace mp5::telemetry {

/// Monotonic event/occurrence counter.
class Counter {
public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  std::uint64_t value() const noexcept { return value_; }

private:
  std::uint64_t value_ = 0;
};

/// Last-value-wins instantaneous measurement (occupancy, depth, rate).
/// `set_max` keeps a high-water mark instead.
class Gauge {
public:
  void set(double v) noexcept { value_ = v; }
  void set_max(double v) noexcept {
    if (v > value_) value_ = v;
  }
  double value() const noexcept { return value_; }

private:
  double value_ = 0.0;
};

/// Bounded ring of simulator timeline events: keeps the newest `capacity`
/// events, counting (not storing) everything older that wrapped out.
class EventRing {
public:
  explicit EventRing(std::size_t capacity);

  void push(const TimelineEvent& event);

  std::size_t capacity() const noexcept { return buf_.size(); }
  /// Events currently held (<= capacity).
  std::size_t size() const noexcept { return size_; }
  /// Total events ever pushed.
  std::uint64_t recorded() const noexcept { return recorded_; }
  /// Events discarded because the ring wrapped (recorded() - size()).
  std::uint64_t dropped() const noexcept { return recorded_ - size_; }

  /// The i-th retained event, oldest first (0 <= i < size()).
  const TimelineEvent& at(std::size_t i) const;

  /// Oldest-to-newest snapshot (copies; for tests and exporters).
  std::vector<TimelineEvent> snapshot() const;

private:
  std::vector<TimelineEvent> buf_;
  std::size_t next_ = 0;   // physical slot of the next push
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
};

struct Config {
  /// Event-ring capacity. 0 disables event recording entirely (counters
  /// and gauges still work).
  std::size_t event_capacity = 1 << 16;
};

/// The per-run metric registry plus the event ring. One Telemetry object
/// instruments one simulator run; attach it via SimOptions::telemetry.
///
/// Metric objects are owned by the registry and never move (node-based
/// map), so components may cache raw pointers for inlined updates.
class Telemetry {
public:
  explicit Telemetry(Config config = {});

  /// Find-or-create. Repeated registration under one name returns the
  /// same object, so aggregate counters can be shared across instances
  /// (e.g. every StageFifo updates the one "fifo.push" counter).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Find-or-create; the width/bucket shape is fixed by the first
  /// registration (later mismatching registrations throw ConfigError).
  Histogram& histogram(const std::string& name, double bucket_width,
                       std::size_t buckets);

  /// Record one simulator event into the ring (no-op when
  /// Config::event_capacity was 0).
  void record(const TimelineEvent& event);

  bool events_enabled() const noexcept { return ring_ != nullptr; }
  const EventRing& events() const;

  // Name-ordered read access for exporters and determinism checks.
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Flat name->value snapshot of all counters (determinism tests).
  std::map<std::string, std::uint64_t> counter_snapshot() const;

private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::unique_ptr<EventRing> ring_;
};

/// A named slice of a registry: every metric registered through a Scope
/// has the scope's prefix prepended to its name. This is the instancing
/// mechanism for multi-simulator processes — registration is find-or-create
/// by *flat* name, so two Mp5Simulators sharing one Telemetry would
/// otherwise silently merge their "sim.admitted" (etc.) counters. A fabric
/// gives each switch a scope like "fabric.leaf0." and all per-switch
/// metrics stay distinct while living in one exportable registry.
///
/// A Scope is a cheap value (pointer + string). The default-constructed
/// scope is null (operator bool is false, metric calls are invalid); a
/// Telemetry& converts implicitly to an unprefixed scope, preserving the
/// flat single-simulator names.
class Scope {
public:
  Scope() = default;
  /*implicit*/ Scope(Telemetry& registry) : telem_(&registry) {}
  Scope(Telemetry& registry, std::string prefix)
      : telem_(&registry), prefix_(std::move(prefix)) {}

  Telemetry* registry() const noexcept { return telem_; }
  const std::string& prefix() const noexcept { return prefix_; }
  explicit operator bool() const noexcept { return telem_ != nullptr; }

  Counter& counter(const std::string& name) const {
    return telem_->counter(prefix_ + name);
  }
  Gauge& gauge(const std::string& name) const {
    return telem_->gauge(prefix_ + name);
  }
  Histogram& histogram(const std::string& name, double bucket_width,
                       std::size_t buckets) const {
    return telem_->histogram(prefix_ + name, bucket_width, buckets);
  }
  /// Events carry no metric name; they pass through to the shared ring.
  void record(const TimelineEvent& event) const { telem_->record(event); }

private:
  Telemetry* telem_ = nullptr;
  std::string prefix_;
};

} // namespace mp5::telemetry
