#include "telemetry/json_writer.hpp"

#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace mp5::telemetry {

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma_for_value() {
  if (stack_.empty()) {
    // Root value: open a synthetic frame so `complete()` can report once
    // the root container closes.
    stack_.push_back(Frame{});
    return;
  }
  Frame& top = stack_.back();
  if (top.is_object && !pending_key_) {
    throw Error("JsonWriter: value inside an object needs a key");
  }
  if (!top.is_object) {
    if (!top.first) out_ << ',';
    top.first = false;
  }
  pending_key_ = false;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (stack_.empty() || !stack_.back().is_object) {
    throw Error("JsonWriter: key() outside an object");
  }
  if (pending_key_) throw Error("JsonWriter: consecutive keys");
  Frame& top = stack_.back();
  if (!top.first) out_ << ',';
  top.first = false;
  out_ << '"' << escape(name) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  comma_for_value();
  out_ << '{';
  stack_.push_back(Frame{/*is_object=*/true, /*first=*/true});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || !stack_.back().is_object) {
    throw Error("JsonWriter: end_object() without matching begin_object()");
  }
  if (pending_key_) throw Error("JsonWriter: dangling key at end_object()");
  out_ << '}';
  stack_.pop_back();
  if (stack_.size() == 1 && !stack_.front().is_object) {
    stack_.front().closed = true;
  } else if (stack_.empty()) {
    stack_.push_back(Frame{});
    stack_.front().closed = true;
  }
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_for_value();
  out_ << '[';
  stack_.push_back(Frame{/*is_object=*/false, /*first=*/true});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back().is_object) {
    throw Error("JsonWriter: end_array() without matching begin_array()");
  }
  out_ << ']';
  stack_.pop_back();
  if (stack_.size() == 1 && !stack_.front().is_object) {
    stack_.front().closed = true;
  } else if (stack_.empty()) {
    stack_.push_back(Frame{});
    stack_.front().closed = true;
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma_for_value();
  out_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_for_value();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_for_value();
  if (std::isnan(v) || std::isinf(v)) {
    out_ << "null"; // JSON has no NaN/Inf
    return *this;
  }
  char buf[64];
  // %.17g round-trips every double and is locale-independent via snprintf
  // with the C locale assumption the rest of the code base already makes.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_for_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_for_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_for_value();
  out_ << "null";
  return *this;
}

} // namespace mp5::telemetry
