// Machine-readable run results: every SimResult field (including the
// PR 1 fault/recovery counters) plus an optional telemetry section, as a
// schema-versioned JSON document. `mp5sim --json <path>` writes one per
// run; future PRs diff them for regressions.
//
// Schema "mp5-results", version 1 (documented in DESIGN.md "Telemetry"):
//   {
//     "schema": "mp5-results", "schema_version": 1,
//     "meta":        { design, program, pipelines, packets, seed, load },
//     "packets":     { offered, egressed, dropped_*, ecn_marked },
//     "timing":      { first_arrival, last_arrival, last_egress,
//                      cycles_run, input_rate, normalized_throughput },
//     "mechanics":   { steers, wasted_cycles, blocked_cycles, remap_moves,
//                      recirculations, max_queue_depth },
//     "faults":      { pipeline_failures, pipeline_recoveries,
//                      fault_remapped_indices, phantom_lost,
//                      phantom_delayed, stalled_cycles, time_to_recover,
//                      fault_drops },
//     "correctness": { c1_violating_packets, c1_fraction,
//                      reordered_flow_packets, drop_fraction },
//     "telemetry":   { counters, gauges, histograms, events } | null
//   }
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "metrics/sim_result.hpp"

namespace mp5::telemetry {

class Telemetry;

inline constexpr int kResultsSchemaVersion = 1;

/// Free-form description of what was run; lands in the "meta" section.
struct RunMeta {
  std::string design;
  /// Consistency design family ("mp5", "scr", "relaxed"); "mp5" covers
  /// the ablations too (those differ in `design`).
  std::string variant = "mp5";
  /// Staleness bound Δ in cycles; 0 except for the relaxed variant.
  std::uint32_t staleness = 0;
  std::string program;
  std::uint32_t pipelines = 0;
  std::uint64_t packets = 0;
  std::uint64_t seed = 0;
  double load = 1.0;
};

/// Emit the full document. `telemetry` may be null (the "telemetry" key
/// is then JSON null).
void write_results_json(std::ostream& out, const RunMeta& meta,
                        const SimResult& result, const Telemetry* telemetry);

class JsonWriter;

/// Emit the standard "telemetry" object (counters/gauges/histograms/
/// events) into an in-progress document — shared by the single-switch and
/// fabric results exporters.
void write_telemetry_section(JsonWriter& json, const Telemetry& telem);

} // namespace mp5::telemetry
