#include "telemetry/results.hpp"

#include "telemetry/json_writer.hpp"
#include "telemetry/telemetry.hpp"

namespace mp5::telemetry {

void write_telemetry_section(JsonWriter& json, const Telemetry& telem) {
  json.begin_object();

  json.key("counters").begin_object();
  for (const auto& [name, counter] : telem.counters()) {
    json.kv(name, counter.value());
  }
  json.end_object();

  json.key("gauges").begin_object();
  for (const auto& [name, gauge] : telem.gauges()) {
    json.kv(name, gauge.value());
  }
  json.end_object();

  json.key("histograms").begin_object();
  for (const auto& [name, hist] : telem.histograms()) {
    json.key(name).begin_object();
    json.kv("bucket_width", hist.bucket_width());
    json.kv("total", hist.total());
    json.kv("p50", hist.p50());
    json.kv("p90", hist.p90());
    json.kv("p99", hist.p99());
    json.key("buckets").begin_array();
    for (const std::uint64_t c : hist.buckets()) json.value(c);
    json.end_array();
    json.end_object();
  }
  json.end_object();

  json.key("events");
  if (telem.events_enabled()) {
    const EventRing& ring = telem.events();
    json.begin_object()
        .kv("capacity", static_cast<std::uint64_t>(ring.capacity()))
        .kv("recorded", ring.recorded())
        .kv("retained", static_cast<std::uint64_t>(ring.size()))
        .kv("dropped", ring.dropped())
        .end_object();
  } else {
    json.null();
  }

  json.end_object();
}

void write_results_json(std::ostream& out, const RunMeta& meta,
                        const SimResult& result, const Telemetry* telemetry) {
  JsonWriter json(out);
  json.begin_object();
  json.kv("schema", "mp5-results");
  json.kv("schema_version", kResultsSchemaVersion);

  json.key("meta")
      .begin_object()
      .kv("design", meta.design)
      .kv("variant", meta.variant)
      .kv("staleness", meta.staleness)
      .kv("program", meta.program)
      .kv("pipelines", meta.pipelines)
      .kv("packets", meta.packets)
      .kv("seed", meta.seed)
      .kv("load", meta.load)
      .end_object();

  json.key("packets")
      .begin_object()
      .kv("offered", result.offered)
      .kv("egressed", result.egressed)
      .kv("dropped_phantom", result.dropped_phantom)
      .kv("dropped_data", result.dropped_data)
      .kv("dropped_starved", result.dropped_starved)
      .kv("dropped_fault", result.dropped_fault)
      .kv("ecn_marked", result.ecn_marked)
      .end_object();

  json.key("timing")
      .begin_object()
      .kv("first_arrival", result.first_arrival)
      .kv("last_arrival", result.last_arrival)
      .kv("last_egress", result.last_egress)
      .kv("cycles_run", result.cycles_run)
      .kv("input_rate", result.input_rate())
      .kv("normalized_throughput", result.normalized_throughput())
      .end_object();

  json.key("mechanics")
      .begin_object()
      .kv("steers", result.steers)
      .kv("wasted_cycles", result.wasted_cycles)
      .kv("blocked_cycles", result.blocked_cycles)
      .kv("remap_moves", result.remap_moves)
      .kv("recirculations", result.recirculations)
      .kv("max_queue_depth", static_cast<std::uint64_t>(result.max_queue_depth))
      .end_object();

  json.key("faults")
      .begin_object()
      .kv("pipeline_failures", result.pipeline_failures)
      .kv("pipeline_recoveries", result.pipeline_recoveries)
      .kv("fault_remapped_indices", result.fault_remapped_indices)
      .kv("phantom_lost", result.phantom_lost)
      .kv("phantom_delayed", result.phantom_delayed)
      .kv("stalled_cycles", result.stalled_cycles)
      .kv("time_to_recover", result.time_to_recover)
      .kv("fault_drops",
          static_cast<std::uint64_t>(result.fault_drops.size()))
      .end_object();

  json.key("correctness")
      .begin_object()
      .kv("c1_violating_packets", result.c1_violating_packets)
      .kv("c1_fraction", result.c1_fraction())
      .kv("reordered_flow_packets", result.reordered_flow_packets)
      .kv("drop_fraction", result.drop_fraction())
      .end_object();

  json.key("telemetry");
  if (telemetry != nullptr) {
    write_telemetry_section(json, *telemetry);
  } else {
    json.null();
  }

  json.end_object();
  out << "\n";
}

} // namespace mp5::telemetry
