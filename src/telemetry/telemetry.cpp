#include "telemetry/telemetry.hpp"

#include <cmath>

#include "common/error.hpp"

namespace mp5::telemetry {

EventRing::EventRing(std::size_t capacity) : buf_(capacity) {
  if (capacity == 0) {
    throw ConfigError("EventRing: capacity must be > 0");
  }
}

void EventRing::push(const TimelineEvent& event) {
  buf_[next_] = event;
  next_ = (next_ + 1) % buf_.size();
  if (size_ < buf_.size()) ++size_;
  ++recorded_;
}

const TimelineEvent& EventRing::at(std::size_t i) const {
  if (i >= size_) throw Error("EventRing::at: index out of range");
  // When full, the oldest retained event sits at next_ (the slot the next
  // push will overwrite); before wrapping, it sits at physical 0.
  const std::size_t oldest = size_ == buf_.size() ? next_ : 0;
  return buf_[(oldest + i) % buf_.size()];
}

std::vector<TimelineEvent> EventRing::snapshot() const {
  std::vector<TimelineEvent> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(at(i));
  return out;
}

Telemetry::Telemetry(Config config) {
  if (config.event_capacity > 0) {
    ring_ = std::make_unique<EventRing>(config.event_capacity);
  }
}

Counter& Telemetry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& Telemetry::gauge(const std::string& name) { return gauges_[name]; }

Histogram& Telemetry::histogram(const std::string& name, double bucket_width,
                                std::size_t buckets) {
  auto [it, inserted] =
      histograms_.try_emplace(name, bucket_width, buckets);
  if (!inserted && (it->second.bucket_width() != bucket_width ||
                    it->second.buckets().size() != buckets)) {
    throw ConfigError("Telemetry: histogram '" + name +
                      "' re-registered with a different shape");
  }
  return it->second;
}

void Telemetry::record(const TimelineEvent& event) {
  if (ring_) ring_->push(event);
}

const EventRing& Telemetry::events() const {
  if (!ring_) throw Error("Telemetry: event recording is disabled");
  return *ring_;
}

std::map<std::string, std::uint64_t> Telemetry::counter_snapshot() const {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter.value();
  return out;
}

} // namespace mp5::telemetry
