// The paper's packet-processing programs, written in the Domino subset:
//   * the four real applications of §4.4 (flowlet switching, CONGA,
//     STFQ/WFQ priority computation, NOPaxos network sequencer), each with
//     a FieldFiller that turns flow-workload packets into header fields;
//   * the running examples of §2.3.1 (global packet counter; the network
//     sequencer that also stamps the count into the packet);
//   * the Figure 3 example program;
//   * a parameterized synthetic program for the §4.3 sensitivity sweeps
//     (one register array per stateful stage).
#pragma once

#include <string>
#include <vector>

#include "trace/workloads.hpp"

namespace mp5::apps {

struct AppSpec {
  std::string name;
  std::string source;
  /// Declared fields driven per packet by the flow workload.
  FieldFiller filler;
  /// Fields identifying the flow (for the optional flow-order stage).
  std::vector<std::string> flow_fields;
};

/// §4.4 Figure 8 applications, in paper order.
std::vector<AppSpec> real_apps();

/// Additional stateful in-network algorithms from the family the paper
/// analyzed for preemptive address resolution ([8, 14, 44, 49] and
/// friends): count-min sketch, SYN-flood detection, DNS-amplification
/// mitigation, RCP average-RTT, sampled NetFlow (stateful sampling
/// predicate — exercises conservative phantoms), Bloom-filter firewall,
/// and DCTCP-style ECN accounting.
std::vector<AppSpec> extended_apps();

AppSpec flowlet_app();
AppSpec conga_app();
AppSpec wfq_app();
AppSpec sequencer_app();

/// §2.3.1 Example 1: count packets in a single register.
std::string packet_counter_source();
/// §2.3.1 Example 2: count packets and write the count into the packet.
std::string sequencer_example_source();
/// The Figure 3 example program (if/else form of the mux ternary).
std::string figure3_source();

/// Synthetic sensitivity program: `stateful_stages` register arrays of
/// `reg_size` entries; packet fields h0..h{n-1} select the index accessed
/// at each stage and field v is accumulated into the arrays.
std::string make_synthetic_source(std::uint32_t stateful_stages,
                                  std::size_t reg_size);

/// A Domino program exercising every conservative-fallback path of the
/// compiler: a stateful predicate (phantom cancellation) and a stateful
/// register index (pinned array). Used by tests and the ablation bench.
std::string stateful_predicate_source();
std::string stateful_index_source();

/// A program using the match-table construct (§2.1: control-plane-
/// populated, constant at runtime): static routing entries gate per-
/// destination connection accounting.
std::string table_routing_source();

} // namespace mp5::apps
